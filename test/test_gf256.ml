(* Tests for GF(2^8) arithmetic and the linear-coding layer. *)

module Gf = Iov_gf256.Gf256
module Linear = Iov_gf256.Linear

let elem = QCheck.int_range 0 255
let nonzero = QCheck.int_range 1 255

let qtest ?(count = 500) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Field axioms *)

let axioms =
  [
    qtest "add is xor" QCheck.(pair elem elem) (fun (a, b) ->
        Gf.add a b = a lxor b);
    qtest "add commutative" QCheck.(pair elem elem) (fun (a, b) ->
        Gf.add a b = Gf.add b a);
    qtest "mul commutative" QCheck.(pair elem elem) (fun (a, b) ->
        Gf.mul a b = Gf.mul b a);
    qtest "mul associative" QCheck.(triple elem elem elem) (fun (a, b, c) ->
        Gf.mul a (Gf.mul b c) = Gf.mul (Gf.mul a b) c);
    qtest "add associative" QCheck.(triple elem elem elem) (fun (a, b, c) ->
        Gf.add a (Gf.add b c) = Gf.add (Gf.add a b) c);
    qtest "distributivity" QCheck.(triple elem elem elem) (fun (a, b, c) ->
        Gf.mul a (Gf.add b c) = Gf.add (Gf.mul a b) (Gf.mul a c));
    qtest "one is identity" elem (fun a -> Gf.mul a Gf.one = a);
    qtest "zero annihilates" elem (fun a -> Gf.mul a Gf.zero = 0);
    qtest "additive inverse is self" elem (fun a -> Gf.add a a = 0);
    qtest "multiplicative inverse" nonzero (fun a ->
        Gf.mul a (Gf.inv a) = Gf.one);
    qtest "div inverts mul" QCheck.(pair elem nonzero) (fun (a, b) ->
        Gf.div (Gf.mul a b) b = a);
    qtest "results stay in field" QCheck.(pair elem elem) (fun (a, b) ->
        Gf.is_valid (Gf.mul a b) && Gf.is_valid (Gf.add a b));
    qtest "pow matches repeated mul" QCheck.(pair elem (QCheck.int_range 0 9))
      (fun (a, k) ->
        let rec go acc i = if i = 0 then acc else go (Gf.mul acc a) (i - 1) in
        Gf.pow a k = go Gf.one k);
  ]

(* reference implementation: carry-less (Russian peasant)
   multiplication with explicit reduction by 0x11b *)
let mul_reference a b =
  let acc = ref 0 and a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 <> 0 then acc := !acc lxor !a;
    a := !a lsl 1;
    if !a land 0x100 <> 0 then a := !a lxor 0x11b;
    b := !b lsr 1
  done;
  !acc

let mul_matches_reference =
  qtest ~count:2000 "table mul matches polynomial reference"
    QCheck.(pair elem elem)
    (fun (a, b) -> Gf.mul a b = mul_reference a b)

let test_tables () =
  let exp = Gf.exp_table () and log = Gf.log_table () in
  check_int "exp size" 255 (Array.length exp);
  check_int "exp(0) is 1" 1 exp.(0);
  (* log . exp = id on exponents *)
  for i = 0 to 254 do
    check_int (Printf.sprintf "log(exp(%d))" i) i log.(exp.(i))
  done;
  (* exp values enumerate every nonzero element exactly once *)
  let seen = Array.make 256 false in
  Array.iter (fun v -> seen.(v) <- true) exp;
  check_int "generator hits all nonzero"
    255
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen)

let test_div_by_zero () =
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Gf.inv 0));
  Alcotest.check_raises "div by 0" Division_by_zero (fun () ->
      ignore (Gf.div 3 0))

let test_pow_edges () =
  check_int "0^0 = 1" 1 (Gf.pow 0 0);
  check_int "0^5 = 0" 0 (Gf.pow 0 5);
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Gf256.pow: negative exponent") (fun () ->
      ignore (Gf.pow 2 (-1)))

(* ------------------------------------------------------------------ *)
(* Byte vectors *)

let bytes_gen n = QCheck.map Bytes.of_string (QCheck.string_of_size (QCheck.Gen.return n))

let byte_vec_tests =
  [
    qtest "mul_bytes by 1 is identity" (bytes_gen 64) (fun v ->
        Bytes.equal (Gf.mul_bytes 1 v) v);
    qtest "mul_bytes by 0 is zero" (bytes_gen 64) (fun v ->
        Bytes.for_all (fun c -> c = '\000') (Gf.mul_bytes 0 v));
    qtest "mul_bytes distributes over elements"
      QCheck.(pair nonzero (bytes_gen 32))
      (fun (c, v) ->
        let out = Gf.mul_bytes c v in
        let ok = ref true in
        Bytes.iteri
          (fun i x ->
            if Char.code x <> Gf.mul c (Char.code (Bytes.get v i)) then
              ok := false)
          out;
        !ok);
    qtest "axpy accumulates" QCheck.(pair nonzero (pair (bytes_gen 32) (bytes_gen 32)))
      (fun (c, (acc0, v)) ->
        let acc = Bytes.copy acc0 in
        Gf.axpy ~acc ~coeff:c v;
        let ok = ref true in
        Bytes.iteri
          (fun i x ->
            let expect =
              Gf.add (Char.code (Bytes.get acc0 i))
                (Gf.mul c (Char.code (Bytes.get v i)))
            in
            if Char.code x <> expect then ok := false)
          acc;
        !ok);
    qtest "add_bytes is involutive" QCheck.(pair (bytes_gen 16) (bytes_gen 16))
      (fun (a, b) -> Bytes.equal (Gf.add_bytes (Gf.add_bytes a b) b) a);
  ]

let test_length_mismatch () =
  Alcotest.check_raises "axpy length"
    (Invalid_argument "Gf256.axpy: length mismatch") (fun () ->
      Gf.axpy ~acc:(Bytes.create 3) ~coeff:1 (Bytes.create 4))

(* the kernels take a word-level fast path for whole 64-bit/32-bit
   blocks and a byte tail otherwise: check every alignment class *)
let test_kernel_tails () =
  let rng = Random.State.make [| 7 |] in
  List.iter
    (fun n ->
      let v = Bytes.init n (fun _ -> Char.chr (Random.State.int rng 256)) in
      let acc0 = Bytes.init n (fun _ -> Char.chr (Random.State.int rng 256)) in
      List.iter
        (fun c ->
          (* axpy against the scalar definition *)
          let acc = Bytes.copy acc0 in
          Gf.axpy ~acc ~coeff:c v;
          for i = 0 to n - 1 do
            check_int
              (Printf.sprintf "axpy c=%d n=%d i=%d" c n i)
              (Gf.add
                 (Char.code (Bytes.get acc0 i))
                 (Gf.mul c (Char.code (Bytes.get v i))))
              (Char.code (Bytes.get acc i))
          done;
          (* scale_bytes = mul_bytes in place *)
          let s = Bytes.copy v in
          Gf.scale_bytes c s;
          Alcotest.(check bool)
            (Printf.sprintf "scale c=%d n=%d" c n)
            true
            (Bytes.equal s (Gf.mul_bytes c v)))
        [ 0; 1; 2; 91; 255 ];
      Alcotest.(check bool)
        (Printf.sprintf "add_bytes n=%d" n)
        true
        (Bytes.equal (Gf.add_bytes (Gf.add_bytes acc0 v) v) acc0))
    [ 0; 1; 3; 7; 8; 9; 15; 16; 17; 63; 64; 65 ]

(* ------------------------------------------------------------------ *)
(* Linear coding *)

let sources_gen k n =
  QCheck.make
    ~print:(fun a ->
      String.concat ";" (Array.to_list (Array.map Bytes.to_string a)))
    QCheck.Gen.(
      array_size (return k) (map Bytes.of_string (string_size (return n))))

let coeffs_gen k = QCheck.array_of_size (QCheck.Gen.return k) nonzero

let test_encode_identity () =
  let sources = [| Bytes.of_string "abc"; Bytes.of_string "xyz" |] in
  let p = Linear.encode ~coeffs:[| 1; 0 |] sources in
  Alcotest.(check string) "unit vector extracts" "abc" (Bytes.to_string p.payload)

let test_rank () =
  check_int "identity rank" 3
    (Linear.rank [| [| 1; 0; 0 |]; [| 0; 1; 0 |]; [| 0; 0; 1 |] |]);
  check_int "dependent rows" 1 (Linear.rank [| [| 2; 4 |]; [| 2; 4 |] |]);
  check_int "zero matrix" 0 (Linear.rank [| [| 0; 0 |]; [| 0; 0 |] |]);
  check_int "scaled rows are dependent" 1
    (Linear.rank [| [| 1; 2 |]; [| Gf.mul 7 1; Gf.mul 7 2 |] |])

let linear_props =
  [
    qtest ~count:100 "decode recovers sources (k=2)"
      QCheck.(pair (coeffs_gen 2) (sources_gen 2 24))
      (fun (c1, sources) ->
        QCheck.assume (Array.length sources = 2);
        (* two packets: one coded with c1, one native of index 0 *)
        let p1 = Linear.encode ~coeffs:c1 sources in
        let p2 = Linear.encode ~coeffs:[| 1; 0 |] sources in
        match Linear.decode [ p1; p2 ] with
        | Some out ->
          (* decodable iff c1 is independent of e0, i.e. c1.(1) <> 0 *)
          Bytes.equal out.(0) sources.(0) && Bytes.equal out.(1) sources.(1)
        | None -> c1.(1) = 0);
    qtest ~count:100 "combine preserves decodability"
      (sources_gen 3 16)
      (fun sources ->
        QCheck.assume (Array.length sources = 3);
        let p0 = Linear.encode ~coeffs:[| 1; 0; 0 |] sources in
        let p1 = Linear.encode ~coeffs:[| 0; 1; 0 |] sources in
        let p2 = Linear.encode ~coeffs:[| 0; 0; 1 |] sources in
        (* re-code at an intermediate node *)
        let q = Linear.combine [ (3, p0); (5, p1) ] in
        match Linear.decode [ q; p1; p2; p0 ] with
        | Some out ->
          Array.for_all2 (fun a b -> Bytes.equal a b) out sources
        | None -> false);
  ]

(* random coded packets with random coefficients: the incremental
   decoder recovers the sources once (and only once) it has accumulated
   k innovative packets, regardless of how much dependent junk it is
   fed along the way *)
let random_generation_decodes =
  qtest ~count:100 "random generations decode at rank k"
    QCheck.(pair (int_range 2 5) (int_bound 1000))
    (fun (k, seed) ->
      let rng = Random.State.make [| seed |] in
      let sources =
        Array.init k (fun _ ->
            Bytes.init 32 (fun _ -> Char.chr (Random.State.int rng 256)))
      in
      let d = Linear.Decoder.create ~k in
      let budget = ref (8 * k) in
      while (not (Linear.Decoder.complete d)) && !budget > 0 do
        decr budget;
        let coeffs = Array.init k (fun _ -> Random.State.int rng 256) in
        ignore (Linear.Decoder.add d (Linear.encode ~coeffs sources))
      done;
      Linear.Decoder.complete d
      &&
      match Linear.Decoder.get d with
      | Some out -> Array.for_all2 Bytes.equal out sources
      | None -> false)

(* batch decode recovers random sources for k in {1,4,16} once the
   coefficient matrix is full rank; retry with fresh random matrices
   until one is (a random GF(2^8) matrix is full rank with high
   probability) *)
let batch_decode_recovers =
  qtest ~count:60 "batch decode recovers sources (k in {1,4,16})"
    QCheck.(pair (oneofl [ 1; 4; 16 ]) (int_bound 100000))
    (fun (k, seed) ->
      let rng = Random.State.make [| seed; k |] in
      let sources =
        Array.init k (fun _ ->
            Bytes.init 48 (fun _ -> Char.chr (Random.State.int rng 256)))
      in
      let random_full_rank () =
        let rec go () =
          let m =
            Array.init k (fun _ ->
                Array.init k (fun _ -> Random.State.int rng 256))
          in
          if Linear.rank m = k then m else go ()
        in
        go ()
      in
      let matrix = random_full_rank () in
      let packets =
        Array.to_list
          (Array.map (fun coeffs -> Linear.encode ~coeffs sources) matrix)
      in
      match Linear.decode packets with
      | Some out -> Array.for_all2 Bytes.equal out sources
      | None -> false)

(* The incremental decoder against the batch oracle: after every add —
   innovative, dependent or an exact duplicate — the decoder's rank
   must equal the batch rank of all coefficient vectors fed so far,
   [add]'s verdict must equal the rank increment, and the final output
   must match batch [decode] over the same packet list. *)
let incremental_matches_batch =
  qtest ~count:150 "incremental decoder matches batch reduce"
    QCheck.(pair (int_range 1 6) (int_bound 100000))
    (fun (k, seed) ->
      let rng = Random.State.make [| seed; k; 77 |] in
      let sources =
        Array.init k (fun _ ->
            Bytes.init 32 (fun _ -> Char.chr (Random.State.int rng 256)))
      in
      let d = Linear.Decoder.create ~k in
      let fed = ref [] in
      let ok = ref true in
      let feed p =
        let innovative = Linear.Decoder.add d p in
        fed := p :: !fed;
        let batch_rank =
          Linear.rank
            (Array.of_list (List.map (fun q -> q.Linear.coeffs) !fed))
        in
        if Linear.Decoder.rank d <> batch_rank then ok := false;
        (* verdict = did the batch rank move? (except after complete,
           where add refuses new packets) *)
        if Linear.Decoder.rank d < k || innovative then begin
          let prev_rank =
            Linear.rank
              (Array.of_list
                 (List.map (fun q -> q.Linear.coeffs) (List.tl !fed)))
          in
          if innovative <> (batch_rank > prev_rank) then ok := false
        end
      in
      for _ = 1 to 3 * k do
        match Random.State.int rng 4 with
        | 0 when !fed <> [] ->
          (* exact duplicate of something already fed *)
          feed (List.nth !fed (Random.State.int rng (List.length !fed)))
        | 1 when List.length !fed >= 2 ->
          (* a dependent combination of two earlier packets *)
          let p1 = List.nth !fed (Random.State.int rng (List.length !fed)) in
          let p2 = List.nth !fed (Random.State.int rng (List.length !fed)) in
          feed
            (Linear.combine
               [ (1 + Random.State.int rng 255, p1);
                 (1 + Random.State.int rng 255, p2) ])
        | _ ->
          let coeffs = Array.init k (fun _ -> Random.State.int rng 256) in
          feed (Linear.encode ~coeffs sources)
      done;
      (match (Linear.Decoder.get d, Linear.decode !fed) with
      | Some a, Some b ->
        if not (Array.for_all2 Bytes.equal a b) then ok := false;
        if not (Array.for_all2 Bytes.equal a sources) then ok := false
      | None, None -> ()
      | Some _, None | None, Some _ -> ok := false);
      !ok)

let test_decoder_incremental () =
  let sources = [| Bytes.of_string "hello world!"; Bytes.of_string "goodbye moon" |] in
  let d = Linear.Decoder.create ~k:2 in
  Alcotest.(check bool) "not complete" false (Linear.Decoder.complete d);
  let p_coded = Linear.encode ~coeffs:[| 1; 1 |] sources in
  Alcotest.(check bool) "coded innovative" true (Linear.Decoder.add d p_coded);
  Alcotest.(check bool)
    "duplicate not innovative" false
    (Linear.Decoder.add d p_coded);
  check_int "rank 1" 1 (Linear.Decoder.rank d);
  let p_native = Linear.encode ~coeffs:[| 1; 0 |] sources in
  Alcotest.(check bool) "native innovative" true (Linear.Decoder.add d p_native);
  Alcotest.(check bool) "complete" true (Linear.Decoder.complete d);
  match Linear.Decoder.get d with
  | Some out ->
    Alcotest.(check string) "src0" "hello world!" (Bytes.to_string out.(0));
    Alcotest.(check string) "src1" "goodbye moon" (Bytes.to_string out.(1))
  | None -> Alcotest.fail "decoder did not produce output"

let test_decoder_rejects_width () =
  let d = Linear.Decoder.create ~k:2 in
  Alcotest.check_raises "width" (Invalid_argument "Decoder.add: width")
    (fun () ->
      ignore
        (Linear.Decoder.add d
           { Linear.coeffs = [| 1 |]; payload = Bytes.create 1 }))

let test_encode_validation () =
  Alcotest.check_raises "no sources" (Invalid_argument "Linear.encode: no sources")
    (fun () -> ignore (Linear.encode ~coeffs:[||] [||]));
  Alcotest.check_raises "ragged"
    (Invalid_argument "Linear.encode: ragged sources") (fun () ->
      ignore
        (Linear.encode ~coeffs:[| 1; 1 |]
           [| Bytes.create 2; Bytes.create 3 |]))

let () =
  Alcotest.run "gf256"
    [
      ("axioms", mul_matches_reference :: axioms);
      ( "tables",
        [
          Alcotest.test_case "log/exp tables" `Quick test_tables;
          Alcotest.test_case "division by zero" `Quick test_div_by_zero;
          Alcotest.test_case "pow edge cases" `Quick test_pow_edges;
        ] );
      ( "byte-vectors",
        byte_vec_tests
        @ [
            Alcotest.test_case "length mismatch" `Quick test_length_mismatch;
            Alcotest.test_case "word/tail alignment classes" `Quick
              test_kernel_tails;
          ] );
      ( "linear",
        (random_generation_decodes :: batch_decode_recovers
        :: incremental_matches_batch :: linear_props)
        @ [
            Alcotest.test_case "encode identity" `Quick test_encode_identity;
            Alcotest.test_case "rank" `Quick test_rank;
            Alcotest.test_case "incremental decoder" `Quick
              test_decoder_incremental;
            Alcotest.test_case "decoder width check" `Quick
              test_decoder_rejects_width;
            Alcotest.test_case "encode validation" `Quick
              test_encode_validation;
          ] );
    ]
