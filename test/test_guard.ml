(* Tests for the overload guard: the shared backoff schedule, the
   per-neighbor circuit breaker, priority-classed admission and the
   progress watchdog. The qcheck properties pin the three invariants
   the rest of the stack leans on: backoff delays are bounded by the
   monotone envelope, same-seed schedules replay identically, and a
   breaker never re-enters Open without a fresh failure. *)

module Backoff = Iov_guard.Backoff
module Breaker = Iov_guard.Breaker
module Admission = Iov_guard.Admission
module Watchdog = Iov_guard.Watchdog

let qtest ?(count = 300) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let rng_of seed = Random.State.make [| seed; 0xb0ff |]

(* ------------------------------------------------------------------ *)
(* Backoff *)

(* the first delay of any schedule is exactly [base]: the draw range
   [base, max base (3 * 0)] is degenerate and the envelope at k=0 is
   base itself *)
let test_backoff_first_delay () =
  let b = Backoff.create ~base:0.5 ~cap:30. ~rng:(rng_of 1) () in
  Alcotest.(check (float 1e-9)) "first delay" 0.5 (Backoff.next b);
  Alcotest.(check int) "attempt advanced" 1 (Backoff.attempt b);
  ignore (Backoff.next b);
  Backoff.reset b;
  Alcotest.(check int) "reset attempt" 0 (Backoff.attempt b);
  Alcotest.(check (float 1e-9)) "reset restarts at base" 0.5 (Backoff.next b)

let test_backoff_rejects_bad_params () =
  Alcotest.check_raises "base 0" (Invalid_argument "Backoff.create: need 0 < base <= cap")
    (fun () -> ignore (Backoff.create ~base:0. ~cap:1. ~rng:(rng_of 2) ()));
  Alcotest.check_raises "base > cap" (Invalid_argument "Backoff.create: need 0 < base <= cap")
    (fun () -> ignore (Backoff.create ~base:2. ~cap:1. ~rng:(rng_of 2) ()))

let backoff_params =
  QCheck.(
    quad small_nat
      (float_range 0.01 2.0)
      (float_range 1.0 50.0)
      (int_range 1 40))

(* every delay lies in [base, envelope k] (hence in [base, cap]), and
   the envelope itself is monotone until it pins at the cap *)
let prop_backoff_bounded (seed, base, capmul, attempts) =
  let cap = base *. capmul in
  let b = Backoff.create ~base ~cap ~rng:(rng_of seed) () in
  let ok = ref true in
  for k = 0 to attempts - 1 do
    let d = Backoff.next b in
    let env = Backoff.envelope ~base ~cap k in
    if d < base -. 1e-9 || d > env +. 1e-9 || d > cap +. 1e-9 then ok := false;
    if k > 0 && env +. 1e-9 < Backoff.envelope ~base ~cap (k - 1) then
      ok := false
  done;
  !ok

(* all randomness comes from the caller's seed: two schedules built
   from equal seeds hand out byte-identical delay sequences *)
let prop_backoff_deterministic (seed, base, capmul, attempts) =
  let cap = base *. capmul in
  let run () =
    let b = Backoff.create ~base ~cap ~rng:(rng_of seed) () in
    List.init attempts (fun _ -> Backoff.next b)
  in
  run () = run ()

(* ------------------------------------------------------------------ *)
(* Breaker *)

let mk_breaker ?(seed = 5) () =
  Breaker.create ~failure_threshold:3 ~window:10. ~open_base:1. ~open_cap:30.
    ~rng:(rng_of seed) ()

let check_state msg expected b ~now =
  Alcotest.(check string) msg
    (Format.asprintf "%a" Breaker.pp_state expected)
    (Format.asprintf "%a" Breaker.pp_state (Breaker.state b ~now))

let test_breaker_trip_and_probe () =
  let b = mk_breaker () in
  check_state "starts closed" Breaker.Closed b ~now:0.;
  Alcotest.(check bool) "1st failure" false (Breaker.on_failure b ~now:0.1);
  Alcotest.(check bool) "2nd failure" false (Breaker.on_failure b ~now:0.2);
  Alcotest.(check bool) "3rd failure trips" true (Breaker.on_failure b ~now:0.3);
  check_state "open" Breaker.Open b ~now:0.4;
  Alcotest.(check bool) "refuses while open" false (Breaker.allow b ~now:0.5);
  Alcotest.(check int) "one trip" 1 (Breaker.trips b);
  (* the first open interval is exactly open_base = 1s *)
  check_state "half-open after interval" Breaker.Half_open b ~now:1.35;
  Alcotest.(check bool) "probe allowed" true (Breaker.allow b ~now:1.35);
  Alcotest.(check bool) "only one probe" false (Breaker.allow b ~now:1.36);
  (match Breaker.on_success b ~now:1.4 with
  | Some span ->
    Alcotest.(check (float 1e-6)) "open span reported" (1.4 -. 0.3) span
  | None -> Alcotest.fail "probe success did not close");
  check_state "closed again" Breaker.Closed b ~now:1.5;
  Alcotest.(check int) "trips reset" 0 (Breaker.trips b)

let test_breaker_failed_probe_retrips () =
  let b = mk_breaker () in
  for i = 1 to 3 do
    ignore (Breaker.on_failure b ~now:(0.1 *. float_of_int i))
  done;
  Alcotest.(check bool) "probe handed out" true (Breaker.allow b ~now:1.31);
  Alcotest.(check bool) "failed probe re-trips" true
    (Breaker.on_failure b ~now:1.4);
  check_state "open again" Breaker.Open b ~now:1.41;
  Alcotest.(check int) "two trips" 2 (Breaker.trips b)

(* an organic success after the open interval elapsed (a heartbeat got
   through before anyone asked for the probe) closes the breaker *)
let test_breaker_elapsed_open_closes_on_success () =
  let b = mk_breaker () in
  for i = 1 to 3 do
    ignore (Breaker.on_failure b ~now:(0.1 *. float_of_int i))
  done;
  Alcotest.(check bool) "stray success while open ignored" true
    (Breaker.on_success b ~now:0.5 = None);
  check_state "still open" Breaker.Open b ~now:0.5;
  (match Breaker.on_success b ~now:1.5 with
  | Some _ -> ()
  | None -> Alcotest.fail "elapsed-open success did not close");
  check_state "closed" Breaker.Closed b ~now:1.5;
  Alcotest.(check int) "trips reset" 0 (Breaker.trips b)

let test_breaker_window_expires_failures () =
  let b = mk_breaker () in
  ignore (Breaker.on_failure b ~now:0.);
  ignore (Breaker.on_failure b ~now:1.);
  (* outside the 10s window: the count restarts, no trip *)
  Alcotest.(check bool) "stale failures forgotten" false
    (Breaker.on_failure b ~now:12.);
  check_state "still closed" Breaker.Closed b ~now:12.

(* random op walks: the breaker transitions into Open only on the
   exact step that reported a failure — successes and time passage
   only ever move it toward Closed *)
let breaker_ops =
  QCheck.(pair small_nat (small_list (pair (int_bound 2) (int_bound 12))))

let prop_breaker_open_needs_failure (seed, ops) =
  let b = Breaker.create ~failure_threshold:2 ~window:5. ~open_base:0.5
      ~open_cap:8. ~rng:(rng_of seed) ()
  in
  let now = ref 0. in
  List.for_all
    (fun (kind, dt) ->
      now := !now +. (0.25 *. float_of_int dt);
      let before = Breaker.state b ~now:!now in
      (match kind with
      | 0 -> ignore (Breaker.on_failure b ~now:!now)
      | 1 -> ignore (Breaker.on_success b ~now:!now)
      | _ -> ignore (Breaker.allow b ~now:!now));
      let after = Breaker.state b ~now:!now in
      (* entering Open requires this very op to be an on_failure *)
      after <> Breaker.Open || before = Breaker.Open || kind = 0)
    ops

(* ------------------------------------------------------------------ *)
(* Admission *)

let test_admission_token_bucket () =
  let adm =
    Admission.create ~gradient_threshold:1e9
      ~classes:[ (7, Admission.cls ~rate:1000. ~burst:1000 ~priority:1 ()) ]
      ~default:(Admission.cls ~priority:2 ())
      ~now:0. ()
  in
  Alcotest.(check bool) "within burst" true
    (Admission.admit adm ~now:0. ~app:7 ~size:600 ~backlog:0);
  Alcotest.(check bool) "bucket exhausted" false
    (Admission.admit adm ~now:0. ~app:7 ~size:600 ~backlog:0);
  Alcotest.(check int) "refusal charged" 1 (Admission.shed_of adm ~app:7);
  Alcotest.(check bool) "refilled after a second" true
    (Admission.admit adm ~now:1. ~app:7 ~size:600 ~backlog:0);
  (* the default class is unlimited: never rate-shed *)
  Alcotest.(check bool) "default unlimited" true
    (Admission.admit adm ~now:1. ~app:9 ~size:1_000_000 ~backlog:0);
  Alcotest.(check int) "total refusals" 1 (Admission.shed_total adm)

(* under a sustained backlog gradient the shed floor climbs one
   priority level at a time, so the bulk class is refused strictly
   before the interactive one; once the backlog stops growing the
   floor decays and both flow again *)
let test_admission_sheds_low_before_high () =
  let hi = 1 and lo = 2 in
  let adm =
    Admission.create ~gradient_threshold:10. ~relief:0.25
      ~classes:
        [
          (hi, Admission.cls ~priority:2 ());
          (lo, Admission.cls ~priority:1 ());
        ]
      ~default:(Admission.cls ~priority:3 ())
      ~now:0. ()
  in
  let lo_first = ref None and hi_first = ref None in
  let step t backlog =
    let note r ok = if (not ok) && !r = None then r := Some t in
    note lo_first (Admission.admit adm ~now:t ~app:lo ~size:100 ~backlog);
    note hi_first (Admission.admit adm ~now:t ~app:hi ~size:100 ~backlog)
  in
  (* 3 seconds of backlog growing 1000 units/s *)
  let t = ref 0. in
  while !t < 3.0 do
    step !t (int_of_float (!t *. 1000.));
    t := !t +. 0.05
  done;
  (match (!lo_first, !hi_first) with
  | Some l, Some h ->
    Alcotest.(check bool) "low shed strictly first" true (l < h)
  | None, _ -> Alcotest.fail "bulk class never shed"
  | _, None -> Alcotest.fail "interactive class never shed");
  Alcotest.(check bool) "low shed more" true
    (Admission.shed_of adm ~app:lo > Admission.shed_of adm ~app:hi);
  Alcotest.(check bool) "floor capped at max priority" true
    (Admission.shed_floor adm <= 3);
  (* hold the backlog flat: the gradient EWMA decays, the floor steps
     back down and both classes are admitted again *)
  while !t < 11.0 do
    ignore (Admission.admit adm ~now:!t ~app:hi ~size:100 ~backlog:3000);
    t := !t +. 0.05
  done;
  Alcotest.(check int) "floor decayed" 0 (Admission.shed_floor adm);
  Alcotest.(check bool) "bulk flows again" true
    (Admission.admit adm ~now:!t ~app:lo ~size:100 ~backlog:3000)

(* ------------------------------------------------------------------ *)
(* Watchdog *)

let test_watchdog_respawns_frozen_worker () =
  let dog = Watchdog.create ~wedge_after:1.0 ~rng:(rng_of 3) ~now:0. () in
  let a = ref 0 and b = ref 0 in
  let respawned = ref 0 in
  Watchdog.watch dog ~id:"a" ~progress:(fun () -> !a) ~respawn:ignore;
  Watchdog.watch dog ~id:"b" ~progress:(fun () -> !b)
    ~respawn:(fun () -> incr respawned);
  let wedged = ref [] in
  let t = ref 0. in
  while !t < 2.01 do
    incr a;
    if !t < 1.0 then incr b;
    (* b freezes after 1s *)
    wedged := !wedged @ Watchdog.scan dog ~now:!t;
    t := !t +. 0.5
  done;
  Alcotest.(check (list string)) "b declared wedged once" [ "b" ] !wedged;
  Alcotest.(check int) "respawn fired" 1 !respawned;
  Alcotest.(check int) "wedged_total" 1 (Watchdog.wedged_total dog)

(* a node whose counter never advanced is merely idle — off the data
   path — and must never be respawned, however long its siblings work
   (this pins the e_worked guard) *)
let test_watchdog_spares_never_worked () =
  let dog = Watchdog.create ~wedge_after:1.0 ~rng:(rng_of 4) ~now:0. () in
  let a = ref 0 in
  let respawned = ref 0 in
  Watchdog.watch dog ~id:"a" ~progress:(fun () -> !a) ~respawn:ignore;
  Watchdog.watch dog ~id:"idle" ~progress:(fun () -> 0)
    ~respawn:(fun () -> incr respawned);
  let t = ref 0. in
  while !t < 6.01 do
    incr a;
    Alcotest.(check (list string)) "nothing wedged" [] (Watchdog.scan dog ~now:!t);
    t := !t +. 0.5
  done;
  Alcotest.(check int) "idle node untouched" 0 !respawned

(* a globally quiet system is not a wedge: when no sibling advances,
   even a worked-then-frozen node is left alone *)
let test_watchdog_spares_quiet_system () =
  let dog = Watchdog.create ~wedge_after:1.0 ~rng:(rng_of 5) ~now:0. () in
  let a = ref 0 and b = ref 0 in
  let respawned = ref 0 in
  let spawn () = incr respawned in
  Watchdog.watch dog ~id:"a" ~progress:(fun () -> !a) ~respawn:spawn;
  Watchdog.watch dog ~id:"b" ~progress:(fun () -> !b) ~respawn:spawn;
  let t = ref 0. in
  while !t < 1.01 do
    incr a;
    incr b;
    ignore (Watchdog.scan dog ~now:!t);
    t := !t +. 0.5
  done;
  (* both freeze: nothing advances, nothing is respawned *)
  while !t < 8.01 do
    Alcotest.(check (list string)) "quiet, not wedged" []
      (Watchdog.scan dog ~now:!t);
    t := !t +. 0.5
  done;
  Alcotest.(check int) "no respawns" 0 !respawned

(* repeated respawns of the same still-stuck node are spaced by the
   per-node backoff, not fired on every scan *)
let test_watchdog_backoff_spaces_respawns () =
  let dog =
    Watchdog.create ~wedge_after:0.5 ~respawn_base:5. ~respawn_cap:30.
      ~rng:(rng_of 6) ~now:0. ()
  in
  let a = ref 0 and b = ref 0 in
  let times = ref [] in
  let t = ref 0. in
  Watchdog.watch dog ~id:"a" ~progress:(fun () -> !a) ~respawn:ignore;
  Watchdog.watch dog ~id:"b" ~progress:(fun () -> !b)
    ~respawn:(fun () -> times := !t :: !times);
  while !t < 12.01 do
    incr a;
    if !t < 0.5 then incr b;
    ignore (Watchdog.scan dog ~now:!t);
    t := !t +. 0.25
  done;
  match List.rev !times with
  | t1 :: t2 :: _ ->
    Alcotest.(check bool) "second respawn backed off" true (t2 -. t1 >= 5.)
  | [ _ ] -> Alcotest.fail "second respawn never fired"
  | [] -> Alcotest.fail "no respawn fired"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "guard"
    [
      ( "backoff",
        [
          Alcotest.test_case "first delay and reset" `Quick
            test_backoff_first_delay;
          Alcotest.test_case "rejects bad params" `Quick
            test_backoff_rejects_bad_params;
          qtest "delays bounded by monotone envelope" backoff_params
            prop_backoff_bounded;
          qtest "same seed, same schedule" backoff_params
            prop_backoff_deterministic;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trip, probe, close" `Quick
            test_breaker_trip_and_probe;
          Alcotest.test_case "failed probe re-trips" `Quick
            test_breaker_failed_probe_retrips;
          Alcotest.test_case "elapsed open closes on success" `Quick
            test_breaker_elapsed_open_closes_on_success;
          Alcotest.test_case "failure window expires" `Quick
            test_breaker_window_expires_failures;
          qtest "never opens without a fresh failure" breaker_ops
            prop_breaker_open_needs_failure;
        ] );
      ( "admission",
        [
          Alcotest.test_case "token bucket" `Quick test_admission_token_bucket;
          Alcotest.test_case "sheds low before high, then recovers" `Quick
            test_admission_sheds_low_before_high;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "respawns a frozen worker" `Quick
            test_watchdog_respawns_frozen_worker;
          Alcotest.test_case "spares a node that never worked" `Quick
            test_watchdog_spares_never_worked;
          Alcotest.test_case "spares a globally quiet system" `Quick
            test_watchdog_spares_quiet_system;
          Alcotest.test_case "backoff spaces repeated respawns" `Quick
            test_watchdog_backoff_spaces_respawns;
        ] );
    ]
