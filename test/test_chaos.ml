(* Tests for the chaos engine: scenario text format, deterministic
   compilation, fault drivers, the invariant checker, and the bundled
   chaos-lab scenarios (including the trace-digest determinism oracle). *)

module Scenario = Iov_chaos.Scenario
module Invariant = Iov_chaos.Invariant
module Driver = Iov_chaos.Driver
module Chaos = Iov_chaos.Chaos
module Chaoslab = Iov_exp.Chaoslab
module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module NI = Iov_msg.Node_id
module Msg = Iov_msg.Message
module Tel = Iov_telemetry.Telemetry
module Sim = Iov_dsim.Sim
module Source = Iov_algos.Source
module Flood = Iov_algos.Flood
module Rnode = Iov_onet.Rnode

let id i = NI.synthetic i
let app = 1

let flood_node net ?bw i ~ups ~downs =
  let f = Flood.create () in
  Flood.set_route f ~app ~upstreams:(List.map id ups)
    ~downstreams:(List.map id downs) ();
  ignore (Network.add_node net ?bw ~id:(id i) (Flood.algorithm f));
  f

let source_node net ?bw ?payload_size i ~dests =
  let s = Source.create ?payload_size ~app ~dests:(List.map id dests) () in
  ignore (Network.add_node net ?bw ~id:(id i) (Source.algorithm s));
  s

(* ------------------------------------------------------------------ *)
(* Scenario text format *)

let full_scenario =
  {
    Scenario.name = "everything";
    seed = 9;
    faults =
      [
        Scenario.Kill { node = "B"; at = 5. };
        Scenario.Churn
          {
            nodes = [ "*" ];
            pick = Some 3;
            start = 10.;
            stop = 40.;
            down_after = Scenario.Exp 6.;
            up_after = Scenario.Const 4.;
          };
        Scenario.Flap
          {
            src = "A";
            dst = "B";
            start = 8.;
            stop = 20.;
            period = Scenario.Uniform (2., 4.);
            down = Scenario.Const 1.;
          };
        Scenario.Degrade
          { src = "A"; dst = "C"; rate = 51200.; at = 12.; restore = Some 30. };
        Scenario.Loss
          {
            src = "D";
            dst = "E";
            p = 0.2;
            corrupt = 0.05;
            at = 5.;
            clear = Some 25.;
          };
        Scenario.Partition
          { groups = [ [ "A"; "B" ]; [ "C"; "D"; "E" ] ]; at = 15.; heal = Some 22. };
      ];
    expects =
      [
        Scenario.No_delivery_after_teardown { grace = 0.5 };
        Scenario.Domino_completes { within = 2. };
        Scenario.Reconverge { within = 20. };
        Scenario.Throughput_recovers { tol = 0.3; settle = 10.; window = 5. };
        Scenario.Reroute_recovers { ratio = 0.9; within = 5.; window = 2. };
        Scenario.Partition_silent;
        Scenario.Min_events 1000;
      ];
  }

let test_roundtrip () =
  let text = Scenario.to_string full_scenario in
  let back = Scenario.parse text in
  if back <> full_scenario then
    Alcotest.failf "round-trip changed the scenario:\n%s\nvs\n%s" text
      (Scenario.to_string back);
  (* and printing is a fixed point *)
  Alcotest.(check string) "canonical form stable" text
    (Scenario.to_string back)

let test_parse_errors () =
  let bad line text =
    match Scenario.parse text with
    | _ -> Alcotest.failf "parsed malformed input: %S" text
    | exception Scenario.Parse_error (l, _) ->
      Alcotest.(check int) ("error line of " ^ text) line l
  in
  bad 1 "kill node=B at=5";
  (* no scenario header *)
  bad 2 "scenario x seed=1\nkill at=5";
  (* kill without node *)
  bad 2 "scenario x seed=1\nfrobnicate everything";
  bad 3 "scenario x seed=1\nkill node=B at=5\nloss link=AB p=0.5 at=1";
  bad 2 "scenario x seed=1\nexpect min-events many";
  bad 2 "scenario x seed=1\nchurn nodes=A start=4 stop=2 down=exp:1 up=const:1"

let test_comments_and_blanks () =
  let sc =
    Scenario.parse
      "# a comment\n\nscenario c seed=3\n  # indented comment\nkill node=X \
       at=1\n\n"
  in
  Alcotest.(check string) "name" "c" sc.Scenario.name;
  Alcotest.(check int) "one fault" 1 (List.length sc.Scenario.faults)

(* ------------------------------------------------------------------ *)
(* Compilation *)

let test_compile_deterministic () =
  let nodes = [ "A"; "B"; "C"; "D"; "E" ] in
  let a1 = Scenario.compile full_scenario ~nodes in
  let a2 = Scenario.compile full_scenario ~nodes in
  Alcotest.(check bool) "same schedule" true (a1 = a2);
  let a3 =
    Scenario.compile { full_scenario with Scenario.seed = 10 } ~nodes
  in
  Alcotest.(check bool) "seed changes the schedule" true (a1 <> a3);
  (* sorted by time *)
  let rec sorted = function
    | (t1, _) :: ((t2, _) :: _ as rest) -> t1 <= t2 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted a1)

let test_compile_churn_shape () =
  let sc =
    Scenario.parse
      "scenario churny seed=4\n\
       churn nodes=* pick=2 start=10 stop=30 down=exp:5 up=const:3\n"
  in
  let nodes = [ "a"; "b"; "c"; "d" ] in
  let actions = Scenario.compile sc ~nodes in
  let kills =
    List.filter_map
      (function t, Scenario.Kill_node n -> Some (t, n) | _ -> None)
      actions
  in
  let spawns =
    List.filter_map
      (function t, Scenario.Spawn_node n -> Some (t, n) | _ -> None)
      actions
  in
  Alcotest.(check bool) "some kills scheduled" true (List.length kills > 0);
  Alcotest.(check int) "every kill gets a respawn" (List.length kills)
    (List.length spawns);
  List.iter
    (fun (t, n) ->
      Alcotest.(check bool) "victim is a candidate" true (List.mem n nodes);
      Alcotest.(check bool) "kill inside [start,stop)" true
        (t >= 10. && t < 30.))
    kills;
  let victims = List.sort_uniq compare (List.map snd kills) in
  Alcotest.(check bool) "at most pick distinct victims" true
    (List.length victims <= 2);
  (* each victim's timeline alternates kill/spawn *)
  List.iter
    (fun v ->
      let mine =
        List.filter_map
          (function
            | t, Scenario.Kill_node n when n = v -> Some (t, `K)
            | t, Scenario.Spawn_node n when n = v -> Some (t, `S)
            | _ -> None)
          actions
      in
      let rec alternating = function
        | (t1, `K) :: ((t2, `S) :: _ as rest) ->
          t1 < t2 && alternating rest
        | (t1, `S) :: ((t2, `K) :: _ as rest) -> t1 < t2 && alternating rest
        | [ _ ] | [] -> true
        | _ -> false
      in
      Alcotest.(check bool) (v ^ " alternates") true (alternating mine);
      match mine with
      | (_, `K) :: _ -> ()
      | _ -> Alcotest.fail "victim timeline must start with a kill")
    victims

let test_fault_span_and_windows () =
  Alcotest.(check (option (pair (float 0.) (float 0.)))) "empty span" None
    (Scenario.fault_span []);
  Alcotest.(check (option (pair (float 0.) (float 0.)))) "span"
    (Some (1., 7.))
    (Scenario.fault_span
       [ (1., Scenario.Kill_node "a"); (7., Scenario.Spawn_node "a") ]);
  match Scenario.partition_windows full_scenario with
  | [ (15., 22., groups) ] ->
    Alcotest.(check int) "two groups" 2 (List.length groups)
  | _ -> Alcotest.fail "expected one partition window"

let test_sample_bounds () =
  let rng = Random.State.make [| 1 |] in
  for _ = 1 to 200 do
    Alcotest.(check (float 0.)) "const" 2.5
      (Scenario.sample rng (Scenario.Const 2.5));
    let u = Scenario.sample rng (Scenario.Uniform (1., 3.)) in
    Alcotest.(check bool) "uniform in range" true (u >= 1. && u <= 3.);
    let e = Scenario.sample rng (Scenario.Exp 4.) in
    Alcotest.(check bool) "exp finite nonneg" true
      (Float.is_finite e && e >= 0.)
  done

(* ------------------------------------------------------------------ *)
(* Drivers *)

let test_threaded_driver_order () =
  let applied = ref [] in
  let t =
    Driver.run_threaded ~speedup:100.
      ~apply:(fun a -> applied := a :: !applied)
      [
        (0.0, Scenario.Kill_node "a");
        (0.5, Scenario.Spawn_node "a");
        (1.0, Scenario.Kill_node "b");
      ]
  in
  Thread.join t;
  match List.rev !applied with
  | [ Scenario.Kill_node "a"; Scenario.Spawn_node "a"; Scenario.Kill_node "b" ]
    ->
    ()
  | l -> Alcotest.failf "unexpected application order (%d actions)"
           (List.length l)

let test_threaded_driver_survives_exceptions () =
  let applied = ref 0 in
  let t =
    Driver.run_threaded ~speedup:100.
      ~apply:(fun a ->
        incr applied;
        match a with Scenario.Kill_node _ -> failwith "boom" | _ -> ())
      [ (0.0, Scenario.Kill_node "a"); (0.3, Scenario.Spawn_node "a") ]
  in
  Thread.join t;
  Alcotest.(check int) "kept going past the failing action" 2 !applied

let test_rnode_kill () =
  let a = Rnode.start Alg.null in
  let b = Rnode.start Alg.null in
  Rnode.connect a (Rnode.id b);
  Rnode.send a
    (Msg.data ~origin:(Rnode.id a) ~app ~seq:0 (Bytes.create 64))
    (Rnode.id b);
  Thread.delay 0.3;
  Alcotest.(check bool) "b processed the message" true
    (Rnode.app_bytes b ~app > 0);
  Rnode.kill b;
  Rnode.kill b;
  (* idempotent *)
  Thread.delay 0.2;
  Rnode.shutdown a

(* ------------------------------------------------------------------ *)
(* Invariant checker *)

let test_min_events_guard () =
  let sc =
    {
      Scenario.name = "idle";
      seed = 0;
      faults = [];
      expects = [ Scenario.Min_events 10 ];
    }
  in
  let report = Invariant.check ~scenario:sc ~actions:[] ~horizon:1. [] in
  Alcotest.(check bool) "empty trace flagged" false (Invariant.ok report);
  Alcotest.(check int) "one violation" 1
    (List.length (Invariant.violations report))

let test_checker_flags_dead_chain () =
  (* killing the middle of a chain cannot reconverge: the checker must
     say so on a scenario that wrongly expects recovery *)
  let sc =
    Scenario.parse
      "scenario dead-chain seed=1\nkill node=n2 at=2\nexpect reconverge \
       within=3\n"
  in
  let o =
    Chaoslab.run ~quiet:true ~until:10. ~workload:(Chaoslab.Flood_chain 3) sc
  in
  Alcotest.(check bool) "violation found" false (Invariant.ok o.Chaoslab.report)

(* ------------------------------------------------------------------ *)
(* The chaos lab: bundled scenarios and the determinism oracle *)

let test_builtin_digest_oracle () =
  (* the acceptance criterion: the same scenario against the same seeded
     workload yields a byte-identical telemetry trace *)
  let digest_of () =
    match Chaoslab.run_builtin ~quiet:true "smoke" with
    | Some o -> Tel.digest o.Chaoslab.telemetry
    | None -> Alcotest.fail "smoke builtin missing"
  in
  let d1 = digest_of () in
  let d2 = digest_of () in
  Alcotest.(check string) "byte-identical traces" d1 d2;
  (* and the seed matters where the workload has randomness *)
  match Chaoslab.run_builtin ~quiet:true ~seed:5 "churn-session" with
  | Some o ->
    let d42 =
      match Chaoslab.run_builtin ~quiet:true "churn-session" with
      | Some o' -> Tel.digest o'.Chaoslab.telemetry
      | None -> Alcotest.fail "builtin missing"
    in
    Alcotest.(check bool) "different seed, different trace" true
      (Tel.digest o.Chaoslab.telemetry <> d42)
  | None -> Alcotest.fail "churn-session builtin missing"

let test_smoke_suite () =
  (* all regular bundled scenarios pass; the deliberately-broken fixture
     is flagged *)
  Alcotest.(check bool) "smoke suite green" true (Chaoslab.smoke ~quiet:true ())

let test_broken_fixture_is_flagged () =
  match Chaoslab.run_builtin ~quiet:true Chaoslab.broken_fixture with
  | Some o ->
    Alcotest.(check bool) "broken oracle caught" false
      (Invariant.ok o.Chaoslab.report)
  | None -> Alcotest.fail "broken fixture missing"

let test_partition_builtin_details () =
  match Chaoslab.run_builtin ~quiet:true "partition-heal" with
  | None -> Alcotest.fail "builtin missing"
  | Some o ->
    Alcotest.(check bool) "expectations hold" true
      (Invariant.ok o.Chaoslab.report);
    (* the trace really contains drops during the partition window *)
    let drops_in_window =
      List.filter
        (fun (e : Tel.event) ->
          e.kind = Iov_telemetry.Event.Drop && e.time > 4. && e.time < 8.)
        (Tel.events o.Chaoslab.telemetry)
    in
    Alcotest.(check bool) "partition blackholed traffic" true
      (List.length drops_in_window > 10)

(* ------------------------------------------------------------------ *)
(* Randomized: any kill set on the diamond topology keeps the Domino
   ordering invariants — no orphaned link delivers after its upstream's
   teardown, and every live consumer learns of the failure. *)

let kills_gen =
  QCheck.Gen.(
    let victim = int_range 2 6 in
    let at = float_range 1. 4. in
    list_size (int_range 1 4) (pair victim at)
    |> map (fun l ->
           (* one kill per victim, stable order *)
           List.fold_left
             (fun acc (i, t) ->
               if List.mem_assoc i acc then acc else (i, t) :: acc)
             [] l
           |> List.rev))

let kills_print l =
  String.concat "; "
    (List.map (fun (i, t) -> Printf.sprintf "kill %d at %.2f" i t) l)

let domino_prop kills =
  let tl = Tel.create () in
  let net = Network.create ~buffer_capacity:4 ~telemetry:tl () in
  let _ = source_node net ~payload_size:512 1 ~dests:[ 2; 3 ] in
  let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[ 4; 6 ] in
  let _ = flood_node net 3 ~ups:[ 1 ] ~downs:[ 4 ] in
  let _ = flood_node net 4 ~ups:[ 2; 3 ] ~downs:[ 5 ] in
  let _ = flood_node net 5 ~ups:[ 4 ] ~downs:[] in
  let _ = flood_node net 6 ~ups:[ 2 ] ~downs:[] in
  let sim = Network.sim net in
  List.iter
    (fun (i, t) ->
      ignore (Sim.schedule_at sim ~time:t (fun () -> Network.kill_node net (id i))))
    kills;
  Network.run net ~until:10.;
  let scenario =
    {
      Scenario.name = "domino-prop";
      seed = 0;
      faults = [];
      expects =
        [
          Scenario.No_delivery_after_teardown { grace = 0.5 };
          Scenario.Domino_completes { within = 2. };
        ];
    }
  in
  let actions =
    List.stable_sort
      (fun (a, _) (b, _) -> Float.compare a b)
      (List.map
         (fun (i, t) -> (t, Scenario.Kill_node (string_of_int i)))
         kills)
  in
  let report =
    Invariant.check ~scenario ~actions ~horizon:10. (Tel.events tl)
  in
  if not (Invariant.ok report) then
    QCheck.Test.fail_report (Invariant.to_string report)
  else true

let domino_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"random kill sets keep Domino order"
       (QCheck.make ~print:kills_print kills_gen)
       domino_prop)

let () =
  Alcotest.run "chaos"
    [
      ( "scenario",
        [
          Alcotest.test_case "text round-trip" `Quick test_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "comments and blanks" `Quick
            test_comments_and_blanks;
        ] );
      ( "compile",
        [
          Alcotest.test_case "deterministic" `Quick test_compile_deterministic;
          Alcotest.test_case "churn shape" `Quick test_compile_churn_shape;
          Alcotest.test_case "span and windows" `Quick
            test_fault_span_and_windows;
          Alcotest.test_case "distribution sampling" `Quick test_sample_bounds;
        ] );
      ( "driver",
        [
          Alcotest.test_case "threaded order" `Quick test_threaded_driver_order;
          Alcotest.test_case "threaded exception safety" `Quick
            test_threaded_driver_survives_exceptions;
          Alcotest.test_case "rnode kill" `Quick test_rnode_kill;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "min-events guard" `Quick test_min_events_guard;
          Alcotest.test_case "flags a dead chain" `Quick
            test_checker_flags_dead_chain;
        ] );
      ( "chaoslab",
        [
          Alcotest.test_case "digest oracle" `Quick test_builtin_digest_oracle;
          Alcotest.test_case "smoke suite" `Quick test_smoke_suite;
          Alcotest.test_case "broken fixture flagged" `Quick
            test_broken_fixture_is_flagged;
          Alcotest.test_case "partition details" `Quick
            test_partition_builtin_details;
        ] );
      ("qcheck", [ domino_qcheck ]);
    ]
