(* Tests for the gossip membership subsystem: the central mtype
   registry, SWIM precedence and refutation, the bounded view, and
   whole simulated overlays — observer-free bootstrap, failure
   detection, same-id respawn, seeded determinism, and the routing
   liveness oracle. *)

module Network = Iov_core.Network
module NI = Iov_msg.Node_id
module Mt = Iov_msg.Mtype
module Tel = Iov_telemetry.Telemetry
module Ev = Iov_telemetry.Event
module Swim = Iov_gossip.Swim
module View = Iov_gossip.View
module Gossip = Iov_gossip.Gossip
module Neighbor = Iov_routing.Neighbor
module Gl = Iov_exp.Gossiplab

let qtest ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let id i = NI.synthetic i
let ids_to_strings l = List.sort NI.compare l |> List.map NI.to_string

(* ------------------------------------------------------------------ *)
(* The central Custom-tag registry *)

let test_registry_roundtrip () =
  let claims = Mt.Registry.all () in
  Alcotest.(check bool) "table populated" true (List.length claims >= 4);
  List.iter
    (fun (tag, owner, name) ->
      (match Mt.of_int (Mt.to_int (Mt.custom tag)) with
      | Mt.Custom n -> Alcotest.(check int) "wire roundtrip" tag n
      | other ->
        Alcotest.failf "Custom %d decoded as %s" tag (Mt.to_string other));
      match Mt.Registry.claimed tag with
      | Some (o, n) ->
        Alcotest.(check (pair string string)) "claim intact" (owner, name)
          (o, n)
      | None -> Alcotest.failf "claim for tag %d vanished" tag)
    claims;
  (* the gossip subsystem's slice, claimed at module initialization *)
  List.iter
    (fun (tag, name) ->
      Alcotest.(check (option (pair string string)))
        name
        (Some ("gossip", name))
        (Mt.Registry.claimed tag))
    [ (112, "ping"); (113, "ack"); (114, "ping-req"); (115, "view") ]

let test_registry_collision () =
  (* re-registering the identical claim is idempotent... *)
  Alcotest.(check int) "idempotent"
    (Mt.to_int Gossip.ping_kind)
    (Mt.to_int (Mt.Registry.register ~owner:"gossip" ~name:"ping" 112));
  (* ...while any differing claim of the same tag is a collision *)
  (match Mt.Registry.register ~owner:"intruder" ~name:"ping" 112 with
  | _ -> Alcotest.fail "foreign owner accepted"
  | exception Invalid_argument _ -> ());
  match Mt.Registry.register ~owner:"gossip" ~name:"pong" 112 with
  | _ -> Alcotest.fail "renamed claim accepted"
  | exception Invalid_argument _ -> ()

let registry_qtests =
  [
    qtest "custom tags survive the wire" QCheck.(int_bound 5000) (fun tag ->
        Mt.of_int (Mt.to_int (Mt.custom tag)) = Mt.custom tag);
  ]

(* ------------------------------------------------------------------ *)
(* SWIM precedence and refutation *)

let test_swim_precedence () =
  let sw = Swim.create ~self:(id 1) () in
  let p = id 2 in
  let apply s i =
    Swim.apply sw ~now:0. { Swim.u_node = p; u_status = s; u_inc = i }
  in
  Alcotest.(check bool) "first sighting" true
    (apply Swim.Alive 0 = Swim.Fresh None);
  Alcotest.(check bool) "same alive is stale" true
    (apply Swim.Alive 0 = Swim.Stale);
  Alcotest.(check bool) "suspect beats alive at equal inc" true
    (apply Swim.Suspect 0 = Swim.Fresh (Some Swim.Alive));
  Alcotest.(check bool) "alive at equal inc cannot clear suspicion" true
    (apply Swim.Alive 0 = Swim.Stale);
  Alcotest.(check bool) "alive at higher inc refutes suspicion" true
    (apply Swim.Alive 1 = Swim.Fresh (Some Swim.Suspect));
  Alcotest.(check bool) "dead beats alive at equal inc" true
    (apply Swim.Dead 1 = Swim.Fresh (Some Swim.Alive));
  Alcotest.(check bool) "suspicion never beats a confirmation" true
    (apply Swim.Suspect 5 = Swim.Stale);
  Alcotest.(check bool) "alive at the dead inc stays dead" true
    (apply Swim.Alive 1 = Swim.Stale);
  Alcotest.(check bool) "respawn at dead_inc + 1 resurrects" true
    (apply Swim.Alive 2 = Swim.Fresh (Some Swim.Dead));
  Alcotest.(check bool) "alive again" true (Swim.is_alive sw p)

let test_swim_refutation () =
  let sw = Swim.create ~self:(id 1) () in
  let r =
    Swim.apply sw ~now:0.
      { Swim.u_node = id 1; u_status = Swim.Suspect; u_inc = 0 }
  in
  Alcotest.(check bool) "defamation refuted" true (r = Swim.Refuted);
  Alcotest.(check int) "incarnation bumped past the claim" 1
    (Swim.self_inc sw);
  (match Swim.piggyback sw ~limit:8 with
  | [ u ] ->
    Alcotest.(check bool) "rebuttal is about self" true
      (NI.equal u.Swim.u_node (id 1));
    Alcotest.(check bool) "rebuttal says alive" true
      (u.Swim.u_status = Swim.Alive);
    Alcotest.(check int) "at the bumped incarnation" 1 u.Swim.u_inc
  | l -> Alcotest.failf "expected one rebuttal, got %d" (List.length l));
  let r =
    Swim.apply sw ~now:0.
      { Swim.u_node = id 1; u_status = Swim.Dead; u_inc = 1 }
  in
  Alcotest.(check bool) "death claim refuted too" true (r = Swim.Refuted);
  Alcotest.(check int) "bumped again" 2 (Swim.self_inc sw)

let test_swim_transmit_budget () =
  let sw = Swim.create ~self:(id 1) () in
  ignore
    (Swim.apply sw ~now:0.
       { Swim.u_node = id 2; u_status = Swim.Alive; u_inc = 0 });
  let budget = Swim.transmit_budget sw in
  for ride = 1 to budget do
    Alcotest.(check int)
      (Printf.sprintf "ride %d still out" ride)
      1
      (List.length (Swim.piggyback sw ~limit:8))
  done;
  Alcotest.(check int) "retired past the budget" 0
    (List.length (Swim.piggyback sw ~limit:8));
  Alcotest.(check int) "queue drained" 0 (Swim.queue_length sw)

(* ------------------------------------------------------------------ *)
(* The bounded partial view *)

let test_view_bounded () =
  let rng = Random.State.make [| 7 |] in
  let vw = View.create ~capacity:16 ~self:(id 1) () in
  for i = 2 to 101 do
    View.add vw ~rng (id i)
  done;
  Alcotest.(check int) "capacity respected" 16 (View.size vw);
  Alcotest.(check bool) "self never cached" false (View.mem vw (id 1));
  let ps = View.peers vw in
  Alcotest.(check int) "descriptors distinct" (List.length ps)
    (List.length (List.sort_uniq NI.compare ps))

let test_view_shuffle_out () =
  let rng = Random.State.make [| 7 |] in
  let vw = View.create ~capacity:16 ~self:(id 1) () in
  for i = 2 to 20 do
    View.add vw ~rng (id i)
  done;
  let out = View.shuffle_out vw ~rng ~size:8 ~exclude:(id 2) in
  Alcotest.(check bool) "self rides first" true
    (NI.equal (List.hd out) (id 1));
  Alcotest.(check bool) "bounded by size" true (List.length out <= 8);
  Alcotest.(check bool) "partner excluded" false
    (List.exists (NI.equal (id 2)) out)

(* ------------------------------------------------------------------ *)
(* Whole simulated overlays *)

let observer_bytes net =
  List.fold_left
    (fun acc mt -> acc + Network.control_bytes_sent_all net mt)
    0
    [ Mt.Boot; Mt.Boot_reply; Mt.Request; Mt.Status ]

let test_bootstrap_without_observer () =
  let b = Gl.build ~seed:5 ~n:12 () in
  Network.run b.Gl.b_net ~until:6.;
  let expected = ids_to_strings (Array.to_list b.Gl.b_ids) in
  Array.iteri
    (fun i g ->
      match g with
      | Some g ->
        Alcotest.(check (list string))
          (Printf.sprintf "n%d sees the full membership" i)
          expected
          (ids_to_strings (Gossip.alive g))
      | None -> Alcotest.failf "n%d missing" i)
    b.Gl.b_gossips;
  Alcotest.(check int) "zero observer traffic" 0 (observer_bytes b.Gl.b_net)

let test_kill_suspect_confirm () =
  let tel = Tel.create () in
  let b = Gl.build ~seed:11 ~telemetry:tel ~n:12 () in
  Network.run b.Gl.b_net ~until:4.;
  let victim = b.Gl.b_ids.(7) in
  Network.kill_node b.Gl.b_net victim;
  Network.run b.Gl.b_net ~until:14.;
  Array.iteri
    (fun i g ->
      match g with
      | Some g when not (NI.equal (Gossip.self g) victim) ->
        Alcotest.(check bool)
          (Printf.sprintf "n%d dropped the victim" i)
          false
          (Gossip.is_alive g victim)
      | _ -> ())
    b.Gl.b_gossips;
  let about k e =
    e.Tel.kind = k
    && match e.Tel.peer with Some p -> NI.equal p victim | None -> false
  in
  let evs = Tel.events tel in
  Alcotest.(check bool) "a suspect event was recorded" true
    (List.exists (about Ev.Suspect) evs);
  Alcotest.(check bool) "a confirm event was recorded" true
    (List.exists (about Ev.Confirm) evs)

let test_respawn_rejoins_at_higher_incarnation () =
  let b = Gl.build ~seed:3 ~n:10 () in
  Network.run b.Gl.b_net ~until:4.;
  let victim = b.Gl.b_ids.(4) in
  Network.kill_node b.Gl.b_net victim;
  (* long enough for the death to be confirmed overlay-wide *)
  Network.run b.Gl.b_net ~until:12.;
  (match b.Gl.b_gossips.(0) with
  | Some g ->
    Alcotest.(check bool) "death learned before respawn" false
      (Gossip.is_alive g victim)
  | None -> Alcotest.fail "seed gossip missing");
  b.Gl.b_spawn "n4";
  Network.run b.Gl.b_net ~until:24.;
  Array.iteri
    (fun i g ->
      match g with
      | Some g ->
        Alcotest.(check bool)
          (Printf.sprintf "n%d sees the respawn alive" i)
          true
          (Gossip.is_alive g victim)
      | None -> Alcotest.failf "n%d missing" i)
    b.Gl.b_gossips;
  (* the stale death rumor lost to a strictly higher incarnation *)
  match
    b.Gl.b_gossips.(0)
    |> Option.map (fun g -> Swim.status_of (Gossip.swim g) victim)
  with
  | Some (Some (Swim.Alive, inc)) ->
    Alcotest.(check bool) "incarnation above the recorded death" true
      (inc >= 1)
  | Some (Some (st, _)) ->
    Alcotest.failf "respawn still %s" (Swim.status_to_string st)
  | Some None | None -> Alcotest.fail "respawn unknown at the seed"

let digest_of_run seed =
  let tel = Tel.create () in
  let b = Gl.build ~seed ~telemetry:tel ~n:10 () in
  Network.run b.Gl.b_net ~until:3.;
  Network.kill_node b.Gl.b_net b.Gl.b_ids.(6);
  Network.run b.Gl.b_net ~until:10.;
  Tel.digest tel

let test_seeded_determinism () =
  Alcotest.(check string) "same seed, identical telemetry"
    (digest_of_run 21) (digest_of_run 21)

(* ------------------------------------------------------------------ *)
(* The routing liveness oracle *)

let test_neighbor_consumes_gossip_liveness () =
  let nb = Neighbor.create ~self:(id 1) () in
  let peer = Neighbor.create ~self:(id 2) () in
  ignore (Neighbor.on_hello nb ~now:0.1 (Neighbor.hello peer ~now:0.));
  Alcotest.(check bool) "peer learned from hello" true
    (Neighbor.is_peer nb (id 2));
  let sw = Swim.create ~self:(id 1) () in
  ignore
    (Swim.apply sw ~now:0.
       { Swim.u_node = id 2; u_status = Swim.Alive; u_inc = 0 });
  Neighbor.set_liveness nb (fun p -> Swim.is_alive sw p);
  Alcotest.(check (list string)) "fresh hello plus alive verdict holds" []
    (List.map NI.to_string (Neighbor.expire nb ~now:0.2));
  ignore
    (Swim.apply sw ~now:0.
       { Swim.u_node = id 2; u_status = Swim.Dead; u_inc = 0 });
  (* the gossip verdict condemns the peer ahead of the hello timeout *)
  Alcotest.(check (list string)) "condemned immediately"
    (List.map NI.to_string [ id 2 ])
    (List.map NI.to_string (Neighbor.expire nb ~now:0.3));
  Alcotest.(check bool) "gone from the table" false
    (Neighbor.is_peer nb (id 2))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "gossip"
    [
      ( "registry",
        [
          Alcotest.test_case "every claim roundtrips" `Quick
            test_registry_roundtrip;
          Alcotest.test_case "collisions rejected" `Quick
            test_registry_collision;
        ]
        @ registry_qtests );
      ( "swim",
        [
          Alcotest.test_case "status precedence" `Quick test_swim_precedence;
          Alcotest.test_case "self refutation" `Quick test_swim_refutation;
          Alcotest.test_case "transmit budget" `Quick
            test_swim_transmit_budget;
        ] );
      ( "view",
        [
          Alcotest.test_case "bounded and self-free" `Quick test_view_bounded;
          Alcotest.test_case "shuffle sample" `Quick test_view_shuffle_out;
        ] );
      ( "overlay",
        [
          Alcotest.test_case "observer-free bootstrap" `Quick
            test_bootstrap_without_observer;
          Alcotest.test_case "kill, suspect, confirm" `Quick
            test_kill_suspect_confirm;
          Alcotest.test_case "same-id respawn rejoins" `Quick
            test_respawn_rejoins_at_higher_incarnation;
          Alcotest.test_case "seeded determinism" `Quick
            test_seeded_determinism;
        ] );
      ( "routing",
        [
          Alcotest.test_case "neighbor liveness oracle" `Quick
            test_neighbor_consumes_gossip_liveness;
        ] );
    ]
