(* Tests for the telemetry subsystem: metrics registry, flight
   recorder, trace ids, deterministic JSONL traces and the causal
   send/deliver invariant under the simulator. *)

module Metrics = Iov_telemetry.Metrics
module Tracer = Iov_telemetry.Tracer
module Ev = Iov_telemetry.Event
module Tel = Iov_telemetry.Telemetry
module Network = Iov_core.Network
module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module NI = Iov_msg.Node_id
module Msg = Iov_msg.Message
module Topo = Iov_topo.Topo
module Harness = Iov_exp.Harness

let qtest ?(count = 50) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let id i = NI.synthetic i

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_counter_gauge () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~scope:"n1" "sent" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 10;
  Alcotest.(check int) "counter" 12 (Metrics.value c);
  (* registration is idempotent: same handle back *)
  Alcotest.(check bool) "same handle" true
    (c == Metrics.counter m ~scope:"n1" "sent");
  let g = Metrics.gauge m "load" in
  Metrics.set g 0.75;
  Alcotest.(check (float 0.)) "gauge" 0.75 (Metrics.gauge_value g);
  (* a name registered as one kind cannot come back as another *)
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: n1.sent already registered, not a gauge")
    (fun () -> ignore (Metrics.gauge m ~scope:"n1" "sent"))

let test_histogram_buckets () =
  Alcotest.(check int) "bucket of 0" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "bucket of -5" 0 (Metrics.bucket_of (-5));
  Alcotest.(check int) "bucket of 1" 1 (Metrics.bucket_of 1);
  Alcotest.(check int) "bucket of 2" 2 (Metrics.bucket_of 2);
  Alcotest.(check int) "bucket of 3" 2 (Metrics.bucket_of 3);
  Alcotest.(check int) "bucket of 4" 3 (Metrics.bucket_of 4);
  Alcotest.(check int) "bucket of 1024" 11 (Metrics.bucket_of 1024);
  Alcotest.(check int) "bucket of 1025" 11 (Metrics.bucket_of 1025);
  Alcotest.(check int) "bucket of max_int" 62 (Metrics.bucket_of max_int);
  let m = Metrics.create () in
  let h = Metrics.histogram m "sizes" in
  List.iter (Metrics.observe h) [ 0; 1; 1; 5; 1024 ];
  Alcotest.(check int) "count" 5 (Metrics.hist_count h);
  Alcotest.(check int) "sum" 1031 (Metrics.hist_sum h);
  Alcotest.(check (list (pair int int))) "buckets"
    [ (0, 1); (1, 2); (3, 1); (11, 1) ]
    (Metrics.hist_buckets h)

let qcheck_bucket_bounds =
  qtest ~count:300 "bucket_of respects [2^(b-1), 2^b-1]"
    QCheck.(int_bound ((1 lsl 40) - 1))
    (fun v ->
      let b = Metrics.bucket_of v in
      if v <= 0 then b = 0
      else (1 lsl (b - 1)) <= v && v <= (1 lsl b) - 1)

let test_snapshot_and_blob () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~scope:"10.0.0.1:7001" "sent" in
  let g = Metrics.gauge m ~scope:"10.0.0.1:7001" "buffered" in
  let h = Metrics.histogram m ~scope:"10.0.0.1:7001" "bytes" in
  let other = Metrics.counter m ~scope:"10.0.0.2:7002" "sent" in
  Metrics.add c 7;
  Metrics.set g 3.;
  Metrics.observe h 100;
  Metrics.observe h 200;
  Metrics.incr other;
  (* scoped snapshot strips the scope prefix and excludes other nodes *)
  let snap = Metrics.snapshot ~scope:"10.0.0.1:7001" m in
  Alcotest.(check (list string)) "scoped names"
    [ "sent"; "buffered"; "bytes" ]
    (List.map fst snap);
  (match List.assoc "sent" snap with
  | Metrics.Counter v -> Alcotest.(check int) "snap counter" 7 v
  | _ -> Alcotest.fail "sent is not a counter");
  (* blob roundtrip preserves every value *)
  let snap' = Metrics.of_blob (Metrics.to_blob ~scope:"10.0.0.1:7001" m) in
  Alcotest.(check bool) "blob roundtrip" true (snap = snap');
  (* json is deterministic *)
  Alcotest.(check string) "json stable"
    (Metrics.to_json ~scope:"10.0.0.1:7001" m)
    (Metrics.to_json ~scope:"10.0.0.1:7001" m);
  Alcotest.check_raises "truncated blob" Iov_msg.Wire.Truncated (fun () ->
      ignore (Metrics.of_blob (Bytes.create 2)))

(* ------------------------------------------------------------------ *)
(* Trace ids *)

let test_trace_ids () =
  let origin = NI.of_string "10.1.2.3:4567" in
  let a = Ev.id ~origin ~app:1 ~seq:1 in
  let b = Ev.id ~origin ~app:1 ~seq:2 in
  let c = Ev.id ~origin ~app:2 ~seq:1 in
  Alcotest.(check bool) "deterministic" true (a = Ev.id ~origin ~app:1 ~seq:1);
  Alcotest.(check bool) "seq-sensitive" true (a <> b);
  Alcotest.(check bool) "app-sensitive" true (a <> c);
  Alcotest.(check bool) "non-negative" true (a >= 0 && b >= 0 && c >= 0);
  Alcotest.(check bool) "never no_id" true
    (a <> Ev.no_id && b <> Ev.no_id && c <> Ev.no_id);
  let m = Msg.data ~origin ~app:1 ~seq:1 (Bytes.create 8) in
  Alcotest.(check bool) "id_of_msg agrees" true (Ev.id_of_msg m = a)

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let test_tracer_ring () =
  let tr = Tracer.create ~scope:(id 1) ~capacity:4 in
  for i = 1 to 10 do
    Tracer.record tr ~gseq:i ~time:(float_of_int i) ~kind:Ev.Send
      ~peer:(id 2) ~id:i ~app:1 ~mseq:i ~size:100
  done;
  Alcotest.(check int) "length capped" 4 (Tracer.length tr);
  Alcotest.(check int) "total" 10 (Tracer.total tr);
  Alcotest.(check int) "dropped" 6 (Tracer.dropped tr);
  let seen = ref [] in
  Tracer.iter tr
    (fun ~gseq ~time:_ ~kind:_ ~peer:_ ~id:_ ~app:_ ~mseq:_ ~size:_ ->
      seen := gseq :: !seen);
  Alcotest.(check (list int)) "oldest first, newest retained"
    [ 7; 8; 9; 10 ] (List.rev !seen)

let test_telemetry_disabled () =
  let tl = Tel.create ~enabled:false () in
  let tr = Tel.tracer tl (id 1) in
  Tel.record tl tr ~time:0. ~kind:Ev.Send ~peer:(id 2) ~id:5 ~app:1 ~mseq:0
    ~size:10;
  Alcotest.(check int) "nothing recorded" 0 (Tel.total_events tl);
  Tel.set_enabled tl true;
  Tel.record tl tr ~time:0. ~kind:Ev.Send ~peer:(id 2) ~id:5 ~app:1 ~mseq:0
    ~size:10;
  Alcotest.(check int) "recorded once enabled" 1 (Tel.total_events tl)

(* ------------------------------------------------------------------ *)
(* Deterministic traces under the simulator *)

let run_flood ?(topo_seed = 7) ~seed ~until () =
  let tele = Tel.create () in
  let f =
    Harness.build_flood ~seed ~telemetry:tele
      ~topo:(Topo.random_graph ~seed:topo_seed ~n:8 ~degree:2 ())
      ~source:"n1" ()
  in
  Network.run f.Harness.net ~until;
  tele

(* the golden determinism guarantee of ISSUE: two runs of the same
   seeded simulation produce byte-identical JSONL traces *)
let test_trace_deterministic () =
  let t1 = run_flood ~seed:42 ~until:1.5 () in
  let t2 = run_flood ~seed:42 ~until:1.5 () in
  Alcotest.(check bool) "events recorded" true (Tel.total_events t1 > 0);
  Alcotest.(check string) "same dump" (Tel.dump_jsonl t1) (Tel.dump_jsonl t2);
  Alcotest.(check string) "same digest" (Tel.digest t1) (Tel.digest t2);
  let t3 = run_flood ~topo_seed:8 ~seed:42 ~until:1.5 () in
  Alcotest.(check bool) "different topology, different trace" true
    (Tel.digest t1 <> Tel.digest t3)

let test_jsonl_dump () =
  let tele = run_flood ~seed:42 ~until:0.5 () in
  let path = Filename.temp_file "iov_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let lines = Tel.save_jsonl tele path in
      Alcotest.(check bool) "wrote lines" true (lines > 0);
      let ic = open_in path in
      let n = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr n;
           Alcotest.(check bool) "json object" true
             (String.length line > 2
             && line.[0] = '{'
             && line.[String.length line - 1] = '}')
         done
       with End_of_file -> close_in ic);
      Alcotest.(check int) "line count" lines !n)

(* ------------------------------------------------------------------ *)
(* The send/deliver causal invariant *)

(* Drive [n] one-off data messages down a 3-node chain with ample
   buffers and no bandwidth constraint, run to quiescence: every trace
   id must balance — each message is sent and delivered once per hop,
   switched at the forwarder, and nothing is dropped. *)
let send_deliver_balanced n =
  let tele = Tel.create () in
  let net = Network.create ~buffer_capacity:256 ~telemetry:tele () in
  let ctx_holder = ref None in
  let sender =
    Ialg.make ~name:"sender"
      ~on_start:(fun ctx -> ctx_holder := Some ctx)
      (fun _ _ -> Some Alg.Consume)
  in
  ignore (Network.add_node net ~id:(id 1) sender);
  let fwd =
    Ialg.make ~name:"fwd" (fun _ m ->
        if Iov_msg.Mtype.is_data m.Msg.mtype then Some (Alg.Forward [ id 3 ])
        else Some Alg.Consume)
  in
  ignore (Network.add_node net ~id:(id 2) fwd);
  ignore (Network.add_node net ~id:(id 3) Alg.null);
  Network.run net ~until:0.01;
  let ctx = Option.get !ctx_holder in
  let ids =
    List.init n (fun seq ->
        let m = Msg.data ~origin:(id 1) ~app:1 ~seq (Bytes.create 64) in
        ctx.Alg.send m (id 2);
        Ev.id_of_msg m)
  in
  Network.run net ~until:10.;
  let count kind tid =
    List.length
      (List.filter
         (fun (e : Tel.event) -> e.Tel.kind = kind)
         (Tel.events_for tele ~id:tid))
  in
  List.for_all
    (fun tid ->
      count Ev.Send tid = 2
      && count Ev.Deliver tid = 2
      && count Ev.Enqueue tid = 2
      && count Ev.Switch tid = 2
      && count Ev.Drop tid = 0)
    ids

let qcheck_send_deliver =
  qtest ~count:20 "send/deliver balance per trace id"
    QCheck.(int_range 1 60)
    send_deliver_balanced

(* the same run, inspected through the engine-composed status report:
   the metrics blob decodes and its counters match the trace *)
let test_status_carries_metrics () =
  let tele = Tel.create () in
  let net = Network.create ~buffer_capacity:64 ~telemetry:tele () in
  let src =
    Iov_algos.Source.create ~payload_size:512 ~app:1 ~dests:[ id 2 ] ()
  in
  ignore (Network.add_node net ~id:(id 1) (Iov_algos.Source.algorithm src));
  ignore (Network.add_node net ~id:(id 2) Alg.null);
  Network.run net ~until:1.;
  match Network.make_status net (id 2) with
  | None -> Alcotest.fail "no status"
  | Some st -> (
    match st.Iov_msg.Status.metrics with
    | None -> Alcotest.fail "status lacks metrics blob"
    | Some blob -> (
      let snap = Metrics.of_blob blob in
      match List.assoc_opt "delivered" snap with
      | Some (Metrics.Counter v) ->
        Alcotest.(check bool) "deliveries counted" true (v > 0)
      | _ -> Alcotest.fail "no delivered counter in blob"))

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counter_gauge;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          qcheck_bucket_bounds;
          Alcotest.test_case "snapshot, json, blob" `Quick
            test_snapshot_and_blob;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "trace ids" `Quick test_trace_ids;
          Alcotest.test_case "ring wrap-around" `Quick test_tracer_ring;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_telemetry_disabled;
        ] );
      ( "traces",
        [
          Alcotest.test_case "same seed, same bytes" `Quick
            test_trace_deterministic;
          Alcotest.test_case "jsonl dump" `Quick test_jsonl_dump;
          qcheck_send_deliver;
          Alcotest.test_case "status carries metrics" `Quick
            test_status_carries_metrics;
        ] );
    ]
