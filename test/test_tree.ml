(* Tests for the tree-construction algorithms. *)

module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Tree = Iov_algos.Tree
module Observer = Iov_observer.Observer
module NI = Iov_msg.Node_id

let kbps x = x *. 1024.
let app = 7

(* Build a session over n nodes with the given caps (KBps); node 0 is
   the source; joins proceed in the given order of indices. *)
let build ?(seed = 42) ?(rejoin = false) ~strategy ~caps ~join_order () =
  let net = Network.create ~seed ~buffer_capacity:2000 () in
  let obs = Observer.create ~boot_subset:16 net in
  let members =
    List.mapi
      (fun i cap ->
        let bw = Bwspec.total_only (kbps cap) in
        let t =
          Tree.create ~strategy ~last_mile:(Bwspec.last_mile bw) ~app ~rejoin
            ()
        in
        ignore
          (Network.add_node net ~bw ~observer:(Observer.id obs)
             ~id:(NI.synthetic (i + 1)) (Tree.algorithm t));
        t)
      caps
  in
  let sim = Network.sim net in
  ignore
    (Iov_dsim.Sim.schedule_at sim ~time:1.0 (fun () ->
         Observer.deploy_source obs (NI.synthetic 1) ~app));
  List.iteri
    (fun k idx ->
      ignore
        (Iov_dsim.Sim.schedule_at sim
           ~time:(3.0 +. (3.0 *. float_of_int k))
           (fun () -> Observer.join obs (NI.synthetic (idx + 1)) ~app)))
    join_order;
  Network.run net ~until:(6.0 +. (3.0 *. float_of_int (List.length join_order)));
  (net, obs, members)

let fig9_caps = [ 200.; 500.; 100.; 200.; 100. ] (* S A B C D *)
let fig9_order = [ 4; 1; 3; 2 ] (* D, A, C, B *)

let all_joined members =
  List.for_all Tree.in_session members

(* the member graph is a tree rooted at the source: each non-source
   member has exactly one parent, and parent/child views agree *)
let check_tree_consistent members =
  let by_id =
    List.mapi (fun i t -> (NI.synthetic (i + 1), t)) members
  in
  List.iteri
    (fun i t ->
      let self = NI.synthetic (i + 1) in
      (match Tree.parent t with
      | Some p -> (
        match List.assoc_opt p by_id with
        | Some pt ->
          Alcotest.(check bool)
            (Printf.sprintf "parent %s lists child" (NI.to_string p))
            true
            (List.exists (NI.equal self) (Tree.children pt))
        | None -> Alcotest.fail "parent not a member")
      | None ->
        if Tree.in_session t then
          Alcotest.(check bool) "only source lacks parent" true
            (Tree.is_source t));
      List.iter
        (fun c ->
          match List.assoc_opt c by_id with
          | Some ct ->
            Alcotest.(check bool) "child's parent is me" true
              (match Tree.parent ct with
              | Some p -> NI.equal p self
              | None -> false)
          | None -> Alcotest.fail "child not a member")
        (Tree.children t))
    members

let no_cycles members =
  let by_id = List.mapi (fun i t -> (NI.synthetic (i + 1), t)) members in
  List.iteri
    (fun i t ->
      ignore t;
      let rec climb seen ni =
        if List.exists (NI.equal ni) seen then
          Alcotest.fail "cycle through parents"
        else
          match List.assoc_opt ni by_id with
          | Some t -> (
            match Tree.parent t with
            | Some p -> climb (ni :: seen) p
            | None -> ())
          | None -> ()
      in
      climb [] (NI.synthetic (i + 1)))
    members

let test_unicast_star () =
  let _, _, members =
    build ~strategy:Tree.Unicast ~caps:fig9_caps ~join_order:fig9_order ()
  in
  Alcotest.(check bool) "all joined" true (all_joined members);
  let source = List.hd members in
  Alcotest.(check int) "source has all receivers as children" 4
    (List.length (Tree.children source));
  check_tree_consistent members;
  Alcotest.(check (float 1e-9)) "source stress (Table 3)" 2.0
    (Tree.stress source)

let test_ns_aware_balances () =
  let _, _, members =
    build ~strategy:Tree.Ns_aware ~caps:fig9_caps ~join_order:fig9_order ()
  in
  Alcotest.(check bool) "all joined" true (all_joined members);
  check_tree_consistent members;
  no_cycles members;
  let source = List.hd members in
  (* ns-aware offloads: the source must NOT adopt all four receivers *)
  Alcotest.(check bool) "source not a star" true
    (List.length (Tree.children source) < 4);
  (* A (500 KBps) is the least-stressed node and attracts children *)
  let a = List.nth members 1 in
  Alcotest.(check bool) "high-capacity node serves" true
    (List.length (Tree.children a) >= 1)

let test_random_joins_all () =
  let _, _, members =
    build ~seed:3 ~strategy:Tree.Random ~caps:fig9_caps ~join_order:fig9_order
      ()
  in
  Alcotest.(check bool) "all joined" true (all_joined members);
  check_tree_consistent members;
  no_cycles members

let test_data_flows_down_tree () =
  let net, _, members =
    build ~strategy:Tree.Ns_aware ~caps:fig9_caps ~join_order:fig9_order ()
  in
  Network.run net ~until:30.;
  List.iteri
    (fun i t ->
      if i > 0 && Tree.in_session t then
        Alcotest.(check bool)
          (Printf.sprintf "member %d receives" i)
          true
          (Network.app_bytes net (NI.synthetic (i + 1)) ~app > 0))
    members

(* equal-stress ties must break on node id, not arrival order: the same
   three-node overlay joined in either order redirects to the same
   neighbour *)
let test_ns_aware_tie_break_deterministic () =
  let min_for ~join_order =
    let _, _, members =
      build ~strategy:Tree.Ns_aware ~caps:[ 200.; 100.; 100. ] ~join_order ()
    in
    Alcotest.(check bool) "all joined" true (all_joined members);
    let source = List.hd members in
    (* both joiners hang off the source with identical degree and
       bandwidth, so their advertised stress is identical *)
    Alcotest.(check int) "source has both children" 2
      (List.length (Tree.children source));
    match Tree.min_stress_neighbor source with
    | Some (peer, _) -> peer
    | None -> Alcotest.fail "source has no min-stress neighbour"
  in
  let a = min_for ~join_order:[ 1; 2 ] in
  let b = min_for ~join_order:[ 2; 1 ] in
  Alcotest.(check bool) "same pick under both join orders" true (NI.equal a b);
  Alcotest.(check bool) "the tie goes to the lowest node id" true
    (NI.equal a (NI.synthetic 2))

let test_stress_definition () =
  let t = Tree.create ~strategy:Tree.Ns_aware ~last_mile:(kbps 200.) ~app () in
  Alcotest.(check (float 1e-9)) "no membership, zero stress" 0. (Tree.stress t);
  Alcotest.(check int) "degree zero" 0 (Tree.degree t)

let test_leave_dissolves_subtree () =
  let net, obs, members =
    build ~strategy:Tree.Unicast ~caps:fig9_caps ~join_order:fig9_order ()
  in
  (* everyone is a direct child of S; tell B (index 2) to leave *)
  Observer.leave obs (NI.synthetic 3) ~app;
  Network.run net ~until:40.;
  let b = List.nth members 2 in
  Alcotest.(check bool) "left the session" false (Tree.in_session b);
  let source = List.hd members in
  Network.run net ~until:45.;
  Alcotest.(check bool) "source keeps serving others" true
    (List.length (Tree.children source) >= 3)

let test_parent_failure_dissolves () =
  let net, _, members =
    build ~strategy:Tree.Ns_aware ~caps:fig9_caps ~join_order:fig9_order ()
  in
  (* find a member that has children and kill it *)
  let victim =
    List.mapi (fun i t -> (i, t)) members
    |> List.find_opt (fun (i, t) -> i > 0 && Tree.children t <> [])
  in
  match victim with
  | None -> Alcotest.fail "expected an interior node"
  | Some (i, t) ->
    let orphans = Tree.children t in
    Network.terminate net (NI.synthetic (i + 1));
    Network.run net ~until:60.;
    List.iter
      (fun o ->
        let idx = ref (-1) in
        List.iteri
          (fun j _ -> if NI.equal (NI.synthetic (j + 1)) o then idx := j)
          members;
        let ot = List.nth members !idx in
        Alcotest.(check bool) "orphan dissolved or reparented" true
          ((not (Tree.in_session ot))
          ||
          match Tree.parent ot with
          | Some p -> not (NI.equal p (NI.synthetic (i + 1)))
          | None -> false))
      orphans

let test_session_source_announced () =
  let _, _, members =
    build ~strategy:Tree.Unicast ~caps:fig9_caps ~join_order:fig9_order ()
  in
  List.iteri
    (fun i t ->
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "member %d knows the source" i)
          true
          (match Tree.session_source t with
          | Some s -> NI.equal s (NI.synthetic 1)
          | None -> false))
    members

let test_rejoin_after_failure () =
  let net, _, members =
    build ~rejoin:true ~strategy:Tree.Ns_aware ~caps:fig9_caps
      ~join_order:fig9_order ()
  in
  (* kill an interior member; its orphans must re-enter the session *)
  let victim =
    List.mapi (fun i t -> (i, t)) members
    |> List.find_opt (fun (i, t) -> i > 0 && Tree.children t <> [])
  in
  match victim with
  | None -> Alcotest.fail "expected an interior node"
  | Some (vi, vt) ->
    let orphans = Tree.children vt in
    Alcotest.(check bool) "has orphans" true (orphans <> []);
    Network.terminate net (NI.synthetic (vi + 1));
    Network.run net ~until:90.;
    List.iteri
      (fun i t ->
        if i <> vi && i > 0 then begin
          Alcotest.(check bool)
            (Printf.sprintf "member %d back in session" i)
            true (Tree.in_session t);
          (match Tree.parent t with
          | Some p ->
            Alcotest.(check bool) "not parented to the dead node" false
              (NI.equal p (NI.synthetic (vi + 1)))
          | None -> ())
        end)
      members;
    let total_rejoins =
      List.fold_left (fun acc t -> acc + Tree.rejoins t) 0 members
    in
    Alcotest.(check bool) "rejoin events recorded" true (total_rejoins >= 1)

let test_nonmembers_relay_queries () =
  (* random strategy never anchors at the source, so join queries must
     gossip through non-members to reach the tree *)
  let caps = List.init 10 (fun _ -> 150.) in
  let order = [ 9 ] (* only the last node joins *) in
  let _, _, members = build ~strategy:Tree.Random ~caps ~join_order:order () in
  Alcotest.(check bool) "joiner made it" true
    (Tree.in_session (List.nth members 9));
  let relays =
    List.fold_left (fun acc t -> acc + Tree.queries_relayed t) 0 members
  in
  Alcotest.(check bool) "gossip relays occurred" true (relays >= 0)

let test_strategy_names () =
  Alcotest.(check string) "unicast" "unicast" (Tree.strategy_name Tree.Unicast);
  Alcotest.(check string) "random" "random" (Tree.strategy_name Tree.Random);
  Alcotest.(check string) "ns-aware" "ns-aware"
    (Tree.strategy_name Tree.Ns_aware)

let test_larger_session () =
  (* 12 nodes with mixed capacity all manage to join under ns-aware *)
  let caps = [ 100.; 200.; 50.; 150.; 80.; 120.; 60.; 90.; 180.; 70.; 110.; 130. ] in
  let order = List.init 11 (fun i -> i + 1) in
  let _, _, members =
    build ~strategy:Tree.Ns_aware ~caps ~join_order:order ()
  in
  Alcotest.(check bool) "all twelve joined" true (all_joined members);
  check_tree_consistent members;
  no_cycles members

let () =
  Alcotest.run "tree"
    [
      ( "construction",
        [
          Alcotest.test_case "unicast builds a star" `Quick test_unicast_star;
          Alcotest.test_case "ns-aware balances" `Quick test_ns_aware_balances;
          Alcotest.test_case "random joins everyone" `Quick
            test_random_joins_all;
          Alcotest.test_case "larger session" `Quick test_larger_session;
        ] );
      ( "data",
        [
          Alcotest.test_case "data flows down" `Quick test_data_flows_down_tree;
          Alcotest.test_case "source announced" `Quick
            test_session_source_announced;
        ] );
      ( "membership",
        [
          Alcotest.test_case "stress definition" `Quick test_stress_definition;
          Alcotest.test_case "ns-aware tie-break deterministic" `Quick
            test_ns_aware_tie_break_deterministic;
          Alcotest.test_case "leave dissolves subtree" `Quick
            test_leave_dissolves_subtree;
          Alcotest.test_case "parent failure dissolves" `Quick
            test_parent_failure_dissolves;
          Alcotest.test_case "rejoin after failure" `Quick
            test_rejoin_after_failure;
          Alcotest.test_case "non-members relay queries" `Quick
            test_nonmembers_relay_queries;
          Alcotest.test_case "strategy names" `Quick test_strategy_names;
        ] );
    ]
