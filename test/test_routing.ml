(* Tests for the adaptive multipath routing subsystem. *)

module Network = Iov_core.Network
module Sim = Iov_dsim.Sim
module NI = Iov_msg.Node_id
module Dedup = Iov_routing.Dedup
module Path = Iov_routing.Path
module Router = Iov_routing.Router
module Neighbor = Iov_routing.Neighbor
module Routelab = Iov_exp.Routelab

let qtest ?(count = 300) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* ------------------------------------------------------------------ *)
(* Dedup: the exactly-once window                                      *)

(* an arbitrary delivery schedule: sequences from a span smaller than
   the window, in any order, with any amount of duplication — exactly
   the traffic a k-path disseminator plus a lossy network produces *)
let schedule =
  QCheck.(list_of_size Gen.(int_range 1 400) (int_range 0 900))

let dedup_exactly_once copies =
  let d = Dedup.create () in
  let fresh_of = Hashtbl.create 64 in
  List.iter
    (fun seq ->
      match Dedup.admit d seq with
      | `Fresh ->
        Hashtbl.replace fresh_of seq (1 + Option.value ~default:0
                                            (Hashtbl.find_opt fresh_of seq))
      | `Dup -> ())
    copies;
  let distinct = List.sort_uniq compare copies in
  (* every distinct sequence is delivered exactly once, never twice *)
  List.for_all
    (fun seq -> Hashtbl.find_opt fresh_of seq = Some 1)
    distinct
  && Dedup.fresh_count d = List.length distinct
  && Dedup.fresh_count d + Dedup.dup_count d = List.length copies

let dedup_missing_is_complement copies =
  let d = Dedup.create () in
  List.iter (fun seq -> ignore (Dedup.admit d seq)) copies;
  let seen = List.sort_uniq compare copies in
  let expected =
    match seen with
    | [] -> []
    | _ ->
      let hi = Dedup.highest d in
      List.filter
        (fun s -> not (List.mem s seen))
        (List.init hi (fun i -> i))
  in
  Dedup.missing d = expected

let test_dedup_late_copy_suppressed () =
  let d = Dedup.create ~window:16 () in
  ignore (Dedup.admit d 0);
  ignore (Dedup.admit d 100);
  (* 0 slid out of the 16-wide window: a late second copy must land on
     the safe side of exactly-once — suppressed, not re-delivered *)
  Alcotest.(check bool) "late copy is a dup" true (Dedup.admit d 0 = `Dup);
  Alcotest.(check int) "two fresh" 2 (Dedup.fresh_count d);
  Alcotest.(check int) "one dup" 1 (Dedup.dup_count d)

(* ------------------------------------------------------------------ *)
(* Path: BFS and disjoint extraction                                   *)

(* the routelab substrate: a ring of n nodes with i±2 chords *)
let ring_chords n =
  List.init n (fun i ->
      ( NI.synthetic (i + 1),
        List.map
          (fun d -> NI.synthetic (((i + d) mod n) + 1))
          [ 1; 2; n - 1; n - 2 ] ))

let undirected_edges path ~src =
  let rec walk prev acc = function
    | [] -> acc
    | hop :: rest ->
      let e = if NI.compare prev hop <= 0 then (prev, hop) else (hop, prev) in
      walk hop (e :: acc) rest
  in
  walk src [] path

let test_shortest_basics () =
  let g = ring_chords 8 in
  let n i = NI.synthetic i in
  Alcotest.(check bool) "src = dst is the empty path" true
    (Path.shortest g ~src:(n 1) ~dst:(n 1) () = Some []);
  (match Path.shortest g ~src:(n 1) ~dst:(n 5) () with
  | Some hops ->
    Alcotest.(check int) "antipodal distance via chords" 2 (List.length hops);
    Alcotest.(check bool) "path ends at dst" true
      (NI.equal (List.nth hops 1) (n 5))
  | None -> Alcotest.fail "antipodal pair must be reachable");
  Alcotest.(check bool) "unknown destination is unreachable" true
    (Path.shortest g ~src:(n 1) ~dst:(n 99) () = None)

let test_shortest_avoid () =
  let n i = NI.synthetic i in
  (* a line 1-2-3: avoiding the middle node disconnects the ends *)
  let line = [ (n 1, [ n 2 ]); (n 2, [ n 1; n 3 ]); (n 3, [ n 2 ]) ] in
  Alcotest.(check bool) "line is connected" true
    (Path.shortest line ~src:(n 1) ~dst:(n 3) () <> None);
  Alcotest.(check bool) "avoiding the cut vertex disconnects" true
    (Path.shortest line ~avoid:[ n 2 ] ~src:(n 1) ~dst:(n 3) () = None)

let test_k_disjoint_paths () =
  let g = ring_chords 12 in
  let n i = NI.synthetic i in
  let paths = Path.k_disjoint g ~k:2 ~src:(n 1) ~dst:(n 7) () in
  Alcotest.(check int) "two paths on a degree-4 substrate" 2
    (List.length paths);
  List.iter
    (fun p ->
      match List.rev p with
      | last :: _ ->
        Alcotest.(check bool) "path ends at dst" true (NI.equal last (n 7))
      | [] -> Alcotest.fail "empty path")
    paths;
  (match paths with
  | [ a; b ] ->
    let ea = undirected_edges a ~src:(n 1)
    and eb = undirected_edges b ~src:(n 1) in
    Alcotest.(check bool) "edge-disjoint" true
      (not (List.exists (fun e -> List.mem e eb) ea))
  | _ -> assert false);
  Alcotest.(check bool) "extraction is deterministic" true
    (Path.k_disjoint g ~k:2 ~src:(n 1) ~dst:(n 7) () = paths)

(* ------------------------------------------------------------------ *)
(* End to end: multipath survives loss without double delivery         *)

let rx_stats ~loss =
  let nb = Routelab.build ~seed:7 ~mode:(Router.Multipath 2) ~n:10 () in
  let sim = Network.sim nb.Routelab.r_net in
  if loss then
    (* once the paths are pinned, make the primary path's first link
       drop 40% of everything crossing it *)
    ignore
      (Sim.schedule_at sim ~time:2.5 (fun () ->
           match Routelab.(nb.r_routers.(nb.r_src)) |> fun r ->
                 Router.paths r ~app:nb.Routelab.r_app
           with
           | (head :: _) :: _ ->
             Network.set_link_loss nb.Routelab.r_net
               ~src:nb.Routelab.r_ids.(nb.Routelab.r_src) ~dst:head 0.4
           | _ -> Alcotest.fail "source pinned no paths"));
  Network.run nb.Routelab.r_net ~until:10.;
  Router.stats nb.Routelab.r_routers.(nb.Routelab.r_dst)

let test_multipath_rides_through_loss () =
  let clean = rx_stats ~loss:false in
  let lossy = rx_stats ~loss:true in
  Alcotest.(check bool) "clean run delivers" true
    (clean.Router.delivered_msgs > 100);
  Alcotest.(check bool) "redundant copies were absorbed" true
    (lossy.Router.dups > 0);
  (* the second disjoint path covers the lossy one: goodput holds *)
  Alcotest.(check bool) "loss does not dent unique delivery" true
    (float_of_int lossy.Router.delivered_msgs
     >= 0.9 *. float_of_int clean.Router.delivered_msgs);
  (* and dedup never inflates it: exactly-once, not at-least-once *)
  Alcotest.(check bool) "no double delivery" true
    (lossy.Router.delivered_msgs <= clean.Router.delivered_msgs)

(* ------------------------------------------------------------------ *)
(* End to end: the routelab comparison is deterministic and reroutes   *)

let small_run () =
  Routelab.run ~quiet:true ~seed:7 ~n:10 ~kill_at:5.0 ~settle:3.0
    ~window:1.5
    ~variants:[ Routelab.Static; Routelab.Multi 2 ]
    ()

let test_routelab_deterministic () =
  let a = small_run () and b = small_run () in
  Alcotest.(check bool) "same seed, identical rows" true
    (a.Routelab.rows = b.Routelab.rows);
  Alcotest.(check string) "same victim" a.Routelab.victim b.Routelab.victim

let test_routelab_reroute_beats_static () =
  let r = small_run () in
  let find v = List.find (fun row -> row.Routelab.variant = v) r.Routelab.rows in
  let st = find Routelab.Static and mp = find (Routelab.Multi 2) in
  Alcotest.(check bool) "static delivered before the kill" true
    (st.Routelab.pre_rate > 0.);
  Alcotest.(check (float 1e-9)) "static never recovers" 0.
    st.Routelab.post_rate;
  Alcotest.(check bool) "multipath keeps >= 90% goodput" true
    (mp.Routelab.recovery >= 0.9);
  Alcotest.(check bool) "the repair was a reroute" true
    (mp.Routelab.route_changes > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "routing"
    [
      ( "dedup",
        [
          qtest "exactly-once under loss and duplication" schedule
            dedup_exactly_once;
          qtest "missing lists exactly the gaps" schedule
            dedup_missing_is_complement;
          Alcotest.test_case "late copy suppressed" `Quick
            test_dedup_late_copy_suppressed;
        ] );
      ( "path",
        [
          Alcotest.test_case "shortest basics" `Quick test_shortest_basics;
          Alcotest.test_case "shortest avoid" `Quick test_shortest_avoid;
          Alcotest.test_case "k edge-disjoint" `Quick test_k_disjoint_paths;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "multipath rides through loss" `Quick
            test_multipath_rides_through_loss;
          Alcotest.test_case "routelab deterministic" `Quick
            test_routelab_deterministic;
          Alcotest.test_case "reroute beats static" `Quick
            test_routelab_reroute_beats_static;
        ] );
    ]
