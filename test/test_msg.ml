(* Tests for node identities, message types, messages, the wire codec
   and payload helpers. *)

module NI = Iov_msg.Node_id
module Mt = Iov_msg.Mtype
module Msg = Iov_msg.Message
module Codec = Iov_msg.Codec
module Wire = Iov_msg.Wire
module Status = Iov_msg.Status

let qtest ?(count = 300) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* generators *)
let node_gen =
  QCheck.map
    (fun (ip, port) -> NI.make ~ip:(Int32.of_int ip) ~port)
    QCheck.(pair (int_bound 0xffffff) (int_bound 0xffff))

let mtype_gen =
  QCheck.oneof
    [
      QCheck.oneofl Mt.all_builtin;
      QCheck.map (fun n -> Mt.Custom n) (QCheck.int_bound 500);
    ]

let payload_gen = QCheck.map Bytes.of_string (QCheck.string_of_size QCheck.Gen.(int_bound 200))

let msg_gen =
  QCheck.map
    (fun ((mtype, origin), (app, (seq, payload))) ->
      Msg.make ~mtype ~origin ~app ~seq payload)
    QCheck.(pair (pair mtype_gen node_gen) (pair (int_bound 10000) (pair (int_bound 100000) payload_gen)))

(* ------------------------------------------------------------------ *)
(* Node_id *)

let test_node_id_string () =
  let n = NI.of_string "128.100.241.68:6060" in
  Alcotest.(check string) "roundtrip" "128.100.241.68:6060" (NI.to_string n);
  Alcotest.(check string) "ip only" "128.100.241.68" (NI.ip_string n);
  Alcotest.(check int) "port" 6060 n.NI.port

let test_node_id_bad () =
  List.iter
    (fun s ->
      match NI.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    [ "1.2.3:5"; "1.2.3.4"; "1.2.3.4:x"; "1.2.3.256:5"; "a.b.c.d:1"; "1.2.3.4:70000" ]

let test_node_id_synthetic () =
  let a = NI.synthetic 1 and b = NI.synthetic 2 in
  Alcotest.(check bool) "distinct" false (NI.equal a b);
  Alcotest.(check bool) "deterministic" true (NI.equal a (NI.synthetic 1))

let node_id_props =
  [
    qtest "to_string/of_string roundtrip" node_gen (fun n ->
        NI.equal n (NI.of_string (NI.to_string n)));
    qtest "compare consistent with equal" QCheck.(pair node_gen node_gen)
      (fun (a, b) -> NI.equal a b = (NI.compare a b = 0));
    qtest "compare antisymmetric" QCheck.(pair node_gen node_gen)
      (fun (a, b) -> NI.compare a b = -NI.compare b a);
  ]

(* ------------------------------------------------------------------ *)
(* Mtype *)

let test_mtype_roundtrip () =
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Mt.to_string t) true
        (Mt.of_int (Mt.to_int t) = t))
    (Mt.all_builtin @ [ Mt.Custom 0; Mt.Custom 77; Mt.Custom 100000 ])

(* the Custom boundary: tag 0 sits exactly at [custom_base]; negative
   tags (codes below the base) are rejected at construction and on
   encode, and the unassigned gap of codes refuses to decode *)
let test_mtype_custom_boundary () =
  Alcotest.(check int) "tag 0 encodes at the base" Mt.custom_base
    (Mt.to_int (Mt.Custom 0));
  Alcotest.(check bool) "base decodes to tag 0" true
    (Mt.of_int Mt.custom_base = Mt.Custom 0);
  Alcotest.(check bool) "custom constructor" true (Mt.custom 7 = Mt.Custom 7);
  (match Mt.custom (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "custom (-1) accepted");
  (match Mt.to_int (Mt.Custom (-2)) with
  | exception Invalid_argument _ -> ()
  | code -> Alcotest.failf "Custom (-2) encoded as %d" code);
  List.iter
    (fun code ->
      match Mt.of_int code with
      | exception Invalid_argument _ -> ()
      | t -> Alcotest.failf "gap code %d decoded as %s" code (Mt.to_string t))
    [ 22; 500; Mt.custom_base - 1; -1 ]

(* a wire header carrying a gap code must be a decode error, not a
   fabricated Custom that cannot re-encode *)
let test_codec_rejects_gap_mtype () =
  let m =
    Msg.control ~mtype:(Mt.Custom 0) ~origin:(NI.synthetic 1) Bytes.empty
  in
  let w = Codec.encode m in
  Alcotest.(check bool) "boundary code round-trips" true
    ((Codec.decode w).Msg.mtype = Mt.Custom 0);
  Bytes.set_int32_be w 0 (Int32.of_int (Mt.custom_base - 1));
  (match Codec.decode w with
  | exception Codec.Malformed _ -> ()
  | m' -> Alcotest.failf "gap code decoded as %s" (Mt.to_string m'.Msg.mtype))

let test_mtype_classes () =
  Alcotest.(check bool) "data is data" true (Mt.is_data Mt.Data);
  List.iter
    (fun t ->
      if t <> Mt.Data then
        Alcotest.(check bool) (Mt.to_string t ^ " is control") true (Mt.is_control t))
    Mt.all_builtin

let test_mtype_distinct_codes () =
  let codes = List.map Mt.to_int Mt.all_builtin in
  Alcotest.(check int) "no collisions" (List.length codes)
    (List.length (List.sort_uniq Int.compare codes))

(* ------------------------------------------------------------------ *)
(* Message *)

let test_message_basics () =
  let origin = NI.synthetic 3 in
  let m = Msg.data ~origin ~app:5 ~seq:9 (Bytes.of_string "hello") in
  Alcotest.(check int) "size includes header" (24 + 5) (Msg.size m);
  Alcotest.(check int) "payload size" 5 (Msg.payload_size m);
  Msg.set_seq m 10;
  Alcotest.(check int) "seq mutable" 10 m.Msg.seq

let test_message_clone () =
  let m = Msg.data ~origin:(NI.synthetic 1) ~app:1 ~seq:1 (Bytes.of_string "abc") in
  let c = Msg.clone m in
  Bytes.set c.Msg.payload 0 'X';
  Alcotest.(check string) "original untouched" "abc" (Msg.string_payload m);
  Msg.set_seq c 99;
  Alcotest.(check int) "seq independent" 1 m.Msg.seq

let test_message_share () =
  let m = Msg.data ~origin:(NI.synthetic 1) ~app:1 ~seq:1 (Bytes.of_string "abc") in
  let s = Msg.share m in
  Alcotest.(check bool) "payload bytes shared" true (s.Msg.payload == m.Msg.payload);
  Msg.set_seq s 99;
  Alcotest.(check int) "seq independent" 1 m.Msg.seq;
  Alcotest.(check int) "share seq" 99 s.Msg.seq

let test_wire_memo () =
  let m = Msg.data ~origin:(NI.synthetic 1) ~app:1 ~seq:7 (Bytes.of_string "pay") in
  let w1 = Codec.wire m in
  let w2 = Codec.wire m in
  Alcotest.(check bool) "memoized" true (w1 == w2);
  Alcotest.(check bool) "matches encode" true (Bytes.equal w1 (Codec.encode m));
  (* a share made after the first encode rides the same buffer *)
  let s = Msg.share m in
  Alcotest.(check bool) "share reuses" true (Codec.wire s == w1);
  Msg.set_seq m 8;
  let w3 = Codec.wire m in
  Alcotest.(check bool) "set_seq invalidates" false (w3 == w1);
  Alcotest.(check int) "re-encoded seq" 8 (Codec.decode w3).Msg.seq;
  (* the share's header is its own: neither its seq nor its cache moved *)
  Alcotest.(check bool) "share cache intact" true (Codec.wire s == w1);
  Alcotest.(check int) "share seq intact" 7 (Codec.decode (Codec.wire s)).Msg.seq

let test_message_params () =
  let m = Msg.with_params ~mtype:(Mt.Custom 1) ~origin:(NI.synthetic 1) 42 (-7) in
  (match Msg.params m with
  | Some (a, b) ->
    Alcotest.(check int) "p1" 42 a;
    Alcotest.(check int) "p2" (-7) b
  | None -> Alcotest.fail "params missing");
  let short = Msg.control ~mtype:(Mt.Custom 1) ~origin:(NI.synthetic 1) (Bytes.create 3) in
  Alcotest.(check bool) "short payload" true (Msg.params short = None)

(* ------------------------------------------------------------------ *)
(* Codec *)

let msg_equal (a : Msg.t) (b : Msg.t) =
  a.mtype = b.mtype && NI.equal a.origin b.origin && a.app = b.app
  && a.seq = b.seq
  && Bytes.equal a.payload b.payload

let codec_props =
  [
    qtest "encode/decode roundtrip" msg_gen (fun m ->
        msg_equal m (Codec.decode (Codec.encode m)));
    qtest "wire size matches Message.size" msg_gen (fun m ->
        Bytes.length (Codec.encode m) = Msg.size m);
    qtest "stream reassembles arbitrary chunking"
      QCheck.(pair (small_list msg_gen) (int_range 1 17))
      (fun (msgs, chunk) ->
        let wire = Buffer.create 256 in
        List.iter (fun m -> Buffer.add_bytes wire (Codec.encode m)) msgs;
        let wire = Buffer.to_bytes wire in
        let s = Codec.Stream.create () in
        let n = Bytes.length wire in
        let rec feed off =
          if off < n then begin
            let len = Stdlib.min chunk (n - off) in
            Codec.Stream.feed s ~off ~len wire;
            feed (off + len)
          end
        in
        feed 0;
        let out = Codec.Stream.drain s in
        List.length out = List.length msgs
        && List.for_all2 msg_equal msgs out
        && Codec.Stream.buffered s = 0);
    qtest ~count:60 "roundtrip over random payload sizes"
      QCheck.(int_bound 65536)
      (fun n ->
        let m = Msg.data ~origin:(NI.synthetic 1) ~app:2 ~seq:n (Bytes.make n '\042') in
        msg_equal m (Codec.decode (Codec.encode m)));
    qtest "reserve/commit fills reassemble like feed"
      QCheck.(pair (small_list msg_gen) (int_range 1 17))
      (fun (msgs, chunk) ->
        (* the zero-copy fill path: writes land in the stream's own
           free tail, in arbitrary slice sizes, instead of bouncing
           through a per-read chunk *)
        let wire = Buffer.create 256 in
        List.iter (fun m -> Buffer.add_bytes wire (Codec.encode m)) msgs;
        let wire = Buffer.to_bytes wire in
        let s = Codec.Stream.create () in
        let n = Bytes.length wire in
        let rec fill off =
          if off < n then begin
            let len = Stdlib.min chunk (n - off) in
            let buf, at = Codec.Stream.reserve s len in
            Bytes.blit wire off buf at len;
            Codec.Stream.commit s len;
            fill (off + len)
          end
        in
        fill 0;
        let out = Codec.Stream.drain s in
        List.length out = List.length msgs
        && List.for_all2 msg_equal msgs out
        && Codec.Stream.buffered s = 0);
  ]

let test_stream_reserve_no_alias () =
  (* payloads decoded before a reserve must survive the buffer being
     compacted, grown and overwritten by later fills *)
  let mk i = Msg.data ~origin:(NI.synthetic i) ~app:1 ~seq:i
      (Bytes.make 64 (Char.chr (65 + (i mod 26))))
  in
  let s = Codec.Stream.create () in
  let put m =
    let w = Codec.encode m in
    let buf, at = Codec.Stream.reserve s (Bytes.length w) in
    Bytes.blit w 0 buf at (Bytes.length w);
    Codec.Stream.commit s (Bytes.length w)
  in
  put (mk 0);
  let first =
    match Codec.Stream.next s with
    | Some m -> m
    | None -> Alcotest.fail "first message missing"
  in
  (* churn the stream hard: enough traffic to recycle and grow the
     underlying buffer many times over *)
  for round = 1 to 200 do
    put (mk round);
    match Codec.Stream.next s with
    | Some m ->
      Alcotest.(check bool)
        (Printf.sprintf "round %d intact" round)
        true (msg_equal (mk round) m)
    | None -> Alcotest.fail "message missing mid-churn"
  done;
  Alcotest.(check bool) "first payload never aliased the buffer" true
    (msg_equal (mk 0) first)

let test_stream_reserve_partial_commit () =
  (* a read may return fewer bytes than were reserved; only the
     committed prefix becomes visible *)
  let m = Msg.data ~origin:(NI.synthetic 3) ~app:1 ~seq:9 (Bytes.of_string "abcdef") in
  let w = Codec.encode m in
  let s = Codec.Stream.create () in
  let buf, at = Codec.Stream.reserve s 4096 in
  let half = Bytes.length w / 2 in
  Bytes.blit w 0 buf at half;
  Codec.Stream.commit s half;
  Alcotest.(check bool) "incomplete" true (Codec.Stream.next s = None);
  Alcotest.(check int) "only committed bytes count" half
    (Codec.Stream.buffered s);
  let buf, at = Codec.Stream.reserve s 4096 in
  Bytes.blit w half buf at (Bytes.length w - half);
  Codec.Stream.commit s (Bytes.length w - half);
  (match Codec.Stream.next s with
  | Some out -> Alcotest.(check bool) "complete" true (msg_equal m out)
  | None -> Alcotest.fail "stream did not produce the message");
  Alcotest.check_raises "bad reserve" (Invalid_argument "Codec.Stream.reserve")
    (fun () -> ignore (Codec.Stream.reserve s 0));
  ignore (Codec.Stream.reserve s 8);
  Alcotest.check_raises "overcommit" (Invalid_argument "Codec.Stream.commit")
    (fun () -> Codec.Stream.commit s (1 lsl 40))

let test_payload_boundaries () =
  List.iter
    (fun n ->
      let m = Msg.data ~origin:(NI.synthetic 2) ~app:3 ~seq:n (Bytes.make n 'x') in
      Alcotest.(check bool)
        (Printf.sprintf "size %d" n)
        true
        (msg_equal m (Codec.decode (Codec.encode m))))
    [ 0; 1; 7; 8; 9; 255; 4096; Codec.max_payload - 1; Codec.max_payload ]

let test_stream_drain_1000 () =
  (* regression for the old O(buffered) tail blit in Stream.next: queue a
     large backlog, then drain message by message. *)
  let s = Codec.Stream.create () in
  let msgs =
    List.init 1000 (fun i ->
        Msg.data
          ~origin:(NI.synthetic (i mod 7))
          ~app:1 ~seq:i
          (Bytes.make (i mod 97) (Char.chr (65 + (i mod 26)))))
  in
  List.iter
    (fun m ->
      let w = Codec.encode m in
      Codec.Stream.feed s ~len:(Bytes.length w) w)
    msgs;
  let rec drain acc =
    match Codec.Stream.next s with
    | Some m -> drain (m :: acc)
    | None -> List.rev acc
  in
  let out = drain [] in
  Alcotest.(check int) "count" 1000 (List.length out);
  List.iter2
    (fun m o -> Alcotest.(check bool) "in order" true (msg_equal m o))
    msgs out;
  Alcotest.(check int) "empty" 0 (Codec.Stream.buffered s)

let test_codec_malformed () =
  let check name buf =
    match Codec.decode buf with
    | exception Codec.Malformed _ -> ()
    | _ -> Alcotest.failf "%s accepted" name
  in
  check "truncated header" (Bytes.create 10);
  let m = Msg.data ~origin:(NI.synthetic 1) ~app:1 ~seq:1 (Bytes.of_string "xyz") in
  let good = Codec.encode m in
  check "truncated payload" (Bytes.sub good 0 (Bytes.length good - 1));
  let trailing = Bytes.cat good (Bytes.of_string "!") in
  check "trailing bytes" trailing;
  let huge = Bytes.copy good in
  Bytes.set_int32_be huge 20 (Int32.of_int (Codec.max_payload + 1));
  check "oversized payload" huge

let test_encode_into_offset () =
  let m = Msg.data ~origin:(NI.synthetic 1) ~app:1 ~seq:1 (Bytes.of_string "pay") in
  let buf = Bytes.make 64 '\xff' in
  let written = Codec.encode_into m buf 8 in
  Alcotest.(check int) "bytes written" (Msg.size m) written;
  let m', stop = Codec.decode_at buf 8 in
  Alcotest.(check bool) "decodes in place" true (msg_equal m m');
  Alcotest.(check int) "stop offset" (8 + written) stop;
  Alcotest.(check char) "prefix untouched" '\xff' (Bytes.get buf 0);
  Alcotest.check_raises "too small"
    (Invalid_argument "Codec.encode_into: buffer too small") (fun () ->
      ignore (Codec.encode_into m (Bytes.create 10) 0))

let test_codec_stream_partial () =
  let m = Msg.data ~origin:(NI.synthetic 1) ~app:1 ~seq:1 (Bytes.of_string "data") in
  let wire = Codec.encode m in
  let s = Codec.Stream.create () in
  Codec.Stream.feed s ~len:10 wire;
  Alcotest.(check bool) "incomplete" true (Codec.Stream.next s = None);
  Alcotest.(check int) "buffered" 10 (Codec.Stream.buffered s);
  Codec.Stream.feed s ~off:10 ~len:(Bytes.length wire - 10) wire;
  (match Codec.Stream.next s with
  | Some out -> Alcotest.(check bool) "complete" true (msg_equal m out)
  | None -> Alcotest.fail "stream did not produce the message");
  Alcotest.(check int) "drained" 0 (Codec.Stream.buffered s)

(* ------------------------------------------------------------------ *)
(* Wire + Status *)

let test_wire_roundtrip () =
  let w = Wire.W.create () in
  Wire.W.int32 w 123;
  Wire.W.float w 3.5;
  Wire.W.node w (NI.synthetic 4);
  Wire.W.string w "hello";
  Wire.W.nodes w [ NI.synthetic 1; NI.synthetic 2 ];
  let r = Wire.R.of_bytes (Wire.W.contents w) in
  Alcotest.(check int) "int" 123 (Wire.R.int32 r);
  Alcotest.(check (float 0.)) "float" 3.5 (Wire.R.float r);
  Alcotest.(check bool) "node" true (NI.equal (NI.synthetic 4) (Wire.R.node r));
  Alcotest.(check string) "string" "hello" (Wire.R.string r);
  Alcotest.(check int) "nodes" 2 (List.length (Wire.R.nodes r));
  Alcotest.(check int) "exhausted" 0 (Wire.R.remaining r)

let test_wire_truncated () =
  let r = Wire.R.of_bytes (Bytes.create 2) in
  Alcotest.check_raises "int32" Wire.Truncated (fun () ->
      ignore (Wire.R.int32 r))

let test_status_roundtrip () =
  let mk peer rate queued =
    { Status.peer; rate; queued; buffer_capacity = 5 }
  in
  let st =
    {
      Status.node = NI.synthetic 9;
      time = 12.25;
      upstreams = [ mk (NI.synthetic 1) 1024. 3 ];
      downstreams = [ mk (NI.synthetic 2) 2048. 0; mk (NI.synthetic 3) 0. 5 ];
      bytes_lost = 77;
      messages_lost = 3;
      metrics = None;
    }
  in
  let st' = Status.of_payload (Status.to_payload st) in
  Alcotest.(check bool) "node" true (NI.equal st.Status.node st'.Status.node);
  Alcotest.(check (float 0.)) "time" st.Status.time st'.Status.time;
  Alcotest.(check int) "ups" 1 (List.length st'.Status.upstreams);
  Alcotest.(check int) "downs" 2 (List.length st'.Status.downstreams);
  Alcotest.(check int) "lost bytes" 77 st'.Status.bytes_lost;
  Alcotest.(check int) "lost msgs" 3 st'.Status.messages_lost;
  let u = List.hd st'.Status.upstreams in
  Alcotest.(check (float 0.)) "rate" 1024. u.Status.rate;
  Alcotest.(check int) "queued" 3 u.Status.queued;
  Alcotest.(check bool) "no metrics" true (st'.Status.metrics = None)

let base_status ?metrics () =
  {
    Status.node = NI.synthetic 9;
    time = 12.25;
    upstreams = [ { Status.peer = NI.synthetic 1; rate = 1024.; queued = 3;
                    buffer_capacity = 5 } ];
    downstreams = [];
    bytes_lost = 0;
    messages_lost = 0;
    metrics;
  }

(* the trailing metrics extension rides along transparently *)
let test_status_metrics_ext () =
  let blob = Bytes.of_string "\x01opaque-metrics\x00\xffblob" in
  let st = base_status ~metrics:blob () in
  let st' = Status.of_payload (Status.to_payload st) in
  (match st'.Status.metrics with
  | Some b -> Alcotest.(check bytes) "blob intact" blob b
  | None -> Alcotest.fail "metrics extension lost");
  Alcotest.(check bool) "header fields intact" true
    (NI.equal st'.Status.node (NI.synthetic 9))

(* wire compatibility, both directions: a pre-extension payload (what
   an old node emits — byte-identical to [metrics = None]) decodes with
   [metrics = None]; an old reader, which stops after [messages_lost],
   parses an extended payload without error and simply leaves the
   trailing extension bytes unread *)
let test_status_wire_compat () =
  let old_payload = Status.to_payload (base_status ()) in
  let st' = Status.of_payload old_payload in
  Alcotest.(check bool) "old payload -> no metrics" true
    (st'.Status.metrics = None);
  let new_payload =
    Status.to_payload (base_status ~metrics:(Bytes.of_string "xyz") ())
  in
  Alcotest.(check bool) "extension adds trailing bytes" true
    (Bytes.length new_payload > Bytes.length old_payload);
  (* the old reader: the common prefix is unchanged *)
  Alcotest.(check bytes) "prefix unchanged" old_payload
    (Bytes.sub new_payload 0 (Bytes.length old_payload));
  let r = Wire.R.of_bytes new_payload in
  ignore (Wire.R.node r);
  ignore (Wire.R.float r);
  let n_up = Wire.R.int32 r in
  for _ = 1 to n_up do
    ignore (Wire.R.node r); ignore (Wire.R.float r);
    ignore (Wire.R.int32 r); ignore (Wire.R.int32 r)
  done;
  let n_down = Wire.R.int32 r in
  Alcotest.(check int) "downs" 0 n_down;
  Alcotest.(check int) "bytes_lost" 0 (Wire.R.int32 r);
  Alcotest.(check int) "messages_lost" 0 (Wire.R.int32 r);
  Alcotest.(check bool) "old reader leaves extension unread" true
    (Wire.R.remaining r > 0)

(* every builtin mtype survives a full message codec roundtrip with a
   non-trivial payload — status reports travel as one of them *)
let test_codec_all_mtypes () =
  List.iter
    (fun mtype ->
      let payload =
        if mtype = Mt.Status then
          Status.to_payload
            (base_status ~metrics:(Bytes.of_string "blob") ())
        else Bytes.of_string (Mt.to_string mtype)
      in
      let m =
        Msg.make ~mtype ~origin:(NI.synthetic 7) ~app:3 ~seq:11 payload
      in
      let m' = Codec.decode (Codec.encode m) in
      Alcotest.(check bool) (Mt.to_string mtype) true (m'.Msg.mtype = mtype);
      Alcotest.(check bytes)
        (Mt.to_string mtype ^ " payload")
        payload m'.Msg.payload;
      if mtype = Mt.Status then
        match (Status.of_payload m'.Msg.payload).Status.metrics with
        | Some b ->
          Alcotest.(check bytes) "status metrics through codec"
            (Bytes.of_string "blob") b
        | None -> Alcotest.fail "status metrics lost through codec")
    (Mt.all_builtin @ [ Mt.Custom 99 ])

let () =
  Alcotest.run "msg"
    [
      ( "node_id",
        node_id_props
        @ [
            Alcotest.test_case "string form" `Quick test_node_id_string;
            Alcotest.test_case "rejects malformed" `Quick test_node_id_bad;
            Alcotest.test_case "synthetic ids" `Quick test_node_id_synthetic;
          ] );
      ( "mtype",
        [
          Alcotest.test_case "int roundtrip" `Quick test_mtype_roundtrip;
          Alcotest.test_case "data/control classes" `Quick test_mtype_classes;
          Alcotest.test_case "distinct codes" `Quick test_mtype_distinct_codes;
          Alcotest.test_case "custom boundary" `Quick
            test_mtype_custom_boundary;
          Alcotest.test_case "codec rejects gap codes" `Quick
            test_codec_rejects_gap_mtype;
        ] );
      ( "message",
        [
          Alcotest.test_case "sizes and seq" `Quick test_message_basics;
          Alcotest.test_case "clone is deep" `Quick test_message_clone;
          Alcotest.test_case "share is shallow" `Quick test_message_share;
          Alcotest.test_case "two-int params" `Quick test_message_params;
        ] );
      ( "codec",
        codec_props
        @ [
            Alcotest.test_case "malformed inputs" `Quick test_codec_malformed;
            Alcotest.test_case "encode_into at offset" `Quick
              test_encode_into_offset;
            Alcotest.test_case "partial stream" `Quick test_codec_stream_partial;
            Alcotest.test_case "reserve/commit never aliases payloads"
              `Quick test_stream_reserve_no_alias;
            Alcotest.test_case "reserve/commit partial fills" `Quick
              test_stream_reserve_partial_commit;
            Alcotest.test_case "payload size boundaries" `Quick
              test_payload_boundaries;
            Alcotest.test_case "drain 1000 queued messages" `Quick
              test_stream_drain_1000;
            Alcotest.test_case "memoized wire encoding" `Quick test_wire_memo;
          ] );
      ( "wire",
        [
          Alcotest.test_case "writer/reader roundtrip" `Quick
            test_wire_roundtrip;
          Alcotest.test_case "truncation" `Quick test_wire_truncated;
          Alcotest.test_case "status roundtrip" `Quick test_status_roundtrip;
          Alcotest.test_case "status metrics extension" `Quick
            test_status_metrics_ext;
          Alcotest.test_case "status wire compatibility" `Quick
            test_status_wire_compat;
          Alcotest.test_case "all mtypes codec roundtrip" `Quick
            test_codec_all_mtypes;
        ] );
    ]
