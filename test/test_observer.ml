(* Tests for the observer and its proxy. *)

module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Observer = Iov_observer.Observer
module Proxy = Iov_observer.Proxy
module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module NI = Iov_msg.Node_id
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module Source = Iov_algos.Source
module Flood = Iov_algos.Flood

let id i = NI.synthetic i
let app = 1
let kbps x = x *. 1024.

let add_null net obs i =
  ignore (Network.add_node net ~observer:(Observer.id obs) ~id:(id i) Alg.null)

(* ------------------------------------------------------------------ *)

let test_bootstrap_subset () =
  let net = Network.create () in
  let obs = Observer.create ~boot_subset:3 net in
  for i = 1 to 10 do
    add_null net obs i
  done;
  Network.run net ~until:1.;
  Alcotest.(check int) "all alive" 10 (List.length (Observer.alive_nodes obs));
  (* a late joiner gets at most boot_subset known hosts *)
  ignore (Network.add_node net ~observer:(Observer.id obs) ~id:(id 11) Alg.null);
  Network.run net ~until:2.;
  let kh = Network.known_hosts (Network.node net (id 11)) in
  Alcotest.(check int) "subset size" 3 (List.length kh);
  List.iter
    (fun h ->
      Alcotest.(check bool) "subset excludes self" false (NI.equal h (id 11)))
    kh

let test_bootstrap_first_node_gets_none () =
  let net = Network.create () in
  let obs = Observer.create net in
  add_null net obs 1;
  Network.run net ~until:1.;
  Alcotest.(check int) "nothing to hand out" 0
    (List.length (Network.known_hosts (Network.node net (id 1))))

let test_polling_collects_status () =
  let net = Network.create () in
  let obs = Observer.create ~poll_period:0.5 net in
  let s = Source.create ~app ~dests:[ id 2 ] () in
  ignore
    (Network.add_node net ~observer:(Observer.id obs)
       ~bw:(Bwspec.total_only (kbps 50.))
       ~id:(id 1) (Source.algorithm s));
  let f = Flood.create () in
  Flood.set_route f ~app ~upstreams:[ id 1 ] ~downstreams:[] ();
  ignore
    (Network.add_node net ~observer:(Observer.id obs) ~id:(id 2)
       (Flood.algorithm f));
  Observer.start_polling obs;
  Network.run net ~until:5.;
  (match Observer.latest_status obs (id 2) with
  | Some st ->
    Alcotest.(check int) "upstream listed" 1
      (List.length st.Iov_msg.Status.upstreams)
  | None -> Alcotest.fail "no status collected");
  let topo = Observer.topology obs in
  Alcotest.(check bool) "topology has source->sink" true
    (List.exists
       (fun (n, downs) ->
         NI.equal n (id 1) && List.exists (NI.equal (id 2)) downs)
       topo);
  let rendering = Observer.render_topology obs in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "render mentions node" true
    (contains rendering (NI.to_string (id 1)))

let test_stop_polling () =
  let net = Network.create () in
  let obs = Observer.create ~poll_period:0.5 net in
  add_null net obs 1;
  Observer.start_polling obs;
  Network.run net ~until:2.;
  Observer.stop_polling obs;
  (* an already-scheduled request may still be in flight: settle first *)
  Network.run net ~until:3.;
  let before = Network.control_bytes_received net (id 1) Mt.Request in
  Network.run net ~until:8.;
  Alcotest.(check int) "no more requests" before
    (Network.control_bytes_received net (id 1) Mt.Request)

let test_traces_recorded () =
  let net = Network.create () in
  let obs = Observer.create net in
  let ctxr = ref None in
  ignore
    (Network.add_node net ~observer:(Observer.id obs) ~id:(id 1)
       (Ialg.make ~name:"t" ~on_start:(fun c -> ctxr := Some c) (fun _ _ ->
            Some Alg.Consume)));
  Network.run net ~until:0.5;
  (Option.get !ctxr).Alg.trace "hello observer";
  (Option.get !ctxr).Alg.trace "second line";
  Network.run net ~until:1.;
  Alcotest.(check int) "two traces" 2 (Observer.trace_count obs);
  let _, origin, text = List.hd (Observer.traces obs) in
  Alcotest.(check string) "latest first" "second line" text;
  Alcotest.(check bool) "origin" true (NI.equal origin (id 1))

let test_save_traces () =
  let net = Network.create () in
  let obs = Observer.create net in
  let ctxr = ref None in
  ignore
    (Network.add_node net ~observer:(Observer.id obs) ~id:(id 1)
       (Ialg.make ~name:"t" ~on_start:(fun c -> ctxr := Some c) (fun _ _ ->
            Some Alg.Consume)));
  Network.run net ~until:0.5;
  (Option.get !ctxr).Alg.trace "first";
  (Option.get !ctxr).Alg.trace "second";
  Network.run net ~until:1.;
  let path = Filename.temp_file "iov-traces" ".log" in
  let written = Observer.save_traces obs path in
  Alcotest.(check int) "two records" 2 written;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  (match List.rev !lines with
  | [ l1; l2 ] ->
    Alcotest.(check bool) "chronological order" true
      (String.length l1 > 0
      && String.sub l1 (String.length l1 - 5) 5 = "first"
      && String.sub l2 (String.length l2 - 6) 6 = "second")
  | l -> Alcotest.failf "expected two lines, got %d" (List.length l))

let test_control_set_bandwidth () =
  let net = Network.create () in
  let obs = Observer.create net in
  let s = Source.create ~app ~dests:[ id 2 ] () in
  ignore
    (Network.add_node net ~observer:(Observer.id obs) ~id:(id 1)
       (Source.algorithm s));
  add_null net obs 2;
  Network.run net ~until:2.;
  Observer.set_node_bandwidth obs (id 1) (Bwspec.make ~up:(kbps 15.) ());
  Network.run net ~until:15.;
  let rate = Network.link_throughput net ~src:(id 1) ~dst:(id 2) in
  Alcotest.(check bool) "emulation applied remotely" true
    (Float.abs (rate -. kbps 15.) < kbps 3.)

let test_control_set_link_bandwidth () =
  let net = Network.create () in
  let obs = Observer.create net in
  let s = Source.create ~payload_size:1024 ~app ~dests:[ id 2 ] () in
  ignore
    (Network.add_node net ~observer:(Observer.id obs) ~id:(id 1)
       (Source.algorithm s));
  add_null net obs 2;
  Network.run net ~until:2.;
  Observer.set_link_bandwidth obs ~src:(id 1) ~dst:(id 2) (kbps 8.);
  Network.run net ~until:15.;
  let rate = Network.link_throughput net ~src:(id 1) ~dst:(id 2) in
  Alcotest.(check bool) "per-link emulation applied" true
    (Float.abs (rate -. kbps 8.) < kbps 2.)

let test_terminate_node_command () =
  let net = Network.create () in
  let obs = Observer.create net in
  add_null net obs 1;
  Network.run net ~until:1.;
  Observer.terminate_node obs (id 1);
  Network.run net ~until:2.;
  Alcotest.(check bool) "terminated" false
    (Network.is_alive (Network.node net (id 1)));
  Alcotest.(check int) "dropped from alive list" 0
    (List.length (Observer.alive_nodes obs))

let test_custom_command () =
  let net = Network.create () in
  let obs = Observer.create net in
  let got = ref None in
  let alg =
    Ialg.make ~name:"c" (fun _ m ->
        (match m.Msg.mtype with
        | Mt.Custom 9 -> got := Msg.params m
        | _ -> ());
        Some Alg.Consume)
  in
  ignore (Network.add_node net ~observer:(Observer.id obs) ~id:(id 1) alg);
  Network.run net ~until:1.;
  Observer.custom obs (id 1) ~kind:9 123 456;
  Network.run net ~until:2.;
  Alcotest.(check (option (pair int int))) "params delivered" (Some (123, 456))
    !got

(* ------------------------------------------------------------------ *)
(* Observer-as-algorithm (portable observer) *)

module Oalg = Iov_observer.Obs_algorithm

let test_obs_algorithm_in_sim () =
  let net = Network.create () in
  let oa = Oalg.create ~boot_subset:4 () in
  let obs_id = id 99 in
  ignore (Network.add_node net ~id:obs_id (Oalg.algorithm oa));
  (* ordinary nodes bootstrap against the observer NODE *)
  let s = Source.create ~app ~dests:[ id 2 ] () in
  ignore
    (Network.add_node net ~observer:obs_id
       ~bw:(Bwspec.total_only (kbps 40.))
       ~id:(id 1) (Source.algorithm s));
  ignore (Network.add_node net ~observer:obs_id ~id:(id 2) Alg.null);
  Network.run net ~until:5.;
  Alcotest.(check int) "both bootstrapped" 2 (List.length (Oalg.alive oa));
  (* the tick-driven poll collected engine statuses *)
  (match Oalg.latest_status oa (id 1) with
  | Some st ->
    Alcotest.(check int) "source has a downstream" 1
      (List.length st.Iov_msg.Status.downstreams)
  | None -> Alcotest.fail "no status collected");
  (* traces land in its log *)
  let ctx = Network.ctx (Network.node net (id 1)) in
  ctx.Alg.trace "ping";
  Network.run net ~until:6.;
  Alcotest.(check int) "trace recorded" 1 (Oalg.trace_count oa)

let test_obs_algorithm_second_boot_gets_hosts () =
  let net = Network.create () in
  let oa = Oalg.create () in
  ignore (Network.add_node net ~id:(id 99) (Oalg.algorithm oa));
  ignore (Network.add_node net ~observer:(id 99) ~id:(id 1) Alg.null);
  Network.run net ~until:1.;
  ignore (Network.add_node net ~observer:(id 99) ~id:(id 2) Alg.null);
  Network.run net ~until:2.;
  Alcotest.(check (list bool)) "late joiner learned the first node" [ true ]
    (List.map
       (fun h -> NI.equal h (id 1))
       (Network.known_hosts (Network.node net (id 2))))

(* ------------------------------------------------------------------ *)
(* Fleet *)

module Fleet = Iov_observer.Fleet

let test_fleet_lifecycle () =
  let net = Network.create () in
  let obs = Observer.create net in
  let specs =
    List.init 6 (fun i ->
        {
          Fleet.nid = id (i + 1);
          bw = Bwspec.unconstrained;
          algorithm = Alg.null;
        })
  in
  let fleet = Fleet.deploy ~stagger:0.1 ~observer:obs net specs in
  Alcotest.(check int) "size" 6 (Fleet.size fleet);
  Network.run net ~until:2.;
  Alcotest.(check int) "all deployed" 6 (List.length (Fleet.alive fleet));
  Alcotest.(check int) "observer saw all boots" 6
    (List.length (Observer.alive_nodes obs));
  let statuses = Fleet.collect fleet in
  Alcotest.(check int) "status from every node" 6 (List.length statuses);
  Fleet.terminate_all fleet;
  Network.run net ~until:4.;
  Alcotest.(check int) "all gone" 0 (List.length (Fleet.alive fleet));
  Alcotest.(check int) "nothing to collect" 0 (List.length (Fleet.collect fleet))

let test_fleet_duplicate_ids () =
  let net = Network.create () in
  let obs = Observer.create net in
  let spec =
    { Fleet.nid = id 1; bw = Bwspec.unconstrained; algorithm = Alg.null }
  in
  Alcotest.check_raises "duplicates rejected"
    (Invalid_argument "Fleet.deploy: duplicate ids") (fun () ->
      ignore (Fleet.deploy ~observer:obs net [ spec; spec ]))

(* ------------------------------------------------------------------ *)
(* Proxy *)

let test_proxy_relays () =
  let net = Network.create () in
  let obs = Observer.create net in
  let proxy = Proxy.create ~observer:(Observer.id obs) net in
  (* nodes report to the proxy instead of the observer *)
  ignore (Network.add_node net ~observer:(Proxy.id proxy) ~id:(id 1) Alg.null);
  Network.run net ~until:1.;
  (* the boot request was relayed, so the observer knows the node *)
  Alcotest.(check bool) "boot relayed" true (Proxy.relayed proxy >= 1);
  Alcotest.(check int) "observer learned the node" 1
    (List.length (Observer.alive_nodes obs))

let test_proxy_batches () =
  let net = Network.create () in
  let obs = Observer.create net in
  let proxy = Proxy.create ~flush_period:5. ~observer:(Observer.id obs) net in
  let ctxr = ref None in
  ignore
    (Network.add_node net ~id:(id 1)
       (Ialg.make ~name:"p" ~on_start:(fun c -> ctxr := Some c) (fun _ _ ->
            Some Alg.Consume)));
  Network.run net ~until:0.5;
  for i = 0 to 9 do
    (Option.get !ctxr).Alg.send
      (Msg.control ~mtype:Mt.Trace ~origin:(id 1) ~seq:i
         (Bytes.of_string "t"))
      (Proxy.id proxy)
  done;
  Network.run net ~until:2.;
  Alcotest.(check int) "queued, not yet relayed" 10 (Proxy.pending proxy);
  Alcotest.(check int) "nothing at observer" 0 (Observer.trace_count obs);
  Network.run net ~until:7.;
  Alcotest.(check int) "flushed" 0 (Proxy.pending proxy);
  Alcotest.(check int) "single batch" 1 (Proxy.flushes proxy);
  Alcotest.(check int) "all traces arrived" 10 (Observer.trace_count obs)

(* ------------------------------------------------------------------ *)
(* Gossip-fed alive set vs ground truth *)

module Listener = Iov_gossip.Listener
module Gl = Iov_exp.Gossiplab

let qtest ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* An arbitrary schedule of kills and same-id respawns over nodes
   1..n-1 (node 0 is the join seed and the listener's digest feed),
   one second apart. [true] kills the node if it is up; [false]
   respawns it (fresh gossip instance, same id) if it is down; the
   rest are no-ops. After the schedule settles, the digest-fed
   listener's alive set must equal the nodes actually up. *)
let test_listener_tracks_ground_truth =
  let n = 8 in
  qtest ~count:12 "listener alive set tracks kills and same-id respawns"
    QCheck.(small_list (pair bool (int_range 1 (n - 1))))
    (fun ops ->
      let b = Gl.build ~seed:17 ~n () in
      let listener = Listener.create ~contacts:[ b.Gl.b_ids.(0) ] b.Gl.b_net in
      Network.run b.Gl.b_net ~until:4.;
      let down = Hashtbl.create 8 in
      List.iteri
        (fun k (kill, i) ->
          Network.run b.Gl.b_net ~until:(4. +. float_of_int k);
          if kill then begin
            if not (Hashtbl.mem down i) then begin
              Network.kill_node b.Gl.b_net b.Gl.b_ids.(i);
              Hashtbl.replace down i ()
            end
          end
          else if Hashtbl.mem down i then begin
            b.Gl.b_spawn ("n" ^ string_of_int i);
            Hashtbl.remove down i
          end)
        ops;
      (* settle: detection, dissemination, and a digest push *)
      Network.run b.Gl.b_net
        ~until:(4. +. float_of_int (List.length ops) +. 14.);
      let expected =
        Array.to_list b.Gl.b_ids
        |> List.filteri (fun i _ -> not (Hashtbl.mem down i))
        |> List.sort NI.compare |> List.map NI.to_string
      in
      let got =
        Listener.alive_nodes listener
        |> List.sort NI.compare |> List.map NI.to_string
      in
      got = expected)

let () =
  Alcotest.run "observer"
    [
      ( "bootstrap",
        [
          Alcotest.test_case "random subset" `Quick test_bootstrap_subset;
          Alcotest.test_case "first node" `Quick
            test_bootstrap_first_node_gets_none;
        ] );
      ( "monitoring",
        [
          Alcotest.test_case "status polling" `Quick
            test_polling_collects_status;
          Alcotest.test_case "stop polling" `Quick test_stop_polling;
          Alcotest.test_case "traces" `Quick test_traces_recorded;
          Alcotest.test_case "save traces to file" `Quick test_save_traces;
        ] );
      ( "control",
        [
          Alcotest.test_case "set node bandwidth" `Quick
            test_control_set_bandwidth;
          Alcotest.test_case "set link bandwidth" `Quick
            test_control_set_link_bandwidth;
          Alcotest.test_case "terminate node" `Quick
            test_terminate_node_command;
          Alcotest.test_case "custom command" `Quick test_custom_command;
        ] );
      ( "portable-observer",
        [
          Alcotest.test_case "runs as a node" `Quick test_obs_algorithm_in_sim;
          Alcotest.test_case "hands out known hosts" `Quick
            test_obs_algorithm_second_boot_gets_hosts;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "deploy/collect/terminate" `Quick
            test_fleet_lifecycle;
          Alcotest.test_case "duplicate ids" `Quick test_fleet_duplicate_ids;
        ] );
      ( "proxy",
        [
          Alcotest.test_case "relays to observer" `Quick test_proxy_relays;
          Alcotest.test_case "batches per flush period" `Quick
            test_proxy_batches;
        ] );
      ("gossip-listener", [ test_listener_tracks_ground_truth ]);
    ]
