(* Tests for the real-sockets runtime: the thread-safe queue and
   loopback node chains. *)

module Squeue = Iov_onet.Squeue
module Rnode = Iov_onet.Rnode
module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module NI = Iov_msg.Node_id

(* ------------------------------------------------------------------ *)
(* Squeue *)

let test_squeue_basic () =
  let q = Squeue.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Squeue.capacity q);
  Alcotest.(check bool) "push" true (Squeue.push q 1);
  Alcotest.(check bool) "try_push" true (Squeue.try_push q 2);
  Alcotest.(check bool) "full" true (Squeue.is_full q);
  Alcotest.(check bool) "try_push full" false (Squeue.try_push q 3);
  Alcotest.(check (option int)) "pop order" (Some 1) (Squeue.pop q);
  Alcotest.(check (option int)) "try_pop" (Some 2) (Squeue.try_pop q);
  Alcotest.(check (option int)) "empty try_pop" None (Squeue.try_pop q)

let test_squeue_close () =
  let q = Squeue.create ~capacity:4 in
  ignore (Squeue.push q 1);
  Squeue.close q;
  Alcotest.(check bool) "closed" true (Squeue.closed q);
  Alcotest.(check bool) "push after close" false (Squeue.push q 2);
  Alcotest.(check (option int)) "drains" (Some 1) (Squeue.pop q);
  Alcotest.(check (option int)) "then None" None (Squeue.pop q)

let test_squeue_threads () =
  (* one producer, one consumer, blocking on both ends *)
  let q = Squeue.create ~capacity:8 in
  let n = 5000 in
  let producer =
    Thread.create
      (fun () ->
        for i = 0 to n - 1 do
          ignore (Squeue.push q i)
        done;
        Squeue.close q)
      ()
  in
  let received = ref [] in
  let consumer =
    Thread.create
      (fun () ->
        let rec loop () =
          match Squeue.pop q with
          | Some x ->
            received := x :: !received;
            loop ()
          | None -> ()
        in
        loop ())
      ()
  in
  Thread.join producer;
  Thread.join consumer;
  Alcotest.(check int) "all received" n (List.length !received);
  Alcotest.(check (list int)) "in order" (List.init n (fun i -> i))
    (List.rev !received)

let test_squeue_blocking_pop_wakes () =
  let q = Squeue.create ~capacity:2 in
  let result = ref None in
  let consumer = Thread.create (fun () -> result := Squeue.pop q) () in
  Thread.delay 0.05;
  ignore (Squeue.push q 42);
  Thread.join consumer;
  Alcotest.(check (option int)) "woken with value" (Some 42) !result

(* ------------------------------------------------------------------ *)
(* Rnode over loopback *)

let wait_for ?(timeout = 10.) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec loop () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.02;
      loop ()
    end
  in
  loop ()

let test_rnode_direct_delivery () =
  let sink = Rnode.start Alg.null in
  let driver = Rnode.start Alg.null in
  let app = 4 in
  for seq = 0 to 99 do
    Rnode.send driver
      (Msg.data ~origin:(Rnode.id driver) ~app ~seq (Bytes.make 100 'a'))
      (Rnode.id sink)
  done;
  let ok = wait_for (fun () -> Rnode.app_bytes sink ~app >= 100 * 100) in
  Rnode.shutdown driver;
  Rnode.shutdown sink;
  Alcotest.(check bool) "all bytes delivered over TCP" true ok

let test_rnode_relay_chain () =
  let app = 5 in
  let sink = Rnode.start Alg.null in
  let relay_alg (_ : Alg.ctx) (m : Msg.t) =
    if m.Msg.mtype = Mt.Data && m.app = app then
      Some (Alg.Forward [ Rnode.id sink ])
    else None
  in
  let relay = Rnode.start (Ialg.make ~name:"relay" relay_alg) in
  let driver = Rnode.start Alg.null in
  for seq = 0 to 199 do
    Rnode.send driver
      (Msg.data ~origin:(Rnode.id driver) ~app ~seq (Bytes.make 64 'b'))
      (Rnode.id relay)
  done;
  let ok = wait_for (fun () -> Rnode.app_bytes sink ~app >= 200 * 64) in
  Alcotest.(check bool) "relayed through the engine" true ok;
  Alcotest.(check bool) "relay processed messages" true
    (Rnode.messages_processed relay >= 200);
  List.iter Rnode.shutdown [ driver; relay; sink ]

let test_rnode_byte_metering () =
  let sink = Rnode.start Alg.null in
  let driver = Rnode.start Alg.null in
  let app = 6 in
  let n = 50 and payload = 200 in
  for seq = 0 to n - 1 do
    Rnode.send driver
      (Msg.data ~origin:(Rnode.id driver) ~app ~seq (Bytes.make payload 'm'))
      (Rnode.id sink)
  done;
  let wire = n * (payload + Iov_msg.Message.header_size) in
  let ok = wait_for (fun () -> Rnode.app_bytes sink ~app >= n * payload) in
  Alcotest.(check bool) "delivered" true ok;
  Alcotest.(check int) "sender out counter" wire
    (Rnode.link_bytes driver `Out (Rnode.id sink));
  (* the sink's in counter includes the hello-stripped... the hello is
     consumed before the counter attaches, so exactly the data bytes *)
  let ok_in =
    wait_for (fun () -> Rnode.link_bytes sink `In (Rnode.id driver) >= wire)
  in
  Alcotest.(check bool) "receiver in counter" true ok_in;
  List.iter Rnode.shutdown [ driver; sink ]

let test_rnode_persistent_connection () =
  let sink = Rnode.start Alg.null in
  let driver = Rnode.start Alg.null in
  Rnode.connect driver (Rnode.id sink);
  Rnode.connect driver (Rnode.id sink);
  Alcotest.(check int) "one persistent connection" 1
    (List.length (Rnode.peers driver));
  List.iter Rnode.shutdown [ driver; sink ]

let test_rnode_peer_death_notifies () =
  let failures = ref 0 in
  let watch (_ : Alg.ctx) (m : Msg.t) =
    if m.Msg.mtype = Mt.Link_failed then incr failures;
    Some Alg.Consume
  in
  let watcher = Rnode.start (Ialg.make ~name:"watch" watch) in
  let peer = Rnode.start Alg.null in
  (* make the peer connect to the watcher so the watcher has an
     incoming connection whose death it can observe *)
  Rnode.send peer
    (Msg.data ~origin:(Rnode.id peer) ~app:1 ~seq:0 (Bytes.make 8 'x'))
    (Rnode.id watcher);
  let delivered = wait_for (fun () -> Rnode.app_bytes watcher ~app:1 > 0) in
  Alcotest.(check bool) "initial delivery" true delivered;
  Rnode.shutdown peer;
  let ok = wait_for (fun () -> !failures >= 1) in
  Rnode.shutdown watcher;
  Alcotest.(check bool) "LinkFailed surfaced" true ok

(* an abrupt peer close (raw socket vanishing mid-connection, no
   graceful drain) must surface LinkFailed to the algorithm and leave
   the matching link-failure event in the node's flight recorder *)
let test_rnode_abrupt_close_telemetry () =
  let tele = Iov_telemetry.Telemetry.create () in
  let failures = ref 0 in
  let watch (_ : Alg.ctx) (m : Msg.t) =
    if m.Msg.mtype = Mt.Link_failed then incr failures;
    Some Alg.Consume
  in
  let watcher =
    Rnode.start ~telemetry:tele (Ialg.make ~name:"watch" watch)
  in
  let claimed = NI.of_string "127.0.0.1:45678" in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd
    (Unix.ADDR_INET
       (Unix.inet_addr_of_string "127.0.0.1", (Rnode.id watcher).NI.port));
  let write_msg m =
    let wire = Iov_msg.Codec.encode m in
    ignore (Unix.write fd wire 0 (Bytes.length wire))
  in
  (* introduce ourselves under the claimed identity, then one data
     message so the connection is fully registered before it dies *)
  write_msg (Msg.with_params ~mtype:(Mt.Custom 900) ~origin:claimed 0 0);
  write_msg (Msg.data ~origin:claimed ~app:1 ~seq:0 (Bytes.make 16 'y'));
  let delivered = wait_for (fun () -> Rnode.app_bytes watcher ~app:1 > 0) in
  Alcotest.(check bool) "delivered before close" true delivered;
  Unix.close fd;
  let ok = wait_for (fun () -> !failures >= 1) in
  Alcotest.(check bool) "LinkFailed surfaced" true ok;
  let events =
    List.filter
      (fun (e : Iov_telemetry.Telemetry.event) ->
        e.Iov_telemetry.Telemetry.kind = Iov_telemetry.Event.Link_failure)
      (Iov_telemetry.Telemetry.events tele)
  in
  Rnode.shutdown watcher;
  (match events with
  | [] -> Alcotest.fail "no link-failure telemetry event"
  | e :: _ ->
    Alcotest.(check bool) "recorded at the watcher" true
      (NI.equal e.Iov_telemetry.Telemetry.node (Rnode.id watcher));
    Alcotest.(check bool) "names the failed peer" true
      (e.Iov_telemetry.Telemetry.peer = Some claimed));
  let snap =
    Iov_telemetry.Metrics.snapshot
      ~scope:(NI.to_string (Rnode.id watcher))
      (Iov_telemetry.Telemetry.metrics tele)
  in
  (match List.assoc_opt "link_failures" snap with
  | Some (Iov_telemetry.Metrics.Counter n) ->
    Alcotest.(check bool) "link_failures counter" true (n >= 1)
  | _ -> Alcotest.fail "no link_failures counter");
  match List.assoc_opt "delivered" snap with
  | Some (Iov_telemetry.Metrics.Counter n) ->
    Alcotest.(check bool) "delivered counter" true (n >= 1)
  | _ -> Alcotest.fail "no delivered counter"

(* a peer that dies and later comes back at the same address must be
   re-adopted automatically: failed connect attempts ride the capped
   backoff schedule (refused locally inside the window, not hammered),
   and the engine's proactive pass re-establishes the link so traffic
   flows again without driver intervention *)
let test_rnode_reconnect_after_peer_restart () =
  let app = 7 in
  let driver = Rnode.start Alg.null in
  let sink1 = Rnode.start Alg.null in
  let peer = Rnode.id sink1 in
  let send seq =
    try
      Rnode.send driver
        (Msg.data ~origin:(Rnode.id driver) ~app ~seq (Bytes.make 32 'r'))
        peer;
      true
    with Unix.Unix_error _ -> false
  in
  ignore (send 0);
  Alcotest.(check bool) "delivered before the crash" true
    (wait_for (fun () -> Rnode.app_bytes sink1 ~app >= 32));
  Rnode.kill sink1;
  (* poke the dead link until the failure is noticed; once it is, the
     backoff window refuses further attempts without touching the
     network *)
  let backoff_refusals = ref 0 in
  for seq = 1 to 12 do
    (try
       Rnode.send driver
         (Msg.data ~origin:(Rnode.id driver) ~app ~seq (Bytes.make 32 'r'))
         peer
     with
    | Unix.Unix_error (Unix.ECONNREFUSED, _, "backoff") ->
      incr backoff_refusals
    | Unix.Unix_error _ -> ());
    Thread.delay 0.02
  done;
  Alcotest.(check bool) "attempts ride the backoff window" true
    (!backoff_refusals >= 1);
  (* resurrect the peer at the same address: the proactive reconnect
     pass must re-adopt it and deliveries resume *)
  let sink2 = Rnode.start ~port:peer.NI.port Alg.null in
  let flowed =
    wait_for (fun () ->
        if Rnode.app_bytes sink2 ~app > 0 then true
        else begin
          ignore (send 100);
          false
        end)
  in
  Alcotest.(check bool) "delivery after the peer returned" true flowed;
  Alcotest.(check bool) "link re-established" true
    (List.exists (NI.equal peer) (Rnode.peers driver));
  List.iter Rnode.shutdown [ driver; sink2 ]

let test_rnode_observer_bootstrap () =
  (* the portable observer algorithm served over real TCP: two nodes
     boot against it; the second learns about the first *)
  let oa = Iov_observer.Obs_algorithm.create ~poll:false () in
  let observer = Rnode.start (Iov_observer.Obs_algorithm.algorithm oa) in
  let learned = ref [] in
  let client name =
    let alg =
      Ialg.make ~name (fun ctx m ->
          (match m.Msg.mtype with
          | Mt.Boot_reply ->
            ignore (Ialg.default ctx m);
            learned := (name, ctx.Alg.known_hosts ()) :: !learned
          | _ -> ());
          Some Alg.Consume)
    in
    let node = Rnode.start alg in
    Rnode.send node
      (Msg.control ~mtype:Mt.Boot ~origin:(Rnode.id node) Bytes.empty)
      (Rnode.id observer);
    node
  in
  let n1 = client "n1" in
  let ok1 =
    wait_for (fun () ->
        List.length (Iov_observer.Obs_algorithm.alive oa) >= 1)
  in
  Alcotest.(check bool) "first boot registered" true ok1;
  let n2 = client "n2" in
  let ok2 =
    wait_for (fun () ->
        List.exists (fun (name, hosts) -> name = "n2" && hosts <> []) !learned)
  in
  Alcotest.(check bool) "second boot handed the first node" true ok2;
  (match
     List.find_opt (fun (name, _) -> name = "n2") !learned
   with
  | Some (_, hosts) ->
    Alcotest.(check bool) "it is n1" true
      (List.exists (NI.equal (Rnode.id n1)) hosts)
  | None -> Alcotest.fail "n2 never learned hosts");
  List.iter Rnode.shutdown [ observer; n1; n2 ]

let () =
  Alcotest.run "onet"
    [
      ( "squeue",
        [
          Alcotest.test_case "push/pop" `Quick test_squeue_basic;
          Alcotest.test_case "close semantics" `Quick test_squeue_close;
          Alcotest.test_case "producer/consumer threads" `Quick
            test_squeue_threads;
          Alcotest.test_case "blocking pop wakes" `Quick
            test_squeue_blocking_pop_wakes;
        ] );
      ( "rnode",
        [
          Alcotest.test_case "direct delivery" `Quick
            test_rnode_direct_delivery;
          Alcotest.test_case "relay chain" `Quick test_rnode_relay_chain;
          Alcotest.test_case "byte metering" `Quick test_rnode_byte_metering;
          Alcotest.test_case "persistent connections" `Quick
            test_rnode_persistent_connection;
          Alcotest.test_case "peer death notification" `Quick
            test_rnode_peer_death_notifies;
          Alcotest.test_case "abrupt close emits link-failure telemetry"
            `Quick test_rnode_abrupt_close_telemetry;
          Alcotest.test_case "reconnect after peer restart" `Quick
            test_rnode_reconnect_after_peer_restart;
          Alcotest.test_case "observer bootstrap over TCP" `Quick
            test_rnode_observer_bootstrap;
        ] );
    ]
