(* Tests for the real-sockets runtime: the thread-safe queue and
   loopback node chains. *)

module Squeue = Iov_onet.Squeue
module Batcher = Iov_onet.Batcher
module Rnode = Iov_onet.Rnode
module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module NI = Iov_msg.Node_id
module Codec = Iov_msg.Codec
module Tel = Iov_telemetry.Telemetry
module Metrics = Iov_telemetry.Metrics

let qtest ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* ------------------------------------------------------------------ *)
(* Squeue *)

let test_squeue_basic () =
  let q = Squeue.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Squeue.capacity q);
  Alcotest.(check bool) "push" true (Squeue.push q 1);
  Alcotest.(check bool) "try_push" true (Squeue.try_push q 2);
  Alcotest.(check bool) "full" true (Squeue.is_full q);
  Alcotest.(check bool) "try_push full" false (Squeue.try_push q 3);
  Alcotest.(check (option int)) "pop order" (Some 1) (Squeue.pop q);
  Alcotest.(check (option int)) "try_pop" (Some 2) (Squeue.try_pop q);
  Alcotest.(check (option int)) "empty try_pop" None (Squeue.try_pop q)

let test_squeue_close () =
  let q = Squeue.create ~capacity:4 in
  ignore (Squeue.push q 1);
  Squeue.close q;
  Alcotest.(check bool) "closed" true (Squeue.closed q);
  Alcotest.(check bool) "push after close" false (Squeue.push q 2);
  Alcotest.(check (option int)) "drains" (Some 1) (Squeue.pop q);
  Alcotest.(check (option int)) "then None" None (Squeue.pop q)

let test_squeue_threads () =
  (* one producer, one consumer, blocking on both ends *)
  let q = Squeue.create ~capacity:8 in
  let n = 5000 in
  let producer =
    Thread.create
      (fun () ->
        for i = 0 to n - 1 do
          ignore (Squeue.push q i)
        done;
        Squeue.close q)
      ()
  in
  let received = ref [] in
  let consumer =
    Thread.create
      (fun () ->
        let rec loop () =
          match Squeue.pop q with
          | Some x ->
            received := x :: !received;
            loop ()
          | None -> ()
        in
        loop ())
      ()
  in
  Thread.join producer;
  Thread.join consumer;
  Alcotest.(check int) "all received" n (List.length !received);
  Alcotest.(check (list int)) "in order" (List.init n (fun i -> i))
    (List.rev !received)

let test_squeue_blocking_pop_wakes () =
  let q = Squeue.create ~capacity:2 in
  let result = ref None in
  let consumer = Thread.create (fun () -> result := Squeue.pop q) () in
  Thread.delay 0.05;
  ignore (Squeue.push q 42);
  Thread.join consumer;
  Alcotest.(check (option int)) "woken with value" (Some 42) !result

let test_squeue_pop_batch () =
  let q = Squeue.create ~capacity:8 in
  List.iter (fun i -> ignore (Squeue.push q i)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "takes up to max" [ 1; 2; 3 ]
    (Squeue.pop_batch q ~max:3);
  Alcotest.(check (list int)) "try takes the rest" [ 4; 5 ]
    (Squeue.try_pop_batch q ~max:10);
  Alcotest.(check (list int)) "try on empty" []
    (Squeue.try_pop_batch q ~max:10);
  Squeue.close q;
  Alcotest.(check (list int)) "closed and drained" []
    (Squeue.pop_batch q ~max:10)

let test_squeue_pop_batch_blocks_for_first () =
  (* blocks like pop for the first element, then returns without
     waiting for the batch to fill *)
  let q = Squeue.create ~capacity:8 in
  let result = ref [] in
  let consumer =
    Thread.create (fun () -> result := Squeue.pop_batch q ~max:8) ()
  in
  Thread.delay 0.05;
  ignore (Squeue.push q 7);
  Thread.join consumer;
  Alcotest.(check (list int)) "woken with the single element" [ 7 ] !result

let test_squeue_push_list () =
  let q = Squeue.create ~capacity:4 in
  (* more elements than capacity: push_list must block mid-way and the
     consumer's drains must unblock it *)
  let xs = List.init 20 Fun.id in
  let received = ref [] in
  let consumer =
    Thread.create
      (fun () ->
        let rec loop () =
          match Squeue.pop_batch q ~max:4 with
          | [] -> ()
          | got ->
            received := !received @ got;
            loop ()
        in
        loop ())
      ()
  in
  Alcotest.(check int) "all accepted" 20 (Squeue.push_list q xs);
  Squeue.close q;
  Thread.join consumer;
  Alcotest.(check (list int)) "in order" xs !received;
  Alcotest.(check int) "closed queue accepts none" 0
    (Squeue.push_list q [ 1; 2 ])

(* ------------------------------------------------------------------ *)
(* Batcher *)

let msg_gen =
  QCheck.map
    (fun (seq, (app, n)) ->
      Msg.data ~origin:(NI.synthetic (seq mod 13)) ~app ~seq
        (Bytes.make n (Char.chr (33 + (n mod 90)))))
    QCheck.(pair (int_bound 100000) (pair (int_bound 100) (int_bound 300)))

(* Stage messages the way the batched sender does — flush when a
   message does not fit, write an encoding larger than the whole
   staging buffer directly — collecting everything [write] sees. *)
let stage_and_flush batch out ms =
  let write b off len =
    Buffer.add_subbytes out b off len;
    len
  in
  List.iter
    (fun m ->
      if not (Batcher.add batch m) then begin
        ignore (Batcher.flush batch ~write);
        if not (Batcher.add batch m) then
          Buffer.add_bytes out (Codec.encode m)
      end)
    ms;
  ignore (Batcher.flush batch ~write)

let batcher_props =
  [
    qtest "batched byte stream identical to per-message writes"
      QCheck.(small_list msg_gen)
      (fun ms ->
        (* a deliberately tiny staging buffer so flush-and-retry and
           the oversized direct path both trigger *)
        let batch = Batcher.standalone ~cap:256 () in
        let out = Buffer.create 1024 in
        stage_and_flush batch out ms;
        let per_message = Buffer.create 1024 in
        List.iter (fun m -> Buffer.add_bytes per_message (Codec.encode m)) ms;
        Buffer.contents out = Buffer.contents per_message);
    qtest "batched stream redecodes to the same messages"
      QCheck.(small_list msg_gen)
      (fun ms ->
        let batch = Batcher.standalone ~cap:256 () in
        let out = Buffer.create 1024 in
        stage_and_flush batch out ms;
        let s = Codec.Stream.create () in
        Codec.Stream.feed s (Buffer.to_bytes out);
        let back = Codec.Stream.drain s in
        List.length back = List.length ms
        && List.for_all2
             (fun (a : Msg.t) (b : Msg.t) ->
               a.mtype = b.mtype && NI.equal a.origin b.origin
               && a.app = b.app && a.seq = b.seq
               && Bytes.equal a.payload b.payload)
             ms back);
  ]

let test_batcher_partial_write_eintr () =
  (* regression: a flush must survive short writes and EINTR mid-batch
     without losing, duplicating or reordering bytes *)
  let batch = Batcher.standalone ~cap:4096 () in
  let ms =
    List.init 10 (fun i ->
        Msg.data ~origin:(NI.synthetic i) ~app:1 ~seq:i (Bytes.make 40 'e'))
  in
  List.iter (fun m -> Alcotest.(check bool) "fits" true (Batcher.add batch m)) ms;
  let expect = Batcher.length batch in
  let out = Buffer.create 1024 in
  let calls = ref 0 in
  let write b off len =
    incr calls;
    if !calls mod 3 = 0 then raise (Unix.Unix_error (Unix.EINTR, "write", ""));
    let k = min 7 len in
    Buffer.add_subbytes out b off k;
    k
  in
  let syscalls = Batcher.flush batch ~write in
  Alcotest.(check int) "every byte written once" expect (Buffer.length out);
  Alcotest.(check int) "every call counted" !calls syscalls;
  Alcotest.(check bool) "batch reset" true (Batcher.is_empty batch);
  let per_message = Buffer.create 1024 in
  List.iter (fun m -> Buffer.add_bytes per_message (Codec.encode m)) ms;
  Alcotest.(check bool) "byte-identical to per-message writes" true
    (Buffer.contents out = Buffer.contents per_message)

let test_batcher_pool_reuse () =
  let pool = Batcher.pool ~cap:1024 ~max_idle:1 () in
  let a = Batcher.acquire pool in
  let buf_a = Batcher.buffer a in
  ignore
    (Batcher.add a
       (Msg.data ~origin:(NI.synthetic 1) ~app:1 ~seq:0 (Bytes.make 16 'p')));
  Batcher.release a;
  let b = Batcher.acquire pool in
  Alcotest.(check bool) "released buffer is reused" true
    (Batcher.buffer b == buf_a);
  Alcotest.(check bool) "and comes back empty" true (Batcher.is_empty b);
  (* two live batchers never share a buffer *)
  let c = Batcher.acquire pool in
  Alcotest.(check bool) "live batchers are distinct" false
    (Batcher.buffer b == Batcher.buffer c);
  Batcher.release b;
  (* max_idle 1: the pool keeps one buffer, drops the second *)
  Batcher.release c;
  let d = Batcher.acquire pool in
  let e = Batcher.acquire pool in
  Alcotest.(check bool) "one pooled buffer was retained" true
    (Batcher.buffer d == Batcher.buffer b);
  Alcotest.(check bool) "beyond max_idle was dropped" false
    (Batcher.buffer e == Batcher.buffer c)

let test_batcher_reject_oversized () =
  let batch = Batcher.standalone ~cap:128 () in
  let big =
    Msg.data ~origin:(NI.synthetic 1) ~app:1 ~seq:0 (Bytes.make 200 'b')
  in
  Alcotest.(check bool) "does not fit" false (Batcher.add batch big);
  Alcotest.(check bool) "no state change" true (Batcher.is_empty batch);
  Alcotest.(check int) "no bytes written for an empty flush" 0
    (Batcher.flush batch ~write:(fun _ _ _ -> Alcotest.fail "wrote"))

(* ------------------------------------------------------------------ *)
(* Rnode over loopback *)

let wait_for ?(timeout = 10.) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec loop () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.02;
      loop ()
    end
  in
  loop ()

let test_rnode_direct_delivery () =
  let sink = Rnode.start Alg.null in
  let driver = Rnode.start Alg.null in
  let app = 4 in
  for seq = 0 to 99 do
    Rnode.send driver
      (Msg.data ~origin:(Rnode.id driver) ~app ~seq (Bytes.make 100 'a'))
      (Rnode.id sink)
  done;
  let ok = wait_for (fun () -> Rnode.app_bytes sink ~app >= 100 * 100) in
  Rnode.shutdown driver;
  Rnode.shutdown sink;
  Alcotest.(check bool) "all bytes delivered over TCP" true ok

let test_rnode_relay_chain () =
  let app = 5 in
  let sink = Rnode.start Alg.null in
  let relay_alg (_ : Alg.ctx) (m : Msg.t) =
    if m.Msg.mtype = Mt.Data && m.app = app then
      Some (Alg.Forward [ Rnode.id sink ])
    else None
  in
  let relay = Rnode.start (Ialg.make ~name:"relay" relay_alg) in
  let driver = Rnode.start Alg.null in
  for seq = 0 to 199 do
    Rnode.send driver
      (Msg.data ~origin:(Rnode.id driver) ~app ~seq (Bytes.make 64 'b'))
      (Rnode.id relay)
  done;
  let ok = wait_for (fun () -> Rnode.app_bytes sink ~app >= 200 * 64) in
  Alcotest.(check bool) "relayed through the engine" true ok;
  Alcotest.(check bool) "relay processed messages" true
    (Rnode.messages_processed relay >= 200);
  List.iter Rnode.shutdown [ driver; relay; sink ]

let test_rnode_byte_metering () =
  let sink = Rnode.start Alg.null in
  let driver = Rnode.start Alg.null in
  let app = 6 in
  let n = 50 and payload = 200 in
  for seq = 0 to n - 1 do
    Rnode.send driver
      (Msg.data ~origin:(Rnode.id driver) ~app ~seq (Bytes.make payload 'm'))
      (Rnode.id sink)
  done;
  let wire = n * (payload + Iov_msg.Message.header_size) in
  let ok = wait_for (fun () -> Rnode.app_bytes sink ~app >= n * payload) in
  Alcotest.(check bool) "delivered" true ok;
  Alcotest.(check int) "sender out counter" wire
    (Rnode.link_bytes driver `Out (Rnode.id sink));
  (* the sink's in counter includes the hello-stripped... the hello is
     consumed before the counter attaches, so exactly the data bytes *)
  let ok_in =
    wait_for (fun () -> Rnode.link_bytes sink `In (Rnode.id driver) >= wire)
  in
  Alcotest.(check bool) "receiver in counter" true ok_in;
  List.iter Rnode.shutdown [ driver; sink ]

let test_rnode_persistent_connection () =
  let sink = Rnode.start Alg.null in
  let driver = Rnode.start Alg.null in
  Rnode.connect driver (Rnode.id sink);
  Rnode.connect driver (Rnode.id sink);
  Alcotest.(check int) "one persistent connection" 1
    (List.length (Rnode.peers driver));
  List.iter Rnode.shutdown [ driver; sink ]

let test_rnode_peer_death_notifies () =
  let failures = ref 0 in
  let watch (_ : Alg.ctx) (m : Msg.t) =
    if m.Msg.mtype = Mt.Link_failed then incr failures;
    Some Alg.Consume
  in
  let watcher = Rnode.start (Ialg.make ~name:"watch" watch) in
  let peer = Rnode.start Alg.null in
  (* make the peer connect to the watcher so the watcher has an
     incoming connection whose death it can observe *)
  Rnode.send peer
    (Msg.data ~origin:(Rnode.id peer) ~app:1 ~seq:0 (Bytes.make 8 'x'))
    (Rnode.id watcher);
  let delivered = wait_for (fun () -> Rnode.app_bytes watcher ~app:1 > 0) in
  Alcotest.(check bool) "initial delivery" true delivered;
  Rnode.shutdown peer;
  let ok = wait_for (fun () -> !failures >= 1) in
  Rnode.shutdown watcher;
  Alcotest.(check bool) "LinkFailed surfaced" true ok

(* an abrupt peer close (raw socket vanishing mid-connection, no
   graceful drain) must surface LinkFailed to the algorithm and leave
   the matching link-failure event in the node's flight recorder *)
let test_rnode_abrupt_close_telemetry () =
  let tele = Iov_telemetry.Telemetry.create () in
  let failures = ref 0 in
  let watch (_ : Alg.ctx) (m : Msg.t) =
    if m.Msg.mtype = Mt.Link_failed then incr failures;
    Some Alg.Consume
  in
  let watcher =
    Rnode.start ~telemetry:tele (Ialg.make ~name:"watch" watch)
  in
  let claimed = NI.of_string "127.0.0.1:45678" in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd
    (Unix.ADDR_INET
       (Unix.inet_addr_of_string "127.0.0.1", (Rnode.id watcher).NI.port));
  let write_msg m =
    let wire = Iov_msg.Codec.encode m in
    ignore (Unix.write fd wire 0 (Bytes.length wire))
  in
  (* introduce ourselves under the claimed identity, then one data
     message so the connection is fully registered before it dies *)
  write_msg (Msg.with_params ~mtype:(Mt.Custom 900) ~origin:claimed 0 0);
  write_msg (Msg.data ~origin:claimed ~app:1 ~seq:0 (Bytes.make 16 'y'));
  let delivered = wait_for (fun () -> Rnode.app_bytes watcher ~app:1 > 0) in
  Alcotest.(check bool) "delivered before close" true delivered;
  Unix.close fd;
  let ok = wait_for (fun () -> !failures >= 1) in
  Alcotest.(check bool) "LinkFailed surfaced" true ok;
  let events =
    List.filter
      (fun (e : Iov_telemetry.Telemetry.event) ->
        e.Iov_telemetry.Telemetry.kind = Iov_telemetry.Event.Link_failure)
      (Iov_telemetry.Telemetry.events tele)
  in
  Rnode.shutdown watcher;
  (match events with
  | [] -> Alcotest.fail "no link-failure telemetry event"
  | e :: _ ->
    Alcotest.(check bool) "recorded at the watcher" true
      (NI.equal e.Iov_telemetry.Telemetry.node (Rnode.id watcher));
    Alcotest.(check bool) "names the failed peer" true
      (e.Iov_telemetry.Telemetry.peer = Some claimed));
  let snap =
    Iov_telemetry.Metrics.snapshot
      ~scope:(NI.to_string (Rnode.id watcher))
      (Iov_telemetry.Telemetry.metrics tele)
  in
  (match List.assoc_opt "link_failures" snap with
  | Some (Iov_telemetry.Metrics.Counter n) ->
    Alcotest.(check bool) "link_failures counter" true (n >= 1)
  | _ -> Alcotest.fail "no link_failures counter");
  match List.assoc_opt "delivered" snap with
  | Some (Iov_telemetry.Metrics.Counter n) ->
    Alcotest.(check bool) "delivered counter" true (n >= 1)
  | _ -> Alcotest.fail "no delivered counter"

(* a peer that dies and later comes back at the same address must be
   re-adopted automatically: failed connect attempts ride the capped
   backoff schedule (refused locally inside the window, not hammered),
   and the engine's proactive pass re-establishes the link so traffic
   flows again without driver intervention *)
let test_rnode_reconnect_after_peer_restart () =
  let app = 7 in
  let driver = Rnode.start Alg.null in
  let sink1 = Rnode.start Alg.null in
  let peer = Rnode.id sink1 in
  let send seq =
    try
      Rnode.send driver
        (Msg.data ~origin:(Rnode.id driver) ~app ~seq (Bytes.make 32 'r'))
        peer;
      true
    with Unix.Unix_error _ -> false
  in
  ignore (send 0);
  Alcotest.(check bool) "delivered before the crash" true
    (wait_for (fun () -> Rnode.app_bytes sink1 ~app >= 32));
  Rnode.kill sink1;
  (* poke the dead link until the failure is noticed; once it is, the
     backoff window refuses further attempts without touching the
     network *)
  let backoff_refusals = ref 0 in
  for seq = 1 to 12 do
    (try
       Rnode.send driver
         (Msg.data ~origin:(Rnode.id driver) ~app ~seq (Bytes.make 32 'r'))
         peer
     with
    | Unix.Unix_error (Unix.ECONNREFUSED, _, "backoff") ->
      incr backoff_refusals
    | Unix.Unix_error _ -> ());
    Thread.delay 0.02
  done;
  Alcotest.(check bool) "attempts ride the backoff window" true
    (!backoff_refusals >= 1);
  (* resurrect the peer at the same address: the proactive reconnect
     pass must re-adopt it and deliveries resume *)
  let sink2 = Rnode.start ~port:peer.NI.port Alg.null in
  let flowed =
    wait_for (fun () ->
        if Rnode.app_bytes sink2 ~app > 0 then true
        else begin
          ignore (send 100);
          false
        end)
  in
  Alcotest.(check bool) "delivery after the peer returned" true flowed;
  Alcotest.(check bool) "link re-established" true
    (List.exists (NI.equal peer) (Rnode.peers driver));
  List.iter Rnode.shutdown [ driver; sink2 ]

(* the admission hook gates data sends on true pipeline bytes; refused
   messages are shed (telemetry), not enqueued, and control traffic
   bypasses the hook entirely *)
let test_rnode_admission_shed () =
  let tele = Tel.create () in
  let sink = Rnode.start Alg.null in
  let driver = Rnode.start ~telemetry:tele Alg.null in
  let app_ok = 11 and app_shed = 12 in
  Rnode.set_admission driver
    (Some (fun ~now:_ ~app ~size:_ ~backlog:_ -> app <> app_shed));
  for seq = 0 to 19 do
    Rnode.send driver
      (Msg.data ~origin:(Rnode.id driver) ~app:app_shed ~seq
         (Bytes.make 32 's'))
      (Rnode.id sink);
    Rnode.send driver
      (Msg.data ~origin:(Rnode.id driver) ~app:app_ok ~seq (Bytes.make 32 'k'))
      (Rnode.id sink)
  done;
  let ok = wait_for (fun () -> Rnode.app_bytes sink ~app:app_ok >= 20 * 32) in
  Alcotest.(check bool) "admitted app delivered" true ok;
  Alcotest.(check int) "shed app never left the driver" 0
    (Rnode.app_bytes sink ~app:app_shed);
  let snap =
    Metrics.snapshot ~scope:(NI.to_string (Rnode.id driver)) (Tel.metrics tele)
  in
  (match List.assoc_opt "guard.shed_total" snap with
  | Some (Metrics.Counter n) -> Alcotest.(check int) "shed counter" 20 n
  | _ -> Alcotest.fail "no guard.shed_total counter");
  let drained = wait_for (fun () -> Rnode.staged_bytes driver = 0) in
  Alcotest.(check bool) "staged bytes drain back to zero" true drained;
  (* a control message passes a reject-everything hook *)
  Rnode.set_admission driver (Some (fun ~now:_ ~app:_ ~size:_ ~backlog:_ -> false));
  let before = Rnode.link_bytes driver `Out (Rnode.id sink) in
  Rnode.send driver
    (Msg.control ~mtype:Mt.Boot ~origin:(Rnode.id driver) Bytes.empty)
    (Rnode.id sink);
  let sent_ctl =
    wait_for (fun () -> Rnode.link_bytes driver `Out (Rnode.id sink) > before)
  in
  Alcotest.(check bool) "control bypasses admission" true sent_ctl;
  List.iter Rnode.shutdown [ driver; sink ]

(* under a sustained burst the batched sender must coalesce: strictly
   fewer write syscalls than messages, every data message through the
   staging buffer, and the batch-size histogram accounting for every
   staged byte exactly once *)
let test_rnode_batched_syscall_accounting () =
  let tele = Tel.create () in
  let sink = Rnode.start ~buffer_capacity:512 Alg.null in
  let driver = Rnode.start ~buffer_capacity:512 ~telemetry:tele Alg.null in
  let app = 13 and msgs = 2000 and payload = 64 in
  for seq = 0 to msgs - 1 do
    Rnode.send driver
      (Msg.data ~origin:(Rnode.id driver) ~app ~seq (Bytes.make payload 'z'))
      (Rnode.id sink)
  done;
  let ok = wait_for (fun () -> Rnode.app_bytes sink ~app >= msgs * payload) in
  Alcotest.(check bool) "all delivered" true ok;
  let counter name =
    match
      List.assoc_opt name
        (Metrics.snapshot
           ~scope:(NI.to_string (Rnode.id driver))
           (Tel.metrics tele))
    with
    | Some (Metrics.Counter n) -> n
    | _ -> Alcotest.failf "no %s counter" name
  in
  (* the sink can observe the last batch's bytes a beat before the
     driver's sender thread books them — wait the race out *)
  ignore (wait_for (fun () -> counter "onet.batched_msgs" >= msgs));
  let snap =
    Metrics.snapshot ~scope:(NI.to_string (Rnode.id driver)) (Tel.metrics tele)
  in
  let syscalls = counter "onet.syscalls_total" in
  Alcotest.(check bool)
    (Printf.sprintf "coalesced (%d syscalls for %d msgs)" syscalls msgs)
    true
    (syscalls > 0 && syscalls < msgs);
  Alcotest.(check int) "every message rode the batched path" msgs
    (counter "onet.batched_msgs");
  let wire = msgs * (payload + Msg.header_size) in
  (match List.assoc_opt "onet.batch_bytes" snap with
  | Some (Metrics.Histogram { count; sum; _ }) ->
    Alcotest.(check int) "histogram sums every staged byte" wire sum;
    Alcotest.(check bool) "one observation per flush" true
      (count > 0 && count <= syscalls)
  | _ -> Alcotest.fail "no onet.batch_bytes histogram");
  Alcotest.(check int) "pipeline fully drained" 0 (Rnode.staged_bytes driver);
  List.iter Rnode.shutdown [ driver; sink ]

(* ~batching:false restores the one-write-per-message sender *)
let test_rnode_permsg_mode () =
  let tele = Tel.create () in
  let sink = Rnode.start Alg.null in
  let driver = Rnode.start ~batching:false ~telemetry:tele Alg.null in
  let app = 14 and msgs = 50 in
  for seq = 0 to msgs - 1 do
    Rnode.send driver
      (Msg.data ~origin:(Rnode.id driver) ~app ~seq (Bytes.make 16 'p'))
      (Rnode.id sink)
  done;
  let ok = wait_for (fun () -> Rnode.app_bytes sink ~app >= msgs * 16) in
  Alcotest.(check bool) "all delivered" true ok;
  let counter name =
    match
      List.assoc_opt name
        (Metrics.snapshot
           ~scope:(NI.to_string (Rnode.id driver))
           (Tel.metrics tele))
    with
    | Some (Metrics.Counter n) -> n
    | _ -> Alcotest.failf "no %s counter" name
  in
  ignore (wait_for (fun () -> counter "onet.syscalls_total" >= msgs));
  Alcotest.(check bool) "at least one write per message" true
    (counter "onet.syscalls_total" >= msgs);
  Alcotest.(check int) "nothing coalesced" 0 (counter "onet.batched_msgs");
  List.iter Rnode.shutdown [ driver; sink ]

let test_rnode_observer_bootstrap () =
  (* the portable observer algorithm served over real TCP: two nodes
     boot against it; the second learns about the first *)
  let oa = Iov_observer.Obs_algorithm.create ~poll:false () in
  let observer = Rnode.start (Iov_observer.Obs_algorithm.algorithm oa) in
  let learned = ref [] in
  let client name =
    let alg =
      Ialg.make ~name (fun ctx m ->
          (match m.Msg.mtype with
          | Mt.Boot_reply ->
            ignore (Ialg.default ctx m);
            learned := (name, ctx.Alg.known_hosts ()) :: !learned
          | _ -> ());
          Some Alg.Consume)
    in
    let node = Rnode.start alg in
    Rnode.send node
      (Msg.control ~mtype:Mt.Boot ~origin:(Rnode.id node) Bytes.empty)
      (Rnode.id observer);
    node
  in
  let n1 = client "n1" in
  let ok1 =
    wait_for (fun () ->
        List.length (Iov_observer.Obs_algorithm.alive oa) >= 1)
  in
  Alcotest.(check bool) "first boot registered" true ok1;
  let n2 = client "n2" in
  let ok2 =
    wait_for (fun () ->
        List.exists (fun (name, hosts) -> name = "n2" && hosts <> []) !learned)
  in
  Alcotest.(check bool) "second boot handed the first node" true ok2;
  (match
     List.find_opt (fun (name, _) -> name = "n2") !learned
   with
  | Some (_, hosts) ->
    Alcotest.(check bool) "it is n1" true
      (List.exists (NI.equal (Rnode.id n1)) hosts)
  | None -> Alcotest.fail "n2 never learned hosts");
  List.iter Rnode.shutdown [ observer; n1; n2 ]

let () =
  Alcotest.run "onet"
    [
      ( "squeue",
        [
          Alcotest.test_case "push/pop" `Quick test_squeue_basic;
          Alcotest.test_case "close semantics" `Quick test_squeue_close;
          Alcotest.test_case "producer/consumer threads" `Quick
            test_squeue_threads;
          Alcotest.test_case "blocking pop wakes" `Quick
            test_squeue_blocking_pop_wakes;
          Alcotest.test_case "batch pop" `Quick test_squeue_pop_batch;
          Alcotest.test_case "batch pop blocks for the first element"
            `Quick test_squeue_pop_batch_blocks_for_first;
          Alcotest.test_case "push_list blocks and keeps order" `Quick
            test_squeue_push_list;
        ] );
      ( "batcher",
        batcher_props
        @ [
            Alcotest.test_case "partial writes and EINTR mid-batch" `Quick
              test_batcher_partial_write_eintr;
            Alcotest.test_case "pool reuse never aliases live buffers"
              `Quick test_batcher_pool_reuse;
            Alcotest.test_case "oversized message rejected cleanly" `Quick
              test_batcher_reject_oversized;
          ] );
      ( "rnode",
        [
          Alcotest.test_case "direct delivery" `Quick
            test_rnode_direct_delivery;
          Alcotest.test_case "relay chain" `Quick test_rnode_relay_chain;
          Alcotest.test_case "byte metering" `Quick test_rnode_byte_metering;
          Alcotest.test_case "persistent connections" `Quick
            test_rnode_persistent_connection;
          Alcotest.test_case "peer death notification" `Quick
            test_rnode_peer_death_notifies;
          Alcotest.test_case "abrupt close emits link-failure telemetry"
            `Quick test_rnode_abrupt_close_telemetry;
          Alcotest.test_case "reconnect after peer restart" `Quick
            test_rnode_reconnect_after_peer_restart;
          Alcotest.test_case "admission hook sheds data, passes control"
            `Quick test_rnode_admission_shed;
          Alcotest.test_case "batched sender coalesces and accounts"
            `Quick test_rnode_batched_syscall_accounting;
          Alcotest.test_case "per-message mode writes one per message"
            `Quick test_rnode_permsg_mode;
          Alcotest.test_case "observer bootstrap over TCP" `Quick
            test_rnode_observer_bootstrap;
        ] );
    ]
