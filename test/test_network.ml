(* Tests for the simulated overlay runtime: delivery, bandwidth
   emulation, back pressure, failures, control path, QoS metering. *)

module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module NI = Iov_msg.Node_id
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module Source = Iov_algos.Source
module Flood = Iov_algos.Flood

let kbps x = x *. 1024.
let id i = NI.synthetic i
let app = 1

(* a sink algorithm recording every message it processes *)
let recording () =
  let log = ref [] in
  let alg =
    Ialg.make ~name:"recorder" (fun _ m ->
        log := m :: !log;
        Some Alg.Consume)
  in
  (alg, log)

(* a flood node wired externally *)
let flood_node net ?bw ?buffer_capacity i ~ups ~downs =
  let f = Flood.create () in
  Flood.set_route f ~app ~upstreams:(List.map id ups)
    ~downstreams:(List.map id downs) ();
  ignore
    (Network.add_node net ?bw ?buffer_capacity ~id:(id i)
       (Flood.algorithm f));
  f

let source_node net ?bw ?payload_size i ~dests =
  let s = Source.create ?payload_size ~app ~dests:(List.map id dests) () in
  ignore (Network.add_node net ?bw ~id:(id i) (Source.algorithm s));
  s

let check_close ~tol name expect got =
  if Float.abs (got -. expect) > tol *. expect then
    Alcotest.failf "%s: expected ~%.1f, got %.1f" name expect got

(* ------------------------------------------------------------------ *)
(* Delivery basics *)

let test_end_to_end_delivery () =
  let net = Network.create () in
  let alg, log = recording () in
  ignore (Network.add_node net ~id:(id 2) alg);
  let ctx_holder = ref None in
  let sender =
    Ialg.make ~name:"sender"
      ~on_start:(fun ctx -> ctx_holder := Some ctx)
      (fun _ _ -> Some Alg.Consume)
  in
  ignore (Network.add_node net ~id:(id 1) sender);
  Network.run net ~until:0.1;
  let ctx = Option.get !ctx_holder in
  ctx.Alg.send (Msg.data ~origin:(id 1) ~app ~seq:0 (Bytes.of_string "hi")) (id 2);
  Network.run net ~until:1.;
  Alcotest.(check int) "one message" 1 (List.length !log);
  let m = List.hd !log in
  Alcotest.(check string) "payload intact" "hi" (Msg.string_payload m);
  Alcotest.(check bool) "origin" true (NI.equal m.Msg.origin (id 1));
  Alcotest.(check bool) "link exists" true
    (Network.link_exists net ~src:(id 1) ~dst:(id 2))

let test_chain_forwarding () =
  let net = Network.create () in
  let src = source_node net 1 ~dests:[ 2 ] in
  let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[ 3 ] in
  let _ = flood_node net 3 ~ups:[ 2 ] ~downs:[] in
  Network.run net ~until:3.;
  Alcotest.(check bool) "source generated" true (Source.sent src > 0);
  Alcotest.(check bool) "sink received" true
    (Network.app_bytes net (id 3) ~app > 0)

let test_latency_delays_delivery () =
  let net = Network.create ~default_latency:0.5 () in
  let alg, log = recording () in
  ignore (Network.add_node net ~id:(id 2) alg);
  let ctxr = ref None in
  ignore
    (Network.add_node net ~id:(id 1)
       (Ialg.make ~name:"s" ~on_start:(fun c -> ctxr := Some c) (fun _ _ ->
            Some Alg.Consume)));
  Network.run net ~until:0.01;
  (Option.get !ctxr).Alg.send
    (Msg.data ~origin:(id 1) ~app ~seq:0 (Bytes.create 8))
    (id 2);
  Network.run net ~until:0.4;
  Alcotest.(check int) "not yet delivered" 0 (List.length !log);
  Network.run net ~until:1.0;
  Alcotest.(check int) "delivered after latency" 1 (List.length !log)

(* ------------------------------------------------------------------ *)
(* Bandwidth emulation *)

let test_per_node_total_cap () =
  let net = Network.create () in
  let _ = source_node net ~bw:(Bwspec.total_only (kbps 400.)) 1 ~dests:[ 2 ] in
  let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[] in
  Network.run net ~until:10.;
  check_close ~tol:0.05 "single link takes full cap" (kbps 400.)
    (Network.link_throughput net ~src:(id 1) ~dst:(id 2))

let test_total_cap_shared_across_links () =
  let net = Network.create () in
  let _ =
    source_node net ~bw:(Bwspec.total_only (kbps 400.)) 1 ~dests:[ 2; 3 ]
  in
  let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[] in
  let _ = flood_node net 3 ~ups:[ 1 ] ~downs:[] in
  Network.run net ~until:10.;
  check_close ~tol:0.08 "fair half" (kbps 200.)
    (Network.link_throughput net ~src:(id 1) ~dst:(id 2));
  check_close ~tol:0.08 "fair half" (kbps 200.)
    (Network.link_throughput net ~src:(id 1) ~dst:(id 3))

let test_total_cap_counts_in_and_out () =
  (* a relay with total 100 KBps forwarding a stream: in + out share
     the budget, so each side converges to ~50 *)
  let net = Network.create ~buffer_capacity:5 () in
  let _ = source_node net 1 ~dests:[ 2 ] in
  let _ =
    flood_node net ~bw:(Bwspec.total_only (kbps 100.)) 2 ~ups:[ 1 ]
      ~downs:[ 3 ]
  in
  let _ = flood_node net 3 ~ups:[ 2 ] ~downs:[] in
  Network.run net ~until:20.;
  check_close ~tol:0.12 "in side" (kbps 50.)
    (Network.link_throughput net ~src:(id 1) ~dst:(id 2));
  check_close ~tol:0.12 "out side" (kbps 50.)
    (Network.link_throughput net ~src:(id 2) ~dst:(id 3))

let test_asymmetric_updown () =
  let net = Network.create () in
  let _ =
    source_node net
      ~bw:(Bwspec.asymmetric ~up:(kbps 30.) ~down:(kbps 300.))
      1 ~dests:[ 2 ]
  in
  let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[] in
  Network.run net ~until:10.;
  check_close ~tol:0.08 "uplink caps sending" (kbps 30.)
    (Network.link_throughput net ~src:(id 1) ~dst:(id 2))

let test_downlink_cap () =
  let net = Network.create () in
  let _ = source_node net 1 ~dests:[ 2 ] in
  let _ =
    flood_node net ~bw:(Bwspec.make ~down:(kbps 40.) ()) 2 ~ups:[ 1 ] ~downs:[]
  in
  Network.run net ~until:10.;
  check_close ~tol:0.08 "receiver downlink caps" (kbps 40.)
    (Network.link_throughput net ~src:(id 1) ~dst:(id 2))

let test_per_link_cap_runtime () =
  let net = Network.create () in
  let _ = source_node net 1 ~dests:[ 2 ] in
  let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[] in
  Network.run net ~until:5.;
  Network.set_link_bandwidth net ~src:(id 1) ~dst:(id 2) (kbps 25.);
  Network.run net ~until:20.;
  check_close ~tol:0.1 "link cap applies at runtime" (kbps 25.)
    (Network.link_throughput net ~src:(id 1) ~dst:(id 2))

let test_set_bandwidth_via_control () =
  (* the observer-protocol path: a Set_bandwidth control message *)
  let net = Network.create () in
  let _ = source_node net 1 ~dests:[ 2 ] in
  let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[] in
  Network.run net ~until:3.;
  let w = Iov_msg.Wire.W.create () in
  Iov_msg.Wire.W.int32 w 1 (* uplink *);
  Iov_msg.Wire.W.float w (kbps 20.);
  let m =
    Msg.control ~mtype:Mt.Set_bandwidth ~origin:(id 99)
      (Iov_msg.Wire.W.contents w)
  in
  Network.inject_control net m (id 1);
  Network.run net ~until:15.;
  check_close ~tol:0.1 "uplink set by message" (kbps 20.)
    (Network.link_throughput net ~src:(id 1) ~dst:(id 2))

(* ------------------------------------------------------------------ *)
(* Back pressure *)

let test_back_pressure_small_buffers () =
  (* source -> relay -> slow sink: with 5-message buffers the source
     link throttles to the sink's rate *)
  let net = Network.create ~buffer_capacity:5 () in
  let _ = source_node net 1 ~dests:[ 2 ] in
  let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[ 3 ] in
  let _ =
    flood_node net ~bw:(Bwspec.make ~down:(kbps 10.) ()) 3 ~ups:[ 2 ] ~downs:[]
  in
  Network.run net ~until:30.;
  check_close ~tol:0.15 "upstream throttled" (kbps 10.)
    (Network.link_throughput net ~src:(id 1) ~dst:(id 2))

let test_large_buffers_delay_throttling () =
  let net = Network.create ~buffer_capacity:10000 () in
  let _ = source_node net ~bw:(Bwspec.total_only (kbps 100.)) 1 ~dests:[ 2 ] in
  let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[ 3 ] in
  let _ =
    flood_node net ~bw:(Bwspec.make ~down:(kbps 10.) ()) 3 ~ups:[ 2 ] ~downs:[]
  in
  Network.run net ~until:30.;
  (* the relay's big buffer shields the source within the horizon *)
  check_close ~tol:0.1 "source unaffected" (kbps 100.)
    (Network.link_throughput net ~src:(id 1) ~dst:(id 2));
  check_close ~tol:0.15 "sink limited" (kbps 10.)
    (Network.link_throughput net ~src:(id 2) ~dst:(id 3))

let test_copy_fanout_blocks_on_slowest () =
  (* a relay copying to one fast and one slow downstream: with small
     buffers both converge to the slow rate (remaining-senders retry) *)
  let net = Network.create ~buffer_capacity:5 () in
  let _ = source_node net ~payload_size:1024 1 ~dests:[ 2 ] in
  let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[ 3; 4 ] in
  let _ =
    flood_node net ~bw:(Bwspec.make ~down:(kbps 12.) ()) 3 ~ups:[ 2 ] ~downs:[]
  in
  let _ = flood_node net 4 ~ups:[ 2 ] ~downs:[] in
  Network.run net ~until:30.;
  check_close ~tol:0.15 "slow branch" (kbps 12.)
    (Network.link_throughput net ~src:(id 2) ~dst:(id 3));
  check_close ~tol:0.15 "fast branch equalized" (kbps 12.)
    (Network.link_throughput net ~src:(id 2) ~dst:(id 4))

(* ------------------------------------------------------------------ *)
(* Failures *)

let test_terminate_notifies_peers () =
  let net = Network.create () in
  let _ = source_node net 1 ~dests:[ 2 ] in
  let relay = flood_node net 2 ~ups:[ 1 ] ~downs:[ 3 ] in
  let _ = flood_node net 3 ~ups:[ 2 ] ~downs:[] in
  Network.run net ~until:3.;
  Network.terminate net (id 1);
  Network.run net ~until:6.;
  Alcotest.(check bool) "node dead" false
    (Network.is_alive (Network.node net (id 1)));
  (* the relay lost its only upstream: Domino tears the app down and
     notifies downstream *)
  Alcotest.(check (list int)) "relay torn down" [ app ]
    (Flood.broken_sources relay);
  Alcotest.(check bool) "link gone" false
    (Network.link_exists net ~src:(id 1) ~dst:(id 2))

let test_domino_effect_propagates () =
  (* chain of four: killing the source cascades BrokenSource down *)
  let net = Network.create () in
  let _ = source_node net 1 ~dests:[ 2 ] in
  let f2 = flood_node net 2 ~ups:[ 1 ] ~downs:[ 3 ] in
  let f3 = flood_node net 3 ~ups:[ 2 ] ~downs:[ 4 ] in
  let f4 = flood_node net 4 ~ups:[ 3 ] ~downs:[] in
  Network.run net ~until:3.;
  Network.terminate net (id 1);
  Network.run net ~until:8.;
  List.iter
    (fun (name, f) ->
      Alcotest.(check (list int)) (name ^ " torn down") [ app ]
        (Flood.broken_sources f))
    [ ("n2", f2); ("n3", f3); ("n4", f4) ]

let test_partial_upstream_failure_keeps_flow () =
  (* two upstreams feed one relay; killing one leaves the other flow
     undisturbed (the Fig. 6(c) property) *)
  let net = Network.create () in
  let _ = source_node net ~bw:(Bwspec.total_only (kbps 50.)) 1 ~dests:[ 3 ] in
  let _ = source_node net ~bw:(Bwspec.total_only (kbps 50.)) 2 ~dests:[ 3 ] in
  let relay = flood_node net 3 ~ups:[ 1; 2 ] ~downs:[ 4 ] in
  let _ = flood_node net 4 ~ups:[ 3 ] ~downs:[] in
  Network.run net ~until:5.;
  Network.terminate net (id 1);
  Network.run net ~until:15.;
  Alcotest.(check (list int)) "no teardown" [] (Flood.broken_sources relay);
  check_close ~tol:0.15 "surviving flow" (kbps 50.)
    (Network.link_throughput net ~src:(id 2) ~dst:(id 3))

let test_send_to_dead_node_notifies () =
  let net = Network.create () in
  let log = ref [] in
  let ctxr = ref None in
  let alg =
    Ialg.make ~name:"s"
      ~on_start:(fun c -> ctxr := Some c)
      (fun _ m ->
        if m.Msg.mtype = Mt.Link_failed then log := m :: !log;
        Some Alg.Consume)
  in
  ignore (Network.add_node net ~id:(id 1) alg);
  ignore (Network.add_node net ~id:(id 2) Alg.null);
  Network.run net ~until:0.5;
  Network.terminate net (id 2);
  Network.run net ~until:1.;
  (Option.get !ctxr).Alg.send
    (Msg.data ~origin:(id 1) ~app ~seq:0 (Bytes.create 4))
    (id 2);
  Network.run net ~until:2.;
  Alcotest.(check bool) "LinkFailed delivered" true (List.length !log >= 1);
  Alcotest.(check bool) "names the peer" true
    (NI.equal (List.hd !log).Msg.origin (id 2))

let test_lost_bytes_accounting () =
  let net = Network.create ~buffer_capacity:5 () in
  let _ = source_node net 1 ~dests:[ 2 ] in
  let _ =
    flood_node net ~bw:(Bwspec.make ~down:(kbps 10.) ()) 2 ~ups:[ 1 ] ~downs:[]
  in
  Network.run net ~until:5.;
  Network.terminate net (id 2);
  Network.run net ~until:7.;
  let bytes, msgs = Network.lost net (id 2) in
  Alcotest.(check bool) "buffered bytes counted lost" true (bytes > 0);
  Alcotest.(check bool) "messages counted" true (msgs > 0)

let test_inactivity_detection () =
  let net = Network.create ~inactivity_timeout:3. () in
  let _ = source_node net 1 ~dests:[ 2 ] in
  let relay = flood_node net 2 ~ups:[ 1 ] ~downs:[] in
  Network.run net ~until:5.;
  Network.stall_link net ~src:(id 1) ~dst:(id 2) true;
  Network.run net ~until:15.;
  (* the relay declares its upstream dead and tears the app down *)
  Alcotest.(check (list int)) "inactivity teardown" [ app ]
    (Flood.broken_sources relay)

let test_terminate_idempotent () =
  let net = Network.create () in
  ignore (Network.add_node net ~id:(id 1) Alg.null);
  Network.run net ~until:0.5;
  Network.terminate net (id 1);
  Network.terminate net (id 1);
  Network.run net ~until:1.;
  Alcotest.(check bool) "dead" false (Network.is_alive (Network.node net (id 1)))

let teardowns tl nid =
  List.filter
    (fun (e : Iov_telemetry.Telemetry.event) ->
      e.kind = Iov_telemetry.Event.Teardown && NI.equal e.node nid)
    (Iov_telemetry.Telemetry.events tl)

let test_double_kill_counts_once () =
  (* killing a node twice (or killing it again after the Domino Effect
     already tore it down) must neither re-count losses nor emit a
     second teardown event *)
  let tl = Iov_telemetry.Telemetry.create () in
  let net = Network.create ~buffer_capacity:5 ~telemetry:tl () in
  let _ = source_node net 1 ~dests:[ 2 ] in
  let _ =
    flood_node net ~bw:(Bwspec.make ~down:(kbps 10.) ()) 2 ~ups:[ 1 ] ~downs:[]
  in
  Network.run net ~until:5.;
  Network.kill_node net (id 2);
  (* let every in-flight (pipelined) transmission land before sampling:
     at 10 KBps the reserved slots keep draining for a few seconds *)
  Network.run net ~until:12.;
  let lost2 = Network.lost net (id 2) in
  let lost1 = Network.lost net (id 1) in
  Network.kill_node net (id 2);
  Network.kill_node net (id 2);
  Network.run net ~until:14.;
  Alcotest.(check (pair int int)) "victim losses stable" lost2
    (Network.lost net (id 2));
  Alcotest.(check (pair int int)) "peer losses stable" lost1
    (Network.lost net (id 1));
  Alcotest.(check int) "exactly one teardown event" 1
    (List.length (teardowns tl (id 2)))

let test_peer_death_counts_sender_backlog () =
  (* the victim's peers hold queued messages for it; once the failure is
     detected those are lost and must be counted at the sender (they
     were previously leaked when the victim's side closed the link
     first) *)
  let net = Network.create ~buffer_capacity:5 () in
  let _ = source_node net 1 ~dests:[ 2 ] in
  let _ =
    flood_node net ~bw:(Bwspec.make ~down:(kbps 10.) ()) 2 ~ups:[ 1 ] ~downs:[]
  in
  Network.run net ~until:5.;
  Network.terminate net (id 2);
  Network.run net ~until:7.;
  let bytes, msgs = Network.lost net (id 1) in
  Alcotest.(check bool) "sender's queued bytes counted" true (bytes > 0);
  Alcotest.(check bool) "sender's queued messages counted" true (msgs > 0)

let test_partition_blocks_and_heals () =
  let net = Network.create () in
  let _ = source_node net 1 ~dests:[ 2 ] in
  let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[] in
  Network.run net ~until:3.;
  let before = Network.app_bytes net (id 2) ~app in
  Network.set_partition net
    (Some (fun a b -> NI.equal a (id 1) && NI.equal b (id 2)));
  Alcotest.(check bool) "cut visible" true
    (Network.is_partitioned net (id 1) (id 2));
  Network.run net ~until:6.;
  let during = Network.app_bytes net (id 2) ~app in
  let lost_b, _ = Network.lost net (id 2) in
  (* only in-flight transmissions may still land; the flow is dead *)
  Alcotest.(check bool) "delivery stopped" true (during - before < 20_000);
  Alcotest.(check bool) "blackholed bytes counted" true (lost_b > 0);
  Alcotest.(check bool) "link stays open" true
    (Network.link_exists net ~src:(id 1) ~dst:(id 2));
  Network.set_partition net None;
  Network.run net ~until:9.;
  Alcotest.(check bool) "flow resumes after heal" true
    (Network.app_bytes net (id 2) ~app - during > 50_000)

let test_link_loss_drops () =
  let net = Network.create ~seed:7 () in
  let _ = source_node net ~bw:(Bwspec.total_only (kbps 100.)) 1 ~dests:[ 2 ] in
  let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[] in
  Network.set_link_loss net ~src:(id 1) ~dst:(id 2) 0.5;
  Alcotest.(check (option (pair (float 0.) (float 0.)))) "probabilities stored"
    (Some (0.5, 0.)) (Network.link_loss net ~src:(id 1) ~dst:(id 2));
  Network.run net ~until:10.;
  let _, lost_m = Network.lost net (id 2) in
  let delivered = Network.app_bytes net (id 2) ~app in
  Alcotest.(check bool) "some messages vanish" true (lost_m > 20);
  Alcotest.(check bool) "some messages survive" true (delivered > 0);
  (* the loss draw is seeded: roughly half the traffic disappears *)
  let total = float_of_int (lost_m * (5 * 1024) + delivered) in
  let frac = float_of_int delivered /. total in
  Alcotest.(check bool) "roughly half lost" true (frac > 0.3 && frac < 0.7);
  Alcotest.check_raises "probability validated"
    (Invalid_argument "Network.set_link_loss: p") (fun () ->
      Network.set_link_loss net ~src:(id 1) ~dst:(id 2) 1.5)

let test_corruption_uses_private_copy () =
  (* one lossy branch of a zero-copy fanout: the clean branch must keep
     the source's physical buffer, the corrupted branch must get a
     modified private copy *)
  let net = Network.create ~seed:5 () in
  let got3 = ref [] and got4 = ref [] in
  let recorder cell =
    Ialg.make ~name:"r" (fun _ m ->
        if m.Msg.mtype = Mt.Data then cell := m.Msg.payload :: !cell;
        Some Alg.Consume)
  in
  let ctxr = ref None in
  ignore
    (Network.add_node net ~id:(id 1)
       (Ialg.make ~name:"s" ~on_start:(fun c -> ctxr := Some c) (fun _ _ ->
            Some Alg.Consume)));
  let f = Flood.create () in
  Flood.set_route f ~app ~upstreams:[ id 1 ] ~downstreams:[ id 3; id 4 ] ();
  ignore (Network.add_node net ~id:(id 2) (Flood.algorithm f));
  ignore (Network.add_node net ~id:(id 3) (recorder got3));
  ignore (Network.add_node net ~id:(id 4) (recorder got4));
  Network.run net ~until:0.1;
  Network.set_link_loss net ~src:(id 2) ~dst:(id 3) ~corrupt:1.0 0.;
  let payload = Bytes.of_string "bits on the wire" in
  (Option.get !ctxr).Alg.send
    (Msg.data ~origin:(id 1) ~app ~seq:0 payload)
    (id 2);
  Network.run net ~until:2.;
  match (!got3, !got4) with
  | [ corrupted ], [ clean ] ->
    Alcotest.(check bool) "clean branch shares the buffer" true
      (clean == payload);
    Alcotest.(check bool) "corrupted branch got a copy" true
      (corrupted != payload);
    Alcotest.(check bool) "exactly a one-byte flip" true
      (Bytes.length corrupted = Bytes.length payload
      && corrupted <> payload)
  | a, b -> Alcotest.failf "expected 1+1 deliveries, got %d and %d"
              (List.length a) (List.length b)

let test_respawn_reuses_id () =
  let tl = Iov_telemetry.Telemetry.create () in
  let net = Network.create ~telemetry:tl () in
  let _ = source_node net 1 ~dests:[ 2 ] in
  let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[] in
  Network.run net ~until:2.;
  Network.kill_node net (id 2);
  Network.run net ~until:3.;
  let before = Network.app_bytes net (id 2) ~app in
  (* same id comes back: accepted, recorded as a respawn *)
  let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[] in
  Network.connect net (id 1) (id 2);
  Network.run net ~until:4.;
  Alcotest.(check bool) "alive again" true
    (Network.is_alive (Network.node net (id 2)));
  let respawns =
    List.filter
      (fun (e : Iov_telemetry.Telemetry.event) ->
        e.kind = Iov_telemetry.Event.Respawn && NI.equal e.node (id 2))
      (Iov_telemetry.Telemetry.events tl)
  in
  Alcotest.(check int) "one respawn event" 1 (List.length respawns);
  ignore before;
  (* a live id is still rejected *)
  match Network.add_node net ~id:(id 2) Alg.null with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "live duplicate accepted"

(* ------------------------------------------------------------------ *)
(* Control path and metering *)

let test_control_bytes_metered () =
  let net = Network.create () in
  let ctxr = ref None in
  ignore
    (Network.add_node net ~id:(id 1)
       (Ialg.make ~name:"s" ~on_start:(fun c -> ctxr := Some c) (fun _ _ ->
            Some Alg.Consume)));
  ignore (Network.add_node net ~id:(id 2) Alg.null);
  Network.run net ~until:0.1;
  let m = Msg.control ~mtype:Mt.S_aware ~origin:(id 1) (Bytes.create 40) in
  (Option.get !ctxr).Alg.send m (id 2);
  Network.run net ~until:1.;
  Alcotest.(check int) "sender metered" (Msg.size m)
    (Network.control_bytes_sent net (id 1) Mt.S_aware);
  Alcotest.(check int) "receiver metered" (Msg.size m)
    (Network.control_bytes_received net (id 2) Mt.S_aware);
  Alcotest.(check int) "aggregate" (Msg.size m)
    (Network.control_bytes_sent_all net Mt.S_aware)

let test_control_does_not_consume_bandwidth () =
  let net = Network.create () in
  let ctxr = ref None in
  ignore
    (Network.add_node net
       ~bw:(Bwspec.total_only 1024.) (* 1 KBps only *)
       ~id:(id 1)
       (Ialg.make ~name:"s" ~on_start:(fun c -> ctxr := Some c) (fun _ _ ->
            Some Alg.Consume)));
  let alg, log = recording () in
  ignore (Network.add_node net ~id:(id 2) alg);
  Network.run net ~until:0.1;
  (* 100 control messages of 1 KB each would take 100 s on the data
     path; they arrive promptly on the control path *)
  for i = 0 to 99 do
    (Option.get !ctxr).Alg.send
      (Msg.control ~mtype:Mt.S_query ~origin:(id 1) ~seq:i (Bytes.create 1000))
      (id 2)
  done;
  Network.run net ~until:1.;
  Alcotest.(check int) "all delivered fast" 100 (List.length !log)

let test_status_snapshot () =
  let net = Network.create () in
  let _ = source_node net 1 ~dests:[ 2 ] in
  let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[ 3 ] in
  let _ = flood_node net 3 ~ups:[ 2 ] ~downs:[] in
  Network.run net ~until:5.;
  match Network.make_status net (id 2) with
  | Some st ->
    Alcotest.(check int) "one upstream" 1 (List.length st.Iov_msg.Status.upstreams);
    Alcotest.(check int) "one downstream" 1
      (List.length st.Iov_msg.Status.downstreams);
    let up = List.hd st.Iov_msg.Status.upstreams in
    Alcotest.(check bool) "upstream is n1" true
      (NI.equal up.Iov_msg.Status.peer (id 1));
    Alcotest.(check bool) "rate measured" true (up.Iov_msg.Status.rate > 0.)
  | None -> Alcotest.fail "no status"

let test_throughput_reports_reach_algorithm () =
  let net = Network.create () in
  let reports = ref 0 in
  let alg =
    Ialg.make ~name:"listener" (fun _ m ->
        (match m.Msg.mtype with
        | Mt.Up_throughput -> incr reports
        | _ -> ());
        Some Alg.Consume)
  in
  let _ = source_node net 1 ~dests:[ 2 ] in
  ignore (Network.add_node net ~id:(id 2) alg);
  Network.run net ~until:5.;
  Alcotest.(check bool) "periodic UpThroughput" true (!reports >= 3)

let test_measure () =
  let net = Network.create () in
  let ctxr = ref None in
  ignore
    (Network.add_node net
       ~bw:(Bwspec.make ~up:(kbps 80.) ())
       ~id:(id 1)
       (Ialg.make ~name:"s" ~on_start:(fun c -> ctxr := Some c) (fun _ _ ->
            Some Alg.Consume)));
  ignore
    (Network.add_node net ~bw:(Bwspec.make ~down:(kbps 60.) ()) ~id:(id 2)
       Alg.null);
  Network.run net ~until:0.1;
  let result = ref None in
  (Option.get !ctxr).Alg.measure (id 2) (fun ~bandwidth ~latency ->
      result := Some (bandwidth, latency));
  Network.run net ~until:1.;
  match !result with
  | Some (bw, lat) ->
    Alcotest.(check bool) "latency positive" true (lat > 0.);
    (* min of 80 up and 60 down, with ±5% noise *)
    Alcotest.(check bool) "bandwidth near bottleneck" true
      (Float.abs (bw -. kbps 60.) < kbps 60. *. 0.06)
  | None -> Alcotest.fail "measurement never returned"

let test_duplicate_node_rejected () =
  let net = Network.create () in
  ignore (Network.add_node net ~id:(id 1) Alg.null);
  match Network.add_node net ~id:(id 1) Alg.null with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate id accepted"

let test_weighted_round_robin () =
  (* the switch is the bottleneck (CPU-limited relay); in-link weights
     split its service 3:1 *)
  let net = Network.create () in
  let host = Network.add_host net ~cpu:(`Calibrated (0.001, 0.)) "relay-host" in
  let s1 = Source.create ~payload_size:1000 ~app:1 ~dests:[ id 3 ] () in
  let s2 = Source.create ~payload_size:1000 ~app:2 ~dests:[ id 3 ] () in
  ignore (Network.add_node net ~id:(id 1) (Source.algorithm s1));
  ignore (Network.add_node net ~id:(id 2) (Source.algorithm s2));
  let f = Flood.create () in
  Flood.set_route f ~app:1 ~upstreams:[ id 1 ] ~downstreams:[ id 4 ] ();
  Flood.set_route f ~app:2 ~upstreams:[ id 2 ] ~downstreams:[ id 5 ] ();
  ignore (Network.add_node net ~host ~id:(id 3) (Flood.algorithm f));
  ignore (Network.add_node net ~id:(id 4) Alg.null);
  ignore (Network.add_node net ~id:(id 5) Alg.null);
  Network.run net ~until:2.;
  Network.set_link_weight net ~src:(id 1) ~dst:(id 3) 3;
  Alcotest.(check int) "weight readable" 3
    (Network.link_weight net ~src:(id 1) ~dst:(id 3));
  let b4 = Network.app_bytes net (id 4) ~app:1 in
  let b5 = Network.app_bytes net (id 5) ~app:2 in
  Network.run net ~until:22.;
  let d4 = Network.app_bytes net (id 4) ~app:1 - b4 in
  let d5 = Network.app_bytes net (id 5) ~app:2 - b5 in
  let ratio = float_of_int d4 /. float_of_int (Stdlib.max 1 d5) in
  if ratio < 2.5 || ratio > 3.5 then
    Alcotest.failf "expected ~3:1 split, got %.2f (%d vs %d)" ratio d4 d5

let test_weight_validation () =
  let net = Network.create () in
  ignore (Network.add_node net ~id:(id 1) Alg.null);
  ignore (Network.add_node net ~id:(id 2) Alg.null);
  Network.connect net (id 1) (id 2);
  Alcotest.check_raises "weight >= 1"
    (Invalid_argument "Network.set_link_weight: weight") (fun () ->
      Network.set_link_weight net ~src:(id 1) ~dst:(id 2) 0);
  Alcotest.check_raises "unknown link"
    (Invalid_argument "Network.set_link_weight: no such link") (fun () ->
      Network.set_link_weight net ~src:(id 2) ~dst:(id 1) 2);
  Alcotest.(check int) "unknown weight is 0" 0
    (Network.link_weight net ~src:(id 2) ~dst:(id 1))

let test_disconnect_stops_traffic () =
  let net = Network.create () in
  let _ = source_node net 1 ~dests:[ 2 ] in
  let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[] in
  Network.run net ~until:3.;
  Network.disconnect net ~src:(id 1) ~dst:(id 2);
  Network.run net ~until:5.;
  let b = Network.app_bytes net (id 2) ~app in
  Network.run net ~until:10.;
  (* buffered messages may still drain briefly, then the flow stops *)
  let b2 = Network.app_bytes net (id 2) ~app in
  Network.run net ~until:15.;
  let b3 = Network.app_bytes net (id 2) ~app in
  Alcotest.(check bool) "flow dried up" true (b3 = b2 || b3 - b < 100000)

let test_pipeline_depth_limits_latency_bandwidth () =
  (* depth 1 on a high-latency link: one message per (latency+xmit) *)
  let rate = kbps 200. in
  let run_with depth =
    let net =
      Network.create ~pipeline_depth:depth ~default_latency:0.1
        ~buffer_capacity:100 ()
    in
    let _ =
      source_node net ~bw:(Bwspec.make ~up:rate ()) 1 ~dests:[ 2 ]
    in
    let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[] in
    Network.run net ~until:15.;
    Network.link_throughput net ~src:(id 1) ~dst:(id 2)
  in
  let shallow = run_with 1 in
  let deep = run_with 8 in
  Alcotest.(check bool) "pipelining fills the pipe" true (deep > 2. *. shallow);
  check_close ~tol:0.1 "deep reaches the cap" rate deep

let test_endpoint_receives_control () =
  let net = Network.create () in
  let got = ref 0 in
  Network.register_endpoint net (id 50) (fun _ -> incr got);
  let ctxr = ref None in
  ignore
    (Network.add_node net ~id:(id 1)
       (Ialg.make ~name:"s" ~on_start:(fun c -> ctxr := Some c) (fun _ _ ->
            Some Alg.Consume)));
  Network.run net ~until:0.1;
  (Option.get !ctxr).Alg.send
    (Msg.control ~mtype:Mt.Trace ~origin:(id 1) Bytes.empty)
    (id 50);
  Network.run net ~until:1.;
  Alcotest.(check int) "endpoint handler ran" 1 !got

(* ------------------------------------------------------------------ *)
(* Deeper delivery semantics *)

let test_fifo_per_link () =
  let net = Network.create () in
  let seqs = ref [] in
  let sink =
    Ialg.make ~name:"sink" (fun _ m ->
        if m.Msg.mtype = Mt.Data then seqs := m.Msg.seq :: !seqs;
        Some Alg.Consume)
  in
  ignore (Network.add_node net ~id:(id 2) sink);
  let ctxr = ref None in
  ignore
    (Network.add_node net
       ~bw:(Bwspec.total_only (kbps 100.))
       ~id:(id 1)
       (Ialg.make ~name:"s" ~on_start:(fun c -> ctxr := Some c) (fun _ _ ->
            Some Alg.Consume)));
  Network.run net ~until:0.1;
  for i = 0 to 199 do
    (Option.get !ctxr).Alg.send
      (Msg.data ~origin:(id 1) ~app ~seq:i (Bytes.create 128))
      (id 2)
  done;
  Network.run net ~until:10.;
  let got = List.rev !seqs in
  Alcotest.(check int) "all delivered" 200 (List.length got);
  Alcotest.(check bool) "in FIFO order" true
    (got = List.init 200 (fun i -> i))

let test_zero_copy_forwarding () =
  (* the switch forwards references: both receivers must observe the
     physically same payload buffer the source created *)
  let net = Network.create () in
  let received = ref [] in
  let recorder =
    Ialg.make ~name:"r" (fun _ m ->
        if m.Msg.mtype = Mt.Data then received := m.Msg.payload :: !received;
        Some Alg.Consume)
  in
  let ctxr = ref None in
  ignore
    (Network.add_node net ~id:(id 1)
       (Ialg.make ~name:"s" ~on_start:(fun c -> ctxr := Some c) (fun _ _ ->
            Some Alg.Consume)));
  let f = Flood.create () in
  Flood.set_route f ~app ~upstreams:[ id 1 ] ~downstreams:[ id 3; id 4 ] ();
  ignore (Network.add_node net ~id:(id 2) (Flood.algorithm f));
  ignore (Network.add_node net ~id:(id 3) recorder);
  ignore (Network.add_node net ~id:(id 4) recorder);
  Network.run net ~until:0.1;
  let payload = Bytes.of_string "the one true buffer" in
  (Option.get !ctxr).Alg.send
    (Msg.data ~origin:(id 1) ~app ~seq:0 payload)
    (id 2);
  Network.run net ~until:2.;
  match !received with
  | [ a; b ] ->
    Alcotest.(check bool) "both are the source's buffer" true
      (a == payload && b == payload)
  | l -> Alcotest.failf "expected 2 deliveries, got %d" (List.length l)

let test_app_meters_are_separate () =
  let net = Network.create () in
  let s1 = Source.create ~payload_size:1000 ~app:1 ~dests:[ id 3 ] () in
  let s2 =
    Source.create ~pacing:(`Rate (kbps 5.)) ~payload_size:1000 ~app:2
      ~dests:[ id 3 ] ()
  in
  ignore
    (Network.add_node net
       ~bw:(Bwspec.total_only (kbps 50.))
       ~id:(id 1) (Source.algorithm s1));
  ignore (Network.add_node net ~id:(id 2) (Source.algorithm s2));
  ignore (Network.add_node net ~id:(id 3) Alg.null);
  Network.run net ~until:10.;
  let b1 = Network.app_bytes net (id 3) ~app:1 in
  let b2 = Network.app_bytes net (id 3) ~app:2 in
  Alcotest.(check bool) "both apps measured" true (b1 > 0 && b2 > 0);
  Alcotest.(check bool) "apps differ as expected" true (b1 > 3 * b2)

let test_wide_fanout () =
  let net = Network.create () in
  let _ = source_node net ~payload_size:1000 1 ~dests:[ 2 ] in
  let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[ 3; 4; 5; 6; 7; 8; 9; 10 ] in
  for i = 3 to 10 do
    ignore (Network.add_node net ~id:(id i) Alg.null)
  done;
  Network.run net ~until:5.;
  for i = 3 to 10 do
    Alcotest.(check bool)
      (Printf.sprintf "receiver %d served" i)
      true
      (Network.app_bytes net (id i) ~app > 0)
  done

let test_per_node_buffer_override () =
  let net = Network.create ~buffer_capacity:5 () in
  ignore (Network.add_node net ~buffer_capacity:50 ~id:(id 1) Alg.null);
  ignore (Network.add_node net ~id:(id 2) Alg.null);
  Network.connect net (id 1) (id 2);
  Network.run net ~until:0.5;
  match Network.make_status net (id 1) with
  | Some st ->
    let d = List.hd st.Iov_msg.Status.downstreams in
    Alcotest.(check int) "sender buffer uses the override" 50
      d.Iov_msg.Status.buffer_capacity
  | None -> Alcotest.fail "no status"

(* ------------------------------------------------------------------ *)
(* Randomized stress: arbitrary runtime operations must never crash
   the engine, and the accounting must stay sane. *)

type fuzz_op =
  | Set_node_bw of int * float
  | Set_link_bw of int * int * float
  | Set_weight of int * int * int
  | Kill of int
  | Run_for of float

let fuzz_op_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun i r -> Set_node_bw (i, r)) (int_range 1 6)
          (float_range 1024. 500_000.);
        map3
          (fun i j r -> Set_link_bw (i, j, r))
          (int_range 1 6) (int_range 1 6)
          (float_range 1024. 500_000.);
        map3 (fun i j w -> Set_weight (i, j, w)) (int_range 1 6)
          (int_range 1 6) (int_range 1 4);
        map (fun i -> Kill i) (int_range 2 6);
        map (fun t -> Run_for t) (float_range 0.1 3.);
      ])

let fuzz_print = function
  | Set_node_bw (i, r) -> Printf.sprintf "SetNodeBw(%d, %.0f)" i r
  | Set_link_bw (i, j, r) -> Printf.sprintf "SetLinkBw(%d, %d, %.0f)" i j r
  | Set_weight (i, j, w) -> Printf.sprintf "SetWeight(%d, %d, %d)" i j w
  | Kill i -> Printf.sprintf "Kill(%d)" i
  | Run_for t -> Printf.sprintf "Run(%.2f)" t

(* a diamond-with-tail workload: 1 sources to {2,3}, both relay to 4,
   4 to 5, plus a leaf 6 off node 2 *)
let fuzz_prop ops =
  let net = Network.create ~buffer_capacity:4 () in
  let src = source_node net ~payload_size:512 1 ~dests:[ 2; 3 ] in
  let _ = flood_node net 2 ~ups:[ 1 ] ~downs:[ 4; 6 ] in
  let _ = flood_node net 3 ~ups:[ 1 ] ~downs:[ 4 ] in
  let _ = flood_node net 4 ~ups:[ 2; 3 ] ~downs:[ 5 ] in
  let _ = flood_node net 5 ~ups:[ 4 ] ~downs:[] in
  let _ = flood_node net 6 ~ups:[ 2 ] ~downs:[] in
  Network.run net ~until:1.;
  List.iter
    (fun op ->
      match op with
      | Set_node_bw (i, r) ->
        Network.set_node_bandwidth net (id i) (Bwspec.total_only r)
      | Set_link_bw (i, j, r) ->
        if i <> j && Network.is_alive (Network.node net (id i)) then
          if
            Network.is_alive (Network.node net (id j))
            || Network.link_exists net ~src:(id i) ~dst:(id j)
          then Network.set_link_bandwidth net ~src:(id i) ~dst:(id j) r
      | Set_weight (i, j, w) ->
        if Network.link_exists net ~src:(id i) ~dst:(id j) then
          Network.set_link_weight net ~src:(id i) ~dst:(id j) w
      | Kill i -> Network.terminate net (id i)
      | Run_for t ->
        let now = Network.now net in
        Network.run net ~until:(now +. t))
    ops;
  let now = Network.now net in
  Network.run net ~until:(now +. 5.);
  (* invariants: accounting is non-negative and deliveries are bounded
     by what the source produced (each message visits a node once) *)
  let sent_bytes = Source.sent src * (512 + Iov_msg.Message.header_size) in
  List.for_all
    (fun i ->
      let delivered = Network.app_bytes net (id i) ~app in
      let lost_b, lost_m = Network.lost net (id i) in
      delivered >= 0 && lost_b >= 0 && lost_m >= 0
      && delivered <= sent_bytes
      && Network.app_rate net (id i) ~app >= 0.)
    [ 2; 3; 4; 5; 6 ]

let fuzz_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"random runtime operations"
       (QCheck.make ~print:(fun l -> String.concat "; " (List.map fuzz_print l))
          QCheck.Gen.(list_size (int_range 1 15) fuzz_op_gen))
       fuzz_prop)

let () =
  Alcotest.run "network"
    [
      ( "delivery",
        [
          Alcotest.test_case "end-to-end" `Quick test_end_to_end_delivery;
          Alcotest.test_case "chain forwarding" `Quick test_chain_forwarding;
          Alcotest.test_case "latency" `Quick test_latency_delays_delivery;
        ] );
      ( "bandwidth",
        [
          Alcotest.test_case "per-node total" `Quick test_per_node_total_cap;
          Alcotest.test_case "total shared across links" `Quick
            test_total_cap_shared_across_links;
          Alcotest.test_case "total counts in+out" `Quick
            test_total_cap_counts_in_and_out;
          Alcotest.test_case "asymmetric up/down" `Quick
            test_asymmetric_updown;
          Alcotest.test_case "receiver downlink" `Quick test_downlink_cap;
          Alcotest.test_case "per-link at runtime" `Quick
            test_per_link_cap_runtime;
          Alcotest.test_case "Set_bandwidth message" `Quick
            test_set_bandwidth_via_control;
        ] );
      ( "back-pressure",
        [
          Alcotest.test_case "small buffers throttle" `Quick
            test_back_pressure_small_buffers;
          Alcotest.test_case "large buffers localize" `Quick
            test_large_buffers_delay_throttling;
          Alcotest.test_case "copy fanout blocks on slowest" `Quick
            test_copy_fanout_blocks_on_slowest;
        ] );
      ( "failures",
        [
          Alcotest.test_case "terminate notifies peers" `Quick
            test_terminate_notifies_peers;
          Alcotest.test_case "domino effect" `Quick
            test_domino_effect_propagates;
          Alcotest.test_case "partial upstream failure" `Quick
            test_partial_upstream_failure_keeps_flow;
          Alcotest.test_case "send to dead node" `Quick
            test_send_to_dead_node_notifies;
          Alcotest.test_case "lost bytes accounting" `Quick
            test_lost_bytes_accounting;
          Alcotest.test_case "inactivity detection" `Quick
            test_inactivity_detection;
          Alcotest.test_case "terminate idempotent" `Quick
            test_terminate_idempotent;
          Alcotest.test_case "double kill counts once" `Quick
            test_double_kill_counts_once;
          Alcotest.test_case "peer death counts sender backlog" `Quick
            test_peer_death_counts_sender_backlog;
          Alcotest.test_case "partition blocks and heals" `Quick
            test_partition_blocks_and_heals;
          Alcotest.test_case "link loss" `Quick test_link_loss_drops;
          Alcotest.test_case "corruption keeps fanout intact" `Quick
            test_corruption_uses_private_copy;
          Alcotest.test_case "respawn reuses id" `Quick test_respawn_reuses_id;
        ] );
      ( "control",
        [
          Alcotest.test_case "byte metering" `Quick test_control_bytes_metered;
          Alcotest.test_case "no bandwidth consumption" `Quick
            test_control_does_not_consume_bandwidth;
          Alcotest.test_case "status snapshot" `Quick test_status_snapshot;
          Alcotest.test_case "throughput reports" `Quick
            test_throughput_reports_reach_algorithm;
          Alcotest.test_case "measure utility" `Quick test_measure;
          Alcotest.test_case "duplicate ids rejected" `Quick
            test_duplicate_node_rejected;
          Alcotest.test_case "endpoints" `Quick test_endpoint_receives_control;
        ] );
      ( "switch",
        [
          Alcotest.test_case "weighted round-robin" `Quick
            test_weighted_round_robin;
          Alcotest.test_case "weight validation" `Quick test_weight_validation;
          Alcotest.test_case "graceful disconnect" `Quick
            test_disconnect_stops_traffic;
          Alcotest.test_case "pipelining across latency" `Quick
            test_pipeline_depth_limits_latency_bandwidth;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "FIFO per link" `Quick test_fifo_per_link;
          Alcotest.test_case "zero-copy forwarding" `Quick
            test_zero_copy_forwarding;
          Alcotest.test_case "per-app meters" `Quick
            test_app_meters_are_separate;
          Alcotest.test_case "wide fanout" `Quick test_wide_fanout;
          Alcotest.test_case "buffer override" `Quick
            test_per_node_buffer_override;
        ] );
      ("fuzz", [ fuzz_test ]);
    ]
