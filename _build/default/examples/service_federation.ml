(* Service federation with sFlow: services disseminate awareness, a
   diamond-shaped requirement is federated from the source service,
   and the selected instances carry a live data stream. *)

module Network = Iov_core.Network
module Sflow = Iov_algos.Sflow
module Observer = Iov_observer.Observer
module NI = Iov_msg.Node_id

let app = 99

let requirement =
  Sflow.Req.make
    ~edges:[ (1, 2); (1, 3); (2, 4); (3, 4) ]
    ~source:1 ~sink:4

let () =
  let b = Iov_exp.Svc.build ~strategy:`Sflow ~n:12 ~types:4 () in
  let net = b.Iov_exp.Svc.net in
  Network.run net ~until:20.;
  (match Iov_exp.Svc.instances_of b 1 with
  | source :: _ ->
    Iov_exp.Svc.federate b ~app ~source requirement;
    Network.run net ~until:40.;
    print_endline "federated service DAG:";
    List.iter
      (fun (nid, flow) ->
        match Sflow.selected_children flow ~app with
        | [] -> ()
        | children ->
          Printf.printf "  %s (type %s) -> %s\n" (NI.to_string nid)
            (match Sflow.service_type flow with
            | Some t -> string_of_int t
            | None -> "?")
            (String.concat ", " (List.map NI.to_string children)))
      b.Iov_exp.Svc.flows;
    (match Iov_exp.Svc.sink_of b ~app ~source with
    | Some sink ->
      Printf.printf "sink %s receives %.0f KBps\n" (NI.to_string sink)
        (Network.app_rate net sink ~app /. 1024.)
    | None -> print_endline "no sink selected");
    Printf.printf "federations completed: %d\n" (Iov_exp.Svc.completed b)
  | [] -> print_endline "no source instance assigned")
