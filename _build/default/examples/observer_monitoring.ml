(* The observer as a monitoring and control facility: nodes bootstrap
   through it (via the firewall proxy), report status on demand, and
   obey runtime bandwidth-emulation commands. Trace records end up in
   the observer's log, which is saved to a file at the end — the
   paper's centralized debugging workflow, headless. *)

module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Observer = Iov_observer.Observer
module Proxy = Iov_observer.Proxy
module NI = Iov_msg.Node_id
module Source = Iov_algos.Source
module Flood = Iov_algos.Flood

let app = 1
let kbps x = x *. 1024.

let () =
  let net = Network.create () in
  let obs = Observer.create net in
  (* nodes sit "behind the firewall": they talk to the proxy, which
     relays everything to the observer over a single connection *)
  let proxy = Proxy.create ~observer:(Observer.id obs) net in

  let src = Source.create ~app ~dests:[ NI.synthetic 2 ] () in
  ignore
    (Network.add_node net ~observer:(Proxy.id proxy)
       ~bw:(Bwspec.total_only (kbps 100.))
       ~id:(NI.synthetic 1) (Source.algorithm src));
  let relay = Flood.create () in
  Flood.set_route relay ~app
    ~upstreams:[ NI.synthetic 1 ]
    ~downstreams:[ NI.synthetic 3 ] ();
  ignore
    (Network.add_node net ~observer:(Proxy.id proxy) ~id:(NI.synthetic 2)
       (Flood.algorithm relay));
  ignore
    (Network.add_node net ~observer:(Proxy.id proxy) ~id:(NI.synthetic 3)
       Iov_core.Algorithm.null);

  Observer.start_polling obs;
  Network.run net ~until:5.;
  Printf.printf "alive nodes known to the observer: %d\n"
    (List.length (Observer.alive_nodes obs));
  print_string (Observer.render_topology obs);

  (* produce an artificial bottleneck on the fly, then relieve it *)
  print_endline "\nthrottling the source to 20 KBps...";
  Observer.set_node_bandwidth obs (NI.synthetic 1)
    (Bwspec.make ~up:(kbps 20.) ());
  Network.run net ~until:15.;
  (match Observer.latest_status obs (NI.synthetic 3) with
  | Some st ->
    List.iter
      (fun (l : Iov_msg.Status.link_stat) ->
        Printf.printf "sink upstream %s measured at %.1f KBps\n"
          (NI.to_string l.Iov_msg.Status.peer)
          (l.Iov_msg.Status.rate /. 1024.))
      st.Iov_msg.Status.upstreams
  | None -> print_endline "no status yet");

  (* the proxy carried every report over one connection *)
  Printf.printf "proxy relayed %d messages to the observer\n"
    (Proxy.relayed proxy);

  (* algorithms can log to the centralized facility at any time *)
  let sink_ctx = Network.ctx (Network.node net (NI.synthetic 3)) in
  sink_ctx.Iov_core.Algorithm.trace "sink: experiment complete";
  Network.run net ~until:16.;

  let path = Filename.temp_file "iover-demo" ".log" in
  let n = Observer.save_traces obs path in
  Printf.printf "saved %d trace records to %s\n" n path;
  Sys.remove path
