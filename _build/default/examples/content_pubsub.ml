(* Content-based networking (paper Section 3.1): a small router
   overlay where subscribers advertise predicates and publishers send
   unaddressed events. The stock-ticker flavoured demo below routes
   quotes by symbol and price.

       r1 --- r2 --- r3
        \            /
        sub A      sub B

   Subscriber A (at r1) wants symbol=1 with price > 100; subscriber B
   (at r3) wants any event with volume >= 1000. The publisher injects
   events at r2. *)

module Network = Iov_core.Network
module Content = Iov_algos.Content
module NI = Iov_msg.Node_id
module Msg = Iov_msg.Message

let app = 77
let symbol = 1
let price = 2
let volume = 3

let () =
  let net = Network.create () in
  let router i neighbors =
    let r = Content.Router.create ~app () in
    List.iter (fun n -> Content.Router.add_neighbor r (NI.synthetic n)) neighbors;
    (r, NI.synthetic i)
  in
  let r1, id1 = router 1 [ 2 ] in
  let r2, id2 = router 2 [ 1; 3 ] in
  let r3, id3 = router 3 [ 2 ] in

  (* subscriptions live at the edge routers *)
  Content.Router.subscribe r1 ~id:101
    Content.Predicate.
      [ atom symbol Eq 1; atom price Gt 100 ];
  Content.Router.subscribe r3 ~id:102
    Content.Predicate.[ atom volume Ge 1000 ];

  List.iter
    (fun (r, ni) ->
      ignore (Network.add_node net ~id:ni (Content.Router.algorithm r)))
    [ (r1, id1); (r2, id2); (r3, id3) ];
  Network.run net ~until:3. (* let subscriptions flood *);

  (* events enter the overlay as data towards an access router *)
  let events =
    [
      [ (symbol, 1); (price, 120); (volume, 10) ] (* matches A only *);
      [ (symbol, 2); (price, 300); (volume, 5000) ] (* matches B only *);
      [ (symbol, 1); (price, 180); (volume, 2000) ] (* matches both *);
      [ (symbol, 1); (price, 90); (volume, 10) ] (* matches nobody *);
    ]
  in
  (* drive the publisher as a fourth node *)
  let pub_id = NI.synthetic 4 in
  let pending = ref events in
  let pub_alg =
    Iov_core.Ialgorithm.make ~name:"publisher"
      ~on_start:(fun ctx ->
        List.iteri
          (fun seq e ->
            ctx.Iov_core.Algorithm.send
              (Msg.data ~origin:ctx.Iov_core.Algorithm.self ~app ~seq
                 (Content.Router.publish_payload e))
              id2)
          !pending;
        pending := [])
      (fun _ _ -> Some Iov_core.Algorithm.Consume)
  in
  ignore (Network.add_node net ~id:pub_id pub_alg);
  Network.run net ~until:6.;

  Printf.printf "subscriber A (symbol=1 & price>100) received %d events\n"
    (Content.Router.delivered r1);
  Printf.printf "subscriber B (volume>=1000)          received %d events\n"
    (Content.Router.delivered r3);
  Printf.printf "routing tables know %d subscriptions at r2\n"
    (Content.Router.known_subscriptions r2);
  assert (Content.Router.delivered r1 = 2);
  assert (Content.Router.delivered r3 = 2);
  print_endline "content-based routing OK"
