examples/quickstart.mli:
