examples/quickstart.ml: Iov_algos Iov_core Iov_msg Printf
