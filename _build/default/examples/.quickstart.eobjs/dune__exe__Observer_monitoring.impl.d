examples/observer_monitoring.ml: Filename Iov_algos Iov_core Iov_msg Iov_observer List Printf Sys
