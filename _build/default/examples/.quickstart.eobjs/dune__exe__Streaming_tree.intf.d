examples/streaming_tree.mli:
