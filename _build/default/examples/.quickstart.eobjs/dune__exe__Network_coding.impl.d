examples/network_coding.ml: Iov_algos Iov_core Iov_topo List Printf
