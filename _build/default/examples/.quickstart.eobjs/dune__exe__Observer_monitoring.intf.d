examples/observer_monitoring.mli:
