examples/service_federation.ml: Iov_algos Iov_core Iov_exp Iov_msg Iov_observer List Printf String
