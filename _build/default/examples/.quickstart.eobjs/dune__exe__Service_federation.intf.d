examples/service_federation.mli:
