examples/content_pubsub.mli:
