examples/network_coding.mli:
