examples/structured_search.ml: Int Iov_algos Iov_core Iov_dsim Iov_msg Iov_observer List Printf String
