examples/structured_search.mli:
