examples/content_pubsub.ml: Iov_algos Iov_core Iov_msg List Printf
