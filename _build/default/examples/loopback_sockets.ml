(* The real-sockets runtime: a three-node relay chain over 127.0.0.1
   TCP connections, with actual receiver/sender/engine threads — the
   paper's engine architecture on a real network stack.

       driver --> relay --> sink

   The driver pushes 500 data messages; the relay's algorithm forwards
   them; the sink counts delivered bytes. *)

module Rnode = Iov_onet.Rnode
module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module Msg = Iov_msg.Message
module NI = Iov_msg.Node_id

let app = 3
let n_messages = 500
let payload = 1024

let () =
  (* the sink consumes everything *)
  let sink = Rnode.start Alg.null in

  (* the relay forwards data for our app to the sink *)
  let forward (_ : Alg.ctx) (m : Msg.t) =
    match m.Msg.mtype with
    | Iov_msg.Mtype.Data when m.app = app ->
      Some (Alg.Forward [ Rnode.id sink ])
    | _ -> None
  in
  let relay = Rnode.start (Ialg.make ~name:"relay" forward) in

  let driver = Rnode.start Alg.null in
  Rnode.connect driver (Rnode.id relay);
  Printf.printf "driver %s -> relay %s -> sink %s\n%!"
    (NI.to_string (Rnode.id driver))
    (NI.to_string (Rnode.id relay))
    (NI.to_string (Rnode.id sink));

  for seq = 0 to n_messages - 1 do
    let m =
      Msg.data ~origin:(Rnode.id driver) ~app ~seq (Bytes.make payload 'z')
    in
    Rnode.send driver m (Rnode.id relay)
  done;

  (* wait for delivery *)
  let deadline = Unix.gettimeofday () +. 10. in
  let expected = n_messages * payload in
  while
    Rnode.app_bytes sink ~app < expected && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.05
  done;
  Printf.printf "sink received %d of %d bytes over real TCP\n"
    (Rnode.app_bytes sink ~app)
    expected;
  List.iter Rnode.shutdown [ driver; relay; sink ];
  if Rnode.app_bytes sink ~app = expected then print_endline "OK"
  else begin
    print_endline "FAILED";
    exit 1
  end
