(* Structured search on iOverlay: a Chord-style DHT — the protocol
   class (Pastry, Chord) whose implementation burden motivates the
   paper — built purely against the algorithm interface.

   Twelve nodes bootstrap through the observer, stabilize into a ring,
   store a small dictionary, and answer lookups from a different
   node. *)

module Network = Iov_core.Network
module Observer = Iov_observer.Observer
module Dht = Iov_algos.Dht
module NI = Iov_msg.Node_id

let n = 12

let () =
  let net = Network.create () in
  let obs = Observer.create ~boot_subset:4 net in
  let nodes =
    List.init n (fun i ->
        let d = Dht.create () in
        let nid = NI.synthetic (i + 1) in
        ignore
          (Iov_dsim.Sim.schedule_at (Network.sim net)
             ~time:(2. *. float_of_int i)
             (fun () ->
               ignore
                 (Network.add_node net ~observer:(Observer.id obs) ~id:nid
                    (Dht.algorithm d))));
        (nid, d))
  in
  Network.run net ~until:(float_of_int (2 * n) +. 30.);

  print_endline "stabilized ring (clockwise):";
  List.sort (fun (_, a) (_, b) -> Int.compare (Dht.id_of a) (Dht.id_of b)) nodes
  |> List.iter (fun (nid, d) ->
         Printf.printf "  %5d  %s -> %s\n" (Dht.id_of d) (NI.to_string nid)
           (match Dht.successor d with
           | Some s -> NI.to_string s
           | None -> "?"));

  (* publish a dictionary from the first node *)
  let writer_id, writer = List.hd nodes in
  let wctx = Network.ctx (Network.node net writer_id) in
  let entries =
    [ ("ocaml", "a functional language"); ("overlay", "a virtual network");
      ("chord", "a ring-structured DHT"); ("ioverlay", "this middleware") ]
  in
  List.iter (fun (k, v) -> Dht.put writer wctx ~key:k v) entries;
  Network.run net ~until:(Network.now net +. 5.);

  List.iter
    (fun (nid, d) ->
      match Dht.stored d with
      | [] -> ()
      | kvs ->
        Printf.printf "%s stores: %s\n" (NI.to_string nid)
          (String.concat ", " (List.map fst kvs)))
    nodes;

  (* look everything up from the other side of the ring *)
  let reader_id, reader = List.nth nodes (n - 1) in
  let rctx = Network.ctx (Network.node net reader_id) in
  let hits = ref 0 in
  List.iter
    (fun (k, expect) ->
      Dht.get reader rctx ~key:k (fun v ->
          if v = Some expect then incr hits;
          Printf.printf "lookup %-9s -> %s\n" k
            (match v with Some v -> v | None -> "(miss)")))
    entries;
  Network.run net ~until:(Network.now net +. 5.);
  Printf.printf "%d/%d lookups answered correctly\n" !hits
    (List.length entries);
  assert (!hits = List.length entries)
