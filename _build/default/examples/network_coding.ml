(* Network coding on the butterfly-style overlay of the paper's
   Fig. 8: node D codes two incoming streams as a + b over GF(2^8);
   receivers F and G combine the coded stream with a native stream and
   decode both. Run with and without coding to see the gain. *)

module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Topo = Iov_topo.Topo
module Coding = Iov_algos.Coding

let app = 1
let kbps x = x *. 1024.

let () =
  let topo = Topo.fig8 () in
  let net = Network.create ~buffer_capacity:500 () in
  let node = Topo.node topo in
  let add name alg =
    let spec = Topo.spec topo name in
    ignore (Network.add_node net ~bw:spec.Topo.bw ~id:spec.Topo.nid alg)
  in

  (* A splits its data into streams a (via B) and b (via C) *)
  let source = Coding.split_source ~app ~dests:[ node "B"; node "C" ] () in
  add "A" (Iov_algos.Source.algorithm source);

  (* helpers B and C replicate their native stream *)
  let route name entries coded =
    let r = Coding.Router.create ~app () in
    List.iter
      (fun (i, ds) -> Coding.Router.route_native r ~index:i (List.map node ds))
      entries;
    if coded <> [] then Coding.Router.route_coded r (List.map node coded);
    add name (Coding.Router.algorithm r)
  in
  route "B" [ (0, [ "D"; "F" ]) ] [];
  route "C" [ (1, [ "D"; "G" ]) ] [];

  (* D codes a + b; E relays the coded stream to both receivers *)
  let coder = Coding.Coder.create ~k:2 ~app ~dests:[ node "E" ] () in
  add "D" (Coding.Coder.algorithm coder);
  route "E" [] [ "F"; "G" ];
  let df = Coding.Decoder_node.create ~k:2 ~app () in
  let dg = Coding.Decoder_node.create ~k:2 ~app () in
  add "F" (Coding.Decoder_node.algorithm df);
  add "G" (Coding.Decoder_node.algorithm dg);

  Network.set_node_bandwidth net (node "D")
    (Bwspec.make ~up:(kbps 200.) ());
  Network.run net ~until:20.;

  let rate name = Network.app_rate net (node name) ~app /. 1024. in
  Printf.printf "receiver throughput with coding: F=%.0f KBps  G=%.0f KBps\n"
    (rate "F") (rate "G");
  Printf.printf "generations decoded: F=%d  G=%d (coded packets from D: %d)\n"
    (Coding.Decoder_node.decoded_generations df)
    (Coding.Decoder_node.decoded_generations dg)
    (Coding.Coder.emitted coder);
  Printf.printf
    "without coding these receivers reach ~300 KBps (see `iover run fig8`)\n"
