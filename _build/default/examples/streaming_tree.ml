(* A streaming multicast session built with the node-stress aware tree
   algorithm: ten wide-area nodes join one by one, then the source
   streams constant-rate data down the tree.

   This exercises the public protocol path end to end: observer
   bootstrap, sQuery dissemination, stress exchange, join handshake,
   and the data plane. *)

module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Tree = Iov_algos.Tree
module Observer = Iov_observer.Observer
module Planetlab = Iov_topo.Planetlab
module NI = Iov_msg.Node_id

let app = 42

let () =
  let pl = Planetlab.generate ~seed:5 ~n:10 () in
  let net = Network.create ~buffer_capacity:200 () in
  Network.set_latency_fn net (Planetlab.latency pl);
  let obs = Observer.create ~boot_subset:10 net in
  let members =
    List.map
      (fun nd ->
        let t =
          Tree.create ~strategy:Tree.Ns_aware
            ~last_mile:(Bwspec.last_mile nd.Planetlab.bw)
            ~app ()
        in
        ignore
          (Network.add_node net ~bw:nd.Planetlab.bw
             ~observer:(Observer.id obs) ~id:nd.Planetlab.nid
             (Tree.algorithm t));
        (nd.Planetlab.nid, t))
      (Planetlab.nodes pl)
  in
  let source = fst (List.hd members) in
  let sim = Network.sim net in
  ignore
    (Iov_dsim.Sim.schedule_at sim ~time:1.0 (fun () ->
         Observer.deploy_source obs source ~app));
  List.iteri
    (fun i (nid, _) ->
      if i > 0 then
        ignore
          (Iov_dsim.Sim.schedule_at sim
             ~time:(2.0 +. float_of_int i)
             (fun () -> Observer.join obs nid ~app)))
    members;
  Network.run net ~until:60.;

  print_endline "streaming multicast tree (ns-aware):";
  let rec show indent nid =
    Printf.printf "%s%s  (recv %.0f KBps)\n" indent (NI.to_string nid)
      (Network.app_rate net nid ~app /. 1024.);
    match List.assoc_opt nid members with
    | Some t -> List.iter (show (indent ^ "  ")) (Tree.children t)
    | None -> ()
  in
  show "" source;
  let joined =
    List.length (List.filter (fun (_, t) -> Tree.in_session t) members)
  in
  Printf.printf "%d of %d nodes in the session\n" joined (List.length members)
