examples/loopback_sockets.ml: Bytes Iov_core Iov_msg Iov_onet List Printf Thread Unix
