examples/loopback_sockets.mli:
