type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry option array;
  mutable len : int;
}

let create () = { arr = Array.make 16 None; len = 0 }

let size t = t.len
let is_empty t = t.len = 0

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let get t i =
  match t.arr.(i) with
  | Some e -> e
  | None -> assert false

let grow t =
  let arr = Array.make (2 * Array.length t.arr) None in
  Array.blit t.arr 0 arr 0 t.len;
  t.arr <- arr

let push t ~time ~seq value =
  if t.len = Array.length t.arr then grow t;
  let e = { time; seq; value } in
  (* sift up *)
  let i = ref t.len in
  t.len <- t.len + 1;
  t.arr.(!i) <- Some e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less e (get t parent) then begin
      t.arr.(!i) <- t.arr.(parent);
      t.arr.(parent) <- Some e;
      i := parent
    end
    else continue := false
  done

let peek t =
  if t.len = 0 then None
  else
    let e = get t 0 in
    Some (e.time, e.seq, e.value)

let pop t =
  if t.len = 0 then None
  else begin
    let top = get t 0 in
    t.len <- t.len - 1;
    let last = get t t.len in
    t.arr.(t.len) <- None;
    if t.len > 0 then begin
      t.arr.(0) <- Some last;
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && less (get t l) (get t !smallest) then smallest := l;
        if r < t.len && less (get t r) (get t !smallest) then smallest := r;
        if !smallest <> !i then begin
          t.arr.(!i) <- t.arr.(!smallest);
          t.arr.(!smallest) <- Some last;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.seq, top.value)
  end
