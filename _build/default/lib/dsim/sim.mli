(** The discrete-event simulator driving every iOverlay experiment.

    The simulator owns a virtual clock and an event queue. All overlay
    nodes, links, the observer and workload generators schedule
    closures; [run] executes them in time order. Determinism: events at
    equal times fire in scheduling order, and all randomness flows from
    the seeded {!rng}. *)

type t

type handle
(** A cancellable reference to a scheduled event. *)

val create : ?seed:int -> unit -> t
(** [create ?seed ()] — the default seed is 42. *)

val now : t -> float
(** Current virtual time, in seconds. *)

val rng : t -> Random.State.t

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] fires [f] at [now t +. delay].
    @raise Invalid_argument if [delay] is negative or not finite. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** [schedule_at t ~time f] fires [f] at absolute [time >= now t]. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val cancelled : handle -> bool

val every : t -> period:float -> ?jitter:float -> (unit -> unit) -> handle
(** [every t ~period f] fires [f] every [period] seconds (first firing
    after one period). With [~jitter:j], each interval is drawn
    uniformly from [[period - j, period + j]]. Cancel the returned
    handle to stop the recurrence. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Executes events until the queue drains, [until] (exclusive of later
    events) is reached, or [max_events] have fired. When stopped by
    [until], the clock is advanced to [until]. *)

val pending : t -> int
(** Number of events still queued (including cancelled stubs). *)

val events_fired : t -> int
