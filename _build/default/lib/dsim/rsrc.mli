(** Serializing rate servers, the building block of iOverlay's
    bandwidth and CPU emulation.

    A rate server models a capacity constraint (a per-link bandwidth
    cap, a node's uplink budget, a shared CPU). Work of [bytes] (or any
    cost unit) passes through the server at [rate] units/second,
    strictly one reservation at a time. Two traffic flows contending
    for the same server therefore alternate and each observes half the
    rate — which is exactly how the paper's emulated per-node caps
    split across active links (Fig. 6(a)). *)

type t

val create : rate:float -> t
(** [create ~rate] with [rate] in units/second; [infinity] means
    unconstrained. @raise Invalid_argument if [rate <= 0]. *)

val unconstrained : unit -> t
(** Shorthand for [create ~rate:infinity]. *)

val rate : t -> float

val set_rate : t -> float -> unit
(** Changes the rate for subsequent reservations. Used when the
    observer adjusts emulated bandwidth at runtime.
    @raise Invalid_argument if the new rate is [<= 0]. *)

val is_unconstrained : t -> bool

val free_at : t -> float
(** The time at which the server becomes idle (0. initially). *)

val reserve : t -> now:float -> cost:float -> float * float
(** [reserve t ~now ~cost] books [cost] units through the server,
    starting no earlier than [now] nor before pending reservations
    complete. Returns [(start, finish)] and advances the server's
    [free_at] to [finish]. Unconstrained servers return
    [(now, now)] and book nothing. *)

val reserve_from : t -> start:float -> cost:float -> float
(** [reserve_from t ~start ~cost] books [cost] units beginning exactly
    at [start] (which must be [>= free_at t]) and returns the finish
    time. Used when several servers must be reserved over a common
    window: first compute the common start with {!free_at}, then book
    each. *)

val release_until : t -> float -> unit
(** [release_until t time] rolls the server's [free_at] back to at most
    [time]; used to cancel a reservation when a transmission aborts. *)
