lib/dsim/heap.mli:
