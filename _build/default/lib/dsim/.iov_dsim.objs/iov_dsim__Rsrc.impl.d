lib/dsim/rsrc.ml: Float
