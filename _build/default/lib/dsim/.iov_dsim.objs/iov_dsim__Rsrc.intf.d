lib/dsim/rsrc.mli:
