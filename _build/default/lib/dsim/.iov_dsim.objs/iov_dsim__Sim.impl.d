lib/dsim/sim.ml: Float Heap Random
