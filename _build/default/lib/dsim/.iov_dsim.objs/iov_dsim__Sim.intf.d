lib/dsim/sim.mli: Random
