type handle = { mutable dead : bool; mutable fn : (unit -> unit) option }

type t = {
  mutable clock : float;
  mutable seq : int;
  mutable fired : int;
  queue : handle Heap.t;
  random : Random.State.t;
}

let create ?(seed = 42) () =
  {
    clock = 0.;
    seq = 0;
    fired = 0;
    queue = Heap.create ();
    random = Random.State.make [| seed |];
  }

let now t = t.clock
let rng t = t.random

let schedule_at t ~time f =
  if not (Float.is_finite time) then invalid_arg "Sim.schedule_at: time";
  if time < t.clock then invalid_arg "Sim.schedule_at: time in the past";
  let h = { dead = false; fn = Some f } in
  Heap.push t.queue ~time ~seq:t.seq h;
  t.seq <- t.seq + 1;
  h

let schedule t ~delay f =
  if delay < 0. || not (Float.is_finite delay) then
    invalid_arg "Sim.schedule: delay";
  schedule_at t ~time:(t.clock +. delay) f

let cancel _t h =
  h.dead <- true;
  h.fn <- None

let cancelled h = h.dead

let every t ~period ?(jitter = 0.) f =
  if period <= 0. then invalid_arg "Sim.every: period";
  if jitter < 0. || jitter >= period then invalid_arg "Sim.every: jitter";
  (* The outer handle stays valid across re-arms: each firing checks it
     and re-schedules itself, so cancelling the outer handle stops the
     recurrence even though inner events keep their own handles. *)
  let outer = { dead = false; fn = None } in
  let next_delay () =
    if jitter = 0. then period
    else period -. jitter +. Random.State.float t.random (2. *. jitter)
  in
  let rec arm () =
    if not outer.dead then
      ignore
        (schedule t ~delay:(next_delay ()) (fun () ->
             if not outer.dead then begin
               f ();
               arm ()
             end))
  in
  arm ();
  outer

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some (time, _, _) -> (
      match until with
      | Some u when time > u ->
        t.clock <- Float.max t.clock u;
        continue := false
      | _ -> (
        match Heap.pop t.queue with
        | None -> continue := false
        | Some (time, _, h) ->
          t.clock <- time;
          (match h.fn with
          | Some f when not h.dead ->
            h.fn <- None;
            t.fired <- t.fired + 1;
            decr budget;
            f ()
          | Some _ | None -> ())))
  done;
  match until with
  | Some u when (not !continue) && Heap.is_empty t.queue ->
    t.clock <- Float.max t.clock u
  | _ -> ()

let pending t = Heap.size t.queue
let events_fired t = t.fired
