(** A minimal binary min-heap, keyed by [(float, int)] pairs.

    Used as the simulator event queue: the float is the firing time and
    the int a monotonically increasing sequence number, so events with
    equal times pop in insertion order (deterministic replay). *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> seq:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Removes and returns the minimum element, or [None] when empty. *)

val peek : 'a t -> (float * int * 'a) option
