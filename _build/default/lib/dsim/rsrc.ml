type t = {
  mutable rate : float;
  mutable free_at : float;
}

let create ~rate =
  if rate <= 0. then invalid_arg "Rsrc.create: rate must be positive";
  { rate; free_at = 0. }

let unconstrained () = create ~rate:infinity

let rate t = t.rate

let set_rate t r =
  if r <= 0. then invalid_arg "Rsrc.set_rate: rate must be positive";
  t.rate <- r

let is_unconstrained t = t.rate = infinity

let free_at t = t.free_at

let reserve t ~now ~cost =
  if t.rate = infinity then (now, now)
  else begin
    let start = Float.max now t.free_at in
    let finish = start +. (cost /. t.rate) in
    t.free_at <- finish;
    (start, finish)
  end

let reserve_from t ~start ~cost =
  if t.rate = infinity then start
  else begin
    let finish = start +. (cost /. t.rate) in
    t.free_at <- Float.max t.free_at finish;
    finish
  end

let release_until t time = if t.free_at > time then t.free_at <- time
