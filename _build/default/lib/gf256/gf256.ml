type t = int

let zero = 0
let one = 1
let field_size = 256
let poly = 0x11b (* x^8 + x^4 + x^3 + x + 1 *)

let is_valid x = x >= 0 && x < field_size

(* Build log/antilog tables once at module initialization. [exp.(i)] =
   generator^i for i in [0,254]; extended to 510 entries so that
   [exp.(log a + log b)] needs no modular reduction. *)
let exp_tbl, log_tbl =
  let exp = Array.make 510 0 in
  let log = Array.make field_size 0 in
  let x = ref 1 in
  for i = 0 to 254 do
    exp.(i) <- !x;
    log.(!x) <- i;
    (* multiply by the generator 3 = x + 1: shift-and-add then reduce *)
    let v = !x lsl 1 lxor !x in
    x := if v land 0x100 <> 0 then v lxor poly else v land 0xff
  done;
  for i = 255 to 509 do
    exp.(i) <- exp.(i - 255)
  done;
  (exp, log)

let add a b = a lxor b
let sub = add

let mul a b =
  if a = 0 || b = 0 then 0 else exp_tbl.(log_tbl.(a) + log_tbl.(b))

let inv a =
  if a = 0 then raise Division_by_zero else exp_tbl.(255 - log_tbl.(a))

let div a b =
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp_tbl.(log_tbl.(a) + 255 - log_tbl.(b))

let pow a k =
  if k < 0 then invalid_arg "Gf256.pow: negative exponent";
  if k = 0 then 1
  else if a = 0 then 0
  else exp_tbl.(log_tbl.(a) * k mod 255)

let exp_table () = Array.sub exp_tbl 0 255
let log_table () = Array.copy log_tbl

let mul_bytes c v =
  let n = Bytes.length v in
  let out = Bytes.create n in
  if c = 0 then Bytes.fill out 0 n '\000'
  else if c = 1 then Bytes.blit v 0 out 0 n
  else begin
    let lc = log_tbl.(c) in
    for i = 0 to n - 1 do
      let x = Char.code (Bytes.unsafe_get v i) in
      let y = if x = 0 then 0 else exp_tbl.(lc + log_tbl.(x)) in
      Bytes.unsafe_set out i (Char.unsafe_chr y)
    done
  end;
  out

let axpy ~acc ~coeff v =
  let n = Bytes.length v in
  if Bytes.length acc <> n then invalid_arg "Gf256.axpy: length mismatch";
  if coeff <> 0 then
    if coeff = 1 then
      for i = 0 to n - 1 do
        let a = Char.code (Bytes.unsafe_get acc i) in
        let x = Char.code (Bytes.unsafe_get v i) in
        Bytes.unsafe_set acc i (Char.unsafe_chr (a lxor x))
      done
    else begin
      let lc = log_tbl.(coeff) in
      for i = 0 to n - 1 do
        let a = Char.code (Bytes.unsafe_get acc i) in
        let x = Char.code (Bytes.unsafe_get v i) in
        let y = if x = 0 then 0 else exp_tbl.(lc + log_tbl.(x)) in
        Bytes.unsafe_set acc i (Char.unsafe_chr (a lxor y))
      done
    end

let add_bytes a b =
  let n = Bytes.length a in
  if Bytes.length b <> n then invalid_arg "Gf256.add_bytes: length mismatch";
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    let x = Char.code (Bytes.unsafe_get a i) in
    let y = Char.code (Bytes.unsafe_get b i) in
    Bytes.unsafe_set out i (Char.unsafe_chr (x lxor y))
  done;
  out
