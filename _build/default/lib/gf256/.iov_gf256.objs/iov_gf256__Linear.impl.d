lib/gf256/linear.ml: Array Bytes Gf256 List
