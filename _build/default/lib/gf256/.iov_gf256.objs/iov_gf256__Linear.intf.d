lib/gf256/linear.mli: Bytes
