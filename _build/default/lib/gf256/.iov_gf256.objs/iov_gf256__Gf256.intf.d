lib/gf256/gf256.mli: Bytes
