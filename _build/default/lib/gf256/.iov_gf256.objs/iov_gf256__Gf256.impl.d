lib/gf256/gf256.ml: Array Bytes Char
