type verdict =
  | Consume
  | Forward of Iov_msg.Node_id.t list
  | Hold

type ctx = {
  self : Iov_msg.Node_id.t;
  now : unit -> float;
  send : Iov_msg.Message.t -> Iov_msg.Node_id.t -> unit;
  can_send : Iov_msg.Node_id.t -> bool;
  known_hosts : unit -> Iov_msg.Node_id.t list;
  add_known_host : Iov_msg.Node_id.t -> unit;
  upstreams : unit -> Iov_msg.Node_id.t list;
  downstreams : unit -> Iov_msg.Node_id.t list;
  up_throughput : Iov_msg.Node_id.t -> float;
  down_throughput : Iov_msg.Node_id.t -> float;
  measure :
    Iov_msg.Node_id.t -> (bandwidth:float -> latency:float -> unit) -> unit;
  rng : Random.State.t;
  trace : string -> unit;
  set_timer : float -> (unit -> unit) -> unit;
  observer : Iov_msg.Node_id.t option;
}

type t = {
  name : string;
  process : ctx -> Iov_msg.Message.t -> verdict;
  on_ready : ctx -> Iov_msg.Node_id.t -> unit;
  on_tick : ctx -> unit;
  on_start : ctx -> unit;
}

let nop2 _ _ = ()
let nop1 _ = ()

let make ?(on_ready = nop2) ?(on_tick = nop1) ?(on_start = nop1) ~name process
    =
  { name; process; on_ready; on_tick; on_start }

let null = make ~name:"null" (fun _ _ -> Consume)
