type t = { total : float; up : float; down : float }

let check name v = if v <= 0. then invalid_arg ("Bwspec: " ^ name)

let make ?(total = infinity) ?(up = infinity) ?(down = infinity) () =
  check "total" total;
  check "up" up;
  check "down" down;
  { total; up; down }

let unconstrained = make ()
let total_only r = make ~total:r ()
let symmetric r = make ~up:r ~down:r ()
let asymmetric ~up ~down = make ~up ~down ()

let last_mile t = Float.min t.total (Float.min t.up t.down)

let pp fmt t =
  let dim name v =
    if v = infinity then None else Some (Printf.sprintf "%s=%.0fB/s" name v)
  in
  let dims = List.filter_map Fun.id [ dim "total" t.total; dim "up" t.up; dim "down" t.down ] in
  match dims with
  | [] -> Format.pp_print_string fmt "<unconstrained>"
  | _ -> Format.pp_print_string fmt (String.concat "," dims)
