(** Bandwidth-emulation specifications (paper Section 2.2, "Emulation
    of bandwidth availability").

    iOverlay emulates three categories: per-node total bandwidth,
    separate per-node incoming/outgoing bandwidth (asymmetric nodes
    such as DSL), and per-link bandwidth. Values are in bytes/second;
    [infinity] leaves a dimension unconstrained. *)

type t = {
  total : float;  (** total incoming + outgoing budget *)
  up : float;  (** outgoing ("uplink" / last-mile upload) budget *)
  down : float;  (** incoming budget *)
}

val unconstrained : t

val make : ?total:float -> ?up:float -> ?down:float -> unit -> t
(** Missing dimensions default to [infinity].
    @raise Invalid_argument if any value is [<= 0]. *)

val total_only : float -> t
val symmetric : float -> t
(** [symmetric r] caps up and down independently at [r]. *)

val asymmetric : up:float -> down:float -> t

val last_mile : t -> float
(** The effective last-mile bandwidth used for node-stress accounting:
    the minimum finite dimension, or [infinity] when unconstrained. *)

val pp : Format.formatter -> t -> unit
