(** The interface between iOverlay and application-specific algorithms
    (paper Section 2.3).

    An algorithm is a message handler: the engine calls {!t.process}
    for every message (incoming data, control from the observer,
    notifications produced by the engine), and the algorithm reacts —
    possibly calling the engine back through the {!ctx} it was given.
    Everything runs in the (simulated) engine thread, so algorithms
    need no thread-safe data structures.

    The verdict returned for a [data] message drives the switch:
    - [Consume] — the message is processed locally and dropped;
    - [Forward dests] — the engine forwards the message to every
      destination, retrying destinations whose sender buffers are full
      (the paper's remaining-senders mechanism); the incoming link is
      head-of-line blocked until all copies are placed;
    - [Hold] — the algorithm takes ownership and buffers the message,
      to merge or code it with messages from other upstreams later
      (paper's n-to-m mapping support).

    Verdicts on control messages are ignored. *)

type verdict =
  | Consume
  | Forward of Iov_msg.Node_id.t list
  | Hold

(** The engine services an algorithm may invoke. Beyond [send] — the
    only function the paper requires developers to know — the context
    exposes read-only introspection and the measurement utilities the
    engine implements (Section 2.2, "Measurement of QoS metrics"). *)
type ctx = {
  self : Iov_msg.Node_id.t;
  now : unit -> float;
  send : Iov_msg.Message.t -> Iov_msg.Node_id.t -> unit;
      (** Send a message to a peer, creating a persistent connection on
          demand. Never fails from the algorithm's point of view; all
          abnormal outcomes surface later as engine notifications. *)
  can_send : Iov_msg.Node_id.t -> bool;
      (** True when an immediate [send] of a data message would not
          queue behind a full sender buffer — the pacing hint used by
          back-to-back sources. *)
  known_hosts : unit -> Iov_msg.Node_id.t list;
  add_known_host : Iov_msg.Node_id.t -> unit;
  upstreams : unit -> Iov_msg.Node_id.t list;
  downstreams : unit -> Iov_msg.Node_id.t list;
  up_throughput : Iov_msg.Node_id.t -> float;
      (** Measured bytes/second from an upstream (0. if unknown). *)
  down_throughput : Iov_msg.Node_id.t -> float;
  measure : Iov_msg.Node_id.t -> (bandwidth:float -> latency:float -> unit) -> unit;
      (** Asynchronously estimate available bandwidth and latency to
          any overlay node; the callback fires after a probe
          round-trip. *)
  rng : Random.State.t;
  trace : string -> unit;
      (** Emit a [trace] record to the observer's log. *)
  set_timer : float -> (unit -> unit) -> unit;
      (** One-shot timer, in seconds. *)
  observer : Iov_msg.Node_id.t option;
}

type t = {
  name : string;
  process : ctx -> Iov_msg.Message.t -> verdict;
  on_ready : ctx -> Iov_msg.Node_id.t -> unit;
      (** Space became available toward the given downstream. *)
  on_tick : ctx -> unit;
      (** Fired once per engine report period. *)
  on_start : ctx -> unit;
      (** Fired when the node boots (after bootstrap, if any). *)
}

val make :
  ?on_ready:(ctx -> Iov_msg.Node_id.t -> unit) ->
  ?on_tick:(ctx -> unit) ->
  ?on_start:(ctx -> unit) ->
  name:string ->
  (ctx -> Iov_msg.Message.t -> verdict) ->
  t
(** Omitted callbacks default to no-ops. *)

val null : t
(** Consumes everything; the engine's "simple testing algorithm". *)
