lib/core/network.mli: Algorithm Bwspec Iov_dsim Iov_msg Random
