lib/core/cqueue.mli:
