lib/core/algorithm.ml: Iov_msg Random
