lib/core/network.ml: Algorithm Bwspec Bytes Cqueue Float Hashtbl Iov_dsim Iov_msg Iov_stats List Logs Queue Random Stdlib
