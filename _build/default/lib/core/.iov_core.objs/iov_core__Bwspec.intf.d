lib/core/bwspec.mli: Format
