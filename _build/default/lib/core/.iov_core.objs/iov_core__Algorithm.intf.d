lib/core/algorithm.mli: Iov_msg Random
