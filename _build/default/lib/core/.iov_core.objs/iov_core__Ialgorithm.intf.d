lib/core/ialgorithm.mli: Algorithm Iov_msg
