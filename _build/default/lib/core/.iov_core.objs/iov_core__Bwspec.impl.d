lib/core/bwspec.ml: Float Format Fun List Printf String
