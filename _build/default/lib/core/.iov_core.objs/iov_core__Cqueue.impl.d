lib/core/cqueue.ml: Array List
