lib/core/ialgorithm.ml: Algorithm Iov_msg List Random
