(** Basic elements of algorithms — the paper's [iAlgorithm] base class.

    Application-specific algorithms are built on top of a library of
    defaults: a message handler covering the known observer/engine
    types, a [KnownHosts] record (maintained through the context), and
    a probabilistic [disseminate] utility resembling gossip. Concrete
    algorithms handle the types they care about and fall back on
    {!default} for the rest — the paper's [iAlgorithm::process(m)]
    default clause. *)

val default : Algorithm.ctx -> Iov_msg.Message.t -> Algorithm.verdict
(** The default handler: records hosts from [bootReply], accepts
    engine reports, and consumes everything else — including [data],
    so an algorithm that wants traffic to flow must handle [data]
    itself (the only type an algorithm is required to handle). *)

val make :
  ?on_ready:(Algorithm.ctx -> Iov_msg.Node_id.t -> unit) ->
  ?on_tick:(Algorithm.ctx -> unit) ->
  ?on_start:(Algorithm.ctx -> unit) ->
  name:string ->
  (Algorithm.ctx -> Iov_msg.Message.t -> Algorithm.verdict option) ->
  Algorithm.t
(** [make ~name handler] wires [handler] in front of {!default}:
    returning [None] defers to the base class. *)

val disseminate :
  Algorithm.ctx -> ?p:float -> Iov_msg.Message.t -> Iov_msg.Node_id.t list ->
  int
(** [disseminate ctx ~p m hosts] sends a clone of [m] to each host
    independently with probability [p] (default 1.0) — the paper's
    gossip-style utility. Returns the number of copies sent.
    @raise Invalid_argument if [p] is outside [0, 1]. *)

val reply : Algorithm.ctx -> to_:Iov_msg.Message.t -> Iov_msg.Message.t -> unit
(** Send a message back to the origin of [to_]. *)
