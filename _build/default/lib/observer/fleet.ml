module Network = Iov_core.Network
module Sim = Iov_dsim.Sim
module NI = Iov_msg.Node_id

type spec = {
  nid : NI.t;
  bw : Iov_core.Bwspec.t;
  algorithm : Iov_core.Algorithm.t;
}

type t = {
  net : Network.t;
  obs : Observer.t;
  members : NI.t list;
}

let deploy ?(stagger = 0.) ~observer net specs =
  if stagger < 0. then invalid_arg "Fleet.deploy: stagger";
  let ids = List.map (fun s -> s.nid) specs in
  if List.length (List.sort_uniq NI.compare ids) <> List.length ids then
    invalid_arg "Fleet.deploy: duplicate ids";
  List.iteri
    (fun i spec ->
      let start () =
        ignore
          (Network.add_node net ~bw:spec.bw ~observer:(Observer.id observer)
             ~id:spec.nid spec.algorithm)
      in
      if stagger = 0. then start ()
      else
        ignore
          (Sim.schedule (Network.sim net)
             ~delay:(stagger *. float_of_int i)
             start))
    specs;
  { net; obs = observer; members = ids }

let ids t = t.members
let size t = List.length t.members

let alive t =
  List.filter
    (fun nid ->
      match Network.find_node t.net nid with
      | Some n -> Network.is_alive n
      | None -> false)
    t.members

let terminate_all t =
  List.iter (fun nid -> Observer.terminate_node t.obs nid) (alive t)

let collect t =
  List.filter_map
    (fun nid ->
      Option.map (fun st -> (nid, st)) (Network.make_status t.net nid))
    (alive t)
