lib/observer/obs_algorithm.ml: Array Bytes Iov_core Iov_msg List Random Stdlib
