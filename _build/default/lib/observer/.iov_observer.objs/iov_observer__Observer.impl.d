lib/observer/observer.ml: Array Buffer Bytes Fun Iov_core Iov_dsim Iov_msg List Logs Printf Random String
