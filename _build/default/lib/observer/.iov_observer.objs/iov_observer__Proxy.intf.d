lib/observer/proxy.mli: Iov_core Iov_msg
