lib/observer/fleet.mli: Iov_core Iov_msg Observer
