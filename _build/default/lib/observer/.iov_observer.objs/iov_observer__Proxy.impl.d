lib/observer/proxy.ml: Iov_core Iov_dsim Iov_msg Queue
