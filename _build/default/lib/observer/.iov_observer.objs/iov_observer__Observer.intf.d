lib/observer/observer.mli: Iov_core Iov_msg
