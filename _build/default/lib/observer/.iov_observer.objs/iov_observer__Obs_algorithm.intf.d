lib/observer/obs_algorithm.mli: Iov_core Iov_msg
