lib/observer/fleet.ml: Iov_core Iov_dsim Iov_msg List Observer Option
