(** One-command fleet operations — the library equivalent of the
    paper's deployment scripts: "we are able to deploy, run, terminate
    and collect data from all 81 nodes, with one command for each
    operation". *)

type spec = {
  nid : Iov_msg.Node_id.t;
  bw : Iov_core.Bwspec.t;
  algorithm : Iov_core.Algorithm.t;
}

type t

val deploy :
  ?stagger:float ->
  observer:Observer.t ->
  Iov_core.Network.t ->
  spec list ->
  t
(** Starts every node (bootstrapping through the observer),
    [stagger] seconds apart (default 0: all at once).
    @raise Invalid_argument on duplicate ids in the spec. *)

val ids : t -> Iov_msg.Node_id.t list
val size : t -> int

val alive : t -> Iov_msg.Node_id.t list

val terminate_all : t -> unit
(** Observer-issued termination of every fleet node. *)

val collect : t -> (Iov_msg.Node_id.t * Iov_msg.Status.t) list
(** Engine status snapshots of all currently-alive fleet nodes. *)
