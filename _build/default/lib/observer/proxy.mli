(** The observer's proxy (paper Section 2.2, "The observer and its
    proxy").

    The Windows observer of the paper suffered from backlogged
    connection limits and firewalls; status updates from overlay nodes
    are therefore submitted to a UNIX-side proxy which relays them
    "with a single connection to the observer". Nodes address the
    proxy instead of the observer; the proxy forwards everything,
    optionally batching per flush period, and keeps relay statistics.
    With the proxy in place, thousands of virtualized nodes fan into
    one observer connection. *)

type t

val create :
  ?id:Iov_msg.Node_id.t ->
  ?flush_period:float ->
  observer:Iov_msg.Node_id.t ->
  Iov_core.Network.t ->
  t
(** [flush_period = 0.] (default) relays immediately; a positive
    period batches messages and forwards each batch in arrival order
    every period. Default [id] is [0.0.0.2:9998]. *)

val id : t -> Iov_msg.Node_id.t

val relayed : t -> int
(** Messages forwarded to the observer so far. *)

val pending : t -> int
(** Messages waiting for the next flush. *)

val flushes : t -> int
(** Number of batch flushes ("single connection" round trips). *)

val flush_now : t -> unit
