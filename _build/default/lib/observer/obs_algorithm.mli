(** The observer expressed as a plain iOverlay algorithm.

    {!Observer} attaches to the simulator as a privileged endpoint;
    this module implements the same protocol — bootstrap replies,
    status collection, trace logging, periodic polling — as an
    ordinary {!Iov_core.Algorithm.t}, so the monitoring node can run
    on any substrate, including the real-sockets runtime
    ({!Iov_onet.Rnode}), where the paper's observer was itself a
    multi-threaded TCP server. *)

type t

val create : ?boot_subset:int -> ?poll:bool -> unit -> t
(** [boot_subset] (default 8) bounds the initial-hosts handout;
    with [poll] (default true) every engine tick sends a status
    request to each known-alive node. *)

val algorithm : t -> Iov_core.Algorithm.t

val alive : t -> Iov_msg.Node_id.t list
(** Nodes that have bootstrapped here. *)

val latest_status : t -> Iov_msg.Node_id.t -> Iov_msg.Status.t option
val statuses : t -> (Iov_msg.Node_id.t * Iov_msg.Status.t) list

val traces : t -> (Iov_msg.Node_id.t * string) list
(** Most recent first. *)

val trace_count : t -> int
