module Network = Iov_core.Network
module Sim = Iov_dsim.Sim
module NI = Iov_msg.Node_id
module Msg = Iov_msg.Message

type t = {
  net : Network.t;
  proxy_id : NI.t;
  observer : NI.t;
  flush_period : float;
  queue : Msg.t Queue.t;
  mutable relayed : int;
  mutable flushes : int;
}

let id t = t.proxy_id
let relayed t = t.relayed
let pending t = Queue.length t.queue
let flushes t = t.flushes

let forward t m =
  Network.endpoint_send t.net ~from:t.proxy_id m t.observer;
  t.relayed <- t.relayed + 1

let flush_now t =
  if not (Queue.is_empty t.queue) then begin
    t.flushes <- t.flushes + 1;
    while not (Queue.is_empty t.queue) do
      forward t (Queue.pop t.queue)
    done
  end

let create ?id:proxy_id ?(flush_period = 0.) ~observer net =
  let proxy_id =
    match proxy_id with
    | Some i -> i
    | None -> NI.of_string "0.0.0.2:9998"
  in
  if flush_period < 0. then invalid_arg "Proxy.create: flush_period";
  let t =
    {
      net;
      proxy_id;
      observer;
      flush_period;
      queue = Queue.create ();
      relayed = 0;
      flushes = 0;
    }
  in
  let handle m =
    if t.flush_period = 0. then begin
      t.flushes <- t.flushes + 1;
      forward t m
    end
    else Queue.push m t.queue
  in
  Network.register_endpoint net proxy_id handle;
  if t.flush_period > 0. then
    ignore
      (Sim.every (Network.sim net) ~period:t.flush_period (fun () ->
           flush_now t));
  t
