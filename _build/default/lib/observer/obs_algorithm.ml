module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module NI = Iov_msg.Node_id
module Wire = Iov_msg.Wire
module Status = Iov_msg.Status

type t = {
  boot_subset : int;
  poll : bool;
  mutable alive_set : NI.Set.t;
  statuses_tbl : Status.t NI.Tbl.t;
  mutable trace_log : (NI.t * string) list;
}

let create ?(boot_subset = 8) ?(poll = true) () =
  if boot_subset <= 0 then invalid_arg "Obs_algorithm.create: boot_subset";
  {
    boot_subset;
    poll;
    alive_set = NI.Set.empty;
    statuses_tbl = NI.Tbl.create 32;
    trace_log = [];
  }

let alive t = NI.Set.elements t.alive_set
let latest_status t ni = NI.Tbl.find_opt t.statuses_tbl ni

let statuses t =
  NI.Tbl.fold (fun ni st acc -> (ni, st) :: acc) t.statuses_tbl []
  |> List.sort (fun (a, _) (b, _) -> NI.compare a b)

let traces t = t.trace_log
let trace_count t = List.length t.trace_log

let handle_boot t (ctx : Alg.ctx) (m : Msg.t) =
  let booter = m.Msg.origin in
  let candidates = NI.Set.elements (NI.Set.remove booter t.alive_set) in
  (* a random subset of the other alive nodes *)
  let a = Array.of_list candidates in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = Random.State.int ctx.rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  let subset =
    Array.to_list (Array.sub a 0 (Stdlib.min t.boot_subset n))
  in
  t.alive_set <- NI.Set.add booter t.alive_set;
  let w = Wire.W.create () in
  Wire.W.nodes w subset;
  ctx.send
    (Msg.control ~mtype:Mt.Boot_reply ~origin:ctx.self (Wire.W.contents w))
    booter

let handle t (ctx : Alg.ctx) (m : Msg.t) =
  match m.Msg.mtype with
  | Mt.Boot ->
    handle_boot t ctx m;
    Some Alg.Consume
  | Mt.Status ->
    (try
       let st = Status.of_payload m.payload in
       NI.Tbl.replace t.statuses_tbl st.Status.node st
     with Wire.Truncated -> ());
    Some Alg.Consume
  | Mt.Trace ->
    t.trace_log <- (m.origin, Msg.string_payload m) :: t.trace_log;
    Some Alg.Consume
  | Mt.Link_failed ->
    t.alive_set <- NI.Set.remove m.origin t.alive_set;
    Some Alg.Consume
  | _ -> None

let algorithm t =
  Ialg.make ~name:"observer"
    ~on_tick:(fun ctx ->
      if t.poll then
        NI.Set.iter
          (fun ni ->
            ctx.send
              (Msg.control ~mtype:Mt.Request ~origin:ctx.self Bytes.empty)
              ni)
          t.alive_set)
    (handle t)
