(** Aligned plain-text tables for experiment output.

    Every experiment harness prints the rows/series its paper figure or
    table reports; this module does the column alignment. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list ->
  string
(** [render ~header rows] lays out the table with a separator rule
    under the header. Ragged rows are padded with empty cells. The
    default alignment is [Left] for the first column and [Right] for
    the rest. *)

val print : ?align:align list -> header:string list -> string list list ->
  unit
(** [render] followed by [print_string]. *)

val fkb : float -> string
(** Bytes/second rendered as KBps with one decimal, e.g. ["200.3"]. *)

val fmb : float -> string
(** Bytes/second rendered as MBps with one decimal. *)

val f1 : float -> string
(** One decimal place. *)

val f2 : float -> string
(** Two decimal places. *)
