type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let percentile xs p =
  if xs = [] then invalid_arg "Descr.percentile: empty";
  if p < 0. || p > 1. then invalid_arg "Descr.percentile: p";
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let summarize xs =
  if xs = [] then invalid_arg "Descr.summarize: empty";
  let n = List.length xs in
  let fn = float_of_int n in
  let mean = List.fold_left ( +. ) 0. xs /. fn in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. fn
  in
  {
    n;
    mean;
    stddev = sqrt var;
    min = List.fold_left Float.min infinity xs;
    max = List.fold_left Float.max neg_infinity xs;
    median = percentile xs 0.5;
  }

module Cdf = struct
  type t = float array (* sorted samples *)

  let of_list xs =
    if xs = [] then invalid_arg "Cdf.of_list: empty";
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    a

  let eval t x =
    (* count samples <= x by binary search for the upper bound *)
    let n = Array.length t in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.(mid) <= x then lo := mid + 1 else hi := mid
    done;
    float_of_int !lo /. float_of_int n

  let points t =
    let n = Array.length t in
    List.init n (fun i -> (t.(i), float_of_int (i + 1) /. float_of_int n))

  let inverse t q =
    if q <= 0. || q > 1. then invalid_arg "Cdf.inverse: q";
    let n = Array.length t in
    let k = int_of_float (Float.ceil (q *. float_of_int n)) in
    t.(Stdlib.max 0 (Stdlib.min (n - 1) (k - 1)))
end
