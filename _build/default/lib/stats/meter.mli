(** Throughput meters.

    iOverlay measures per-link TCP throughput and reports it
    periodically to the algorithm and the observer. A meter counts
    bytes (and messages) against a virtual clock and reports both a
    windowed rate and a lifetime average. *)

type t

val create : ?window:float -> unit -> t
(** [window] is the sampling window in seconds (default 1.0). *)

val record : t -> now:float -> bytes:int -> unit
(** Accounts [bytes] delivered at time [now]. Messages are counted as
    one per call. *)

val rate : t -> now:float -> float
(** Bytes/second over the trailing window ending at [now]. Implemented
    over fixed window buckets: the reported rate is the byte count of
    the most recent *complete* bucket divided by the window length —
    i.e. the converged value an observer would display. While the
    first bucket is still open, falls back to the running average. *)

val average : t -> now:float -> float
(** Lifetime bytes/second since the first recorded byte. *)

val total_bytes : t -> int
val total_messages : t -> int

val idle_for : t -> now:float -> float
(** Seconds since the last recorded delivery ([infinity] if none
    ever); drives the paper's inactivity-based failure detection. *)

val reset : t -> unit
