type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let ncols =
    List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) (List.length header) rows
  in
  let aligns =
    match align with
    | Some a ->
      List.init ncols (fun i ->
          match List.nth_opt a i with Some x -> x | None -> Right)
    | None -> List.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let normalize r = r @ List.init (ncols - List.length r) (fun _ -> "") in
  let all = List.map normalize (header :: rows) in
  let widths =
    List.init ncols (fun c ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row c)))
          0 all)
  in
  let render_row row =
    let cells =
      List.mapi
        (fun c cell -> pad (List.nth aligns c) (List.nth widths c) cell)
        row
    in
    String.concat "  " cells
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let body = List.map render_row (List.map normalize rows) in
  String.concat "\n" ((render_row (normalize header) :: rule :: body) @ [ "" ])

let print ?align ~header rows = print_string (render ?align ~header rows)

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let fkb x = f1 (x /. 1024.)
let fmb x = f1 (x /. (1024. *. 1024.))
