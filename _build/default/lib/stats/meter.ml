type t = {
  window : float;
  mutable first_at : float;
  mutable last_at : float;
  mutable total_bytes : int;
  mutable total_messages : int;
  mutable bucket_start : float;
  mutable bucket_bytes : int;
  mutable prev_bucket_rate : float;
  mutable have_prev : bool;
}

let create ?(window = 1.0) () =
  if window <= 0. then invalid_arg "Meter.create: window";
  {
    window;
    first_at = nan;
    last_at = nan;
    total_bytes = 0;
    total_messages = 0;
    bucket_start = nan;
    bucket_bytes = 0;
    prev_bucket_rate = 0.;
    have_prev = false;
  }

(* Close every bucket that ended before [now]; empty intervening
   buckets record a zero rate. *)
let roll t ~now =
  if not (Float.is_nan t.bucket_start) then
    while now >= t.bucket_start +. t.window do
      t.prev_bucket_rate <- float_of_int t.bucket_bytes /. t.window;
      t.have_prev <- true;
      t.bucket_bytes <- 0;
      t.bucket_start <- t.bucket_start +. t.window
    done

let record t ~now ~bytes =
  if Float.is_nan t.first_at then begin
    t.first_at <- now;
    t.bucket_start <- now
  end;
  roll t ~now;
  t.last_at <- now;
  t.total_bytes <- t.total_bytes + bytes;
  t.total_messages <- t.total_messages + 1;
  t.bucket_bytes <- t.bucket_bytes + bytes

let average t ~now =
  if Float.is_nan t.first_at then 0.
  else
    let span = now -. t.first_at in
    if span <= 0. then 0. else float_of_int t.total_bytes /. span

let rate t ~now =
  if Float.is_nan t.first_at then 0.
  else begin
    roll t ~now;
    if t.have_prev then t.prev_bucket_rate else average t ~now
  end

let total_bytes t = t.total_bytes
let total_messages t = t.total_messages

let idle_for t ~now = if Float.is_nan t.last_at then infinity else now -. t.last_at

let reset t =
  t.first_at <- nan;
  t.last_at <- nan;
  t.total_bytes <- 0;
  t.total_messages <- 0;
  t.bucket_start <- nan;
  t.bucket_bytes <- 0;
  t.prev_bucket_rate <- 0.;
  t.have_prev <- false
