(** Descriptive statistics and empirical CDFs for experiment reports. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on an empty list. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0, 1], linear interpolation.
    @raise Invalid_argument on empty input or [p] outside [0, 1]. *)

(** Empirical cumulative distribution function. *)
module Cdf : sig
  type t

  val of_list : float list -> t
  (** @raise Invalid_argument on empty input. *)

  val eval : t -> float -> float
  (** [eval t x] = fraction of samples [<= x]. *)

  val points : t -> (float * float) list
  (** The step points [(x, F(x))] in ascending [x]. *)

  val inverse : t -> float -> float
  (** [inverse t q] = smallest sample [x] with [F(x) >= q], for
      [q] in (0, 1]. *)
end
