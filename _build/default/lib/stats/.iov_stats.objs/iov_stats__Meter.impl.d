lib/stats/meter.ml: Float
