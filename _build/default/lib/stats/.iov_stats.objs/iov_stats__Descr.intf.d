lib/stats/descr.mli:
