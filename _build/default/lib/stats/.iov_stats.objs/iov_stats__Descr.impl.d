lib/stats/descr.ml: Array Float List Stdlib
