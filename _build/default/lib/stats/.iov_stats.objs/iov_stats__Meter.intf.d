lib/stats/meter.mli:
