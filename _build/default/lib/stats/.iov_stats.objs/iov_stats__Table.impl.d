lib/stats/table.ml: List Printf Stdlib String
