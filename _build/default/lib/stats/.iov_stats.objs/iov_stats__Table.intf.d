lib/stats/table.mli:
