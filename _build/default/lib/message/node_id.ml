type t = { ip : int32; port : int }

let make ~ip ~port =
  if port < 0 || port > 0xffff then invalid_arg "Node_id.make: port";
  { ip; port }

let ip_string t =
  let b i = Int32.to_int (Int32.logand (Int32.shift_right_logical t.ip i) 0xffl) in
  Printf.sprintf "%d.%d.%d.%d" (b 24) (b 16) (b 8) (b 0)

let to_string t = Printf.sprintf "%s:%d" (ip_string t) t.port

let of_string s =
  let fail () = invalid_arg ("Node_id.of_string: " ^ s) in
  match String.split_on_char ':' s with
  | [ addr; port ] -> (
    match String.split_on_char '.' addr with
    | [ a; b; c; d ] -> (
      try
        let byte x =
          let v = int_of_string x in
          if v < 0 || v > 255 then fail ();
          Int32.of_int v
        in
        let ip =
          Int32.logor
            (Int32.shift_left (byte a) 24)
            (Int32.logor
               (Int32.shift_left (byte b) 16)
               (Int32.logor (Int32.shift_left (byte c) 8) (byte d)))
        in
        make ~ip ~port:(int_of_string port)
      with Failure _ -> fail ())
    | _ -> fail ())
  | _ -> fail ()

let synthetic i =
  if i < 0 then invalid_arg "Node_id.synthetic: negative index";
  let ip =
    Int32.logor 0x0a000000l (Int32.of_int (i land 0xffffff))
  in
  make ~ip ~port:(7000 + (i mod 50000))

let compare a b =
  match Int32.compare a.ip b.ip with 0 -> Int.compare a.port b.port | c -> c

let equal a b = compare a b = 0
let hash t = Hashtbl.hash (t.ip, t.port)
let pp fmt t = Format.pp_print_string fmt (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
