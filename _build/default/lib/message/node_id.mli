(** Overlay node identity.

    Per the paper, "the notion of a node in iOverlay is uniquely
    identified by its IP address and port number". *)

type t = private {
  ip : int32;  (** IPv4 address in network integer form *)
  port : int;  (** 0..65535 *)
}

val make : ip:int32 -> port:int -> t
(** @raise Invalid_argument if the port is out of range. *)

val of_string : string -> t
(** Parses ["a.b.c.d:port"]. @raise Invalid_argument on bad syntax. *)

val to_string : t -> string
(** Renders as ["a.b.c.d:port"]. *)

val ip_string : t -> string

val synthetic : int -> t
(** [synthetic i] deterministically fabricates distinct ids for
    simulated nodes: 10.x.y.z with port 7000+i. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
