(** Little helpers for binary payload encodings (status updates,
    bootstrap replies, protocol messages of the case-study
    algorithms). All integers are big-endian. *)

exception Truncated

module W : sig
  type t

  val create : unit -> t
  val int32 : t -> int -> unit
  val float : t -> float -> unit
  val node : t -> Node_id.t -> unit
  val string : t -> string -> unit
  (** Length-prefixed. *)

  val nodes : t -> Node_id.t list -> unit
  (** Count-prefixed. *)

  val contents : t -> Bytes.t
end

module R : sig
  type t

  val of_bytes : Bytes.t -> t
  val int32 : t -> int
  val float : t -> float
  val node : t -> Node_id.t
  val string : t -> string
  val nodes : t -> Node_id.t list
  val remaining : t -> int
  (** All readers raise {!Truncated} on exhausted input. *)
end
