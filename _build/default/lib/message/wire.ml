exception Truncated

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 64

  let int32 t v =
    Buffer.add_int32_be t (Int32.of_int v)

  let float t v = Buffer.add_int64_be t (Int64.bits_of_float v)

  let node t (id : Node_id.t) =
    Buffer.add_int32_be t id.ip;
    int32 t id.port

  let string t s =
    int32 t (String.length s);
    Buffer.add_string t s

  let nodes t ids =
    int32 t (List.length ids);
    List.iter (node t) ids

  let contents t = Buffer.to_bytes t
end

module R = struct
  type t = { buf : Bytes.t; mutable pos : int }

  let of_bytes buf = { buf; pos = 0 }

  let need t n = if t.pos + n > Bytes.length t.buf then raise Truncated

  let int32 t =
    need t 4;
    let v = Int32.to_int (Bytes.get_int32_be t.buf t.pos) in
    t.pos <- t.pos + 4;
    v

  let float t =
    need t 8;
    let v = Int64.float_of_bits (Bytes.get_int64_be t.buf t.pos) in
    t.pos <- t.pos + 8;
    v

  let node t =
    need t 8;
    let ip = Bytes.get_int32_be t.buf t.pos in
    t.pos <- t.pos + 4;
    let port = int32 t in
    Node_id.make ~ip ~port

  let string t =
    let n = int32 t in
    if n < 0 then raise Truncated;
    need t n;
    let s = Bytes.sub_string t.buf t.pos n in
    t.pos <- t.pos + n;
    s

  let nodes t =
    let n = int32 t in
    if n < 0 then raise Truncated;
    List.init n (fun _ -> node t)

  let remaining t = Bytes.length t.buf - t.pos
end
