lib/message/node_id.mli: Format Hashtbl Map Set
