lib/message/node_id.ml: Format Hashtbl Int Int32 Map Printf Set String
