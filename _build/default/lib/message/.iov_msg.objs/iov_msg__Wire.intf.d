lib/message/wire.mli: Bytes Node_id
