lib/message/message.mli: Bytes Format Mtype Node_id
