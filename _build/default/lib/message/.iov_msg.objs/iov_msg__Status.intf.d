lib/message/status.mli: Bytes Format Node_id
