lib/message/mtype.mli: Format
