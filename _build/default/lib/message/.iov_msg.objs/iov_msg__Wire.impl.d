lib/message/wire.ml: Buffer Bytes Int32 Int64 List Node_id String
