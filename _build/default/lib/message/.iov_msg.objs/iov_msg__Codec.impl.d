lib/message/codec.ml: Bytes Int32 List Message Mtype Node_id
