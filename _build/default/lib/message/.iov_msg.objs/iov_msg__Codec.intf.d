lib/message/codec.mli: Bytes Message
