lib/message/message.ml: Bytes Format Int32 Mtype Node_id
