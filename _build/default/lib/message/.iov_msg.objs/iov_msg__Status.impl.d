lib/message/status.ml: Format List Node_id Wire
