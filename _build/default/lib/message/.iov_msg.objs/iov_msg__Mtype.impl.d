lib/message/mtype.ml: Format Printf
