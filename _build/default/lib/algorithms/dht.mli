(** A Chord-style structured search protocol on iOverlay.

    The paper's opening motivation lists "structured search protocols
    such as Pastry and Chord" among the overlay applications whose
    supporting infrastructure iOverlay eliminates; this module
    demonstrates the claim by implementing a Chord-like distributed
    hash table purely against the algorithm interface: consistent
    hashing on a 2^16 ring, successor/predecessor stabilization,
    finger tables fixed lazily, and greedy key routing.

    All protocol traffic is control-path messages ([Custom] kinds);
    node failures surface through [LinkFailed]/stabilization and heal
    the ring. The implementation favours clarity over Chord's full
    concurrency story — joins should be spaced a stabilization period
    apart, as in the original paper's evaluation. *)

val ring_bits : int
(** 16: identifiers live in [0, 65535]. *)

val ring_id : Iov_msg.Node_id.t -> int
(** The deterministic ring position of a node. *)

val hash_key : string -> int
(** The ring position of a key. *)

val between : int -> int -> int -> bool
(** [between x a b]: does [x] lie in the half-open ring interval
    (a, b]? (With [a = b] the interval is the whole ring.) *)

type t

val create : ?stabilize_period:float -> unit -> t
(** [stabilize_period] (seconds, default 1.0) paces stabilization and
    finger maintenance, via the engine tick. *)

val algorithm : t -> Iov_core.Algorithm.t
(** The node bootstraps from its KnownHosts: with none, it starts a
    fresh ring; otherwise it joins through any known host. *)

val put : t -> Iov_core.Algorithm.ctx -> key:string -> string -> unit
(** Routes the binding to the key's successor. *)

val get :
  t -> Iov_core.Algorithm.ctx -> key:string ->
  (string option -> unit) -> unit
(** Routes a lookup; the callback fires with the value (or [None])
    when the reply returns. *)

(** {1 Inspection} *)

val id_of : t -> int
(** This node's ring id (0 until started). *)

val successor : t -> Iov_msg.Node_id.t option
val predecessor : t -> Iov_msg.Node_id.t option
val stored : t -> (string * string) list
(** Key/value pairs this node is responsible for. *)

val lookups_sent : t -> int
val hops_served : t -> int
(** find-successor steps this node answered or forwarded. *)
