(** Network coding on overlay nodes (paper Section 3.2).

    Messages from multiple incoming streams are coded into one stream
    using linear codes over GF(2^8). A generation consists of one
    packet from each of [k] source streams sharing a generation
    number; a coding node uses the engine's hold mechanism to buffer
    packets until a generation is complete, then emits a single coded
    packet. Receivers that additionally get one of the native streams
    recover everything by Gaussian elimination — node D's [a + b]
    trick of Fig. 8. *)

(** Payload framing for coded applications. A data payload is either a
    native packet of stream [index] (of [k] streams) or a coded packet
    carrying its GF(2^8) coefficient vector. *)
module Frame : sig
  val native : k:int -> index:int -> Bytes.t -> Bytes.t
  val coded : coeffs:int array -> Bytes.t -> Bytes.t

  val parse :
    Bytes.t ->
    [ `Native of int * int * Bytes.t  (** (k, index, data) *)
    | `Coded of int array * Bytes.t ]
    option
  (** [None] on unframed payloads. *)

  val data : Bytes.t -> Bytes.t option
  (** The data portion of any framed payload. *)
end

val split_source :
  ?payload_size:int ->
  app:int ->
  dests:Iov_msg.Node_id.t list ->
  unit ->
  Source.t
(** A back-to-back source that splits its data into [List.length dests]
    native streams (one per destination), framed for coding. Stream
    [i]'s generation [g] packet carries sequence number
    [g * k + i]. *)

(** The coding node: holds one packet per incoming stream per
    generation, emits the linear combination downstream. *)
module Coder : sig
  type t

  val create :
    ?coeffs:int array ->
    k:int ->
    app:int ->
    dests:Iov_msg.Node_id.t list ->
    unit ->
    t
  (** [coeffs] defaults to all ones — the paper's [a + b].
      @raise Invalid_argument if [coeffs] has width other than [k] or
      contains zero (a zero coefficient would lose a stream). *)

  val algorithm : t -> Iov_core.Algorithm.t

  val held : t -> int
  (** Packets currently held awaiting their generation peers. *)

  val emitted : t -> int
  (** Coded packets sent downstream so far. *)
end

(** A receiver that decodes: native packets contribute unit vectors,
    coded packets their coefficient vectors; complete generations are
    recovered and counted. *)
module Decoder_node : sig
  type t

  val create : k:int -> app:int -> unit -> t
  val algorithm : t -> Iov_core.Algorithm.t

  val decoded_generations : t -> int
  val decoded_bytes : t -> int
  (** Recovered source bytes ([k] packets per generation). *)

  val pending : t -> int
  (** Generations started but not yet decodable. *)
end

(** Stream-aware forwarding for helper nodes: native stream [i] goes to
    the configured route for [i]; coded packets go to the coded route.
    Unframed data floods to every configured destination. *)
module Router : sig
  type t

  val create : app:int -> unit -> t
  val algorithm : t -> Iov_core.Algorithm.t
  val route_native : t -> index:int -> Iov_msg.Node_id.t list -> unit
  val route_coded : t -> Iov_msg.Node_id.t list -> unit
end
