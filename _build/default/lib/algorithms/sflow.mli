(** sFlow — service federation in service overlay networks (paper
    Section 3.4).

    A service overlay consists of nodes hosting instances of primitive
    services (typed by small integers). A complex service is specified
    as a {!Req.t}: a directed acyclic graph of service types with a
    designated source and sink. Federation selects one instance per
    requirement edge and deploys an actual data stream through the
    selected services.

    Protocol (paper message vocabulary):
    - [sAssign] (observer): a node becomes an instance of a type and
      disseminates its existence via [sAware] through known hosts;
      service nodes relay awareness to the up/downstream neighbours of
      the new service in the service graph.
    - [sFederate]: carries the requirement; each service applies a
      local selection rule for every outgoing requirement edge and
      forwards the message to the chosen instances until the sink type
      is reached; acknowledgements travel back up and the source then
      deploys the data streams.

    Selection strategies: [`Sflow] measures point-to-point available
    bandwidth to every candidate (the engine's measurement utility)
    and picks the most bandwidth-efficient one; [`Fixed] always picks
    the candidate with the highest advertised (static) capacity;
    [`Random] picks uniformly. *)

(** Service requirements: DAGs of service types. *)
module Req : sig
  type t = {
    edges : (int * int) list;  (** producer type -> consumer type *)
    source : int;
    sink : int;
  }

  val make : edges:(int * int) list -> source:int -> sink:int -> t
  (** Validates shape: every edge endpoint reachable from [source],
      [sink] has no outgoing edge, and the graph is acyclic.
      @raise Invalid_argument otherwise. *)

  val linear : int list -> t
  (** [linear [t1; ...; tn]] is the chain requirement t1 -> ... -> tn.
      @raise Invalid_argument on fewer than two stages. *)

  val consumers : t -> int -> int list
  val types : t -> int list
  val to_payload : t -> Iov_msg.Wire.W.t -> unit
  val of_payload : Iov_msg.Wire.R.t -> t
end

type strategy = [ `Sflow | `Fixed | `Random ]

val strategy_name : strategy -> string

type t

val create :
  strategy:strategy ->
  ?advertised_bw:float ->
  ?aware_fanout:int ->
  ?aware_ttl:int ->
  ?deploy_data:bool ->
  unit ->
  t
(** One instance per overlay node. [advertised_bw] is the static
    capacity announced in [sAware] (used by the [`Fixed] strategy);
    default 100 KBps. Nodes without an assigned service still relay
    [sAware] gossip. [deploy_data] (default true) controls whether a
    completed federation deploys the actual data streams — the
    control-overhead experiments turn it off. *)

val algorithm : t -> Iov_core.Algorithm.t

(** {1 Inspection} *)

val service_type : t -> int option
(** The hosted service type, once assigned. *)

val directory : t -> (int * Iov_msg.Node_id.t list) list
(** Known instances per service type. *)

val selected_children : t -> app:int -> Iov_msg.Node_id.t list
(** Downstream instances selected for a federation session. *)

val sessions_completed : t -> int
(** Federations for which this node (as source) received the full
    acknowledgement chain and deployed data. *)

val federation_failures : t -> int
(** Requirement edges for which no candidate instance was known. *)
