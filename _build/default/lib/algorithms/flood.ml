module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module NI = Iov_msg.Node_id

type route = {
  mutable ups : NI.Set.t;
  mutable downs : NI.t list;
}

type t = {
  routes : (int, route) Hashtbl.t;
  mutable torn_down : int list;
}

let create () = { routes = Hashtbl.create 4; torn_down = [] }

let set_route t ~app ?(upstreams = []) ~downstreams () =
  Hashtbl.replace t.routes app
    { ups = NI.Set.of_list upstreams; downs = downstreams }

let clear_route t ~app = Hashtbl.remove t.routes app

let downstreams t ~app =
  match Hashtbl.find_opt t.routes app with Some r -> r.downs | None -> []

let upstreams t ~app =
  match Hashtbl.find_opt t.routes app with
  | Some r -> NI.Set.elements r.ups
  | None -> []

let apps t = Hashtbl.fold (fun app _ acc -> app :: acc) t.routes []
let broken_sources t = t.torn_down

(* The application's last upstream vanished: clear the entry and let
   the downstreams know their source is broken. *)
let tear_down t (ctx : Alg.ctx) app (r : route) =
  t.torn_down <- app :: t.torn_down;
  Hashtbl.remove t.routes app;
  List.iter
    (fun d ->
      ctx.send (Msg.control ~mtype:Mt.Broken_source ~origin:ctx.self ~app Bytes.empty) d)
    r.downs

let drop_upstream t ctx peer app r =
  if NI.Set.mem peer r.ups then begin
    r.ups <- NI.Set.remove peer r.ups;
    if NI.Set.is_empty r.ups then tear_down t ctx app r
  end

let handle t (ctx : Alg.ctx) (m : Msg.t) =
  match m.mtype with
  | Mt.Data -> (
    match Hashtbl.find_opt t.routes m.app with
    | Some { downs = _ :: _ as downs; _ } -> Some (Alg.Forward downs)
    | Some { downs = []; _ } | None -> Some Alg.Consume)
  | Mt.Broken_source ->
    (match Hashtbl.find_opt t.routes m.app with
    | Some r -> drop_upstream t ctx m.origin m.app r
    | None -> ());
    Some Alg.Consume
  | Mt.Link_failed ->
    (* an engine notification; params = (1, _) marks an outgoing link *)
    let outgoing = match Msg.params m with Some (1, _) -> true | _ -> false in
    let peer = m.origin in
    if outgoing then
      Hashtbl.iter
        (fun _ r -> r.downs <- List.filter (fun d -> not (NI.equal d peer)) r.downs)
        t.routes
    else begin
      let affected =
        Hashtbl.fold
          (fun app r acc ->
            if NI.Set.mem peer r.ups then (app, r) :: acc else acc)
          t.routes []
      in
      List.iter (fun (app, r) -> drop_upstream t ctx peer app r) affected
    end;
    Some Alg.Consume
  | _ -> None

let algorithm t = Ialg.make ~name:"flood" (handle t)
