(** Back-to-back data generation towards a dynamic set of
    destinations, paced per-connection by the engine's back pressure.
    Shared by algorithms that embed a data source (trees, service
    federation). *)

type t

val create : app:int -> ?payload_size:int -> unit -> t
(** Default payload size: the paper's 5 KB. *)

val start : t -> Iov_core.Algorithm.ctx -> unit
val stop : t -> unit
val running : t -> bool

val add_dest : t -> Iov_core.Algorithm.ctx -> Iov_msg.Node_id.t -> unit
(** New destinations begin at sequence 0; generation starts
    immediately if the pump is running. *)

val remove_dest : t -> Iov_msg.Node_id.t -> unit
val dests : t -> Iov_msg.Node_id.t list

val on_ready : t -> Iov_core.Algorithm.ctx -> Iov_msg.Node_id.t -> unit
(** Wire into the algorithm's [on_ready]. *)

val sent : t -> int
