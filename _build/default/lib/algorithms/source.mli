(** Application data sources.

    A source produces the data portion of application-layer messages.
    Two pacing modes mirror the paper's workloads:

    - [`Backtoback] — "sends back-to-back traffic ... as fast as
      possible": fresh messages are generated whenever a destination's
      sender buffer has room, so each connection is paced
      independently by the engine's back pressure and emulated
      bandwidth — the behaviour of a per-connection TCP sender. A slow
      destination lags on its own stream without throttling the
      others; global throttling emerges (with small buffers) from the
      switches' blocking fanout, exactly as in the paper's Fig. 6(b)
      versus Fig. 7(a).
    - [`Rate r] — constant-bit-rate at [r] bytes/second (timer-driven),
      for streaming-like workloads.

    In [`Copy] mode every destination receives the same logical stream
    (sequence numbers 0, 1, 2, ...). In [`Split] mode the stream is
    striped across destinations — destination [i] of [n] receives
    generations [i, i+n, ...] — which is node A's behaviour in the
    network-coding study ("A splits its data into two streams").

    The source answers the observer's [sDeploy] / [sTerminate]
    commands; with [~auto:true] (default) it starts at node start. *)

type t

val create :
  ?auto:bool ->
  ?pacing:[ `Backtoback | `Rate of float ] ->
  ?mode:[ `Copy | `Split ] ->
  ?payload_size:int ->
  ?make_payload:(dest_index:int -> seq:int -> Bytes.t) ->
  app:int ->
  dests:Iov_msg.Node_id.t list ->
  unit ->
  t
(** Defaults: [auto = true], [pacing = `Backtoback], [mode = `Copy],
    [payload_size = 5 * 1024] (the paper's 5 KB messages).
    [make_payload] overrides payload construction (used by the
    network-coding source to frame packets). *)

val algorithm : t -> Iov_core.Algorithm.t

val sent : t -> int
(** Messages generated so far (all destinations). *)

val deployed : t -> bool

val set_dests : t -> Iov_msg.Node_id.t list -> unit
(** Replaces the destination set (e.g. as a tree gains receivers);
    new destinations start from sequence 0 of their stream. *)

val add_dest : t -> Iov_msg.Node_id.t -> unit
val stop : t -> unit
