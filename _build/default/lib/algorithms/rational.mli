(** Load balancing, rationality and self-interests (paper
    Section 3.1).

    "Nodes may not be able to relay messages, accept new child nodes
    in a topology, or give precedence to certain traffic flows, due to
    the lack of incentives. iOverlay naturally supports such
    algorithms that seek to engineer and exchange incentives across
    nodes."

    This algorithm wraps a dissemination relay with a rational policy:
    the node contributes relay bandwidth only up to a budget, earns
    credit from upstream payments piggybacked on traffic, and declines
    join requests (or sheds existing children) once its contribution
    outweighs its earnings by more than a tolerance. Join admission is
    the paper's "elaborate local calculation to determine whether ...
    a new join request should be acknowledged". *)

type policy = {
  relay_budget : float;
      (** bytes/second the node volunteers for free *)
  altruism : float;
      (** extra forwarded-to-received ratio tolerated beyond 1.0;
          e.g. 0.5 accepts forwarding 1.5x what it receives *)
  max_children : int;
}

val default_policy : policy
(** 50 KBps budget, altruism 1.0, at most 4 children. *)

type t

val create : ?policy:policy -> app:int -> unit -> t

val algorithm : t -> Iov_core.Algorithm.t
(** Handles [sQuery] join requests with admission control: accepted
    joiners become children served with data; rejected joiners get a
    [Custom] refusal and must try elsewhere. Data for [app] is relayed
    to accepted children while the rational constraint holds; when
    contribution exceeds tolerance the least-recent child is shed
    (with [BrokenSource]). *)

val children : t -> Iov_msg.Node_id.t list
val accepted : t -> int
val rejected : t -> int
val shed : t -> int
(** Children dropped after admission because contribution ran over
    budget. *)

val refusal_kind : int
(** The [Custom] control type carrying refusals. *)
