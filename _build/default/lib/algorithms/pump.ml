module Alg = Iov_core.Algorithm
module Msg = Iov_msg.Message
module NI = Iov_msg.Node_id

type dest = { dst : NI.t; mutable cursor : int }

type t = {
  app : int;
  payload_size : int;
  mutable dlist : dest list;
  mutable running : bool;
  mutable total : int;
}

let create ~app ?(payload_size = 5 * 1024) () =
  if payload_size <= 0 then invalid_arg "Pump.create: payload_size";
  { app; payload_size; dlist = []; running = false; total = 0 }

let running t = t.running
let sent t = t.total
let dests t = List.map (fun d -> d.dst) t.dlist

let generate_for t (ctx : Alg.ctx) d =
  while t.running && ctx.can_send d.dst do
    let m =
      Msg.data ~origin:ctx.self ~app:t.app ~seq:d.cursor
        (Bytes.make t.payload_size 'x')
    in
    ctx.send m d.dst;
    d.cursor <- d.cursor + 1;
    t.total <- t.total + 1
  done

let start t ctx =
  if not t.running then begin
    t.running <- true;
    List.iter (generate_for t ctx) t.dlist
  end

let stop t = t.running <- false

let add_dest t ctx dst =
  if not (List.exists (fun d -> NI.equal d.dst dst) t.dlist) then begin
    let d = { dst; cursor = 0 } in
    t.dlist <- t.dlist @ [ d ];
    if t.running then generate_for t ctx d
  end

let remove_dest t dst =
  t.dlist <- List.filter (fun d -> not (NI.equal d.dst dst)) t.dlist

let on_ready t ctx peer =
  if t.running then
    match List.find_opt (fun d -> NI.equal d.dst peer) t.dlist with
    | Some d -> generate_for t ctx d
    | None -> ()
