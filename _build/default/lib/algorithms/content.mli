(** Content-based networking over iOverlay (paper Section 3.1).

    "In content-based networks, messages are not addressed to any
    specific node; rather, a node advertises predicates that define
    messages of interest ... Any algorithm in content-based networks
    boils down to one that makes decisions on which nodes should a
    message be forwarded to."

    Events are attribute sets (integer key/value pairs); subscriptions
    are conjunctions of comparisons over attributes. Routers flood
    subscriptions through the router overlay, remembering for each
    subscription the neighbour it arrived from; an event is forwarded
    towards every direction with a matching subscription and delivered
    to matching local subscribers. Duplicate events (reconvergent
    router graphs) are suppressed by a bounded dedup cache. *)

module Event : sig
  type t = (int * int) list
  (** attribute key -> value; keys should be distinct *)

  val to_payload : t -> Bytes.t
  val of_payload : Bytes.t -> t option
  val get : t -> int -> int option
end

module Predicate : sig
  type op = Eq | Ne | Lt | Le | Gt | Ge

  type atom = {
    key : int;
    op : op;
    value : int;
  }

  type t = atom list
  (** conjunction; the empty predicate matches everything *)

  val atom : int -> op -> int -> atom
  val matches : t -> Event.t -> bool
  (** An atom on an absent attribute does not match. *)
end

module Router : sig
  type t

  val create : app:int -> unit -> t

  val algorithm : t -> Iov_core.Algorithm.t

  val add_neighbor : t -> Iov_msg.Node_id.t -> unit
  (** Wires a router-overlay edge (call before the run, or at runtime —
      new neighbours learn existing subscriptions on the next tick). *)

  val subscribe : t -> id:int -> Predicate.t -> unit
  (** Registers a local subscription; it floods through the overlay on
      the next engine tick (or at node start). Subscription ids must
      be globally unique. *)

  val publish_payload : Event.t -> Bytes.t
  (** Payload for a [data] message carrying an event; send it to any
      router of the overlay. *)

  val delivered : t -> int
  (** Events delivered to local subscriptions. *)

  val delivered_events : t -> Event.t list
  (** Most recent first, capped at 128. *)

  val known_subscriptions : t -> int
  (** Routing-table entries (local + remote). *)

  val forwarded : t -> int
end
