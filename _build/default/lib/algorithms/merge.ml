module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module NI = Iov_msg.Node_id
module Wire = Iov_msg.Wire

let combine parts =
  let w = Wire.W.create () in
  Wire.W.int32 w (List.length parts);
  List.iter (fun p -> Wire.W.string w (Bytes.to_string p)) parts;
  Wire.W.contents w

let split payload =
  try
    let r = Wire.R.of_bytes payload in
    let n = Wire.R.int32 r in
    if n < 0 || n > 4096 then None
    else Some (List.init n (fun _ -> Bytes.of_string (Wire.R.string r)))
  with Wire.Truncated -> None

type gen = {
  slots : Bytes.t option array;
  mutable filled : int;
}

type t = {
  k : int;
  app : int;
  dests : NI.t list;
  gens : (int, gen) Hashtbl.t;
  ready : Msg.t Queue.t;
  mutable held : int;
  mutable emitted : int;
}

let create ~k ~app ~dests () =
  if k <= 0 then invalid_arg "Merge.create: k";
  {
    k;
    app;
    dests;
    gens = Hashtbl.create 64;
    ready = Queue.create ();
    held = 0;
    emitted = 0;
  }

let held t = t.held
let emitted t = t.emitted

let flush t (ctx : Alg.ctx) =
  let progress = ref true in
  while (not (Queue.is_empty t.ready)) && !progress do
    if List.for_all ctx.can_send t.dests then begin
      let m = Queue.pop t.ready in
      List.iter (ctx.send m) t.dests;
      t.emitted <- t.emitted + 1
    end
    else progress := false
  done

let handle t (ctx : Alg.ctx) (m : Msg.t) =
  match m.Msg.mtype with
  | Mt.Data when m.app = t.app ->
    let gen_no = m.seq / t.k in
    let index = m.seq mod t.k in
    let g =
      match Hashtbl.find_opt t.gens gen_no with
      | Some g -> g
      | None ->
        let g = { slots = Array.make t.k None; filled = 0 } in
        Hashtbl.add t.gens gen_no g;
        g
    in
    (match g.slots.(index) with
    | None ->
      g.slots.(index) <- Some m.payload;
      g.filled <- g.filled + 1;
      t.held <- t.held + 1
    | Some _ -> ());
    if g.filled = t.k then begin
      let parts =
        Array.to_list
          (Array.map (function Some b -> b | None -> assert false) g.slots)
      in
      Hashtbl.remove t.gens gen_no;
      t.held <- t.held - t.k;
      let out =
        Msg.data ~origin:ctx.self ~app:t.app ~seq:gen_no (combine parts)
      in
      Queue.push out t.ready;
      flush t ctx
    end;
    Some Alg.Hold
  | _ -> None

let algorithm t =
  Ialg.make ~name:"merge" ~on_ready:(fun ctx _ -> flush t ctx) (handle t)
