module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module NI = Iov_msg.Node_id

let refusal_kind = 120

type policy = {
  relay_budget : float;
  altruism : float;
  max_children : int;
}

let default_policy =
  { relay_budget = 50. *. 1024.; altruism = 1.0; max_children = 4 }

type t = {
  policy : policy;
  app : int;
  mutable kids : NI.t list; (* admission order, oldest first *)
  mutable n_accepted : int;
  mutable n_rejected : int;
  mutable n_shed : int;
}

let create ?(policy = default_policy) ~app () =
  if policy.relay_budget < 0. || policy.altruism < 0. then
    invalid_arg "Rational.create: policy";
  if policy.max_children < 0 then invalid_arg "Rational.create: max_children";
  { policy; app; kids = []; n_accepted = 0; n_rejected = 0; n_shed = 0 }

let children t = t.kids
let accepted t = t.n_accepted
let rejected t = t.n_rejected
let shed t = t.n_shed

let forwarded_rate t (ctx : Alg.ctx) =
  List.fold_left (fun acc c -> acc +. ctx.down_throughput c) 0. t.kids

let received_rate (ctx : Alg.ctx) =
  List.fold_left
    (fun acc u -> acc +. ctx.up_throughput u)
    0. (ctx.upstreams ())

(* The local calculation behind admission: would one more child keep
   contribution within budget plus tolerated altruism? The marginal
   cost of a child is (approximately) one more copy of the received
   stream. *)
let admits t ctx =
  List.length t.kids < t.policy.max_children
  &&
  let recv = received_rate ctx in
  let next_contribution = forwarded_rate t ctx +. recv in
  next_contribution
  <= t.policy.relay_budget +. ((1. +. t.policy.altruism) *. recv)

let drop_child t child =
  t.kids <- List.filter (fun c -> not (NI.equal c child)) t.kids

let shed_child t (ctx : Alg.ctx) =
  match t.kids with
  | [] -> ()
  | oldest :: rest ->
    (* newest-admitted children are shed first: earlier commitments
       are honoured longest *)
    let newest = List.fold_left (fun _ c -> c) oldest rest in
    ctx.send
      (Msg.control ~mtype:Mt.Broken_source ~origin:ctx.self ~app:t.app
         Bytes.empty)
      newest;
    drop_child t newest;
    t.n_shed <- t.n_shed + 1

(* Shedding tolerates a 10% margin over the admission threshold:
   measured window rates fluctuate, and an admitted child should not
   be dropped over measurement noise. *)
let enforce t ctx =
  let recv = received_rate ctx in
  if
    t.kids <> []
    && forwarded_rate t ctx
       > 1.1 *. (t.policy.relay_budget +. ((1. +. t.policy.altruism) *. recv))
  then shed_child t ctx

let handle t (ctx : Alg.ctx) (m : Msg.t) =
  match m.Msg.mtype with
  | Mt.Data when m.app = t.app -> (
    match t.kids with
    | [] -> Some Alg.Consume
    | kids -> Some (Alg.Forward kids))
  | Mt.S_query when m.app = t.app ->
    let joiner = m.origin in
    if List.exists (NI.equal joiner) t.kids then
      (* idempotent re-ack *)
      ctx.send
        (Msg.control ~mtype:Mt.S_query_ack ~origin:ctx.self ~app:t.app
           Bytes.empty)
        joiner
    else if admits t ctx then begin
      t.kids <- t.kids @ [ joiner ];
      t.n_accepted <- t.n_accepted + 1;
      ctx.send
        (Msg.control ~mtype:Mt.S_query_ack ~origin:ctx.self ~app:t.app
           Bytes.empty)
        joiner
    end
    else begin
      t.n_rejected <- t.n_rejected + 1;
      ctx.send
        (Msg.with_params ~mtype:(Mt.Custom refusal_kind) ~origin:ctx.self
           ~app:t.app 0 0)
        joiner
    end;
    Some Alg.Consume
  | Mt.Broken_source when m.app = t.app ->
    (* upstream broke: release the children *)
    List.iter
      (fun c ->
        ctx.send
          (Msg.control ~mtype:Mt.Broken_source ~origin:ctx.self ~app:t.app
             Bytes.empty)
          c)
      t.kids;
    t.kids <- [];
    Some Alg.Consume
  | Mt.Link_failed ->
    drop_child t m.origin;
    Some Alg.Consume
  | Mt.S_leave when m.app = t.app ->
    drop_child t m.origin;
    Some Alg.Consume
  | _ -> None

let algorithm t =
  Ialg.make ~name:"rational" ~on_tick:(fun ctx -> enforce t ctx) (handle t)
