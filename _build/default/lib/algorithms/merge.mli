(** Message merging at overlay nodes — the paper's other use of the
    hold mechanism ("we have successfully implemented algorithms that
    perform overlay multicast with merging or network coding").

    A merge node holds one message per upstream stream per generation
    (like the coder) and emits a single combined message whose payload
    is the concatenation of the inputs in stream order, each segment
    length-prefixed. Receivers split the merged payload back into the
    original parts. Useful for aggregation trees: k small upstream
    reports leave as one downstream message, paying one header instead
    of k. *)

val combine : Bytes.t list -> Bytes.t
(** Length-prefixed concatenation. *)

val split : Bytes.t -> Bytes.t list option
(** Inverse of {!combine}; [None] on malformed input. *)

type t

val create : k:int -> app:int -> dests:Iov_msg.Node_id.t list -> unit -> t
(** Merges [k] upstream streams. Generation [g] consists of the
    messages with sequence numbers [g*k .. g*k+k-1], one per stream
    index (the {!Coding.Frame}-free convention: stream index =
    [seq mod k]). *)

val algorithm : t -> Iov_core.Algorithm.t

val held : t -> int
val emitted : t -> int
