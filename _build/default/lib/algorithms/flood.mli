(** Copy-forward multicast — the paper's "simple algorithm that
    identical copies of the messages are sent to all downstream
    nodes".

    Each node instance holds a per-application routing entry: the set
    of upstream nodes it expects traffic from and the downstream nodes
    it copies data to. Data for an application with no entry (or an
    empty downstream set) is consumed locally — the node is a pure
    receiver.

    Failure semantics implement the paper's Domino Effect: when every
    upstream of an application is gone (a [LinkFailed] engine
    notification or a [BrokenSource] from above), the node clears the
    entry and propagates [BrokenSource] to its downstreams. *)

type t

val create : unit -> t

val algorithm : t -> Iov_core.Algorithm.t

val set_route :
  t -> app:int -> ?upstreams:Iov_msg.Node_id.t list ->
  downstreams:Iov_msg.Node_id.t list -> unit -> unit
(** Installs or replaces the routing entry for [app]. *)

val clear_route : t -> app:int -> unit

val downstreams : t -> app:int -> Iov_msg.Node_id.t list
val upstreams : t -> app:int -> Iov_msg.Node_id.t list

val apps : t -> int list
(** Applications with a live entry. *)

val broken_sources : t -> int list
(** Applications torn down by the Domino Effect so far (most recent
    first). *)
