lib/algorithms/flood.ml: Bytes Hashtbl Iov_core Iov_msg List
