lib/algorithms/dht.ml: Array Bytes Char Hashtbl Iov_core Iov_msg List
