lib/algorithms/dht.mli: Iov_core Iov_msg
