lib/algorithms/flood.mli: Iov_core Iov_msg
