lib/algorithms/tree.ml: Array Bytes Hashtbl Iov_core Iov_msg List Random Stdlib
