lib/algorithms/pump.ml: Bytes Iov_core Iov_msg List
