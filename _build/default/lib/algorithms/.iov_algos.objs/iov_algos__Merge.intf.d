lib/algorithms/merge.mli: Bytes Iov_core Iov_msg
