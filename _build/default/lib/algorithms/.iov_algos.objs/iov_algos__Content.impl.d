lib/algorithms/content.ml: Fun Hashtbl Iov_core Iov_msg List Option
