lib/algorithms/source.ml: Bytes Iov_core Iov_msg List
