lib/algorithms/pump.mli: Iov_core Iov_msg
