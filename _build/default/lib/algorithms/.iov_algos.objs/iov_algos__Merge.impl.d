lib/algorithms/merge.ml: Array Bytes Hashtbl Iov_core Iov_msg List Queue
