lib/algorithms/coding.ml: Array Bytes Char Hashtbl Iov_core Iov_gf256 Iov_msg List Queue Source
