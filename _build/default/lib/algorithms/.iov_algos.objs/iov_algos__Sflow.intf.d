lib/algorithms/sflow.mli: Iov_core Iov_msg
