lib/algorithms/content.mli: Bytes Iov_core Iov_msg
