lib/algorithms/source.mli: Bytes Iov_core Iov_msg
