lib/algorithms/tree.mli: Iov_core Iov_msg
