lib/algorithms/rational.mli: Iov_core Iov_msg
