lib/algorithms/sflow.ml: Array Hashtbl Int Iov_core Iov_msg List Pump Random Stdlib
