lib/algorithms/rational.ml: Bytes Iov_core Iov_msg List
