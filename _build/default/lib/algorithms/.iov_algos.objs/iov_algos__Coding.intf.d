lib/algorithms/coding.mli: Bytes Iov_core Iov_msg Source
