module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module NI = Iov_msg.Node_id
module Linear = Iov_gf256.Linear

module Frame = struct
  let native ~k ~index data =
    if k <= 0 || k > 255 then invalid_arg "Frame.native: k";
    if index < 0 || index >= k then invalid_arg "Frame.native: index";
    let out = Bytes.create (3 + Bytes.length data) in
    Bytes.set out 0 '\000';
    Bytes.set out 1 (Char.chr k);
    Bytes.set out 2 (Char.chr index);
    Bytes.blit data 0 out 3 (Bytes.length data);
    out

  let coded ~coeffs data =
    let k = Array.length coeffs in
    if k <= 0 || k > 255 then invalid_arg "Frame.coded: k";
    let out = Bytes.create (2 + k + Bytes.length data) in
    Bytes.set out 0 '\001';
    Bytes.set out 1 (Char.chr k);
    Array.iteri
      (fun i c ->
        if not (Iov_gf256.Gf256.is_valid c) then invalid_arg "Frame.coded: coeff";
        Bytes.set out (2 + i) (Char.chr c))
      coeffs;
    Bytes.blit data 0 out (2 + k) (Bytes.length data);
    out

  let parse payload =
    let len = Bytes.length payload in
    if len < 2 then None
    else
      match Bytes.get payload 0 with
      | '\000' ->
        if len < 3 then None
        else begin
          let k = Char.code (Bytes.get payload 1) in
          let index = Char.code (Bytes.get payload 2) in
          if k = 0 || index >= k then None
          else Some (`Native (k, index, Bytes.sub payload 3 (len - 3)))
        end
      | '\001' ->
        let k = Char.code (Bytes.get payload 1) in
        if k = 0 || len < 2 + k then None
        else begin
          let coeffs =
            Array.init k (fun i -> Char.code (Bytes.get payload (2 + i)))
          in
          Some (`Coded (coeffs, Bytes.sub payload (2 + k) (len - 2 - k)))
        end
      | _ -> None

  let data payload =
    match parse payload with
    | Some (`Native (_, _, d)) | Some (`Coded (_, d)) -> Some d
    | None -> None
end

let split_source ?(payload_size = 5 * 1024) ~app ~dests () =
  let k = List.length dests in
  if k = 0 then invalid_arg "Coding.split_source: no destinations";
  let make_payload ~dest_index ~seq =
    (* distinct per-stream content, so decoding is checkable *)
    let fill = Char.chr (((seq * 31) + dest_index) land 0xff) in
    Frame.native ~k ~index:dest_index (Bytes.make payload_size fill)
  in
  Source.create ~mode:`Split ~payload_size ~make_payload ~app ~dests ()

module Coder = struct
  type gen = {
    mutable slots : Bytes.t option array; (* one per stream *)
    mutable filled : int;
  }

  type t = {
    k : int;
    app : int;
    coeffs : int array;
    dests : NI.t list;
    gens : (int, gen) Hashtbl.t;
    ready : Msg.t Queue.t; (* coded, waiting for sender-buffer room *)
    mutable held : int;
    mutable emitted : int;
  }

  let create ?coeffs ~k ~app ~dests () =
    if k <= 0 then invalid_arg "Coder.create: k";
    let coeffs =
      match coeffs with Some c -> c | None -> Array.make k 1
    in
    if Array.length coeffs <> k then invalid_arg "Coder.create: coeffs width";
    Array.iter
      (fun c ->
        if c = 0 || not (Iov_gf256.Gf256.is_valid c) then
          invalid_arg "Coder.create: coeffs")
      coeffs;
    {
      k;
      app;
      coeffs;
      dests;
      gens = Hashtbl.create 64;
      ready = Queue.create ();
      held = 0;
      emitted = 0;
    }

  let held t = t.held
    [@@inline]

  let emitted t = t.emitted

  let flush t (ctx : Alg.ctx) =
    let progress = ref true in
    while (not (Queue.is_empty t.ready)) && !progress do
      if List.for_all ctx.can_send t.dests then begin
        let m = Queue.pop t.ready in
        List.iter (ctx.send m) t.dests;
        t.emitted <- t.emitted + 1
      end
      else progress := false
    done

  let complete t ctx (ctx_self : NI.t) g gen_no =
    let sources =
      Array.map
        (function Some b -> b | None -> assert false)
        g.slots
    in
    let combined = Linear.encode ~coeffs:t.coeffs sources in
    let payload = Frame.coded ~coeffs:combined.Linear.coeffs combined.Linear.payload in
    let m = Msg.data ~origin:ctx_self ~app:t.app ~seq:gen_no payload in
    Queue.push m t.ready;
    Hashtbl.remove t.gens gen_no;
    t.held <- t.held - t.k;
    flush t ctx

  let handle t (ctx : Alg.ctx) (m : Msg.t) =
    match m.Msg.mtype with
    | Mt.Data when m.app = t.app -> (
      match Frame.parse m.payload with
      | Some (`Native (k, index, data)) when k = t.k ->
        let gen_no = m.seq / t.k in
        let g =
          match Hashtbl.find_opt t.gens gen_no with
          | Some g -> g
          | None ->
            let g = { slots = Array.make t.k None; filled = 0 } in
            Hashtbl.add t.gens gen_no g;
            g
        in
        (match g.slots.(index) with
        | None ->
          g.slots.(index) <- Some data;
          g.filled <- g.filled + 1;
          t.held <- t.held + 1
        | Some _ -> () (* duplicate: drop *));
        if g.filled = t.k then complete t ctx ctx.self g gen_no;
        Some Alg.Hold
      | Some (`Native _ | `Coded _) | None ->
        (* a stream this coder does not code: pass through *)
        Some (Alg.Forward t.dests))
    | _ -> None

  let algorithm t =
    Ialg.make ~name:"coder"
      ~on_ready:(fun ctx _ -> flush t ctx)
      (handle t)
end

module Decoder_node = struct
  (* Generations older than this far behind the newest are abandoned —
     they can no longer become decodable in a lossless run and would
     otherwise leak. *)
  let horizon = 4096

  type t = {
    k : int;
    app : int;
    decoders : (int, Linear.Decoder.t) Hashtbl.t;
    mutable newest : int;
    mutable done_ : int;
    mutable bytes : int;
  }

  let create ~k ~app () =
    if k <= 0 then invalid_arg "Decoder_node.create: k";
    { k; app; decoders = Hashtbl.create 64; newest = 0; done_ = 0; bytes = 0 }

  let decoded_generations t = t.done_
  let decoded_bytes t = t.bytes
  let pending t = Hashtbl.length t.decoders

  let prune t =
    if Hashtbl.length t.decoders > horizon then begin
      let cutoff = t.newest - horizon in
      let stale =
        Hashtbl.fold
          (fun g _ acc -> if g < cutoff then g :: acc else acc)
          t.decoders []
      in
      List.iter (Hashtbl.remove t.decoders) stale
    end

  let add_piece t gen_no piece =
    let d =
      match Hashtbl.find_opt t.decoders gen_no with
      | Some d -> d
      | None ->
        let d = Linear.Decoder.create ~k:t.k in
        Hashtbl.add t.decoders gen_no d;
        d
    in
    ignore (Linear.Decoder.add d piece);
    if Linear.Decoder.complete d then begin
      (match Linear.Decoder.get d with
      | Some packets ->
        t.done_ <- t.done_ + 1;
        Array.iter (fun p -> t.bytes <- t.bytes + Bytes.length p) packets
      | None -> ());
      Hashtbl.remove t.decoders gen_no
    end;
    if gen_no > t.newest then t.newest <- gen_no;
    prune t

  let handle t (_ctx : Alg.ctx) (m : Msg.t) =
    match m.Msg.mtype with
    | Mt.Data when m.app = t.app -> (
      (match Frame.parse m.payload with
      | Some (`Native (k, index, data)) when k = t.k ->
        let coeffs = Array.make t.k 0 in
        coeffs.(index) <- 1;
        add_piece t (m.seq / t.k) { Linear.coeffs; payload = data }
      | Some (`Coded (coeffs, data)) when Array.length coeffs = t.k ->
        add_piece t m.seq { Linear.coeffs; payload = data }
      | Some (`Native _ | `Coded _) | None -> ());
      Some Alg.Consume)
    | _ -> None

  let algorithm t = Ialg.make ~name:"decoder" (handle t)
end

module Router = struct
  type t = {
    app : int;
    native : (int, NI.t list) Hashtbl.t;
    mutable coded : NI.t list;
  }

  let create ~app () = { app; native = Hashtbl.create 4; coded = [] }
  let route_native t ~index dests = Hashtbl.replace t.native index dests
  let route_coded t dests = t.coded <- dests

  let all_dests t =
    let set =
      Hashtbl.fold
        (fun _ ds acc -> List.fold_left (fun s d -> NI.Set.add d s) acc ds)
        t.native
        (NI.Set.of_list t.coded)
    in
    NI.Set.elements set

  let handle t (_ctx : Alg.ctx) (m : Msg.t) =
    match m.Msg.mtype with
    | Mt.Data when m.app = t.app -> (
      match Frame.parse m.payload with
      | Some (`Native (_, index, _)) -> (
        match Hashtbl.find_opt t.native index with
        | Some [] | None -> Some Alg.Consume
        | Some dests -> Some (Alg.Forward dests))
      | Some (`Coded _) -> (
        match t.coded with
        | [] -> Some Alg.Consume
        | dests -> Some (Alg.Forward dests))
      | None -> (
        match all_dests t with
        | [] -> Some Alg.Consume
        | dests -> Some (Alg.Forward dests)))
    | _ -> None

  let algorithm t = Ialg.make ~name:"coding-router" (handle t)
end
