module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module NI = Iov_msg.Node_id

type dest = {
  dst : NI.t;
  index : int;
  mutable cursor : int; (* next sequence number of this stream *)
}

type t = {
  app : int;
  payload_size : int;
  pacing : [ `Backtoback | `Rate of float ];
  mode : [ `Copy | `Split ];
  auto : bool;
  make_payload : dest_index:int -> seq:int -> Bytes.t;
  mutable dests : dest list;
  mutable running : bool;
  mutable total_sent : int;
  mutable timer_armed : bool;
}

let default_payload size ~dest_index:_ ~seq:_ = Bytes.make size 'x'

let create ?(auto = true) ?(pacing = `Backtoback) ?(mode = `Copy)
    ?(payload_size = 5 * 1024) ?make_payload ~app ~dests () =
  if payload_size <= 0 then invalid_arg "Source.create: payload_size";
  let make_payload =
    match make_payload with
    | Some f -> f
    | None -> default_payload payload_size
  in
  {
    app;
    payload_size;
    pacing;
    mode;
    auto;
    make_payload;
    dests = List.mapi (fun index dst -> { dst; index; cursor = 0 }) dests;
    running = false;
    total_sent = 0;
    timer_armed = false;
  }

let sent t = t.total_sent
let deployed t = t.running

let set_dests t dests =
  t.dests <- List.mapi (fun index dst -> { dst; index; cursor = 0 }) dests

let add_dest t dst =
  if not (List.exists (fun d -> NI.equal d.dst dst) t.dests) then
    t.dests <- t.dests @ [ { dst; index = List.length t.dests; cursor = 0 } ]

let stop t = t.running <- false

(* The sequence number of destination [d]'s next message. In copy mode
   every stream shares numbering; in split mode destination [i] of [n]
   carries generations i, i+n, i+2n, ... *)
let next_seq t d =
  match t.mode with
  | `Copy -> d.cursor
  | `Split -> d.index + (d.cursor * List.length t.dests)

let emit t (ctx : Alg.ctx) d =
  let seq = next_seq t d in
  let payload = t.make_payload ~dest_index:d.index ~seq in
  let m = Msg.data ~origin:ctx.self ~app:t.app ~seq payload in
  ctx.send m d.dst;
  d.cursor <- d.cursor + 1;
  t.total_sent <- t.total_sent + 1

(* Back-to-back: each connection runs as fast as its sender buffer
   drains, independent of the other destinations. *)
let generate_for t (ctx : Alg.ctx) d =
  if t.running then
    while ctx.can_send d.dst && t.running do
      emit t ctx d
    done

let generate_all t ctx = List.iter (generate_for t ctx) t.dests

let rec arm_timer t (ctx : Alg.ctx) rate =
  if not t.timer_armed then begin
    t.timer_armed <- true;
    let interval = float_of_int t.payload_size /. rate in
    ctx.set_timer interval (fun () ->
        t.timer_armed <- false;
        if t.running then begin
          (match t.mode with
          | `Copy -> List.iter (fun d -> emit t ctx d) t.dests
          | `Split -> (
            (* one generation per interval, to the next stripe *)
            match t.dests with
            | [] -> ()
            | dests ->
              let d =
                List.fold_left
                  (fun acc d -> if d.cursor < acc.cursor then d else acc)
                  (List.hd dests) dests
              in
              emit t ctx d));
          arm_timer t ctx rate
        end)
  end

let start t ctx =
  if not t.running then begin
    t.running <- true;
    match t.pacing with
    | `Backtoback -> generate_all t ctx
    | `Rate r -> arm_timer t ctx r
  end

let handle t (ctx : Alg.ctx) (m : Msg.t) =
  match m.Msg.mtype with
  | Mt.S_deploy when m.app = t.app ->
    start t ctx;
    Some Alg.Consume
  | Mt.S_terminate when m.app = t.app ->
    t.running <- false;
    Some Alg.Consume
  | _ -> None

let algorithm t =
  Ialg.make ~name:"source"
    ~on_start:(fun ctx -> if t.auto then start t ctx)
    ~on_ready:(fun ctx peer ->
      match t.pacing with
      | `Backtoback -> (
        match List.find_opt (fun d -> NI.equal d.dst peer) t.dests with
        | Some d -> generate_for t ctx d
        | None -> ())
      | `Rate _ -> ())
    (handle t)
