module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module NI = Iov_msg.Node_id
module Wire = Iov_msg.Wire

let ring_bits = 16
let ring_size = 1 lsl ring_bits

(* protocol message kinds *)
let k_find = 130
let k_found = 131
let k_get_pred = 132
let k_pred_is = 133
let k_notify = 134
let k_put = 135
let k_get = 136
let k_got = 137

(* FNV-1a (63-bit arithmetic), folded onto the ring *)
let fnv bytes =
  let h = ref 0x0bf29ce484222325 in
  Bytes.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    bytes;
  let h = !h land max_int in
  (h lxor (h lsr 32) lxor (h lsr 16)) land (ring_size - 1)

let ring_id ni = fnv (Bytes.of_string (NI.to_string ni))
let hash_key key = fnv (Bytes.of_string key)

(* (a, b] on the ring; a = b denotes the full circle *)
let between x a b =
  if a = b then true
  else if a < b then a < x && x <= b
  else x > a || x <= b

type pending =
  | Find_cb of (NI.t -> unit)
  | Get_cb of (string option -> unit)

type t = {
  stabilize_period : float;
  mutable self_id : int;
  mutable succ : NI.t option; (* None until started; Some self when alone *)
  mutable pred : NI.t option;
  fingers : NI.t option array;
  mutable next_finger : int;
  store : (string, string) Hashtbl.t;
  pending_tbl : (int, pending) Hashtbl.t;
  mutable req_counter : int;
  mutable lookups : int;
  mutable hops : int;
  mutable started : bool;
}

let create ?(stabilize_period = 1.0) () =
  if stabilize_period <= 0. then invalid_arg "Dht.create: stabilize_period";
  {
    stabilize_period;
    self_id = 0;
    succ = None;
    pred = None;
    fingers = Array.make ring_bits None;
    next_finger = 0;
    store = Hashtbl.create 16;
    pending_tbl = Hashtbl.create 8;
    req_counter = 0;
    lookups = 0;
    hops = 0;
    started = false;
  }

let id_of t = t.self_id
let successor t = t.succ
let predecessor t = t.pred
let stored t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.store []
let lookups_sent t = t.lookups
let hops_served t = t.hops

let fresh_req t cb =
  t.req_counter <- t.req_counter + 1;
  Hashtbl.replace t.pending_tbl t.req_counter cb;
  t.req_counter

let send_kind (ctx : Alg.ctx) kind payload dst =
  ctx.send (Msg.control ~mtype:(Mt.Custom kind) ~origin:ctx.self payload) dst

(* the finger (or successor) with the largest ring id in (self, target) *)
let closest_preceding t (ctx : Alg.ctx) target =
  let best = ref None in
  let consider ni =
    if not (NI.equal ni ctx.self) then begin
      let nid = ring_id ni in
      if between nid t.self_id target && target <> nid then
        match !best with
        | Some (_, bid) when between nid t.self_id bid || bid = nid -> ()
        | Some _ | None -> best := Some (ni, nid)
    end
  in
  Array.iter (function Some ni -> consider ni | None -> ()) t.fingers;
  (match t.succ with Some s -> consider s | None -> ());
  match !best with
  | Some (ni, _) -> Some ni
  | None -> t.succ

(* Answer or forward a find-successor query for [target]; the reply
   (kind [k_found], carrying [req]) goes straight to [reply_to]. *)
let rec route_find t (ctx : Alg.ctx) ~target ~req ~reply_to =
  t.hops <- t.hops + 1;
  match t.succ with
  | None -> ()
  | Some succ ->
    let succ_id = ring_id succ in
    if NI.equal succ ctx.self || between target t.self_id succ_id then begin
      let w = Wire.W.create () in
      Wire.W.int32 w req;
      Wire.W.node w succ;
      send_kind ctx k_found (Wire.W.contents w) reply_to
    end
    else begin
      match closest_preceding t ctx target with
      | Some next when not (NI.equal next ctx.self) ->
        let w = Wire.W.create () in
        Wire.W.int32 w target;
        Wire.W.int32 w req;
        Wire.W.node w reply_to;
        send_kind ctx k_find (Wire.W.contents w) next
      | Some _ | None ->
        (* degenerate: answer with our successor *)
        let w = Wire.W.create () in
        Wire.W.int32 w req;
        Wire.W.node w succ;
        send_kind ctx k_found (Wire.W.contents w) reply_to
    end

and find_successor t (ctx : Alg.ctx) target cb =
  t.lookups <- t.lookups + 1;
  let req = fresh_req t (Find_cb cb) in
  route_find t ctx ~target ~req ~reply_to:ctx.self

(* am I responsible for [h]? *)
let responsible t h =
  match t.pred with
  | None -> true (* alone, or predecessor unknown: accept *)
  | Some p -> between h (ring_id p) t.self_id

(* hand off any keys a (new) predecessor now owns *)
let shed_keys t (ctx : Alg.ctx) =
  match t.pred with
  | None -> ()
  | Some p ->
    let moving =
      Hashtbl.fold
        (fun k v acc -> if responsible t (hash_key k) then acc else (k, v) :: acc)
        t.store []
    in
    List.iter
      (fun (k, v) ->
        Hashtbl.remove t.store k;
        let w = Wire.W.create () in
        Wire.W.string w k;
        Wire.W.string w v;
        send_kind ctx k_put (Wire.W.contents w) p)
      moving

(* route a put/get one step: store/answer locally when responsible,
   otherwise forward toward the key *)
let route_put t ctx ~key ~value =
  let h = hash_key key in
  if responsible t h then Hashtbl.replace t.store key value
  else begin
    let next =
      match closest_preceding t ctx h with
      | Some n when not (NI.equal n ctx.self) -> Some n
      | Some _ | None -> t.succ
    in
    match next with
    | Some n when not (NI.equal n ctx.self) ->
      let w = Wire.W.create () in
      Wire.W.string w key;
      Wire.W.string w value;
      send_kind ctx k_put (Wire.W.contents w) n
    | Some _ | None -> Hashtbl.replace t.store key value
  end

let route_get t ctx ~key ~req ~reply_to =
  let h = hash_key key in
  if responsible t h then begin
    let w = Wire.W.create () in
    Wire.W.int32 w req;
    (match Hashtbl.find_opt t.store key with
    | Some v ->
      Wire.W.int32 w 1;
      Wire.W.string w v
    | None -> Wire.W.int32 w 0);
    send_kind ctx k_got (Wire.W.contents w) reply_to
  end
  else begin
    let next =
      match closest_preceding t ctx h with
      | Some n when not (NI.equal n ctx.self) -> Some n
      | Some _ | None -> t.succ
    in
    match next with
    | Some n when not (NI.equal n ctx.self) ->
      let w = Wire.W.create () in
      Wire.W.string w key;
      Wire.W.int32 w req;
      Wire.W.node w reply_to;
      send_kind ctx k_get (Wire.W.contents w) n
    | Some _ | None ->
      let w = Wire.W.create () in
      Wire.W.int32 w req;
      Wire.W.int32 w 0;
      send_kind ctx k_got (Wire.W.contents w) reply_to
  end

let put t ctx ~key value = route_put t ctx ~key ~value

let get t ctx ~key cb =
  let req = fresh_req t (Get_cb cb) in
  route_get t ctx ~key ~req ~reply_to:ctx.Alg.self

(* ------------------------------------------------------------------ *)
(* Ring maintenance                                                    *)

(* join: ask any existing member for our successor. Retried from the
   tick while we still stand alone — the bootstrap reply carrying the
   first known hosts arrives after node start. *)
let try_join t (ctx : Alg.ctx) =
  let standalone =
    match t.succ with Some s -> NI.equal s ctx.self | None -> true
  in
  if standalone && t.pred = None then
    match ctx.known_hosts () with
    | [] -> ()
    | anchor :: _ ->
      t.lookups <- t.lookups + 1;
      let req =
        fresh_req t
          (Find_cb
             (fun s -> if not (NI.equal s ctx.self) then t.succ <- Some s))
      in
      let w = Wire.W.create () in
      Wire.W.int32 w t.self_id;
      Wire.W.int32 w req;
      Wire.W.node w ctx.self;
      send_kind ctx k_find (Wire.W.contents w) anchor

let start t (ctx : Alg.ctx) =
  if not t.started then begin
    t.started <- true;
    t.self_id <- ring_id ctx.self;
    t.succ <- Some ctx.self;
    try_join t ctx
  end

let stabilize t (ctx : Alg.ctx) =
  match t.succ with
  | Some succ when not (NI.equal succ ctx.self) ->
    send_kind ctx k_get_pred Bytes.empty succ
  | Some _ | None -> (
    (* alone: adopt the predecessor as successor if one appeared *)
    match t.pred with
    | Some p when not (NI.equal p ctx.self) -> t.succ <- Some p
    | Some _ | None -> ())

let notify_succ t (ctx : Alg.ctx) =
  match t.succ with
  | Some succ when not (NI.equal succ ctx.self) ->
    send_kind ctx k_notify Bytes.empty succ
  | Some _ | None -> ()

let fix_one_finger t (ctx : Alg.ctx) =
  let k = t.next_finger in
  t.next_finger <- (t.next_finger + 1) mod ring_bits;
  let target = (t.self_id + (1 lsl k)) land (ring_size - 1) in
  find_successor t ctx target (fun s -> t.fingers.(k) <- Some s)

(* ------------------------------------------------------------------ *)

let handle t (ctx : Alg.ctx) (m : Msg.t) =
  let r () = Wire.R.of_bytes m.Msg.payload in
  match m.Msg.mtype with
  | Mt.Boot_reply ->
    (* record the hosts (base-class behaviour), then join through one *)
    ignore (Ialg.default ctx m);
    if t.started then try_join t ctx;
    Some Alg.Consume
  | Mt.Custom k when k = k_find -> (
    (try
       let rd = r () in
       let target = Wire.R.int32 rd in
       let req = Wire.R.int32 rd in
       let reply_to = Wire.R.node rd in
       route_find t ctx ~target ~req ~reply_to
     with Wire.Truncated -> ());
    Some Alg.Consume)
  | Mt.Custom k when k = k_found -> (
    (try
       let rd = r () in
       let req = Wire.R.int32 rd in
       let node = Wire.R.node rd in
       ctx.add_known_host node;
       match Hashtbl.find_opt t.pending_tbl req with
       | Some (Find_cb cb) ->
         Hashtbl.remove t.pending_tbl req;
         cb node
       | Some (Get_cb _) | None -> ()
     with Wire.Truncated -> ());
    Some Alg.Consume)
  | Mt.Custom k when k = k_get_pred ->
    (let w = Wire.W.create () in
     (match t.pred with
     | Some p ->
       Wire.W.int32 w 1;
       Wire.W.node w p
     | None -> Wire.W.int32 w 0);
     send_kind ctx k_pred_is (Wire.W.contents w) m.origin);
    Some Alg.Consume
  | Mt.Custom k when k = k_pred_is -> (
    (try
       let rd = r () in
       if Wire.R.int32 rd = 1 then begin
         let x = Wire.R.node rd in
         match t.succ with
         | Some succ
           when (not (NI.equal x ctx.self))
                && between (ring_id x) t.self_id (ring_id succ)
                && not (NI.equal x succ) ->
           t.succ <- Some x
         | Some _ | None -> ()
       end;
       notify_succ t ctx
     with Wire.Truncated -> ());
    Some Alg.Consume)
  | Mt.Custom k when k = k_notify ->
    (let cand = m.origin in
     (match t.pred with
     | None -> t.pred <- Some cand
     | Some p
       when between (ring_id cand) (ring_id p) t.self_id
            && not (NI.equal cand ctx.self) ->
       t.pred <- Some cand
     | Some _ -> ());
     shed_keys t ctx);
    Some Alg.Consume
  | Mt.Custom k when k = k_put -> (
    (try
       let rd = r () in
       let key = Wire.R.string rd in
       let value = Wire.R.string rd in
       route_put t ctx ~key ~value
     with Wire.Truncated -> ());
    Some Alg.Consume)
  | Mt.Custom k when k = k_get -> (
    (try
       let rd = r () in
       let key = Wire.R.string rd in
       let req = Wire.R.int32 rd in
       let reply_to = Wire.R.node rd in
       route_get t ctx ~key ~req ~reply_to
     with Wire.Truncated -> ());
    Some Alg.Consume)
  | Mt.Custom k when k = k_got -> (
    (try
       let rd = r () in
       let req = Wire.R.int32 rd in
       let has = Wire.R.int32 rd in
       let value = if has = 1 then Some (Wire.R.string rd) else None in
       match Hashtbl.find_opt t.pending_tbl req with
       | Some (Get_cb cb) ->
         Hashtbl.remove t.pending_tbl req;
         cb value
       | Some (Find_cb _) | None -> ()
     with Wire.Truncated -> ());
    Some Alg.Consume)
  | Mt.Link_failed ->
    (let peer = m.origin in
     (match t.succ with
     | Some s when NI.equal s peer ->
       (* fall back to a live finger, else stand alone *)
       let alt =
         Array.fold_left
           (fun acc f ->
             match (acc, f) with
             | None, Some ni when not (NI.equal ni peer) -> Some ni
             | _ -> acc)
           None t.fingers
       in
       t.succ <- (match alt with Some a -> Some a | None -> Some ctx.self)
     | Some _ | None -> ());
     (match t.pred with
     | Some p when NI.equal p peer -> t.pred <- None
     | Some _ | None -> ());
     Array.iteri
       (fun i f ->
         match f with
         | Some ni when NI.equal ni peer -> t.fingers.(i) <- None
         | Some _ | None -> ())
       t.fingers);
    Some Alg.Consume
  | _ -> None

let algorithm t =
  Ialg.make ~name:"dht"
    ~on_start:(fun ctx -> start t ctx)
    ~on_tick:(fun ctx ->
      if t.started then begin
        try_join t ctx;
        stabilize t ctx;
        fix_one_finger t ctx
      end)
    (handle t)
