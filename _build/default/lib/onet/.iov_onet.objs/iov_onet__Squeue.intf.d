lib/onet/squeue.mli:
