lib/onet/rnode.mli: Iov_core Iov_msg
