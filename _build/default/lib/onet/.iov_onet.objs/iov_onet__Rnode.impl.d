lib/onet/rnode.ml: Atomic Bytes Fun Hashtbl Iov_core Iov_msg List Logs Mutex Printf Queue Random Squeue Thread Unix
