lib/onet/squeue.ml: Condition Fun Iov_core Mutex
