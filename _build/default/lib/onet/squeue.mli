(** The thread-safe circular queue of the real-sockets runtime — the
    paper's shared buffer between receiver/sender threads and the
    engine thread ("we use a thread-safe circular queue to implement
    the shared buffers between the threads").

    Exactly one reader and one writer thread use each queue, matching
    the paper's design constraint; blocking operations use a
    mutex/condition pair. A queue can be closed: pending elements
    drain, then poppers see [None]. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** Blocks while full; [false] if the queue was closed meanwhile. *)

val try_push : 'a t -> 'a -> bool
(** Non-blocking; [false] when full or closed. *)

val pop : 'a t -> 'a option
(** Blocks while empty; [None] once closed and drained. *)

val try_pop : 'a t -> 'a option
(** Non-blocking; [None] when empty (even if open). *)

val close : 'a t -> unit
(** Idempotent; wakes all blocked threads. *)

val closed : 'a t -> bool
