module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Tree = Iov_algos.Tree
module Observer = Iov_observer.Observer
module Planetlab = Iov_topo.Planetlab
module Descr = Iov_stats.Descr
module NI = Iov_msg.Node_id

type algo_result = {
  strategy : Tree.strategy;
  joined : int;
  throughputs : float list;
  stress_cdf : (float * float) list;
  mean_throughput : float;
  median_stress : float;
}

type result = {
  n : int;
  unicast : algo_result;
  random : algo_result;
  ns_aware : algo_result;
}

let app = 11

(* Build the wide-area overlay, deploy the source, join everyone at
   one-second intervals, let traffic converge, then measure. *)
let run_algo ~n ~seed strategy =
  let pl = Planetlab.generate ~seed ~n () in
  let net = Network.create ~seed ~buffer_capacity:10000 () in
  Network.set_latency_fn net (Planetlab.latency pl);
  let obs = Observer.create ~boot_subset:10 net in
  let nds = Planetlab.nodes pl in
  let source_nd = List.hd nds in
  let trees =
    List.mapi
      (fun i nd ->
        let bw =
          if i = 0 then Bwspec.total_only (100. *. 1024.)
          else nd.Planetlab.bw
        in
        let t =
          Tree.create ~strategy ~last_mile:(Bwspec.last_mile bw) ~app ()
        in
        ignore
          (Network.add_node net ~bw ~observer:(Observer.id obs)
             ~id:nd.Planetlab.nid (Tree.algorithm t));
        (nd.Planetlab.nid, t))
      nds
  in
  let sim = Network.sim net in
  let at time f = ignore (Iov_dsim.Sim.schedule_at sim ~time f) in
  at 1.0 (fun () -> Observer.deploy_source obs source_nd.Planetlab.nid ~app);
  List.iteri
    (fun i (nid, _) ->
      if not (NI.equal nid source_nd.Planetlab.nid) then
        at (2.0 +. float_of_int i) (fun () -> Observer.join obs nid ~app))
    trees;
  let join_horizon = 2.0 +. float_of_int n +. 20. in
  Network.run net ~until:join_horizon;
  (* measure end-to-end throughput as delivered bytes over a 30 s
     window, immune to per-window quantization at low rates *)
  let baseline =
    List.map (fun (nid, _) -> (nid, Network.app_bytes net nid ~app)) trees
  in
  let window = 30. in
  Network.run net ~until:(join_horizon +. window);

  let receivers =
    List.filter
      (fun (nid, t) ->
        Tree.in_session t && not (NI.equal nid source_nd.Planetlab.nid))
      trees
  in
  let throughputs =
    List.map
      (fun (nid, _) ->
        let before = List.assoc nid baseline in
        float_of_int (Network.app_bytes net nid ~app - before) /. window)
      receivers
    |> List.sort (fun a b -> Float.compare b a)
  in
  let stresses =
    List.filter_map
      (fun (_, t) -> if Tree.in_session t then Some (Tree.stress t) else None)
      trees
  in
  let cdf = Descr.Cdf.of_list stresses in
  {
    strategy;
    joined = List.length receivers;
    throughputs;
    stress_cdf = Descr.Cdf.points cdf;
    mean_throughput =
      (if throughputs = [] then 0.
       else (Descr.summarize throughputs).Descr.mean);
    median_stress =
      (if stresses = [] then 0. else Descr.percentile stresses 0.5);
  }

let print_algo a =
  Printf.printf
    "-- %s: %d receivers joined, mean throughput %.1f KBps, median stress %.2f --\n"
    (Tree.strategy_name a.strategy)
    a.joined
    (a.mean_throughput /. 1024.)
    a.median_stress;
  let deciles =
    List.filteri
      (fun i _ -> i mod (Stdlib.max 1 (List.length a.throughputs / 10)) = 0)
      a.throughputs
  in
  Printf.printf "   throughput deciles (KBps):";
  List.iter (fun x -> Printf.printf " %.0f" (x /. 1024.)) deciles;
  print_newline ();
  Printf.printf "   stress CDF:";
  let step = Stdlib.max 1 (List.length a.stress_cdf / 8) in
  List.iteri
    (fun i (x, fr) ->
      if i mod step = 0 then Printf.printf " (%.1f, %.2f)" x fr)
    a.stress_cdf;
  print_newline ()

let run ?(quiet = false) ?(n = 81) ?(seed = 11) () =
  let unicast = run_algo ~n ~seed Tree.Unicast in
  let random = run_algo ~n ~seed Tree.Random in
  let ns_aware = run_algo ~n ~seed Tree.Ns_aware in
  if not quiet then begin
    Printf.printf
      "== Fig. 11: tree construction on %d wide-area nodes (caps U(50,200) KBps, source 100) ==\n"
      n;
    List.iter print_algo [ unicast; random; ns_aware ];
    print_newline ()
  end;
  { n; unicast; random; ns_aware }
