(** Fig. 8 — the network-coding case study.

    Node A (400 KBps total) splits its data into streams [a] (via B)
    and [b] (via C); D's uplink is capped at 200 KBps. Without coding,
    D forwards both native streams to E and the receivers F and G each
    reach only 300 KBps. With GF(2^8) coding at D ([a + b]), E relays
    the coded stream and F, G decode to the full 400 KBps — at the
    price of E becoming a helper. *)

type node_rates = {
  d : float;
  e : float;
  f : float;
  g : float;
}

type result = {
  without_coding : node_rates;  (** effective received bytes/second *)
  with_coding : node_rates;
  decoded_f : int;  (** generations decoded at F (coding run) *)
  decoded_g : int;
  link_rates_coding : ((string * string) * float) list;
}

val run : ?quiet:bool -> unit -> result
