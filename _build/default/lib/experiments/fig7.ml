module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Topo = Iov_topo.Topo

type result = {
  a : ((string * string) * float) list;
  b : ((string * string) * float) list;
}

let print_rates title rates =
  Printf.printf "%s\n" title;
  List.iter
    (fun ((a, b), r) ->
      Printf.printf "  %s -> %s : %.1f KBps\n" a b (Harness.to_kbps r))
    rates;
  print_newline ()

let run ?(quiet = false) () =
  let topo = Topo.fig6 () in
  let f = Harness.build_flood ~buffer_capacity:10000 ~topo ~source:"A" () in
  let net = f.Harness.net in

  (* same emulation as Fig. 6(b) — but with data-dissemination-sized
     buffers, set before traffic converges *)
  Network.set_node_bandwidth net (Topo.node topo "D")
    (Bwspec.make ~up:(Harness.kbps 30.) ());
  Network.run net ~until:30.;
  let pa = Harness.edge_rates f in

  (* additionally cap the EF link at 15 KBps *)
  Network.set_link_bandwidth net ~src:(Topo.node topo "E")
    ~dst:(Topo.node topo "F") (Harness.kbps 15.);
  Network.run net ~until:60.;
  let pb = Harness.edge_rates f in

  if not quiet then begin
    print_endline "== Fig. 7: bottlenecks with large (10000-msg) buffers ==";
    print_rates "(a) D uplink 30 KBps: only D's downstream links affected" pa;
    print_rates "(b) link EF capped at 15 KBps: EG unaffected" pb
  end;
  { a = pa; b = pb }
