module Network = Iov_core.Network
module Sflow = Iov_algos.Sflow
module Table = Iov_stats.Table

type row = {
  size : int;
  sflow : float;
  fixed : float;
  random : float;
}

type result = { rows : row list }

let default_sizes = [ 5; 10; 15; 20; 25; 30; 35; 40 ]

let requirement = Sflow.Req.linear [ 1; 2; 3; 4 ]

(* Federate [sessions] short-lived services, lightly overlapped (one
   every 10 s, terminated after ~9.5 s); each session's end-to-end
   throughput is sampled at its sink mid-life. Returns the mean. *)
let run_one ~seed ~sessions strategy n =
  let b = Svc.build ~seed ~deploy_data:true ~strategy ~n ~types:4 () in
  let net = b.Svc.net in
  let obs = b.Svc.obs in
  let sim = Network.sim net in
  let warmup = float_of_int n +. 10. in
  let rates = ref [] in
  ignore
    (Iov_dsim.Sim.schedule_at sim ~time:warmup (fun () ->
         let sources = Array.of_list (Svc.instances_of b 1) in
         if Array.length sources > 0 then
           for i = 0 to sessions - 1 do
             let app = 3000 + i in
             let source = sources.(i mod Array.length sources) in
             let base = 10. *. float_of_int i in
             ignore
               (Iov_dsim.Sim.schedule sim ~delay:base (fun () ->
                    Svc.federate b ~app ~source requirement));
             ignore
               (Iov_dsim.Sim.schedule sim ~delay:(base +. 8.) (fun () ->
                    match Svc.sink_of b ~app ~source with
                    | Some sink ->
                      rates := Network.app_rate net sink ~app :: !rates
                    | None -> ()));
             ignore
               (Iov_dsim.Sim.schedule sim ~delay:(base +. 9.5) (fun () ->
                    Iov_observer.Observer.terminate_source obs source ~app))
           done));
  ignore obs;
  Network.run net ~until:(warmup +. (10. *. float_of_int sessions) +. 20.);
  match !rates with
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let run ?(quiet = false) ?(sizes = default_sizes) ?(sessions = 8) ?(seed = 17)
    () =
  let rows =
    List.map
      (fun n ->
        {
          size = n;
          sflow = run_one ~seed ~sessions `Sflow n;
          fixed = run_one ~seed ~sessions `Fixed n;
          random = run_one ~seed ~sessions `Random n;
        })
      sizes
  in
  if not quiet then begin
    Printf.printf
      "== Fig. 19: end-to-end bandwidth of federated services (%d concurrent sessions) ==\n"
      sessions;
    Table.print
      ~header:[ "network size"; "sFlow (Bps)"; "fixed (Bps)"; "random (Bps)" ]
      (List.map
         (fun r ->
           [
             string_of_int r.size;
             Printf.sprintf "%.0f" r.sflow;
             Printf.sprintf "%.0f" r.fixed;
             Printf.sprintf "%.0f" r.random;
           ])
         rows);
    print_newline ()
  end;
  { rows }
