(** Fig. 9 + Table 3 — tree construction on the five-node session.

    S (200 KBps), A (500), B (100), C (200), D (100); the source is
    deployed on S and the receivers join in the order D, A, C, B. For
    each construction algorithm the harness reports the tree edges
    with their converged throughput, and each node's tree degree and
    node stress (Table 3). *)

type node_row = {
  name : string;
  degree : int;
  stress : float;  (** 1/100-KBps units, as in Table 3 *)
  throughput : float;  (** received bytes/second (0 for the source) *)
  parent : string option;
}

type tree_result = {
  strategy : Iov_algos.Tree.strategy;
  rows : node_row list;
  edges : (string * string * float) list;  (** parent, child, KB rate *)
}

type result = {
  unicast : tree_result;
  random : tree_result;
  ns_aware : tree_result;
}

val run_one :
  ?seed:int -> Iov_algos.Tree.strategy -> tree_result
val run : ?quiet:bool -> unit -> result
val print_tree : tree_result -> unit
