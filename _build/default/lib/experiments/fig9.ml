module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Topo = Iov_topo.Topo
module Tree = Iov_algos.Tree
module Observer = Iov_observer.Observer
module Table = Iov_stats.Table
module NI = Iov_msg.Node_id

type node_row = {
  name : string;
  degree : int;
  stress : float;
  throughput : float;
  parent : string option;
}

type tree_result = {
  strategy : Tree.strategy;
  rows : node_row list;
  edges : (string * string * float) list;
}

type result = {
  unicast : tree_result;
  random : tree_result;
  ns_aware : tree_result;
}

let app = 7

let run_one ?(seed = 42) strategy =
  let topo = Topo.fig9 () in
  let net = Network.create ~seed ~buffer_capacity:10000 () in
  let obs = Observer.create ~boot_subset:8 net in
  let node = Topo.node topo in
  let trees =
    List.map
      (fun name ->
        let spec = Topo.spec topo name in
        let t =
          Tree.create ~strategy ~last_mile:(Bwspec.last_mile spec.Topo.bw)
            ~app ()
        in
        ignore
          (Network.add_node net ~bw:spec.Topo.bw ~observer:(Observer.id obs)
             ~id:spec.Topo.nid (Tree.algorithm t));
        (name, t))
      (Topo.names topo)
  in
  let sim = Network.sim net in
  let at time f = ignore (Iov_dsim.Sim.schedule_at sim ~time f) in
  at 1.0 (fun () -> Observer.deploy_source obs (node "S") ~app);
  (* joins in the paper's order: D, A, C, B *)
  List.iteri
    (fun i name ->
      at (3.0 +. (3.0 *. float_of_int i)) (fun () ->
          Observer.join obs (node name) ~app))
    [ "D"; "A"; "C"; "B" ];
  Network.run net ~until:40.;

  let name_of ni = Topo.name_of topo ni in
  let rows =
    List.map
      (fun (name, t) ->
        {
          name;
          degree = Tree.degree t;
          stress = Tree.stress t;
          throughput = Network.app_rate net (node name) ~app;
          parent = Option.map name_of (Tree.parent t);
        })
      trees
  in
  let edges =
    List.concat_map
      (fun (name, t) ->
        List.map
          (fun child ->
            ( name,
              name_of child,
              Network.link_throughput net ~src:(node name) ~dst:child ))
          (Tree.children t))
      trees
  in
  { strategy; rows; edges }

let print_tree r =
  Printf.printf "-- %s tree --\n" (Tree.strategy_name r.strategy);
  List.iter
    (fun (p, c, rate) ->
      Printf.printf "  %s -> %s : %.1f KBps\n" p c (Harness.to_kbps rate))
    r.edges;
  Table.print
    ~header:[ "node"; "degree"; "stress (1/100KBps)"; "recv KBps" ]
    (List.map
       (fun row ->
         [
           row.name;
           string_of_int row.degree;
           Table.f2 row.stress;
           Table.f1 (Harness.to_kbps row.throughput);
         ])
       r.rows);
  print_newline ()

let run ?(quiet = false) () =
  let unicast = run_one Tree.Unicast in
  let random = run_one Tree.Random in
  let ns_aware = run_one Tree.Ns_aware in
  if not quiet then begin
    print_endline
      "== Fig. 9 / Table 3: tree construction, 5-node session (join order D, A, C, B) ==";
    List.iter print_tree [ unicast; random; ns_aware ]
  end;
  { unicast; random; ns_aware }
