(** Fault tolerance, robustness and availability (paper Section 3.1).

    The paper argues iOverlay makes it "easy to design experiments
    consisting of a certain number of failures, and evaluate the
    robustness ... by measuring the received throughput at all
    participating clients". This experiment does exactly that: a
    ns-aware dissemination session over wide-area nodes, a burst of
    interior-node failures injected by the observer, and availability
    measured before, during and after recovery (members rejoin
    automatically). *)

type sample = {
  time : float;
  receiving : int;  (** members receiving above the threshold *)
  members : int;  (** members currently in the session *)
}

type result = {
  n : int;
  killed : int;
  samples : sample list;  (** chronological *)
  pre_failure_receiving : int;
  trough_receiving : int;  (** the worst sample after the failures *)
  recovered_receiving : int;  (** the final sample *)
  rejoins : int;  (** rejoin events across all members *)
}

val run : ?quiet:bool -> ?n:int -> ?kill:int -> ?seed:int -> unit -> result
(** Defaults: 20 nodes, 3 failures. *)
