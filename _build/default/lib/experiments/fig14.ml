module Network = Iov_core.Network
module Sflow = Iov_algos.Sflow
module NI = Iov_msg.Node_id
module Mt = Iov_msg.Mtype
module Table = Iov_stats.Table

type per_node = {
  nid : NI.t;
  service : int option;
  aware_bytes : int;
  federate_bytes : int;
  in_bw : float;
  out_bw : float;
  total_bw : float;
}

type result = {
  federation_delay : float;
  last_hop_throughput : float;
  dag : (NI.t * NI.t list) list;
  nodes : per_node list;
  untouched : int;
}

let app = 14

(* The paper's requirement is a multi-branch DAG; we use a diamond
   with a tail: 1 -> {2, 3} -> 4 -> 5. *)
let requirement =
  Sflow.Req.make
    ~edges:[ (1, 2); (1, 3); (2, 4); (3, 4); (4, 5) ]
    ~source:1 ~sink:5

let run ?(quiet = false) ?(seed = 17) () =
  let b = Svc.build ~seed ~strategy:`Sflow ~n:16 ~types:5 () in
  let net = b.Svc.net in
  (* let assignments and sAware dissemination settle *)
  Network.run net ~until:30.;
  let source =
    match Svc.instances_of b 1 with
    | s :: _ -> s
    | [] -> failwith "fig14: no source instance"
  in
  let t0 = 30. in
  Svc.federate b ~app ~source requirement;
  (* poll for completion to measure the federation delay *)
  let delay = ref nan in
  let sim = Network.sim net in
  let rec watch () =
    if Svc.completed b > 0 then delay := Iov_dsim.Sim.now sim -. t0
    else if Iov_dsim.Sim.now sim < t0 +. 30. then
      ignore (Iov_dsim.Sim.schedule sim ~delay:0.05 watch)
  in
  ignore (Iov_dsim.Sim.schedule sim ~delay:0.05 watch);
  Network.run net ~until:90.;

  let sink = Svc.sink_of b ~app ~source in
  let last_hop_throughput =
    match sink with
    | Some s -> Network.app_rate net s ~app
    | None -> 0.
  in
  let dag =
    List.filter_map
      (fun (nid, flow) ->
        match Sflow.selected_children flow ~app with
        | [] -> None
        | children -> Some (nid, children))
      b.Svc.flows
  in
  let involved =
    List.fold_left
      (fun acc (p, cs) -> NI.Set.add p (List.fold_left (fun s c -> NI.Set.add c s) acc cs))
      NI.Set.empty dag
  in
  let nodes =
    List.map
      (fun (nid, flow) ->
        let in_bw =
          List.fold_left
            (fun acc up -> acc +. Network.link_throughput net ~src:up ~dst:nid)
            0.
            (Network.upstreams_of net nid)
        in
        let out_bw =
          List.fold_left
            (fun acc down ->
              acc +. Network.link_throughput net ~src:nid ~dst:down)
            0.
            (Network.downstreams_of net nid)
        in
        {
          nid;
          service = Sflow.service_type flow;
          aware_bytes = Network.control_bytes_sent net nid Mt.S_aware;
          federate_bytes = Network.control_bytes_sent net nid Mt.S_federate;
          in_bw;
          out_bw;
          total_bw = in_bw +. out_bw;
        })
      b.Svc.flows
    |> List.sort (fun a b -> Float.compare b.total_bw a.total_bw)
  in
  let untouched = 16 - NI.Set.cardinal involved in
  let r =
    {
      federation_delay = !delay;
      last_hop_throughput;
      dag;
      nodes;
      untouched;
    }
  in
  if not quiet then begin
    print_endline "== Fig. 14: a federated complex service (16 nodes, diamond DAG) ==";
    Printf.printf "federation delay: %.1f ms\n" (r.federation_delay *. 1000.);
    Printf.printf "last-hop throughput into the sink: %.0f bytes/s\n"
      r.last_hop_throughput;
    print_endline "selected service DAG:";
    List.iter
      (fun (p, cs) ->
        Printf.printf "  %s -> %s\n" (NI.to_string p)
          (String.concat ", " (List.map NI.to_string cs)))
      r.dag;
    Printf.printf "untouched nodes: %d of 16\n\n" r.untouched;
    print_endline "== Fig. 15: per-node overhead and bandwidth (sorted by bandwidth) ==";
    Table.print
      ~header:
        [ "node"; "svc"; "sAware B"; "sFederate B"; "down KBps"; "up KBps";
          "total KBps" ]
      (List.map
         (fun p ->
           [
             NI.ip_string p.nid;
             (match p.service with Some s -> string_of_int s | None -> "-");
             string_of_int p.aware_bytes;
             string_of_int p.federate_bytes;
             Table.f1 (p.in_bw /. 1024.);
             Table.f1 (p.out_bw /. 1024.);
             Table.f1 (p.total_bw /. 1024.);
           ])
         r.nodes);
    print_newline ()
  end;
  r
