(** Fig. 18 — per-node control-message overhead in a 30-node overlay
    under heavy federation load (50 requirements/minute over 22
    minutes): the selected source services dominate sFederate
    overhead, while nodes whose services are not required stay
    near-silent. *)

type row = {
  nid : Iov_msg.Node_id.t;
  service : int option;
  aware : int;
  federate : int;
}

type result = {
  rows : row list;  (** sorted by sFederate bytes, descending *)
  max_federate : int;
  silent_nodes : int;  (** nodes with near-zero sFederate overhead *)
}

val run : ?quiet:bool -> ?n:int -> ?minutes:float -> ?seed:int -> unit -> result
