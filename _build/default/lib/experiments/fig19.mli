(** Fig. 19 — end-to-end bandwidth of federated complex services under
    different network sizes: sFlow consistently beats the fixed and
    random selection baselines because it balances concurrent sessions
    by measured available bandwidth. *)

type row = {
  size : int;
  sflow : float;  (** mean end-to-end bytes/second at the sinks *)
  fixed : float;
  random : float;
}

type result = { rows : row list }

val default_sizes : int list

val run :
  ?quiet:bool -> ?sizes:int list -> ?sessions:int -> ?seed:int -> unit ->
  result
