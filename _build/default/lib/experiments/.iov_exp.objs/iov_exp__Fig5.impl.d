lib/experiments/fig5.ml: Iov_algos Iov_core Iov_msg Iov_stats Iov_topo List Printf
