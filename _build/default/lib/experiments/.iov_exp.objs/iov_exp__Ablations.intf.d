lib/experiments/ablations.mli:
