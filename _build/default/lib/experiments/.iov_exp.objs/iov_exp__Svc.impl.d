lib/experiments/svc.ml: Iov_algos Iov_core Iov_dsim Iov_msg Iov_observer Iov_topo List
