lib/experiments/fig14.mli: Iov_msg
