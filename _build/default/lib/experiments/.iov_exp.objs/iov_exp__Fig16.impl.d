lib/experiments/fig16.ml: Iov_core Iov_dsim List Printf Svc
