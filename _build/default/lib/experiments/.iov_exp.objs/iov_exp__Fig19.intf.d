lib/experiments/fig19.mli:
