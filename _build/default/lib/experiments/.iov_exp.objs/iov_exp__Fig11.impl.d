lib/experiments/fig11.ml: Float Iov_algos Iov_core Iov_dsim Iov_msg Iov_observer Iov_stats Iov_topo List Printf Stdlib
