lib/experiments/fig19.ml: Array Iov_algos Iov_core Iov_dsim Iov_observer Iov_stats List Printf Svc
