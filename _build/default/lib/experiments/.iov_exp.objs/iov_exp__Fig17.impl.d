lib/experiments/fig17.ml: Array Iov_algos Iov_core Iov_dsim Iov_stats List Printf Svc
