lib/experiments/harness.mli: Iov_algos Iov_core Iov_topo
