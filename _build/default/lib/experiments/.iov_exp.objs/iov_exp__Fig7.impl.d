lib/experiments/fig7.ml: Harness Iov_core Iov_topo List Printf
