lib/experiments/fig9.ml: Harness Iov_algos Iov_core Iov_dsim Iov_msg Iov_observer Iov_stats Iov_topo List Option Printf
