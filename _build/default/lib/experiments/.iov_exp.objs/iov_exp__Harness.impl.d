lib/experiments/harness.ml: Iov_algos Iov_core Iov_stats Iov_topo List Printf
