lib/experiments/fig14.ml: Float Iov_algos Iov_core Iov_dsim Iov_msg Iov_stats List Printf String Svc
