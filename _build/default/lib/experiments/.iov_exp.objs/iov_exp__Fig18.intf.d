lib/experiments/fig18.mli: Iov_msg
