lib/experiments/ablations.ml: Fig5 Harness Iov_algos Iov_core Iov_msg Iov_stats Iov_topo List
