lib/experiments/svc.mli: Iov_algos Iov_core Iov_msg Iov_observer Iov_topo
