lib/experiments/fig18.ml: Array Int Iov_algos Iov_core Iov_dsim Iov_msg Iov_stats List Printf Stdlib Svc
