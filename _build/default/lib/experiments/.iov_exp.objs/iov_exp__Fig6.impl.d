lib/experiments/fig6.ml: Harness Iov_core Iov_topo List Printf
