lib/experiments/fig8.ml: Harness Iov_algos Iov_core Iov_topo List Printf
