lib/experiments/fig11.mli: Iov_algos
