lib/experiments/robustness.mli:
