lib/experiments/fig12.mli: Iov_msg
