lib/experiments/fig9.mli: Iov_algos
