(** Figs. 14–15 — one federated complex service on a 16-node service
    overlay: the constructed DAG, its end-to-end delay and last-hop
    throughput (Fig. 14), plus per-node control-message overhead and
    bandwidth measurements (Fig. 15). *)

type per_node = {
  nid : Iov_msg.Node_id.t;
  service : int option;
  aware_bytes : int;
  federate_bytes : int;
  in_bw : float;  (** per-link download bandwidth, bytes/second *)
  out_bw : float;
  total_bw : float;
}

type result = {
  federation_delay : float;  (** seconds from request to deployment *)
  last_hop_throughput : float;  (** bytes/second into the sink *)
  dag : (Iov_msg.Node_id.t * Iov_msg.Node_id.t list) list;
      (** selected children per participating instance *)
  nodes : per_node list;  (** sorted by total bandwidth, descending *)
  untouched : int;  (** nodes not involved in the session *)
}

val run : ?quiet:bool -> ?seed:int -> unit -> result
