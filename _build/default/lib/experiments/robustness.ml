module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Tree = Iov_algos.Tree
module Observer = Iov_observer.Observer
module Planetlab = Iov_topo.Planetlab
module NI = Iov_msg.Node_id

type sample = {
  time : float;
  receiving : int;
  members : int;
}

type result = {
  n : int;
  killed : int;
  samples : sample list;
  pre_failure_receiving : int;
  trough_receiving : int;
  recovered_receiving : int;
  rejoins : int;
}

let app = 31

let run ?(quiet = false) ?(n = 20) ?(kill = 3) ?(seed = 23) () =
  if kill >= n - 1 then invalid_arg "Robustness.run: too many failures";
  let pl = Planetlab.generate ~seed ~n () in
  let net = Network.create ~seed ~buffer_capacity:500 () in
  Network.set_latency_fn net (Planetlab.latency pl);
  let obs = Observer.create ~boot_subset:10 net in
  let members =
    List.mapi
      (fun i nd ->
        let bw =
          if i = 0 then Bwspec.total_only (100. *. 1024.)
          else nd.Planetlab.bw
        in
        let t =
          Tree.create ~strategy:Tree.Ns_aware
            ~last_mile:(Bwspec.last_mile bw) ~app ~rejoin:true ()
        in
        ignore
          (Network.add_node net ~bw ~observer:(Observer.id obs)
             ~id:nd.Planetlab.nid (Tree.algorithm t));
        (nd.Planetlab.nid, t))
      (Planetlab.nodes pl)
  in
  let source = fst (List.hd members) in
  let sim = Network.sim net in
  let at time f = ignore (Iov_dsim.Sim.schedule_at sim ~time f) in
  at 1.0 (fun () -> Observer.deploy_source obs source ~app);
  List.iteri
    (fun i (nid, _) ->
      if i > 0 then
        at (2.0 +. float_of_int i) (fun () -> Observer.join obs nid ~app))
    members;

  (* availability sampling: count members receiving data in each 5 s
     window, via byte deltas *)
  let last_bytes = Hashtbl.create n in
  let samples = ref [] in
  let sample_period = 5. in
  let take_sample () =
    let now = Network.now net in
    let receiving = ref 0 and in_session = ref 0 in
    List.iter
      (fun (nid, t) ->
        if not (NI.equal nid source) then begin
          let bytes = Network.app_bytes net nid ~app in
          let prev =
            match Hashtbl.find_opt last_bytes nid with Some b -> b | None -> 0
          in
          Hashtbl.replace last_bytes nid bytes;
          if Network.is_alive (Network.node net nid) then begin
            if Tree.in_session t then incr in_session;
            if bytes - prev > 0 then incr receiving
          end
        end)
      members;
    samples := { time = now; receiving = !receiving; members = !in_session } :: !samples
  in
  let join_horizon = 2.0 +. float_of_int n +. 15. in
  let fail_at = join_horizon +. 15. in
  let stop_at = fail_at +. 60. in
  let rec sampler time =
    if time <= stop_at then
      at time (fun () ->
          take_sample ();
          sampler (time +. sample_period))
  in
  sampler join_horizon;

  (* the observer injects the failures: interior (child-bearing) nodes
     make the most damaging victims *)
  at fail_at (fun () ->
      let interior =
        List.filter
          (fun (nid, t) ->
            (not (NI.equal nid source)) && Tree.children t <> [])
          members
      in
      let victims = List.filteri (fun i _ -> i < kill) interior in
      let victims =
        if List.length victims >= kill then victims
        else
          victims
          @ List.filteri
              (fun i (nid, _) ->
                i < kill - List.length victims
                && (not (NI.equal nid source))
                && not (List.exists (fun (v, _) -> NI.equal v nid) victims))
              (List.tl members)
      in
      List.iter (fun (nid, _) -> Observer.terminate_node obs nid) victims);
  Network.run net ~until:(stop_at +. 1.);

  let chronological = List.rev !samples in
  let pre =
    List.filter (fun s -> s.time < fail_at) chronological
    |> List.fold_left (fun acc s -> Stdlib.max acc s.receiving) 0
  in
  let post = List.filter (fun s -> s.time > fail_at +. 1.) chronological in
  let trough = List.fold_left (fun acc s -> Stdlib.min acc s.receiving) max_int post in
  let final = match List.rev post with s :: _ -> s.receiving | [] -> 0 in
  let rejoins =
    List.fold_left (fun acc (_, t) -> acc + Tree.rejoins t) 0 members
  in
  let result =
    {
      n;
      killed = kill;
      samples = chronological;
      pre_failure_receiving = pre;
      trough_receiving = (if trough = max_int then 0 else trough);
      recovered_receiving = final;
      rejoins;
    }
  in
  if not quiet then begin
    Printf.printf
      "== Robustness: %d failures injected into a %d-node ns-aware session ==\n"
      kill n;
    List.iter
      (fun s ->
        Printf.printf "  t=%5.0fs  receiving %2d  in-session %2d%s\n" s.time
          s.receiving s.members
          (if Float.abs (s.time -. fail_at) < sample_period then
             "   <- failures injected"
           else ""))
      result.samples;
    Printf.printf
      "pre-failure %d receiving; trough %d; recovered to %d; %d rejoin events\n\n"
      result.pre_failure_receiving result.trough_receiving
      result.recovered_receiving result.rejoins
  end;
  result
