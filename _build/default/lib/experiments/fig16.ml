module Network = Iov_core.Network

type result = {
  buckets : (float * int) list;
  total : int;
}

let run ?(quiet = false) ?(n = 30) ?(seed = 17) () =
  (* no automatic assignment: this experiment paces services itself *)
  let b =
    Svc.build ~seed ~deploy_data:false ~service_fraction:0.0 ~strategy:`Sflow
      ~n ~types:6 ()
  in
  let net = b.Svc.net in
  let sim = Network.sim net in
  (* ~3 new services per minute *)
  List.iteri
    (fun i (nid, _) ->
      ignore
        (Iov_dsim.Sim.schedule_at sim
           ~time:(20. *. float_of_int (i + 1))
           (fun () -> Svc.assign_instance b nid ~service:((i mod 6) + 1))))
    b.Svc.flows;
  (* sample cumulative sAware bytes every 2 minutes over 22 minutes *)
  let samples = ref [] in
  List.iter
    (fun minute ->
      ignore
        (Iov_dsim.Sim.schedule_at sim ~time:(minute *. 60.) (fun () ->
             samples := (minute, Svc.aware_bytes b) :: !samples)))
    [ 2.; 4.; 6.; 8.; 10.; 12.; 14.; 16.; 18.; 20.; 22. ];
  Network.run net ~until:(22. *. 60. +. 1.);
  let cumulative = List.rev !samples in
  let buckets =
    let rec diff prev = function
      | [] -> []
      | (m, c) :: tl -> (m, c - prev) :: diff c tl
    in
    diff 0 cumulative
  in
  let total = Svc.aware_bytes b in
  if not quiet then begin
    Printf.printf
      "== Fig. 16: sAware overhead over time (%d nodes, ~3 services/min, 22 min) ==\n"
      n;
    List.iter
      (fun (m, bytes) -> Printf.printf "  minutes %4.0f-%2.0f : %6d bytes\n" (m -. 2.) m bytes)
      buckets;
    Printf.printf "  total: %d bytes\n\n" total
  end;
  { buckets; total }
