module Network = Iov_core.Network
module Sflow = Iov_algos.Sflow
module NI = Iov_msg.Node_id
module Mt = Iov_msg.Mtype
module Table = Iov_stats.Table

type row = {
  nid : NI.t;
  service : int option;
  aware : int;
  federate : int;
}

type result = {
  rows : row list;
  max_federate : int;
  silent_nodes : int;
}

let requirement = Sflow.Req.linear [ 1; 2; 3; 4 ]

let run ?(quiet = false) ?(n = 30) ?(minutes = 22.) ?(seed = 17) () =
  let b =
    Svc.build ~seed ~deploy_data:false ~strategy:`Sflow ~n ~types:4 ()
  in
  let net = b.Svc.net in
  let sim = Network.sim net in
  let warmup = float_of_int n +. 10. in
  ignore
    (Iov_dsim.Sim.schedule_at sim ~time:warmup (fun () ->
         (* the observer favours a few designated source instances,
            as in the paper *)
         let sources = Array.of_list (Svc.instances_of b 1) in
         let k = Stdlib.min 3 (Array.length sources) in
         if k > 0 then begin
           let per_minute = 50 in
           let interval = 60. /. float_of_int per_minute in
           let total = int_of_float (minutes *. float_of_int per_minute) in
           for i = 0 to total - 1 do
             ignore
               (Iov_dsim.Sim.schedule sim
                  ~delay:(interval *. float_of_int i)
                  (fun () ->
                    Svc.federate b ~app:(2000 + i) ~source:sources.(i mod k)
                      requirement))
           done
         end));
  Network.run net ~until:(warmup +. (minutes *. 60.) +. 10.);
  let rows =
    List.map
      (fun (nid, flow) ->
        {
          nid;
          service = Sflow.service_type flow;
          aware = Network.control_bytes_sent net nid Mt.S_aware;
          federate = Network.control_bytes_sent net nid Mt.S_federate;
        })
      b.Svc.flows
    |> List.sort (fun a b -> Int.compare b.federate a.federate)
  in
  let max_federate =
    match rows with r :: _ -> r.federate | [] -> 0
  in
  let silent_nodes =
    List.length (List.filter (fun r -> r.federate < max_federate / 20) rows)
  in
  let result = { rows; max_federate; silent_nodes } in
  if not quiet then begin
    Printf.printf
      "== Fig. 18: per-node overhead (%d nodes, 50 reqs/min, %.0f min) ==\n" n
      minutes;
    Table.print
      ~header:[ "node"; "svc"; "sAware bytes"; "sFederate bytes" ]
      (List.map
         (fun r ->
           [
             NI.ip_string r.nid;
             (match r.service with Some s -> string_of_int s | None -> "-");
             string_of_int r.aware;
             string_of_int r.federate;
           ])
         rows);
    Printf.printf "max sFederate overhead: %d bytes; low-overhead nodes: %d\n\n"
      max_federate silent_nodes
  end;
  result
