module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Sflow = Iov_algos.Sflow
module Observer = Iov_observer.Observer
module Planetlab = Iov_topo.Planetlab
module NI = Iov_msg.Node_id
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module Wire = Iov_msg.Wire

type built = {
  net : Network.t;
  obs : Observer.t;
  pl : Planetlab.t;
  flows : (NI.t * Sflow.t) list;
}

let build ?(seed = 17) ?(deploy_data = true) ?(service_fraction = 1.0)
    ?(buffer_capacity = 64) ~strategy ~n ~types () =
  if types <= 1 then invalid_arg "Svc.build: types";
  let pl = Planetlab.generate ~seed ~n () in
  let net = Network.create ~seed ~buffer_capacity () in
  Network.set_latency_fn net (Planetlab.latency pl);
  let obs = Observer.create ~boot_subset:10 net in
  let flows =
    List.map
      (fun nd ->
        let flow =
          Sflow.create ~strategy
            ~advertised_bw:(Bwspec.last_mile nd.Planetlab.bw)
            ~deploy_data ()
        in
        ignore
          (Network.add_node net ~bw:nd.Planetlab.bw
             ~observer:(Observer.id obs) ~id:nd.Planetlab.nid
             (Sflow.algorithm flow));
        (nd.Planetlab.nid, flow))
      (Planetlab.nodes pl)
  in
  (* assign services to the leading fraction, one per second, types
     cycling 1..types *)
  let sim = Network.sim net in
  let n_assigned = int_of_float (service_fraction *. float_of_int n) in
  List.iteri
    (fun i (nid, _) ->
      if i < n_assigned then
        ignore
          (Iov_dsim.Sim.schedule_at sim
             ~time:(1.0 +. float_of_int i)
             (fun () ->
               Observer.assign_service obs nid ~service:((i mod types) + 1))))
    flows;
  { net; obs; pl; flows }

let assign_instance b nid ~service =
  Observer.assign_service b.obs nid ~service

let instances_of b ty =
  List.filter_map
    (fun (nid, flow) ->
      match Sflow.service_type flow with
      | Some t when t = ty -> Some nid
      | Some _ | None -> None)
    b.flows

let federate b ~app ~source req =
  let w = Wire.W.create () in
  Sflow.Req.to_payload req w;
  let m =
    Msg.control ~mtype:Mt.S_federate ~origin:(Observer.id b.obs) ~app
      (Wire.W.contents w)
  in
  Observer.control_message b.obs m source

let sink_of b ~app ~source =
  let flow_of nid = List.assoc_opt nid b.flows in
  let rec walk seen nid =
    if NI.Set.mem nid seen then None
    else
      match flow_of nid with
      | None -> None
      | Some flow -> (
        match Sflow.selected_children flow ~app with
        | [] -> Some nid
        | child :: _ -> walk (NI.Set.add nid seen) child)
  in
  match walk NI.Set.empty source with
  | Some nid when not (NI.equal nid source) -> Some nid
  | Some _ | None -> None

let completed b =
  List.fold_left (fun acc (_, f) -> acc + Sflow.sessions_completed f) 0 b.flows

let ctl_total b mt =
  Network.control_bytes_sent_all b.net mt

let aware_bytes b = ctl_total b Mt.S_aware
let federate_bytes b = ctl_total b Mt.S_federate
