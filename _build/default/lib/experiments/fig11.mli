(** Fig. 11 — the node-stress aware algorithm on 81 wide-area nodes
    (synthetic PlanetLab).

    Per-node available bandwidth is uniform in 50–200 KBps with the
    source at 100 KBps; receivers join over time. For each of the
    three construction algorithms the harness reports (a) the
    end-to-end throughput of every receiver and (b) the cumulative
    distribution of node stress. *)

type algo_result = {
  strategy : Iov_algos.Tree.strategy;
  joined : int;  (** receivers that completed the join protocol *)
  throughputs : float list;  (** per-receiver, descending, bytes/sec *)
  stress_cdf : (float * float) list;  (** (stress, fraction <= stress) *)
  mean_throughput : float;
  median_stress : float;
}

type result = {
  n : int;
  unicast : algo_result;
  random : algo_result;
  ns_aware : algo_result;
}

val run : ?quiet:bool -> ?n:int -> ?seed:int -> unit -> result
(** Default [n] = 81 (the paper's deployment). *)
