module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Topo = Iov_topo.Topo
module Coding = Iov_algos.Coding

type node_rates = {
  d : float;
  e : float;
  f : float;
  g : float;
}

type result = {
  without_coding : node_rates;
  with_coding : node_rates;
  decoded_f : int;
  decoded_g : int;
  link_rates_coding : ((string * string) * float) list;
}

let app = 1

(* Common scaffolding: A splits streams a (index 0, via B) and b
   (index 1, via C); helpers B and C fan out natively. The [coding]
   flag selects D's and E's role. *)
let build ~coding =
  let topo = Topo.fig8 () in
  let net = Network.create ~buffer_capacity:10000 () in
  let node = Topo.node topo in
  let add name alg =
    let spec = Topo.spec topo name in
    ignore (Network.add_node net ~bw:spec.Topo.bw ~id:spec.Topo.nid alg)
  in
  let source =
    Coding.split_source ~app ~dests:[ node "B"; node "C" ] ()
  in
  add "A" (Iov_algos.Source.algorithm source);
  let router name routes coded =
    let r = Coding.Router.create ~app () in
    List.iter
      (fun (index, dests) ->
        Coding.Router.route_native r ~index (List.map node dests))
      routes;
    if coded <> [] then Coding.Router.route_coded r (List.map node coded);
    add name (Coding.Router.algorithm r)
  in
  (* stream a reaches D and F via B; stream b reaches D and G via C *)
  router "B" [ (0, [ "D"; "F" ]) ] [];
  router "C" [ (1, [ "D"; "G" ]) ] [];
  let decoders =
    if coding then begin
      let coder =
        Coding.Coder.create ~k:2 ~app ~dests:[ node "E" ] ()
      in
      add "D" (Coding.Coder.algorithm coder);
      router "E" [] [ "F"; "G" ];
      let df = Coding.Decoder_node.create ~k:2 ~app () in
      let dg = Coding.Decoder_node.create ~k:2 ~app () in
      add "F" (Coding.Decoder_node.algorithm df);
      add "G" (Coding.Decoder_node.algorithm dg);
      Some (df, dg)
    end
    else begin
      (* D forwards both native streams; E completes each receiver's
         missing stream: b to F, a to G *)
      router "D" [ (0, [ "E" ]); (1, [ "E" ]) ] [];
      router "E" [ (0, [ "G" ]); (1, [ "F" ]) ] [];
      router "F" [] [];
      router "G" [] [];
      None
    end
  in
  (* the experiment's bandwidth emulation: D's uplink at 200 KBps *)
  Network.set_node_bandwidth net (node "D")
    (Bwspec.make ~up:(Harness.kbps 200.) ());
  List.iter (fun (a, b) -> Network.connect net a b) (Topo.edge_ids topo);
  (net, topo, decoders)

let rates net topo =
  let r name = Network.app_rate net (Topo.node topo name) ~app in
  { d = r "D"; e = r "E"; f = r "F"; g = r "G" }

let run ?(quiet = false) () =
  let net1, topo1, _ = build ~coding:false in
  Network.run net1 ~until:30.;
  let without_coding = rates net1 topo1 in

  let net2, topo2, decoders = build ~coding:true in
  Network.run net2 ~until:30.;
  let with_coding = rates net2 topo2 in
  let decoded_f, decoded_g =
    match decoders with
    | Some (df, dg) ->
      ( Coding.Decoder_node.decoded_generations df,
        Coding.Decoder_node.decoded_generations dg )
    | None -> (0, 0)
  in
  let link_rates_coding =
    List.map
      (fun (a, b) ->
        ( (a, b),
          Network.link_throughput net2 ~src:(Topo.node topo2 a)
            ~dst:(Topo.node topo2 b) ))
      topo2.Topo.edges
  in

  if not quiet then begin
    print_endline "== Fig. 8: network coding at node D (a + b in GF(2^8)) ==";
    let show title (r : node_rates) =
      Printf.printf
        "%s\n  effective throughput: D=%.0f  E=%.0f  F=%.0f  G=%.0f KBps\n"
        title (Harness.to_kbps r.d) (Harness.to_kbps r.e)
        (Harness.to_kbps r.f) (Harness.to_kbps r.g)
    in
    show "(a) without coding (helpers: B, C)" without_coding;
    show "(b) with coding at D (helpers: B, C, E)" with_coding;
    Printf.printf "  generations decoded: F=%d G=%d\n" decoded_f decoded_g;
    print_endline "  link throughput with coding:";
    List.iter
      (fun ((a, b), r) ->
        Printf.printf "    %s -> %s : %.1f KBps\n" a b (Harness.to_kbps r))
      link_rates_coding;
    print_newline ()
  end;
  { without_coding; with_coding; decoded_f; decoded_g; link_rates_coding }
