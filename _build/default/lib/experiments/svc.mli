(** Shared harness for the service-federation experiments
    (Figs. 14–19): builds a synthetic-PlanetLab service overlay,
    assigns typed services, and drives federations through the
    observer. *)

module Network = Iov_core.Network
module Sflow = Iov_algos.Sflow
module NI = Iov_msg.Node_id

type built = {
  net : Network.t;
  obs : Iov_observer.Observer.t;
  pl : Iov_topo.Planetlab.t;
  flows : (NI.t * Sflow.t) list;  (** every node's sFlow instance *)
}

val build :
  ?seed:int ->
  ?deploy_data:bool ->
  ?service_fraction:float ->
  ?buffer_capacity:int ->
  strategy:Sflow.strategy ->
  n:int ->
  types:int ->
  unit ->
  built
(** [service_fraction] (default 1.0) of the nodes receive a service
    assignment (types cycle 1..types), staggered one per simulated
    second; every node advertises its actual total capacity, so the
    [`Fixed] strategy has real numbers to be greedy about. *)

val assign_instance : built -> NI.t -> service:int -> unit
(** Assign one more service at the current simulated time. *)

val instances_of : built -> int -> NI.t list
(** Assigned instances of a type (from the harness's own records). *)

val federate : built -> app:int -> source:NI.t -> Sflow.Req.t -> unit
(** The observer sends [sFederate] for session [app] to the source
    instance. *)

val sink_of : built -> app:int -> source:NI.t -> NI.t option
(** Follows the selected children from the source; the node without
    further selections is the session's sink. *)

val completed : built -> int
(** Federations completed across all nodes. *)

val aware_bytes : built -> int
val federate_bytes : built -> int
(** Total control overhead by message type, across all nodes. *)
