(** Fig. 7 — with large (10000-message) buffers, bottleneck emulations
    only affect their immediate downstream links within the
    measurement horizon; the throttling of more capable links is
    significantly delayed. *)

type result = {
  a : ((string * string) * float) list;
      (** D uplink 30 KBps: only D's downstream chain is affected *)
  b : ((string * string) * float) list;
      (** link EF additionally capped at 15 KBps: EG unaffected *)
}

val run : ?quiet:bool -> unit -> result
