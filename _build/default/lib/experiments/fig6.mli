(** Fig. 6 — correctness of the engine, verified with a seven-node
    topology: bandwidth-emulation convergence, back pressure from full
    buffers, and graceful node terminations. *)

type phase = {
  title : string;
  rates : ((string * string) * float) list;
      (** bytes/second per edge; a negative rate marks a closed link *)
}

type result = {
  a : phase;  (** A capped at 400 KBps total *)
  b : phase;  (** D's uplink reduced to 30 KBps *)
  c : phase;  (** node B terminated *)
  d : phase;  (** node G terminated *)
}

val run : ?quiet:bool -> unit -> result
val closed : float -> bool
