module Network = Iov_core.Network
module Topo = Iov_topo.Topo
module Table = Iov_stats.Table

type row = {
  nodes : int;
  end_to_end : float;
  total : float;
}

type result = {
  rows : row list;
  switch_overhead_pct : float;
}

let default_sizes = [ 2; 3; 4; 5; 6; 8; 12; 16; 32 ]

let payload = 5 * 1024
let msg_size = payload + Iov_msg.Message.header_size

(* Calibrate the per-message CPU cost a + b * threads on the paper's
   anchors. Threads on the host for an n-node chain: n engine threads
   plus 2 per link. Total bandwidth at the anchor = msg_size / cost. *)
let cpu_calibration =
  let threads n = n + (2 * (n - 1)) in
  let mb = 1024. *. 1024. in
  let total2 = 48.4 *. mb in
  let total32 = 424. *. 1024. *. 31. in
  let cost2 = float_of_int msg_size /. total2 in
  let cost32 = float_of_int msg_size /. total32 in
  let t2 = float_of_int (threads 2) and t32 = float_of_int (threads 32) in
  let b = (cost32 -. cost2) /. (t32 -. t2) in
  let a = cost2 -. (b *. t2) in
  (a, b)

let run_one ~measure_for n =
  let a, b = cpu_calibration in
  let topo = Topo.chain ~n in
  let net = Network.create ~buffer_capacity:10 ~default_latency:0.0001 () in
  let host = Network.add_host net ~cpu:(`Calibrated (a, b)) "server" in
  let app = 1 in
  let first = Printf.sprintf "n%d" 1 in
  let last = Printf.sprintf "n%d" n in
  let src =
    Iov_algos.Source.create ~payload_size:payload ~app
      ~dests:[ Topo.node topo "n2" ] ()
  in
  List.iter
    (fun name ->
      let alg =
        if name = first then Iov_algos.Source.algorithm src
        else begin
          let f = Iov_algos.Flood.create () in
          Iov_algos.Flood.set_route f ~app
            ~upstreams:(List.map (Topo.node topo) (Topo.upstreams topo name))
            ~downstreams:
              (List.map (Topo.node topo) (Topo.downstreams topo name))
            ();
          Iov_algos.Flood.algorithm f
        end
      in
      ignore (Network.add_node net ~host ~id:(Topo.node topo name) alg))
    (Topo.names topo);
  (* measure end-to-end throughput over the trailing window at the
     sink, after a convergence lead-in *)
  Network.run net ~until:(2. +. measure_for);
  let sink = Topo.node topo last in
  let before = Network.app_bytes net sink ~app in
  let t0 = Network.now net in
  Network.run net ~until:(t0 +. measure_for);
  let delivered = Network.app_bytes net sink ~app - before in
  let e2e = float_of_int delivered /. measure_for in
  { nodes = n; end_to_end = e2e; total = e2e *. float_of_int (n - 1) }

let run ?(quiet = false) ?(sizes = default_sizes) ?(measure_for = 3.0) () =
  let rows = List.map (run_one ~measure_for) sizes in
  let overhead =
    match
      ( List.find_opt (fun r -> r.nodes = 2) rows,
        List.find_opt (fun r -> r.nodes = 3) rows )
    with
    | Some r2, Some r3 -> 100. *. (1. -. (r3.total /. r2.total))
    | _ -> nan
  in
  if not quiet then begin
    print_endline "== Fig. 5: raw switching performance (chain topology) ==";
    Table.print
      ~header:[ "# nodes"; "end-to-end (MBps)"; "total bandwidth (MBps)" ]
      (List.map
         (fun r ->
           [
             string_of_int r.nodes;
             Table.fmb r.end_to_end;
             Table.fmb r.total;
           ])
         rows);
    Printf.printf "overhead of one user-level switch: %.1f%%\n\n" overhead
  end;
  { rows; switch_overhead_pct = overhead }
