(** Ablations of the design choices DESIGN.md calls out.

    Not paper figures: each sweep isolates one engine mechanism and
    shows the behaviour it buys. *)

type buffer_row = {
  capacity : int;
  upstream_rate : float;
      (** A->B throughput under the Fig. 6(b) bottleneck, bytes/s *)
  bottleneck_rate : float;  (** D->E throughput *)
}

val buffer_sweep : ?quiet:bool -> ?capacities:int list -> unit -> buffer_row list
(** The back-pressure crossover: with small buffers the D bottleneck
    throttles the whole graph (upstream ≈ 15 KBps); with large buffers
    it stays local (upstream ≈ 200 KBps). *)

type pipeline_row = {
  depth : int;
  throughput : float;  (** bytes/s across a 100 ms-latency link *)
}

val pipeline_sweep : ?quiet:bool -> ?depths:int list -> unit -> pipeline_row list
(** Why transmissions pipeline: a 200 KBps link with 100 ms one-way
    latency collapses to ~ message-per-RTT without pipelining. *)

type cpu_row = {
  modelled : bool;
  total_bandwidth : float;  (** 8-node chain, bytes/s *)
}

val cpu_model : ?quiet:bool -> unit -> cpu_row list
(** The shared-CPU model is what produces Fig. 5's decline: without
    it, an 8-node chain switches at (simulated) wire speed. *)

val run_all : ?quiet:bool -> unit -> unit
