module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Topo = Iov_topo.Topo

type phase = {
  title : string;
  rates : ((string * string) * float) list;
}

type result = {
  a : phase;
  b : phase;
  c : phase;
  d : phase;
}

let closed r = r < 0.

let snapshot (f : Harness.flood_net) title =
  let rates =
    List.map
      (fun ((a, b), rate) ->
        let alive =
          Network.link_exists f.Harness.net
            ~src:(Topo.node f.Harness.topo a)
            ~dst:(Topo.node f.Harness.topo b)
        in
        ((a, b), if alive then rate else -1.))
      (Harness.edge_rates f)
  in
  { title; rates }

let print_phase p =
  Printf.printf "%s\n" p.title;
  List.iter
    (fun ((a, b), r) ->
      Printf.printf "  %s -> %s : %s\n" a b
        (if closed r then "[closed]"
         else Printf.sprintf "%.1f KBps" (Harness.to_kbps r)))
    p.rates;
  print_newline ()

let run ?(quiet = false) () =
  let topo = Topo.fig6 () in
  let f = Harness.build_flood ~buffer_capacity:5 ~topo ~source:"A" () in
  let net = f.Harness.net in
  let d = Topo.node topo "D" in

  (* phase (a): converge with A's 400 KBps total cap *)
  Network.run net ~until:12.;
  let pa = snapshot f "(a) A capped at 400 KBps total" in

  (* phase (b): the observer reduces D's uplink to 30 KBps; back
     pressure from the 5-message buffers throttles the whole graph *)
  Network.set_node_bandwidth net d
    (Bwspec.make ~total:infinity ~up:(Harness.kbps 30.) ());
  Network.run net ~until:40.;
  let pb = snapshot f "(b) D uplink emulated at 30 KBps" in

  (* phase (c): terminate node B *)
  Network.terminate net (Topo.node topo "B");
  Network.run net ~until:60.;
  let pc = snapshot f "(c) node B terminated" in

  (* phase (d): terminate node G *)
  Network.terminate net (Topo.node topo "G");
  Network.run net ~until:75.;
  let pd = snapshot f "(d) node G terminated" in

  let result = { a = pa; b = pb; c = pc; d = pd } in
  if not quiet then begin
    print_endline "== Fig. 6: engine correctness on the 7-node topology ==";
    List.iter print_phase [ pa; pb; pc; pd ]
  end;
  result
