module Network = Iov_core.Network
module Sflow = Iov_algos.Sflow
module Table = Iov_stats.Table

type row = {
  size : int;
  aware : int;
  federate : int;
}

type result = { rows : row list }

let default_sizes = [ 5; 10; 15; 20; 25; 30; 35; 40 ]

let requirement = Sflow.Req.linear [ 1; 2; 3; 4 ]

(* Drive [per_minute] federations per minute for [minutes], source
   instances cycling; returns the built overlay. *)
let run_size ~seed ~minutes ~per_minute n =
  let b =
    Svc.build ~seed ~deploy_data:false ~strategy:`Sflow ~n ~types:4 ()
  in
  let net = b.Svc.net in
  let sim = Network.sim net in
  let warmup = float_of_int n +. 10. in
  ignore
    (Iov_dsim.Sim.schedule_at sim ~time:warmup (fun () ->
         let sources = Array.of_list (Svc.instances_of b 1) in
         if Array.length sources > 0 then begin
           let interval = 60. /. float_of_int per_minute in
           let total = int_of_float (minutes *. float_of_int per_minute) in
           for i = 0 to total - 1 do
             ignore
               (Iov_dsim.Sim.schedule sim
                  ~delay:(interval *. float_of_int i)
                  (fun () ->
                    Svc.federate b ~app:(1000 + i)
                      ~source:sources.(i mod Array.length sources)
                      requirement))
           done
         end));
  Network.run net ~until:(warmup +. (minutes *. 60.) +. 10.);
  { size = n; aware = Svc.aware_bytes b; federate = Svc.federate_bytes b }

let run ?(quiet = false) ?(sizes = default_sizes) ?(minutes = 10.)
    ?(seed = 17) () =
  let rows = List.map (run_size ~seed ~minutes ~per_minute:50) sizes in
  if not quiet then begin
    Printf.printf
      "== Fig. 17: control overhead vs network size (%.0f min, 50 requirements/min) ==\n"
      minutes;
    Table.print
      ~header:[ "network size"; "sAware bytes"; "sFederate bytes" ]
      (List.map
         (fun r ->
           [ string_of_int r.size; string_of_int r.aware;
             string_of_int r.federate ])
         rows);
    print_newline ()
  end;
  { rows }
