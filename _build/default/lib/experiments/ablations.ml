module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Topo = Iov_topo.Topo
module Table = Iov_stats.Table
module NI = Iov_msg.Node_id

let kbps = Harness.kbps

(* ------------------------------------------------------------------ *)

type buffer_row = {
  capacity : int;
  upstream_rate : float;
  bottleneck_rate : float;
}

let buffer_sweep ?(quiet = false) ?(capacities = [ 5; 50; 500; 10000 ]) () =
  let one capacity =
    let topo = Topo.fig6 () in
    let f =
      Harness.build_flood ~buffer_capacity:capacity ~topo ~source:"A" ()
    in
    Network.set_node_bandwidth f.Harness.net (Topo.node topo "D")
      (Bwspec.make ~up:(kbps 30.) ());
    Network.run f.Harness.net ~until:30.;
    {
      capacity;
      upstream_rate = Harness.edge_rate f "A" "B";
      bottleneck_rate = Harness.edge_rate f "D" "E";
    }
  in
  let rows = List.map one capacities in
  if not quiet then begin
    print_endline
      "== ablation: buffer capacity vs back-pressure reach (D uplink 30 KBps) ==";
    Table.print
      ~header:[ "buffer (msgs)"; "A->B KBps"; "D->E KBps" ]
      (List.map
         (fun r ->
           [
             string_of_int r.capacity;
             Table.f1 (r.upstream_rate /. 1024.);
             Table.f1 (r.bottleneck_rate /. 1024.);
           ])
         rows);
    print_newline ()
  end;
  rows

(* ------------------------------------------------------------------ *)

type pipeline_row = {
  depth : int;
  throughput : float;
}

let pipeline_sweep ?(quiet = false) ?(depths = [ 1; 2; 4; 8; 16 ]) () =
  let one depth =
    let net =
      Network.create ~pipeline_depth:depth ~default_latency:0.1
        ~buffer_capacity:100 ()
    in
    let app = 1 in
    let src =
      Iov_algos.Source.create ~app ~dests:[ NI.synthetic 2 ] ()
    in
    ignore
      (Network.add_node net
         ~bw:(Bwspec.make ~up:(kbps 200.) ())
         ~id:(NI.synthetic 1)
         (Iov_algos.Source.algorithm src));
    ignore (Network.add_node net ~id:(NI.synthetic 2) Iov_core.Algorithm.null);
    Network.run net ~until:20.;
    {
      depth;
      throughput =
        Network.link_throughput net ~src:(NI.synthetic 1)
          ~dst:(NI.synthetic 2);
    }
  in
  let rows = List.map one depths in
  if not quiet then begin
    print_endline
      "== ablation: pipeline depth across a 100 ms link (cap 200 KBps) ==";
    Table.print
      ~header:[ "in-flight msgs"; "throughput KBps" ]
      (List.map
         (fun r ->
           [ string_of_int r.depth; Table.f1 (r.throughput /. 1024.) ])
         rows);
    print_newline ()
  end;
  rows

(* ------------------------------------------------------------------ *)

type cpu_row = {
  modelled : bool;
  total_bandwidth : float;
}

(* the calibrated 8-node point from Fig. 5 *)
let fig5_total_at_8 () =
  match (Fig5.run ~quiet:true ~sizes:[ 8 ] ~measure_for:2. ()).Fig5.rows with
  | [ row ] -> row.Fig5.total
  | _ -> 0.

(* the same chain with the CPU left unconstrained: only the (tiny)
   default link latency paces it, so it switches at simulated wire
   speed *)
let unconstrained_total_at_8 () =
  let topo = Topo.chain ~n:8 in
  let f = Harness.build_flood ~buffer_capacity:10 ~topo ~source:"n1" () in
  Network.run f.Harness.net ~until:5.;
  let sink = Topo.node topo "n8" in
  Network.app_rate f.Harness.net sink ~app:f.Harness.app *. 7.

let cpu_model ?(quiet = false) () =
  let rows =
    [
      { modelled = false; total_bandwidth = unconstrained_total_at_8 () };
      { modelled = true; total_bandwidth = fig5_total_at_8 () };
    ]
  in
  if not quiet then begin
    print_endline "== ablation: shared-CPU model on an 8-node chain ==";
    Table.print
      ~header:[ "CPU model"; "total bandwidth (MBps)" ]
      (List.map
         (fun r ->
           [
             (if r.modelled then "calibrated" else "off");
             Table.fmb r.total_bandwidth;
           ])
         rows);
    print_newline ()
  end;
  rows

let run_all ?quiet () =
  ignore (buffer_sweep ?quiet ());
  ignore (pipeline_sweep ?quiet ());
  ignore (cpu_model ?quiet ())
