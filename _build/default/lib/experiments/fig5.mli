(** Fig. 5 — raw message-switching performance of virtualized nodes
    sharing one physical server.

    A chain of n nodes (all on one host) carries back-to-back 5 KB
    messages; the bottleneck is the host CPU, whose per-message cost
    grows with the number of threads (the context-switching overhead
    of Linux pthreads). The CPU model is calibrated on the paper's two
    anchor points (48.4 MBps end-to-end at 2 nodes; 424 KBps at 32)
    and the interior of the curve is measured. *)

type row = {
  nodes : int;
  end_to_end : float;  (** bytes/second at the sink *)
  total : float;  (** end_to_end * number of links *)
}

type result = {
  rows : row list;
  switch_overhead_pct : float;
      (** the paper's 3.3%: relative drop in total bandwidth from the
          2-node to the 3-node configuration *)
}

val default_sizes : int list
(** 2, 3, 4, 5, 6, 8, 12, 16, 32 — the annotated points of Fig. 5. *)

val run : ?quiet:bool -> ?sizes:int list -> ?measure_for:float -> unit -> result
