(** Fig. 16 — total sAware overhead over time while a 30-node service
    overlay is established at ~3 new services per minute, observed
    over 22 minutes: overhead is moderate throughout and decreases
    significantly once most services are known. *)

type result = {
  buckets : (float * int) list;
      (** (end-of-interval minute, sAware bytes in that 2-minute
          interval) *)
  total : int;
}

val run : ?quiet:bool -> ?n:int -> ?seed:int -> unit -> result
