(** Fig. 17 — total control-message overhead versus network size, over
    10 minutes with 50 new service requirements per minute: both
    message types grow gradually, sFederate slower than sAware. *)

type row = {
  size : int;
  aware : int;  (** total sAware bytes *)
  federate : int;  (** total sFederate bytes *)
}

type result = { rows : row list }

val default_sizes : int list

val run :
  ?quiet:bool -> ?sizes:int list -> ?minutes:float -> ?seed:int -> unit ->
  result
