module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Tree = Iov_algos.Tree
module Observer = Iov_observer.Observer
module Planetlab = Iov_topo.Planetlab
module NI = Iov_msg.Node_id

type result = {
  ten_node : string;
  eighty_one_node : string;
  ten_depth : int;
  eighty_one_depth : int;
}

let render_tree ~root ~children =
  let buf = Buffer.create 256 in
  (* guard against accidental cycles in snapshots *)
  let seen = ref NI.Set.empty in
  let rec go indent ni =
    Buffer.add_string buf indent;
    Buffer.add_string buf (NI.ip_string ni);
    Buffer.add_char buf '\n';
    if not (NI.Set.mem ni !seen) then begin
      seen := NI.Set.add ni !seen;
      List.iter (go (indent ^ "  ")) (children ni)
    end
  in
  go "" root;
  Buffer.contents buf

let depth ~root ~children =
  let seen = ref NI.Set.empty in
  let rec go ni =
    if NI.Set.mem ni !seen then 0
    else begin
      seen := NI.Set.add ni !seen;
      1 + List.fold_left (fun acc c -> Stdlib.max acc (go c)) 0 (children ni)
    end
  in
  go root

let app = 12

let build_ns_tree ~seed n =
  let pl = Planetlab.generate ~seed ~n () in
  let net = Network.create ~seed ~buffer_capacity:10000 () in
  Network.set_latency_fn net (Planetlab.latency pl);
  let obs = Observer.create ~boot_subset:10 net in
  let nds = Planetlab.nodes pl in
  let trees =
    List.mapi
      (fun i nd ->
        let bw =
          if i = 0 then Bwspec.total_only (100. *. 1024.)
          else nd.Planetlab.bw
        in
        let t =
          Tree.create ~strategy:Tree.Ns_aware
            ~last_mile:(Bwspec.last_mile bw) ~app ()
        in
        ignore
          (Network.add_node net ~bw ~observer:(Observer.id obs)
             ~id:nd.Planetlab.nid (Tree.algorithm t));
        (nd.Planetlab.nid, t))
      nds
  in
  let sim = Network.sim net in
  let at time f = ignore (Iov_dsim.Sim.schedule_at sim ~time f) in
  let root = (List.hd nds).Planetlab.nid in
  at 1.0 (fun () -> Observer.deploy_source obs root ~app);
  List.iteri
    (fun i (nid, _) ->
      if not (NI.equal nid root) then
        at (2.0 +. float_of_int i) (fun () -> Observer.join obs nid ~app))
    trees;
  Network.run net ~until:(float_of_int n +. 25.);
  let children ni =
    match List.assoc_opt ni trees with
    | Some t -> Tree.children t
    | None -> []
  in
  (root, children)

let run ?(quiet = false) ?(seed = 11) () =
  let root10, ch10 = build_ns_tree ~seed 10 in
  let root81, ch81 = build_ns_tree ~seed 81 in
  let ten_node = render_tree ~root:root10 ~children:ch10 in
  let eighty_one_node = render_tree ~root:root81 ~children:ch81 in
  let r =
    {
      ten_node;
      eighty_one_node;
      ten_depth = depth ~root:root10 ~children:ch10;
      eighty_one_depth = depth ~root:root81 ~children:ch81;
    }
  in
  if not quiet then begin
    print_endline "== Fig. 12: 10-node topology from the ns-aware algorithm ==";
    print_string ten_node;
    Printf.printf "(depth %d)\n\n" r.ten_depth;
    Printf.printf
      "== Fig. 13: 81-node topology from the ns-aware algorithm (depth %d) ==\n"
      r.eighty_one_depth;
    print_string eighty_one_node;
    print_newline ()
  end;
  r
