module NI = Iov_msg.Node_id
module Bwspec = Iov_core.Bwspec

type site = {
  site_name : string;
  lat : float;
  lon : float;
}

let site name lat lon = { site_name = name; lat; lon }

let sites =
  [
    site "mit" 42.36 (-71.09);
    site "berkeley" 37.87 (-122.26);
    site "princeton" 40.34 (-74.65);
    site "washington" 47.65 (-122.30);
    site "cmu" 40.44 (-79.94);
    site "utexas" 30.29 (-97.74);
    site "duke" 36.00 (-78.94);
    site "ucsd" 32.88 (-117.23);
    site "cornell" 42.45 (-76.48);
    site "toronto" 43.66 (-79.40);
    site "columbia" 40.81 (-73.96);
    site "caltech" 34.14 (-118.13);
    site "arizona" 32.23 (-110.95);
    site "utah" 40.76 (-111.85);
    site "michigan" 42.29 (-83.72);
    site "ubc" 49.26 (-123.25);
    site "gatech" 33.78 (-84.40);
    site "wisc" 43.07 (-89.40);
    site "rice" 29.72 (-95.40);
    site "unc" 35.90 (-79.05);
    site "cambridge" 52.20 0.12;
    site "inria" 43.62 7.05;
    site "tu-berlin" 52.51 13.33;
    site "vu-amsterdam" 52.33 4.87;
    site "epfl" 46.52 6.57;
    site "huji" 31.78 35.20;
    site "tsinghua" 40.00 116.33;
    site "kaist" 36.37 127.36;
    site "tokyo" 35.71 139.76;
    site "hkust" 22.34 114.26;
    site "ufmg" (-19.87) (-43.96);
    site "unisp" (-23.56) (-46.73);
  ]

type nd = {
  nid : NI.t;
  site : site;
  bw : Bwspec.t;
}

type t = {
  nds : nd list;
  by_id : nd NI.Tbl.t;
  jitter : float NI.Tbl.t; (* per-node deterministic jitter component *)
}

let deg2rad d = d *. Float.pi /. 180.

let distance_km a b =
  let phi1 = deg2rad a.lat and phi2 = deg2rad b.lat in
  let dphi = deg2rad (b.lat -. a.lat) in
  let dlambda = deg2rad (b.lon -. a.lon) in
  let h =
    (sin (dphi /. 2.) ** 2.)
    +. (cos phi1 *. cos phi2 *. (sin (dlambda /. 2.) ** 2.))
  in
  2. *. 6371. *. asin (Float.min 1. (sqrt h))

let generate ?(seed = 11) ?(bw_range = (50. *. 1024., 200. *. 1024.)) ~n () =
  if n <= 0 then invalid_arg "Planetlab.generate: n";
  let lo, hi = bw_range in
  if lo <= 0. || hi < lo then invalid_arg "Planetlab.generate: bw_range";
  let rng = Random.State.make [| seed |] in
  let site_arr = Array.of_list sites in
  let k = Array.length site_arr in
  let by_id = NI.Tbl.create n in
  let jitter = NI.Tbl.create n in
  let nds =
    List.init n (fun i ->
        let s = site_arr.(i mod k) in
        let bw = Bwspec.total_only (lo +. Random.State.float rng (hi -. lo)) in
        let nd = { nid = NI.synthetic (100 + i); site = s; bw } in
        NI.Tbl.add by_id nd.nid nd;
        NI.Tbl.add jitter nd.nid (Random.State.float rng 0.004);
        nd)
  in
  { nds; by_id; jitter }

let nodes t = t.nds
let ids t = List.map (fun nd -> nd.nid) t.nds
let find t ni = NI.Tbl.find_opt t.by_id ni

(* one-way latency: LAN floor + propagation at ~200,000 km/s over a
   1.6x path-stretch factor, plus each endpoint's jitter *)
let latency t a b =
  match (find t a, find t b) with
  | Some na, Some nb ->
    let km = distance_km na.site nb.site in
    let base = 0.0015 +. (km *. 1.6 /. 200_000.) in
    let j =
      (try NI.Tbl.find t.jitter a with Not_found -> 0.)
      +. (try NI.Tbl.find t.jitter b with Not_found -> 0.)
    in
    base +. (j /. 2.)
  | _ -> 0.04
