lib/topology/planetlab.mli: Iov_core Iov_msg
