lib/topology/topo.mli: Iov_core Iov_msg
