lib/topology/topo.ml: Iov_core Iov_msg List Printf Random
