lib/topology/planetlab.ml: Array Float Iov_core Iov_msg List Random
