module NI = Iov_msg.Node_id
module Bwspec = Iov_core.Bwspec

type spec = {
  name : string;
  nid : NI.t;
  bw : Bwspec.t;
}

type t = {
  specs : spec list;
  edges : (string * string) list;
}

let spec t name =
  match List.find_opt (fun s -> s.name = name) t.specs with
  | Some s -> s
  | None -> raise Not_found

let node t name = (spec t name).nid

let name_of t nid =
  match List.find_opt (fun s -> NI.equal s.nid nid) t.specs with
  | Some s -> s.name
  | None -> raise Not_found

let names t = List.map (fun s -> s.name) t.specs

let edge_ids t = List.map (fun (a, b) -> (node t a, node t b)) t.edges

let downstreams t name =
  List.filter_map (fun (a, b) -> if a = name then Some b else None) t.edges

let upstreams t name =
  List.filter_map (fun (a, b) -> if b = name then Some a else None) t.edges

let kbps x = x *. 1024.

let mk_spec ?(bw = Bwspec.unconstrained) i name =
  { name; nid = NI.synthetic (i + 1); bw }

let chain ~n =
  if n < 2 then invalid_arg "Topo.chain: need at least two nodes";
  let specs = List.init n (fun i -> mk_spec i (Printf.sprintf "n%d" (i + 1))) in
  let edges =
    List.init (n - 1) (fun i ->
        (Printf.sprintf "n%d" (i + 1), Printf.sprintf "n%d" (i + 2)))
  in
  { specs; edges }

(* Letters name the paper's nodes; ids are stable across runs. *)
let lettered ?bws letters =
  List.mapi
    (fun i name ->
      let bw =
        match bws with
        | Some l -> (
          match List.assoc_opt name l with Some b -> b | None -> Bwspec.unconstrained)
        | None -> Bwspec.unconstrained
      in
      mk_spec ~bw i name)
    letters

let fig6 () =
  let specs =
    lettered
      ~bws:[ ("A", Bwspec.total_only (kbps 400.)) ]
      [ "A"; "B"; "C"; "D"; "E"; "F"; "G" ]
  in
  let edges =
    [ ("A", "B"); ("A", "C"); ("B", "D"); ("B", "F"); ("C", "D"); ("D", "E");
      ("E", "F"); ("E", "G") ]
  in
  { specs; edges }

let fig8 () =
  let specs =
    lettered
      ~bws:[ ("A", Bwspec.total_only (kbps 400.)) ]
      [ "A"; "B"; "C"; "D"; "E"; "F"; "G" ]
  in
  let edges =
    [ ("A", "B"); ("A", "C"); ("B", "D"); ("B", "F"); ("C", "D"); ("C", "G");
      ("D", "E"); ("E", "F"); ("E", "G") ]
  in
  { specs; edges }

let fig9 () =
  let bw r = Bwspec.total_only (kbps r) in
  let specs =
    lettered
      ~bws:
        [ ("S", bw 200.); ("A", bw 500.); ("B", bw 100.); ("C", bw 200.);
          ("D", bw 100.) ]
      [ "S"; "A"; "B"; "C"; "D" ]
  in
  { specs; edges = [] }

let random_graph ?(seed = 7) ~n ~degree () =
  if n < 2 then invalid_arg "Topo.random_graph: n";
  if degree < 1 then invalid_arg "Topo.random_graph: degree";
  let rng = Random.State.make [| seed |] in
  let name i = Printf.sprintf "n%d" (i + 1) in
  let specs = List.init n (fun i -> mk_spec i (name i)) in
  (* a ring guarantees connectivity *)
  let ring = List.init n (fun i -> (name i, name ((i + 1) mod n))) in
  let target = n * degree in
  let edges = ref ring in
  let have (a, b) = List.mem (a, b) !edges in
  let attempts = ref 0 in
  while List.length !edges < target && !attempts < 100 * target do
    incr attempts;
    let a = Random.State.int rng n and b = Random.State.int rng n in
    if a <> b && not (have (name a, name b)) then
      edges := (name a, name b) :: !edges
  done;
  { specs; edges = !edges }
