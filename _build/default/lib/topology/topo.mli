(** Topology descriptions used by the experiments.

    A topology is a set of named nodes with per-node bandwidth
    specifications and a set of directed overlay edges. The fixed
    graphs below are the paper's evaluation topologies. *)

type spec = {
  name : string;
  nid : Iov_msg.Node_id.t;
  bw : Iov_core.Bwspec.t;
}

type t = {
  specs : spec list;
  edges : (string * string) list;  (** by node name, src -> dst *)
}

val node : t -> string -> Iov_msg.Node_id.t
(** @raise Not_found for unknown names. *)

val name_of : t -> Iov_msg.Node_id.t -> string
(** @raise Not_found for unknown ids. *)

val spec : t -> string -> spec
val names : t -> string list
val edge_ids : t -> (Iov_msg.Node_id.t * Iov_msg.Node_id.t) list
val downstreams : t -> string -> string list
val upstreams : t -> string -> string list

val chain : n:int -> t
(** [chain ~n] is the Fig. 5 workload topology: nodes ["n1" .. "nN"]
    with unconstrained bandwidth, each forwarding to the next.
    @raise Invalid_argument if [n < 2]. *)

val fig6 : unit -> t
(** The seven-node correctness topology of Fig. 6: A is the source
    (per-node total 400 KBps); A -> {B, C}, B -> {D, F}, C -> D,
    D -> E, E -> {F, G}. *)

val fig8 : unit -> t
(** The network-coding topology of Fig. 8: A (400 KBps total) splits
    streams to B and C; B -> {D, F}, C -> {D, G}, D -> E (D's uplink
    is capped at 200 KBps in the experiment), E -> {F, G}. *)

val fig9 : unit -> t
(** The five-node tree-construction session of Fig. 9: nodes S, A, B,
    C, D with per-node available bandwidth 200, 500, 100, 200 and
    100 KBps; no pre-built edges (trees are built by join
    protocols). *)

val random_graph : ?seed:int -> n:int -> degree:int -> unit -> t
(** A connected random digraph over unconstrained nodes: a ring plus
    random extra edges until the average out-degree reaches [degree].
    @raise Invalid_argument if [n < 2] or [degree < 1]. *)
