(** A synthetic PlanetLab: the wide-area substrate the paper deploys
    on, modelled for the simulator.

    Real PlanetLab slices are replaced by nodes placed at the
    geographic coordinates of well-known PlanetLab-era sites; pairwise
    one-way latency derives from great-circle distance over fiber
    (plus a fixed per-hop overhead and deterministic jitter), and
    last-mile bandwidth follows the paper's own experimental setup —
    "per-node available bandwidth has been specified to a uniform
    distribution of 50 to 200 KBps". *)

type site = {
  site_name : string;
  lat : float;
  lon : float;
}

val sites : site list
(** The built-in catalogue (North America, Europe, Asia, Brazil —
    roughly PlanetLab's 2004 footprint). *)

type nd = {
  nid : Iov_msg.Node_id.t;
  site : site;
  bw : Iov_core.Bwspec.t;
}

type t

val generate :
  ?seed:int ->
  ?bw_range:float * float ->
  n:int ->
  unit ->
  t
(** [generate ~n ()] places [n] nodes round-robin over the sites.
    [bw_range] is the uniform per-node total-bandwidth range in
    bytes/second (default 50–200 KBps).
    @raise Invalid_argument if [n <= 0]. *)

val nodes : t -> nd list
val ids : t -> Iov_msg.Node_id.t list
val find : t -> Iov_msg.Node_id.t -> nd option

val latency : t -> Iov_msg.Node_id.t -> Iov_msg.Node_id.t -> float
(** One-way latency in seconds; symmetric; nodes sharing a site get
    the LAN floor. Unknown ids get a default of 40 ms. *)

val distance_km : site -> site -> float
(** Great-circle distance. *)
