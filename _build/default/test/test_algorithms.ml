(* Tests for the case-study algorithms: flood routing, sources, the
   coding suite, and the back-to-back pump. *)

module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module NI = Iov_msg.Node_id
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module Flood = Iov_algos.Flood
module Source = Iov_algos.Source
module Coding = Iov_algos.Coding
module Pump = Iov_algos.Pump

let id i = NI.synthetic i
let app = 1
let kbps x = x *. 1024.

let qtest ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* ------------------------------------------------------------------ *)
(* Flood (pure routing logic) *)

let test_flood_routes () =
  let f = Flood.create () in
  Flood.set_route f ~app ~upstreams:[ id 1 ] ~downstreams:[ id 2; id 3 ] ();
  Alcotest.(check int) "two downstreams" 2 (List.length (Flood.downstreams f ~app));
  Alcotest.(check int) "one upstream" 1 (List.length (Flood.upstreams f ~app));
  Alcotest.(check (list int)) "apps" [ app ] (Flood.apps f);
  Flood.clear_route f ~app;
  Alcotest.(check (list int)) "cleared" [] (Flood.apps f)

let test_flood_multi_app () =
  let f = Flood.create () in
  Flood.set_route f ~app:1 ~downstreams:[ id 2 ] ();
  Flood.set_route f ~app:2 ~downstreams:[ id 3 ] ();
  Alcotest.(check int) "two apps" 2 (List.length (Flood.apps f));
  Alcotest.(check bool) "separate routes" true
    (Flood.downstreams f ~app:1 <> Flood.downstreams f ~app:2)

(* ------------------------------------------------------------------ *)
(* Source pacing *)

let sink net i =
  ignore (Network.add_node net ~id:(id i) Alg.null)

let test_source_copy_same_stream () =
  (* both destinations receive the same byte count when symmetric *)
  let net = Network.create () in
  let s =
    Source.create ~payload_size:1000 ~app ~dests:[ id 2; id 3 ] ()
  in
  ignore
    (Network.add_node net
       ~bw:(Bwspec.total_only (kbps 100.))
       ~id:(id 1) (Source.algorithm s));
  sink net 2;
  sink net 3;
  Network.run net ~until:10.;
  let b2 = Network.app_bytes net (id 2) ~app in
  let b3 = Network.app_bytes net (id 3) ~app in
  Alcotest.(check bool) "both streams flowed" true (b2 > 0 && b3 > 0);
  Alcotest.(check bool) "roughly equal" true
    (Float.abs (float_of_int (b2 - b3)) /. float_of_int b2 < 0.1)

let test_source_rate_paced () =
  let net = Network.create () in
  let s =
    Source.create ~pacing:(`Rate (kbps 20.)) ~payload_size:1024 ~app
      ~dests:[ id 2 ] ()
  in
  ignore (Network.add_node net ~id:(id 1) (Source.algorithm s));
  sink net 2;
  Network.run net ~until:21.;
  let b = Network.app_bytes net (id 2) ~app in
  (* ~20 KBps for ~20 s *)
  let expect = 20. *. kbps 20. in
  Alcotest.(check bool) "CBR volume" true
    (Float.abs (float_of_int b -. expect) /. expect < 0.15)

let test_source_deploy_control () =
  let net = Network.create () in
  let s = Source.create ~auto:false ~app ~dests:[ id 2 ] () in
  ignore (Network.add_node net ~id:(id 1) (Source.algorithm s));
  sink net 2;
  Network.run net ~until:2.;
  Alcotest.(check int) "idle until deployed" 0 (Source.sent s);
  Network.inject_control net
    (Msg.control ~mtype:Mt.S_deploy ~origin:(id 99) ~app Bytes.empty)
    (id 1);
  Network.run net ~until:4.;
  Alcotest.(check bool) "deployed" true (Source.sent s > 0);
  let sent_at_stop = ref 0 in
  Network.inject_control net
    (Msg.control ~mtype:Mt.S_terminate ~origin:(id 99) ~app Bytes.empty)
    (id 1);
  Network.run net ~until:4.5;
  sent_at_stop := Source.sent s;
  Network.run net ~until:8.;
  Alcotest.(check int) "stopped" !sent_at_stop (Source.sent s)

let test_source_split_stripes () =
  let net = Network.create () in
  let log2 = ref [] and log3 = ref [] in
  let recorder log =
    Ialg.make ~name:"r" (fun _ m ->
        if m.Msg.mtype = Mt.Data then log := m.Msg.seq :: !log;
        Some Alg.Consume)
  in
  let s = Source.create ~mode:`Split ~payload_size:100 ~app ~dests:[ id 2; id 3 ] () in
  ignore (Network.add_node net ~id:(id 1) (Source.algorithm s));
  ignore (Network.add_node net ~id:(id 2) (recorder log2));
  ignore (Network.add_node net ~id:(id 3) (recorder log3));
  Network.run net ~until:1.;
  Alcotest.(check bool) "dest 0 gets even seqs" true
    (List.for_all (fun q -> q mod 2 = 0) !log2);
  Alcotest.(check bool) "dest 1 gets odd seqs" true
    (List.for_all (fun q -> q mod 2 = 1) !log3);
  Alcotest.(check bool) "both nonempty" true (!log2 <> [] && !log3 <> [])

(* ------------------------------------------------------------------ *)
(* Coding frames *)

let payload_gen =
  QCheck.map Bytes.of_string QCheck.(string_of_size (QCheck.Gen.int_bound 64))

let frame_props =
  [
    qtest "native frame roundtrip"
      QCheck.(pair (int_range 1 8) payload_gen)
      (fun (k, data) ->
        let index = k - 1 in
        match Coding.Frame.parse (Coding.Frame.native ~k ~index data) with
        | Some (`Native (k', i', d)) -> k' = k && i' = index && Bytes.equal d data
        | _ -> false);
    qtest "coded frame roundtrip"
      QCheck.(pair (array_of_size (QCheck.Gen.int_range 1 8) (int_range 0 255)) payload_gen)
      (fun (coeffs, data) ->
        match Coding.Frame.parse (Coding.Frame.coded ~coeffs data) with
        | Some (`Coded (c', d)) -> c' = coeffs && Bytes.equal d data
        | _ -> false);
    qtest "unframed payloads rejected" payload_gen (fun data ->
        match Coding.Frame.parse data with
        | Some _ ->
          (* only valid framings parse; a random payload may
             accidentally parse iff it starts with a valid tag *)
          Bytes.length data >= 2
          && (Bytes.get data 0 = '\000' || Bytes.get data 0 = '\001')
        | None -> true);
  ]

let test_frame_validation () =
  Alcotest.check_raises "bad index" (Invalid_argument "Frame.native: index")
    (fun () -> ignore (Coding.Frame.native ~k:2 ~index:2 Bytes.empty));
  Alcotest.(check bool) "data accessor" true
    (match Coding.Frame.data (Coding.Frame.native ~k:1 ~index:0 (Bytes.of_string "d")) with
    | Some d -> Bytes.to_string d = "d"
    | None -> false)

(* ------------------------------------------------------------------ *)
(* Coder / Decoder end-to-end in a small network *)

let test_coding_end_to_end () =
  (* butterfly: src splits to two relays; coder combines; decoder gets
     native stream 0 plus the coded stream and must decode stream 1 *)
  let net = Network.create ~buffer_capacity:200 () in
  let src = Coding.split_source ~payload_size:512 ~app ~dests:[ id 2; id 3 ] () in
  ignore (Network.add_node net ~id:(id 1) (Source.algorithm src));
  let r2 = Coding.Router.create ~app () in
  Coding.Router.route_native r2 ~index:0 [ id 4; id 5 ];
  ignore (Network.add_node net ~id:(id 2) (Coding.Router.algorithm r2));
  let r3 = Coding.Router.create ~app () in
  Coding.Router.route_native r3 ~index:1 [ id 4 ];
  ignore (Network.add_node net ~id:(id 3) (Coding.Router.algorithm r3));
  let coder = Coding.Coder.create ~k:2 ~app ~dests:[ id 5 ] () in
  ignore (Network.add_node net ~id:(id 4) (Coding.Coder.algorithm coder));
  let dec = Coding.Decoder_node.create ~k:2 ~app () in
  ignore (Network.add_node net ~id:(id 5) (Coding.Decoder_node.algorithm dec));
  Network.run net ~until:10.;
  Alcotest.(check bool) "coder emitted" true (Coding.Coder.emitted coder > 10);
  Alcotest.(check bool) "decoder completed generations" true
    (Coding.Decoder_node.decoded_generations dec > 10);
  Alcotest.(check bool) "decoded both streams' bytes" true
    (Coding.Decoder_node.decoded_bytes dec
    >= 2 * 512 * Coding.Decoder_node.decoded_generations dec)

let test_coder_held_bounded () =
  (* feeding only one of two streams: the coder holds but never emits *)
  let net = Network.create ~buffer_capacity:50 () in
  let make_payload ~dest_index:_ ~seq =
    Coding.Frame.native ~k:2 ~index:0 (Bytes.make 64 (Char.chr (seq land 0xff)))
  in
  let src = Source.create ~payload_size:64 ~make_payload ~app ~dests:[ id 2 ] () in
  ignore (Network.add_node net ~id:(id 1) (Source.algorithm src));
  let coder = Coding.Coder.create ~k:2 ~app ~dests:[ id 3 ] () in
  ignore (Network.add_node net ~id:(id 2) (Coding.Coder.algorithm coder));
  ignore (Network.add_node net ~id:(id 3) Alg.null);
  Network.run net ~until:5.;
  Alcotest.(check int) "nothing emitted" 0 (Coding.Coder.emitted coder);
  Alcotest.(check bool) "held packets accumulate" true (Coding.Coder.held coder > 0)

let test_coder_validation () =
  Alcotest.check_raises "zero coeff" (Invalid_argument "Coder.create: coeffs")
    (fun () ->
      ignore (Coding.Coder.create ~coeffs:[| 1; 0 |] ~k:2 ~app ~dests:[] ()))

(* ------------------------------------------------------------------ *)
(* Merge *)

module Merge = Iov_algos.Merge

let merge_props =
  [
    qtest "combine/split roundtrip"
      QCheck.(small_list (map Bytes.of_string (string_of_size (QCheck.Gen.int_bound 40))))
      (fun parts ->
        match Merge.split (Merge.combine parts) with
        | Some out ->
          List.length out = List.length parts
          && List.for_all2 Bytes.equal out parts
        | None -> false);
  ]

let test_merge_end_to_end () =
  (* one source striped over two relays that both feed the merge node
     (stream index = seq mod k, which is exactly how the split source
     numbers its stripes) *)
  let net = Network.create ~buffer_capacity:100 () in
  let striped =
    Coding.split_source ~payload_size:64 ~app ~dests:[ id 4; id 5 ] ()
  in
  ignore (Network.add_node net ~id:(id 1) (Source.algorithm striped));
  let relay up i =
    let f = Flood.create () in
    Flood.set_route f ~app ~upstreams:[ id up ] ~downstreams:[ id 3 ] ();
    ignore (Network.add_node net ~id:(id i) (Flood.algorithm f))
  in
  relay 1 4;
  relay 1 5;
  let m = Merge.create ~k:2 ~app ~dests:[ id 6 ] () in
  ignore (Network.add_node net ~id:(id 3) (Merge.algorithm m));
  let received = ref [] in
  let sink =
    Ialg.make ~name:"sink" (fun _ msg ->
        if msg.Msg.mtype = Mt.Data then received := msg :: !received;
        Some Alg.Consume)
  in
  ignore (Network.add_node net ~id:(id 6) sink);
  Network.run net ~until:10.;
  Alcotest.(check bool) "merged messages emitted" true (Merge.emitted m > 10);
  Alcotest.(check bool) "sink received merged stream" true
    (List.length !received > 10);
  (* every received payload splits into exactly two parts *)
  List.iter
    (fun (msg : Msg.t) ->
      match Merge.split msg.payload with
      | Some [ _; _ ] -> ()
      | Some l -> Alcotest.failf "expected 2 parts, got %d" (List.length l)
      | None -> Alcotest.fail "unsplittable merge payload")
    !received

(* ------------------------------------------------------------------ *)
(* Pump *)

let test_pump_delivers_to_all () =
  let net = Network.create () in
  let p = Pump.create ~app ~payload_size:256 () in
  let alg =
    Ialg.make ~name:"pump-driver"
      ~on_start:(fun ctx ->
        Pump.add_dest p ctx (id 2);
        Pump.add_dest p ctx (id 3);
        Pump.start p ctx)
      ~on_ready:(fun ctx peer -> Pump.on_ready p ctx peer)
      (fun _ _ -> Some Alg.Consume)
  in
  ignore (Network.add_node net ~id:(id 1) alg);
  sink net 2;
  sink net 3;
  Network.run net ~until:3.;
  Alcotest.(check bool) "running" true (Pump.running p);
  Alcotest.(check int) "two dests" 2 (List.length (Pump.dests p));
  Alcotest.(check bool) "delivered to both" true
    (Network.app_bytes net (id 2) ~app > 0
    && Network.app_bytes net (id 3) ~app > 0);
  Pump.stop p;
  let sent = Pump.sent p in
  Network.run net ~until:6.;
  Alcotest.(check int) "stopped" sent (Pump.sent p)

let test_pump_remove_dest () =
  let p = Pump.create ~app () in
  let net = Network.create () in
  let alg =
    Ialg.make ~name:"d"
      ~on_start:(fun ctx -> Pump.add_dest p ctx (id 2))
      (fun _ _ -> Some Alg.Consume)
  in
  ignore (Network.add_node net ~id:(id 1) alg);
  sink net 2;
  Network.run net ~until:0.5;
  Pump.remove_dest p (id 2);
  Alcotest.(check (list bool)) "empty dests" []
    (List.map (fun _ -> true) (Pump.dests p))

(* ------------------------------------------------------------------ *)
(* Rational (incentive-driven) relaying *)

module Rational = Iov_algos.Rational

(* a joiner that sends one sQuery to the relay and records the answer *)
let joiner net i ~relay ~app =
  let state = ref `Waiting in
  let alg =
    Ialg.make ~name:"joiner"
      ~on_start:(fun ctx ->
        ctx.Alg.send
          (Msg.control ~mtype:Mt.S_query ~origin:ctx.Alg.self ~app Bytes.empty)
          relay)
      (fun _ m ->
        (match m.Msg.mtype with
        | Mt.S_query_ack -> state := `Accepted
        | Mt.Custom k when k = Rational.refusal_kind -> state := `Rejected
        | _ -> ());
        Some Alg.Consume)
  in
  ignore (Network.add_node net ~id:(id i) alg);
  state

let test_rational_admission_cap () =
  let net = Network.create () in
  let r =
    Rational.create
      ~policy:
        { Rational.relay_budget = kbps 1000.; altruism = 1.0; max_children = 2 }
      ~app ()
  in
  ignore (Network.add_node net ~id:(id 1) (Rational.algorithm r));
  let j2 = joiner net 2 ~relay:(id 1) ~app in
  let j3 = joiner net 3 ~relay:(id 1) ~app in
  Network.run net ~until:1.;
  (* the first two got in; a third is refused by max_children *)
  Alcotest.(check bool) "j2 accepted" true (!j2 = `Accepted);
  Alcotest.(check bool) "j3 accepted" true (!j3 = `Accepted);
  let j4 = joiner net 4 ~relay:(id 1) ~app in
  Network.run net ~until:2.;
  Alcotest.(check bool) "j4 refused" true (!j4 = `Rejected);
  Alcotest.(check int) "stats" 2 (Rational.accepted r);
  Alcotest.(check int) "rejections" 1 (Rational.rejected r)

let test_rational_budget_admission () =
  (* no budget, no altruism: the relay admits exactly one child (it
     forwards what it receives, nothing more) *)
  let net = Network.create () in
  let src = Source.create ~pacing:(`Rate (kbps 30.)) ~payload_size:1024 ~app ~dests:[ id 2 ] () in
  ignore (Network.add_node net ~id:(id 1) (Source.algorithm src));
  let r =
    Rational.create
      ~policy:{ Rational.relay_budget = 1.; altruism = 0.; max_children = 10 }
      ~app ()
  in
  ignore (Network.add_node net ~id:(id 2) (Rational.algorithm r));
  Network.run net ~until:5. (* traffic flowing so rates are measurable *);
  let j3 = joiner net 3 ~relay:(id 2) ~app in
  Network.run net ~until:8.;
  Alcotest.(check bool) "first child admitted" true (!j3 = `Accepted);
  let j4 = joiner net 4 ~relay:(id 2) ~app in
  Network.run net ~until:12.;
  Alcotest.(check bool) "second child refused (no incentive)" true
    (!j4 = `Rejected);
  (* the admitted child is actually served *)
  Network.run net ~until:20.;
  Alcotest.(check bool) "child receives data" true
    (Network.app_bytes net (id 3) ~app > 0)

let test_rational_sheds_when_overloaded () =
  let net = Network.create () in
  (* the source starts slow, then the observer-style bandwidth change
     triples it; the relay's contribution overruns and it sheds *)
  let src = Source.create ~app ~dests:[ id 2 ] () in
  ignore
    (Network.add_node net
       ~bw:(Bwspec.make ~up:(kbps 10.) ())
       ~id:(id 1) (Source.algorithm src));
  let r =
    Rational.create
      ~policy:
        { Rational.relay_budget = kbps 20.; altruism = 0.2; max_children = 4 }
      ~app ()
  in
  ignore (Network.add_node net ~id:(id 2) (Rational.algorithm r));
  Network.run net ~until:3.;
  let j3 = joiner net 3 ~relay:(id 2) ~app in
  let j4 = joiner net 4 ~relay:(id 2) ~app in
  Network.run net ~until:8.;
  Alcotest.(check bool) "both admitted while cheap" true
    (!j3 = `Accepted && !j4 = `Accepted);
  Network.set_node_bandwidth net (id 1) (Bwspec.make ~up:(kbps 60.) ());
  Network.run net ~until:25.;
  Alcotest.(check bool) "a child was shed" true (Rational.shed r >= 1);
  Alcotest.(check bool) "but not all" true (List.length (Rational.children r) >= 1)

(* ------------------------------------------------------------------ *)
(* Ialgorithm utilities *)

let test_disseminate_probability () =
  let net = Network.create ~seed:5 () in
  let ctxr = ref None in
  ignore
    (Network.add_node net ~id:(id 1)
       (Ialg.make ~name:"g" ~on_start:(fun c -> ctxr := Some c) (fun _ _ ->
            Some Alg.Consume)));
  for i = 2 to 41 do
    sink net i
  done;
  Network.run net ~until:0.1;
  let ctx = Option.get !ctxr in
  let hosts = List.init 40 (fun i -> id (i + 2)) in
  let m = Msg.control ~mtype:(Mt.Custom 5) ~origin:(id 1) Bytes.empty in
  let all = Ialg.disseminate ctx m hosts in
  Alcotest.(check int) "p=1 sends to all" 40 all;
  let some = Ialg.disseminate ctx ~p:0.5 m hosts in
  Alcotest.(check bool) "p=0.5 sends a strict subset on average" true
    (some > 5 && some < 36);
  let none = Ialg.disseminate ctx ~p:0. m hosts in
  Alcotest.(check int) "p=0 sends none" 0 none

let test_default_handler_records_hosts () =
  let net = Network.create () in
  let ctxr = ref None in
  ignore
    (Network.add_node net ~id:(id 1)
       (Ialg.make ~name:"d" ~on_start:(fun c -> ctxr := Some c) (fun _ _ -> None)));
  Network.run net ~until:0.1;
  let ctx = Option.get !ctxr in
  let w = Iov_msg.Wire.W.create () in
  Iov_msg.Wire.W.nodes w [ id 7; id 8 ];
  let m =
    Msg.control ~mtype:Mt.Boot_reply ~origin:(id 99)
      (Iov_msg.Wire.W.contents w)
  in
  ignore (Ialg.default ctx m);
  let kh = ctx.Alg.known_hosts () in
  Alcotest.(check int) "hosts recorded" 2 (List.length kh)

let () =
  Alcotest.run "algorithms"
    [
      ( "flood",
        [
          Alcotest.test_case "route table" `Quick test_flood_routes;
          Alcotest.test_case "multi-app" `Quick test_flood_multi_app;
        ] );
      ( "source",
        [
          Alcotest.test_case "copy mode" `Quick test_source_copy_same_stream;
          Alcotest.test_case "CBR pacing" `Quick test_source_rate_paced;
          Alcotest.test_case "deploy/terminate" `Quick
            test_source_deploy_control;
          Alcotest.test_case "split striping" `Quick test_source_split_stripes;
        ] );
      ( "coding",
        frame_props
        @ [
            Alcotest.test_case "frame validation" `Quick test_frame_validation;
            Alcotest.test_case "end-to-end decode" `Quick
              test_coding_end_to_end;
            Alcotest.test_case "held without peers" `Quick
              test_coder_held_bounded;
            Alcotest.test_case "coder validation" `Quick test_coder_validation;
          ] );
      ( "pump",
        [
          Alcotest.test_case "delivers to all dests" `Quick
            test_pump_delivers_to_all;
          Alcotest.test_case "remove dest" `Quick test_pump_remove_dest;
        ] );
      ( "merge",
        merge_props
        @ [ Alcotest.test_case "end-to-end merging" `Quick test_merge_end_to_end ]
      );
      ( "rational",
        [
          Alcotest.test_case "max-children admission" `Quick
            test_rational_admission_cap;
          Alcotest.test_case "budget admission" `Quick
            test_rational_budget_admission;
          Alcotest.test_case "sheds when overloaded" `Quick
            test_rational_sheds_when_overloaded;
        ] );
      ( "ialgorithm",
        [
          Alcotest.test_case "disseminate probability" `Quick
            test_disseminate_probability;
          Alcotest.test_case "default records KnownHosts" `Quick
            test_default_handler_records_hosts;
        ] );
    ]
