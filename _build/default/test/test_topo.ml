(* Tests for topology and workload generators. *)

module Topo = Iov_topo.Topo
module Planetlab = Iov_topo.Planetlab
module Bwspec = Iov_core.Bwspec
module NI = Iov_msg.Node_id

let qtest ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* ------------------------------------------------------------------ *)
(* Fixed graphs *)

let test_chain () =
  let t = Topo.chain ~n:5 in
  Alcotest.(check int) "5 nodes" 5 (List.length (Topo.names t));
  Alcotest.(check int) "4 edges" 4 (List.length t.Topo.edges);
  Alcotest.(check (list string)) "n1 forwards to n2" [ "n2" ]
    (Topo.downstreams t "n1");
  Alcotest.(check (list string)) "n5 is the sink" [] (Topo.downstreams t "n5");
  Alcotest.(check (list string)) "n5's upstream" [ "n4" ]
    (Topo.upstreams t "n5");
  Alcotest.check_raises "n >= 2"
    (Invalid_argument "Topo.chain: need at least two nodes") (fun () ->
      ignore (Topo.chain ~n:1))

let test_fig6_shape () =
  let t = Topo.fig6 () in
  Alcotest.(check int) "7 nodes" 7 (List.length (Topo.names t));
  Alcotest.(check int) "8 edges" 8 (List.length t.Topo.edges);
  Alcotest.(check (list string)) "A's downstreams" [ "B"; "C" ]
    (Topo.downstreams t "A");
  Alcotest.(check (list string)) "D's upstreams" [ "B"; "C" ]
    (Topo.upstreams t "D");
  (* A's cap is the paper's 400 KBps *)
  let a = Topo.spec t "A" in
  Alcotest.(check (float 1.)) "A capped" (400. *. 1024.)
    (Bwspec.last_mile a.Topo.bw);
  (* F remains reachable without B (the Fig. 6(d) property) *)
  Alcotest.(check bool) "E->F exists" true
    (List.mem ("E", "F") t.Topo.edges)

let test_fig8_shape () =
  let t = Topo.fig8 () in
  Alcotest.(check int) "9 edges" 9 (List.length t.Topo.edges);
  Alcotest.(check bool) "C reaches G natively" true
    (List.mem ("C", "G") t.Topo.edges)

let test_fig9_caps () =
  let t = Topo.fig9 () in
  Alcotest.(check int) "5 nodes" 5 (List.length (Topo.names t));
  Alcotest.(check int) "no prebuilt edges" 0 (List.length t.Topo.edges);
  let cap name = Bwspec.last_mile (Topo.spec t name).Topo.bw /. 1024. in
  List.iter
    (fun (name, expect) ->
      Alcotest.(check (float 0.1)) (name ^ " cap") expect (cap name))
    [ ("S", 200.); ("A", 500.); ("B", 100.); ("C", 200.); ("D", 100.) ]

let test_name_lookup () =
  let t = Topo.fig6 () in
  let a = Topo.node t "A" in
  Alcotest.(check string) "name_of inverts node" "A" (Topo.name_of t a);
  Alcotest.check_raises "unknown name" Not_found (fun () ->
      ignore (Topo.node t "Z"))

(* ------------------------------------------------------------------ *)
(* Random graphs *)

let random_graph_props =
  [
    qtest "ids are distinct" (QCheck.int_range 2 40) (fun n ->
        let t = Topo.random_graph ~n ~degree:2 () in
        let ids = List.map (fun name -> Topo.node t name) (Topo.names t) in
        List.length (List.sort_uniq NI.compare ids) = n);
    qtest "contains the connectivity ring" (QCheck.int_range 2 30) (fun n ->
        QCheck.assume (n >= 2);
        let t = Topo.random_graph ~n ~degree:2 () in
        List.for_all
          (fun i ->
            List.mem
              ( Printf.sprintf "n%d" (i + 1),
                Printf.sprintf "n%d" (((i + 1) mod n) + 1) )
              t.Topo.edges)
          (List.init n (fun i -> i)));
    qtest "no self loops" (QCheck.int_range 2 30) (fun n ->
        let t = Topo.random_graph ~n ~degree:3 () in
        List.for_all (fun (a, b) -> a <> b) t.Topo.edges);
    qtest "deterministic under seed" (QCheck.int_range 2 20) (fun n ->
        Topo.random_graph ~seed:9 ~n ~degree:2 ()
        = Topo.random_graph ~seed:9 ~n ~degree:2 ());
  ]

(* ------------------------------------------------------------------ *)
(* Synthetic PlanetLab *)

let test_pl_generation () =
  let pl = Planetlab.generate ~n:40 () in
  Alcotest.(check int) "40 nodes" 40 (List.length (Planetlab.nodes pl));
  Alcotest.(check int) "ids list" 40 (List.length (Planetlab.ids pl));
  (* caps within the paper's uniform range *)
  List.iter
    (fun nd ->
      let c = Bwspec.last_mile nd.Planetlab.bw /. 1024. in
      if c < 50. || c > 200. then
        Alcotest.failf "cap %.1f outside [50,200]" c)
    (Planetlab.nodes pl)

let test_pl_latency_properties () =
  let pl = Planetlab.generate ~n:32 () in
  let ids = Planetlab.ids pl in
  let a = List.nth ids 0 and b = List.nth ids 5 in
  let lat = Planetlab.latency pl a b in
  Alcotest.(check bool) "positive" true (lat > 0.);
  Alcotest.(check bool) "symmetric" true (Planetlab.latency pl b a = lat);
  Alcotest.(check bool) "wide-area scale (under 300ms)" true (lat < 0.3);
  (* same-site nodes get the LAN floor; cross-continental pairs are
     slower than same-continent ones on average *)
  Alcotest.(check (float 0.)) "unknown default" 0.04
    (Planetlab.latency pl (NI.synthetic 9999) a)

let test_pl_distance () =
  let site name lat lon =
    { Planetlab.site_name = name; lat; lon }
  in
  let toronto = site "t" 43.66 (-79.40) in
  let tokyo = site "k" 35.71 139.76 in
  let d = Planetlab.distance_km toronto tokyo in
  (* great-circle Toronto-Tokyo is ~10,300 km *)
  Alcotest.(check bool) "plausible distance" true (d > 9500. && d < 11500.);
  Alcotest.(check (float 0.001)) "zero to self" 0.
    (Planetlab.distance_km toronto toronto)

let test_pl_determinism () =
  let p1 = Planetlab.generate ~seed:4 ~n:10 () in
  let p2 = Planetlab.generate ~seed:4 ~n:10 () in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "same ids" true
        (NI.equal a.Planetlab.nid b.Planetlab.nid);
      Alcotest.(check (float 0.)) "same caps"
        (Bwspec.last_mile a.Planetlab.bw)
        (Bwspec.last_mile b.Planetlab.bw))
    (Planetlab.nodes p1) (Planetlab.nodes p2)

let test_pl_validation () =
  Alcotest.check_raises "n > 0" (Invalid_argument "Planetlab.generate: n")
    (fun () -> ignore (Planetlab.generate ~n:0 ()))

let () =
  Alcotest.run "topo"
    [
      ( "fixed",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "fig6 graph" `Quick test_fig6_shape;
          Alcotest.test_case "fig8 graph" `Quick test_fig8_shape;
          Alcotest.test_case "fig9 caps" `Quick test_fig9_caps;
          Alcotest.test_case "name lookup" `Quick test_name_lookup;
        ] );
      ("random", random_graph_props);
      ( "planetlab",
        [
          Alcotest.test_case "generation" `Quick test_pl_generation;
          Alcotest.test_case "latency model" `Quick
            test_pl_latency_properties;
          Alcotest.test_case "great-circle distance" `Quick test_pl_distance;
          Alcotest.test_case "determinism" `Quick test_pl_determinism;
          Alcotest.test_case "validation" `Quick test_pl_validation;
        ] );
    ]
