(* Tests for content-based networking: events, predicates, and routing
   through a router overlay. *)

module Network = Iov_core.Network
module Content = Iov_algos.Content
module Event = Content.Event
module Predicate = Content.Predicate
module Router = Content.Router
module NI = Iov_msg.Node_id
module Msg = Iov_msg.Message

let qtest ?(count = 300) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let app = 6

(* ------------------------------------------------------------------ *)
(* Events *)

let event_gen =
  QCheck.small_list QCheck.(pair (int_bound 50) (int_range (-1000) 1000))

let event_props =
  [
    qtest "payload roundtrip" event_gen (fun e ->
        Event.of_payload (Event.to_payload e) = Some e);
    qtest "get finds first binding" event_gen (fun e ->
        List.for_all (fun (k, _) -> Event.get e k = List.assoc_opt k e) e);
  ]

let test_event_malformed () =
  Alcotest.(check bool) "garbage rejected or empty" true
    (match Event.of_payload (Bytes.of_string "zz") with
    | None -> true
    | Some _ -> false)

(* ------------------------------------------------------------------ *)
(* Predicates *)

let test_predicate_ops () =
  let e = [ (1, 10); (2, -5) ] in
  let check name pred expect =
    Alcotest.(check bool) name expect (Predicate.matches pred e)
  in
  check "eq true" [ Predicate.atom 1 Predicate.Eq 10 ] true;
  check "eq false" [ Predicate.atom 1 Predicate.Eq 11 ] false;
  check "ne" [ Predicate.atom 1 Predicate.Ne 11 ] true;
  check "lt" [ Predicate.atom 2 Predicate.Lt 0 ] true;
  check "le boundary" [ Predicate.atom 1 Predicate.Le 10 ] true;
  check "gt" [ Predicate.atom 1 Predicate.Gt 9 ] true;
  check "ge boundary" [ Predicate.atom 1 Predicate.Ge 10 ] true;
  check "conjunction" [ Predicate.atom 1 Predicate.Gt 5; Predicate.atom 2 Predicate.Lt 0 ] true;
  check "conjunction fails" [ Predicate.atom 1 Predicate.Gt 5; Predicate.atom 2 Predicate.Gt 0 ] false;
  check "absent attribute" [ Predicate.atom 9 Predicate.Eq 0 ] false;
  check "empty matches all" [] true

(* ------------------------------------------------------------------ *)
(* Routing *)

(* a line of three routers with a subscriber at each end *)
let build_line () =
  let net = Network.create () in
  let mk neighbors =
    let r = Router.create ~app () in
    List.iter (fun n -> Router.add_neighbor r (NI.synthetic n)) neighbors;
    r
  in
  let r1 = mk [ 2 ] and r2 = mk [ 1; 3 ] and r3 = mk [ 2 ] in
  (net, r1, r2, r3)

let add_routers net rs =
  List.iteri
    (fun i r ->
      ignore
        (Network.add_node net ~id:(NI.synthetic (i + 1)) (Router.algorithm r)))
    rs

let publish net ~seq ~via event =
  let m =
    Msg.data ~origin:(NI.synthetic 9) ~app ~seq
      (Router.publish_payload event)
  in
  (* inject as if a local client handed it to its access router *)
  let pub = NI.synthetic 8 in
  (match Network.find_node net pub with
  | Some _ -> ()
  | None -> ignore (Network.add_node net ~id:pub Iov_core.Algorithm.null));
  let ctx = Network.ctx (Network.node net pub) in
  ctx.Iov_core.Algorithm.send m via

let test_routing_by_content () =
  let net, r1, r2, r3 = build_line () in
  Router.subscribe r1 ~id:1 [ Predicate.atom 1 Predicate.Eq 7 ];
  Router.subscribe r3 ~id:2 [ Predicate.atom 1 Predicate.Gt 100 ];
  add_routers net [ r1; r2; r3 ];
  Network.run net ~until:3.;
  publish net ~seq:0 ~via:(NI.synthetic 2) [ (1, 7) ];
  publish net ~seq:1 ~via:(NI.synthetic 2) [ (1, 500) ];
  publish net ~seq:2 ~via:(NI.synthetic 2) [ (1, 50) ];
  Network.run net ~until:6.;
  Alcotest.(check int) "r1 got the eq event" 1 (Router.delivered r1);
  Alcotest.(check int) "r3 got the gt event" 1 (Router.delivered r3);
  Alcotest.(check int) "r2 delivered nothing locally" 0 (Router.delivered r2)

let test_subscriptions_flood () =
  let net, r1, r2, r3 = build_line () in
  Router.subscribe r1 ~id:5 [ Predicate.atom 1 Predicate.Eq 1 ];
  add_routers net [ r1; r2; r3 ];
  Network.run net ~until:3.;
  Alcotest.(check int) "r2 learned it" 1 (Router.known_subscriptions r2);
  Alcotest.(check int) "r3 learned it" 1 (Router.known_subscriptions r3)

let test_multi_hop_delivery () =
  let net, r1, r2, r3 = build_line () in
  Router.subscribe r1 ~id:6 [] (* match everything *);
  add_routers net [ r1; r2; r3 ];
  Network.run net ~until:3.;
  (* publish at the FAR end: must traverse r3 -> r2 -> r1 *)
  publish net ~seq:0 ~via:(NI.synthetic 3) [ (4, 4) ];
  Network.run net ~until:6.;
  Alcotest.(check int) "delivered across two hops" 1 (Router.delivered r1);
  Alcotest.(check bool) "intermediate forwarded" true (Router.forwarded r2 >= 1)

let test_duplicate_suppression () =
  (* a triangle: the same event reaches r3 via two paths; it must be
     delivered once *)
  let net = Network.create () in
  let mk neighbors =
    let r = Router.create ~app () in
    List.iter (fun n -> Router.add_neighbor r (NI.synthetic n)) neighbors;
    r
  in
  let r1 = mk [ 2; 3 ] and r2 = mk [ 1; 3 ] and r3 = mk [ 1; 2 ] in
  Router.subscribe r3 ~id:7 [];
  add_routers net [ r1; r2; r3 ];
  Network.run net ~until:3.;
  publish net ~seq:0 ~via:(NI.synthetic 1) [ (1, 1) ];
  Network.run net ~until:6.;
  Alcotest.(check int) "exactly once" 1 (Router.delivered r3)

let test_delivered_events_recorded () =
  let net, r1, r2, r3 = build_line () in
  Router.subscribe r1 ~id:8 [ Predicate.atom 1 Predicate.Ge 0 ];
  add_routers net [ r1; r2; r3 ];
  Network.run net ~until:3.;
  publish net ~seq:0 ~via:(NI.synthetic 1) [ (1, 42) ];
  Network.run net ~until:5.;
  match Router.delivered_events r1 with
  | [ e ] -> Alcotest.(check (option int)) "content" (Some 42) (Event.get e 1)
  | l -> Alcotest.failf "expected one event, got %d" (List.length l)

let () =
  Alcotest.run "content"
    [
      ( "events",
        event_props
        @ [ Alcotest.test_case "malformed" `Quick test_event_malformed ] );
      ( "predicates",
        [ Alcotest.test_case "operators" `Quick test_predicate_ops ] );
      ( "routing",
        [
          Alcotest.test_case "routes by content" `Quick
            test_routing_by_content;
          Alcotest.test_case "subscriptions flood" `Quick
            test_subscriptions_flood;
          Alcotest.test_case "multi-hop delivery" `Quick
            test_multi_hop_delivery;
          Alcotest.test_case "duplicate suppression" `Quick
            test_duplicate_suppression;
          Alcotest.test_case "events recorded" `Quick
            test_delivered_events_recorded;
        ] );
    ]
