(* Tests for the Chord-style DHT built on the algorithm interface. *)

module Network = Iov_core.Network
module Observer = Iov_observer.Observer
module Dht = Iov_algos.Dht
module NI = Iov_msg.Node_id

let qtest ?(count = 300) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* ------------------------------------------------------------------ *)
(* Ring arithmetic *)

let ring_props =
  [
    qtest "ids within the ring" QCheck.small_string (fun s ->
        let h = Dht.hash_key s in
        h >= 0 && h < 1 lsl Dht.ring_bits);
    qtest "hash deterministic" QCheck.small_string (fun s ->
        Dht.hash_key s = Dht.hash_key s);
    qtest "between covers full circle when a=b"
      QCheck.(pair (int_bound 65535) (int_bound 65535))
      (fun (x, a) -> Dht.between x a a);
    qtest "between handles wraparound"
      QCheck.(triple (int_bound 65535) (int_bound 65535) (int_bound 65535))
      (fun (x, a, b) ->
        QCheck.assume (a <> b);
        (* x in (a,b] xor x in (b,a] — the two arcs partition the ring
           minus the endpoints' overlap rules *)
        if x = b then Dht.between x a b
        else if x = a then Dht.between x b a
        else Dht.between x a b <> Dht.between x b a);
  ]

let test_node_ids_spread () =
  let ids = List.init 50 (fun i -> Dht.ring_id (NI.synthetic i)) in
  let distinct = List.sort_uniq Int.compare ids in
  Alcotest.(check bool) "few collisions among 50 nodes" true
    (List.length distinct >= 48)

(* ------------------------------------------------------------------ *)
(* A live ring *)

(* n nodes join one per 2 s (through observer bootstrap), then the
   ring stabilizes *)
let build_ring ?(seed = 42) n =
  let net = Network.create ~seed () in
  let obs = Observer.create ~boot_subset:4 net in
  let nodes =
    List.init n (fun i ->
        let d = Dht.create () in
        let nid = NI.synthetic (i + 1) in
        ignore
          (Iov_dsim.Sim.schedule_at (Network.sim net)
             ~time:(float_of_int (2 * i))
             (fun () ->
               ignore
                 (Network.add_node net ~observer:(Observer.id obs) ~id:nid
                    (Dht.algorithm d))));
        (nid, d))
  in
  Network.run net ~until:(float_of_int (2 * n) +. 30.);
  (net, nodes)

let ring_is_consistent nodes =
  (* sort members by ring id; each node's successor must be the next
     member clockwise *)
  let members =
    List.map (fun (nid, d) -> (Dht.id_of d, nid, d)) nodes
    |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
  in
  let arr = Array.of_list members in
  let n = Array.length arr in
  Array.iteri
    (fun i (_, nid, d) ->
      let _, expect, _ = arr.((i + 1) mod n) in
      match Dht.successor d with
      | Some s ->
        if not (NI.equal s expect) then
          Alcotest.failf "%s: successor %s, expected %s" (NI.to_string nid)
            (NI.to_string s) (NI.to_string expect)
      | None -> Alcotest.failf "%s has no successor" (NI.to_string nid))
    arr

let test_ring_stabilizes () =
  let _, nodes = build_ring 8 in
  ring_is_consistent nodes

let test_predecessors_set () =
  let _, nodes = build_ring 6 in
  List.iter
    (fun (nid, d) ->
      Alcotest.(check bool)
        (NI.to_string nid ^ " has a predecessor")
        true
        (Dht.predecessor d <> None))
    nodes

let test_put_get_roundtrip () =
  let net, nodes = build_ring 8 in
  let _, d0 = List.hd nodes in
  let nid0 = fst (List.hd nodes) in
  let ctx = Network.ctx (Network.node net nid0) in
  let keys = List.init 20 (fun i -> Printf.sprintf "key-%d" i) in
  List.iter (fun k -> Dht.put d0 ctx ~key:k ("value of " ^ k)) keys;
  Network.run net ~until:(Network.now net +. 10.);
  (* every key is stored somewhere, exactly once *)
  let copies key =
    List.fold_left
      (fun acc (_, d) ->
        acc
        + List.length (List.filter (fun (k, _) -> k = key) (Dht.stored d)))
      0 nodes
  in
  List.iter
    (fun k -> Alcotest.(check int) (k ^ " stored once") 1 (copies k))
    keys;
  (* lookups from a different node return the values *)
  let _, d_last = List.nth nodes 7 in
  let nid_last = fst (List.nth nodes 7) in
  let ctx_last = Network.ctx (Network.node net nid_last) in
  let answers = ref [] in
  List.iter
    (fun k ->
      Dht.get d_last ctx_last ~key:k (fun v -> answers := (k, v) :: !answers))
    keys;
  Network.run net ~until:(Network.now net +. 10.);
  Alcotest.(check int) "all lookups answered" 20 (List.length !answers);
  List.iter
    (fun (k, v) ->
      Alcotest.(check (option string)) ("lookup " ^ k) (Some ("value of " ^ k)) v)
    !answers

let test_get_missing_key () =
  let net, nodes = build_ring 4 in
  let nid0 = fst (List.hd nodes) in
  let _, d0 = List.hd nodes in
  let ctx = Network.ctx (Network.node net nid0) in
  let answer = ref (Some "unset") in
  Dht.get d0 ctx ~key:"never-stored" (fun v -> answer := v);
  Network.run net ~until:(Network.now net +. 5.);
  Alcotest.(check (option string)) "miss returns None" None !answer

let test_keys_migrate_to_joiner () =
  (* store everything on a small ring, then add members: ownership
     moves so that the ring stays consistent and no key is lost *)
  let net = Network.create () in
  let obs = Observer.create ~boot_subset:4 net in
  let mk i =
    let d = Dht.create () in
    let nid = NI.synthetic (i + 1) in
    (nid, d)
  in
  let first = mk 0 in
  ignore
    (Network.add_node net ~observer:(Observer.id obs) ~id:(fst first)
       (Dht.algorithm (snd first)));
  Network.run net ~until:2.;
  let ctx = Network.ctx (Network.node net (fst first)) in
  let keys = List.init 12 (fun i -> Printf.sprintf "mig-%d" i) in
  List.iter (fun k -> Dht.put (snd first) ctx ~key:k k) keys;
  Network.run net ~until:4.;
  let late = List.init 3 (fun i -> mk (i + 1)) in
  List.iteri
    (fun i (nid, d) ->
      ignore
        (Iov_dsim.Sim.schedule_at (Network.sim net)
           ~time:(5. +. (3. *. float_of_int i))
           (fun () ->
             ignore
               (Network.add_node net ~observer:(Observer.id obs) ~id:nid
                  (Dht.algorithm d)))))
    late;
  Network.run net ~until:40.;
  let nodes = first :: late in
  let copies key =
    List.fold_left
      (fun acc (_, d) ->
        acc
        + List.length (List.filter (fun (k, _) -> k = key) (Dht.stored d)))
      0 nodes
  in
  List.iter
    (fun k -> Alcotest.(check int) (k ^ " survives joins") 1 (copies k))
    keys;
  (* at least one key actually moved off the founding node *)
  let moved =
    List.exists (fun (_, d) -> Dht.stored d <> []) late
  in
  Alcotest.(check bool) "some keys migrated" true moved

let test_ring_heals_after_failure () =
  let net, nodes = build_ring 6 in
  ring_is_consistent nodes;
  (* kill a random non-founder member; stabilization must close the
     ring over the survivors *)
  let victim = fst (List.nth nodes 3) in
  Network.terminate net victim;
  Network.run net ~until:(Network.now net +. 40.);
  let survivors =
    List.filter (fun (nid, _) -> not (NI.equal nid victim)) nodes
  in
  ring_is_consistent survivors;
  (* lookups still complete on the healed ring *)
  let nid0 = fst (List.hd survivors) in
  let _, d0 = List.hd survivors in
  let ctx = Network.ctx (Network.node net nid0) in
  let answered = ref 0 in
  for i = 0 to 9 do
    Dht.get d0 ctx ~key:(Printf.sprintf "heal-%d" i) (fun _ -> incr answered)
  done;
  Network.run net ~until:(Network.now net +. 10.);
  Alcotest.(check int) "lookups on the healed ring" 10 !answered

let test_lookup_uses_multiple_hops () =
  let net, nodes = build_ring 10 in
  let nid0 = fst (List.hd nodes) in
  let _, d0 = List.hd nodes in
  let ctx = Network.ctx (Network.node net nid0) in
  let got = ref 0 in
  for i = 0 to 14 do
    Dht.get d0 ctx ~key:(Printf.sprintf "probe-%d" i) (fun _ -> incr got)
  done;
  Network.run net ~until:(Network.now net +. 10.);
  Alcotest.(check int) "all probes answered" 15 !got;
  let total_hops =
    List.fold_left (fun acc (_, d) -> acc + Dht.hops_served d) 0 nodes
  in
  Alcotest.(check bool) "routing crossed other nodes" true (total_hops > 0)

let () =
  Alcotest.run "dht"
    [
      ( "ring-arithmetic",
        ring_props
        @ [ Alcotest.test_case "id spread" `Quick test_node_ids_spread ] );
      ( "ring",
        [
          Alcotest.test_case "stabilizes to the sorted ring" `Quick
            test_ring_stabilizes;
          Alcotest.test_case "predecessors converge" `Quick
            test_predecessors_set;
        ] );
      ( "storage",
        [
          Alcotest.test_case "put/get roundtrip" `Quick test_put_get_roundtrip;
          Alcotest.test_case "missing key" `Quick test_get_missing_key;
          Alcotest.test_case "keys migrate on join" `Quick
            test_keys_migrate_to_joiner;
          Alcotest.test_case "multi-hop lookups" `Quick
            test_lookup_uses_multiple_hops;
          Alcotest.test_case "ring heals after a failure" `Quick
            test_ring_heals_after_failure;
        ] );
    ]
