(* Tests for the bounded circular queue (the engine's buffers). *)

module Cq = Iov_core.Cqueue

let qtest ?(count = 300) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let test_basic () =
  let q = Cq.create ~capacity:3 in
  Alcotest.(check bool) "empty" true (Cq.is_empty q);
  Alcotest.(check int) "capacity" 3 (Cq.capacity q);
  Alcotest.(check bool) "push 1" true (Cq.push q 1);
  Alcotest.(check bool) "push 2" true (Cq.push q 2);
  Alcotest.(check bool) "push 3" true (Cq.push q 3);
  Alcotest.(check bool) "full rejects" false (Cq.push q 4);
  Alcotest.(check (option int)) "peek" (Some 1) (Cq.peek q);
  Alcotest.(check (option int)) "pop" (Some 1) (Cq.pop q);
  Alcotest.(check int) "length" 2 (Cq.length q);
  Alcotest.(check int) "available" 1 (Cq.available q)

let test_wraparound () =
  let q = Cq.create ~capacity:2 in
  for round = 0 to 9 do
    Alcotest.(check bool) "push a" true (Cq.push q (2 * round));
    Alcotest.(check bool) "push b" true (Cq.push q ((2 * round) + 1));
    Alcotest.(check (option int)) "pop a" (Some (2 * round)) (Cq.pop q);
    Alcotest.(check (option int)) "pop b" (Some ((2 * round) + 1)) (Cq.pop q)
  done;
  Alcotest.(check bool) "empty at end" true (Cq.is_empty q)

let test_iter_and_list () =
  let q = Cq.create ~capacity:5 in
  List.iter (fun x -> ignore (Cq.push q x)) [ 1; 2; 3 ];
  ignore (Cq.pop q);
  ignore (Cq.push q 4);
  Alcotest.(check (list int)) "to_list in order" [ 2; 3; 4 ] (Cq.to_list q);
  let sum = ref 0 in
  Cq.iter (fun x -> sum := !sum + x) q;
  Alcotest.(check int) "iter visits all" 9 !sum;
  Alcotest.(check int) "iter does not consume" 3 (Cq.length q)

let test_clear_and_drop () =
  let q = Cq.create ~capacity:4 in
  List.iter (fun x -> ignore (Cq.push q x)) [ 1; 2 ];
  Cq.drop q;
  Alcotest.(check (option int)) "drop removed head" (Some 2) (Cq.peek q);
  Cq.clear q;
  Alcotest.(check bool) "cleared" true (Cq.is_empty q);
  Cq.drop q (* no-op on empty *);
  Alcotest.(check bool) "still empty" true (Cq.is_empty q)

let test_validation () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Cqueue.create: capacity") (fun () ->
      ignore (Cq.create ~capacity:0))

(* model-based property: a Cqueue behaves like a bounded FIFO list *)
let ops_gen =
  QCheck.(
    small_list
      (oneof [ map (fun x -> `Push x) small_nat; Gen.return `Pop |> make ]))

let model_prop ops =
  let cap = 4 in
  let q = Cq.create ~capacity:cap in
  let model = ref [] in
  List.for_all
    (fun op ->
      match op with
      | `Push x ->
        let accepted = Cq.push q x in
        let expect = List.length !model < cap in
        if accepted then model := !model @ [ x ];
        accepted = expect && Cq.length q = List.length !model
      | `Pop -> (
        let got = Cq.pop q in
        match !model with
        | [] -> got = None
        | h :: tl ->
          model := tl;
          got = Some h))
    ops

let () =
  Alcotest.run "cqueue"
    [
      ( "cqueue",
        [
          Alcotest.test_case "push/pop/peek" `Quick test_basic;
          Alcotest.test_case "wraparound" `Quick test_wraparound;
          Alcotest.test_case "iter and to_list" `Quick test_iter_and_list;
          Alcotest.test_case "clear and drop" `Quick test_clear_and_drop;
          Alcotest.test_case "validation" `Quick test_validation;
          qtest ~count:500 "bounded FIFO model" ops_gen model_prop;
        ] );
    ]
