(* Shape tests for the paper reproductions: each experiment must show
   the qualitative result the paper reports. Workloads are scaled down
   where the full run is slow; the bench harness runs them at paper
   scale. *)

let kbps x = x *. 1024.

let close ~tol expect got =
  Float.abs (got -. expect) <= tol *. expect

let rate_of rates a b =
  match List.assoc_opt (a, b) rates with
  | Some r -> r
  | None -> Alcotest.failf "no edge %s->%s" a b

(* ------------------------------------------------------------------ *)
(* Fig. 5 *)

let test_fig5_shape () =
  let r = Iov_exp.Fig5.run ~quiet:true ~sizes:[ 2; 3; 8 ] ~measure_for:2. () in
  let find n =
    List.find (fun (row : Iov_exp.Fig5.row) -> row.nodes = n) r.Iov_exp.Fig5.rows
  in
  let mb = 1024. *. 1024. in
  (* anchor: 48.4 MBps total at 2 nodes *)
  Alcotest.(check bool) "2-node anchor" true
    (close ~tol:0.05 (48.4 *. mb) (find 2).total);
  (* total bandwidth decreases with virtualization degree *)
  Alcotest.(check bool) "monotone decline" true
    ((find 2).total > (find 3).total && (find 3).total > (find 8).total);
  (* one switch costs only a few percent *)
  Alcotest.(check bool) "single-switch overhead under 15%" true
    (r.Iov_exp.Fig5.switch_overhead_pct < 15.)

(* ------------------------------------------------------------------ *)
(* Fig. 6 *)

let test_fig6_phases () =
  let r = Iov_exp.Fig6.run ~quiet:true () in
  let a = r.Iov_exp.Fig6.a.Iov_exp.Fig6.rates in
  (* (a): A's 400 split in two; D forwards 400 to E *)
  Alcotest.(check bool) "AB ~200" true (close ~tol:0.05 (kbps 200.) (rate_of a "A" "B"));
  Alcotest.(check bool) "AC ~200" true (close ~tol:0.05 (kbps 200.) (rate_of a "A" "C"));
  Alcotest.(check bool) "DE ~400" true (close ~tol:0.05 (kbps 400.) (rate_of a "D" "E"));
  Alcotest.(check bool) "EG ~400" true (close ~tol:0.05 (kbps 400.) (rate_of a "E" "G"));
  (* (b): flow conservation at D and global back pressure *)
  let b = r.Iov_exp.Fig6.b.Iov_exp.Fig6.rates in
  List.iter
    (fun (x, y) ->
      Alcotest.(check bool)
        (x ^ y ^ " ~15")
        true
        (close ~tol:0.12 (kbps 15.) (rate_of b x y)))
    [ ("A", "B"); ("A", "C"); ("B", "D"); ("B", "F"); ("C", "D") ];
  List.iter
    (fun (x, y) ->
      Alcotest.(check bool)
        (x ^ y ^ " ~30")
        true
        (close ~tol:0.12 (kbps 30.) (rate_of b x y)))
    [ ("D", "E"); ("E", "F"); ("E", "G") ];
  (* (c): B's links closed, CD adjusts to 30, EG undisturbed *)
  let c = r.Iov_exp.Fig6.c.Iov_exp.Fig6.rates in
  Alcotest.(check bool) "AB closed" true (Iov_exp.Fig6.closed (rate_of c "A" "B"));
  Alcotest.(check bool) "BD closed" true (Iov_exp.Fig6.closed (rate_of c "B" "D"));
  Alcotest.(check bool) "BF closed" true (Iov_exp.Fig6.closed (rate_of c "B" "F"));
  Alcotest.(check bool) "CD ~30" true (close ~tol:0.12 (kbps 30.) (rate_of c "C" "D"));
  (* (d): G closed; F still receives via C, D, E *)
  let d = r.Iov_exp.Fig6.d.Iov_exp.Fig6.rates in
  Alcotest.(check bool) "EG closed" true (Iov_exp.Fig6.closed (rate_of d "E" "G"));
  Alcotest.(check bool) "EF alive ~30" true
    (close ~tol:0.12 (kbps 30.) (rate_of d "E" "F"))

(* ------------------------------------------------------------------ *)
(* Fig. 7 *)

let test_fig7_localization () =
  let r = Iov_exp.Fig7.run ~quiet:true () in
  let a = r.Iov_exp.Fig7.a in
  (* large buffers: only D's downstream chain sees the 30 KBps cap *)
  Alcotest.(check bool) "AB stays 200" true
    (close ~tol:0.05 (kbps 200.) (rate_of a "A" "B"));
  Alcotest.(check bool) "BD stays 200" true
    (close ~tol:0.05 (kbps 200.) (rate_of a "B" "D"));
  Alcotest.(check bool) "DE capped 30" true
    (close ~tol:0.1 (kbps 30.) (rate_of a "D" "E"));
  let b = r.Iov_exp.Fig7.b in
  Alcotest.(check bool) "EF capped 15" true
    (close ~tol:0.1 (kbps 15.) (rate_of b "E" "F"));
  Alcotest.(check bool) "EG unaffected 30" true
    (close ~tol:0.1 (kbps 30.) (rate_of b "E" "G"))

(* ------------------------------------------------------------------ *)
(* Fig. 8 *)

let test_fig8_coding_gain () =
  let r = Iov_exp.Fig8.run ~quiet:true () in
  let w = r.Iov_exp.Fig8.without_coding in
  Alcotest.(check bool) "no coding: D full" true
    (close ~tol:0.08 (kbps 400.) w.Iov_exp.Fig8.d);
  Alcotest.(check bool) "no coding: F ~300" true
    (close ~tol:0.08 (kbps 300.) w.Iov_exp.Fig8.f);
  Alcotest.(check bool) "no coding: G ~300" true
    (close ~tol:0.08 (kbps 300.) w.Iov_exp.Fig8.g);
  let c = r.Iov_exp.Fig8.with_coding in
  Alcotest.(check bool) "coding: F full 400" true
    (close ~tol:0.08 (kbps 400.) c.Iov_exp.Fig8.f);
  Alcotest.(check bool) "coding: G full 400" true
    (close ~tol:0.08 (kbps 400.) c.Iov_exp.Fig8.g);
  Alcotest.(check bool) "coding: E is a helper at ~200" true
    (close ~tol:0.08 (kbps 200.) c.Iov_exp.Fig8.e);
  Alcotest.(check bool) "receivers actually decoded" true
    (r.Iov_exp.Fig8.decoded_f > 100 && r.Iov_exp.Fig8.decoded_g > 100)

(* ------------------------------------------------------------------ *)
(* Fig. 9 / Table 3 *)

let test_fig9_table3 () =
  let u = Iov_exp.Fig9.run_one Iov_algos.Tree.Unicast in
  let row name =
    List.find
      (fun (r : Iov_exp.Fig9.node_row) -> r.name = name)
      u.Iov_exp.Fig9.rows
  in
  (* Table 3, unicast column *)
  Alcotest.(check int) "S degree 4" 4 (row "S").degree;
  Alcotest.(check (float 1e-6)) "S stress 2.0" 2.0 (row "S").stress;
  Alcotest.(check (float 1e-6)) "A stress 0.2" 0.2 (row "A").stress;
  Alcotest.(check (float 1e-6)) "C stress 0.5" 0.5 (row "C").stress;
  (* each receiver gets roughly a quarter of S's 200 KBps *)
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " ~50KBps") true
        (close ~tol:0.3 (kbps 50.) (row n).throughput))
    [ "A"; "B"; "C"; "D" ];
  (* ns-aware beats unicast on aggregate throughput *)
  let ns = Iov_exp.Fig9.run_one Iov_algos.Tree.Ns_aware in
  let total rows =
    List.fold_left (fun acc (r : Iov_exp.Fig9.node_row) -> acc +. r.throughput) 0. rows
  in
  Alcotest.(check bool) "ns-aware total higher" true
    (total ns.Iov_exp.Fig9.rows > total u.Iov_exp.Fig9.rows)

(* ------------------------------------------------------------------ *)
(* Fig. 11 (scaled down to 24 nodes for test speed) *)

let test_fig11_ordering () =
  let r = Iov_exp.Fig11.run ~quiet:true ~n:24 () in
  let mean (a : Iov_exp.Fig11.algo_result) = a.Iov_exp.Fig11.mean_throughput in
  Alcotest.(check bool) "ns-aware > random" true
    (mean r.Iov_exp.Fig11.ns_aware > mean r.Iov_exp.Fig11.random);
  Alcotest.(check bool) "random > unicast" true
    (mean r.Iov_exp.Fig11.random > mean r.Iov_exp.Fig11.unicast);
  (* everyone (or nearly everyone) joins *)
  List.iter
    (fun (a : Iov_exp.Fig11.algo_result) ->
      Alcotest.(check bool) "joins complete" true (a.Iov_exp.Fig11.joined >= 22))
    [ r.Iov_exp.Fig11.unicast; r.Iov_exp.Fig11.random; r.Iov_exp.Fig11.ns_aware ];
  (* ns-aware avoids the extreme stress tail that random produces *)
  let max_stress (a : Iov_exp.Fig11.algo_result) =
    List.fold_left (fun acc (x, _) -> Float.max acc x) 0. a.Iov_exp.Fig11.stress_cdf
  in
  Alcotest.(check bool) "ns-aware flattens the tail" true
    (max_stress r.Iov_exp.Fig11.ns_aware
    <= max_stress r.Iov_exp.Fig11.random +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Figs. 12-13 *)

let test_fig12_trees () =
  let r = Iov_exp.Fig12.run ~quiet:true () in
  Alcotest.(check bool) "10-node tree has depth > 1" true
    (r.Iov_exp.Fig12.ten_depth > 1);
  Alcotest.(check bool) "renders all ten nodes" true
    (List.length (String.split_on_char '\n' r.Iov_exp.Fig12.ten_node) >= 10)

(* ------------------------------------------------------------------ *)
(* Figs. 14-18 *)

let test_fig14_federation () =
  let r = Iov_exp.Fig14.run ~quiet:true () in
  Alcotest.(check bool) "federation completed" true
    (Float.is_finite r.Iov_exp.Fig14.federation_delay);
  Alcotest.(check bool) "sub-5s delay" true
    (r.Iov_exp.Fig14.federation_delay < 5.);
  Alcotest.(check bool) "data reaches the sink" true
    (r.Iov_exp.Fig14.last_hop_throughput > 0.);
  Alcotest.(check bool) "some nodes untouched" true
    (r.Iov_exp.Fig14.untouched > 0);
  (* sFederate overhead is small next to sAware overall *)
  let aware =
    List.fold_left
      (fun acc (p : Iov_exp.Fig14.per_node) -> acc + p.Iov_exp.Fig14.aware_bytes)
      0 r.Iov_exp.Fig14.nodes
  in
  let federate =
    List.fold_left
      (fun acc (p : Iov_exp.Fig14.per_node) ->
        acc + p.Iov_exp.Fig14.federate_bytes)
      0 r.Iov_exp.Fig14.nodes
  in
  Alcotest.(check bool) "sFederate << sAware" true (federate < aware)

let test_fig16_decay () =
  let r = Iov_exp.Fig16.run ~quiet:true ~n:12 () in
  (* overhead concentrates in the establishment phase and decays *)
  let early, late =
    List.partition (fun (m, _) -> m <= 10.) r.Iov_exp.Fig16.buckets
  in
  let sum l = List.fold_left (fun acc (_, b) -> acc + b) 0 l in
  Alcotest.(check bool) "early >> late" true (sum early > 4 * sum late);
  Alcotest.(check bool) "total positive" true (r.Iov_exp.Fig16.total > 0)

let test_fig17_growth () =
  let r = Iov_exp.Fig17.run ~quiet:true ~sizes:[ 6; 18 ] ~minutes:3. () in
  match r.Iov_exp.Fig17.rows with
  | [ small; large ] ->
    Alcotest.(check bool) "sAware grows with size" true
      (large.Iov_exp.Fig17.aware > small.Iov_exp.Fig17.aware);
    Alcotest.(check bool) "sFederate grows no faster than sAware" true
      (large.Iov_exp.Fig17.federate - small.Iov_exp.Fig17.federate
      <= Stdlib.max 1 (large.Iov_exp.Fig17.aware - small.Iov_exp.Fig17.aware)
         * 10);
    Alcotest.(check bool) "all positive" true
      (small.Iov_exp.Fig17.aware > 0 && small.Iov_exp.Fig17.federate > 0)
  | _ -> Alcotest.fail "expected two rows"

let test_fig18_concentration () =
  let r = Iov_exp.Fig18.run ~quiet:true ~n:16 ~minutes:5. () in
  Alcotest.(check bool) "source nodes dominate" true
    (r.Iov_exp.Fig18.max_federate > 0);
  Alcotest.(check bool) "many silent nodes" true
    (r.Iov_exp.Fig18.silent_nodes >= 4)

let test_fig19_ordering () =
  let r = Iov_exp.Fig19.run ~quiet:true ~sizes:[ 12 ] ~sessions:6 () in
  match r.Iov_exp.Fig19.rows with
  | [ row ] ->
    Alcotest.(check bool) "sFlow wins" true
      (row.Iov_exp.Fig19.sflow >= row.Iov_exp.Fig19.fixed
      && row.Iov_exp.Fig19.sflow > row.Iov_exp.Fig19.random);
    Alcotest.(check bool) "all produce traffic" true
      (row.Iov_exp.Fig19.random > 0.)
  | _ -> Alcotest.fail "expected one row"

(* ------------------------------------------------------------------ *)
(* Harness plumbing *)

let test_harness_build_flood () =
  let topo = Iov_topo.Topo.fig6 () in
  let f = Iov_exp.Harness.build_flood ~topo ~source:"A" () in
  (* every topology edge exists as a pre-established connection *)
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s->%s wired" a b)
        true
        (Iov_core.Network.link_exists f.Iov_exp.Harness.net
           ~src:(Iov_topo.Topo.node topo a)
           ~dst:(Iov_topo.Topo.node topo b)))
    topo.Iov_topo.Topo.edges;
  (* edge_rates preserves topology edge order *)
  let order = List.map fst (Iov_exp.Harness.edge_rates f) in
  Alcotest.(check bool) "edge order preserved" true
    (order = topo.Iov_topo.Topo.edges)

let test_svc_walks_to_sink () =
  let b = Iov_exp.Svc.build ~strategy:`Random ~n:9 ~types:3 () in
  Iov_core.Network.run b.Iov_exp.Svc.net ~until:15.;
  Alcotest.(check int) "three instances per type" 3
    (List.length (Iov_exp.Svc.instances_of b 2));
  let source = List.hd (Iov_exp.Svc.instances_of b 1) in
  Iov_exp.Svc.federate b ~app:900 ~source (Iov_algos.Sflow.Req.linear [ 1; 2; 3 ]);
  Iov_core.Network.run b.Iov_exp.Svc.net ~until:30.;
  match Iov_exp.Svc.sink_of b ~app:900 ~source with
  | Some sink ->
    Alcotest.(check bool) "sink is not the source" false
      (Iov_msg.Node_id.equal sink source)
  | None -> Alcotest.fail "walk found no sink"

(* ------------------------------------------------------------------ *)
(* Robustness (Section 3.1) and ablations *)

let test_robustness_recovery () =
  let r = Iov_exp.Robustness.run ~quiet:true ~n:14 ~kill:2 () in
  Alcotest.(check int) "failures injected" 2 r.Iov_exp.Robustness.killed;
  (* before the failures everyone alive receives *)
  Alcotest.(check bool) "healthy before" true
    (r.Iov_exp.Robustness.pre_failure_receiving >= 12);
  (* after recovery, all survivors receive again *)
  Alcotest.(check int) "availability restored"
    (r.Iov_exp.Robustness.n - 1 - r.Iov_exp.Robustness.killed)
    r.Iov_exp.Robustness.recovered_receiving

let test_ablation_buffer_crossover () =
  let rows = Iov_exp.Ablations.buffer_sweep ~quiet:true ~capacities:[ 5; 10000 ] () in
  match rows with
  | [ small; large ] ->
    (* small buffers: global throttling to ~15; large: upstream
       unaffected at ~200 *)
    Alcotest.(check bool) "small throttles" true
      (close ~tol:0.15 (kbps 15.) small.Iov_exp.Ablations.upstream_rate);
    Alcotest.(check bool) "large localizes" true
      (close ~tol:0.1 (kbps 200.) large.Iov_exp.Ablations.upstream_rate);
    List.iter
      (fun (r : Iov_exp.Ablations.buffer_row) ->
        Alcotest.(check bool) "bottleneck always 30" true
          (close ~tol:0.1 (kbps 30.) r.Iov_exp.Ablations.bottleneck_rate))
      rows
  | _ -> Alcotest.fail "expected two rows"

let test_ablation_pipeline () =
  let rows = Iov_exp.Ablations.pipeline_sweep ~quiet:true ~depths:[ 1; 8 ] () in
  match rows with
  | [ d1; d8 ] ->
    Alcotest.(check bool) "depth 1 starves" true
      (d1.Iov_exp.Ablations.throughput < d8.Iov_exp.Ablations.throughput /. 2.)
  | _ -> Alcotest.fail "expected two rows"

let test_ablation_cpu_model () =
  let rows = Iov_exp.Ablations.cpu_model ~quiet:true () in
  match rows with
  | [ off; on ] ->
    Alcotest.(check bool) "model binds the chain" true
      (on.Iov_exp.Ablations.total_bandwidth
      < off.Iov_exp.Ablations.total_bandwidth /. 2.)
  | _ -> Alcotest.fail "expected two rows"

let () =
  Alcotest.run "experiments"
    [
      ( "engine",
        [
          Alcotest.test_case "fig5 switching decline" `Slow test_fig5_shape;
          Alcotest.test_case "fig6 correctness phases" `Quick test_fig6_phases;
          Alcotest.test_case "fig7 localization" `Quick test_fig7_localization;
        ] );
      ( "case-studies",
        [
          Alcotest.test_case "fig8 coding gain" `Quick test_fig8_coding_gain;
          Alcotest.test_case "fig9/table3" `Quick test_fig9_table3;
          Alcotest.test_case "fig11 algorithm ordering" `Slow
            test_fig11_ordering;
          Alcotest.test_case "fig12 topology rendering" `Slow test_fig12_trees;
        ] );
      ( "service-federation",
        [
          Alcotest.test_case "fig14 one federation" `Quick
            test_fig14_federation;
          Alcotest.test_case "fig16 overhead decay" `Quick test_fig16_decay;
          Alcotest.test_case "fig17 growth with size" `Quick test_fig17_growth;
          Alcotest.test_case "fig18 source concentration" `Quick
            test_fig18_concentration;
          Alcotest.test_case "fig19 sFlow wins" `Slow test_fig19_ordering;
        ] );
      ( "harness",
        [
          Alcotest.test_case "flood wiring" `Quick test_harness_build_flood;
          Alcotest.test_case "svc sink walk" `Quick test_svc_walks_to_sink;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "robustness recovery" `Slow
            test_robustness_recovery;
          Alcotest.test_case "buffer crossover" `Quick
            test_ablation_buffer_crossover;
          Alcotest.test_case "pipelining ablation" `Quick
            test_ablation_pipeline;
          Alcotest.test_case "CPU model ablation" `Slow
            test_ablation_cpu_model;
        ] );
    ]
