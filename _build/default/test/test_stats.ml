(* Tests for meters, descriptive statistics, tables, and bandwidth
   specifications. *)

module Meter = Iov_stats.Meter
module Descr = Iov_stats.Descr
module Table = Iov_stats.Table
module Bwspec = Iov_core.Bwspec

let qtest ?(count = 300) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* ------------------------------------------------------------------ *)
(* Meter *)

let test_meter_window () =
  let m = Meter.create ~window:1.0 () in
  Alcotest.(check (float 0.)) "no data" 0. (Meter.rate m ~now:0.);
  (* 10 records of 100 bytes spread over the first second *)
  for i = 0 to 9 do
    Meter.record m ~now:(0.1 *. float_of_int i) ~bytes:100
  done;
  (* during the first (incomplete) bucket, rate falls back to average *)
  Alcotest.(check bool) "warm-up positive" true (Meter.rate m ~now:0.95 > 0.);
  (* after the bucket closes, the windowed rate is exact *)
  Meter.record m ~now:1.5 ~bytes:50;
  Alcotest.(check (float 1e-6)) "first window rate" 1000. (Meter.rate m ~now:1.5);
  Alcotest.(check int) "totals" 1050 (Meter.total_bytes m);
  Alcotest.(check int) "messages" 11 (Meter.total_messages m)

let test_meter_idle_goes_to_zero () =
  let m = Meter.create ~window:1.0 () in
  Meter.record m ~now:0.5 ~bytes:1000;
  (* several empty windows later the reported rate is zero *)
  Alcotest.(check (float 0.)) "idle rate" 0. (Meter.rate m ~now:5.)

let test_meter_idle_for () =
  let m = Meter.create () in
  Alcotest.(check (float 0.)) "never recorded" infinity (Meter.idle_for m ~now:9.);
  Meter.record m ~now:2. ~bytes:1;
  Alcotest.(check (float 1e-9)) "since last" 3. (Meter.idle_for m ~now:5.)

let test_meter_average () =
  let m = Meter.create () in
  Meter.record m ~now:0. ~bytes:100;
  Meter.record m ~now:10. ~bytes:100;
  Alcotest.(check (float 1e-6)) "lifetime average" 20. (Meter.average m ~now:10.)

let test_meter_reset () =
  let m = Meter.create () in
  Meter.record m ~now:1. ~bytes:5;
  Meter.reset m;
  Alcotest.(check int) "bytes cleared" 0 (Meter.total_bytes m);
  Alcotest.(check (float 0.)) "rate cleared" 0. (Meter.rate m ~now:2.)

let meter_props =
  [
    qtest "steady stream converges to true rate"
      QCheck.(pair (int_range 1 50) (int_range 1 2000))
      (fun (per_window, bytes) ->
        let m = Meter.create ~window:1.0 () in
        (* [per_window] records per second for 5 seconds *)
        for i = 0 to (5 * per_window) - 1 do
          Meter.record m ~now:(float_of_int i /. float_of_int per_window) ~bytes
        done;
        let expect = float_of_int (per_window * bytes) in
        let got = Meter.rate m ~now:5.0 in
        Float.abs (got -. expect) /. expect < 1e-6);
  ]

(* ------------------------------------------------------------------ *)
(* Descr *)

let test_summarize () =
  let s = Descr.summarize [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check int) "n" 4 s.Descr.n;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Descr.mean;
  Alcotest.(check (float 1e-9)) "min" 1. s.Descr.min;
  Alcotest.(check (float 1e-9)) "max" 4. s.Descr.max;
  Alcotest.(check (float 1e-9)) "median" 2.5 s.Descr.median;
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 1.25) s.Descr.stddev

let test_percentile () =
  let xs = [ 10.; 20.; 30.; 40.; 50. ] in
  Alcotest.(check (float 1e-9)) "p0" 10. (Descr.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "p50" 30. (Descr.percentile xs 0.5);
  Alcotest.(check (float 1e-9)) "p100" 50. (Descr.percentile xs 1.0);
  Alcotest.(check (float 1e-9)) "p25 interpolates" 20. (Descr.percentile xs 0.25);
  Alcotest.check_raises "empty" (Invalid_argument "Descr.percentile: empty")
    (fun () -> ignore (Descr.percentile [] 0.5))

let test_cdf () =
  let c = Descr.Cdf.of_list [ 1.; 2.; 2.; 4. ] in
  Alcotest.(check (float 1e-9)) "below all" 0. (Descr.Cdf.eval c 0.5);
  Alcotest.(check (float 1e-9)) "at dup" 0.75 (Descr.Cdf.eval c 2.);
  Alcotest.(check (float 1e-9)) "above all" 1. (Descr.Cdf.eval c 10.);
  Alcotest.(check int) "points" 4 (List.length (Descr.Cdf.points c));
  Alcotest.(check (float 1e-9)) "inverse median" 2. (Descr.Cdf.inverse c 0.5)

let cdf_props =
  [
    qtest "cdf is monotone"
      QCheck.(
        pair
          (list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
          (pair (float_range (-150.) 150.) (float_range (-150.) 150.)))
      (fun (xs, (a, b)) ->
        let c = Descr.Cdf.of_list xs in
        let lo = Float.min a b and hi = Float.max a b in
        Descr.Cdf.eval c lo <= Descr.Cdf.eval c hi);
    qtest "eval at max is 1"
      QCheck.(list_of_size (Gen.int_range 1 50) (float_range 0. 100.))
      (fun xs ->
        let c = Descr.Cdf.of_list xs in
        Descr.Cdf.eval c (List.fold_left Float.max neg_infinity xs) = 1.);
  ]

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let out =
    Table.render ~header:[ "name"; "val" ] [ [ "a"; "1" ]; [ "bb"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "line count" 5 (List.length lines);
  (* all non-empty lines are equally wide *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  Alcotest.(check int) "uniform width" 1 (List.length (List.sort_uniq Int.compare widths))

let test_table_formats () =
  Alcotest.(check string) "f1" "3.5" (Table.f1 3.52);
  Alcotest.(check string) "fkb" "2.0" (Table.fkb 2048.);
  Alcotest.(check string) "fmb" "1.5" (Table.fmb (1.5 *. 1024. *. 1024.))

(* ------------------------------------------------------------------ *)
(* Bwspec *)

let test_bwspec () =
  let b = Bwspec.make ~total:100. ~up:50. () in
  Alcotest.(check (float 0.)) "last mile is min" 50. (Bwspec.last_mile b);
  Alcotest.(check (float 0.)) "unconstrained last mile" infinity
    (Bwspec.last_mile Bwspec.unconstrained);
  let a = Bwspec.asymmetric ~up:10. ~down:20. in
  Alcotest.(check (float 0.)) "asymmetric up" 10. a.Bwspec.up;
  Alcotest.(check (float 0.)) "asymmetric down" 20. a.Bwspec.down;
  Alcotest.(check (float 0.)) "total unconstrained" infinity a.Bwspec.total;
  Alcotest.check_raises "non-positive" (Invalid_argument "Bwspec: up")
    (fun () -> ignore (Bwspec.make ~up:0. ()))

let () =
  Alcotest.run "stats"
    [
      ( "meter",
        meter_props
        @ [
            Alcotest.test_case "window accounting" `Quick test_meter_window;
            Alcotest.test_case "idle decays to zero" `Quick
              test_meter_idle_goes_to_zero;
            Alcotest.test_case "idle_for" `Quick test_meter_idle_for;
            Alcotest.test_case "lifetime average" `Quick test_meter_average;
            Alcotest.test_case "reset" `Quick test_meter_reset;
          ] );
      ( "descr",
        cdf_props
        @ [
            Alcotest.test_case "summarize" `Quick test_summarize;
            Alcotest.test_case "percentile" `Quick test_percentile;
            Alcotest.test_case "cdf" `Quick test_cdf;
          ] );
      ( "table",
        [
          Alcotest.test_case "alignment" `Quick test_table_render;
          Alcotest.test_case "number formats" `Quick test_table_formats;
        ] );
      ("bwspec", [ Alcotest.test_case "dimensions" `Quick test_bwspec ]);
    ]
