(* Tests for sFlow service federation: requirements, awareness,
   federation per strategy, acknowledgement chains. *)

module Network = Iov_core.Network
module Sflow = Iov_algos.Sflow
module Svc = Iov_exp.Svc
module NI = Iov_msg.Node_id
module Wire = Iov_msg.Wire

(* ------------------------------------------------------------------ *)
(* Requirements *)

let test_req_linear () =
  let r = Sflow.Req.linear [ 1; 2; 3 ] in
  Alcotest.(check int) "source" 1 r.Sflow.Req.source;
  Alcotest.(check int) "sink" 3 r.Sflow.Req.sink;
  Alcotest.(check (list (pair int int))) "edges" [ (1, 2); (2, 3) ]
    r.Sflow.Req.edges;
  Alcotest.(check (list int)) "consumers of 1" [ 2 ] (Sflow.Req.consumers r 1);
  Alcotest.(check (list int)) "sink has none" [] (Sflow.Req.consumers r 3);
  Alcotest.(check (list int)) "types" [ 1; 2; 3 ] (Sflow.Req.types r)

let test_req_validation () =
  let bad name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" name
  in
  bad "cycle" (fun () ->
      Sflow.Req.make ~edges:[ (1, 2); (2, 1); (1, 3) ] ~source:1 ~sink:3);
  bad "sink with consumers" (fun () ->
      Sflow.Req.make ~edges:[ (1, 2); (2, 1) ] ~source:1 ~sink:2);
  bad "unreachable type" (fun () ->
      Sflow.Req.make ~edges:[ (1, 2); (3, 4) ] ~source:1 ~sink:2);
  bad "empty" (fun () -> Sflow.Req.make ~edges:[] ~source:1 ~sink:1);
  bad "short linear" (fun () -> Sflow.Req.linear [ 1 ])

let test_req_diamond_ok () =
  let r =
    Sflow.Req.make ~edges:[ (1, 2); (1, 3); (2, 4); (3, 4) ] ~source:1 ~sink:4
  in
  Alcotest.(check int) "two consumers" 2 (List.length (Sflow.Req.consumers r 1))

let test_req_payload_roundtrip () =
  let r =
    Sflow.Req.make ~edges:[ (1, 2); (1, 3); (2, 4); (3, 4) ] ~source:1 ~sink:4
  in
  let w = Wire.W.create () in
  Sflow.Req.to_payload r w;
  let r' = Sflow.Req.of_payload (Wire.R.of_bytes (Wire.W.contents w)) in
  Alcotest.(check bool) "roundtrip" true (r = r')

(* ------------------------------------------------------------------ *)
(* Awareness *)

let test_awareness_populates_directories () =
  let b = Svc.build ~strategy:`Sflow ~n:12 ~types:3 () in
  Network.run b.Svc.net ~until:25.;
  (* every service node should know at least one instance per type *)
  let gaps = ref 0 in
  List.iter
    (fun (_, flow) ->
      if Sflow.service_type flow <> None then
        List.iter
          (fun ty ->
            if
              not
                (List.exists
                   (fun (t, instances) -> t = ty && instances <> [])
                   (Sflow.directory flow))
            then incr gaps)
          [ 1; 2; 3 ])
    b.Svc.flows;
  Alcotest.(check int) "no directory gaps" 0 !gaps

let test_aware_overhead_metered () =
  let b = Svc.build ~strategy:`Sflow ~n:8 ~types:3 () in
  Network.run b.Svc.net ~until:20.;
  Alcotest.(check bool) "sAware bytes counted" true (Svc.aware_bytes b > 0);
  Alcotest.(check int) "no federations yet" 0 (Svc.federate_bytes b)

(* ------------------------------------------------------------------ *)
(* Federation *)

let run_federation strategy =
  let b = Svc.build ~strategy ~n:12 ~types:3 () in
  Network.run b.Svc.net ~until:20.;
  let req = Sflow.Req.linear [ 1; 2; 3 ] in
  let source = List.hd (Svc.instances_of b 1) in
  Svc.federate b ~app:500 ~source req;
  Network.run b.Svc.net ~until:40.;
  (b, source)

let test_federation_completes name strategy () =
  let b, source = run_federation strategy in
  Alcotest.(check int) (name ^ " completed") 1 (Svc.completed b);
  (* the selected chain has one instance per stage *)
  match Svc.sink_of b ~app:500 ~source with
  | Some sink ->
    let sink_flow = List.assoc sink b.Svc.flows in
    Alcotest.(check (option int)) "sink hosts the sink type" (Some 3)
      (Sflow.service_type sink_flow)
  | None -> Alcotest.fail "no sink reached"

let test_federation_deploys_data () =
  let b, source = run_federation `Sflow in
  Network.run b.Svc.net ~until:60.;
  match Svc.sink_of b ~app:500 ~source with
  | Some sink ->
    Alcotest.(check bool) "data streams to the sink" true
      (Network.app_bytes b.Svc.net sink ~app:500 > 0)
  | None -> Alcotest.fail "no sink"

let test_no_data_when_disabled () =
  let b = Svc.build ~deploy_data:false ~strategy:`Sflow ~n:12 ~types:3 () in
  Network.run b.Svc.net ~until:20.;
  let source = List.hd (Svc.instances_of b 1) in
  Svc.federate b ~app:501 ~source (Sflow.Req.linear [ 1; 2; 3 ]);
  Network.run b.Svc.net ~until:40.;
  Alcotest.(check int) "federation still completes" 1 (Svc.completed b);
  match Svc.sink_of b ~app:501 ~source with
  | Some sink ->
    Alcotest.(check int) "but no data flows" 0
      (Network.app_bytes b.Svc.net sink ~app:501)
  | None -> Alcotest.fail "no sink"

let test_selected_children_per_session () =
  let b, source = run_federation `Sflow in
  let src_flow = List.assoc source b.Svc.flows in
  Alcotest.(check int) "one child on the linear chain" 1
    (List.length (Sflow.selected_children src_flow ~app:500));
  Alcotest.(check (list bool)) "other sessions empty" []
    (List.map (fun _ -> true) (Sflow.selected_children src_flow ~app:999))

let test_fixed_picks_highest_advertised () =
  (* isolated world with exactly two candidate instances of type 2 *)
  let net = Network.create () in
  let obs = Iov_observer.Observer.create net in
  let mk i cap =
    let flow =
      Sflow.create ~strategy:`Fixed ~advertised_bw:cap ~deploy_data:false ()
    in
    ignore
      (Network.add_node net
         ~observer:(Iov_observer.Observer.id obs)
         ~id:(NI.synthetic i) (Sflow.algorithm flow));
    flow
  in
  let src = mk 1 1000. in
  let small = mk 2 500. in
  let big = mk 3 900. in
  ignore small;
  ignore big;
  Network.run net ~until:1.;
  Iov_observer.Observer.assign_service obs (NI.synthetic 1) ~service:1;
  Iov_observer.Observer.assign_service obs (NI.synthetic 2) ~service:2;
  Iov_observer.Observer.assign_service obs (NI.synthetic 3) ~service:2;
  Network.run net ~until:10.;
  let req = Sflow.Req.linear [ 1; 2 ] in
  let w = Wire.W.create () in
  Sflow.Req.to_payload req w;
  let m =
    Iov_msg.Message.control ~mtype:Iov_msg.Mtype.S_federate
      ~origin:(Iov_observer.Observer.id obs)
      ~app:77 (Wire.W.contents w)
  in
  Iov_observer.Observer.control_message obs m (NI.synthetic 1);
  Network.run net ~until:20.;
  Alcotest.(check (list bool)) "chose the bigger instance" [ true ]
    (List.map
       (fun c -> NI.equal c (NI.synthetic 3))
       (Sflow.selected_children src ~app:77))

let test_failure_counted_when_no_candidates () =
  let net = Network.create () in
  let obs = Iov_observer.Observer.create net in
  let flow = Sflow.create ~strategy:`Sflow ~deploy_data:false () in
  ignore
    (Network.add_node net
       ~observer:(Iov_observer.Observer.id obs)
       ~id:(NI.synthetic 1) (Sflow.algorithm flow));
  Network.run net ~until:1.;
  Iov_observer.Observer.assign_service obs (NI.synthetic 1) ~service:1;
  Network.run net ~until:3.;
  let req = Sflow.Req.linear [ 1; 2 ] in
  let w = Wire.W.create () in
  Sflow.Req.to_payload req w;
  let m =
    Iov_msg.Message.control ~mtype:Iov_msg.Mtype.S_federate
      ~origin:(Iov_observer.Observer.id obs)
      ~app:78 (Wire.W.contents w)
  in
  Iov_observer.Observer.control_message obs m (NI.synthetic 1);
  Network.run net ~until:6.;
  Alcotest.(check int) "failure recorded" 1 (Sflow.federation_failures flow)

let test_strategy_names () =
  Alcotest.(check string) "sFlow" "sFlow" (Sflow.strategy_name `Sflow);
  Alcotest.(check string) "fixed" "fixed" (Sflow.strategy_name `Fixed);
  Alcotest.(check string) "random" "random" (Sflow.strategy_name `Random)

let () =
  Alcotest.run "sflow"
    [
      ( "requirements",
        [
          Alcotest.test_case "linear" `Quick test_req_linear;
          Alcotest.test_case "validation" `Quick test_req_validation;
          Alcotest.test_case "diamond" `Quick test_req_diamond_ok;
          Alcotest.test_case "payload roundtrip" `Quick
            test_req_payload_roundtrip;
        ] );
      ( "awareness",
        [
          Alcotest.test_case "directories populate" `Quick
            test_awareness_populates_directories;
          Alcotest.test_case "overhead metered" `Quick
            test_aware_overhead_metered;
        ] );
      ( "federation",
        [
          Alcotest.test_case "sFlow completes" `Quick
            (test_federation_completes "sflow" `Sflow);
          Alcotest.test_case "fixed completes" `Quick
            (test_federation_completes "fixed" `Fixed);
          Alcotest.test_case "random completes" `Quick
            (test_federation_completes "random" `Random);
          Alcotest.test_case "data deployment" `Quick
            test_federation_deploys_data;
          Alcotest.test_case "deploy_data off" `Quick test_no_data_when_disabled;
          Alcotest.test_case "per-session children" `Quick
            test_selected_children_per_session;
          Alcotest.test_case "fixed is capacity-greedy" `Quick
            test_fixed_picks_highest_advertised;
          Alcotest.test_case "missing candidates counted" `Quick
            test_failure_counted_when_no_candidates;
          Alcotest.test_case "strategy names" `Quick test_strategy_names;
        ] );
    ]
