(* Tests for the discrete-event simulator substrate: heap, rate
   servers, and the simulator itself. *)

module Heap = Iov_dsim.Heap
module Rsrc = Iov_dsim.Rsrc
module Sim = Iov_dsim.Sim

let qtest ?(count = 300) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_basic () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h ~time:2. ~seq:0 "b";
  Heap.push h ~time:1. ~seq:1 "a";
  Heap.push h ~time:3. ~seq:2 "c";
  Alcotest.(check int) "size" 3 (Heap.size h);
  (match Heap.peek h with
  | Some (t, _, v) ->
    Alcotest.(check (float 0.)) "peek time" 1. t;
    Alcotest.(check string) "peek value" "a" v
  | None -> Alcotest.fail "peek");
  let order = List.filter_map (fun _ -> Option.map (fun (_, _, v) -> v) (Heap.pop h)) [ 1; 2; 3 ] in
  Alcotest.(check (list string)) "pop order" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "drained" true (Heap.pop h = None)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iteri (fun i v -> Heap.push h ~time:5. ~seq:i v) [ "x"; "y"; "z" ];
  let order = List.filter_map (fun _ -> Option.map (fun (_, _, v) -> v) (Heap.pop h)) [ 1; 2; 3 ] in
  Alcotest.(check (list string)) "equal times pop in insertion order"
    [ "x"; "y"; "z" ] order

let heap_props =
  [
    qtest "pops are sorted"
      QCheck.(list_of_size (QCheck.Gen.int_range 0 200) (pair (float_bound_exclusive 1000.) small_nat))
      (fun entries ->
        let h = Heap.create () in
        List.iteri (fun i (t, _) -> Heap.push h ~time:t ~seq:i i) entries;
        let rec drain acc =
          match Heap.pop h with
          | Some (t, _, _) -> drain (t :: acc)
          | None -> List.rev acc
        in
        let times = drain [] in
        List.sort Float.compare times = times);
    qtest "size tracks pushes and pops"
      QCheck.(small_list (float_bound_exclusive 100.))
      (fun ts ->
        let h = Heap.create () in
        List.iteri (fun i t -> Heap.push h ~time:t ~seq:i ()) ts;
        let n = List.length ts in
        Heap.size h = n
        &&
        (ignore (Heap.pop h);
         Heap.size h = Stdlib.max 0 (n - 1)));
  ]

(* ------------------------------------------------------------------ *)
(* Rate servers *)

let test_rsrc_basic () =
  let r = Rsrc.create ~rate:100. in
  let s1, f1 = Rsrc.reserve r ~now:0. ~cost:50. in
  Alcotest.(check (float 1e-9)) "starts now" 0. s1;
  Alcotest.(check (float 1e-9)) "takes cost/rate" 0.5 f1;
  let s2, f2 = Rsrc.reserve r ~now:0. ~cost:100. in
  Alcotest.(check (float 1e-9)) "queues behind" 0.5 s2;
  Alcotest.(check (float 1e-9)) "finish" 1.5 f2;
  Alcotest.(check (float 1e-9)) "free_at" 1.5 (Rsrc.free_at r)

let test_rsrc_idle_gap () =
  let r = Rsrc.create ~rate:10. in
  let _ = Rsrc.reserve r ~now:0. ~cost:10. in
  (* idle until t=5, then reserve: starts at 5, not at free_at=1 *)
  let s, f = Rsrc.reserve r ~now:5. ~cost:10. in
  Alcotest.(check (float 1e-9)) "starts at now" 5. s;
  Alcotest.(check (float 1e-9)) "finish" 6. f

let test_rsrc_unconstrained () =
  let r = Rsrc.unconstrained () in
  Alcotest.(check bool) "flag" true (Rsrc.is_unconstrained r);
  let s, f = Rsrc.reserve r ~now:3. ~cost:1e9 in
  Alcotest.(check (float 0.)) "no delay start" 3. s;
  Alcotest.(check (float 0.)) "no delay finish" 3. f

let test_rsrc_set_rate () =
  let r = Rsrc.create ~rate:100. in
  let _ = Rsrc.reserve r ~now:0. ~cost:100. in
  Rsrc.set_rate r 10.;
  let _, f = Rsrc.reserve r ~now:0. ~cost:10. in
  Alcotest.(check (float 1e-9)) "new rate applies" 2. f;
  Alcotest.check_raises "bad rate" (Invalid_argument "Rsrc.set_rate: rate must be positive")
    (fun () -> Rsrc.set_rate r 0.)

let test_rsrc_release () =
  let r = Rsrc.create ~rate:1. in
  let _ = Rsrc.reserve r ~now:0. ~cost:10. in
  Rsrc.release_until r 2.;
  Alcotest.(check (float 0.)) "rolled back" 2. (Rsrc.free_at r)

let rsrc_props =
  [
    qtest "throughput converges to rate"
      QCheck.(pair (float_range 1. 1000.) (int_range 1 100))
      (fun (rate, n) ->
        let r = Rsrc.create ~rate in
        let cost = 7. in
        let finish = ref 0. in
        for _ = 1 to n do
          let _, f = Rsrc.reserve r ~now:0. ~cost in
          finish := f
        done;
        let observed = float_of_int n *. cost /. !finish in
        Float.abs (observed -. rate) /. rate < 1e-6);
  ]

(* ------------------------------------------------------------------ *)
(* Simulator *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Sim.schedule sim ~delay:2. (note "c"));
  ignore (Sim.schedule sim ~delay:1. (note "a"));
  ignore (Sim.schedule sim ~delay:1. (note "b"));
  Sim.run sim;
  Alcotest.(check (list string)) "time then FIFO order" [ "a"; "b"; "c" ]
    (List.rev !log);
  Alcotest.(check (float 0.)) "clock at last event" 2. (Sim.now sim)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule sim ~delay:1. (fun () -> fired := true) in
  Sim.cancel sim h;
  Alcotest.(check bool) "cancelled flag" true (Sim.cancelled h);
  Sim.run sim;
  Alcotest.(check bool) "did not fire" false !fired

let test_sim_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  ignore (Sim.schedule sim ~delay:1. (fun () -> incr count));
  ignore (Sim.schedule sim ~delay:5. (fun () -> incr count));
  Sim.run sim ~until:3.;
  Alcotest.(check int) "only first fired" 1 !count;
  Alcotest.(check (float 0.)) "clock advanced to until" 3. (Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "second fires later" 2 !count

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~delay:1. (fun () ->
         log := "outer" :: !log;
         ignore
           (Sim.schedule sim ~delay:0.5 (fun () -> log := "inner" :: !log))));
  Sim.run sim;
  Alcotest.(check (list string)) "nested order" [ "outer"; "inner" ]
    (List.rev !log);
  Alcotest.(check (float 0.)) "final time" 1.5 (Sim.now sim)

let test_sim_every () =
  let sim = Sim.create () in
  let count = ref 0 in
  let h = Sim.every sim ~period:1. (fun () -> incr count) in
  Sim.run sim ~until:5.5;
  Alcotest.(check int) "five periods" 5 !count;
  Sim.cancel sim h;
  ignore (Sim.schedule sim ~delay:10. (fun () -> ()));
  Sim.run sim;
  Alcotest.(check int) "stops after cancel" 5 !count

let test_sim_every_jitter_bounds () =
  let sim = Sim.create ~seed:3 () in
  let times = ref [] in
  let h = Sim.every sim ~period:1. ~jitter:0.2 (fun () -> times := Sim.now sim :: !times) in
  Sim.run sim ~until:50.;
  Sim.cancel sim h;
  let rec gaps = function
    | a :: (b :: _ as tl) -> (a -. b) :: gaps tl
    | _ -> []
  in
  List.iter
    (fun g ->
      if g < 0.8 -. 1e-9 || g > 1.2 +. 1e-9 then
        Alcotest.failf "gap %f outside jitter bounds" g)
    (gaps !times);
  Alcotest.(check bool) "fired often" true (List.length !times >= 40)

let test_sim_determinism () =
  let trace seed =
    let sim = Sim.create ~seed () in
    let log = ref [] in
    ignore
      (Sim.every sim ~period:0.3 ~jitter:0.1 (fun () ->
           log := Sim.now sim :: !log));
    Sim.run sim ~until:10.;
    !log
  in
  Alcotest.(check bool) "same seed, same trace" true (trace 9 = trace 9);
  Alcotest.(check bool) "different seed, different trace" true
    (trace 9 <> trace 10)

let test_sim_max_events () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec reschedule () =
    incr count;
    ignore (Sim.schedule sim ~delay:1. reschedule)
  in
  ignore (Sim.schedule sim ~delay:1. reschedule);
  Sim.run ~max_events:7 sim;
  Alcotest.(check int) "budget respected" 7 !count

let test_sim_validation () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Sim.schedule: delay")
    (fun () -> ignore (Sim.schedule sim ~delay:(-1.) (fun () -> ())));
  ignore (Sim.schedule sim ~delay:5. (fun () -> ()));
  Sim.run sim;
  Alcotest.check_raises "past time"
    (Invalid_argument "Sim.schedule_at: time in the past") (fun () ->
      ignore (Sim.schedule_at sim ~time:1. (fun () -> ())))

let () =
  Alcotest.run "dsim"
    [
      ( "heap",
        heap_props
        @ [
            Alcotest.test_case "basic order" `Quick test_heap_basic;
            Alcotest.test_case "FIFO on ties" `Quick test_heap_fifo_ties;
          ] );
      ( "rsrc",
        rsrc_props
        @ [
            Alcotest.test_case "serial reservations" `Quick test_rsrc_basic;
            Alcotest.test_case "idle gaps are lost" `Quick test_rsrc_idle_gap;
            Alcotest.test_case "unconstrained" `Quick test_rsrc_unconstrained;
            Alcotest.test_case "runtime rate change" `Quick test_rsrc_set_rate;
            Alcotest.test_case "release_until" `Quick test_rsrc_release;
          ] );
      ( "sim",
        [
          Alcotest.test_case "event ordering" `Quick test_sim_ordering;
          Alcotest.test_case "cancellation" `Quick test_sim_cancel;
          Alcotest.test_case "run until" `Quick test_sim_until;
          Alcotest.test_case "nested scheduling" `Quick
            test_sim_nested_scheduling;
          Alcotest.test_case "recurring events" `Quick test_sim_every;
          Alcotest.test_case "jitter bounds" `Quick
            test_sim_every_jitter_bounds;
          Alcotest.test_case "seeded determinism" `Quick test_sim_determinism;
          Alcotest.test_case "max_events budget" `Quick test_sim_max_events;
          Alcotest.test_case "argument validation" `Quick test_sim_validation;
        ] );
    ]
