test/test_dsim.ml: Alcotest Float Iov_dsim List Option QCheck QCheck_alcotest Stdlib
