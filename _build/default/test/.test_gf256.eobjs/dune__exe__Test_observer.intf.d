test/test_observer.mli:
