test/test_gf256.ml: Alcotest Array Bytes Char Iov_gf256 Printf QCheck QCheck_alcotest Random String
