test/test_dht.ml: Alcotest Array Int Iov_algos Iov_core Iov_dsim Iov_msg Iov_observer List Printf QCheck QCheck_alcotest
