test/test_topo.ml: Alcotest Iov_core Iov_msg Iov_topo List Printf QCheck QCheck_alcotest
