test/test_msg.ml: Alcotest Buffer Bytes Int Int32 Iov_msg List QCheck QCheck_alcotest Stdlib
