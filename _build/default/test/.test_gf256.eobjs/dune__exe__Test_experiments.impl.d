test/test_experiments.ml: Alcotest Float Iov_algos Iov_core Iov_exp Iov_msg Iov_topo List Printf Stdlib String
