test/test_onet.ml: Alcotest Bytes Iov_core Iov_msg Iov_observer Iov_onet List Thread Unix
