test/test_stats.ml: Alcotest Float Gen Int Iov_core Iov_stats List QCheck QCheck_alcotest String
