test/test_sflow.ml: Alcotest Iov_algos Iov_core Iov_exp Iov_msg Iov_observer List
