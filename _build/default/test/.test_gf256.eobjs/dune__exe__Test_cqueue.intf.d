test/test_cqueue.mli:
