test/test_observer.ml: Alcotest Bytes Filename Float Iov_algos Iov_core Iov_msg Iov_observer List Option String Sys
