test/test_onet.mli:
