test/test_tree.ml: Alcotest Iov_algos Iov_core Iov_dsim Iov_msg Iov_observer List Printf
