test/test_network.ml: Alcotest Bytes Float Iov_algos Iov_core Iov_msg List Option Printf QCheck QCheck_alcotest Stdlib String
