test/test_content.ml: Alcotest Bytes Iov_algos Iov_core Iov_msg List QCheck QCheck_alcotest
