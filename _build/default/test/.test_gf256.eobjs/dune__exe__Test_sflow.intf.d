test/test_sflow.mli:
