test/test_cqueue.ml: Alcotest Gen Iov_core List QCheck QCheck_alcotest
