test/test_algorithms.ml: Alcotest Bytes Char Float Iov_algos Iov_core Iov_msg List Option QCheck QCheck_alcotest
