(* The benchmark harness.

   Two parts, per the repository contract:

   1. Bechamel micro-benchmarks of the engine's hot primitives — one
      [Test.make] per primitive (message codec, GF(2^8) arithmetic,
      Gaussian decoding, buffers, event queue, a full simulated switch
      hop).

   2. The paper harness: regenerates every table and figure of the
      evaluation (Fig. 5 through Fig. 19 plus Table 3), printing the
      same rows/series the paper reports.

   Usage: dune exec bench/main.exe            (both parts)
          dune exec bench/main.exe -- micro   (micro-benchmarks only)
          dune exec bench/main.exe -- paper   (experiments only)
          dune exec bench/main.exe -- quick   (everything, smaller sizes) *)

open Bechamel
open Toolkit

module Msg = Iov_msg.Message
module Codec = Iov_msg.Codec
module NI = Iov_msg.Node_id
module Gf = Iov_gf256.Gf256
module Linear = Iov_gf256.Linear
module Cqueue = Iov_core.Cqueue
module Heap = Iov_dsim.Heap
module Scn = Iov_chaos.Scenario
module Inv = Iov_chaos.Invariant
module Gsw = Iov_gossip.Swim
module Gvw = Iov_gossip.View

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks                                                    *)

let sample_msg =
  Msg.data ~origin:(NI.synthetic 1) ~app:1 ~seq:42 (Bytes.make 5120 'x')

let sample_wire = Codec.encode sample_msg

let bench_codec_encode =
  Test.make ~name:"codec/encode-5KB" (Staged.stage (fun () ->
      ignore (Codec.encode sample_msg)))

let bench_codec_decode =
  Test.make ~name:"codec/decode-5KB" (Staged.stage (fun () ->
      ignore (Codec.decode sample_wire)))

let bench_gf_mul =
  Test.make ~name:"gf256/mul" (Staged.stage (fun () ->
      ignore (Gf.mul 173 92)))

(* scalar multiplication across all 256 operand values: exercises the
   flat multiplication table including the x = 0 rows *)
let bench_gf_mul_table =
  Test.make ~name:"gf256/mul-table" (Staged.stage (fun () ->
      let acc = ref 0 in
      for x = 0 to 255 do
        acc := !acc lxor Gf.mul 173 x
      done;
      ignore !acc))

let gf_vec_a = Bytes.make 5120 'a'
let gf_vec_acc = Bytes.make 5120 'b'

let bench_gf_axpy =
  Test.make ~name:"gf256/axpy-5KB" (Staged.stage (fun () ->
      Gf.axpy ~acc:gf_vec_acc ~coeff:7 gf_vec_a))

let bench_gf_axpy1 =
  Test.make ~name:"gf256/axpy1-5KB" (Staged.stage (fun () ->
      Gf.axpy ~acc:gf_vec_acc ~coeff:1 gf_vec_a))

let decode_input =
  let sources = Array.init 4 (fun i -> Bytes.make 1024 (Char.chr (65 + i))) in
  List.init 4 (fun i ->
      let coeffs = Array.init 4 (fun j -> Gf.pow (i + 2) j) in
      Linear.encode ~coeffs sources)

let bench_linear_decode =
  Test.make ~name:"linear/decode-4x1KB" (Staged.stage (fun () ->
      ignore (Linear.decode decode_input)))

(* a full generation through the one-packet-at-a-time decoder: 16
   sources of 4 KB, a full-rank Vandermonde-style coefficient matrix,
   plus one dependent and one duplicate packet mixed in (the traffic a
   receiving overlay node actually sees) *)
let incr_decode_input =
  let k = 16 in
  let sources = Array.init k (fun i -> Bytes.make 4096 (Char.chr (33 + i))) in
  let packets =
    List.init k (fun i ->
        let coeffs = Array.init k (fun j -> Gf.pow (i + 2) j) in
        Linear.encode ~coeffs sources)
  in
  match packets with
  | first :: _ ->
    (* a linear combination of the first two, then an exact duplicate *)
    let dep = Linear.combine [ (3, List.nth packets 0); (5, List.nth packets 1) ] in
    (k, List.concat [ [ first; dep; first ]; List.tl packets ])
  | [] -> assert false

let bench_incremental_decode =
  Test.make ~name:"linear/incremental-decode-16x4KB"
    (Staged.stage (fun () ->
         let k, packets = incr_decode_input in
         let d = Linear.Decoder.create ~k in
         List.iter (fun p -> ignore (Linear.Decoder.add d p)) packets;
         assert (Linear.Decoder.complete d)))

let bench_cqueue =
  Test.make ~name:"cqueue/push-pop"
    (Staged.stage
       (let q = Cqueue.create ~capacity:64 in
        fun () ->
          ignore (Cqueue.push q 1);
          ignore (Cqueue.pop q)))

let bench_heap =
  Test.make ~name:"heap/push-pop"
    (Staged.stage
       (let h = Heap.create () in
        let seq = ref 0 in
        fun () ->
          incr seq;
          Heap.push h ~time:(float_of_int (!seq land 1023)) ~seq:!seq ();
          ignore (Heap.pop h)))

(* a full simulated second of a 3-node chain: source, switch, sink *)
let bench_switch_hop =
  Test.make ~name:"engine/3-node-chain-1s"
    (Staged.stage (fun () ->
         let net = Iov_core.Network.create () in
         let src =
           Iov_algos.Source.create ~payload_size:1024 ~app:1
             ~dests:[ NI.synthetic 2 ] ()
         in
         ignore
           (Iov_core.Network.add_node net ~id:(NI.synthetic 1)
              (Iov_algos.Source.algorithm src));
         let f = Iov_algos.Flood.create () in
         Iov_algos.Flood.set_route f ~app:1
           ~upstreams:[ NI.synthetic 1 ]
           ~downstreams:[ NI.synthetic 3 ] ();
         ignore
           (Iov_core.Network.add_node net ~id:(NI.synthetic 2)
              (Iov_algos.Flood.algorithm f));
         ignore
           (Iov_core.Network.add_node net ~id:(NI.synthetic 3)
              Iov_core.Algorithm.null);
         Iov_core.Network.run net ~until:1.))

(* a simulated second of one switch fanning every message out to eight
   sinks: the switched message must share its payload across all eight
   out-links, so the per-destination cost is queueing, not copying *)
let fanout_8way_run ?telemetry () =
  let net = Iov_core.Network.create ?telemetry () in
  let sinks = List.init 8 (fun i -> NI.synthetic (10 + i)) in
  let src =
    Iov_algos.Source.create ~payload_size:1024 ~app:1
      ~dests:[ NI.synthetic 2 ] ()
  in
  ignore
    (Iov_core.Network.add_node net ~id:(NI.synthetic 1)
       (Iov_algos.Source.algorithm src));
  let f = Iov_algos.Flood.create () in
  Iov_algos.Flood.set_route f ~app:1
    ~upstreams:[ NI.synthetic 1 ]
    ~downstreams:sinks ();
  ignore
    (Iov_core.Network.add_node net ~id:(NI.synthetic 2)
       (Iov_algos.Flood.algorithm f));
  List.iter
    (fun s ->
      ignore (Iov_core.Network.add_node net ~id:s Iov_core.Algorithm.null))
    sinks;
  Iov_core.Network.run net ~until:1.

(* telemetry compiled in but not attached — the baseline the telemetry
   overhead budget is measured against *)
let bench_fanout_8way =
  Test.make ~name:"engine/fanout-8way"
    (Staged.stage (fun () -> fanout_8way_run ()))

(* same workload with a live telemetry deployment: every event site
   records into the flight recorder and bumps counters/histograms *)
let bench_fanout_8way_telem =
  Test.make ~name:"engine/fanout-8way-telem"
    (Staged.stage (fun () ->
         let telemetry = Iov_telemetry.Telemetry.create () in
         fanout_8way_run ~telemetry ()))

(* compiling a churn-heavy chaos scenario: every churn interval and
   victim pick is sampled here, at compile time, so this is the entire
   stochastic cost of a deterministic chaos run *)
let chaos_scenario =
  Scn.parse
    "scenario bench-churn seed=7\n\
     churn nodes=* pick=8 start=1 stop=300 down=exp:5 up=const:2\n\
     flap link=n1->n2 start=2 stop=120 period=const:4 down=const:1\n\
     loss link=n2->n3 p=0.1 corrupt=0.02 at=3 clear=200\n\
     expect no-delivery-after-teardown grace=0.5\n\
     expect domino-completes within=2\n\
     expect reconverge within=10\n\
     expect min-events 100\n"

let chaos_nodes = List.init 16 (fun i -> Printf.sprintf "n%d" (i + 1))

let bench_chaos_compile =
  Test.make ~name:"chaos/compile-churn-16"
    (Staged.stage (fun () ->
         ignore (Scn.compile chaos_scenario ~nodes:chaos_nodes)))

(* checking the recovery invariants of the bundled smoke scenario over
   its real telemetry trace; the simulated run happens once, at staging
   time, so the measurement is the pure trace-checking pass *)
let bench_chaos_check =
  Test.make ~name:"chaos/invariant-check"
    (Staged.stage
       (let o =
          match Iov_exp.Chaoslab.run_builtin ~quiet:true "smoke" with
          | Some o -> o
          | None -> assert false
        in
        let scenario = o.Iov_exp.Chaoslab.scenario in
        let actions =
          Scn.compile scenario ~nodes:[ "A"; "B"; "C"; "D"; "E"; "F"; "G" ]
        in
        let events =
          Iov_telemetry.Telemetry.events o.Iov_exp.Chaoslab.telemetry
        in
        let horizon = o.Iov_exp.Chaoslab.horizon in
        fun () -> ignore (Inv.check ~scenario ~actions ~horizon events)))

(* the multipath receiver's per-message dedup decision, steady state:
   a sliding window absorbing an in-order stream with every fourth
   sequence a duplicate (roughly what k=2 dissemination delivers) *)
let bench_route_dedup =
  Test.make ~name:"routing/dedup-admit"
    (Staged.stage
       (let d = Iov_routing.Dedup.create () in
        let seq = ref 0 in
        fun () ->
          incr seq;
          ignore (Iov_routing.Dedup.admit d !seq);
          if !seq land 3 = 0 then ignore (Iov_routing.Dedup.admit d !seq)))

(* the gossiped neighbor-table graph of routelab's 16-node overlay *)
let route_graph =
  let n = 16 in
  List.init n (fun i ->
      ( NI.synthetic (i + 1),
        List.map
          (fun d -> NI.synthetic (((i + d) mod n) + 1))
          [ 1; 2; n - 1; n - 2 ] ))

(* the source-side path computation a session (re)establishment pays:
   two edge-disjoint paths across the ring-plus-chords overlay *)
let bench_route_kpaths =
  Test.make ~name:"routing/k-disjoint-16"
    (Staged.stage (fun () ->
         ignore
           (Iov_routing.Path.k_disjoint route_graph ~k:2
              ~src:(NI.synthetic 1) ~dst:(NI.synthetic 9) ())))

(* one peer-sampling shuffle round against a full 16-descriptor view:
   age, assemble the outgoing sample, merge the partner's 8 descriptors
   back with the swap-rule eviction *)
let bench_gossip_view_merge =
  Test.make ~name:"gossip/view-merge"
    (Staged.stage
       (let rng = Random.State.make [| 42 |] in
        let vw = Gvw.create ~capacity:16 ~self:(NI.synthetic 1) () in
        List.iter
          (fun i -> Gvw.add vw ~rng (NI.synthetic i))
          (List.init 32 (fun i -> i + 2));
        let received = List.init 8 (fun i -> NI.synthetic (40 + i)) in
        let partner = NI.synthetic 40 in
        fun () ->
          Gvw.age vw;
          let out = Gvw.shuffle_out vw ~rng ~size:8 ~exclude:partner in
          Gvw.merge vw ~rng ~sent:out received))

(* the SWIM bookkeeping of one failure-detection round at n=64: the
   expired-suspect scan, a suspicion verdict and its piggyback
   assembly, the confirmation, and the refutation that resurrects the
   victim (at a higher incarnation) for the next pass *)
let bench_gossip_probe_round =
  Test.make ~name:"gossip/probe-round"
    (Staged.stage
       (let sw = Gsw.create ~self:(NI.synthetic 1) () in
        List.iter
          (fun i ->
            ignore
              (Gsw.apply sw ~now:0.
                 { Gsw.u_node = NI.synthetic i; u_status = Gsw.Alive;
                   u_inc = 0 }))
          (List.init 64 (fun i -> i + 2));
        ignore (Gsw.piggyback sw ~limit:max_int);
        let now = ref 0. in
        let i = ref 0 in
        fun () ->
          now := !now +. 0.5;
          incr i;
          let victim = NI.synthetic (2 + (!i mod 64)) in
          ignore (Gsw.expired_suspects sw ~now:!now ~timeout:2.0);
          ignore (Gsw.suspect_local sw ~now:!now victim);
          ignore (Gsw.piggyback sw ~limit:8);
          ignore (Gsw.confirm_local sw ~now:(!now +. 2.1) victim);
          ignore (Gsw.piggyback sw ~limit:8);
          match Gsw.status_of sw victim with
          | Some (_, inc) ->
            ignore
              (Gsw.apply sw ~now:!now
                 { Gsw.u_node = victim; u_status = Gsw.Alive;
                   u_inc = inc + 1 })
          | None -> assert false))

(* the per-message overload-guard decision on the switch's hot path:
   one breaker check plus one token-bucket/shed-floor admission
   verdict, with occasional failure and success evidence mixed in so
   both state machines keep exercising their transitions *)
let bench_guard_breaker_admit =
  Test.make ~name:"guard/breaker-admit"
    (Staged.stage
       (let rng = Random.State.make [| 11; 0x6a4d |] in
        let br = Iov_guard.Breaker.create ~rng () in
        let adm =
          Iov_guard.Admission.create
            ~classes:
              [ (1, Iov_guard.Admission.cls ~rate:65536. ~priority:1 ()) ]
            ~default:(Iov_guard.Admission.cls ~priority:2 ())
            ~now:0. ()
        in
        let now = ref 0. in
        let i = ref 0 in
        fun () ->
          incr i;
          now := !now +. 0.001;
          ignore (Iov_guard.Breaker.allow br ~now:!now);
          if !i land 1023 = 0 then
            ignore (Iov_guard.Breaker.on_failure br ~now:!now)
          else if !i land 255 = 0 then
            ignore (Iov_guard.Breaker.on_success br ~now:!now);
          ignore
            (Iov_guard.Admission.admit adm ~now:!now ~app:1 ~size:512
               ~backlog:(!i land 63))))

(* the batched sender's staging cycle: 64 small frames encoded in place
   into a pooled 256 KB buffer and flushed through a sink that consumes
   the whole run at once — the per-batch cost the syscall saving has to
   beat *)
let batch_flush_msgs =
  List.init 64 (fun i ->
      Msg.data ~origin:(NI.synthetic (1 + (i mod 7))) ~app:1 ~seq:i
        (Bytes.make 256 'f'))

let bench_batch_flush =
  Test.make ~name:"onet/batch-flush"
    (Staged.stage
       (let pool = Iov_onet.Batcher.pool () in
        fun () ->
          let batch = Iov_onet.Batcher.acquire pool in
          List.iter
            (fun m -> ignore (Iov_onet.Batcher.add batch m))
            batch_flush_msgs;
          ignore
            (Iov_onet.Batcher.flush batch ~write:(fun _ _ len -> len));
          Iov_onet.Batcher.release batch))

let micro_tests =
  [
    bench_codec_encode;
    bench_codec_decode;
    bench_gf_mul;
    bench_gf_mul_table;
    bench_gf_axpy;
    bench_gf_axpy1;
    bench_linear_decode;
    bench_incremental_decode;
    bench_cqueue;
    bench_heap;
    bench_switch_hop;
    bench_fanout_8way;
    bench_fanout_8way_telem;
    bench_chaos_compile;
    bench_chaos_check;
    bench_route_dedup;
    bench_route_kpaths;
    bench_gossip_view_merge;
    bench_gossip_probe_round;
    bench_guard_breaker_admit;
    bench_batch_flush;
  ]

let json_file = "BENCH_micro.json"

(* Machine-readable perf trajectory: one ns/run estimate per benchmark,
   written only under [-- micro --json] so ad-hoc runs do not clobber
   the committed numbers. *)
let write_json rows =
  let oc = open_out json_file in
  let fmt = Printf.fprintf in
  fmt oc "{\n  \"unit\": \"ns/run\",\n  \"benchmarks\": {\n";
  let n = List.length rows in
  List.iteri
    (fun i (name, est) ->
      let sep = if i = n - 1 then "" else "," in
      match est with
      | Some e -> fmt oc "    %S: %.1f%s\n" name e sep
      | None -> fmt oc "    %S: null%s\n" name sep)
    rows;
  fmt oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d benchmarks)\n" json_file n

let run_micro ?(smoke = false) ~json () =
  print_endline "== micro-benchmarks (Bechamel) ==";
  let instances = Instance.[ monotonic_clock ] in
  (* --smoke: a few iterations per benchmark, enough for CI to prove
     every benchmark still runs without spending minutes measuring *)
  let cfg =
    if smoke then Benchmark.cfg ~limit:50 ~quota:(Time.second 0.05) ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ()
  in
  let grouped = Test.make_grouped ~name:"iov" micro_tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let rows =
    List.map
      (fun (name, result) ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> (name, Some est)
        | Some _ | None -> (name, None))
      (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)
  in
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Printf.printf "  %-36s %12.1f ns/run\n" name est
      | None -> Printf.printf "  %-36s (no estimate)\n" name)
    rows;
  if json then write_json rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* The paper harness                                                   *)

let run_paper ~quick =
  print_endline "== paper experiments: every table and figure ==";
  print_newline ();
  let fig5_sizes =
    if quick then [ 2; 3; 4; 8; 16 ] else Iov_exp.Fig5.default_sizes
  in
  ignore (Iov_exp.Fig5.run ~sizes:fig5_sizes ());
  ignore (Iov_exp.Fig6.run ());
  ignore (Iov_exp.Fig7.run ());
  ignore (Iov_exp.Fig8.run ());
  ignore (Iov_exp.Fig9.run ());
  ignore (Iov_exp.Fig11.run ~n:(if quick then 30 else 81) ());
  ignore (Iov_exp.Fig12.run ());
  ignore (Iov_exp.Fig14.run ());
  ignore (Iov_exp.Fig16.run ());
  let fig17_sizes =
    if quick then [ 5; 20; 40 ] else Iov_exp.Fig17.default_sizes
  in
  ignore (Iov_exp.Fig17.run ~sizes:fig17_sizes ());
  ignore (Iov_exp.Fig18.run ());
  let fig19_sizes =
    if quick then [ 5; 15; 30 ] else Iov_exp.Fig19.default_sizes
  in
  ignore (Iov_exp.Fig19.run ~sizes:fig19_sizes ());
  (* beyond the paper's figures: the Section-3.1 robustness study and
     the design-choice ablations *)
  ignore (Iov_exp.Robustness.run ~n:(if quick then 12 else 20) ());
  Iov_exp.Ablations.run_all ()

let () =
  let args = Array.to_list Sys.argv in
  let json = List.mem "--json" args in
  let smoke = List.mem "--smoke" args in
  let mode =
    match
      List.filter (fun a -> a <> "--json" && a <> "--smoke") (List.tl args)
    with
    | m :: _ -> m
    | [] -> "all"
  in
  match mode with
  | "micro" -> run_micro ~smoke ~json ()
  | "paper" -> run_paper ~quick:false
  | "quick" ->
    run_micro ~smoke ~json ();
    run_paper ~quick:true
  | "all" ->
    run_micro ~smoke ~json ();
    run_paper ~quick:false
  | m ->
    Printf.eprintf "unknown mode %S (expected micro | paper | quick | all)\n" m;
    exit 2
