(* The iOverlay experiment driver: run any paper table/figure
   reproduction by id, or all of them. *)

let experiments :
    (string * string * (quick:bool -> seed:int option -> unit)) list =
  [
    ( "fig5",
      "raw engine switching performance on a chain of virtual nodes",
      fun ~quick ~seed:_ ->
        let sizes = if quick then [ 2; 3; 4; 8 ] else Iov_exp.Fig5.default_sizes in
        ignore (Iov_exp.Fig5.run ~sizes ()) );
    ( "fig6",
      "engine correctness: emulation, back pressure, terminations",
      fun ~quick:_ ~seed:_ -> ignore (Iov_exp.Fig6.run ()) );
    ( "fig7",
      "bottleneck behaviour with large (10000-message) buffers",
      fun ~quick:_ ~seed:_ -> ignore (Iov_exp.Fig7.run ()) );
    ( "fig8",
      "network coding in GF(2^8) at node D",
      fun ~quick:_ ~seed:_ -> ignore (Iov_exp.Fig8.run ()) );
    ( "fig9",
      "tree construction + Table 3 on the 5-node session",
      fun ~quick:_ ~seed:_ -> ignore (Iov_exp.Fig9.run ()) );
    ( "fig11",
      "tree construction on 81 wide-area nodes",
      fun ~quick ~seed ->
        ignore (Iov_exp.Fig11.run ?seed ~n:(if quick then 30 else 81) ()) );
    ( "fig12",
      "10-node and 81-node ns-aware topologies (Figs. 12-13)",
      fun ~quick:_ ~seed -> ignore (Iov_exp.Fig12.run ?seed ()) );
    ( "fig14",
      "a federated complex service + per-node stats (Figs. 14-15)",
      fun ~quick:_ ~seed -> ignore (Iov_exp.Fig14.run ?seed ()) );
    ( "fig16",
      "sAware overhead over time (30-node service overlay)",
      fun ~quick:_ ~seed -> ignore (Iov_exp.Fig16.run ?seed ()) );
    ( "fig17",
      "control overhead vs network size",
      fun ~quick ~seed ->
        let sizes = if quick then [ 5; 20; 40 ] else Iov_exp.Fig17.default_sizes in
        ignore (Iov_exp.Fig17.run ?seed ~sizes ()) );
    ( "fig18",
      "per-node overhead under heavy federation load",
      fun ~quick:_ ~seed -> ignore (Iov_exp.Fig18.run ?seed ()) );
    ( "fig19",
      "end-to-end bandwidth: sFlow vs fixed vs random",
      fun ~quick ~seed ->
        let sizes = if quick then [ 5; 10; 20 ] else Iov_exp.Fig19.default_sizes in
        ignore (Iov_exp.Fig19.run ?seed ~sizes ()) );
    ( "robustness",
      "failure injection + availability recovery (Section 3.1)",
      fun ~quick ~seed ->
        ignore (Iov_exp.Robustness.run ?seed ~n:(if quick then 12 else 20) ()) );
    ( "churn",
      "availability vs churn rate across the tree strategies",
      fun ~quick ~seed ->
        ignore
          (Iov_exp.Churnsweep.run ?seed
             ~n:(if quick then 8 else 12)
             ~rates:(if quick then [ 2.; 6. ] else [ 1.; 2.; 4.; 8. ])
             ()) );
    ( "ablations",
      "design-choice sweeps: buffers, pipelining, CPU model",
      fun ~quick:_ ~seed:_ -> Iov_exp.Ablations.run_all () );
  ]

open Cmdliner

let seed_opt_arg =
  let doc =
    "Override the experiment's default random seed (experiments with no \
     seeded randomness ignore it)."
  in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let run_cmd =
  let id_arg =
    let doc = "Experiment id (fig5..fig19, robustness, churn), or 'all'." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let quick_arg =
    let doc = "Smaller workloads for a fast pass." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let run id quick seed =
    if id = "all" then begin
      List.iter (fun (_, _, f) -> f ~quick ~seed) experiments;
      `Ok ()
    end
    else
      match List.find_opt (fun (n, _, _) -> n = id) experiments with
      | Some (_, _, f) ->
        f ~quick ~seed;
        `Ok ()
      | None -> `Error (false, "unknown experiment: " ^ id)
  in
  let info =
    Cmd.info "run" ~doc:"Run a paper experiment reproduction by id."
  in
  Cmd.v info Term.(ret (const run $ id_arg $ quick_arg $ seed_opt_arg))

let trace_cmd =
  let topo_arg =
    let doc = "Topology: 'chain', 'fig6' or 'random'." in
    Arg.(value & opt string "fig6" & info [ "topo" ] ~docv:"TOPO" ~doc)
  in
  let n_arg =
    let doc = "Node count for 'chain' and 'random' topologies." in
    Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Simulation seed (same seed => byte-identical trace)." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let until_arg =
    let doc = "Simulated seconds to run." in
    Arg.(value & opt float 2.0 & info [ "until" ] ~docv:"T" ~doc)
  in
  let out_arg =
    let doc = "Write the JSONL trace to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let ring_arg =
    let doc = "Per-node flight-recorder capacity (events)." in
    Arg.(value & opt int 4096 & info [ "ring" ] ~docv:"CAP" ~doc)
  in
  let run topo_name n seed until out ring =
    let topo_and_source =
      match topo_name with
      | "chain" -> Some (Iov_topo.Topo.chain ~n, "n1")
      | "fig6" -> Some (Iov_topo.Topo.fig6 (), "A")
      | "random" ->
        Some (Iov_topo.Topo.random_graph ~seed ~n ~degree:3 (), "n1")
      | _ -> None
    in
    match topo_and_source with
    | None -> `Error (false, "unknown topology: " ^ topo_name)
    | Some (topo, source) ->
      let tele = Iov_telemetry.Telemetry.create ~ring_capacity:ring () in
      let f =
        Iov_exp.Harness.build_flood ~seed ~telemetry:tele ~topo ~source ()
      in
      Iov_exp.Harness.Network.run ~until f.Iov_exp.Harness.net;
      let digest = Iov_telemetry.Telemetry.digest tele in
      let total = Iov_telemetry.Telemetry.total_events tele in
      (match out with
      | Some path ->
        let lines = Iov_telemetry.Telemetry.save_jsonl tele path in
        Printf.printf "wrote %d events to %s (of %d recorded)\n" lines path
          total;
        Printf.printf "digest %s\n" digest
      | None ->
        print_string (Iov_telemetry.Telemetry.dump_jsonl tele);
        Printf.eprintf "%d events recorded, digest %s\n" total digest);
      `Ok ()
  in
  let info =
    Cmd.info "trace"
      ~doc:
        "Run a deterministic simulation with telemetry and dump the causal \
         event trace as JSONL."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ topo_arg $ n_arg $ seed_arg $ until_arg $ out_arg
       $ ring_arg))

let chaos_cmd =
  let name_arg =
    let doc = "A bundled scenario name (see $(b,--list))." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  let scenario_arg =
    let doc = "Run the scenario in $(docv) (chaos text format)." in
    Arg.(
      value & opt (some string) None & info [ "scenario" ] ~docv:"FILE" ~doc)
  in
  let list_arg =
    let doc = "List the bundled scenarios." in
    Arg.(value & flag & info [ "list" ] ~doc)
  in
  let smoke_arg =
    let doc =
      "Run every bundled scenario and check that the regular ones pass \
       while the deliberately-broken fixture is flagged; non-zero exit on \
       any surprise (the CI gate)."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let topo_arg =
    let doc =
      "Workload for $(b,--scenario) files: 'fig6', 'chain', 'random', \
       'session', 'session-unicast' or 'session-random'."
    in
    Arg.(value & opt string "fig6" & info [ "topo" ] ~docv:"W" ~doc)
  in
  let n_arg =
    let doc = "Node count for sized workloads." in
    Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Workload seed (same scenario + seed => identical trace)." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let until_arg =
    let doc = "Simulated seconds to run (default: scenario-derived)." in
    Arg.(value & opt (some float) None & info [ "until" ] ~docv:"T" ~doc)
  in
  let out_arg =
    let doc = "Write the run's JSONL telemetry trace to $(docv)." in
    Arg.(
      value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run name scenario_file list smoke topo n seed until out =
    let module C = Iov_exp.Chaoslab in
    let finish (o : C.outcome) =
      let tl = o.C.telemetry in
      Printf.printf "%d events, digest %s\n"
        (List.length (Iov_telemetry.Telemetry.events tl))
        (Iov_telemetry.Telemetry.digest tl);
      (match out with
      | Some path ->
        let lines = Iov_telemetry.Telemetry.save_jsonl tl path in
        Printf.printf "wrote %d events to %s\n" lines path
      | None -> ());
      if C.Invariant.ok o.C.report then `Ok ()
      else exit 1
    in
    if list then begin
      List.iter
        (fun (n, doc, _, _, _, _) -> Printf.printf "  %-16s %s\n" n doc)
        C.builtins;
      `Ok ()
    end
    else if smoke then if C.smoke ~seed () then `Ok () else exit 1
    else
      match (name, scenario_file) with
      | Some name, None -> (
        match C.run_builtin ~seed ?until name with
        | Some o -> finish o
        | None -> `Error (false, "unknown scenario: " ^ name))
      | None, Some path -> (
        match C.workload_of_string ~n topo with
        | None -> `Error (false, "unknown workload: " ^ topo)
        | Some workload -> (
          match C.Scenario.parse_file path with
          | scenario -> finish (C.run ~seed ?until ~workload scenario)
          | exception C.Scenario.Parse_error (line, msg) ->
            `Error (false, Printf.sprintf "%s:%d: %s" path line msg)))
      | Some _, Some _ ->
        `Error (false, "give either a scenario name or --scenario, not both")
      | None, None ->
        `Error (false, "nothing to do: give a name, --scenario, --list or --smoke")
  in
  let info =
    Cmd.info "chaos"
      ~doc:
        "Run a deterministic fault-injection scenario against a simulated \
         overlay and check its recovery invariants against the telemetry \
         trace."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ name_arg $ scenario_arg $ list_arg $ smoke_arg $ topo_arg
       $ n_arg $ seed_arg $ until_arg $ out_arg))

let route_cmd =
  let n_arg =
    let doc = "Overlay size (ring-plus-chords)." in
    Arg.(value & opt int 16 & info [ "n" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Simulation seed (same seed => identical tables)." in
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let k_arg =
    let doc =
      "Comma-separated multipath widths to compare (besides the single-tree \
       and backpressure variants)."
    in
    Arg.(value & opt string "2,3" & info [ "k" ] ~docv:"K,K,..." ~doc)
  in
  let kill_arg =
    let doc = "Simulated time of the mid-session kill." in
    Arg.(value & opt float 8.0 & info [ "kill-at" ] ~docv:"T" ~doc)
  in
  let smoke_arg =
    let doc =
      "Fast CI gate: assert k=2 multipath keeps >= 90% of its pre-kill \
       goodput while the single-tree baseline drops to zero; non-zero exit \
       otherwise."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let run n seed ks kill_at smoke =
    let module R = Iov_exp.Routelab in
    if smoke then if R.smoke () then `Ok () else exit 1
    else
      let widths =
        String.split_on_char ',' ks
        |> List.filter_map (fun s -> int_of_string_opt (String.trim s))
        |> List.filter (fun k -> k >= 1 && k <= 8)
      in
      if widths = [] then `Error (false, "no valid multipath widths in: " ^ ks)
      else begin
        let variants =
          [ R.Static; R.Backpressure ] @ List.map (fun k -> R.Multi k) widths
        in
        ignore (R.run ~seed ~n ~kill_at ~variants ());
        `Ok ()
      end
  in
  let info =
    Cmd.info "route"
      ~doc:
        "Compare adaptive routing disciplines (single-tree, backpressure, \
         k-multipath) under a mid-session failure."
  in
  Cmd.v info
    Term.(ret (const run $ n_arg $ seed_arg $ k_arg $ kill_arg $ smoke_arg))

let gossip_cmd =
  let sizes_arg =
    let doc = "Comma-separated overlay sizes to compare." in
    Arg.(value & opt string "32,128,512" & info [ "sizes" ] ~docv:"N,N,..." ~doc)
  in
  let seed_arg =
    let doc = "Simulation seed (same seed => identical tables)." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let frac_arg =
    let doc = "Fraction of the overlay killed at once." in
    Arg.(value & opt float 0.1 & info [ "kill-frac" ] ~docv:"F" ~doc)
  in
  let kill_arg =
    let doc = "Simulated time of the mass kill." in
    Arg.(value & opt float 5.0 & info [ "kill-at" ] ~docv:"T" ~doc)
  in
  let smoke_arg =
    let doc =
      "Fast CI gate: a 128-node overlay under a seeded 10%-kill chaos \
       scenario must converge (membership-converges invariant, exact \
       surviving views), use zero observer bootstrap bytes, and be \
       byte-deterministic under the seed; non-zero exit otherwise."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let run sizes_s seed frac kill_at smoke =
    let module G = Iov_exp.Gossiplab in
    if smoke then if G.smoke ~seed () then `Ok () else exit 1
    else
      let sizes =
        String.split_on_char ',' sizes_s
        |> List.filter_map (fun s -> int_of_string_opt (String.trim s))
        |> List.filter (fun n -> n >= 2)
      in
      if sizes = [] then `Error (false, "no valid sizes in: " ^ sizes_s)
      else if frac <= 0. || frac >= 1. then
        `Error (false, "kill-frac must be in (0, 1)")
      else begin
        ignore (G.run ~seed ~sizes ~kill_frac:frac ~kill_at ());
        `Ok ()
      end
  in
  let info =
    Cmd.info "gossip"
      ~doc:
        "Compare decentralized gossip membership (SWIM failure detection + \
         peer sampling) against the observer-polling baseline: detection \
         latency and control overhead vs overlay size."
  in
  Cmd.v info
    Term.(ret (const run $ sizes_arg $ seed_arg $ frac_arg $ kill_arg $ smoke_arg))

let guard_cmd =
  let n_arg =
    let doc = "Overlay size (ring-plus-chords)." in
    Arg.(value & opt int 12 & info [ "n" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Simulation seed (same seed => identical tables)." in
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let smoke_arg =
    let doc =
      "Fast CI gate: a seeded loss + first-hop-kill + source-squeeze run \
       must keep retransmit bytes under budget, shed the low-priority \
       stream strictly before the high one, open and re-close its circuit \
       breakers inside the window, respawn the killed hop through the \
       watchdog, and be byte-deterministic under the seed; non-zero exit \
       otherwise."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let run n seed smoke =
    let module G = Iov_exp.Guardlab in
    if smoke then if G.smoke ~seed () then `Ok () else exit 1
    else begin
      ignore (G.run ~seed ~n ());
      `Ok ()
    end
  in
  let info =
    Cmd.info "guard"
      ~doc:
        "Exercise the overload guard (circuit breakers, priority load \
         shedding, bounded retransmits, watchdog supervision): compare a \
         guarded overlay against the same overlay bare under identical \
         seeded abuse."
  in
  Cmd.v info Term.(ret (const run $ n_arg $ seed_arg $ smoke_arg))

let net_cmd =
  let payloads_arg =
    let doc = "Comma-separated payload sizes (bytes) to sweep." in
    Arg.(
      value & opt string "64,1024,16384"
      & info [ "payloads" ] ~docv:"B,B,..." ~doc)
  in
  let msgs_arg =
    let doc = "Messages per mode per payload." in
    Arg.(value & opt int 8000 & info [ "msgs" ] ~docv:"N" ~doc)
  in
  let trials_arg =
    let doc = "Trials per mode (the best rate is kept)." in
    Arg.(value & opt int 2 & info [ "trials" ] ~docv:"K" ~doc)
  in
  let smoke_arg =
    let doc =
      "Fast CI gate: 20000 64-byte messages over loopback TCP must move at \
       least 1.5x faster through the batched sender than through the \
       per-message sender, with fewer than one write syscall per message; \
       non-zero exit otherwise."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let run payloads_s msgs trials smoke =
    let module N = Iov_exp.Netlab in
    if smoke then if N.smoke () then `Ok () else exit 1
    else
      let payloads =
        String.split_on_char ',' payloads_s
        |> List.filter_map (fun s -> int_of_string_opt (String.trim s))
        |> List.filter (fun p -> p >= 0)
      in
      if payloads = [] then
        `Error (false, "no valid payload sizes in: " ^ payloads_s)
      else if msgs <= 0 || trials <= 0 then
        `Error (false, "msgs and trials must be positive")
      else begin
        ignore (N.run ~payloads ~msgs ~trials ());
        `Ok ()
      end
  in
  let info =
    Cmd.info "net"
      ~doc:
        "Benchmark the sockets runtime over loopback TCP: the batched \
         coalescing sender against the one-write-per-message baseline, \
         rates and write syscalls per message across payload sizes."
  in
  Cmd.v info
    Term.(ret (const run $ payloads_arg $ msgs_arg $ trials_arg $ smoke_arg))

let list_cmd =
  let run () =
    List.iter
      (fun (n, doc, _) -> Printf.printf "  %-10s %s\n" n doc)
      experiments
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available experiments.")
    Term.(const run $ const ())

let main =
  let info =
    Cmd.info "iover" ~version:"1.0.0"
      ~doc:"iOverlay (Middleware 2004) reproduction harness."
  in
  Cmd.group info
    [ run_cmd; trace_cmd; chaos_cmd; route_cmd; gossip_cmd; guard_cmd;
      net_cmd; list_cmd ]

let () = exit (Cmd.eval main)
