.PHONY: all build test bench check fmt

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe -- micro --json

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

# One-command CI gate: format check (if available), full build, all tests.
check: fmt
	dune build @all
	dune runtest
