module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module NI = Iov_msg.Node_id
module Wire = Iov_msg.Wire

let fed_ack_kind = 103

module Req = struct
  type t = {
    edges : (int * int) list;
    source : int;
    sink : int;
  }

  let consumers t ty =
    List.filter_map (fun (a, b) -> if a = ty then Some b else None) t.edges

  let types t =
    List.sort_uniq Int.compare
      (List.concat_map (fun (a, b) -> [ a; b ]) t.edges)

  let make ~edges ~source ~sink =
    if edges = [] then invalid_arg "Req.make: no edges";
    let t = { edges; source; sink } in
    if consumers t sink <> [] then invalid_arg "Req.make: sink has consumers";
    let tys = types t in
    (* acyclicity: DFS with three colors over every type *)
    let color = Hashtbl.create 8 in
    let rec visit ty =
      match Hashtbl.find_opt color ty with
      | Some `Done -> ()
      | Some `Active -> invalid_arg "Req.make: cycle"
      | None ->
        Hashtbl.replace color ty `Active;
        List.iter visit (consumers t ty);
        Hashtbl.replace color ty `Done
    in
    List.iter visit tys;
    (* reachability from the source *)
    let reachable = Hashtbl.create 8 in
    let rec reach ty =
      if not (Hashtbl.mem reachable ty) then begin
        Hashtbl.replace reachable ty ();
        List.iter reach (consumers t ty)
      end
    in
    reach source;
    List.iter
      (fun ty ->
        if not (Hashtbl.mem reachable ty) then
          invalid_arg "Req.make: type unreachable from source")
      tys;
    if not (Hashtbl.mem reachable sink) then
      invalid_arg "Req.make: sink unreachable";
    t

  let linear tys =
    match tys with
    | a :: (_ :: _ as rest) ->
      let rec pair x = function
        | [] -> []
        | y :: tl -> (x, y) :: pair y tl
      in
      let last = List.nth tys (List.length tys - 1) in
      make ~edges:(pair a rest) ~source:a ~sink:last
    | [ _ ] | [] -> invalid_arg "Req.linear: need at least two stages"

  let to_payload t w =
    Wire.W.int32 w t.source;
    Wire.W.int32 w t.sink;
    Wire.W.int32 w (List.length t.edges);
    List.iter
      (fun (a, b) ->
        Wire.W.int32 w a;
        Wire.W.int32 w b)
      t.edges

  let of_payload r =
    let source = Wire.R.int32 r in
    let sink = Wire.R.int32 r in
    let n = Wire.R.int32 r in
    if n <= 0 then raise Wire.Truncated;
    let edges =
      List.init n (fun _ ->
          let a = Wire.R.int32 r in
          let b = Wire.R.int32 r in
          (a, b))
    in
    { edges; source; sink }
end

type strategy = [ `Sflow | `Fixed | `Random ]

let strategy_name = function
  | `Sflow -> "sFlow"
  | `Fixed -> "fixed"
  | `Random -> "random"

type session = {
  requester : NI.t option; (* None: this node is the federation source *)
  req : Req.t;
  mutable children : NI.t list;
  mutable awaiting : int; (* children acks outstanding *)
  mutable acked : bool; (* ack already sent upstream *)
  mutable extra_requesters : NI.t list;
      (* reconvergent DAG branches that selected this same instance
         while federation was still in progress *)
  pump : Pump.t;
}

type t = {
  strategy : strategy;
  advertised_bw : float;
  aware_fanout : int;
  aware_ttl : int;
  deploy_data : bool;
  mutable announced_to : NI.Set.t;
  mutable stype : int option;
  dir : (int, (NI.t * float) list ref) Hashtbl.t;
  mutable aware_seen : NI.Set.t;
  sessions : (int, session) Hashtbl.t;
  mutable completed : int;
  mutable failures : int;
}

let create ~strategy ?(advertised_bw = 100. *. 1024.) ?(aware_fanout = 2)
    ?(aware_ttl = 16) ?(deploy_data = true) () =
  if advertised_bw <= 0. then invalid_arg "Sflow.create: advertised_bw";
  {
    strategy;
    advertised_bw;
    aware_fanout;
    aware_ttl;
    deploy_data;
    announced_to = NI.Set.empty;
    stype = None;
    dir = Hashtbl.create 8;
    aware_seen = NI.Set.empty;
    sessions = Hashtbl.create 8;
    completed = 0;
    failures = 0;
  }

let service_type t = t.stype

let directory t =
  Hashtbl.fold (fun ty l acc -> (ty, List.map fst !l) :: acc) t.dir []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let selected_children t ~app =
  match Hashtbl.find_opt t.sessions app with
  | Some s -> s.children
  | None -> []

let sessions_completed t = t.completed
let federation_failures t = t.failures

(* ------------------------------------------------------------------ *)
(* Awareness                                                           *)

let record_instance t ~ty ~inst ~bw =
  let l =
    match Hashtbl.find_opt t.dir ty with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.add t.dir ty l;
      l
  in
  if not (List.exists (fun (i, _) -> NI.equal i inst) !l) then
    l := (inst, bw) :: !l

let aware_payload ~inst ~ty ~bw ~ttl =
  let w = Wire.W.create () in
  Wire.W.node w inst;
  Wire.W.int32 w ty;
  Wire.W.float w bw;
  Wire.W.int32 w ttl;
  Wire.W.contents w

let parse_aware payload =
  try
    let r = Wire.R.of_bytes payload in
    let inst = Wire.R.node r in
    let ty = Wire.R.int32 r in
    let bw = Wire.R.float r in
    let ttl = Wire.R.int32 r in
    Some (inst, ty, bw, ttl)
  with Wire.Truncated -> None

let pick_random rng k l =
  let a = Array.of_list l in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list (Array.sub a 0 (Stdlib.min k n))

let send_aware (ctx : Alg.ctx) ~inst ~ty ~bw ~ttl targets =
  let m =
    Msg.control ~mtype:Mt.S_aware ~origin:ctx.self
      (aware_payload ~inst ~ty ~bw ~ttl)
  in
  List.iter (fun h -> ctx.send (Msg.share m) h) targets

(* Announce to every known host not yet notified. Called at assignment
   and again on each engine tick, so awareness spreads to hosts learned
   later — and the per-interval overhead decays once everyone knows us
   (the Fig. 16 behaviour). *)
let announce_self t (ctx : Alg.ctx) ty =
  let hosts =
    List.filter
      (fun h ->
        (not (NI.equal h ctx.self)) && not (NI.Set.mem h t.announced_to))
      (ctx.known_hosts ())
  in
  t.announced_to <-
    List.fold_left (fun s h -> NI.Set.add h s) t.announced_to hosts;
  send_aware ctx ~inst:ctx.self ~ty ~bw:t.advertised_bw ~ttl:t.aware_ttl
    hosts

let handle_aware t (ctx : Alg.ctx) payload =
  match parse_aware payload with
  | None -> ()
  | Some (inst, ty, bw, ttl) ->
    if NI.equal inst ctx.self then ()
    else if NI.Set.mem inst t.aware_seen && ttl < t.aware_ttl then ()
    else begin
      let first_time = not (NI.Set.mem inst t.aware_seen) in
      t.aware_seen <- NI.Set.add inst t.aware_seen;
      record_instance t ~ty ~inst ~bw;
      ctx.add_known_host inst;
      if first_time && ttl > 0 then
        match t.stype with
        | Some _ ->
          (* a service node relays awareness to the service instances
             it knows about *)
          let peers =
            Hashtbl.fold
              (fun _ l acc -> List.map fst !l @ acc)
              t.dir []
            |> List.filter (fun p ->
                   not (NI.equal p inst || NI.equal p ctx.self))
            |> List.sort_uniq NI.compare
          in
          send_aware ctx ~inst ~ty ~bw ~ttl:(ttl - 1)
            (pick_random ctx.rng t.aware_fanout peers)
        | None ->
          (* plain overlay nodes gossip it onwards *)
          let hosts =
            List.filter
              (fun h -> not (NI.equal h ctx.self || NI.equal h inst))
              (ctx.known_hosts ())
          in
          send_aware ctx ~inst ~ty ~bw ~ttl:(ttl - 1)
            (pick_random ctx.rng t.aware_fanout hosts)
    end

(* ------------------------------------------------------------------ *)
(* Federation                                                          *)

let send_ack (ctx : Alg.ctx) ~app requester =
  ctx.send (Msg.with_params ~mtype:(Mt.Custom fed_ack_kind) ~origin:ctx.self ~app 0 0)
    requester

let complete_session t (s : session) (ctx : Alg.ctx) ~app =
  if not s.acked then begin
    s.acked <- true;
    List.iter (fun up -> send_ack ctx ~app up) s.extra_requesters;
    s.extra_requesters <- [];
    match s.requester with
    | Some up -> send_ack ctx ~app up
    | None ->
      (* this node originated the federation: deploy the data streams *)
      t.completed <- t.completed + 1;
      if t.deploy_data then begin
        List.iter (fun c -> Pump.add_dest s.pump ctx c) s.children;
        Pump.start s.pump ctx
      end
  end

let forward_federate (ctx : Alg.ctx) ~app req child =
  let w = Wire.W.create () in
  Req.to_payload req w;
  let m =
    Msg.control ~mtype:Mt.S_federate ~origin:ctx.self ~app (Wire.W.contents w)
  in
  ctx.send m child

(* Select one instance of [ty]; calls [k] with the choice (or [None]
   when no candidate is known). Selection may be asynchronous: the
   sFlow strategy measures each candidate first. *)
let select t (ctx : Alg.ctx) ty k =
  let candidates =
    match Hashtbl.find_opt t.dir ty with
    | Some l -> List.filter (fun (i, _) -> not (NI.equal i ctx.self)) !l
    | None -> []
  in
  match candidates with
  | [] ->
    t.failures <- t.failures + 1;
    k None
  | [ (only, _) ] -> k (Some only)
  | _ -> (
    match t.strategy with
    | `Random ->
      let n = List.length candidates in
      k (Some (fst (List.nth candidates (Random.State.int ctx.rng n))))
    | `Fixed ->
      (* highest advertised static capacity *)
      let best =
        List.fold_left
          (fun (bi, bb) (i, b) -> if b > bb then (i, b) else (bi, bb))
          (List.hd candidates) (List.tl candidates)
      in
      k (Some (fst best))
    | `Sflow ->
      (* measure point-to-point available bandwidth to each candidate
         and pick the most bandwidth-efficient one *)
      let pending = ref (List.length candidates) in
      let best = ref None in
      List.iter
        (fun (i, _) ->
          ctx.measure i (fun ~bandwidth ~latency:_ ->
              (match !best with
              | Some (_, bb) when bb >= bandwidth -> ()
              | Some _ | None -> best := Some (i, bandwidth));
              decr pending;
              if !pending = 0 then
                k (match !best with Some (i, _) -> Some i | None -> None)))
        candidates)

let handle_federate t (ctx : Alg.ctx) (m : Msg.t) =
  let app = m.Msg.app in
  match Hashtbl.find_opt t.sessions app with
  | Some s ->
    (* a reconvergent branch selected this instance too: acknowledge
       now if done, or once our own subtree completes *)
    if s.acked then send_ack ctx ~app m.origin
    else s.extra_requesters <- m.origin :: s.extra_requesters
  | None -> (
    match
      (try Some (Req.of_payload (Wire.R.of_bytes m.payload))
       with Wire.Truncated -> None)
    with
    | None -> ()
    | Some req ->
      let from_observer =
        match ctx.observer with
        | Some o -> NI.equal m.origin o
        | None -> false
      in
      let requester = if from_observer then None else Some m.origin in
      let s =
        {
          requester;
          req;
          children = [];
          awaiting = 0;
          acked = false;
          extra_requesters = [];
          pump = Pump.create ~app ();
        }
      in
      Hashtbl.add t.sessions app s;
      let my_ty = match t.stype with Some ty -> ty | None -> req.Req.source in
      let consumer_tys = Req.consumers req my_ty in
      if consumer_tys = [] then complete_session t s ctx ~app
      else begin
        s.awaiting <- List.length consumer_tys;
        List.iter
          (fun ty ->
            select t ctx ty (fun choice ->
                (match choice with
                | Some child ->
                  s.children <- s.children @ [ child ];
                  forward_federate ctx ~app req child
                | None ->
                  (* unsatisfiable edge: skip it *)
                  s.awaiting <- s.awaiting - 1;
                  if s.awaiting = 0 && s.children = [] then
                    complete_session t s ctx ~app);
                ()))
          consumer_tys
      end)

let handle_fed_ack t (ctx : Alg.ctx) (m : Msg.t) =
  match Hashtbl.find_opt t.sessions m.Msg.app with
  | None -> ()
  | Some s ->
    s.awaiting <- s.awaiting - 1;
    if s.awaiting <= 0 then complete_session t s ctx ~app:m.Msg.app

(* ------------------------------------------------------------------ *)

let handle t (ctx : Alg.ctx) (m : Msg.t) =
  match m.Msg.mtype with
  | Mt.Data -> (
    match Hashtbl.find_opt t.sessions m.app with
    | Some { children = _ :: _ as children; _ } ->
      Some (Alg.Forward children)
    | Some { children = []; _ } | None -> Some Alg.Consume)
  | Mt.S_assign ->
    (match Msg.params m with
    | Some (ty, _) ->
      t.stype <- Some ty;
      record_instance t ~ty ~inst:ctx.self ~bw:t.advertised_bw;
      announce_self t ctx ty
    | None -> ());
    Some Alg.Consume
  | Mt.S_aware ->
    handle_aware t ctx m.payload;
    Some Alg.Consume
  | Mt.S_federate ->
    handle_federate t ctx m;
    Some Alg.Consume
  | Mt.Custom k when k = fed_ack_kind ->
    handle_fed_ack t ctx m;
    Some Alg.Consume
  | Mt.S_terminate ->
    (match Hashtbl.find_opt t.sessions m.app with
    | Some s -> Pump.stop s.pump
    | None -> ());
    Some Alg.Consume
  | _ -> None

let algorithm t =
  Ialg.make
    ~name:("sflow-" ^ strategy_name t.strategy)
    ~on_tick:(fun ctx ->
      match t.stype with
      | Some ty -> announce_self t ctx ty
      | None -> ())
    ~on_ready:(fun ctx peer ->
      Hashtbl.iter (fun _ s -> Pump.on_ready s.pump ctx peer) t.sessions)
    (handle t)
