module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module NI = Iov_msg.Node_id
module Wire = Iov_msg.Wire

type strategy = Unicast | Random | Ns_aware

let strategy_name = function
  | Unicast -> "unicast"
  | Random -> "random"
  | Ns_aware -> "ns-aware"

(* protocol-internal custom control types *)
let stress_kind = 100

type t = {
  strategy : strategy;
  last_mile : float;
  app : int;
  payload_size : int;
  fanout : int;
  ttl : int;
  rejoin : bool;
  mutable rejoins : int;
  mutable want_membership : bool;
  mutable in_session : bool;
  mutable is_source : bool;
  mutable parent : NI.t option;
  mutable children : NI.t list;
  mutable source : NI.t option;
  mutable joined_attempt : int; (* the attempt that succeeded, -1 if none *)
  mutable attempt : int;
  mutable seen : (NI.t * int) list; (* relayed queries, for dedup *)
  mutable relayed : int;
  neighbor_stress : (NI.t, float) Hashtbl.t;
  mutable cursors : (NI.t * int ref) list; (* per-child source cursors *)
  mutable generating : bool;
}

let create ~strategy ~last_mile ~app ?(payload_size = 5 * 1024) ?(fanout = 2)
    ?(ttl = 32) ?(rejoin = false) () =
  if last_mile <= 0. then invalid_arg "Tree.create: last_mile";
  if fanout <= 0 then invalid_arg "Tree.create: fanout";
  if ttl <= 0 then invalid_arg "Tree.create: ttl";
  {
    strategy;
    last_mile;
    app;
    payload_size;
    fanout;
    ttl;
    rejoin;
    rejoins = 0;
    want_membership = false;
    in_session = false;
    is_source = false;
    parent = None;
    children = [];
    source = None;
    joined_attempt = -1;
    attempt = 0;
    seen = [];
    relayed = 0;
    neighbor_stress = Hashtbl.create 8;
    cursors = [];
    generating = false;
  }

let in_session t = t.in_session
let is_source t = t.is_source
let parent t = t.parent
let children t = t.children
let session_source t = t.source
let queries_relayed t = t.relayed
let rejoins t = t.rejoins

let degree t =
  List.length t.children + match t.parent with Some _ -> 1 | None -> 0

let stress t =
  float_of_int (degree t) /. (t.last_mile /. (100. *. 1024.))

(* ------------------------------------------------------------------ *)
(* Source data generation (back-to-back, per-child pacing)             *)

let generate_for t (ctx : Alg.ctx) child cursor =
  while t.generating && ctx.can_send child do
    let payload = Bytes.make t.payload_size 'x' in
    let m = Msg.data ~origin:ctx.self ~app:t.app ~seq:!cursor payload in
    ctx.send m child;
    incr cursor
  done

let generate_all t ctx =
  List.iter (fun (child, cursor) -> generate_for t ctx child cursor) t.cursors

let add_child t (ctx : Alg.ctx) child =
  if not (List.exists (NI.equal child) t.children) then begin
    t.children <- t.children @ [ child ];
    if t.is_source then begin
      let cursor = ref 0 in
      t.cursors <- t.cursors @ [ (child, cursor) ];
      if t.generating then generate_for t ctx child cursor
    end
  end

let remove_child t child =
  t.children <- List.filter (fun c -> not (NI.equal c child)) t.children;
  t.cursors <- List.filter (fun (c, _) -> not (NI.equal c child)) t.cursors;
  Hashtbl.remove t.neighbor_stress child

(* ------------------------------------------------------------------ *)
(* Join protocol messages                                              *)

let query_payload ~joiner ~attempt ~ttl =
  let w = Wire.W.create () in
  Wire.W.node w joiner;
  Wire.W.int32 w attempt;
  Wire.W.int32 w ttl;
  Wire.W.contents w

let parse_query payload =
  try
    let r = Wire.R.of_bytes payload in
    let joiner = Wire.R.node r in
    let attempt = Wire.R.int32 r in
    let ttl = Wire.R.int32 r in
    Some (joiner, attempt, ttl)
  with Wire.Truncated -> None

let send_query t (ctx : Alg.ctx) ~joiner ~attempt ~ttl dst =
  let m =
    Msg.control ~mtype:Mt.S_query ~origin:ctx.self ~app:t.app
      (query_payload ~joiner ~attempt ~ttl)
  in
  ctx.send m dst

let send_ack t (ctx : Alg.ctx) ~joiner ~attempt =
  let w = Wire.W.create () in
  Wire.W.int32 w attempt;
  let m =
    Msg.control ~mtype:Mt.S_query_ack ~origin:ctx.self ~app:t.app
      (Wire.W.contents w)
  in
  ctx.send m joiner

(* pick up to [k] distinct random elements *)
let pick_random rng k l =
  let a = Array.of_list l in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list (Array.sub a 0 (Stdlib.min k n))

let rec start_join t (ctx : Alg.ctx) =
  if not t.in_session then begin
    t.attempt <- t.attempt + 1;
    let hosts =
      List.filter (fun h -> not (NI.equal h ctx.self)) (ctx.known_hosts ())
    in
    (* unicast and ns-aware anchor one query at the announced source;
       random stays unbiased — the first member reached by gossip must
       be uniform for the randomized trees to look like the paper's *)
    let targets =
      match (t.strategy, t.source) with
      | (Unicast | Ns_aware), Some s ->
        s
        :: pick_random ctx.rng (t.fanout - 1)
             (List.filter (fun h -> not (NI.equal h s)) hosts)
      | Random, _ | _, None -> pick_random ctx.rng t.fanout hosts
    in
    List.iter
      (fun h ->
        send_query t ctx ~joiner:ctx.self ~attempt:t.attempt ~ttl:t.ttl h)
      targets;
    (* retry while unanswered *)
    if t.attempt < 12 then
      ctx.set_timer 2.0 (fun () -> if not t.in_session then start_join t ctx)
  end

(* ------------------------------------------------------------------ *)
(* Member-side query handling, per strategy                            *)

let neighbor_stress_of t peer =
  match Hashtbl.find_opt t.neighbor_stress peer with
  | Some s -> s
  | None -> infinity

(* Equal stress is common (fresh members all advertise the same
   degree/bandwidth ratio), and the candidate list's order depends on
   join history — so ties must not be broken by arrival order, or two
   runs of the same overlay redirect joiners differently. Lowest node
   id wins a tie, making the choice a pure function of the stress
   table. *)
let min_stress_neighbor t =
  let candidates =
    (match t.parent with Some p -> [ p ] | None -> []) @ t.children
  in
  List.fold_left
    (fun acc peer ->
      let s = neighbor_stress_of t peer in
      match acc with
      | Some (best_peer, best)
        when best < s || (best = s && NI.compare best_peer peer <= 0) ->
        acc
      | _ -> Some (peer, s))
    None candidates

let member_handle_query t (ctx : Alg.ctx) ~joiner ~attempt ~ttl =
  match t.strategy with
  | Unicast ->
    if t.is_source then send_ack t ctx ~joiner ~attempt
    else begin
      (* forward straight to the data source of the session *)
      let dst =
        match t.source with
        | Some s -> Some s
        | None -> t.parent (* towards the root *)
      in
      match dst with
      | Some d when ttl > 0 ->
        t.relayed <- t.relayed + 1;
        send_query t ctx ~joiner ~attempt ~ttl:(ttl - 1) d
      | Some _ | None -> ()
    end
  | Random -> send_ack t ctx ~joiner ~attempt
  | Ns_aware -> (
    let mine = stress t in
    match min_stress_neighbor t with
    | Some (peer, s) when s < mine && ttl > 0 ->
      t.relayed <- t.relayed + 1;
      send_query t ctx ~joiner ~attempt ~ttl:(ttl - 1) peer
    | Some _ | None -> send_ack t ctx ~joiner ~attempt)

let nonmember_relay_query t (ctx : Alg.ctx) ~joiner ~attempt ~ttl =
  if ttl > 0 && not (List.mem (joiner, attempt) t.seen) then begin
    t.seen <- (joiner, attempt) :: t.seen;
    if List.length t.seen > 512 then
      t.seen <- List.filteri (fun i _ -> i < 256) t.seen;
    let hosts =
      List.filter
        (fun h -> not (NI.equal h ctx.self || NI.equal h joiner))
        (ctx.known_hosts ())
    in
    let targets = pick_random ctx.rng t.fanout hosts in
    List.iter
      (fun h ->
        t.relayed <- t.relayed + 1;
        send_query t ctx ~joiner ~attempt ~ttl:(ttl - 1) h)
      targets
  end

(* ------------------------------------------------------------------ *)
(* Stress exchange                                                     *)

let send_stress t (ctx : Alg.ctx) =
  let peers =
    (match t.parent with Some p -> [ p ] | None -> []) @ t.children
  in
  if peers <> [] then begin
    let w = Wire.W.create () in
    Wire.W.float w (stress t);
    let m =
      Msg.control
        ~mtype:(Mt.Custom stress_kind)
        ~origin:ctx.self ~app:t.app (Wire.W.contents w)
    in
    List.iter (fun p -> ctx.send (Msg.share m) p) peers
  end

(* ------------------------------------------------------------------ *)
(* Failure handling: the subtree below a broken parent dissolves; with
   [rejoin] each orphan independently re-enters the session after a
   short randomized backoff. *)

let dissolve t (ctx : Alg.ctx) =
  if t.in_session && not t.is_source then begin
    List.iter
      (fun c ->
        ctx.send
          (Msg.control ~mtype:Mt.Broken_source ~origin:ctx.self ~app:t.app
             Bytes.empty)
          c)
      t.children;
    t.in_session <- false;
    t.parent <- None;
    t.children <- [];
    t.joined_attempt <- -1;
    Hashtbl.reset t.neighbor_stress;
    if t.rejoin && t.want_membership then begin
      t.rejoins <- t.rejoins + 1;
      t.attempt <- 0 (* a fresh retry budget for the rejoin round *);
      let backoff = 0.5 +. Random.State.float ctx.rng 1.0 in
      ctx.set_timer backoff (fun () ->
          if (not t.in_session) && t.want_membership then start_join t ctx)
    end
  end

(* ------------------------------------------------------------------ *)
(* The message handler                                                 *)

let handle t (ctx : Alg.ctx) (m : Msg.t) =
  let from_observer =
    match ctx.observer with
    | Some o -> NI.equal m.Msg.origin o
    | None -> false
  in
  match m.Msg.mtype with
  | Mt.Data when m.app = t.app -> (
    (* data messages carry the original sender: learn the source even
       if the announcement missed us *)
    if t.source = None then t.source <- Some m.origin;
    match t.children with
    | [] -> Some Alg.Consume
    | children -> Some (Alg.Forward children))
  | Mt.S_deploy when m.app = t.app ->
    t.is_source <- true;
    t.in_session <- true;
    t.source <- Some ctx.self;
    t.generating <- true;
    (* make the session known: announce to every known host *)
    let ann =
      Msg.control ~mtype:Mt.S_announce ~origin:ctx.self ~app:t.app Bytes.empty
    in
    ignore (Ialg.disseminate ctx ann (ctx.known_hosts ()));
    generate_all t ctx;
    Some Alg.Consume
  | Mt.S_terminate when m.app = t.app ->
    t.generating <- false;
    Some Alg.Consume
  | Mt.S_announce when m.app = t.app ->
    t.source <- Some m.origin;
    ctx.add_known_host m.origin;
    Some Alg.Consume
  | Mt.S_join when m.app = t.app && from_observer ->
    t.want_membership <- true;
    start_join t ctx;
    Some Alg.Consume
  | Mt.S_join when m.app = t.app ->
    (* a joiner confirmed: it is now our child *)
    if t.in_session then add_child t ctx m.origin;
    Some Alg.Consume
  | Mt.S_leave when m.app = t.app ->
    t.want_membership <- false;
    dissolve t ctx;
    Some Alg.Consume
  | Mt.S_query when m.app = t.app -> (
    match parse_query m.payload with
    | Some (joiner, attempt, ttl) ->
      if NI.equal joiner ctx.self then () (* own query came back *)
      else if t.in_session then
        member_handle_query t ctx ~joiner ~attempt ~ttl
      else nonmember_relay_query t ctx ~joiner ~attempt ~ttl;
      Some Alg.Consume
    | None -> Some Alg.Consume)
  | Mt.S_query_ack when m.app = t.app ->
    (let attempt =
       try Wire.R.int32 (Wire.R.of_bytes m.payload) with Wire.Truncated -> -1
     in
     if (not t.in_session) && attempt = t.attempt then begin
       (* first acknowledgement wins *)
       t.in_session <- true;
       t.joined_attempt <- attempt;
       t.parent <- Some m.origin;
       ctx.send
         (Msg.control ~mtype:Mt.S_join ~origin:ctx.self ~app:t.app Bytes.empty)
         m.origin
     end);
    Some Alg.Consume
  | Mt.Custom k when k = stress_kind && m.app = t.app ->
    (try
       let s = Wire.R.float (Wire.R.of_bytes m.payload) in
       Hashtbl.replace t.neighbor_stress m.origin s
     with Wire.Truncated -> ());
    Some Alg.Consume
  | Mt.Broken_source when m.app = t.app ->
    (match t.parent with
    | Some p when NI.equal p m.origin -> dissolve t ctx
    | Some _ | None -> remove_child t m.origin);
    Some Alg.Consume
  | Mt.Link_failed -> (
    let peer = m.origin in
    match t.parent with
    | Some p when NI.equal p peer ->
      dissolve t ctx;
      Some Alg.Consume
    | Some _ | None ->
      if List.exists (NI.equal peer) t.children then remove_child t peer;
      Some Alg.Consume)
  | _ -> None

let algorithm t =
  Ialg.make ~name:(strategy_name t.strategy)
    ~on_tick:(fun ctx -> if t.in_session then send_stress t ctx)
    ~on_ready:(fun ctx peer ->
      if t.is_source && t.generating then
        match List.find_opt (fun (c, _) -> NI.equal c peer) t.cursors with
        | Some (child, cursor) -> generate_for t ctx child cursor
        | None -> ())
    (handle t)
