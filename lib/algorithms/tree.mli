(** Construction of data dissemination trees (paper Section 3.3).

    Three join strategies build a single-source multicast tree for an
    application session:

    - [Unicast] (all-unicast): any tree member receiving a join query
      forwards it to the session source, so every receiver becomes a
      direct child of the source.
    - [Random] (randomized): the first tree member reached by the
      query immediately acknowledges; the joiner attaches to whoever
      answers first.
    - [Ns_aware] (node-stress aware): the member compares its own node
      stress — degree divided by last-mile bandwidth — with its parent
      and children, recursively forwarding the query towards the
      minimum-stress neighbour, which acknowledges.

    The protocol uses the paper's message vocabulary: the observer
    deploys the source ([sDeploy]) and instructs nodes to join
    ([sJoin]); joiners disseminate [sQuery] through known hosts;
    members answer [sQueryAck]; the joiner confirms to its chosen
    parent ([sJoin] node-to-node); members exchange stress updates
    periodically. The source streams back-to-back data down the tree;
    every member forwards data to its children. *)

type strategy = Unicast | Random | Ns_aware

val strategy_name : strategy -> string

type t

val create :
  strategy:strategy ->
  last_mile:float ->
  app:int ->
  ?payload_size:int ->
  ?fanout:int ->
  ?ttl:int ->
  ?rejoin:bool ->
  unit ->
  t
(** [last_mile] is the node's own last-mile bandwidth in bytes/second
    (used for stress accounting — the paper expresses stress in
    1/100-KBps units, see {!stress}). [fanout] (default 2) is the
    dissemination branching of join queries, [ttl] (default 32) their
    relay budget. With [rejoin] (default false), a member orphaned by
    an upstream failure re-enters the session after a randomized
    backoff — the fault-tolerance behaviour the paper's Section 3.1
    proposes evaluating. *)

val algorithm : t -> Iov_core.Algorithm.t

(** {1 Inspection} *)

val in_session : t -> bool
val is_source : t -> bool
val parent : t -> Iov_msg.Node_id.t option
val children : t -> Iov_msg.Node_id.t list

val degree : t -> int
(** Tree degree: children plus one if a parent exists. *)

val stress : t -> float
(** Node stress in the paper's unit: degree / (last-mile bandwidth in
    100-KBps units). *)

val min_stress_neighbor : t -> (Iov_msg.Node_id.t * float) option
(** The tree neighbour (parent or a child) with the lowest advertised
    stress — the redirect target an [Ns_aware] member offers a joiner.
    Equal stress breaks to the lowest node id, so the pick depends only
    on the stress table, never on join order. [None] when the member
    has no tree neighbours. *)

val session_source : t -> Iov_msg.Node_id.t option
(** The source learned from [sAnnounce], if any. *)

val queries_relayed : t -> int

val rejoins : t -> int
(** Times this node re-entered the session after a failure. *)
