module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module NI = Iov_msg.Node_id
module Wire = Iov_msg.Wire

let subscribe_kind = 110

module Event = struct
  type t = (int * int) list

  let to_payload t =
    let w = Wire.W.create () in
    Wire.W.int32 w (List.length t);
    List.iter
      (fun (k, v) ->
        Wire.W.int32 w k;
        Wire.W.int32 w v)
      t;
    Wire.W.contents w

  let of_payload payload =
    try
      let r = Wire.R.of_bytes payload in
      let n = Wire.R.int32 r in
      if n < 0 || n > 1024 then None
      else
        Some
          (List.init n (fun _ ->
               let k = Wire.R.int32 r in
               let v = Wire.R.int32 r in
               (k, v)))
    with Wire.Truncated -> None

  let get t k = List.assoc_opt k t
end

module Predicate = struct
  type op = Eq | Ne | Lt | Le | Gt | Ge

  type atom = {
    key : int;
    op : op;
    value : int;
  }

  type t = atom list

  let atom key op value = { key; op; value }

  let op_holds op a b =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b

  let matches t event =
    List.for_all
      (fun { key; op; value } ->
        match Event.get event key with
        | Some v -> op_holds op v value
        | None -> false)
      t

  let op_code = function Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5

  let op_of_code = function
    | 0 -> Some Eq
    | 1 -> Some Ne
    | 2 -> Some Lt
    | 3 -> Some Le
    | 4 -> Some Gt
    | 5 -> Some Ge
    | _ -> None

  let write w t =
    Wire.W.int32 w (List.length t);
    List.iter
      (fun { key; op; value } ->
        Wire.W.int32 w key;
        Wire.W.int32 w (op_code op);
        Wire.W.int32 w value)
      t

  let read r =
    let n = Wire.R.int32 r in
    if n < 0 || n > 1024 then None
    else
      let atoms =
        List.init n (fun _ ->
            let key = Wire.R.int32 r in
            let code = Wire.R.int32 r in
            let value = Wire.R.int32 r in
            Option.map (fun op -> { key; op; value }) (op_of_code code))
      in
      if List.for_all Option.is_some atoms then
        Some (List.filter_map Fun.id atoms)
      else None
end

module Router = struct
  type entry = {
    next_hop : NI.t option; (* None: a local subscription *)
    predicate : Predicate.t;
  }

  type t = {
    app : int;
    mutable neighbors : NI.t list;
    table : (int, entry) Hashtbl.t; (* by subscription id *)
    mutable pending_local : (int * Predicate.t) list;
    mutable flooded : int list; (* subscription ids already re-flooded *)
    mutable seen_events : (NI.t * int) list; (* dedup, bounded *)
    mutable delivered : int;
    mutable recent : Event.t list;
    mutable forwarded : int;
  }

  let create ~app () =
    {
      app;
      neighbors = [];
      table = Hashtbl.create 16;
      pending_local = [];
      flooded = [];
      seen_events = [];
      delivered = 0;
      recent = [];
      forwarded = 0;
    }

  let add_neighbor t ni =
    if not (List.exists (NI.equal ni) t.neighbors) then
      t.neighbors <- ni :: t.neighbors

  let subscribe t ~id predicate =
    Hashtbl.replace t.table id { next_hop = None; predicate };
    t.pending_local <- (id, predicate) :: t.pending_local

  let delivered t = t.delivered
  let delivered_events t = t.recent
  let known_subscriptions t = Hashtbl.length t.table
  let forwarded t = t.forwarded
  let publish_payload = Event.to_payload

  let sub_message (ctx : Alg.ctx) ~app ~id predicate =
    let w = Wire.W.create () in
    Wire.W.int32 w id;
    Predicate.write w predicate;
    Msg.control
      ~mtype:(Mt.Custom subscribe_kind)
      ~origin:ctx.self ~app (Wire.W.contents w)

  let flood_subscription t (ctx : Alg.ctx) ~id predicate ~except =
    if not (List.mem id t.flooded) then begin
      t.flooded <- id :: t.flooded;
      let m = sub_message ctx ~app:t.app ~id predicate in
      List.iter
        (fun n ->
          match except with
          | Some e when NI.equal e n -> ()
          | Some _ | None -> ctx.send (Msg.share m) n)
        t.neighbors
    end

  let flush_pending t ctx =
    let pending = t.pending_local in
    t.pending_local <- [];
    List.iter
      (fun (id, predicate) ->
        flood_subscription t ctx ~id predicate ~except:None)
      pending

  let remember_event t key =
    t.seen_events <- key :: t.seen_events;
    if List.length t.seen_events > 2048 then
      t.seen_events <- List.filteri (fun i _ -> i < 1024) t.seen_events

  let handle_subscribe t (ctx : Alg.ctx) (m : Msg.t) =
    try
      let r = Wire.R.of_bytes m.payload in
      let id = Wire.R.int32 r in
      match Predicate.read r with
      | None -> ()
      | Some predicate ->
        if not (Hashtbl.mem t.table id) then begin
          Hashtbl.replace t.table id
            { next_hop = Some m.origin; predicate };
          (* propagate to the rest of the overlay, re-originated so
             each hop records its own reverse path *)
          flood_subscription t ctx ~id predicate ~except:(Some m.origin)
        end
    with Wire.Truncated -> ()

  let handle_event t (m : Msg.t) =
    match Event.of_payload m.payload with
    | None -> Alg.Consume
    | Some event ->
      let key = (m.Msg.origin, m.Msg.seq) in
      if List.mem key t.seen_events then Alg.Consume
      else begin
        remember_event t key;
        let dests = ref NI.Set.empty in
        let matched_local = ref false in
        Hashtbl.iter
          (fun _ e ->
            if Predicate.matches e.predicate event then
              match e.next_hop with
              | None -> matched_local := true
              | Some n -> dests := NI.Set.add n !dests)
          t.table;
        if !matched_local then begin
          t.delivered <- t.delivered + 1;
          t.recent <- event :: t.recent;
          if List.length t.recent > 128 then
            t.recent <- List.filteri (fun i _ -> i < 128) t.recent
        end;
        match NI.Set.elements !dests with
        | [] -> Alg.Consume
        | dests ->
          t.forwarded <- t.forwarded + 1;
          Alg.Forward dests
      end

  let handle t (ctx : Alg.ctx) (m : Msg.t) =
    match m.Msg.mtype with
    | Mt.Data when m.app = t.app -> Some (handle_event t m)
    | Mt.Custom k when k = subscribe_kind && m.app = t.app ->
      handle_subscribe t ctx m;
      Some Alg.Consume
    | _ -> None

  let algorithm t =
    Ialg.make ~name:"content-router"
      ~on_start:(fun ctx -> flush_pending t ctx)
      ~on_tick:(fun ctx -> flush_pending t ctx)
      (handle t)
end
