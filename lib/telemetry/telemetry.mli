(** The telemetry deployment object: one metrics registry plus one
    flight recorder per node, shared by every engine of a run.

    Pass one [Telemetry.t] to [Network.create] (simulator) or
    [Rnode.start] (real sockets) and the engines populate it with the
    shared event vocabulary ({!Event.kind}) and per-node metrics.
    Created [~enabled:false] (or toggled off), every {!record} is a
    single branch — telemetry stays compiled into the hot path at
    negligible cost.

    Under the deterministic simulator, the same seed yields a
    byte-identical {!dump_jsonl}, which makes the trace itself a
    regression oracle ({!digest}). *)

type t

val create : ?ring_capacity:int -> ?enabled:bool -> unit -> t
(** [ring_capacity] (default 4096) sizes each node's flight recorder;
    [enabled] defaults to [true]. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val metrics : t -> Metrics.t

val tracer : t -> Iov_msg.Node_id.t -> Tracer.t
(** The node's flight recorder, created on first use. Registration
    path — engines call it once per node, at setup. *)

val record :
  t ->
  Tracer.t ->
  time:float ->
  kind:Event.kind ->
  peer:Iov_msg.Node_id.t ->
  id:int ->
  app:int ->
  mseq:int ->
  size:int ->
  unit
(** Stamps the event with the deployment-global sequence number and
    appends it to the recorder; a no-op branch when disabled.
    Allocation free. *)

(** {1 Query API (tests, debugging — not the hot path)} *)

type event = {
  gseq : int;  (** deployment-global order *)
  time : float;
  node : Iov_msg.Node_id.t;  (** recorder scope *)
  kind : Event.kind;
  peer : Iov_msg.Node_id.t option;
  id : int;  (** trace id, 0 when none *)
  app : int;
  mseq : int;
  size : int;
}

val events : t -> event list
(** All retained events across all nodes, in global order. *)

val events_for : t -> id:int -> event list
(** One message's reassembled cross-node path. *)

val total_events : t -> int
(** Events ever recorded (including ring-overwritten ones). *)

(** {1 Sinks} *)

val dump_jsonl : t -> string
(** One JSON object per line, in global event order. Deterministic:
    same events, same bytes. *)

val save_jsonl : t -> string -> int
(** Writes {!dump_jsonl} to a file; returns the number of lines.
    @raise Sys_error on unwritable paths. *)

val digest : t -> string
(** MD5 hex digest of {!dump_jsonl} — the regression oracle. *)
