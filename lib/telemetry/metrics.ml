module Wire = Iov_msg.Wire

type counter = { mutable c : int }
type gauge = { mutable g : float }

let nbuckets = 63

type histogram = {
  buckets : int array; (* log2 buckets, see .mli *)
  mutable h_count : int;
  mutable h_sum : int;
}

type cell = C of counter | G of gauge | H of histogram

type entry = { full : string; cell : cell }

type t = {
  tbl : (string, entry) Hashtbl.t;
  mutable order : entry list; (* reverse registration order *)
}

let create () = { tbl = Hashtbl.create 64; order = [] }

let full_name ?scope name =
  match scope with None | Some "" -> name | Some s -> s ^ "." ^ name

let register t ?scope name make describe =
  let full = full_name ?scope name in
  match Hashtbl.find_opt t.tbl full with
  | Some e -> e.cell
  | None ->
    ignore describe;
    let e = { full; cell = make () } in
    Hashtbl.add t.tbl full e;
    t.order <- e :: t.order;
    e.cell

let kind_error full want =
  invalid_arg (Printf.sprintf "Metrics: %s already registered, not a %s" full want)

let counter t ?scope name =
  match register t ?scope name (fun () -> C { c = 0 }) "counter" with
  | C c -> c
  | G _ | H _ -> kind_error (full_name ?scope name) "counter"

let gauge t ?scope name =
  match register t ?scope name (fun () -> G { g = 0. }) "gauge" with
  | G g -> g
  | C _ | H _ -> kind_error (full_name ?scope name) "gauge"

let histogram t ?scope name =
  match
    register t ?scope name
      (fun () -> H { buckets = Array.make nbuckets 0; h_count = 0; h_sum = 0 })
      "histogram"
  with
  | H h -> h
  | C _ | G _ -> kind_error (full_name ?scope name) "histogram"

(* hot path: mutable-cell writes only *)
let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let set g v = g.g <- v

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      b := !b + 1;
      x := !x lsr 1
    done;
    if !b > nbuckets - 1 then nbuckets - 1 else !b
  end

let observe h v =
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v

let value c = c.c
let gauge_value g = g.g
let hist_count h = h.h_count
let hist_sum h = h.h_sum

let hist_buckets h =
  let acc = ref [] in
  for b = nbuckets - 1 downto 0 do
    if h.buckets.(b) > 0 then acc := (b, h.buckets.(b)) :: !acc
  done;
  !acc

type snap =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : int; buckets : (int * int) list }

let snap_of_cell = function
  | C c -> Counter c.c
  | G g -> Gauge g.g
  | H h -> Histogram { count = h.h_count; sum = h.h_sum; buckets = hist_buckets h }

let in_scope scope full =
  let p = scope ^ "." in
  let lp = String.length p in
  String.length full > lp && String.sub full 0 lp = p

let strip scope full =
  let lp = String.length scope + 1 in
  String.sub full lp (String.length full - lp)

let snapshot ?scope t =
  let entries = List.rev t.order in
  match scope with
  | None | Some "" ->
    List.map (fun e -> (e.full, snap_of_cell e.cell)) entries
  | Some s ->
    List.filter_map
      (fun e ->
        if in_scope s e.full then Some (strip s e.full, snap_of_cell e.cell)
        else None)
      entries

(* Deterministic rendering: fixed field order, [%.9g] floats. *)
let to_json ?scope t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"metrics\":{";
  List.iteri
    (fun i (name, snap) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%S:" name);
      match snap with
      | Counter v ->
        Buffer.add_string buf
          (Printf.sprintf "{\"type\":\"counter\",\"value\":%d}" v)
      | Gauge v ->
        Buffer.add_string buf
          (Printf.sprintf "{\"type\":\"gauge\",\"value\":%.9g}" v)
      | Histogram { count; sum; buckets } ->
        Buffer.add_string buf
          (Printf.sprintf "{\"type\":\"histogram\",\"count\":%d,\"sum\":%d,\"buckets\":{"
             count sum);
        List.iteri
          (fun j (b, n) ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (Printf.sprintf "\"%d\":%d" b n))
          buckets;
        Buffer.add_string buf "}}")
    (snapshot ?scope t);
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* Wire blob: version tag, then count-prefixed entries. *)
let blob_version = 1

let to_blob ?scope t =
  let entries = snapshot ?scope t in
  let w = Wire.W.create () in
  Wire.W.int32 w blob_version;
  Wire.W.int32 w (List.length entries);
  List.iter
    (fun (name, snap) ->
      Wire.W.string w name;
      match snap with
      | Counter v ->
        Wire.W.int32 w 0;
        Wire.W.float w (float_of_int v)
      | Gauge v ->
        Wire.W.int32 w 1;
        Wire.W.float w v
      | Histogram { count; sum; buckets } ->
        Wire.W.int32 w 2;
        Wire.W.int32 w count;
        Wire.W.float w (float_of_int sum);
        Wire.W.int32 w (List.length buckets);
        List.iter
          (fun (b, n) ->
            Wire.W.int32 w b;
            Wire.W.int32 w n)
          buckets)
    entries;
  Wire.W.contents w

let of_blob buf =
  let r = Wire.R.of_bytes buf in
  let v = Wire.R.int32 r in
  if v <> blob_version then raise Wire.Truncated;
  let n = Wire.R.int32 r in
  if n < 0 then raise Wire.Truncated;
  List.init n (fun _ ->
      let name = Wire.R.string r in
      let snap =
        match Wire.R.int32 r with
        | 0 -> Counter (int_of_float (Wire.R.float r))
        | 1 -> Gauge (Wire.R.float r)
        | 2 ->
          let count = Wire.R.int32 r in
          let sum = int_of_float (Wire.R.float r) in
          let nb = Wire.R.int32 r in
          if nb < 0 then raise Wire.Truncated;
          let buckets =
            List.init nb (fun _ ->
                let b = Wire.R.int32 r in
                let c = Wire.R.int32 r in
                (b, c))
          in
          Histogram { count; sum; buckets }
        | _ -> raise Wire.Truncated
      in
      (name, snap))
