module NI = Iov_msg.Node_id

let nil_peer = NI.make ~ip:0l ~port:0

type t = {
  t_scope : NI.t;
  cap : int;
  kinds : int array;
  times : float array;
  gseqs : int array;
  ids : int array;
  peers : NI.t array;
  apps : int array;
  mseqs : int array;
  sizes : int array;
  mutable idx : int; (* write cursor: t_total mod cap, kept incrementally *)
  mutable t_total : int;
}

let create ~scope ~capacity =
  if capacity < 1 then invalid_arg "Tracer.create: capacity";
  {
    t_scope = scope;
    cap = capacity;
    kinds = Array.make capacity 0;
    times = Array.make capacity 0.;
    gseqs = Array.make capacity 0;
    ids = Array.make capacity 0;
    peers = Array.make capacity nil_peer;
    apps = Array.make capacity 0;
    mseqs = Array.make capacity 0;
    sizes = Array.make capacity 0;
    idx = 0;
    t_total = 0;
  }

let scope t = t.t_scope
let capacity t = t.cap

(* The event-rate hot path: plain array stores indexed by the
   incrementally-wrapped cursor (no division), inlined into
   [Telemetry.record] so one engine event site costs a single call. *)
let[@inline always] record t ~gseq ~time ~kind ~peer ~id ~app ~mseq ~size =
  let i = t.idx in
  Array.unsafe_set t.kinds i (Event.to_int kind);
  Array.unsafe_set t.times i time;
  Array.unsafe_set t.gseqs i gseq;
  Array.unsafe_set t.ids i id;
  Array.unsafe_set t.peers i peer;
  Array.unsafe_set t.apps i app;
  Array.unsafe_set t.mseqs i mseq;
  Array.unsafe_set t.sizes i size;
  let i = i + 1 in
  t.idx <- (if i = t.cap then 0 else i);
  t.t_total <- t.t_total + 1

let length t = if t.t_total < t.cap then t.t_total else t.cap
let total t = t.t_total
let dropped t = t.t_total - length t

let iter t f =
  let n = length t in
  let start = t.t_total - n in
  for k = 0 to n - 1 do
    let i = (start + k) mod t.cap in
    f ~gseq:t.gseqs.(i) ~time:t.times.(i)
      ~kind:(Event.of_int t.kinds.(i))
      ~peer:t.peers.(i) ~id:t.ids.(i) ~app:t.apps.(i) ~mseq:t.mseqs.(i)
      ~size:t.sizes.(i)
  done
