module NI = Iov_msg.Node_id
module Msg = Iov_msg.Message

type kind =
  | Enqueue
  | Switch
  | Send
  | Deliver
  | Drop
  | Link_failure
  | Teardown
  | Respawn
  | Route_change
  | Path_switch
  | Dup_suppressed
  | Suspect
  | Confirm
  | View_exchange
  | Shed
  | Breaker_open
  | Breaker_close
  | Wedge
  | Retransmit

let all =
  [
    Enqueue;
    Switch;
    Send;
    Deliver;
    Drop;
    Link_failure;
    Teardown;
    Respawn;
    Route_change;
    Path_switch;
    Dup_suppressed;
    Suspect;
    Confirm;
    View_exchange;
    Shed;
    Breaker_open;
    Breaker_close;
    Wedge;
    Retransmit;
  ]

let to_int = function
  | Enqueue -> 0
  | Switch -> 1
  | Send -> 2
  | Deliver -> 3
  | Drop -> 4
  | Link_failure -> 5
  | Teardown -> 6
  | Respawn -> 7
  | Route_change -> 8
  | Path_switch -> 9
  | Dup_suppressed -> 10
  | Suspect -> 11
  | Confirm -> 12
  | View_exchange -> 13
  | Shed -> 14
  | Breaker_open -> 15
  | Breaker_close -> 16
  | Wedge -> 17
  | Retransmit -> 18

let of_int = function
  | 0 -> Enqueue
  | 1 -> Switch
  | 2 -> Send
  | 3 -> Deliver
  | 4 -> Drop
  | 5 -> Link_failure
  | 6 -> Teardown
  | 7 -> Respawn
  | 8 -> Route_change
  | 9 -> Path_switch
  | 10 -> Dup_suppressed
  | 11 -> Suspect
  | 12 -> Confirm
  | 13 -> View_exchange
  | 14 -> Shed
  | 15 -> Breaker_open
  | 16 -> Breaker_close
  | 17 -> Wedge
  | 18 -> Retransmit
  | n -> invalid_arg ("Event.of_int: " ^ string_of_int n)

let to_string = function
  | Enqueue -> "enqueue"
  | Switch -> "switch"
  | Send -> "send"
  | Deliver -> "deliver"
  | Drop -> "drop"
  | Link_failure -> "link-failure"
  | Teardown -> "domino-teardown"
  | Respawn -> "respawn"
  | Route_change -> "route-change"
  | Path_switch -> "path-switch"
  | Dup_suppressed -> "dup-suppressed"
  | Suspect -> "suspect"
  | Confirm -> "confirm"
  | View_exchange -> "view-exchange"
  | Shed -> "shed"
  | Breaker_open -> "breaker-open"
  | Breaker_close -> "breaker-close"
  | Wedge -> "wedge"
  | Retransmit -> "retransmit"

let pp fmt k = Format.pp_print_string fmt (to_string k)

(* A splitmix-style finalizer over OCaml's native int. Multiplication
   wraps, which is fine: determinism on 64-bit platforms is all the
   trace needs. Constants chosen odd and below 2^62. *)
let mix x =
  let x = x lxor (x lsr 29) in
  let x = x * 0x1b873593a5a5a5b in
  let x = x lxor (x lsr 32) in
  let x = x * 0x27d4eb2f165667c5 in
  let x = x lxor (x lsr 29) in
  x land max_int

let no_id = 0

let id ~origin ~app ~seq =
  let h = Int32.to_int origin.NI.ip land 0xffffffff in
  let h = mix (h lxor (origin.NI.port lsl 32)) in
  let h = mix (h lxor app) in
  let h = mix (h lxor seq) in
  (* 0 is reserved for "no message attached" *)
  if h = no_id then 1 else h

let id_of_msg (m : Msg.t) = id ~origin:m.Msg.origin ~app:m.Msg.app ~seq:m.Msg.seq
