(** The telemetry event vocabulary and the causal trace-id scheme.

    Every structured event an engine emits belongs to one of a small,
    fixed set of kinds; both runtimes (the simulator and the real
    sockets engine) speak exactly this vocabulary, so a trace collected
    on either can be read by the same tools.

    A {e trace id} names one logical message as it crosses the overlay.
    It is derived deterministically from the immutable message header
    fields [(origin, app, seq)] — the same triple every hop sees — so
    one message's path can be reassembled across nodes without adding a
    single byte to the 24-byte wire header. *)

type kind =
  | Enqueue  (** message placed into a sender buffer *)
  | Switch  (** message popped from a receiver buffer and processed *)
  | Send  (** transmission started on a link *)
  | Deliver  (** transmission arrived in the peer's receiver buffer *)
  | Drop  (** message lost (full/closed buffers, dead peers) *)
  | Link_failure  (** a link failure surfaced to the engine *)
  | Teardown  (** node termination (the paper's domino teardown) *)
  | Respawn
      (** a terminated node's id came back to life (chaos churn) *)
  | Route_change
      (** a router repaired or re-pointed a forwarding entry (the peer
          field is the {e new} next hop) *)
  | Path_switch
      (** a backpressure forwarder moved a commodity to another next
          hop under the queue-gradient rule *)
  | Dup_suppressed
      (** a multipath receiver absorbed a redundant copy (the mseq
          field is the duplicated sequence number) *)
  | Suspect
      (** a gossip member began suspecting the peer (probe and indirect
          probes all unanswered; mseq is the peer's incarnation) *)
  | Confirm
      (** a gossip member declared the peer dead (suspicion timed out
          or a Dead update arrived; mseq is the peer's incarnation) *)
  | View_exchange
      (** a peer-sampling shuffle completed with the peer (size is the
          number of membership updates absorbed from it) *)
  | Shed
      (** admission control refused an application message under
          overload (app identifies the application whose class was
          shed, size the refused bytes) *)
  | Breaker_open
      (** a circuit breaker toward the peer tripped open after repeated
          send failures (mseq is the consecutive-trip count) *)
  | Breaker_close
      (** a circuit breaker toward the peer closed again after a
          successful half-open probe (size is the whole-milliseconds
          the breaker spent open) *)
  | Wedge
      (** a watchdog declared the node wedged — its progress counter
          stalled while peers advanced — and triggered a respawn *)
  | Retransmit
      (** a router replayed a packet from its replay ring after a nack
          (size is the replayed payload bytes) *)

val all : kind list

val to_int : kind -> int
val of_int : int -> kind
(** @raise Invalid_argument on unknown codes. *)

val to_string : kind -> string
(** The stable JSONL name ([Teardown] renders as ["domino-teardown"]). *)

val pp : Format.formatter -> kind -> unit

val id : origin:Iov_msg.Node_id.t -> app:int -> seq:int -> int
(** [id ~origin ~app ~seq] is the non-negative 62-bit trace id of the
    message with that header triple. Pure integer mixing — allocation
    free, and identical on every node that handles the message. *)

val id_of_msg : Iov_msg.Message.t -> int
(** {!id} over a message's own header fields. *)

val no_id : int
(** The trace id used for events not tied to a message (link failures,
    teardowns): 0. *)
