(** The per-node flight recorder: a fixed-size ring buffer of
    structured events.

    All storage is preallocated at creation as parallel flat arrays —
    one per event field — so {!record} performs only array stores and
    never allocates, upholding the registry's hot-path rule. When the
    ring is full the oldest events are overwritten; {!dropped} reports
    how many were lost that way. *)

type t

val nil_peer : Iov_msg.Node_id.t
(** The sentinel ([0.0.0.0:0]) for events with no peer. *)

val create : scope:Iov_msg.Node_id.t -> capacity:int -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val scope : t -> Iov_msg.Node_id.t
val capacity : t -> int

val record :
  t ->
  gseq:int ->
  time:float ->
  kind:Event.kind ->
  peer:Iov_msg.Node_id.t ->
  id:int ->
  app:int ->
  mseq:int ->
  size:int ->
  unit
(** Appends one event. [gseq] is the deployment-global sequence number
    (stamped by {!Telemetry.record}); [id] a trace id ({!Event.no_id}
    when the event carries none); [peer] {!nil_peer} when absent;
    [mseq] the message's header sequence number. Allocation free. *)

val length : t -> int
(** Events currently retained (at most [capacity]). *)

val total : t -> int
(** Events ever recorded. *)

val dropped : t -> int
(** [total - length]: events overwritten by ring wrap-around. *)

val iter :
  t ->
  (gseq:int ->
  time:float ->
  kind:Event.kind ->
  peer:Iov_msg.Node_id.t ->
  id:int ->
  app:int ->
  mseq:int ->
  size:int ->
  unit) ->
  unit
(** Visits retained events oldest first. *)
