module NI = Iov_msg.Node_id

type t = {
  m : Metrics.t;
  tracers : Tracer.t NI.Tbl.t;
  ring_capacity : int;
  mutable on : bool;
  mutable gseq : int;
}

let create ?(ring_capacity = 4096) ?(enabled = true) () =
  if ring_capacity < 1 then invalid_arg "Telemetry.create: ring_capacity";
  {
    m = Metrics.create ();
    tracers = NI.Tbl.create 16;
    ring_capacity;
    on = enabled;
    gseq = 0;
  }

let enabled t = t.on
let set_enabled t v = t.on <- v
let metrics t = t.m

let tracer t ni =
  match NI.Tbl.find_opt t.tracers ni with
  | Some tr -> tr
  | None ->
    let tr = Tracer.create ~scope:ni ~capacity:t.ring_capacity in
    NI.Tbl.add t.tracers ni tr;
    tr

let[@inline always] record t tr ~time ~kind ~peer ~id ~app ~mseq ~size =
  if t.on then begin
    let g = t.gseq in
    t.gseq <- g + 1;
    Tracer.record tr ~gseq:g ~time ~kind ~peer ~id ~app ~mseq ~size
  end

(* ------------------------------------------------------------------ *)
(* Query                                                               *)

type event = {
  gseq : int;
  time : float;
  node : NI.t;
  kind : Event.kind;
  peer : NI.t option;
  id : int;
  app : int;
  mseq : int;
  size : int;
}

let events t =
  let acc = ref [] in
  NI.Tbl.iter
    (fun node tr ->
      Tracer.iter tr (fun ~gseq ~time ~kind ~peer ~id ~app ~mseq ~size ->
          let peer =
            if NI.equal peer Tracer.nil_peer then None else Some peer
          in
          acc := { gseq; time; node; kind; peer; id; app; mseq; size } :: !acc))
    t.tracers;
  List.sort (fun a b -> Int.compare a.gseq b.gseq) !acc

let events_for t ~id = List.filter (fun e -> e.id = id) (events t)

let total_events (t : t) = t.gseq

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

let event_line buf (e : event) =
  Buffer.add_string buf
    (Printf.sprintf "{\"seq\":%d,\"t\":%.9f,\"node\":%S,\"ev\":%S" e.gseq
       e.time (NI.to_string e.node)
       (Event.to_string e.kind));
  if e.id <> Event.no_id then
    Buffer.add_string buf (Printf.sprintf ",\"id\":\"%x\"" e.id);
  (match e.peer with
  | Some p -> Buffer.add_string buf (Printf.sprintf ",\"peer\":%S" (NI.to_string p))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf ",\"app\":%d,\"mseq\":%d,\"size\":%d}\n" e.app e.mseq e.size)

let dump_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter (event_line buf) (events t);
  Buffer.contents buf

let save_jsonl t path =
  let evs = events t in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 4096 in
      List.iter
        (fun e ->
          Buffer.clear buf;
          event_line buf e;
          output_string oc (Buffer.contents buf))
        evs;
      List.length evs)

let digest t = Digest.to_hex (Digest.string (dump_jsonl t))
