(** The metrics registry: named counters, gauges and log-bucketed
    histograms, cheap enough for the engine's hot path.

    The contract is the no-allocation rule: {e registration} (looking a
    metric up by name) may allocate and must happen once, at node/link
    setup; {e updates} ({!incr}, {!add}, {!set}, {!observe}) touch only
    preallocated mutable cells and never allocate. Handles returned for
    the same [(scope, name)] pair are physically identical, so
    registration is idempotent.

    Scoping: a metric registered with [~scope] gets the full name
    [scope ^ "." ^ name]; engines scope per node (the node's
    [ip:port]), which keeps one registry per deployment. *)

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : unit -> t

(** {1 Registration (setup path — may allocate)} *)

val counter : t -> ?scope:string -> string -> counter
val gauge : t -> ?scope:string -> string -> gauge

val histogram : t -> ?scope:string -> string -> histogram
(** Histograms observe non-negative integers (byte counts,
    microseconds, ...) into 63 log2 buckets: bucket 0 holds values
    [<= 0], bucket [b >= 1] holds values in [[2^(b-1), 2^b - 1]].

    All three raise [Invalid_argument] if the full name is already
    registered with a different metric kind. *)

(** {1 Updates (hot path — allocation free)} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> int -> unit

(** {1 Reading} *)

val value : counter -> int
val gauge_value : gauge -> float
val hist_count : histogram -> int
val hist_sum : histogram -> int
val hist_buckets : histogram -> (int * int) list
(** Non-empty buckets as [(bucket_index, count)], ascending. *)

val bucket_of : int -> int
(** The bucket index {!observe} files a value under (exposed for
    tests). *)

(** {1 Snapshot / export} *)

type snap =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : int; buckets : (int * int) list }

val snapshot : ?scope:string -> t -> (string * snap) list
(** Current values in registration order; with [~scope], only that
    scope's metrics, names stripped of the [scope ^ "."] prefix. *)

val to_json : ?scope:string -> t -> string
(** A deterministic one-line JSON rendering of {!snapshot}. *)

val to_blob : ?scope:string -> t -> Bytes.t
(** {!snapshot} in the compact wire form carried inside status
    reports. Counter values and histogram sums are encoded as floats
    (exact up to 2^53). *)

val of_blob : Bytes.t -> (string * snap) list
(** Decodes {!to_blob} output. @raise Iov_msg.Wire.Truncated on
    malformed input. *)
