module Network = Iov_core.Network
module NI = Iov_msg.Node_id
module Tel = Iov_telemetry.Telemetry

type installed = {
  scenario : Scenario.t;
  actions : (float * Scenario.action) list;
  resolve : string -> NI.t option;
}

let apply_action ~net ~resolve ~spawn (action : Scenario.action) =
  let with_node name f = match resolve name with Some ni -> f ni | None -> () in
  let with_link src dst f =
    match (resolve src, resolve dst) with
    | Some s, Some d -> f s d
    | _ -> ()
  in
  match action with
  | Scenario.Kill_node name -> with_node name (Network.kill_node net)
  | Scenario.Spawn_node name -> (
    match spawn with Some f -> f name | None -> ())
  | Scenario.Stall_link { src; dst; on } ->
    with_link src dst (fun s d ->
        try Network.stall_link net ~src:s ~dst:d on
        with Invalid_argument _ -> (* link already torn down *) ())
  | Scenario.Set_link_rate { src; dst; rate } ->
    with_link src dst (fun s d ->
        try Network.set_link_bandwidth net ~src:s ~dst:d rate
        with Invalid_argument _ | Not_found -> ())
  | Scenario.Set_loss { src; dst; p; corrupt } ->
    with_link src dst (fun s d ->
        try Network.set_link_loss net ~src:s ~dst:d ~corrupt p
        with Invalid_argument _ -> ())
  | Scenario.Set_partition [] -> Network.set_partition net None
  | Scenario.Set_partition groups ->
    (* resolve the cut at activation time, against the current nodes *)
    let side = NI.Tbl.create 32 in
    List.iteri
      (fun i group ->
        List.iter
          (fun name ->
            match resolve name with
            | Some ni -> NI.Tbl.replace side ni i
            | None -> ())
          group)
      groups;
    Network.set_partition net
      (Some
         (fun a b ->
           match (NI.Tbl.find_opt side a, NI.Tbl.find_opt side b) with
           | Some i, Some j -> i <> j
           | _ -> false))

let install ~net ~resolve ?spawn ~nodes scenario =
  let actions = Scenario.compile scenario ~nodes in
  Driver.schedule_sim (Network.sim net)
    ~apply:(apply_action ~net ~resolve ~spawn)
    actions;
  { scenario; actions; resolve }

let check installed ~telemetry ~horizon =
  Invariant.check ~scenario:installed.scenario ~resolve:installed.resolve
    ~actions:installed.actions ~horizon (Tel.events telemetry)
