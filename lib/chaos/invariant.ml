module NI = Iov_msg.Node_id
module Tel = Iov_telemetry.Telemetry
module Ev = Iov_telemetry.Event

type violation = {
  v_node : NI.t option;
  v_peer : NI.t option;
  v_time : float;
  v_gseq : int;
  v_detail : string;
}

type line = { expect : Scenario.expect; violations : violation list }

type report = {
  scenario : string;
  events_seen : int;
  horizon : float;
  lines : line list;
}

let ok r = List.for_all (fun l -> l.violations = []) r.lines
let violations r = List.concat_map (fun l -> l.violations) r.lines

(* keep reports readable when an engine is badly broken *)
let max_listed = 40

let cap vs =
  let n = List.length vs in
  if n <= max_listed then vs
  else
    List.filteri (fun i _ -> i < max_listed) vs
    @ [
        {
          v_node = None;
          v_peer = None;
          v_time = 0.;
          v_gseq = -1;
          v_detail = Printf.sprintf "... and %d more" (n - max_listed);
        };
      ]

let mk ?node ?peer ?(time = 0.) ?(gseq = -1) detail =
  { v_node = node; v_peer = peer; v_time = time; v_gseq = gseq;
    v_detail = detail }

(* ------------------------------------------------------------------ *)
(* Life cycles reconstructed from the trace                            *)

(* One span of death: closed by a respawn or open to the horizon. *)
type dead_span = {
  d_from : float;
  d_from_gseq : int;
  mutable d_to : float;
  mutable d_to_gseq : int;
}

let life_cycles events =
  let tbl : dead_span list ref NI.Tbl.t = NI.Tbl.create 16 in
  let spans_of n =
    match NI.Tbl.find_opt tbl n with
    | Some r -> r
    | None ->
      let r = ref [] in
      NI.Tbl.add tbl n r;
      r
  in
  List.iter
    (fun (e : Tel.event) ->
      match e.Tel.kind with
      | Ev.Teardown ->
        let r = spans_of e.Tel.node in
        r :=
          { d_from = e.Tel.time; d_from_gseq = e.Tel.gseq;
            d_to = infinity; d_to_gseq = max_int }
          :: !r
      | Ev.Respawn -> (
        let r = spans_of e.Tel.node in
        match !r with
        | span :: _ when span.d_to = infinity ->
          span.d_to <- e.Tel.time;
          span.d_to_gseq <- e.Tel.gseq
        | _ -> ())
      | _ -> ())
    events;
  (* chronological spans per node *)
  NI.Tbl.iter (fun _ r -> r := List.rev !r) tbl;
  tbl

let spans cycles n =
  match NI.Tbl.find_opt cycles n with Some r -> !r | None -> []

let dead_between cycles n ~t0 ~t1 =
  List.exists (fun s -> s.d_from <= t1 && s.d_to >= t0) (spans cycles n)

let dead_at_gseq cycles n gseq =
  List.exists
    (fun s -> gseq > s.d_from_gseq && gseq < s.d_to_gseq)
    (spans cycles n)

let alive_at cycles n time =
  not (List.exists (fun s -> s.d_from <= time && time < s.d_to)
         (spans cycles n))

(* ------------------------------------------------------------------ *)
(* Individual checks                                                   *)

let is_activity = function
  | Ev.Enqueue | Ev.Switch | Ev.Send | Ev.Deliver -> true
  (* routing-control events count as activity: a dead engine must not
     repair paths or absorb duplicates either *)
  | Ev.Route_change | Ev.Path_switch | Ev.Dup_suppressed -> true
  (* so do gossip-membership events: a dead engine must not probe,
     judge its peers, or shuffle views *)
  | Ev.Suspect | Ev.Confirm | Ev.View_exchange -> true
  (* and guard events: a dead engine must not shed traffic, trip or
     recover breakers, or replay from its retransmit ring *)
  | Ev.Shed | Ev.Breaker_open | Ev.Breaker_close | Ev.Retransmit -> true
  (* a Wedge is recorded by the supervising watchdog *about* the stuck
     node, not by the node itself *)
  | Ev.Wedge -> false
  | Ev.Drop | Ev.Link_failure | Ev.Teardown | Ev.Respawn -> false

let check_no_delivery_after_teardown ~grace cycles events =
  let vs = ref [] in
  List.iter
    (fun (e : Tel.event) ->
      (* a dead engine must be silent *)
      if is_activity e.Tel.kind && dead_at_gseq cycles e.Tel.node e.Tel.gseq
      then
        vs :=
          mk ~node:e.Tel.node ~time:e.Tel.time ~gseq:e.Tel.gseq
            (Printf.sprintf "dead node recorded a %s event"
               (Ev.to_string e.Tel.kind))
          :: !vs;
      (* nothing is delivered from a node dead for longer than grace *)
      match (e.Tel.kind, e.Tel.peer) with
      | Ev.Deliver, Some peer ->
        if
          List.exists
            (fun s ->
              e.Tel.time > s.d_from +. grace && e.Tel.time < s.d_to)
            (spans cycles peer)
        then
          vs :=
            mk ~node:e.Tel.node ~peer ~time:e.Tel.time ~gseq:e.Tel.gseq
              "delivery from a torn-down node past the grace period"
            :: !vs
      | _ -> ())
    events;
  List.rev !vs

let check_domino ~within cycles events =
  (* (consumer, dead) -> delivery times, and -> link-failure times *)
  let deliveries = Hashtbl.create 256 in
  let failures = Hashtbl.create 256 in
  let push tbl key v =
    match Hashtbl.find_opt tbl key with
    | Some r -> r := v :: !r
    | None -> Hashtbl.add tbl key (ref [ v ])
  in
  List.iter
    (fun (e : Tel.event) ->
      match (e.Tel.kind, e.Tel.peer) with
      | Ev.Deliver, Some peer ->
        push deliveries (e.Tel.node, peer) e.Tel.time
      | Ev.Link_failure, Some peer ->
        push failures (e.Tel.node, peer) e.Tel.time
      | _ -> ())
    events;
  let vs = ref [] in
  Hashtbl.iter
    (fun (consumer, dead) times ->
      List.iter
        (fun span ->
          let t_kill = span.d_from in
          (* the consumer fed on [dead] during the life that just
             ended; after the teardown it must hear about it *)
          let last_feed =
            List.fold_left
              (fun acc t -> if t < t_kill then Float.max acc t else acc)
              neg_infinity !times
          in
          if last_feed > neg_infinity && alive_at cycles consumer t_kill
          then begin
            let heard =
              match Hashtbl.find_opt failures (consumer, dead) with
              | Some fr ->
                List.exists
                  (fun t -> t >= last_feed && t <= t_kill +. within)
                  !fr
              | None -> false
            in
            let died_too =
              dead_between cycles consumer ~t0:t_kill
                ~t1:(t_kill +. within)
            in
            if (not heard) && not died_too then
              vs :=
                mk ~node:consumer ~peer:dead ~time:t_kill
                  (Printf.sprintf
                     "no link-failure within %gs of upstream teardown"
                     within)
                :: !vs
          end)
        (spans cycles dead))
    deliveries;
  List.rev !vs

let check_reconverge ~within ~first_fault ~last_fault cycles events =
  match (first_fault, last_fault) with
  | Some first, Some last ->
    let receivers = NI.Tbl.create 32 in
    List.iter
      (fun (e : Tel.event) ->
        if e.Tel.kind = Ev.Deliver && e.Tel.time < first then
          NI.Tbl.replace receivers e.Tel.node ())
      events;
    let recovered = NI.Tbl.create 32 in
    List.iter
      (fun (e : Tel.event) ->
        if
          e.Tel.kind = Ev.Deliver
          && e.Tel.time >= last
          && e.Tel.time <= last +. within
        then NI.Tbl.replace recovered e.Tel.node ())
      events;
    NI.Tbl.fold
      (fun n () acc ->
        if spans cycles n <> [] && not (alive_at cycles n (last +. within))
        then acc (* did not survive; nothing to re-converge *)
        else if NI.Tbl.mem recovered n then acc
        else
          mk ~node:n ~time:(last +. within)
            (Printf.sprintf
               "pre-fault receiver silent for %gs after the last fault"
               within)
          :: acc)
      receivers []
  | _ -> []

let check_throughput ~tol ~settle ~window ~first_fault ~last_fault ~horizon
    cycles events =
  match (first_fault, last_fault) with
  | Some first, Some last ->
    if horizon < last +. settle +. window then
      [
        mk ~time:horizon
          (Printf.sprintf
             "horizon %g leaves no settled %gs window after the last fault \
              at %g"
             horizon window last);
      ]
    else begin
      let b0 = Float.max 0. (first -. window) in
      let base = ref 0 and final = ref 0 in
      List.iter
        (fun (e : Tel.event) ->
          if e.Tel.kind = Ev.Deliver && alive_at cycles e.Tel.node horizon
          then begin
            if e.Tel.time >= b0 && e.Tel.time < first then
              base := !base + e.Tel.size;
            if e.Tel.time >= horizon -. window then
              final := !final + e.Tel.size
          end)
        events;
      if !base = 0 then
        [ mk ~time:first "no pre-fault traffic to compare against" ]
      else if float_of_int !final < (1. -. tol) *. float_of_int !base then
        [
          mk ~time:horizon
            (Printf.sprintf
               "delivered %d bytes in the final %gs window vs %d pre-fault \
                (tolerance %g)"
               !final window !base tol);
        ]
      else []
    end
  | _ -> []

(* Unique terminal goodput of a node over [t0, t1): the data bytes it
   switched, minus the bytes it re-enqueued downstream (an interior hop
   forwards what it switches, a sink does not) and minus suppressed
   duplicate copies. Positive only where traffic terminates — a
   trace-only sink detector needing no workload knowledge. Control
   traffic (app 0 — hellos, link-state floods) is consumed everywhere
   and would register every router as a small sink, so it is excluded:
   only application streams count as goodput. *)
let sink_bytes events ~node ~t0 ~t1 =
  let sw = ref 0 and enq = ref 0 and dup = ref 0 in
  List.iter
    (fun (e : Tel.event) ->
      if
        e.Tel.app <> 0
        && NI.equal e.Tel.node node
        && e.Tel.time >= t0 && e.Tel.time < t1
      then
        match e.Tel.kind with
        | Ev.Switch -> sw := !sw + e.Tel.size
        | Ev.Enqueue -> enq := !enq + e.Tel.size
        | Ev.Dup_suppressed -> dup := !dup + e.Tel.size
        | _ -> ())
    events;
  max 0 (!sw - !enq - !dup)

let check_reroute ~ratio ~within ~window ~resolve ~actions ~horizon cycles
    events =
  let kills =
    List.filter_map
      (fun (t, a) ->
        match a with Scenario.Kill_node n -> Some (t, n) | _ -> None)
      actions
  in
  let nodes = NI.Tbl.create 32 in
  List.iter
    (fun (e : Tel.event) -> NI.Tbl.replace nodes e.Tel.node ())
    events;
  List.concat_map
    (fun (t_kill, victim_name) ->
      if horizon < t_kill +. within then
        [
          mk ~time:horizon
            (Printf.sprintf
               "horizon %g leaves no %gs reroute window after the kill at %g"
               horizon within t_kill);
        ]
      else begin
        let deadline = t_kill +. within in
        let sink_violations =
          NI.Tbl.fold
            (fun n () acc ->
              if not (alive_at cycles n deadline) then acc
              else begin
                let pre =
                  sink_bytes events ~node:n ~t0:(t_kill -. window) ~t1:t_kill
                in
                if pre = 0 then acc
                else begin
                  let post =
                    sink_bytes events ~node:n ~t0:(deadline -. window)
                      ~t1:deadline
                  in
                  if float_of_int post < ratio *. float_of_int pre then
                    mk ~node:n ~time:deadline
                      (Printf.sprintf
                         "sink received %d bytes in the %gs window after \
                          the kill at %g vs %d before (ratio %g)"
                         post window t_kill pre ratio)
                    :: acc
                  else acc
                end
              end)
            nodes []
        in
        (* if the victim was carrying traffic, somebody must visibly
           repair: a route-change or path-switch inside the window *)
        let victim_carried =
          match resolve victim_name with
          | None -> false
          | Some ni ->
            List.exists
              (fun (e : Tel.event) ->
                NI.equal e.Tel.node ni
                && e.Tel.kind = Ev.Switch
                && e.Tel.time >= t_kill -. window
                && e.Tel.time < t_kill)
              events
        in
        let rerouted =
          List.exists
            (fun (e : Tel.event) ->
              (e.Tel.kind = Ev.Route_change || e.Tel.kind = Ev.Path_switch)
              && e.Tel.time > t_kill
              && e.Tel.time <= deadline)
            events
        in
        let activity_violations =
          if victim_carried && not rerouted then
            [
              mk ~time:deadline
                (Printf.sprintf
                   "no route-change or path-switch within %gs of the kill \
                    of %s at %g"
                   within victim_name t_kill);
            ]
          else []
        in
        List.rev sink_violations @ activity_violations
      end)
    kills

let check_partition_silent ~resolve ~windows events =
  let vs = ref [] in
  List.iter
    (fun (at, heal, groups) ->
      (* map every resolvable member to its group index *)
      let side = NI.Tbl.create 32 in
      List.iteri
        (fun i group ->
          List.iter
            (fun name ->
              match resolve name with
              | Some ni -> NI.Tbl.replace side ni i
              | None -> ())
            group)
        groups;
      List.iter
        (fun (e : Tel.event) ->
          if e.Tel.kind = Ev.Deliver && e.Tel.time > at && e.Tel.time < heal
          then
            match e.Tel.peer with
            | Some peer -> (
              match
                (NI.Tbl.find_opt side e.Tel.node, NI.Tbl.find_opt side peer)
              with
              | Some i, Some j when i <> j ->
                vs :=
                  mk ~node:e.Tel.node ~peer ~time:e.Tel.time
                    ~gseq:e.Tel.gseq "delivery crossed an active partition"
                  :: !vs
              | _ -> ())
            | None -> ())
        events)
    windows;
  List.rev !vs

(* Gossip failure detection converges: after each kill whose victim
   stays dead through the window, every node that survives the whole
   window and demonstrably participates in gossip (it logged at least
   one gossip event) must record its own [confirm] verdict for the
   victim inside the window. Rumor-learned confirmations count — each
   node logs one when it adopts the death, however it heard. *)
let check_membership ~within ~resolve ~actions ~horizon cycles events =
  let kills =
    List.filter_map
      (fun (t, a) ->
        match a with Scenario.Kill_node n -> Some (t, n) | _ -> None)
      actions
  in
  let is_gossip_kind k =
    k = Ev.Suspect || k = Ev.Confirm || k = Ev.View_exchange
  in
  let gossipers = NI.Tbl.create 32 in
  List.iter
    (fun (e : Tel.event) ->
      if is_gossip_kind e.Tel.kind then NI.Tbl.replace gossipers e.Tel.node ())
    events;
  List.concat_map
    (fun (t_kill, victim_name) ->
      match resolve victim_name with
      | None -> []
      | Some victim ->
        let deadline = t_kill +. within in
        if horizon < deadline then
          [
            mk ~time:horizon
              (Printf.sprintf
                 "horizon %g leaves no %gs detection window after the kill \
                  at %g"
                 horizon within t_kill);
          ]
        else if alive_at cycles victim deadline then
          (* the victim respawned inside the window; nothing to prove *)
          []
        else
          NI.Tbl.fold
            (fun n () acc ->
              if
                NI.equal n victim
                || dead_between cycles n ~t0:t_kill ~t1:deadline
              then acc
              else
                let confirmed =
                  List.exists
                    (fun (e : Tel.event) ->
                      e.Tel.kind = Ev.Confirm
                      && NI.equal e.Tel.node n
                      && (match e.Tel.peer with
                         | Some p -> NI.equal p victim
                         | None -> false)
                      && e.Tel.time > t_kill
                      && e.Tel.time <= deadline)
                    events
                in
                if confirmed then acc
                else
                  mk ~node:n ~peer:victim ~time:deadline
                    (Printf.sprintf
                       "no confirm of %s within %gs of its kill at %g"
                       victim_name within t_kill)
                  :: acc)
            gossipers []
          |> List.rev)
    kills

(* An overload-guard breaker is keyed by who watched (node) and who
   was watched (peer); Breaker_open/Breaker_close events carry both. *)
let check_breaker_cycles ~within ~first_fault ~last_fault ~horizon events =
  match (first_fault, last_fault) with
  | None, _ | _, None -> []
  | Some t0, Some t1 ->
    let opens =
      List.filter
        (fun (e : Tel.event) -> e.Tel.kind = Ev.Breaker_open)
        events
    in
    if opens = [] then
      [
        mk ~time:t0
          (Printf.sprintf
             "no breaker ever opened despite faults from %g to %g" t0 t1);
      ]
    else begin
      let deadline = t1 +. within in
      if horizon < deadline then
        [
          mk ~time:horizon
            (Printf.sprintf
               "horizon %g leaves no %gs close window after the last \
                fault at %g"
               horizon within t1);
        ]
      else
        (* last open per (watcher, watched) pair must be answered by a
           close no later than [deadline] *)
        let key (e : Tel.event) = (e.Tel.node, e.Tel.peer) in
        let last_open = Hashtbl.create 8 in
        List.iter
          (fun (e : Tel.event) ->
            match Hashtbl.find_opt last_open (key e) with
            | Some t when t >= e.Tel.time -> ()
            | _ -> Hashtbl.replace last_open (key e) e.Tel.time)
          opens;
        Hashtbl.fold
          (fun (node, peer) opened acc ->
            let closed =
              List.exists
                (fun (e : Tel.event) ->
                  e.Tel.kind = Ev.Breaker_close
                  && NI.equal e.Tel.node node
                  && (match (e.Tel.peer, peer) with
                     | Some a, Some b -> NI.equal a b
                     | None, None -> true
                     | _ -> false)
                  && e.Tel.time >= opened
                  && e.Tel.time <= deadline)
                events
            in
            if closed then acc
            else
              mk ~node ?peer ~time:deadline
                (Printf.sprintf
                   "breaker opened at %g never closed by %g" opened
                   deadline)
              :: acc)
          last_open []
        |> List.rev
    end

(* Sheds are recorded by the refusing node with [app] = priority class
   of the refused message; degradation must hit [low] strictly before
   [high] wherever [high] suffers at all. *)
let check_shed_ordered ~low ~high events =
  let sheds app =
    List.filter
      (fun (e : Tel.event) -> e.Tel.kind = Ev.Shed && e.Tel.app = app)
      events
  in
  let lows = sheds low and highs = sheds high in
  let by_node evs =
    let tbl = NI.Tbl.create 8 in
    List.iter
      (fun (e : Tel.event) ->
        let first, count =
          match NI.Tbl.find_opt tbl e.Tel.node with
          | Some (f, c) -> (min f e.Tel.time, c + 1)
          | None -> (e.Tel.time, 1)
        in
        NI.Tbl.replace tbl e.Tel.node (first, count))
      evs;
    tbl
  in
  let low_tbl = by_node lows and high_tbl = by_node highs in
  NI.Tbl.fold
    (fun node (h_first, h_count) acc ->
      match NI.Tbl.find_opt low_tbl node with
      | None ->
        mk ~node ~time:h_first
          (Printf.sprintf
             "shed priority-%d traffic without ever shedding \
              priority-%d"
             high low)
        :: acc
      | Some (l_first, l_count) ->
        let acc =
          if h_first <= l_first then
            mk ~node ~time:h_first
              (Printf.sprintf
                 "first priority-%d shed at %g not strictly after \
                  first priority-%d shed at %g"
                 high h_first low l_first)
            :: acc
          else acc
        in
        if l_count < h_count then
          mk ~node
            (Printf.sprintf
               "shed %d priority-%d messages but only %d priority-%d"
               h_count high l_count low)
          :: acc
        else acc)
    high_tbl []
  |> List.rev

(* Every replay-ring resend logs a [Retransmit] with [size] = payload
   bytes, so the recovery-traffic bound is a pure fold over the trace. *)
let check_retransmit_bounded ~budget events =
  let total =
    List.fold_left
      (fun acc (e : Tel.event) ->
        if e.Tel.kind = Ev.Retransmit then acc + e.Tel.size else acc)
      0 events
  in
  if total > budget then
    [
      mk
        (Printf.sprintf
           "retransmitted %d payload bytes, over the %d-byte budget"
           total budget);
    ]
  else []

let check_recovers_after_heal ~margin ~last_fault ~horizon events =
  match last_fault with
  | None -> []
  | Some t1 ->
    let boundary = t1 +. margin in
    if horizon <= boundary then
      [
        mk ~time:horizon
          (Printf.sprintf
             "horizon %g leaves nothing past the heal boundary %g"
             horizon boundary);
      ]
    else
      let delivered =
        List.exists
          (fun (e : Tel.event) ->
            e.Tel.kind = Ev.Deliver && e.Tel.time > boundary)
          events
      in
      let late_opens =
        List.filter_map
          (fun (e : Tel.event) ->
            if e.Tel.kind = Ev.Breaker_open && e.Tel.time > boundary then
              Some
                (mk ~node:e.Tel.node ?peer:e.Tel.peer ~time:e.Tel.time
                   (Printf.sprintf
                      "breaker opened at %g, %gs after the last fault \
                       healed"
                      e.Tel.time (e.Tel.time -. t1)))
            else None)
          events
      in
      let acc = late_opens in
      if delivered then acc
      else
        mk ~time:boundary
          (Printf.sprintf "no delivery after the heal boundary %g"
             boundary)
        :: acc

(* ------------------------------------------------------------------ *)

let check ~(scenario : Scenario.t) ?(resolve = fun _ -> None) ~actions
    ~horizon events =
  let cycles = life_cycles events in
  let span = Scenario.fault_span actions in
  let first_fault = Option.map fst span in
  let last_fault = Option.map snd span in
  let lines =
    List.map
      (fun expect ->
        let violations =
          match expect with
          | Scenario.No_delivery_after_teardown { grace } ->
            check_no_delivery_after_teardown ~grace cycles events
          | Scenario.Domino_completes { within } ->
            check_domino ~within cycles events
          | Scenario.Reconverge { within } ->
            check_reconverge ~within ~first_fault ~last_fault cycles events
          | Scenario.Throughput_recovers { tol; settle; window } ->
            check_throughput ~tol ~settle ~window ~first_fault ~last_fault
              ~horizon cycles events
          | Scenario.Reroute_recovers { ratio; within; window } ->
            check_reroute ~ratio ~within ~window ~resolve ~actions ~horizon
              cycles events
          | Scenario.Partition_silent ->
            check_partition_silent ~resolve
              ~windows:(Scenario.partition_windows scenario)
              events
          | Scenario.Membership_converges { within } ->
            check_membership ~within ~resolve ~actions ~horizon cycles
              events
          | Scenario.Breaker_cycles { within } ->
            check_breaker_cycles ~within ~first_fault ~last_fault ~horizon
              events
          | Scenario.Shed_ordered { low; high } ->
            check_shed_ordered ~low ~high events
          | Scenario.Retransmit_bounded { budget } ->
            check_retransmit_bounded ~budget events
          | Scenario.Recovers_after_heal { margin } ->
            check_recovers_after_heal ~margin ~last_fault ~horizon events
          | Scenario.Min_events n ->
            let seen = List.length events in
            if seen < n then
              [ mk (Printf.sprintf "only %d events in the trace" seen) ]
            else []
        in
        { expect; violations = cap violations })
      scenario.Scenario.expects
  in
  { scenario = scenario.Scenario.name; events_seen = List.length events;
    horizon; lines }

(* ------------------------------------------------------------------ *)

let pp_violation fmt v =
  let pp_ni fmt = function
    | Some ni -> NI.pp fmt ni
    | None -> Format.pp_print_string fmt "-"
  in
  Format.fprintf fmt "[t=%.3f gseq=%d] %a <- %a: %s" v.v_time v.v_gseq pp_ni
    v.v_node pp_ni v.v_peer v.v_detail

let pp_report fmt r =
  let held = List.length (List.filter (fun l -> l.violations = []) r.lines) in
  Format.fprintf fmt "scenario %s: %d/%d expectations hold (%d events, \
                      horizon %gs)@."
    r.scenario held (List.length r.lines) r.events_seen r.horizon;
  List.iter
    (fun l ->
      let tag = if l.violations = [] then "ok  " else "FAIL" in
      Format.fprintf fmt "  %s %s@." tag
        (Scenario.expect_str l.expect);
      List.iter
        (fun v -> Format.fprintf fmt "       %a@." pp_violation v)
        l.violations)
    r.lines

let to_string r = Format.asprintf "%a" pp_report r
