(** Trace-checked recovery invariants.

    The verification half of the chaos engine: given a scenario, its
    compiled action schedule and the telemetry trace of the run, check
    every expectation the scenario declares and report each violation
    with the node, peer, time and global sequence number it anchors to.

    The checker is a pure function of the trace — it never inspects
    live engine state — so the same properties can be asserted on a
    simulator run, a sockets run, or a JSONL file read back later. Node
    liveness is reconstructed from the trace itself: a [domino-teardown]
    event marks a node dead, a [respawn] event (or a compiled
    [Spawn_node] action) marks it alive again. *)

type violation = {
  v_node : Iov_msg.Node_id.t option;
  v_peer : Iov_msg.Node_id.t option;
  v_time : float;
  v_gseq : int;  (** -1 when the violation is not tied to one event *)
  v_detail : string;
}

type line = {
  expect : Scenario.expect;
  violations : violation list;  (** empty = the expectation holds *)
}

type report = {
  scenario : string;
  events_seen : int;
  horizon : float;
  lines : line list;
}

val ok : report -> bool
val violations : report -> violation list

val check :
  scenario:Scenario.t ->
  ?resolve:(string -> Iov_msg.Node_id.t option) ->
  actions:(float * Scenario.action) list ->
  horizon:float ->
  Iov_telemetry.Telemetry.event list ->
  report
(** [check ~scenario ~resolve ~actions ~horizon events] evaluates every
    expectation of [scenario] against [events] (the run's telemetry in
    global order, as {!Iov_telemetry.Telemetry.events} returns it).
    [actions] must be the same compiled schedule that was installed
    (fault times and spawn times are read from it); [horizon] is the
    simulated/wall time the run ended at. [resolve] maps scenario node
    names to engine ids — required for [partition-silent] (cuts are
    declared by name); when it is absent or returns [None] the affected
    groups are skipped. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable summary: one line per expectation, then every
    violation indented under it. *)

val to_string : report -> string
