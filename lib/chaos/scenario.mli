(** Declarative, seeded chaos scenarios.

    A scenario names a set of {e faults} (when and what to break) and a
    set of {e expectations} (what must still hold afterwards, checked
    against the telemetry trace by {!Invariant}). Scenarios are plain
    data with a line-oriented text syntax, so they can be written by
    hand, stored in files, printed back canonically, and — crucially —
    {e compiled} into a flat, fully deterministic schedule of primitive
    actions: every stochastic choice (churn intervals, victim picks) is
    sampled at compile time from the scenario's own seed, never at run
    time. Running the same scenario twice against the same seeded
    simulation therefore produces byte-identical telemetry traces.

    {2 Text syntax}

    One directive per line; [#] starts a comment. Durations are
    seconds; distributions are [const:X], [uniform:A:B] or [exp:MEAN];
    links are [SRC->DST]; node lists are comma-separated names and [*]
    means "every node the compiler is given".

    {v
    scenario churn-demo seed=7
    kill node=B at=5
    churn nodes=* pick=3 start=10 stop=40 down=exp:6 up=const:4
    flap link=A->B start=8 stop=20 period=const:4 down=const:1
    degrade link=A->C rate=51200 at=12 restore=30
    loss link=D->E p=0.2 corrupt=0.05 at=5 clear=25
    partition groups=A,B|C,D,E at=15 heal=22
    expect no-delivery-after-teardown grace=0.5
    expect domino-completes within=2
    expect reconverge within=20
    expect throughput-recovers tol=0.3 settle=10 window=5
    expect reroute-recovers ratio=0.9 within=5 window=2
    expect partition-silent
    expect breaker-cycles within=10
    expect shed-ordered low=2 high=1
    expect retransmit-bounded budget=65536
    expect recovers-after-heal margin=5
    expect min-events 1000
    v} *)

type dist =
  | Const of float
  | Uniform of float * float
  | Exp of float  (** exponential with the given mean *)

val sample : Random.State.t -> dist -> float
(** One draw; always finite and [>= 0]. *)

type fault =
  | Kill of { node : string; at : float }
      (** one abrupt node failure, never revived by the scenario *)
  | Churn of {
      nodes : string list;  (** candidate victims; [["*"]] = all *)
      pick : int option;  (** how many candidates churn (default all) *)
      start : float;
      stop : float;  (** no kill is scheduled at or after [stop] *)
      down_after : dist;  (** up-time before each kill *)
      up_after : dist;  (** down-time before the respawn *)
    }
  | Flap of {
      src : string;
      dst : string;
      start : float;
      stop : float;
      period : dist;  (** up-time between outages *)
      down : dist;  (** outage length (link stalled) *)
    }
  | Degrade of {
      src : string;
      dst : string;
      rate : float;  (** bytes/second while degraded *)
      at : float;
      restore : float option;  (** back to unconstrained at this time *)
    }
  | Loss of {
      src : string;
      dst : string;
      p : float;
      corrupt : float;
      at : float;
      clear : float option;
    }
  | Partition of {
      groups : string list list;  (** disjoint groups; cross-group cut *)
      at : float;
      heal : float option;
    }

type expect =
  | No_delivery_after_teardown of { grace : float }
      (** a dead node records no activity, and nothing anywhere is
          delivered from it more than [grace] seconds past its
          teardown *)
  | Domino_completes of { within : float }
      (** every live consumer of a dead node's traffic learns of the
          failure (or dies itself) within [within] seconds *)
  | Reconverge of { within : float }
      (** every surviving pre-fault receiver delivers again within
          [within] seconds of the last fault *)
  | Throughput_recovers of { tol : float; settle : float; window : float }
      (** end-of-run delivered bytes/s over the final [window] is at
          least [(1 - tol)] of the pre-fault rate, once [settle]
          seconds have passed since the last fault *)
  | Reroute_recovers of { ratio : float; within : float; window : float }
      (** adaptive-routing recovery, judged on unique terminal goodput
          (switched bytes minus re-enqueued and duplicate-suppressed
          bytes): after each node kill, every surviving sink that was
          receiving during the [window] seconds before the kill must
          receive at least [ratio] of that rate in the window ending
          [within] seconds after it — and if the victim itself carried
          traffic, some router must log a route-change or path-switch
          in between *)
  | Partition_silent
      (** no delivery ever crosses an active partition cut *)
  | Membership_converges of { within : float }
      (** gossip failure detection: after each node kill whose victim
          stays dead, every node that survives the full window and
          participates in gossip must log a [confirm] for the victim
          within [within] seconds (default 10) *)
  | Breaker_cycles of { within : float }
      (** overload-guard breaker discipline: some circuit breaker must
          open during the fault window (the faults were severe enough
          to trip one), and every breaker that opened must close again
          within [within] seconds of the last fault (default 10) *)
  | Shed_ordered of { low : int; high : int }
      (** graceful degradation order: if the [high]-priority
          application is ever shed, the [low]-priority one was shed
          strictly earlier, and [low] sheds at least as many messages
          overall *)
  | Retransmit_bounded of { budget : int }
      (** recovery traffic stays bounded: payload bytes carried by all
          [Retransmit] events sum to at most [budget] *)
  | Recovers_after_heal of { margin : float }
      (** the system is healthy again once faults have healed: data is
          still delivered after [last fault + margin], and no breaker
          opens past that point *)
  | Min_events of int
      (** the trace holds at least this many events — guards the other
          checks against passing vacuously on an idle run *)

type t = {
  name : string;
  seed : int;
  faults : fault list;
  expects : expect list;
}

(** {1 Compilation} *)

(** The primitive, schedulable fault actions. Node and link endpoints
    stay symbolic (names) so one compiled schedule can drive either
    runtime; {!Chaos.install} resolves them against the simulator,
    {!Driver.run_threaded} against whatever the caller maps names to. *)
type action =
  | Kill_node of string
  | Spawn_node of string  (** revive a churned node *)
  | Stall_link of { src : string; dst : string; on : bool }
  | Set_link_rate of { src : string; dst : string; rate : float }
      (** [infinity] restores an unconstrained link *)
  | Set_loss of { src : string; dst : string; p : float; corrupt : float }
  | Set_partition of string list list  (** [[]] heals *)

val compile : t -> nodes:string list -> (float * action) list
(** Expands every fault into timed primitive actions, sampling all
    distributions and victim choices from a fresh
    [Random.State] seeded with the scenario seed — pure: same scenario,
    same [nodes], same schedule. The result is sorted by time (stable:
    equal-time actions keep fault order). [nodes] supplies the
    expansion of [*] and is also consulted by [pick]. *)

val fault_span : (float * 'a) list -> (float * float) option
(** [(first, last)] action times of a compiled schedule. *)

val partition_windows : t -> (float * float * string list list) list
(** [(at, heal, groups)] for every partition fault; a missing heal is
    [infinity]. *)

(** {1 Text format} *)

exception Parse_error of int * string
(** Line number (1-based) and what went wrong. *)

val parse : string -> t
(** Parses the text form. @raise Parse_error on malformed input. *)

val parse_file : string -> t
(** @raise Parse_error and [Sys_error]. *)

val to_string : t -> string
(** Canonical text form; [parse (to_string s)] equals [s] up to float
    formatting. *)

val fault_str : fault -> string
val expect_str : expect -> string
(** The directive lines of the text form, one at a time. *)

val pp : Format.formatter -> t -> unit
