(** The chaos engine's front door for the simulated runtime: compile a
    scenario, install its schedule into a {!Iov_core.Network.t}, run
    the simulation, then check the scenario's expectations against the
    telemetry trace.

    {[
      let scenario = Scenario.parse_file "churn.chaos" in
      let installed = Chaos.install ~net ~resolve ~nodes scenario in
      Network.run net ~until:60.;
      let report = Chaos.check installed ~telemetry ~horizon:60. in
      if not (Invariant.ok report) then
        print_string (Invariant.to_string report)
    ]} *)

type installed = {
  scenario : Scenario.t;
  actions : (float * Scenario.action) list;  (** the compiled schedule *)
  resolve : string -> Iov_msg.Node_id.t option;
}

val install :
  net:Iov_core.Network.t ->
  resolve:(string -> Iov_msg.Node_id.t option) ->
  ?spawn:(string -> unit) ->
  nodes:string list ->
  Scenario.t ->
  installed
(** Compiles the scenario over [nodes] (the expansion of [*] in churn
    faults) and schedules every action on the network's simulator:
    kills map to {!Iov_core.Network.kill_node}, respawns to [spawn]
    (ignored when absent — supply a callback that re-adds the node and
    re-joins its session), flaps to {!Iov_core.Network.stall_link},
    degradations to {!Iov_core.Network.set_link_bandwidth}, loss to
    {!Iov_core.Network.set_link_loss} and partitions to
    {!Iov_core.Network.set_partition} (group cuts are resolved to node
    ids when the partition activates). Names [resolve] maps to [None]
    and links the engine no longer knows are skipped silently — a
    scenario may name nodes that are already gone. *)

val check :
  installed ->
  telemetry:Iov_telemetry.Telemetry.t ->
  horizon:float ->
  Invariant.report
(** {!Invariant.check} over the installed schedule and the trace
    collected so far. *)
