(** Executing a compiled schedule against a runtime.

    Two drivers share the same compiled [(time, action)] schedule:

    - {!schedule_sim} plants every action into a discrete-event
      simulator — the action fires at exactly its virtual time, keeping
      the run (and its telemetry trace) deterministic;
    - {!run_threaded} replays the schedule in wall-clock time from a
      dedicated thread — the sockets-runtime driver, where [apply]
      typically maps kills to [Rnode.kill] and has no simulator to
      lean on. *)

val schedule_sim :
  Iov_dsim.Sim.t ->
  apply:(Scenario.action -> unit) ->
  (float * Scenario.action) list ->
  unit
(** Plants each action at its absolute virtual time (actions whose time
    is already in the past fire immediately). [apply] runs inside the
    simulation, so anything it touches stays deterministic. *)

val run_threaded :
  ?speedup:float ->
  apply:(Scenario.action -> unit) ->
  (float * Scenario.action) list ->
  Thread.t
(** Spawns a thread that sleeps to each action's offset from the moment
    of the call (divided by [speedup], default 1.0 — pass e.g. 10. to
    compress a long scenario into a short test) and invokes [apply].
    Join the returned thread to wait for the schedule to finish;
    exceptions from [apply] abort the thread silently, so [apply]
    should catch what it cares about. *)
