type dist = Const of float | Uniform of float * float | Exp of float

(* Draws are clamped to a small positive floor so schedules always make
   progress even under degenerate distributions. *)
let sample rng = function
  | Const x -> Float.max 0. x
  | Uniform (a, b) ->
    let lo = Float.min a b and hi = Float.max a b in
    lo +. Random.State.float rng (Float.max 0. (hi -. lo))
  | Exp mean ->
    if mean <= 0. then 0.
    else
      let u = Random.State.float rng 1.0 in
      -.mean *. log (1. -. u)

type fault =
  | Kill of { node : string; at : float }
  | Churn of {
      nodes : string list;
      pick : int option;
      start : float;
      stop : float;
      down_after : dist;
      up_after : dist;
    }
  | Flap of {
      src : string;
      dst : string;
      start : float;
      stop : float;
      period : dist;
      down : dist;
    }
  | Degrade of {
      src : string;
      dst : string;
      rate : float;
      at : float;
      restore : float option;
    }
  | Loss of {
      src : string;
      dst : string;
      p : float;
      corrupt : float;
      at : float;
      clear : float option;
    }
  | Partition of {
      groups : string list list;
      at : float;
      heal : float option;
    }

type expect =
  | No_delivery_after_teardown of { grace : float }
  | Domino_completes of { within : float }
  | Reconverge of { within : float }
  | Throughput_recovers of { tol : float; settle : float; window : float }
  | Reroute_recovers of { ratio : float; within : float; window : float }
  | Partition_silent
  | Membership_converges of { within : float }
  | Breaker_cycles of { within : float }
  | Shed_ordered of { low : int; high : int }
  | Retransmit_bounded of { budget : int }
  | Recovers_after_heal of { margin : float }
  | Min_events of int

type t = {
  name : string;
  seed : int;
  faults : fault list;
  expects : expect list;
}

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)

type action =
  | Kill_node of string
  | Spawn_node of string
  | Stall_link of { src : string; dst : string; on : bool }
  | Set_link_rate of { src : string; dst : string; rate : float }
  | Set_loss of { src : string; dst : string; p : float; corrupt : float }
  | Set_partition of string list list

(* expand ["*"] while keeping first-occurrence order, duplicates out *)
let expand_nodes ~nodes ns =
  let seen = Hashtbl.create 16 in
  List.concat_map (fun n -> if n = "*" then nodes else [ n ]) ns
  |> List.filter (fun n ->
         if Hashtbl.mem seen n then false
         else begin
           Hashtbl.add seen n ();
           true
         end)

let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* a churned node must stay down at least as long as failure detection
   plausibly takes; zero-length outages would be invisible *)
let min_interval = 1e-3

let compile t ~nodes =
  let rng = Random.State.make [| t.seed; 0xc4a05 |] in
  let acts = ref [] in
  let emit time a = acts := (Float.max 0. time, a) :: !acts in
  List.iter
    (fun fault ->
      match fault with
      | Kill { node; at } -> emit at (Kill_node node)
      | Churn { nodes = ns; pick; start; stop; down_after; up_after } ->
        let candidates = Array.of_list (expand_nodes ~nodes ns) in
        let victims =
          match pick with
          | Some k when k < Array.length candidates ->
            shuffle rng candidates;
            Array.sub candidates 0 (Stdlib.max 0 k)
          | _ -> candidates
        in
        Array.iter
          (fun v ->
            let budget = ref 10_000 in
            let t_kill =
              ref (start +. Float.max min_interval (sample rng down_after))
            in
            while !t_kill < stop && !budget > 0 do
              decr budget;
              emit !t_kill (Kill_node v);
              let t_up =
                !t_kill +. Float.max min_interval (sample rng up_after)
              in
              (* the respawn always happens — scenarios end healed *)
              emit t_up (Spawn_node v);
              t_kill :=
                t_up +. Float.max min_interval (sample rng down_after)
            done)
          victims
      | Flap { src; dst; start; stop; period; down } ->
        let budget = ref 10_000 in
        let t_down =
          ref (start +. Float.max min_interval (sample rng period))
        in
        while !t_down < stop && !budget > 0 do
          decr budget;
          emit !t_down (Stall_link { src; dst; on = true });
          let t_up = !t_down +. Float.max min_interval (sample rng down) in
          emit t_up (Stall_link { src; dst; on = false });
          t_down := t_up +. Float.max min_interval (sample rng period)
        done
      | Degrade { src; dst; rate; at; restore } -> (
        emit at (Set_link_rate { src; dst; rate });
        match restore with
        | Some r -> emit r (Set_link_rate { src; dst; rate = infinity })
        | None -> ())
      | Loss { src; dst; p; corrupt; at; clear } -> (
        emit at (Set_loss { src; dst; p; corrupt });
        match clear with
        | Some c -> emit c (Set_loss { src; dst; p = 0.; corrupt = 0. })
        | None -> ())
      | Partition { groups; at; heal } -> (
        emit at (Set_partition groups);
        match heal with Some h -> emit h (Set_partition []) | None -> ()))
    t.faults;
  List.stable_sort
    (fun (a, _) (b, _) -> Float.compare a b)
    (List.rev !acts)

let fault_span = function
  | [] -> None
  | (t0, _) :: _ as acts ->
    Some (List.fold_left (fun (a, b) (t, _) -> (Float.min a t, Float.max b t))
            (t0, t0) acts)

let partition_windows t =
  List.filter_map
    (function
      | Partition { groups; at; heal } ->
        Some (at, Option.value heal ~default:infinity, groups)
      | _ -> None)
    t.faults

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

(* exact float round-trip in the friendliest form available *)
let fstr f =
  if Float.is_integer f && Float.abs f < 1e9 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let dist_str = function
  | Const x -> "const:" ^ fstr x
  | Uniform (a, b) -> Printf.sprintf "uniform:%s:%s" (fstr a) (fstr b)
  | Exp m -> "exp:" ^ fstr m

let link_str src dst = src ^ "->" ^ dst
let groups_str groups = String.concat "|" (List.map (String.concat ",") groups)

let fault_str = function
  | Kill { node; at } -> Printf.sprintf "kill node=%s at=%s" node (fstr at)
  | Churn { nodes; pick; start; stop; down_after; up_after } ->
    Printf.sprintf "churn nodes=%s%s start=%s stop=%s down=%s up=%s"
      (String.concat "," nodes)
      (match pick with Some k -> Printf.sprintf " pick=%d" k | None -> "")
      (fstr start) (fstr stop) (dist_str down_after) (dist_str up_after)
  | Flap { src; dst; start; stop; period; down } ->
    Printf.sprintf "flap link=%s start=%s stop=%s period=%s down=%s"
      (link_str src dst) (fstr start) (fstr stop) (dist_str period)
      (dist_str down)
  | Degrade { src; dst; rate; at; restore } ->
    Printf.sprintf "degrade link=%s rate=%s at=%s%s" (link_str src dst)
      (fstr rate) (fstr at)
      (match restore with Some r -> " restore=" ^ fstr r | None -> "")
  | Loss { src; dst; p; corrupt; at; clear } ->
    Printf.sprintf "loss link=%s p=%s%s at=%s%s" (link_str src dst) (fstr p)
      (if corrupt > 0. then " corrupt=" ^ fstr corrupt else "")
      (fstr at)
      (match clear with Some c -> " clear=" ^ fstr c | None -> "")
  | Partition { groups; at; heal } ->
    Printf.sprintf "partition groups=%s at=%s%s" (groups_str groups)
      (fstr at)
      (match heal with Some h -> " heal=" ^ fstr h | None -> "")

let expect_str = function
  | No_delivery_after_teardown { grace } ->
    Printf.sprintf "expect no-delivery-after-teardown grace=%s" (fstr grace)
  | Domino_completes { within } ->
    Printf.sprintf "expect domino-completes within=%s" (fstr within)
  | Reconverge { within } ->
    Printf.sprintf "expect reconverge within=%s" (fstr within)
  | Throughput_recovers { tol; settle; window } ->
    Printf.sprintf "expect throughput-recovers tol=%s settle=%s window=%s"
      (fstr tol) (fstr settle) (fstr window)
  | Reroute_recovers { ratio; within; window } ->
    Printf.sprintf "expect reroute-recovers ratio=%s within=%s window=%s"
      (fstr ratio) (fstr within) (fstr window)
  | Partition_silent -> "expect partition-silent"
  | Membership_converges { within } ->
    Printf.sprintf "expect membership-converges within=%s" (fstr within)
  | Breaker_cycles { within } ->
    Printf.sprintf "expect breaker-cycles within=%s" (fstr within)
  | Shed_ordered { low; high } ->
    Printf.sprintf "expect shed-ordered low=%d high=%d" low high
  | Retransmit_bounded { budget } ->
    Printf.sprintf "expect retransmit-bounded budget=%d" budget
  | Recovers_after_heal { margin } ->
    Printf.sprintf "expect recovers-after-heal margin=%s" (fstr margin)
  | Min_events n -> Printf.sprintf "expect min-events %d" n

let to_string t =
  String.concat "\n"
    (Printf.sprintf "scenario %s seed=%d" t.name t.seed
     :: (List.map fault_str t.faults @ List.map expect_str t.expects))
  ^ "\n"

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse_error of int * string

let fail ln fmt = Printf.ksprintf (fun s -> raise (Parse_error (ln, s))) fmt

let split_char c s =
  String.split_on_char c s |> List.filter (fun x -> x <> "")

let kv_of_tokens ln toks =
  List.map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
        ( String.sub tok 0 i,
          String.sub tok (i + 1) (String.length tok - i - 1) )
      | None -> fail ln "expected key=value, got %S" tok)
    toks

let get ln kvs key =
  match List.assoc_opt key kvs with
  | Some v -> v
  | None -> fail ln "missing %s=" key

let get_opt kvs key = List.assoc_opt key kvs

let parse_float ln key s =
  match float_of_string_opt s with
  | Some f when Float.is_nan f -> fail ln "%s: not a number" key
  | Some f -> f
  | None -> fail ln "%s: bad number %S" key s

let parse_int ln key s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail ln "%s: bad integer %S" key s

let parse_prob ln key s =
  let p = parse_float ln key s in
  if p < 0. || p > 1. then fail ln "%s: probability outside [0,1]" key;
  p

let parse_dist ln key s =
  match String.split_on_char ':' s with
  | [ "const"; x ] -> Const (parse_float ln key x)
  | [ "uniform"; a; b ] ->
    Uniform (parse_float ln key a, parse_float ln key b)
  | [ "exp"; m ] -> Exp (parse_float ln key m)
  | _ -> fail ln "%s: bad distribution %S (const:X|uniform:A:B|exp:MEAN)" key s

let parse_link ln s =
  match
    String.index_opt s '-' |> Option.map (fun i -> i)
  with
  | Some i
    when i + 1 < String.length s
         && s.[i + 1] = '>' && i > 0
         && i + 2 < String.length s ->
    (String.sub s 0 i, String.sub s (i + 2) (String.length s - i - 2))
  | _ -> fail ln "bad link %S (want SRC->DST)" s

let parse_groups ln s =
  let groups = split_char '|' s |> List.map (split_char ',') in
  if List.length groups < 2 then
    fail ln "partition needs at least two groups";
  if List.exists (fun g -> g = []) groups then
    fail ln "partition has an empty group";
  groups

let window ln kvs =
  let start = parse_float ln "start" (get ln kvs "start") in
  let stop = parse_float ln "stop" (get ln kvs "stop") in
  if stop <= start then fail ln "stop must be after start";
  (start, stop)

let parse_line ln acc line =
  match split_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
  with
  | [] -> acc
  | directive :: rest -> (
    let name, seed, faults, expects = acc in
    match directive with
    | "scenario" -> (
      match rest with
      | sname :: kv_toks ->
        let kvs = kv_of_tokens ln kv_toks in
        let seed = parse_int ln "seed" (get ln kvs "seed") in
        (sname, seed, faults, expects)
      | [] -> fail ln "scenario needs a name")
    | "kill" ->
      let kvs = kv_of_tokens ln rest in
      let f =
        Kill
          {
            node = get ln kvs "node";
            at = parse_float ln "at" (get ln kvs "at");
          }
      in
      (name, seed, f :: faults, expects)
    | "churn" ->
      let kvs = kv_of_tokens ln rest in
      let start, stop = window ln kvs in
      let f =
        Churn
          {
            nodes = split_char ',' (get ln kvs "nodes");
            pick = Option.map (parse_int ln "pick") (get_opt kvs "pick");
            start;
            stop;
            down_after = parse_dist ln "down" (get ln kvs "down");
            up_after = parse_dist ln "up" (get ln kvs "up");
          }
      in
      (name, seed, f :: faults, expects)
    | "flap" ->
      let kvs = kv_of_tokens ln rest in
      let src, dst = parse_link ln (get ln kvs "link") in
      let start, stop = window ln kvs in
      let f =
        Flap
          {
            src;
            dst;
            start;
            stop;
            period = parse_dist ln "period" (get ln kvs "period");
            down = parse_dist ln "down" (get ln kvs "down");
          }
      in
      (name, seed, f :: faults, expects)
    | "degrade" ->
      let kvs = kv_of_tokens ln rest in
      let src, dst = parse_link ln (get ln kvs "link") in
      let rate = parse_float ln "rate" (get ln kvs "rate") in
      if rate <= 0. then fail ln "rate must be positive";
      let f =
        Degrade
          {
            src;
            dst;
            rate;
            at = parse_float ln "at" (get ln kvs "at");
            restore =
              Option.map (parse_float ln "restore") (get_opt kvs "restore");
          }
      in
      (name, seed, f :: faults, expects)
    | "loss" ->
      let kvs = kv_of_tokens ln rest in
      let src, dst = parse_link ln (get ln kvs "link") in
      let f =
        Loss
          {
            src;
            dst;
            p = parse_prob ln "p" (get ln kvs "p");
            corrupt =
              (match get_opt kvs "corrupt" with
              | Some c -> parse_prob ln "corrupt" c
              | None -> 0.);
            at = parse_float ln "at" (get ln kvs "at");
            clear = Option.map (parse_float ln "clear") (get_opt kvs "clear");
          }
      in
      (name, seed, f :: faults, expects)
    | "partition" ->
      let kvs = kv_of_tokens ln rest in
      let f =
        Partition
          {
            groups = parse_groups ln (get ln kvs "groups");
            at = parse_float ln "at" (get ln kvs "at");
            heal = Option.map (parse_float ln "heal") (get_opt kvs "heal");
          }
      in
      (name, seed, f :: faults, expects)
    | "expect" -> (
      match rest with
      | [] -> fail ln "expect needs a property name"
      | prop :: args ->
        let e =
          match prop with
          | "no-delivery-after-teardown" ->
            let kvs = kv_of_tokens ln args in
            No_delivery_after_teardown
              {
                grace =
                  (match get_opt kvs "grace" with
                  | Some g -> parse_float ln "grace" g
                  | None -> 0.5);
              }
          | "domino-completes" ->
            let kvs = kv_of_tokens ln args in
            Domino_completes
              { within = parse_float ln "within" (get ln kvs "within") }
          | "reconverge" ->
            let kvs = kv_of_tokens ln args in
            Reconverge
              { within = parse_float ln "within" (get ln kvs "within") }
          | "throughput-recovers" ->
            let kvs = kv_of_tokens ln args in
            Throughput_recovers
              {
                tol = parse_prob ln "tol" (get ln kvs "tol");
                settle =
                  (match get_opt kvs "settle" with
                  | Some s -> parse_float ln "settle" s
                  | None -> 5.);
                window =
                  (match get_opt kvs "window" with
                  | Some w -> parse_float ln "window" w
                  | None -> 5.);
              }
          | "reroute-recovers" ->
            let kvs = kv_of_tokens ln args in
            Reroute_recovers
              {
                ratio = parse_prob ln "ratio" (get ln kvs "ratio");
                within =
                  (match get_opt kvs "within" with
                  | Some s -> parse_float ln "within" s
                  | None -> 5.);
                window =
                  (match get_opt kvs "window" with
                  | Some w -> parse_float ln "window" w
                  | None -> 2.);
              }
          | "partition-silent" -> Partition_silent
          | "membership-converges" ->
            let kvs = kv_of_tokens ln args in
            Membership_converges
              {
                within =
                  (match get_opt kvs "within" with
                  | Some s -> parse_float ln "within" s
                  | None -> 10.);
              }
          | "breaker-cycles" ->
            let kvs = kv_of_tokens ln args in
            Breaker_cycles
              {
                within =
                  (match get_opt kvs "within" with
                  | Some s -> parse_float ln "within" s
                  | None -> 10.);
              }
          | "shed-ordered" ->
            let kvs = kv_of_tokens ln args in
            Shed_ordered
              {
                low = parse_int ln "low" (get ln kvs "low");
                high = parse_int ln "high" (get ln kvs "high");
              }
          | "retransmit-bounded" ->
            let kvs = kv_of_tokens ln args in
            Retransmit_bounded
              { budget = parse_int ln "budget" (get ln kvs "budget") }
          | "recovers-after-heal" ->
            let kvs = kv_of_tokens ln args in
            Recovers_after_heal
              {
                margin =
                  (match get_opt kvs "margin" with
                  | Some s -> parse_float ln "margin" s
                  | None -> 5.);
              }
          | "min-events" -> (
            match args with
            | [ n ] -> Min_events (parse_int ln "min-events" n)
            | _ -> fail ln "expect min-events N")
          | p -> fail ln "unknown expectation %S" p
        in
        (name, seed, faults, e :: expects))
    | d -> fail ln "unknown directive %S" d)

let parse text =
  let lines = String.split_on_char '\n' text in
  let strip line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    String.trim line
  in
  let _, acc =
    List.fold_left
      (fun (ln, acc) raw -> (ln + 1, parse_line ln acc (strip raw)))
      (1, ("", min_int, [], []))
      lines
  in
  let name, seed, faults, expects = acc in
  if name = "" then
    raise (Parse_error (1, "missing 'scenario <name> seed=<int>' header"));
  { name; seed; faults = List.rev faults; expects = List.rev expects }

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))
