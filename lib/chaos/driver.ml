module Sim = Iov_dsim.Sim

let src_log = Logs.Src.create "iov.chaos" ~doc:"iOverlay chaos driver"

module Log = (val Logs.src_log src_log)

let schedule_sim sim ~apply actions =
  List.iter
    (fun (time, action) ->
      let time = Float.max time (Sim.now sim) in
      ignore (Sim.schedule_at sim ~time (fun () -> apply action)))
    actions

let run_threaded ?(speedup = 1.0) ~apply actions =
  if speedup <= 0. then invalid_arg "Driver.run_threaded: speedup";
  Thread.create
    (fun () ->
      let t0 = Unix.gettimeofday () in
      List.iter
        (fun (time, action) ->
          let due = t0 +. (time /. speedup) in
          let rec wait () =
            let dt = due -. Unix.gettimeofday () in
            if dt > 0. then begin
              Unix.sleepf dt;
              wait ()
            end
          in
          wait ();
          try apply action
          with exn ->
            Log.warn (fun m ->
                m "chaos action at t=%g raised %s" time
                  (Printexc.to_string exn)))
        actions)
    ()
