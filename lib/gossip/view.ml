module NI = Iov_msg.Node_id

type entry = { v_peer : NI.t; mutable v_age : int }

type t = { self : NI.t; cap : int; mutable entries : entry list }

let create ?(capacity = 16) ~self () =
  if capacity < 1 then invalid_arg "View.create: capacity";
  { self; cap = capacity; entries = [] }

let capacity t = t.cap
let size t = List.length t.entries
let peers t = List.map (fun e -> e.v_peer) t.entries
let mem t p = List.exists (fun e -> NI.equal e.v_peer p) t.entries

let remove t p =
  t.entries <- List.filter (fun e -> not (NI.equal e.v_peer p)) t.entries

let age t = List.iter (fun e -> e.v_age <- e.v_age + 1) t.entries

let oldest t =
  match t.entries with
  | [] -> None
  | e0 :: rest ->
    let best =
      List.fold_left (fun b e -> if e.v_age > b.v_age then e else b) e0 rest
    in
    Some best.v_peer

(* Eviction prefers a victim from [prefer] (descriptors we just shipped
   to the shuffle partner — Cyclon's swap rule keeps the union of the
   two views constant); otherwise a seeded-random entry goes. *)
let evict t ~rng ~prefer =
  let preferred = List.filter (fun e -> List.exists (NI.equal e.v_peer) prefer)
      t.entries in
  let victim =
    match preferred with
    | e :: _ -> Some e.v_peer
    | [] -> (
      match t.entries with
      | [] -> None
      | es -> Some (List.nth es (Random.State.int rng (List.length es))).v_peer)
  in
  match victim with None -> () | Some p -> remove t p

let add ?(prefer = []) t ~rng p =
  if NI.equal p t.self || mem t p then ()
  else begin
    if size t >= t.cap then evict t ~rng ~prefer;
    t.entries <- { v_peer = p; v_age = 0 } :: t.entries
  end

(* Seeded Fisher-Yates over a copy; the view itself keeps its order. *)
let sample t ~rng n =
  let arr = Array.of_list t.entries in
  let len = Array.length arr in
  let n = min n len in
  for i = 0 to n - 1 do
    let j = i + Random.State.int rng (len - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list (Array.sub arr 0 n) |> List.map (fun e -> e.v_peer)

let shuffle_out t ~rng ~size:n ~exclude =
  let cand =
    List.filter (fun e -> not (NI.equal e.v_peer exclude)) t.entries
  in
  let arr = Array.of_list cand in
  let len = Array.length arr in
  let k = min (n - 1) len in
  for i = 0 to k - 1 do
    let j = i + Random.State.int rng (len - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  t.self :: (Array.to_list (Array.sub arr 0 k) |> List.map (fun e -> e.v_peer))

let merge t ~rng ~sent received =
  List.iter (fun p -> add ~prefer:sent t ~rng p) received
