(** The bounded partial view for epidemic peer sampling — a Cyclon-style
    age-annotated cache of peer descriptors.

    Each shuffle round ages every descriptor, picks the {e oldest} peer
    as the exchange partner (so failed peers are retried and flushed
    first), ships a seeded-random sample, and merges the partner's
    sample back, evicting first among the descriptors just shipped (the
    swap rule that keeps view unions stable). All randomness comes from
    the caller's seeded [Random.State.t]. *)

type t

val create : ?capacity:int -> self:Iov_msg.Node_id.t -> unit -> t
(** [capacity] defaults to 16. @raise Invalid_argument if below 1. *)

val capacity : t -> int
val size : t -> int
val peers : t -> Iov_msg.Node_id.t list
val mem : t -> Iov_msg.Node_id.t -> bool

val add : ?prefer:Iov_msg.Node_id.t list -> t -> rng:Random.State.t ->
  Iov_msg.Node_id.t -> unit
(** Inserts a fresh (age-0) descriptor; self and duplicates are
    ignored. A full view evicts first among [prefer], else a
    seeded-random victim. *)

val remove : t -> Iov_msg.Node_id.t -> unit

val age : t -> unit
(** One shuffle round passed: every descriptor ages by 1. *)

val oldest : t -> Iov_msg.Node_id.t option
(** The next shuffle partner. *)

val sample : t -> rng:Random.State.t -> int -> Iov_msg.Node_id.t list
(** A uniform seeded sample of at most [n] view peers. *)

val shuffle_out : t -> rng:Random.State.t -> size:int ->
  exclude:Iov_msg.Node_id.t -> Iov_msg.Node_id.t list
(** The descriptor list shipped to a shuffle partner: self plus at most
    [size - 1] sampled peers, never including [exclude] (the partner
    itself). *)

val merge : t -> rng:Random.State.t -> sent:Iov_msg.Node_id.t list ->
  Iov_msg.Node_id.t list -> unit
(** Absorbs a partner's descriptors, evicting preferentially among
    [sent]. *)
