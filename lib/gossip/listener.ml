module Network = Iov_core.Network
module Observer = Iov_observer.Observer
module NI = Iov_msg.Node_id
module Msg = Iov_msg.Message
module Wire = Iov_msg.Wire

type t = {
  ob : Observer.t;
  mutable n_digests : int;
  mutable n_updates : int;
}

let handle_digest t (m : Msg.t) =
  match
    let r = Wire.R.of_bytes m.Msg.payload in
    let op = Wire.R.int32 r in
    let _entries = Wire.R.nodes r in
    let n = Wire.R.int32 r in
    let ups =
      List.init n (fun _ ->
          let node = Wire.R.node r in
          let status = Swim.status_of_int (Wire.R.int32 r) in
          let _inc = Wire.R.int32 r in
          (node, status))
    in
    (op, ups)
  with
  | exception (Wire.Truncated | Invalid_argument _) -> ()
  | op, ups when op = 4 (* digest *) ->
    t.n_digests <- t.n_digests + 1;
    List.iter
      (fun (node, status) ->
        t.n_updates <- t.n_updates + 1;
        match status with
        | Swim.Alive | Swim.Suspect -> Observer.note_alive t.ob node
        | Swim.Dead -> Observer.note_dead t.ob node)
      ups
  | _ -> ()

let create ?id ?boot_subset ?(contacts = []) net =
  let ob = Observer.create ?id ?boot_subset net in
  let t = { ob; n_digests = 0; n_updates = 0 } in
  Observer.set_fallback ob (fun m ->
      if m.Msg.mtype = Gossip.view_kind then handle_digest t m);
  (* subscribe: one control message per contact, then silence — every
     later fact arrives as a pushed digest *)
  List.iter
    (fun c ->
      let w = Wire.W.create () in
      Wire.W.int32 w 5 (* subscribe *);
      Wire.W.nodes w [];
      Wire.W.int32 w 0;
      Observer.control_message ob
        (Msg.control ~mtype:Gossip.view_kind ~origin:(Observer.id ob)
           (Wire.W.contents w))
        c)
    contacts;
  t

let observer t = t.ob
let id t = Observer.id t.ob
let alive_nodes t = Observer.alive_nodes t.ob
let digest_count t = t.n_digests
let update_count t = t.n_updates
