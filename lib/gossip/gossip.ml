module NI = Iov_msg.Node_id
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module Wire = Iov_msg.Wire
module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module Tel = Iov_telemetry.Telemetry
module Ev = Iov_telemetry.Event
module Metrics = Iov_telemetry.Metrics
module Backoff = Iov_guard.Backoff

let src = Logs.Src.create "iov.gossip" ~doc:"gossip membership"

module Log = (val Logs.src_log src : Logs.LOG)

(* The subsystem's slice of the Custom tag space, claimed centrally. *)
let ping_kind = Mt.Registry.register ~owner:"gossip" ~name:"ping" 112
let ack_kind = Mt.Registry.register ~owner:"gossip" ~name:"ack" 113
let ping_req_kind = Mt.Registry.register ~owner:"gossip" ~name:"ping-req" 114
let view_kind = Mt.Registry.register ~owner:"gossip" ~name:"view" 115

(* Sub-operations of the [view] type. *)
let op_shuffle = 0
let op_shuffle_reply = 1
let op_join = 2
let op_join_reply = 3
let op_digest = 4
let op_subscribe = 5

type stats = {
  mutable probes : int;
  mutable acks : int;
  mutable indirect : int;  (** probe-req fan-outs after a missed ack *)
  mutable suspects : int;  (** local suspicion verdicts *)
  mutable confirms : int;  (** peers this node declared dead *)
  mutable shuffles : int;  (** view exchanges completed *)
  mutable joins_served : int;
  mutable digests_sent : int;
}

type pending = { p_target : NI.t; mutable p_acked : bool }

type t = {
  g_self : NI.t;
  seeds : NI.t list;
  period : float;
  probe_timeout : float;
  suspicion_timeout : float;
  proxies : int;
  piggyback_limit : int;
  shuffle_size : int;
  digest_every : int;
  anti_entropy_every : int;
  sw : Swim.t;
  vw : View.t;
  mutable seq : int;
  pending : (int, pending) Hashtbl.t;
  mutable rr : NI.t list;  (** randomized round-robin probe order *)
  reprobe : (NI.t, Backoff.t * float ref) Hashtbl.t;
      (** peers whose last probe went fully unanswered: the backoff
          schedule spacing further probes, and the next eligible time *)
  mutable listeners : NI.t list;
  mutable round : int;
  mutable joined : bool;
  mutable on_change : (NI.t -> Swim.status -> unit) option;
  tel : (Tel.t * Iov_telemetry.Tracer.t) option;
  conv_ms : Metrics.histogram option;
      (** suspicion age at confirmation, milliseconds *)
  st : stats;
}

let create ?telemetry ?(probe_period = 0.5) ?(probe_timeout = 0.15)
    ?(suspicion_timeout = 2.0) ?(proxies = 3) ?(view_capacity = 16)
    ?(shuffle_size = 8) ?(piggyback_limit = 8) ?(digest_every = 2)
    ?(anti_entropy_every = 8) ?(seeds = []) ~self () =
  if probe_period <= 0. then invalid_arg "Gossip.create: probe_period";
  if probe_timeout <= 0. || 2. *. probe_timeout >= probe_period then
    invalid_arg "Gossip.create: probe_timeout";
  if suspicion_timeout <= 0. then
    invalid_arg "Gossip.create: suspicion_timeout";
  if proxies < 1 then invalid_arg "Gossip.create: proxies";
  if anti_entropy_every < 1 then
    invalid_arg "Gossip.create: anti_entropy_every";
  let tel =
    match telemetry with
    | Some tl -> Some (tl, Tel.tracer tl self)
    | None -> None
  in
  let conv_ms =
    match telemetry with
    | Some tl ->
      Some
        (Metrics.histogram (Tel.metrics tl) ~scope:(NI.to_string self)
           "gossip.confirm_ms")
    | None -> None
  in
  {
    g_self = self;
    seeds = List.filter (fun s -> not (NI.equal s self)) seeds;
    period = probe_period;
    probe_timeout;
    suspicion_timeout;
    proxies;
    piggyback_limit;
    shuffle_size;
    digest_every;
    anti_entropy_every;
    sw = Swim.create ~self ();
    vw = View.create ~capacity:view_capacity ~self ();
    seq = 0;
    pending = Hashtbl.create 8;
    rr = [];
    reprobe = Hashtbl.create 8;
    listeners = [];
    round = 0;
    joined = false;
    on_change = None;
    tel;
    conv_ms;
    st =
      {
        probes = 0;
        acks = 0;
        indirect = 0;
        suspects = 0;
        confirms = 0;
        shuffles = 0;
        joins_served = 0;
        digests_sent = 0;
      };
  }

let self t = t.g_self
let alive t = Swim.alive t.sw
let members t = Swim.members t.sw
let is_alive t n = Swim.is_alive t.sw n
let liveness t n = NI.equal n t.g_self || Swim.is_alive t.sw n
let view_peers t = View.peers t.vw
let stats t = t.st
let swim t = t.sw
let set_on_change t f = t.on_change <- Some f

let add_listener t l =
  if not (List.exists (NI.equal l) t.listeners) then
    t.listeners <- l :: t.listeners

let tel_event t (ctx : Alg.ctx) kind ~peer ~mseq ~size =
  match t.tel with
  | None -> ()
  | Some (tl, tr) ->
    Tel.record tl tr ~time:(ctx.now ()) ~kind ~peer ~id:Ev.no_id ~app:0
      ~mseq ~size

(* -- wire forms ---------------------------------------------------- *)

let w_updates w ups =
  Wire.W.int32 w (List.length ups);
  List.iter
    (fun (u : Swim.update) ->
      Wire.W.node w u.Swim.u_node;
      Wire.W.int32 w (Swim.status_to_int u.Swim.u_status);
      Wire.W.int32 w u.Swim.u_inc)
    ups

let r_updates r =
  let n = Wire.R.int32 r in
  List.init n (fun _ ->
      let node = Wire.R.node r in
      let status = Swim.status_of_int (Wire.R.int32 r) in
      let inc = Wire.R.int32 r in
      { Swim.u_node = node; u_status = status; u_inc = inc })

let ping_msg t ~requester ~seq =
  let w = Wire.W.create () in
  Wire.W.int32 w seq;
  Wire.W.node w requester;
  w_updates w (Swim.piggyback t.sw ~limit:t.piggyback_limit);
  Msg.control ~mtype:ping_kind ~origin:t.g_self (Wire.W.contents w)

let ack_msg t ~seq =
  let w = Wire.W.create () in
  Wire.W.int32 w seq;
  Wire.W.node w t.g_self;
  Wire.W.int32 w (Swim.self_inc t.sw);
  w_updates w (Swim.piggyback t.sw ~limit:t.piggyback_limit);
  Msg.control ~mtype:ack_kind ~origin:t.g_self (Wire.W.contents w)

let ping_req_msg t ~target ~seq ~requester =
  let w = Wire.W.create () in
  Wire.W.int32 w seq;
  Wire.W.node w target;
  Wire.W.node w requester;
  w_updates w (Swim.piggyback t.sw ~limit:t.piggyback_limit);
  Msg.control ~mtype:ping_req_kind ~origin:t.g_self (Wire.W.contents w)

let view_msg t ~op ~entries ~updates =
  let w = Wire.W.create () in
  Wire.W.int32 w op;
  Wire.W.nodes w entries;
  w_updates w updates;
  Msg.control ~mtype:view_kind ~origin:t.g_self (Wire.W.contents w)

(* -- rumor ingestion ----------------------------------------------- *)

(* Absorbing an update may be the first we hear of a peer (grow the
   round-robin pool), a suspicion or a confirmation (telemetry + the
   on_change hook), or defamation about ourselves (Swim already queued
   the rebuttal). *)
let absorb t (ctx : Alg.ctx) (u : Swim.update) =
  match Swim.apply t.sw ~now:(ctx.now ()) u with
  | Swim.Stale -> ()
  | Swim.Refuted ->
    Log.debug (fun m ->
        m "%a: refuted %s rumor about self, now incarnation %d" NI.pp
          t.g_self
          (Swim.status_to_string u.Swim.u_status)
          (Swim.self_inc t.sw))
  | Swim.Fresh _prev -> (
    match u.Swim.u_status with
    | Swim.Alive ->
      View.add t.vw ~rng:ctx.Alg.rng u.Swim.u_node;
      (match t.on_change with
      | Some f -> f u.Swim.u_node Swim.Alive
      | None -> ())
    | Swim.Suspect ->
      tel_event t ctx Ev.Suspect ~peer:u.Swim.u_node ~mseq:u.Swim.u_inc
        ~size:0;
      (match t.on_change with
      | Some f -> f u.Swim.u_node Swim.Suspect
      | None -> ())
    | Swim.Dead ->
      tel_event t ctx Ev.Confirm ~peer:u.Swim.u_node ~mseq:u.Swim.u_inc
        ~size:0;
      View.remove t.vw u.Swim.u_node;
      t.rr <- List.filter (fun n -> not (NI.equal n u.Swim.u_node)) t.rr;
      (match t.on_change with
      | Some f -> f u.Swim.u_node Swim.Dead
      | None -> ()))

let absorb_all t ctx ups = List.iter (absorb t ctx) ups

(* View descriptors carry no incarnation, so they enter the membership
   as [Alive] at incarnation 0 — a floor that can seed discovery of a
   never-seen peer but can never resurrect a [Dead] entry or refute a
   suspicion (both require a strictly higher incarnation). *)
let absorb_hints t ctx entries =
  List.iter
    (fun n ->
      absorb t ctx { Swim.u_node = n; u_status = Swim.Alive; u_inc = 0 })
    entries

(* -- failure detection --------------------------------------------- *)

let sample_alive t (ctx : Alg.ctx) ~excluding n =
  let cand =
    Swim.alive_peers t.sw
    |> List.filter (fun p -> not (List.exists (NI.equal p) excluding))
  in
  let arr = Array.of_list cand in
  let len = Array.length arr in
  let n = min n len in
  for i = 0 to n - 1 do
    let j = i + Random.State.int ctx.Alg.rng (len - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list (Array.sub arr 0 n)

(* -- re-probe backoff (overload guard) ----------------------------- *)

(* A peer whose probe went fully unanswered (no direct ack, no
   indirect one) is not probed again immediately: further probes ride
   the shared backoff schedule, so a long-dead peer costs O(log)
   probes instead of one per round. Any answer clears the slate. *)

let reprobe_eligible t ~now peer =
  match Hashtbl.find_opt t.reprobe peer with
  | None -> true
  | Some (_, until) -> now >= !until

let reprobe_defer t (ctx : Alg.ctx) peer =
  let bo, until =
    match Hashtbl.find_opt t.reprobe peer with
    | Some e -> e
    | None ->
      let e =
        ( Backoff.create ~base:t.period ~cap:(8. *. t.period) ~rng:ctx.Alg.rng
            (),
          ref 0. )
      in
      Hashtbl.add t.reprobe peer e;
      e
  in
  until := ctx.Alg.now () +. Backoff.next bo

let reprobe_clear t peer = Hashtbl.remove t.reprobe peer

let next_probe_target t (ctx : Alg.ctx) =
  let now = ctx.Alg.now () in
  let rec pick retried =
    match t.rr with
    | p :: rest ->
      t.rr <- rest;
      if Swim.is_alive t.sw p && reprobe_eligible t ~now p then Some p
      else pick retried
    | [] ->
      if retried then None
      else begin
        (* reshuffle the alive membership into a fresh round-robin
           order — SWIM's bounded-completeness trick *)
        t.rr <- sample_alive t ctx ~excluding:[] max_int;
        pick true
      end
  in
  pick false

let suspect t (ctx : Alg.ctx) target =
  if Swim.suspect_local t.sw ~now:(ctx.now ()) target then begin
    t.st.suspects <- t.st.suspects + 1;
    (match Swim.status_of t.sw target with
    | Some (_, inc) ->
      tel_event t ctx Ev.Suspect ~peer:target ~mseq:inc ~size:0
    | None -> ());
    match t.on_change with Some f -> f target Swim.Suspect | None -> ()
  end

let probe t (ctx : Alg.ctx) target =
  t.seq <- t.seq + 1;
  let seq = t.seq in
  Hashtbl.replace t.pending seq { p_target = target; p_acked = false };
  t.st.probes <- t.st.probes + 1;
  ctx.Alg.send (ping_msg t ~requester:t.g_self ~seq) target;
  ctx.Alg.set_timer t.probe_timeout (fun () ->
      match Hashtbl.find_opt t.pending seq with
      | None | Some { p_acked = true; _ } -> Hashtbl.remove t.pending seq
      | Some _ ->
        (* no direct ack: fan out through [proxies] intermediaries *)
        let proxies =
          sample_alive t ctx ~excluding:[ target ] t.proxies
        in
        if proxies <> [] then t.st.indirect <- t.st.indirect + 1;
        List.iter
          (fun px ->
            ctx.Alg.send
              (ping_req_msg t ~target ~seq ~requester:t.g_self)
              px)
          proxies;
        ctx.Alg.set_timer t.probe_timeout (fun () ->
            (match Hashtbl.find_opt t.pending seq with
            | None | Some { p_acked = true; _ } -> ()
            | Some _ ->
              (* fully unanswered: space further probes of this peer *)
              reprobe_defer t ctx target;
              suspect t ctx target);
            Hashtbl.remove t.pending seq))

let confirm_expired t (ctx : Alg.ctx) =
  let now = ctx.Alg.now () in
  Swim.expired_suspects t.sw ~now ~timeout:t.suspicion_timeout
  |> List.iter (fun n ->
         match Swim.confirm_local t.sw ~now n with
         | None -> ()
         | Some age ->
           t.st.confirms <- t.st.confirms + 1;
           (match t.conv_ms with
           | Some h -> Metrics.observe h (int_of_float (age *. 1000.))
           | None -> ());
           (match Swim.status_of t.sw n with
           | Some (_, inc) ->
             tel_event t ctx Ev.Confirm ~peer:n ~mseq:inc ~size:0
           | None -> ());
           View.remove t.vw n;
           t.rr <- List.filter (fun p -> not (NI.equal p n)) t.rr;
           (match t.on_change with
           | Some f -> f n Swim.Dead
           | None -> ()))

(* -- peer sampling ------------------------------------------------- *)

let shuffle t (ctx : Alg.ctx) =
  View.age t.vw;
  let partner =
    match View.oldest t.vw with
    | Some p when Swim.is_alive t.sw p -> Some p
    | _ -> ( match sample_alive t ctx ~excluding:[] 1 with
      | [ p ] -> Some p
      | _ -> None)
  in
  match partner with
  | None -> ()
  | Some p ->
    let out =
      View.shuffle_out t.vw ~rng:ctx.Alg.rng ~size:t.shuffle_size ~exclude:p
    in
    (* Every [anti_entropy_every]-th round the shuffle carries the full
       membership digest instead of the piggyback queue: a pairwise
       push-pull state sync that repairs whatever the bounded-ride
       epidemic missed, guaranteeing convergence. A freshly-joined
       node's first rounds all sync (the digest is small exactly while
       its knowledge is), so a mass bootstrap converges in a couple of
       rounds instead of one budgeted ride at a time. *)
    let anti_entropy =
      t.round <= 4 || t.round mod t.anti_entropy_every = 0
    in
    let updates =
      if anti_entropy then Swim.full_digest t.sw
      else Swim.piggyback t.sw ~limit:t.piggyback_limit
    in
    ctx.Alg.send (view_msg t ~op:op_shuffle ~entries:out ~updates) p

(* -- listener digests ---------------------------------------------- *)

let push_digests t (ctx : Alg.ctx) =
  if t.listeners <> [] && t.round mod t.digest_every = 0 then
    List.iter
      (fun l ->
        t.st.digests_sent <- t.st.digests_sent + 1;
        ctx.Alg.send
          (view_msg t ~op:op_digest ~entries:[]
             ~updates:(Swim.full_digest t.sw))
          l)
      t.listeners

(* -- the protocol loop --------------------------------------------- *)

let tick t (ctx : Alg.ctx) =
  t.round <- t.round + 1;
  confirm_expired t ctx;
  (match next_probe_target t ctx with
  | Some target -> probe t ctx target
  | None -> ());
  shuffle t ctx;
  push_digests t ctx

let rec tick_loop t (ctx : Alg.ctx) =
  ctx.Alg.set_timer t.period (fun () ->
      tick t ctx;
      tick_loop t ctx)

let join t (ctx : Alg.ctx) =
  let contacts =
    match t.seeds with [] -> ctx.Alg.known_hosts () | s -> s
  in
  let contacts =
    List.filter (fun c -> not (NI.equal c t.g_self)) contacts
  in
  (match contacts with
  | [] -> ()  (* the first node IS the membership *)
  | c :: _ ->
    (* one seed contact carries the join; everything after spreads
       epidemically *)
    ctx.Alg.send
      (view_msg t ~op:op_join ~entries:[]
         ~updates:[ Swim.self_update t.sw ])
      c);
  t.joined <- true

let handle_ping t (ctx : Alg.ctx) (m : Msg.t) =
  let r = Wire.R.of_bytes m.Msg.payload in
  let seq = Wire.R.int32 r in
  let requester = Wire.R.node r in
  absorb_all t ctx (r_updates r);
  absorb t ctx
    { Swim.u_node = m.Msg.origin; u_status = Swim.Alive; u_inc = 0 };
  ctx.Alg.send (ack_msg t ~seq) requester

let handle_ack t (ctx : Alg.ctx) (m : Msg.t) =
  let r = Wire.R.of_bytes m.Msg.payload in
  let seq = Wire.R.int32 r in
  let subject = Wire.R.node r in
  let inc = Wire.R.int32 r in
  absorb t ctx { Swim.u_node = subject; u_status = Swim.Alive; u_inc = inc };
  absorb_all t ctx (r_updates r);
  reprobe_clear t subject;
  match Hashtbl.find_opt t.pending seq with
  | Some p when NI.equal p.p_target subject ->
    p.p_acked <- true;
    t.st.acks <- t.st.acks + 1
  | _ -> ()

let handle_ping_req t (ctx : Alg.ctx) (m : Msg.t) =
  let r = Wire.R.of_bytes m.Msg.payload in
  let seq = Wire.R.int32 r in
  let target = Wire.R.node r in
  let requester = Wire.R.node r in
  absorb_all t ctx (r_updates r);
  (* relay: the target acks the original requester directly *)
  ctx.Alg.send (ping_msg t ~requester ~seq) target

let handle_view t (ctx : Alg.ctx) (m : Msg.t) =
  let r = Wire.R.of_bytes m.Msg.payload in
  let op = Wire.R.int32 r in
  let entries = Wire.R.nodes r in
  let updates = r_updates r in
  if op = op_shuffle || op = op_shuffle_reply || op = op_join then
    absorb t ctx
      { Swim.u_node = m.Msg.origin; u_status = Swim.Alive; u_inc = 0 };
  absorb_all t ctx updates;
  if op = op_shuffle then begin
    absorb_hints t ctx entries;
    let out =
      View.shuffle_out t.vw ~rng:ctx.Alg.rng ~size:t.shuffle_size
        ~exclude:m.Msg.origin
    in
    View.merge t.vw ~rng:ctx.Alg.rng ~sent:out entries;
    t.st.shuffles <- t.st.shuffles + 1;
    tel_event t ctx Ev.View_exchange ~peer:m.Msg.origin
      ~mseq:(List.length entries) ~size:(Msg.payload_size m);
    (* An anti-entropy shuffle (recognizable by its oversize update
       list) is answered in kind: full digest back, completing the
       pairwise push-pull sync. *)
    let reply_updates =
      if List.length updates > t.piggyback_limit then Swim.full_digest t.sw
      else Swim.piggyback t.sw ~limit:t.piggyback_limit
    in
    ctx.Alg.send
      (view_msg t ~op:op_shuffle_reply ~entries:out ~updates:reply_updates)
      m.Msg.origin
  end
  else if op = op_shuffle_reply then begin
    absorb_hints t ctx entries;
    View.merge t.vw ~rng:ctx.Alg.rng ~sent:[] entries;
    t.st.shuffles <- t.st.shuffles + 1;
    tel_event t ctx Ev.View_exchange ~peer:m.Msg.origin
      ~mseq:(List.length entries) ~size:(Msg.payload_size m)
  end
  else if op = op_join then begin
    t.st.joins_served <- t.st.joins_served + 1;
    let out =
      View.shuffle_out t.vw ~rng:ctx.Alg.rng ~size:t.shuffle_size
        ~exclude:m.Msg.origin
    in
    ctx.Alg.send
      (view_msg t ~op:op_join_reply ~entries:out
         ~updates:(Swim.full_digest t.sw))
      m.Msg.origin
  end
  else if op = op_join_reply then begin
    absorb_hints t ctx entries;
    View.merge t.vw ~rng:ctx.Alg.rng ~sent:[] entries;
    tel_event t ctx Ev.View_exchange ~peer:m.Msg.origin
      ~mseq:(List.length entries) ~size:(Msg.payload_size m)
  end
  else if op = op_subscribe then add_listener t m.Msg.origin
  (* op_digest is listener-bound; a node receiving one ignores it *)

let algorithm t =
  Ialg.make ~name:"gossip"
    ~on_start:(fun ctx ->
      join t ctx;
      (* desynchronize the first round with a seeded phase *)
      ctx.Alg.set_timer (Random.State.float ctx.Alg.rng t.period) (fun () ->
          tick t ctx;
          tick_loop t ctx))
    (fun ctx m ->
      let k = m.Msg.mtype in
      if k = ping_kind then (handle_ping t ctx m; Some Alg.Consume)
      else if k = ack_kind then (handle_ack t ctx m; Some Alg.Consume)
      else if k = ping_req_kind then (handle_ping_req t ctx m; Some Alg.Consume)
      else if k = view_kind then (handle_view t ctx m; Some Alg.Consume)
      else None)

(* Run the membership protocol alongside an application algorithm on
   the same node: gossip consumes its four control types, everything
   else reaches the inner algorithm untouched. *)
let wrap t (inner : Alg.t) =
  let g = algorithm t in
  {
    Alg.name = g.Alg.name ^ "+" ^ inner.Alg.name;
    process =
      (fun ctx m ->
        let k = m.Msg.mtype in
        if
          k = ping_kind || k = ack_kind || k = ping_req_kind
          || k = view_kind
        then g.Alg.process ctx m
        else inner.Alg.process ctx m);
    on_ready = inner.Alg.on_ready;
    on_tick =
      (fun ctx ->
        g.Alg.on_tick ctx;
        inner.Alg.on_tick ctx);
    on_start =
      (fun ctx ->
        g.Alg.on_start ctx;
        inner.Alg.on_start ctx);
  }
