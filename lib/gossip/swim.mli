(** SWIM membership state: per-peer status/incarnation records, the
    refutation rules, and the epidemic piggyback queue.

    This module is pure bookkeeping — no I/O, no timers. {!Gossip}
    drives it from probe traffic; tests drive it directly. Status
    precedence follows the SWIM paper: an [Alive] at incarnation [i]
    overrides [Suspect]/[Alive] at [j < i]; a [Suspect] at [i]
    overrides [Alive] at [j <= i]; a confirmation ([Dead]) overrides
    both at [j <= i] but {e not} a strictly higher incarnation, so a
    respawned node (rejoining at [dead_inc + 1]) survives stale rumors
    about its previous life. Only the node itself raises its own
    incarnation — by refuting a [Suspect]/[Dead] claim about itself. *)

type status = Alive | Suspect | Dead

val status_to_int : status -> int
val status_of_int : int -> status
(** @raise Invalid_argument on unknown codes. *)

val status_to_string : status -> string
val pp_status : Format.formatter -> status -> unit

type update = { u_node : Iov_msg.Node_id.t; u_status : status; u_inc : int }
(** One membership rumor as carried on the wire. *)

type t

val create : self:Iov_msg.Node_id.t -> unit -> t
val self : t -> Iov_msg.Node_id.t

val self_inc : t -> int
(** Our own incarnation — bumped only by refutation. *)

val self_update : t -> update
(** [Alive (self, self_inc)] — what we piggyback about ourselves. *)

val transmit_budget : t -> int
(** How many times each queued update rides outgoing traffic before it
    retires: [4 + 2 log2 (membership size)], the SWIM dissemination
    bound. *)

(** {1 Queries} *)

val members : t -> (Iov_msg.Node_id.t * status * int) list
(** Every peer ever heard of (including the dead), ascending by id.
    Excludes self. *)

val status_of : t -> Iov_msg.Node_id.t -> (status * int) option
(** Self reports as [Alive] at {!self_inc}. *)

val is_alive : t -> Iov_msg.Node_id.t -> bool
(** [Suspect] still counts as alive — suspicion is a grace period, not
    a verdict. Unknown nodes are not alive. *)

val alive : t -> Iov_msg.Node_id.t list
(** Members not confirmed dead, {e including} self, ascending. *)

val alive_peers : t -> Iov_msg.Node_id.t list
(** {!alive} without self. *)

val size : t -> int
(** Membership size including self. *)

(** {1 Rumor ingestion} *)

type applied =
  | Fresh of status option
      (** adopted; the payload is the {e previous} status ([None] for a
          first sighting) *)
  | Stale  (** superseded by what we already believe *)
  | Refuted
      (** the update defamed us; our incarnation was bumped and an
          [Alive] rebuttal queued *)

val apply : t -> now:float -> update -> applied

(** {1 Local detector verdicts} *)

val suspect_local : t -> now:float -> Iov_msg.Node_id.t -> bool
(** Probe and indirect probes all failed: suspect the peer at its
    current incarnation. True if this was fresh (peer was [Alive]). *)

val confirm_local : t -> now:float -> Iov_msg.Node_id.t -> float option
(** Suspicion timed out: declare the peer dead. Returns the suspicion
    age (seconds spent in [Suspect]) if this was fresh. *)

val expired_suspects : t -> now:float -> timeout:float -> Iov_msg.Node_id.t list
(** Peers that have been [Suspect] for at least [timeout], ascending. *)

(** {1 Epidemic dissemination} *)

val piggyback : t -> limit:int -> update list
(** Up to [limit] queued updates, least-travelled first; each call
    counts as one ride and updates past {!transmit_budget} retire. *)

val queue_length : t -> int

val full_digest : t -> update list
(** The entire membership as updates, self first — join replies and
    listener digests. *)
