(** Decentralized gossip membership: SWIM-style failure detection with
    epidemic dissemination, Cyclon-style peer sampling, and
    observer-free bootstrap.

    Each node runs one {!t} (as its whole algorithm via {!algorithm},
    or composed with an application algorithm via {!wrap}). Every
    [probe_period] the node: confirms suspicions older than
    [suspicion_timeout]; probes the next member of a randomized
    round-robin order (direct ping, then [proxies] indirect ping-reqs
    after [probe_timeout], then a [Suspect] verdict); and runs one
    peer-sampling shuffle with the oldest view descriptor. Every
    control message piggybacks the least-travelled membership updates,
    each riding [4 + 2 log2 n] times — the SWIM dissemination bound, so
    a failure is known overlay-wide in O(log n) rounds.

    Bootstrap needs no observer: a joining node sends one [join] to any
    seed member and receives the full membership in reply; its own
    [Alive] then spreads epidemically. A node that rejoins under its
    previous id learns of its recorded death from the join reply and
    refutes it at a higher incarnation. The observer survives only as
    an optional passive {!Listener} subscribing to digests.

    All randomness (probe order, proxy and shuffle samples, round
    phase) draws from the algorithm context's seeded rng — a seeded
    simulator run is byte-deterministic. *)

(** {1 Wire types (registered Custom tags 112-115)} *)

val ping_kind : Iov_msg.Mtype.t  (** 112 — direct probe *)

val ack_kind : Iov_msg.Mtype.t
(** 113 — probe answer, sent straight to the original requester *)

val ping_req_kind : Iov_msg.Mtype.t  (** 114 — indirect probe request *)

val view_kind : Iov_msg.Mtype.t
(** 115 — shuffle / join / digest / subscribe, multiplexed by a
    sub-operation code *)

(** {1 Lifecycle} *)

type t

val create :
  ?telemetry:Iov_telemetry.Telemetry.t ->
  ?probe_period:float ->
  ?probe_timeout:float ->
  ?suspicion_timeout:float ->
  ?proxies:int ->
  ?view_capacity:int ->
  ?shuffle_size:int ->
  ?piggyback_limit:int ->
  ?digest_every:int ->
  ?anti_entropy_every:int ->
  ?seeds:Iov_msg.Node_id.t list ->
  self:Iov_msg.Node_id.t ->
  unit ->
  t
(** Defaults: probe every 0.5 s with a 0.15 s ack timeout, 3 indirect
    proxies, 2 s suspicion timeout, a 16-descriptor view shuffling 8
    entries, at most 8 piggybacked updates per message, listener
    digests every 2nd round, and a full-digest anti-entropy shuffle
    (answered in kind by the partner — a pairwise push-pull state sync
    that repairs whatever the bounded-ride epidemic missed) every 8th
    round. [seeds] are the join contacts; when empty
    the node falls back to its engine [known_hosts] (so pre-seeded
    {!Iov_core.Network.add_node} hosts work unchanged), and a node with
    neither IS the first member. With [telemetry], [Suspect]/[Confirm]/
    [View_exchange] events are recorded and suspicion-to-confirmation
    latency lands in the per-node [gossip.confirm_ms] histogram.
    @raise Invalid_argument on non-positive periods, [probe_timeout]
    not below half the period, or [proxies < 1]. *)

val algorithm : t -> Iov_core.Algorithm.t
(** The membership protocol as a standalone algorithm. *)

val wrap : t -> Iov_core.Algorithm.t -> Iov_core.Algorithm.t
(** Composes the protocol with an application algorithm on one node:
    gossip consumes its four control types, everything else (data
    included) reaches the inner algorithm untouched; [on_start] and
    [on_tick] chain. *)

(** {1 Membership queries} *)

val self : t -> Iov_msg.Node_id.t

val alive : t -> Iov_msg.Node_id.t list
(** Members not confirmed dead (suspects included), self included,
    ascending. *)

val members : t -> (Iov_msg.Node_id.t * Swim.status * int) list
(** Every peer ever heard of with status and incarnation. *)

val is_alive : t -> Iov_msg.Node_id.t -> bool

val liveness : t -> Iov_msg.Node_id.t -> bool
(** {!is_alive}, with self always alive — the predicate shape consumed
    by {!Iov_routing.Neighbor.set_liveness}. *)

val view_peers : t -> Iov_msg.Node_id.t list
(** The current partial view (peer-sampling cache). *)

val swim : t -> Swim.t

(** {1 Hooks} *)

val set_on_change : t -> (Iov_msg.Node_id.t -> Swim.status -> unit) -> unit
(** Fires on every fresh membership transition this node adopts
    (locally detected or learned by rumor). *)

val add_listener : t -> Iov_msg.Node_id.t -> unit
(** Subscribes a passive endpoint to periodic full-membership digests;
    also reachable over the wire via the [subscribe] sub-operation. *)

(** {1 Statistics} *)

type stats = {
  mutable probes : int;
  mutable acks : int;
  mutable indirect : int;  (** probe-req fan-outs after a missed ack *)
  mutable suspects : int;  (** local suspicion verdicts *)
  mutable confirms : int;  (** peers this node declared dead *)
  mutable shuffles : int;  (** view exchanges completed *)
  mutable joins_served : int;
  mutable digests_sent : int;
}

val stats : t -> stats
