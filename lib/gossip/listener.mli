(** The observer demoted to a passive listener.

    A listener is a plain {!Iov_observer.Observer.t} underneath — it
    still answers [boot] requests and accepts status/trace reports, so
    the boot/status wire protocol keeps working for mixed deployments —
    but instead of polling it {e subscribes} to gossip digests: one
    [subscribe] control message to each contact at creation, after
    which member nodes push full-membership digests every few probe
    rounds and the listener's alive set tracks the overlay with zero
    outbound traffic. *)

type t

val create :
  ?id:Iov_msg.Node_id.t ->
  ?boot_subset:int ->
  ?contacts:Iov_msg.Node_id.t list ->
  Iov_core.Network.t ->
  t
(** Registers the observer endpoint and subscribes to digests from
    each of [contacts] (gossip members). [id]/[boot_subset] as in
    {!Iov_observer.Observer.create}. *)

val observer : t -> Iov_observer.Observer.t
(** The underlying observer (status queries, control panel, traces). *)

val id : t -> Iov_msg.Node_id.t

val alive_nodes : t -> Iov_msg.Node_id.t list
(** The digest-fed view of the live membership. *)

val digest_count : t -> int
(** Digests absorbed so far. *)

val update_count : t -> int
(** Individual membership updates absorbed from digests. *)
