module NI = Iov_msg.Node_id

type status = Alive | Suspect | Dead

let status_to_int = function Alive -> 0 | Suspect -> 1 | Dead -> 2

let status_of_int = function
  | 0 -> Alive
  | 1 -> Suspect
  | 2 -> Dead
  | n -> invalid_arg ("Swim.status_of_int: " ^ string_of_int n)

let status_to_string = function
  | Alive -> "alive"
  | Suspect -> "suspect"
  | Dead -> "dead"

let pp_status fmt s = Format.pp_print_string fmt (status_to_string s)

type update = { u_node : NI.t; u_status : status; u_inc : int }

type entry = {
  mutable e_status : status;
  mutable e_inc : int;
  mutable e_since : float;
}

(* A queued update carries the number of times it has already ridden on
   outgoing traffic; the least-travelled updates go out first and an
   update retires after the epidemic transmit budget. *)
type queued = { q_update : update; mutable q_sent : int }

type t = {
  self : NI.t;
  mutable self_inc : int;
  tbl : entry NI.Tbl.t;
  mutable queue : queued list;
}

let create ~self () =
  { self; self_inc = 0; tbl = NI.Tbl.create 64; queue = [] }

let self t = t.self
let self_inc t = t.self_inc

(* ~λ log2(n) transmissions spread an update to every member with high
   probability (the SWIM dissemination bound); λ=2 plus a floor of 4
   keeps the epidemic tail short even when many rumors compete for
   piggyback slots. *)
let transmit_budget t =
  let n = max 1 (NI.Tbl.length t.tbl + 1) in
  let rec lg acc n = if n <= 1 then acc else lg (acc + 1) (n lsr 1) in
  4 + (2 * lg 0 n)

let enqueue t u =
  t.queue <-
    { q_update = u; q_sent = 0 }
    :: List.filter
         (fun q -> not (NI.equal q.q_update.u_node u.u_node))
         t.queue

let self_update t = { u_node = t.self; u_status = Alive; u_inc = t.self_inc }

let members t =
  NI.Tbl.fold (fun n e acc -> (n, e.e_status, e.e_inc) :: acc) t.tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> NI.compare a b)

let status_of t node =
  if NI.equal node t.self then Some (Alive, t.self_inc)
  else
    match NI.Tbl.find_opt t.tbl node with
    | Some e -> Some (e.e_status, e.e_inc)
    | None -> None

let is_alive t node =
  match status_of t node with
  | Some ((Alive | Suspect), _) -> true
  | Some (Dead, _) -> false
  | None -> false

let alive t =
  t.self
  :: NI.Tbl.fold
       (fun n e acc -> if e.e_status <> Dead then n :: acc else acc)
       t.tbl []
  |> List.sort NI.compare

let alive_peers t =
  NI.Tbl.fold
    (fun n e acc -> if e.e_status <> Dead then n :: acc else acc)
    t.tbl []
  |> List.sort NI.compare

let size t = NI.Tbl.length t.tbl + 1

(* Does (s, i) supersede the entry's current (os, oi)? The classic SWIM
   precedence, except a confirmation never beats a strictly higher
   incarnation — that is what lets a respawned node (which rejoins at
   [dead_inc + 1]) survive stale [Dead] rumors about its previous
   life. *)
let supersedes ~s ~i ~os ~oi =
  match (s, os) with
  | Alive, Alive -> i > oi
  | Alive, Suspect -> i > oi
  | Alive, Dead -> i > oi
  | Suspect, Alive -> i >= oi
  | Suspect, Suspect -> i > oi
  | Suspect, Dead -> false
  | Dead, Dead -> false
  | Dead, (Alive | Suspect) -> i >= oi

type applied =
  | Fresh of status option
      (** adopted; the payload is the {e previous} status ([None] for a
          first sighting) *)
  | Stale  (** superseded by what we already believe *)
  | Refuted
      (** the update defamed us; our incarnation was bumped and an
          [Alive] rebuttal queued *)

let apply t ~now (u : update) =
  if NI.equal u.u_node t.self then
    match u.u_status with
    | Alive -> Stale
    | Suspect | Dead ->
      if u.u_inc >= t.self_inc then begin
        t.self_inc <- u.u_inc + 1;
        enqueue t (self_update t);
        Refuted
      end
      else Stale
  else
    match NI.Tbl.find_opt t.tbl u.u_node with
    | None ->
      NI.Tbl.replace t.tbl u.u_node
        { e_status = u.u_status; e_inc = u.u_inc; e_since = now };
      enqueue t u;
      Fresh None
    | Some e ->
      if supersedes ~s:u.u_status ~i:u.u_inc ~os:e.e_status ~oi:e.e_inc
      then begin
        let prev = e.e_status in
        e.e_status <- u.u_status;
        e.e_inc <- u.u_inc;
        e.e_since <- now;
        enqueue t u;
        Fresh (Some prev)
      end
      else Stale

let suspect_local t ~now node =
  match NI.Tbl.find_opt t.tbl node with
  | Some e when e.e_status = Alive ->
    apply t ~now { u_node = node; u_status = Suspect; u_inc = e.e_inc }
    <> Stale
  | _ -> false

let confirm_local t ~now node =
  match NI.Tbl.find_opt t.tbl node with
  | Some e when e.e_status = Suspect ->
    let age = now -. e.e_since in
    (match apply t ~now { u_node = node; u_status = Dead; u_inc = e.e_inc }
     with
    | Fresh _ -> Some age
    | Stale | Refuted -> None)
  | _ -> None

let expired_suspects t ~now ~timeout =
  NI.Tbl.fold
    (fun n e acc ->
      if e.e_status = Suspect && now -. e.e_since >= timeout then n :: acc
      else acc)
    t.tbl []
  |> List.sort NI.compare

(* Piggyback selection: up to [limit] least-travelled queued updates;
   each ride increments the count and exhausted updates retire. *)
let piggyback t ~limit =
  let budget = transmit_budget t in
  let sorted =
    List.stable_sort (fun a b -> compare a.q_sent b.q_sent) t.queue
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | q :: rest ->
      q.q_sent <- q.q_sent + 1;
      q.q_update :: take (n - 1) rest
  in
  let out = take limit sorted in
  t.queue <- List.filter (fun q -> q.q_sent < budget) t.queue;
  out

let queue_length t = List.length t.queue

(* The full membership as updates — what a join reply (or a listener
   digest) carries. Self rides first so a booting node learns its
   contact's identity immediately. *)
let full_digest t =
  self_update t
  :: (members t |> List.map (fun (n, s, i) ->
          { u_node = n; u_status = s; u_inc = i }))
