module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Sim = Iov_dsim.Sim
module NI = Iov_msg.Node_id
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module Wire = Iov_msg.Wire
module Status = Iov_msg.Status

let src_log = Logs.Src.create "iov.observer" ~doc:"iOverlay observer"

module Log = (val Logs.src_log src_log)

type t = {
  net : Network.t;
  obs_id : NI.t;
  boot_subset : int;
  poll_period : float;
  mutable alive : NI.Set.t;
  statuses : Status.t NI.Tbl.t;
  mutable trace_log : (float * NI.t * string) list;
  mutable n_traces : int;
  mutable poll_handle : Sim.handle option;
  mutable fallback : (Msg.t -> unit) option;
}

let id t = t.obs_id

let send t m dst = Network.endpoint_send t.net ~from:t.obs_id m dst

let handle_boot t (m : Msg.t) =
  let booter = m.Msg.origin in
  (* reply with a random subset of the other alive nodes *)
  let candidates =
    NI.Set.elements (NI.Set.remove booter t.alive)
  in
  let rng = Network.rng t.net in
  let shuffled =
    let a = Array.of_list candidates in
    let n = Array.length a in
    for i = n - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.to_list a
  in
  let subset =
    List.filteri (fun i _ -> i < t.boot_subset) shuffled
  in
  t.alive <- NI.Set.add booter t.alive;
  let w = Wire.W.create () in
  Wire.W.nodes w subset;
  let reply =
    Msg.control ~mtype:Mt.Boot_reply ~origin:t.obs_id (Wire.W.contents w)
  in
  send t reply booter

let handle t (m : Msg.t) =
  match m.Msg.mtype with
  | Mt.Boot -> handle_boot t m
  | Mt.Status -> (
    try
      let st = Status.of_payload m.payload in
      NI.Tbl.replace t.statuses st.Status.node st
    with Wire.Truncated ->
      Log.warn (fun f -> f "malformed status from %a" NI.pp m.origin))
  | Mt.Trace ->
    t.trace_log <-
      (Network.now t.net, m.origin, Msg.string_payload m) :: t.trace_log;
    t.n_traces <- t.n_traces + 1
  | _ -> (
    match t.fallback with
    | Some f -> f m
    | None -> Log.debug (fun f -> f "observer ignoring %a" Mt.pp m.mtype))

let create ?id:obs_id ?(boot_subset = 8) ?(poll_period = 1.0) net =
  let obs_id =
    match obs_id with
    | Some i -> i
    | None -> NI.of_string "0.0.0.1:9999"
  in
  if boot_subset <= 0 then invalid_arg "Observer.create: boot_subset";
  let t =
    {
      net;
      obs_id;
      boot_subset;
      poll_period;
      alive = NI.Set.empty;
      statuses = NI.Tbl.create 64;
      trace_log = [];
      n_traces = 0;
      poll_handle = None;
      fallback = None;
    }
  in
  Network.register_endpoint net obs_id (handle t);
  t

let poll t =
  NI.Set.iter
    (fun ni ->
      match Network.find_node t.net ni with
      | Some n when Network.is_alive n ->
        send t (Msg.control ~mtype:Mt.Request ~origin:t.obs_id Bytes.empty) ni
      | Some _ | None ->
        t.alive <- NI.Set.remove ni t.alive)
    t.alive

let start_polling t =
  match t.poll_handle with
  | Some _ -> ()
  | None ->
    t.poll_handle <-
      Some (Sim.every (Network.sim t.net) ~period:t.poll_period (fun () -> poll t))

let stop_polling t =
  match t.poll_handle with
  | Some h ->
    Sim.cancel (Network.sim t.net) h;
    t.poll_handle <- None
  | None -> ()

let set_fallback t f = t.fallback <- Some f
let note_alive t ni = t.alive <- NI.Set.add ni t.alive
let note_dead t ni = t.alive <- NI.Set.remove ni t.alive

let alive_nodes t =
  NI.Set.elements
    (NI.Set.filter
       (fun ni ->
         match Network.find_node t.net ni with
         | Some n -> Network.is_alive n
         | None -> false)
       t.alive)

let latest_status t ni = NI.Tbl.find_opt t.statuses ni

let latest_metrics t ni =
  match NI.Tbl.find_opt t.statuses ni with
  | None | Some { Status.metrics = None; _ } -> None
  | Some { Status.metrics = Some blob; _ } -> (
    match Iov_telemetry.Metrics.of_blob blob with
    | snap -> Some snap
    | exception (Wire.Truncated | Invalid_argument _) ->
      Log.warn (fun f -> f "undecodable metrics blob from %a" NI.pp ni);
      None)

let topology t =
  NI.Tbl.fold
    (fun ni st acc ->
      let downs = List.map (fun l -> l.Status.peer) st.Status.downstreams in
      (ni, downs) :: acc)
    t.statuses []
  |> List.sort (fun (a, _) (b, _) -> NI.compare a b)

let render_topology t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "overlay topology (from latest status reports):\n";
  List.iter
    (fun (ni, downs) ->
      Buffer.add_string buf ("  " ^ NI.to_string ni);
      (match downs with
      | [] -> Buffer.add_string buf "  (no downstreams)"
      | _ ->
        Buffer.add_string buf " -> ";
        Buffer.add_string buf
          (String.concat ", " (List.map NI.to_string downs)));
      Buffer.add_char buf '\n')
    (topology t);
  Buffer.contents buf

let traces t = t.trace_log
let trace_count t = t.n_traces

let save_traces t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let records = List.rev t.trace_log in
      List.iter
        (fun (time, origin, text) ->
          Printf.fprintf oc "%.6f\t%s\t%s\n" time (NI.to_string origin) text)
        records;
      List.length records)

(* ------------------------------------------------------------------ *)
(* Control panel                                                       *)

let set_node_bandwidth t ni (bw : Bwspec.t) =
  let set kind rate =
    if rate <> infinity then begin
      let w = Wire.W.create () in
      Wire.W.int32 w kind;
      Wire.W.float w rate;
      send t
        (Msg.control ~mtype:Mt.Set_bandwidth ~origin:t.obs_id
           (Wire.W.contents w))
        ni
    end
  in
  set 0 bw.Bwspec.total;
  set 1 bw.Bwspec.up;
  set 2 bw.Bwspec.down

let set_link_bandwidth t ~src ~dst rate =
  let w = Wire.W.create () in
  Wire.W.int32 w 3;
  Wire.W.float w rate;
  Wire.W.node w dst;
  send t
    (Msg.control ~mtype:Mt.Set_bandwidth ~origin:t.obs_id (Wire.W.contents w))
    src

let deploy_source t ni ~app =
  send t (Msg.control ~mtype:Mt.S_deploy ~origin:t.obs_id ~app Bytes.empty) ni

let terminate_source t ni ~app =
  send t
    (Msg.control ~mtype:Mt.S_terminate ~origin:t.obs_id ~app Bytes.empty)
    ni

let join t ni ~app =
  send t (Msg.control ~mtype:Mt.S_join ~origin:t.obs_id ~app Bytes.empty) ni

let leave t ni ~app =
  send t (Msg.control ~mtype:Mt.S_leave ~origin:t.obs_id ~app Bytes.empty) ni

let terminate_node t ni =
  t.alive <- NI.Set.remove ni t.alive;
  send t (Msg.control ~mtype:Mt.Terminate_node ~origin:t.obs_id Bytes.empty) ni

let custom t ni ~kind p1 p2 =
  send t (Msg.with_params ~mtype:(Mt.Custom kind) ~origin:t.obs_id p1 p2) ni

let assign_service t ni ~service =
  send t
    (Msg.with_params ~mtype:Mt.S_assign ~origin:t.obs_id service 0)
    ni

let control_message t m dst = send t m dst
