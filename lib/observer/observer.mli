(** The observer — iOverlay's centralized monitoring and control
    facility (headless; the Windows GUI of the paper is replaced by a
    textual topology rendering).

    The observer answers bootstrap requests with a random subset of
    alive nodes, polls nodes for status updates, records [trace]
    messages, and acts as a control panel: emulated-bandwidth changes,
    application deployment/termination, join/leave commands, node
    termination, and algorithm-specific custom commands with two
    integer parameters. *)

type t

val create :
  ?id:Iov_msg.Node_id.t ->
  ?boot_subset:int ->
  ?poll_period:float ->
  Iov_core.Network.t ->
  t
(** Attaches an observer endpoint to the network. [boot_subset]
    (default 8) bounds the number of initial nodes handed to a booting
    node; [poll_period] (default 1.0 s) paces status requests once
    {!start_polling} is called. The default [id] is [0.0.0.1:9999]. *)

val id : t -> Iov_msg.Node_id.t

val start_polling : t -> unit
val stop_polling : t -> unit

(** {1 Monitoring} *)

val alive_nodes : t -> Iov_msg.Node_id.t list
(** Nodes that have bootstrapped and are not known to have died. *)

val note_alive : t -> Iov_msg.Node_id.t -> unit
val note_dead : t -> Iov_msg.Node_id.t -> unit
(** External liveness evidence (e.g. a gossip digest): mark a node
    alive/dead in the observer's record without any observer traffic. *)

val set_fallback : t -> (Iov_msg.Message.t -> unit) -> unit
(** Installs a handler for control messages the observer itself does
    not understand (anything outside boot/status/trace) — how a
    passive listener splices gossip digests into the observer
    endpoint. *)

val latest_status : t -> Iov_msg.Node_id.t -> Iov_msg.Status.t option

val latest_metrics :
  t -> Iov_msg.Node_id.t -> (string * Iov_telemetry.Metrics.snap) list option
(** The decoded telemetry metrics snapshot carried by the node's latest
    status report — [None] if no status has arrived, the node predates
    (or runs without) telemetry, or the blob is undecodable. *)

val topology : t -> (Iov_msg.Node_id.t * Iov_msg.Node_id.t list) list
(** [(node, downstreams)] pairs from the latest status snapshots. *)

val render_topology : t -> string
(** A textual stand-in for the observer's map view. *)

val traces : t -> (float * Iov_msg.Node_id.t * string) list
(** Recorded [trace] messages, most recent first. *)

val trace_count : t -> int

val save_traces : t -> string -> int
(** Writes the trace log to a file, one
    ["<time>\t<origin>\t<text>"] line per record in chronological
    order — the paper's centralized debugging log. Returns the number
    of records written. @raise Sys_error on unwritable paths. *)

(** {1 Control panel} *)

val set_node_bandwidth : t -> Iov_msg.Node_id.t -> Iov_core.Bwspec.t -> unit
val set_link_bandwidth :
  t -> src:Iov_msg.Node_id.t -> dst:Iov_msg.Node_id.t -> float -> unit
val deploy_source : t -> Iov_msg.Node_id.t -> app:int -> unit
val terminate_source : t -> Iov_msg.Node_id.t -> app:int -> unit
val join : t -> Iov_msg.Node_id.t -> app:int -> unit
val leave : t -> Iov_msg.Node_id.t -> app:int -> unit
val terminate_node : t -> Iov_msg.Node_id.t -> unit
val custom : t -> Iov_msg.Node_id.t -> kind:int -> int -> int -> unit
(** [custom t node ~kind p1 p2] sends an algorithm-specific control
    message of type [Custom kind] with two integer parameters. *)

val assign_service : t -> Iov_msg.Node_id.t -> service:int -> unit
(** sFlow: instruct a node to host a service instance ([sAssign]). *)

val control_message : t -> Iov_msg.Message.t -> Iov_msg.Node_id.t -> unit
(** Sends an arbitrary control message from the observer — the paper's
    escape hatch for "new types of algorithm-specific control
    messages". The message's origin should be {!id}[ t] so nodes
    recognize the sender. *)
