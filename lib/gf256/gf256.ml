type t = int

let zero = 0
let one = 1
let field_size = 256
let poly = 0x11b (* x^8 + x^4 + x^3 + x + 1 *)

let is_valid x = x >= 0 && x < field_size

(* Build log/antilog tables once at module initialization. [exp.(i)] =
   generator^i for i in [0,254]; extended to 510 entries so that
   [exp.(log a + log b)] needs no modular reduction. *)
let exp_tbl, log_tbl =
  let exp = Array.make 510 0 in
  let log = Array.make field_size 0 in
  let x = ref 1 in
  for i = 0 to 254 do
    exp.(i) <- !x;
    log.(!x) <- i;
    (* multiply by the generator 3 = x + 1: shift-and-add then reduce *)
    let v = !x lsl 1 lxor !x in
    x := if v land 0x100 <> 0 then v lxor poly else v land 0xff
  done;
  for i = 255 to 509 do
    exp.(i) <- exp.(i - 255)
  done;
  (exp, log)

(* Flat 64 KiB multiplication table: byte [(a lsl 8) lor b] holds
   [a * b]. One unconditional lookup replaces the zero test plus two
   log lookups of the log/exp formulation; row [c] (the 256 bytes at
   offset [c lsl 8]) is the per-coefficient product row used by the
   byte-vector kernels below. *)
let mul_tbl =
  let t = Bytes.make 65536 '\000' in
  for a = 1 to 255 do
    let base = a lsl 8 in
    let la = log_tbl.(a) in
    for b = 1 to 255 do
      Bytes.unsafe_set t (base lor b) (Char.unsafe_chr exp_tbl.(la + log_tbl.(b)))
    done
  done;
  t

let add a b = a lxor b
let sub = add

let mul a b =
  if (a lor b) land -256 <> 0 then
    invalid_arg "Gf256.mul: not a field element";
  Char.code (Bytes.unsafe_get mul_tbl ((a lsl 8) lor b))

let inv a =
  if a = 0 then raise Division_by_zero else exp_tbl.(255 - log_tbl.(a))

let div a b =
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp_tbl.(log_tbl.(a) + 255 - log_tbl.(b))

let pow a k =
  if k < 0 then invalid_arg "Gf256.pow: negative exponent";
  if k = 0 then 1
  else if a = 0 then 0
  else exp_tbl.(log_tbl.(a) * k mod 255)

let exp_table () = Array.sub exp_tbl 0 255
let log_table () = Array.copy log_tbl

let check_coeff fn c =
  if c land -256 <> 0 then invalid_arg ("Gf256." ^ fn ^ ": coefficient")

(* [dst.(i) <- dst.(i) xor src.(i)] for [n] bytes, eight at a time.
   [get_int64_ne]/[set_int64_ne] handle unaligned access, so only the
   sub-word tail falls back to byte ops. *)
let xor_into dst src n =
  let words = n lsr 3 in
  for w = 0 to words - 1 do
    let off = w lsl 3 in
    Bytes.set_int64_ne dst off
      (Int64.logxor (Bytes.get_int64_ne dst off) (Bytes.get_int64_ne src off))
  done;
  for i = words lsl 3 to n - 1 do
    Bytes.unsafe_set dst i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst i)
         lxor Char.code (Bytes.unsafe_get src i)))
  done

(* The multiplying kernels stream [src] through the product row of the
   coefficient, composing four product bytes into one 32-bit word per
   store. The 4× unroll matters: the loop is table-lookup bound, and
   per-byte stores cost as much as the lookups themselves. The two
   variants (overwrite vs. xor-accumulate) are spelled out rather than
   parameterized so the hot loops stay free of indirect calls. *)
let mul_row_replace ~row ~src ~dst n =
  let quads = n lsr 2 in
  for q = 0 to quads - 1 do
    let i = q lsl 2 in
    let y0 =
      Char.code (Bytes.unsafe_get mul_tbl (row lor Char.code (Bytes.unsafe_get src i)))
    and y1 =
      Char.code
        (Bytes.unsafe_get mul_tbl (row lor Char.code (Bytes.unsafe_get src (i + 1))))
    and y2 =
      Char.code
        (Bytes.unsafe_get mul_tbl (row lor Char.code (Bytes.unsafe_get src (i + 2))))
    and y3 =
      Char.code
        (Bytes.unsafe_get mul_tbl (row lor Char.code (Bytes.unsafe_get src (i + 3))))
    in
    let w = y0 lor (y1 lsl 8) lor (y2 lsl 16) lor (y3 lsl 24) in
    Bytes.set_int32_le dst i (Int32.of_int w)
  done;
  for i = quads lsl 2 to n - 1 do
    Bytes.unsafe_set dst i
      (Bytes.unsafe_get mul_tbl (row lor Char.code (Bytes.unsafe_get src i)))
  done

let mul_row_xor ~row ~src ~dst n =
  let quads = n lsr 2 in
  for q = 0 to quads - 1 do
    let i = q lsl 2 in
    let y0 =
      Char.code (Bytes.unsafe_get mul_tbl (row lor Char.code (Bytes.unsafe_get src i)))
    and y1 =
      Char.code
        (Bytes.unsafe_get mul_tbl (row lor Char.code (Bytes.unsafe_get src (i + 1))))
    and y2 =
      Char.code
        (Bytes.unsafe_get mul_tbl (row lor Char.code (Bytes.unsafe_get src (i + 2))))
    and y3 =
      Char.code
        (Bytes.unsafe_get mul_tbl (row lor Char.code (Bytes.unsafe_get src (i + 3))))
    in
    let w = y0 lor (y1 lsl 8) lor (y2 lsl 16) lor (y3 lsl 24) in
    Bytes.set_int32_le dst i (Int32.logxor (Bytes.get_int32_le dst i) (Int32.of_int w))
  done;
  for i = quads lsl 2 to n - 1 do
    let y = Bytes.unsafe_get mul_tbl (row lor Char.code (Bytes.unsafe_get src i)) in
    Bytes.unsafe_set dst i
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get dst i) lxor Char.code y))
  done

let mul_bytes c v =
  check_coeff "mul_bytes" c;
  let n = Bytes.length v in
  if c = 0 then Bytes.make n '\000'
  else if c = 1 then Bytes.copy v
  else begin
    let out = Bytes.create n in
    mul_row_replace ~row:(c lsl 8) ~src:v ~dst:out n;
    out
  end

let scale_bytes c v =
  check_coeff "scale_bytes" c;
  let n = Bytes.length v in
  if c = 0 then Bytes.fill v 0 n '\000'
  else if c <> 1 then mul_row_replace ~row:(c lsl 8) ~src:v ~dst:v n

let axpy ~acc ~coeff v =
  check_coeff "axpy" coeff;
  let n = Bytes.length v in
  if Bytes.length acc <> n then invalid_arg "Gf256.axpy: length mismatch";
  if coeff = 1 then xor_into acc v n
  else if coeff <> 0 then mul_row_xor ~row:(coeff lsl 8) ~src:v ~dst:acc n

let add_bytes a b =
  let n = Bytes.length a in
  if Bytes.length b <> n then invalid_arg "Gf256.add_bytes: length mismatch";
  let out = Bytes.copy a in
  xor_into out b n;
  out
