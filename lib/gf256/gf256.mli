(** Arithmetic in the Galois field GF(2^8).

    iOverlay's network-coding case study (paper Section 3.2) codes
    messages from multiple incoming streams into one outgoing stream
    using linear codes over GF(2^8). This module provides the field
    arithmetic; {!Linear} builds the encode/decode machinery on top.

    Elements are represented as [int] in [0, 255]. The field is
    constructed with the AES reduction polynomial
    [x^8 + x^4 + x^3 + x + 1] (0x11b). *)

type t = int
(** A field element; invariant: [0 <= x <= 255]. *)

val zero : t
val one : t

val is_valid : t -> bool
(** [is_valid x] is [true] iff [x] is in [0, 255]. *)

val add : t -> t -> t
(** Addition, i.e. XOR. The field has characteristic 2, so [add] is
    also subtraction. *)

val sub : t -> t -> t
(** [sub] = [add] in characteristic 2. *)

val mul : t -> t -> t
(** Multiplication via a flat 64 KiB product table ([mul a b] is one
    unconditional lookup at index [a * 256 + b]); the table itself is
    built once from the log/antilog tables. *)

val div : t -> t -> t
(** [div a b] multiplies [a] by the inverse of [b].
    @raise Division_by_zero if [b = 0]. *)

val inv : t -> t
(** Multiplicative inverse.
    @raise Division_by_zero on [0]. *)

val pow : t -> int -> t
(** [pow a k] for [k >= 0]; [pow 0 0 = 1] by convention. *)

val exp_table : unit -> t array
(** The antilog table: [exp_table ().(i)] is [g^i] for the generator
    [g = 3], for [i] in [0, 254]. Returned as a copy. *)

val log_table : unit -> t array
(** The log table, inverse of {!exp_table} (entry 0 is unused). *)

(** {1 Byte-vector operations}

    Payload-sized operations used by the coding algorithm. All operate
    element-wise over GF(2^8). Multiplications read the 256-entry
    product row of the coefficient inside the flat table — one
    unconditional lookup per byte, no [x = 0] branch — and the pure-XOR
    cases ([add_bytes], [axpy ~coeff:1]) run eight bytes per step over
    64-bit words. *)

val mul_bytes : t -> Bytes.t -> Bytes.t
(** [mul_bytes c v] is the vector [c * v]. *)

val scale_bytes : t -> Bytes.t -> unit
(** [scale_bytes c v] sets [v := c * v] in place — the allocation-free
    companion of {!mul_bytes}. *)

val axpy : acc:Bytes.t -> coeff:t -> Bytes.t -> unit
(** [axpy ~acc ~coeff v] sets [acc := acc + coeff * v] in place.
    @raise Invalid_argument if lengths differ. *)

val add_bytes : Bytes.t -> Bytes.t -> Bytes.t
(** Element-wise XOR of two equal-length vectors.
    @raise Invalid_argument if lengths differ. *)
