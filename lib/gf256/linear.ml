type coded = {
  coeffs : int array;
  payload : Bytes.t;
}

let encode ~coeffs sources =
  let k = Array.length sources in
  if k = 0 then invalid_arg "Linear.encode: no sources";
  if Array.length coeffs <> k then invalid_arg "Linear.encode: coeffs width";
  let n = Bytes.length sources.(0) in
  Array.iter
    (fun s ->
      if Bytes.length s <> n then invalid_arg "Linear.encode: ragged sources")
    sources;
  let payload = Bytes.make n '\000' in
  Array.iteri (fun i s -> Gf256.axpy ~acc:payload ~coeff:coeffs.(i) s) sources;
  { coeffs = Array.copy coeffs; payload }

let combine weighted =
  match weighted with
  | [] -> invalid_arg "Linear.combine: empty"
  | (_, p0) :: _ ->
    let k = Array.length p0.coeffs in
    let n = Bytes.length p0.payload in
    let coeffs = Array.make k 0 in
    let payload = Bytes.make n '\000' in
    let accumulate (a, p) =
      if Array.length p.coeffs <> k || Bytes.length p.payload <> n then
        invalid_arg "Linear.combine: shape mismatch";
      for i = 0 to k - 1 do
        coeffs.(i) <- Gf256.add coeffs.(i) (Gf256.mul a p.coeffs.(i))
      done;
      Gf256.axpy ~acc:payload ~coeff:a p.payload
    in
    List.iter accumulate weighted;
    { coeffs; payload }

(* Row-reduce [rows] in place (each row is a coefficient array, with an
   optional payload carried alongside); returns the rank. *)
let reduce rows payloads =
  let m = Array.length rows in
  if m = 0 then 0
  else begin
    let k = Array.length rows.(0) in
    let rank = ref 0 in
    let col = ref 0 in
    while !rank < m && !col < k do
      (* find a pivot in column !col at or below row !rank *)
      let pivot = ref (-1) in
      for r = !rank to m - 1 do
        if !pivot < 0 && rows.(r).(!col) <> 0 then pivot := r
      done;
      (if !pivot >= 0 then begin
         let p = !pivot in
         let swap a i j =
           let t = a.(i) in
           a.(i) <- a.(j);
           a.(j) <- t
         in
         swap rows !rank p;
         (match payloads with Some ps -> swap ps !rank p | None -> ());
         (* normalize the pivot row *)
         let invp = Gf256.inv rows.(!rank).(!col) in
         for c = 0 to k - 1 do
           rows.(!rank).(c) <- Gf256.mul invp rows.(!rank).(c)
         done;
         (match payloads with
         | Some ps -> ps.(!rank) <- Gf256.mul_bytes invp ps.(!rank)
         | None -> ());
         (* eliminate this column from every other row *)
         for r = 0 to m - 1 do
           if r <> !rank && rows.(r).(!col) <> 0 then begin
             let f = rows.(r).(!col) in
             for c = 0 to k - 1 do
               rows.(r).(c) <-
                 Gf256.add rows.(r).(c) (Gf256.mul f rows.(!rank).(c))
             done;
             match payloads with
             | Some ps -> Gf256.axpy ~acc:ps.(r) ~coeff:f ps.(!rank)
             | None -> ()
           end
         done;
         incr rank
       end);
      incr col
    done;
    !rank
  end

let rank matrix =
  let rows = Array.map Array.copy matrix in
  reduce rows None

let decode packets =
  match packets with
  | [] -> None
  | { coeffs; _ } :: _ ->
    let k = Array.length coeffs in
    let rows = Array.of_list (List.map (fun p -> Array.copy p.coeffs) packets) in
    let payloads =
      Array.of_list (List.map (fun p -> Bytes.copy p.payload) packets)
    in
    let r = reduce rows (Some payloads) in
    if r < k then None
    else begin
      (* after full reduction the first k rows are the identity in some
         column order; reduce puts pivots in increasing columns, so row
         [i] decodes source packet [i]. *)
      let out = Array.make k Bytes.empty in
      for i = 0 to k - 1 do
        out.(i) <- payloads.(i)
      done;
      Some out
    end

module Decoder = struct
  (* Incremental Gaussian elimination. The stored state is a reduced
     row-echelon basis of everything innovative seen so far: row [i]
     (valid for [i < rank]) has its pivot in column [pivots.(i)], the
     pivot coefficient is 1, pivot columns are strictly ascending, and
     every stored row is zero in every other row's pivot column.

     An incoming packet is first reduced symbolically — coefficients
     only, recording the (pivot row, factor) elimination steps — so a
     dependent or duplicate packet is rejected after O(k^2) coefficient
     work without ever touching its payload. Only an innovative packet
     pays the payload axpys: one per recorded step, then one per stored
     row during back-substitution. O(k^2 + k·len) per packet, against
     O(k^3 + k·len) for re-reducing the whole matrix. *)
  type t = {
    k : int;
    rows : int array array; (* rows.(i) meaningful for i < rank *)
    payloads : Bytes.t array;
    pivots : int array;
    mutable rank : int;
  }

  let create ~k =
    if k <= 0 then invalid_arg "Decoder.create: k must be positive";
    {
      k;
      rows = Array.make k [||];
      payloads = Array.make k Bytes.empty;
      pivots = Array.make k max_int;
      rank = 0;
    }

  let rank t = t.rank
  let complete t = t.rank = t.k

  let add t p =
    if Array.length p.coeffs <> t.k then invalid_arg "Decoder.add: width";
    if complete t then false
    else begin
      let k = t.k in
      let row = Array.copy p.coeffs in
      (* 1. reduce the incoming coefficient row against stored pivots
         (ascending pivot order keeps this a single forward sweep) *)
      let steps = ref [] in
      for i = 0 to t.rank - 1 do
        let piv = t.pivots.(i) in
        let f = row.(piv) in
        if f <> 0 then begin
          let pr = t.rows.(i) in
          (* stored rows are zero left of their pivot *)
          for c = piv to k - 1 do
            row.(c) <- row.(c) lxor Gf256.mul f pr.(c)
          done;
          steps := (i, f) :: !steps
        end
      done;
      let lead = ref (-1) in
      for c = k - 1 downto 0 do
        if row.(c) <> 0 then lead := c
      done;
      if !lead < 0 then false (* dependent: payload never touched *)
      else begin
        let col = !lead in
        (* 2. replay the recorded eliminations on the payload *)
        let payload = Bytes.copy p.payload in
        List.iter
          (fun (i, f) -> Gf256.axpy ~acc:payload ~coeff:f t.payloads.(i))
          !steps;
        (* 3. normalize the new pivot to 1 *)
        let invp = Gf256.inv row.(col) in
        if invp <> 1 then begin
          for c = col to k - 1 do
            row.(c) <- Gf256.mul invp row.(c)
          done;
          Gf256.scale_bytes invp payload
        end;
        (* 4. back-substitute the new row into the stored basis *)
        for i = 0 to t.rank - 1 do
          let f = t.rows.(i).(col) in
          if f <> 0 then begin
            let sr = t.rows.(i) in
            for c = col to k - 1 do
              sr.(c) <- sr.(c) lxor Gf256.mul f row.(c)
            done;
            Gf256.axpy ~acc:t.payloads.(i) ~coeff:f payload
          end
        done;
        (* 5. insert, keeping pivot columns ascending *)
        let pos = ref t.rank in
        while !pos > 0 && t.pivots.(!pos - 1) > col do
          t.rows.(!pos) <- t.rows.(!pos - 1);
          t.payloads.(!pos) <- t.payloads.(!pos - 1);
          t.pivots.(!pos) <- t.pivots.(!pos - 1);
          decr pos
        done;
        t.rows.(!pos) <- row;
        t.payloads.(!pos) <- payload;
        t.pivots.(!pos) <- col;
        t.rank <- t.rank + 1;
        true
      end
    end

  let get t =
    if complete t then Some (Array.copy t.payloads) else None
end
