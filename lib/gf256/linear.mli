(** Linear network coding over GF(2^8).

    A coded packet carries a coefficient vector [c] and a payload equal
    to [sum_i c_i * x_i] where [x_i] are the original generation
    packets. A receiver that accumulates packets whose coefficient
    vectors span the generation can decode by Gaussian elimination. *)

type coded = {
  coeffs : int array;  (** one coefficient per source packet *)
  payload : Bytes.t;
}

val encode : coeffs:int array -> Bytes.t array -> coded
(** [encode ~coeffs sources] linearly combines [sources] (all the same
    length) with [coeffs].
    @raise Invalid_argument on length mismatch or empty input. *)

val combine : (int * coded) list -> coded
(** [combine [(a1, p1); ...]] re-codes already-coded packets:
    the result has coefficients [sum_j a_j * p_j.coeffs] and payload
    [sum_j a_j * p_j.payload]. Used by intermediate overlay nodes. *)

val rank : int array array -> int
(** Rank of a matrix of GF(2^8) coefficient rows. Rows may have any
    (equal) width; the matrix is not modified. *)

val decode : coded list -> Bytes.t array option
(** [decode packets] recovers the original source packets, or [None]
    if the packets' coefficient vectors do not have full rank. All
    coefficient vectors must share a width [k]; at least [k] packets
    with independent vectors are needed. *)

(** {1 Decoder with incremental insertion}

    Keeps only innovative packets; used by receiving overlay nodes that
    accumulate packets one at a time (e.g. a native stream plus a coded
    stream, as in the paper's Fig. 8).

    The decoder maintains a reduced row-echelon basis with pivot
    columns ascending and eliminates each incoming packet against it
    incrementally — O(k²) coefficient work per packet instead of
    re-reducing the whole matrix, and a dependent or duplicate packet
    is rejected without touching its payload. The batch {!decode}
    remains the reference oracle: after any packet sequence, the
    decoder's rank and output match [decode] over the same packets. *)

module Decoder : sig
  type t

  val create : k:int -> t
  (** A decoder for a generation of [k] source packets. *)

  val add : t -> coded -> bool
  (** [add t p] inserts packet [p]; returns [true] iff [p] was
      innovative (increased the rank).
      @raise Invalid_argument if [p]'s width is not [k]. *)

  val rank : t -> int

  val complete : t -> bool
  (** [complete t] iff rank = k. *)

  val get : t -> Bytes.t array option
  (** The decoded source packets once {!complete}, else [None]. *)
end
