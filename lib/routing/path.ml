module NI = Iov_msg.Node_id

type graph = (NI.t * NI.t list) list

module Edge = struct
  type t = NI.t * NI.t

  (* undirected: store with the lower endpoint first *)
  let canon (a, b) = if NI.compare a b <= 0 then (a, b) else (b, a)

  let compare x y =
    let ax, bx = canon x and ay, by = canon y in
    match NI.compare ax ay with 0 -> NI.compare bx by | c -> c
end

module ESet = Set.Make (Edge)

(* Symmetrized, sorted, deduplicated adjacency minus [avoid] nodes and
   [cut] edges. Sorting is what makes every computation deterministic
   in the face of arbitrarily ordered gossip. *)
let adjacency g ~avoid ~cut =
  let avoid = List.sort_uniq NI.compare avoid in
  let dropped n = List.exists (NI.equal n) avoid in
  let tbl = Hashtbl.create 32 in
  let add a b =
    if (not (dropped a)) && (not (dropped b)) && not (NI.equal a b) then
      if not (ESet.mem (a, b) cut) then begin
        let prev = try Hashtbl.find tbl a with Not_found -> [] in
        Hashtbl.replace tbl a (b :: prev)
      end
  in
  List.iter
    (fun (n, nbrs) ->
      List.iter
        (fun p ->
          add n p;
          add p n)
        nbrs)
    g;
  Hashtbl.iter (fun n nbrs -> Hashtbl.replace tbl n (List.sort_uniq NI.compare nbrs)) tbl;
  tbl

let neighbors tbl n = try Hashtbl.find tbl n with Not_found -> []

(* BFS from [src]; returns the predecessor map. Exploring sorted
   adjacency from a FIFO yields lowest-id shortest-path trees. *)
let bfs tbl src =
  let pred = Hashtbl.create 32 in
  Hashtbl.replace pred src src;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let n = Queue.pop q in
    List.iter
      (fun p ->
        if not (Hashtbl.mem pred p) then begin
          Hashtbl.replace pred p n;
          Queue.add p q
        end)
      (neighbors tbl n)
  done;
  pred

let walk_back pred ~src ~dst =
  if not (Hashtbl.mem pred dst) then None
  else begin
    let rec up acc n =
      if NI.equal n src then acc else up (n :: acc) (Hashtbl.find pred n)
    in
    Some (up [] dst)
  end

let shortest g ?(avoid = []) ~src ~dst () =
  let tbl = adjacency g ~avoid ~cut:ESet.empty in
  walk_back (bfs tbl src) ~src ~dst

let k_disjoint g ?(avoid = []) ~k ~src ~dst () =
  if k < 1 then invalid_arg "Path.k_disjoint: k";
  let rec extract acc cut i =
    if i = k then List.rev acc
    else begin
      let tbl = adjacency g ~avoid ~cut in
      match walk_back (bfs tbl src) ~src ~dst with
      | None -> List.rev acc
      | Some hops ->
        let cut =
          fst
            (List.fold_left
               (fun (cut, prev) hop -> (ESet.add (prev, hop) cut, hop))
               (cut, src) hops)
        in
        extract (hops :: acc) cut (i + 1)
    end
  in
  if NI.equal src dst then [] else extract [] ESet.empty 0

let distances g ~dst =
  let tbl = adjacency g ~avoid:[] ~cut:ESet.empty in
  (* BFS from the destination over the (symmetric) graph gives hop
     counts toward it *)
  let dist = Hashtbl.create 32 in
  Hashtbl.replace dist dst 0;
  let q = Queue.create () in
  Queue.add dst q;
  while not (Queue.is_empty q) do
    let n = Queue.pop q in
    let d = Hashtbl.find dist n in
    List.iter
      (fun p ->
        if not (Hashtbl.mem dist p) then begin
          Hashtbl.replace dist p (d + 1);
          Queue.add p q
        end)
      (neighbors tbl n)
  done;
  Hashtbl.fold (fun n d acc -> (n, d) :: acc) dist []
  |> List.sort (fun (a, _) (b, _) -> NI.compare a b)
