(** Sliding-window duplicate suppression for multipath receivers.

    A k-path disseminator delivers up to k copies of every sequence
    number; the receiver must pass each sequence to the application
    exactly once. The window is a fixed-size bitmap over recent
    sequence numbers: admission is O(1) and allocation free, and the
    window slides forward with the highest sequence seen, so memory
    stays bounded no matter how long the stream runs.

    Sequences more than [window] behind the highest seen are outside
    the bitmap and are conservatively reported [`Dup] — a late copy is
    suppressed rather than double-delivered, which is the safe side of
    the exactly-once contract (the disseminator's redundancy, not this
    window, is what makes delivery complete). *)

type t

type verdict = [ `Fresh  (** first copy — deliver *) | `Dup  (** suppress *) ]

val create : ?window:int -> unit -> t
(** [window] (default 1024) is the bitmap span in sequence numbers.
    @raise Invalid_argument if it is < 1. *)

val admit : t -> int -> verdict
(** [admit t seq] records a received copy of [seq] (any non-negative
    integer, in any order) and says whether it is the first.
    @raise Invalid_argument on a negative sequence. *)

val missing : t -> int list
(** Unseen sequence numbers between the window base and the highest
    sequence admitted, ascending — the retransmit shopping list a
    receiver turns into a nack. Empty when the stream has no gaps. *)

val highest : t -> int
(** Highest sequence admitted so far; -1 initially. *)

val fresh_count : t -> int
(** Total [`Fresh] verdicts issued — exactly-once deliveries. *)

val dup_count : t -> int
(** Total [`Dup] verdicts issued — redundant copies suppressed. *)
