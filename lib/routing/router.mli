(** The adaptive multipath router: an {!Iov_core.Algorithm.t} that
    turns the engine's static switch into an adaptive router, built
    purely out of the [process]/[send] interface — no engine changes.

    Every node of a routed overlay runs one router. On top of the
    in-band {!Neighbor} machinery (heartbeats, link-state gossip) it
    implements three forwarding disciplines:

    - [Static] — the single-tree baseline: one shortest path pinned at
      session open, never repaired. This is what the plain
      switch-with-routing-table gives you, bottled for comparison.
    - [Multipath k] — the source computes up to [k] edge-disjoint
      paths from its topology snapshot ({!Path.k_disjoint}) and
      disseminates every generation down all of them; receivers
      suppress the redundant copies ({!Dedup}), nack sequence gaps,
      and the source retransmits from a replay ring. On a failure
      notification ({e LinkFailed} or heartbeat loss) the node just
      upstream of the failure repairs its paths locally — against its
      own database, before any observer or Domino-Effect teardown can
      react — and re-installs the fixed tail with a setup message.
    - [Backpressure] — hop-by-hop gradient forwarding: data is held
      ({!Iov_core.Algorithm.verdict} [Hold]) in a per-session queue
      and drained toward the neighbor with the smallest advertised
      backlog among those strictly closer to the destination
      (loop-free by construction), with hysteresis so the choice only
      moves when another neighbor is decisively better.

    Telemetry: routers emit [Route_change] (a repair re-pointed a
    forwarding entry), [Path_switch] (the backpressure gradient moved)
    and [Dup_suppressed] (a redundant multipath copy was absorbed)
    into the same per-node flight recorders as the engine, plus
    per-path delivery histograms — so chaos invariants can audit
    recovery straight off the trace. *)

type mode =
  | Static  (** one pinned shortest path; no repair *)
  | Multipath of int  (** k edge-disjoint paths, dedup, reroute *)
  | Backpressure  (** queue-gradient next-hop selection *)

type stats = {
  delivered_msgs : int;  (** post-dedup data deliveries at this node *)
  delivered_bytes : int;  (** post-dedup payload bytes *)
  dups : int;  (** redundant copies suppressed *)
  route_changes : int;  (** local repairs initiated here *)
  path_switches : int;  (** backpressure next-hop moves *)
  nacks : int;  (** gap reports sent (receiver side) *)
  retransmits : int;  (** replay-ring resends (source side) *)
  retransmit_bytes : int;  (** payload bytes those resends carried *)
  suppressed : int;
      (** resends refused by the overload guard — an open breaker
          toward the replay next hop, or the byte budget running out *)
  unroutable : int;  (** data with no forwarding state, consumed *)
}

type t

val create :
  ?telemetry:Iov_telemetry.Telemetry.t ->
  ?hello_period:float ->
  ?neighbors:Iov_msg.Node_id.t list ->
  ?hysteresis:int ->
  ?dedup_window:int ->
  ?liveness:(Iov_msg.Node_id.t -> bool) ->
  ?retransmit_budget:int ->
  self:Iov_msg.Node_id.t ->
  mode:mode ->
  unit ->
  t
(** [neighbors] seeds the heartbeat target list (peers are otherwise
    discovered from engine link state and incoming hellos);
    [hysteresis] (messages, default 2) is the backlog margin a
    backpressure challenger must win by. [liveness] plugs an external
    membership oracle (gossip) into the neighbor table — see
    {!Neighbor.set_liveness}. [retransmit_budget] (payload bytes,
    default unlimited) is the hard ceiling on what the replay ring may
    ever resend; beyond it — or while the circuit breaker toward the
    replay next hop is open — nacked sequences are counted as
    [suppressed] instead of replayed ([Retransmit] telemetry events
    account every replayed payload, so the bound is auditable straight
    off the trace). *)

val algorithm : t -> Iov_core.Algorithm.t
(** The router as a pluggable algorithm — what
    [Network.add_node]/[Rnode.start] are handed. *)

val open_session :
  t ->
  Iov_core.Algorithm.ctx ->
  app:int ->
  dst:Iov_msg.Node_id.t ->
  ?rate:float ->
  ?payload_size:int ->
  unit ->
  unit
(** Makes this node the source of a routed constant-rate session
    ([rate] bytes/second, default 32 KiB/s, [payload_size] default
    1024). Paths are established as soon as the gossiped topology
    reaches the destination — immediately if it already does. The
    [ctx] is the node's own context ({!Iov_core.Network.ctx}). *)

val stop_session : t -> app:int -> unit
(** Stops generating data for the session (forwarding state remains). *)

val stats : t -> stats
(** This node's counters so far — see the {!stats} field docs. *)

val paths : t -> app:int -> Iov_msg.Node_id.t list list
(** The hop lists currently pinned at this session's source (empty for
    [Backpressure], which pins nothing). *)

val established : t -> app:int -> int
(** Paths currently installed for a session at its source (for
    [Backpressure], 1 once the session announcement has flooded). *)

val self : t -> Iov_msg.Node_id.t
(** The node this router runs on. *)

val mode : t -> mode
(** The forwarding discipline fixed at {!create}. *)

val setup_kind : Iov_msg.Mtype.t
val nack_kind : Iov_msg.Mtype.t
val open_kind : Iov_msg.Mtype.t
(** The router's control vocabulary (beyond {!Neighbor.hello_kind} and
    {!Neighbor.lsa_kind}), exposed for tests and overhead accounting. *)
