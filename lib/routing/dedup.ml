type verdict = [ `Fresh | `Dup ]

type t = {
  window : int;
  seen : Bytes.t; (* bitmap, one bit per sequence in the window *)
  mutable base : int; (* lowest sequence the bitmap still covers *)
  mutable hi : int; (* highest sequence admitted; -1 initially *)
  mutable fresh : int;
  mutable dups : int;
}

let create ?(window = 1024) () =
  if window < 1 then invalid_arg "Dedup.create: window";
  {
    window;
    seen = Bytes.make ((window + 7) / 8) '\000';
    base = 0;
    hi = -1;
    fresh = 0;
    dups = 0;
  }

let bit_get t seq =
  let i = seq mod t.window in
  Char.code (Bytes.unsafe_get t.seen (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set t seq v =
  let i = seq mod t.window in
  let b = Char.code (Bytes.unsafe_get t.seen (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let b = if v then b lor mask else b land lnot mask in
  Bytes.unsafe_set t.seen (i lsr 3) (Char.chr b)

let admit t seq =
  if seq < 0 then invalid_arg "Dedup.admit: negative sequence";
  if seq < t.base then begin
    (* fell off the window: a straggler copy, suppress *)
    t.dups <- t.dups + 1;
    `Dup
  end
  else begin
    if seq >= t.base + t.window then begin
      (* slide forward, clearing the bits the window vacates *)
      let nbase = seq - t.window + 1 in
      let steps = min (nbase - t.base) t.window in
      for s = t.base to t.base + steps - 1 do
        bit_set t s false
      done;
      t.base <- nbase
    end;
    if bit_get t seq then begin
      t.dups <- t.dups + 1;
      `Dup
    end
    else begin
      bit_set t seq true;
      if seq > t.hi then t.hi <- seq;
      t.fresh <- t.fresh + 1;
      `Fresh
    end
  end

let missing t =
  let acc = ref [] in
  for seq = t.hi - 1 downto max t.base 0 do
    if not (bit_get t seq) then acc := seq :: !acc
  done;
  !acc

let highest t = t.hi
let fresh_count t = t.fresh
let dup_count t = t.dups
