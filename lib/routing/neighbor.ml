module NI = Iov_msg.Node_id
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module Wire = Iov_msg.Wire

let hello_kind = Mt.Registry.register ~owner:"routing" ~name:"hello" 110
let lsa_kind = Mt.Registry.register ~owner:"routing" ~name:"lsa" 111

type entry = {
  e_peer : NI.t;
  mutable last_seen : float;
  mutable cost : float;
  mutable e_backlog : int;
}

type t = {
  self : NI.t;
  period : float;
  dead_after : float;
  alpha : float;
  mutable entries : entry list; (* ascending by peer id; degree-sized *)
  lsdb : (int * NI.t list) NI.Tbl.t; (* origin -> (version, neighbors) *)
  mutable version : int;
  mutable backlog : int;
  mutable liveness : (NI.t -> bool) option;
      (** external liveness oracle (gossip membership) *)
}

let create ?(hello_period = 0.25) ?(dead_factor = 3.0) ?(alpha = 0.125) ~self
    () =
  if hello_period <= 0. then invalid_arg "Neighbor.create: hello_period";
  if dead_factor <= 1. then invalid_arg "Neighbor.create: dead_factor";
  if alpha <= 0. || alpha > 1. then invalid_arg "Neighbor.create: alpha";
  {
    self;
    period = hello_period;
    dead_after = dead_factor *. hello_period;
    alpha;
    entries = [];
    lsdb = NI.Tbl.create 16;
    version = 0;
    backlog = 0;
    liveness = None;
  }

let set_liveness t f = t.liveness <- Some f

let hello_period t = t.period
let peers t = List.map (fun e -> e.e_peer) t.entries
let find t peer = List.find_opt (fun e -> NI.equal e.e_peer peer) t.entries
let is_peer t peer = find t peer <> None

let cost t peer =
  match find t peer with Some e -> e.cost | None -> infinity

let backlog_of t peer =
  match find t peer with Some e -> e.e_backlog | None -> 0

let set_backlog t n = t.backlog <- n

let graph t =
  let rows =
    NI.Tbl.fold (fun origin (_, nbrs) acc -> (origin, nbrs) :: acc) t.lsdb []
  in
  let rows = (t.self, peers t) :: rows in
  List.sort (fun (a, _) (b, _) -> NI.compare a b) rows

(* -- wire forms ---------------------------------------------------- *)

let hello t ~now =
  let w = Wire.W.create () in
  Wire.W.float w now;
  Wire.W.int32 w t.backlog;
  Msg.control ~mtype:hello_kind ~origin:t.self (Wire.W.contents w)

let lsa t =
  let w = Wire.W.create () in
  Wire.W.node w t.self;
  Wire.W.int32 w t.version;
  Wire.W.nodes w (peers t);
  Msg.control ~mtype:lsa_kind ~origin:t.self (Wire.W.contents w)

let bump_version t = t.version <- t.version + 1

(* -- ingestion ----------------------------------------------------- *)

let insert_sorted t e =
  let rec ins = function
    | [] -> [ e ]
    | x :: _ as l when NI.compare e.e_peer x.e_peer < 0 -> e :: l
    | x :: rest -> x :: ins rest
  in
  t.entries <- ins t.entries

let on_hello t ~now (m : Msg.t) =
  let r = Wire.R.of_bytes m.Msg.payload in
  let sent = Wire.R.float r in
  let backlog = Wire.R.int32 r in
  let sample = Float.max 0. (now -. sent) in
  match find t m.Msg.origin with
  | Some e ->
    e.last_seen <- now;
    e.e_backlog <- backlog;
    e.cost <- ((1. -. t.alpha) *. e.cost) +. (t.alpha *. sample);
    `Known
  | None ->
    insert_sorted t
      { e_peer = m.Msg.origin; last_seen = now; cost = sample;
        e_backlog = backlog };
    `New

let on_lsa t (m : Msg.t) =
  let r = Wire.R.of_bytes m.Msg.payload in
  let origin = Wire.R.node r in
  let version = Wire.R.int32 r in
  let nbrs = Wire.R.nodes r in
  if NI.equal origin t.self then `Stale
  else begin
    match NI.Tbl.find_opt t.lsdb origin with
    | Some (v, _) when v >= version -> `Stale
    | _ ->
      NI.Tbl.replace t.lsdb origin (version, nbrs);
      `Fresh
  end

(* -- liveness ------------------------------------------------------ *)

let expire t ~now =
  (* a gossip-confirmed death expires the entry immediately — no need
     to sit out the hello timeout *)
  let condemned e =
    now -. e.last_seen > t.dead_after
    || (match t.liveness with Some f -> not (f e.e_peer) | None -> false)
  in
  let dead, live = List.partition condemned t.entries in
  t.entries <- live;
  List.map (fun e -> e.e_peer) dead

let remove t peer =
  let n = List.length t.entries in
  t.entries <- List.filter (fun e -> not (NI.equal e.e_peer peer)) t.entries;
  NI.Tbl.remove t.lsdb peer;
  List.length t.entries < n
