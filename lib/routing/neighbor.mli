(** The adaptive router's neighbor table and link-state database.

    Liveness and link quality are learned entirely in-band, over the
    engine's control path, using two [Custom] message types:

    - {e hello} ({!hello_kind}) — periodic heartbeats to every link
      peer, carrying the sender's clock and its current forwarding
      backlog. Receipt refreshes liveness, folds the observed one-way
      delay into a smoothed link cost (EWMA), and records the peer's
      backlog for the backpressure forwarder.
    - {e link-state} ({!lsa_kind}) — each node periodically floods its
      own neighbor list under a monotonic version number; receivers
      keep the highest version per origin and re-flood only fresh
      advertisements, so the flood terminates. The union of stored
      advertisements is the topology snapshot {!graph} hands to
      {!Path}.

    A peer is presumed dead once {!expire} finds no hello within the
    dead interval, or immediately upon an engine [LinkFailed]
    notification ({!remove}). Either way the own-row advertisement
    changes, the version bumps, and the next flood spreads the news. *)

type t

val hello_kind : Iov_msg.Mtype.t
(** The heartbeat message type ([Custom 110], claimed in
    {!Iov_msg.Mtype.Registry}; see [docs/WIRE.md]). *)

val lsa_kind : Iov_msg.Mtype.t
(** The link-state advertisement type ([Custom 111]). *)

val create :
  ?hello_period:float -> ?dead_factor:float -> ?alpha:float ->
  self:Iov_msg.Node_id.t -> unit -> t
(** [hello_period] (default 0.25 s) paces heartbeats and expiry scans;
    a peer silent for [dead_factor] (default 3.0) periods is expired.
    [alpha] (default 0.125, RFC 6298's gain) smooths the per-link cost. *)

val hello_period : t -> float
(** The heartbeat period fixed at {!create} — the caller's timer
    interval for {!hello} and {!expire}. *)

val peers : t -> Iov_msg.Node_id.t list
(** Live neighbors, ascending by id. *)

val is_peer : t -> Iov_msg.Node_id.t -> bool
(** Whether the node is currently in the live-neighbor table. *)

val cost : t -> Iov_msg.Node_id.t -> float
(** Smoothed one-way delay to a live neighbor (seconds); +inf for
    unknown peers. *)

val backlog_of : t -> Iov_msg.Node_id.t -> int
(** The neighbor's last advertised forwarding backlog (messages); 0
    for unknown peers. *)

val set_backlog : t -> int -> unit
(** Our own backlog, advertised in subsequent hellos. *)

val graph : t -> Path.graph
(** The current topology snapshot: our own live neighbor row plus
    every stored advertisement, deterministically ordered. *)

val hello : t -> now:float -> Iov_msg.Message.t
(** A heartbeat ready to send to each link peer. *)

val lsa : t -> Iov_msg.Message.t
(** Our own advertisement at the current version. Bump with
    {!bump_version} when the neighbor set changed. *)

val bump_version : t -> unit
(** Advance the own-row advertisement version so the next {!lsa} is
    re-flooded as fresh — call after the neighbor set changes. *)

val on_hello : t -> now:float -> Iov_msg.Message.t -> [ `Known | `New ]
(** Fold a received heartbeat in; [`New] means a first-contact peer
    joined the table (worth a version bump and fresh flood). *)

val on_lsa : t -> Iov_msg.Message.t -> [ `Fresh | `Stale ]
(** Fold a received advertisement into the database. [`Fresh] means it
    carried a new version and should be re-flooded to our peers. *)

val set_liveness : t -> (Iov_msg.Node_id.t -> bool) -> unit
(** Installs an external liveness oracle — typically
    [Iov_gossip.Gossip.liveness] — consulted by {!expire}: a peer the
    oracle declares dead is expired immediately, without waiting out
    the hello timeout. *)

val expire : t -> now:float -> Iov_msg.Node_id.t list
(** Drop peers whose last hello is older than the dead interval — or
    whom the {!set_liveness} oracle has condemned; returns them
    (callers bump the version when non-empty). *)

val remove : t -> Iov_msg.Node_id.t -> bool
(** Immediate removal on an engine failure notification: drops the
    peer from the table {e and} its advertisement from the database
    (a dead node must not linger as a path candidate). True if the
    peer was in the table. *)
