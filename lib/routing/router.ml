module Alg = Iov_core.Algorithm
module Ialg = Iov_core.Ialgorithm
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module NI = Iov_msg.Node_id
module Wire = Iov_msg.Wire
module Tel = Iov_telemetry.Telemetry
module Ev = Iov_telemetry.Event
module Metrics = Iov_telemetry.Metrics
module Tracer = Iov_telemetry.Tracer
module Breaker = Iov_guard.Breaker
module Backoff = Iov_guard.Backoff

(* 112-115 belong to the gossip membership subsystem; the router's
   control types live above them, claimed through the central registry *)
let setup_kind = Mt.Registry.register ~owner:"routing" ~name:"setup" 116
let nack_kind = Mt.Registry.register ~owner:"routing" ~name:"nack" 117
let open_kind = Mt.Registry.register ~owner:"routing" ~name:"open" 118

(* Wire framing: routed data payloads carry a one-byte path tag in
   front of the application bytes, so interior nodes can key their
   forwarding state by (app, path) without any header extension. *)
let max_paths = 16
let replay_size = 512
let nack_batch = 64

type mode = Static | Multipath of int | Backpressure

type fwd = {
  f_dst : NI.t;
  mutable f_next : NI.t option; (* None: this node is the destination *)
}

type session = {
  s_app : int;
  s_dst : NI.t;
  s_k : int; (* paths wanted; 1 for Static, 0 for Backpressure *)
  s_rate : float;
  s_size : int;
  mutable s_paths : NI.t list list;
  mutable s_seq : int;
  mutable s_running : bool;
  mutable s_timer : bool;
  mutable s_nacked : float; (* last nack arrival, for breaker evidence *)
  replay : Bytes.t option array; (* app payloads by seq mod replay_size *)
  replay_tag : int array;
}

type rx = {
  r_src : NI.t;
  dd : Dedup.t;
  mutable r_bytes : int;
  mutable r_msgs : int;
  mutable nack_armed : bool;
  mutable nack_bo : Backoff.t option; (* re-arm schedule for a stuck gap *)
  hists : Metrics.histogram option array; (* per-path rx histograms *)
}

type bp = {
  b_dst : NI.t;
  b_src : NI.t;
  bq : Msg.t Queue.t;
  mutable choice : NI.t option;
  mutable d_gen : int; (* topology generation the cache was built at *)
  mutable dists : (NI.t * int) list;
}

type t = {
  t_self : NI.t;
  t_mode : mode;
  nb : Neighbor.t;
  hysteresis : int;
  dedup_window : int;
  tbl : (int * int, fwd) Hashtbl.t; (* (app, path) -> forwarding entry *)
  sessions : (int, session) Hashtbl.t;
  rxs : (int, rx) Hashtbl.t;
  bps : (int, bp) Hashtbl.t;
  mutable dead : NI.t list; (* peers seen failing; avoided until gossip heals *)
  mutable topo_gen : int;
  mutable lsa_countdown : int;
  tel : (Tel.t * Tracer.t) option;
  (* stats *)
  mutable st_dups : int;
  mutable st_route_changes : int;
  mutable st_path_switches : int;
  mutable st_nacks : int;
  mutable st_retransmits : int;
  mutable st_retransmit_bytes : int;
  mutable st_suppressed : int;
  mutable st_unroutable : int;
  seeds : NI.t list;
  (* overload guard: per-next-hop circuit breakers gate the replay
     ring, and a total byte budget bounds recovery traffic outright *)
  breakers : (NI.t, Breaker.t) Hashtbl.t;
  retx_budget : int;
  h_open_ms : Metrics.histogram option;
}

type stats = {
  delivered_msgs : int;
  delivered_bytes : int;
  dups : int;
  route_changes : int;
  path_switches : int;
  nacks : int;
  retransmits : int;
  retransmit_bytes : int;
  suppressed : int;
  unroutable : int;
}

let create ?telemetry ?(hello_period = 0.25) ?(neighbors = []) ?(hysteresis = 2)
    ?(dedup_window = 1024) ?liveness ?(retransmit_budget = max_int) ~self ~mode
    () =
  if retransmit_budget < 0 then
    invalid_arg "Router.create: retransmit_budget < 0";
  (match mode with
  | Multipath k when k < 1 || k > max_paths ->
    invalid_arg "Router.create: Multipath k out of range"
  | _ -> ());
  let nb = Neighbor.create ~hello_period ~self () in
  (match liveness with Some f -> Neighbor.set_liveness nb f | None -> ());
  {
    t_self = self;
    t_mode = mode;
    nb;
    hysteresis;
    dedup_window;
    tbl = Hashtbl.create 8;
    sessions = Hashtbl.create 4;
    rxs = Hashtbl.create 4;
    bps = Hashtbl.create 4;
    dead = [];
    topo_gen = 0;
    lsa_countdown = 0;
    tel = Option.map (fun tl -> (tl, Tel.tracer tl self)) telemetry;
    st_dups = 0;
    st_route_changes = 0;
    st_path_switches = 0;
    st_nacks = 0;
    st_retransmits = 0;
    st_retransmit_bytes = 0;
    st_suppressed = 0;
    st_unroutable = 0;
    seeds = List.sort_uniq NI.compare neighbors;
    breakers = Hashtbl.create 8;
    retx_budget = retransmit_budget;
    h_open_ms =
      Option.map
        (fun tl ->
          Metrics.histogram (Tel.metrics tl) ~scope:(NI.to_string self)
            "breaker.open_ms")
        telemetry;
  }

let self t = t.t_self
let mode t = t.t_mode

let stats t =
  let delivered_msgs, delivered_bytes =
    Hashtbl.fold
      (fun _ rx (m, b) -> (m + rx.r_msgs, b + rx.r_bytes))
      t.rxs (0, 0)
  in
  {
    delivered_msgs;
    delivered_bytes;
    dups = t.st_dups;
    route_changes = t.st_route_changes;
    path_switches = t.st_path_switches;
    nacks = t.st_nacks;
    retransmits = t.st_retransmits;
    retransmit_bytes = t.st_retransmit_bytes;
    suppressed = t.st_suppressed;
    unroutable = t.st_unroutable;
  }

let paths t ~app =
  match Hashtbl.find_opt t.sessions app with
  | None -> []
  | Some s -> s.s_paths

let established t ~app =
  match Hashtbl.find_opt t.sessions app with
  | None -> 0
  | Some s -> (
    match t.t_mode with
    | Backpressure -> if s.s_running then 1 else 0
    | _ -> List.length s.s_paths)

(* -- telemetry ----------------------------------------------------- *)

let tel_event t (ctx : Alg.ctx) kind ~peer ~id ~app ~mseq ~size =
  match t.tel with
  | None -> ()
  | Some (tl, tr) ->
    Tel.record tl tr ~time:(ctx.now ()) ~kind ~peer ~id ~app ~mseq ~size

(* -- circuit breakers (overload guard) ----------------------------- *)

let breaker t (ctx : Alg.ctx) peer =
  match Hashtbl.find_opt t.breakers peer with
  | Some b -> b
  | None ->
    let b = Breaker.create ~rng:ctx.rng () in
    Hashtbl.add t.breakers peer b;
    b

(* Failure evidence toward a next hop: a Link_failed / expired
   heartbeat, or a nack storm that keeps coming back for the same
   session. A trip is announced once, as a [Breaker_open] event. *)
let breaker_failure t (ctx : Alg.ctx) peer =
  let b = breaker t ctx peer in
  if Breaker.on_failure b ~now:(ctx.now ()) then
    tel_event t ctx Ev.Breaker_open ~peer ~id:Ev.no_id ~app:0
      ~mseq:(Breaker.trips b) ~size:0

(* Any message received from a peer is proof of life: it closes a
   half-open breaker (announced as [Breaker_close], with the open span
   observed into the [breaker.open_ms] histogram) and clears pending
   failure counts on a closed one. Only peers that already have a
   breaker pay anything here. *)
let breaker_success t (ctx : Alg.ctx) peer =
  match Hashtbl.find_opt t.breakers peer with
  | None -> ()
  | Some b -> (
    match Breaker.on_success b ~now:(ctx.now ()) with
    | None -> ()
    | Some span ->
      let ms = int_of_float (span *. 1e3) in
      (match t.h_open_ms with Some h -> Metrics.observe h ms | None -> ());
      tel_event t ctx Ev.Breaker_close ~peer ~id:Ev.no_id ~app:0 ~mseq:0
        ~size:ms)

let breaker_allows t (ctx : Alg.ctx) peer =
  Breaker.allow (breaker t ctx peer) ~now:(ctx.now ())

let rx_hist t rx path =
  match t.tel with
  | None -> None
  | Some (tl, _) -> (
    if path < 0 || path >= max_paths then None
    else
      match rx.hists.(path) with
      | Some _ as h -> h
      | None ->
        let h =
          Metrics.histogram (Tel.metrics tl)
            ~scope:(NI.to_string t.t_self)
            (Printf.sprintf "route.path%d.rx_bytes" path)
        in
        rx.hists.(path) <- Some h;
        Some h)

(* -- topology bookkeeping ------------------------------------------ *)

let graph t = Neighbor.graph t.nb

let mark_dead t peer =
  ignore (Neighbor.remove t.nb peer);
  if not (List.exists (NI.equal peer) t.dead) then
    t.dead <- List.sort NI.compare (peer :: t.dead);
  Neighbor.bump_version t.nb;
  t.topo_gen <- t.topo_gen + 1;
  t.lsa_countdown <- 0 (* flood the updated row on the next tick *)

let revive t peer =
  if List.exists (NI.equal peer) t.dead then begin
    t.dead <- List.filter (fun d -> not (NI.equal d peer)) t.dead;
    t.topo_gen <- t.topo_gen + 1
  end

(* Heartbeats go to every peer the engine or the table knows about:
   pre-connected links, discovered upstreams, seed hints. *)
let hello_targets t (ctx : Alg.ctx) =
  List.sort_uniq NI.compare
    (t.seeds @ Neighbor.peers t.nb @ ctx.upstreams () @ ctx.downstreams ())
  |> List.filter (fun p -> not (NI.equal p t.t_self))
  |> List.filter (fun p -> not (List.exists (NI.equal p) t.dead))

let flood_lsa t (ctx : Alg.ctx) =
  let m = Neighbor.lsa t.nb in
  List.iter (fun p -> ctx.send (Msg.share m) p) (hello_targets t ctx)

(* -- path setup ---------------------------------------------------- *)

let setup_msg t ~app ~path ~repair ~src ~dst remaining =
  let w = Wire.W.create () in
  Wire.W.int32 w (if repair then 1 else 0);
  Wire.W.int32 w path;
  Wire.W.node w src;
  Wire.W.node w dst;
  Wire.W.nodes w remaining;
  Msg.control ~mtype:setup_kind ~origin:t.t_self ~app (Wire.W.contents w)

let install_path t (ctx : Alg.ctx) ~app ~path ~repair ~dst hops =
  match hops with
  | [] -> ()
  | first :: rest ->
    ctx.send (setup_msg t ~app ~path ~repair ~src:t.t_self ~dst rest) first

(* -- sessions (source side) ---------------------------------------- *)

let frame ~path payload =
  let n = Bytes.length payload in
  let b = Bytes.create (n + 1) in
  Bytes.set b 0 (Char.chr (path land 0xff));
  Bytes.blit payload 0 b 1 n;
  b

let data_frame t s ~path ~seq payload =
  Msg.make ~mtype:Mt.Data ~origin:t.t_self ~app:s.s_app ~seq
    (frame ~path payload)

let bp_open_msg t s =
  let w = Wire.W.create () in
  Wire.W.node w t.t_self;
  Wire.W.node w s.s_dst;
  Msg.control ~mtype:open_kind ~origin:t.t_self ~app:s.s_app
    (Wire.W.contents w)

let bp_state t ~app ~src ~dst =
  match Hashtbl.find_opt t.bps app with
  | Some b -> b
  | None ->
    let b =
      { b_dst = dst; b_src = src; bq = Queue.create (); choice = None;
        d_gen = -1; dists = [] }
    in
    Hashtbl.replace t.bps app b;
    b

let bp_backlog t =
  Hashtbl.fold (fun _ b acc -> acc + Queue.length b.bq) t.bps 0

(* Gradient next hop: among live neighbors strictly closer to the
   destination, take the one with the smallest advertised backlog —
   but only dethrone the incumbent when the challenger wins by more
   than the hysteresis margin, so the choice doesn't flap on noise. *)
let bp_choose t (ctx : Alg.ctx) b =
  if b.d_gen <> t.topo_gen then begin
    b.dists <- Path.distances (graph t) ~dst:b.b_dst;
    b.d_gen <- t.topo_gen
  end;
  let dist n =
    match List.assoc_opt n b.dists with Some d -> d | None -> max_int
  in
  let mine = dist t.t_self in
  let candidates =
    List.filter (fun p -> dist p < mine) (Neighbor.peers t.nb)
  in
  let best =
    List.fold_left
      (fun acc p ->
        let bl = Neighbor.backlog_of t.nb p in
        match acc with
        | Some (_, bbl) when bbl <= bl -> acc
        | _ -> Some (p, bl))
      None candidates
  in
  match (best, b.choice) with
  | None, _ -> b.choice <- None
  | Some (p, _), None -> b.choice <- Some p
  | Some (p, pbl), Some cur when not (NI.equal p cur) ->
    let cur_alive = List.exists (NI.equal cur) candidates in
    let cbl = Neighbor.backlog_of t.nb cur in
    if (not cur_alive) || pbl + t.hysteresis < cbl then begin
      b.choice <- Some p;
      t.st_path_switches <- t.st_path_switches + 1;
      tel_event t ctx Ev.Path_switch ~peer:p ~id:Ev.no_id ~app:0
        ~mseq:(Queue.length b.bq) ~size:0
    end
  | Some _, Some _ -> ()

let bp_drain t (ctx : Alg.ctx) =
  Hashtbl.iter
    (fun _ b ->
      if not (Queue.is_empty b.bq) then begin
        bp_choose t ctx b;
        match b.choice with
        | None -> ()
        | Some nh ->
          while (not (Queue.is_empty b.bq)) && ctx.can_send nh do
            ctx.send (Queue.pop b.bq) nh
          done
      end)
    t.bps;
  Neighbor.set_backlog t.nb (bp_backlog t)

let bp_enqueue t (ctx : Alg.ctx) b m =
  (* bounded: shedding beats unbounded memory under a dead gradient *)
  if Queue.length b.bq < 256 then Queue.push m b.bq
  else t.st_unroutable <- t.st_unroutable + 1;
  bp_drain t ctx

let replay_store s ~seq payload =
  s.replay.(seq mod replay_size) <- Some payload;
  s.replay_tag.(seq mod replay_size) <- seq

let emit_generation t (ctx : Alg.ctx) s =
  let payload = Bytes.make s.s_size 'r' in
  let seq = s.s_seq in
  s.s_seq <- seq + 1;
  replay_store s ~seq payload;
  match t.t_mode with
  | Backpressure ->
    let b = bp_state t ~app:s.s_app ~src:t.t_self ~dst:s.s_dst in
    bp_enqueue t ctx b (data_frame t s ~path:0 ~seq payload)
  | Static | Multipath _ ->
    List.iteri
      (fun path hops ->
        match hops with
        | [] -> ()
        | first :: _ -> ctx.send (data_frame t s ~path ~seq payload) first)
      s.s_paths

let rec arm_session_timer t (ctx : Alg.ctx) s =
  if s.s_running && not s.s_timer then begin
    s.s_timer <- true;
    let interval = float_of_int s.s_size /. s.s_rate in
    ctx.set_timer interval (fun () ->
        s.s_timer <- false;
        if s.s_running then begin
          emit_generation t ctx s;
          arm_session_timer t ctx s
        end)
  end

(* (Re)establish the session's paths from the current snapshot. Run at
   open and again from every tick until the gossip has reached far
   enough to see the destination. *)
let try_establish t (ctx : Alg.ctx) s =
  if s.s_running && s.s_k > 0 && s.s_paths = [] then begin
    let paths =
      Path.k_disjoint (graph t) ~avoid:t.dead ~k:s.s_k ~src:t.t_self
        ~dst:s.s_dst ()
    in
    if paths <> [] then begin
      s.s_paths <- paths;
      List.iteri
        (fun path hops ->
          install_path t ctx ~app:s.s_app ~path ~repair:false ~dst:s.s_dst
            hops)
        paths
    end
  end

let open_session t (ctx : Alg.ctx) ~app ~dst ?(rate = 32. *. 1024.)
    ?(payload_size = 1024) () =
  if Hashtbl.mem t.sessions app then
    invalid_arg "Router.open_session: app already open";
  if rate <= 0. || payload_size < 1 then
    invalid_arg "Router.open_session: bad rate or payload size";
  let k =
    match t.t_mode with
    | Static -> 1
    | Multipath k -> k
    | Backpressure -> 0
  in
  let s =
    {
      s_app = app;
      s_dst = dst;
      s_k = k;
      s_rate = rate;
      s_size = payload_size;
      s_paths = [];
      s_seq = 0;
      s_running = true;
      s_timer = false;
      s_nacked = neg_infinity;
      replay = Array.make replay_size None;
      replay_tag = Array.make replay_size (-1);
    }
  in
  Hashtbl.replace t.sessions app s;
  (match t.t_mode with
  | Backpressure ->
    ignore (bp_state t ~app ~src:t.t_self ~dst);
    List.iter
      (fun p -> ctx.send (Msg.share (bp_open_msg t s)) p)
      (hello_targets t ctx)
  | _ -> try_establish t ctx s);
  arm_session_timer t ctx s

let stop_session t ~app =
  match Hashtbl.find_opt t.sessions app with
  | Some s -> s.s_running <- false
  | None -> ()

(* -- reroute on failure -------------------------------------------- *)

(* Local repair, run at the node immediately upstream of a failure:
   re-point every forwarding entry that used the dead peer at a fresh
   shortest path (computed against our own database, minus everything
   we know to be dead) and re-install the tail downstream. The paper's
   Domino-Effect teardown remains the backstop when no detour exists. *)
let repair_entries t (ctx : Alg.ctx) peer =
  Hashtbl.iter
    (fun (app, path) f ->
      match f.f_next with
      | Some next when NI.equal next peer -> (
        match
          Path.shortest (graph t) ~avoid:t.dead ~src:t.t_self ~dst:f.f_dst ()
        with
        | Some (first :: _ as hops) ->
          f.f_next <- Some first;
          install_path t ctx ~app ~path ~repair:true ~dst:f.f_dst hops;
          t.st_route_changes <- t.st_route_changes + 1;
          tel_event t ctx Ev.Route_change ~peer:first ~id:Ev.no_id ~app
            ~mseq:path ~size:0
        | Some [] | None -> f.f_next <- None)
      | _ -> ())
    t.tbl

(* Source-side repair: recompute any path that started at the dead
   peer (deeper failures are repaired locally by the upstream node). *)
let repair_sessions t (ctx : Alg.ctx) peer =
  Hashtbl.iter
    (fun _ s ->
      if s.s_running && s.s_k > 0 then
        s.s_paths <-
          List.mapi
            (fun path hops ->
              match hops with
              | first :: _ when NI.equal first peer -> (
                let other_heads =
                  List.concat_map
                    (fun h -> match h with f :: _ -> [ f ] | [] -> [])
                    (List.filteri (fun i _ -> i <> path) s.s_paths)
                in
                match
                  Path.shortest (graph t)
                    ~avoid:(t.dead @ other_heads)
                    ~src:t.t_self ~dst:s.s_dst ()
                with
                | Some (nf :: _ as nhops) ->
                  install_path t ctx ~app:s.s_app ~path ~repair:true
                    ~dst:s.s_dst nhops;
                  t.st_route_changes <- t.st_route_changes + 1;
                  tel_event t ctx Ev.Route_change ~peer:nf ~id:Ev.no_id
                    ~app:s.s_app ~mseq:path ~size:0;
                  nhops
                | _ -> (
                  (* no head-disjoint detour; accept sharing a first
                     hop rather than losing the path entirely *)
                  match
                    Path.shortest (graph t) ~avoid:t.dead ~src:t.t_self
                      ~dst:s.s_dst ()
                  with
                  | Some (nf :: _ as nhops) ->
                    install_path t ctx ~app:s.s_app ~path ~repair:true
                      ~dst:s.s_dst nhops;
                    t.st_route_changes <- t.st_route_changes + 1;
                    tel_event t ctx Ev.Route_change ~peer:nf ~id:Ev.no_id
                      ~app:s.s_app ~mseq:path ~size:0;
                    nhops
                  | _ -> hops))
              | _ -> hops)
            s.s_paths)
    t.sessions

let handle_dead t (ctx : Alg.ctx) peer =
  breaker_failure t ctx peer;
  mark_dead t peer;
  match t.t_mode with
  | Static -> () (* the baseline stays broken, by design *)
  | Backpressure ->
    (* the dead incumbent is dethroned inside [bp_choose] (it is no
       longer a candidate), which also records the path switch *)
    bp_drain t ctx
  | Multipath _ ->
    repair_entries t ctx peer;
    repair_sessions t ctx peer

(* -- receive side -------------------------------------------------- *)

let rx_state t ~app ~src =
  match Hashtbl.find_opt t.rxs app with
  | Some rx -> rx
  | None ->
    let rx =
      {
        r_src = src;
        dd = Dedup.create ~window:t.dedup_window ();
        r_bytes = 0;
        r_msgs = 0;
        nack_armed = false;
        nack_bo = None;
        hists = Array.make max_paths None;
      }
    in
    Hashtbl.replace t.rxs app rx;
    rx

let nack_msg t ~app seqs =
  let w = Wire.W.create () in
  Wire.W.int32 w (List.length seqs);
  List.iter (Wire.W.int32 w) seqs;
  Msg.control ~mtype:nack_kind ~origin:t.t_self ~app (Wire.W.contents w)

let maybe_nack t (ctx : Alg.ctx) ~app rx =
  if (not rx.nack_armed) && Dedup.missing rx.dd <> [] then begin
    rx.nack_armed <- true;
    (* the re-arm delay rides the shared backoff schedule: the first
       wait is one hello period (giving straggler copies a chance to
       close the gap), and a gap that keeps surviving nacks is re-asked
       about less and less often, bounded at 4 hello periods *)
    let hp = Neighbor.hello_period t.nb in
    let bo =
      match rx.nack_bo with
      | Some b -> b
      | None ->
        let b = Backoff.create ~base:hp ~cap:(4. *. hp) ~rng:ctx.rng () in
        rx.nack_bo <- Some b;
        b
    in
    ctx.set_timer (Backoff.next bo) (fun () ->
        rx.nack_armed <- false;
        let miss = Dedup.missing rx.dd in
        if miss = [] then Backoff.reset bo
        else begin
          let miss = List.filteri (fun i _ -> i < nack_batch) miss in
          ctx.send (nack_msg t ~app miss) rx.r_src;
          t.st_nacks <- t.st_nacks + 1
        end)
  end

let deliver t (ctx : Alg.ctx) (m : Msg.t) rx ~path =
  (match rx_hist t rx path with
  | Some h -> Metrics.observe h (Msg.payload_size m - 1)
  | None -> ());
  match Dedup.admit rx.dd m.Msg.seq with
  | `Fresh ->
    rx.r_msgs <- rx.r_msgs + 1;
    rx.r_bytes <- rx.r_bytes + Msg.payload_size m - 1;
    maybe_nack t ctx ~app:m.Msg.app rx
  | `Dup ->
    t.st_dups <- t.st_dups + 1;
    tel_event t ctx Ev.Dup_suppressed ~peer:m.Msg.origin
      ~id:(Ev.id_of_msg m) ~app:m.Msg.app ~mseq:m.Msg.seq
      ~size:(Msg.size m)

(* -- retransmission (source side) ---------------------------------- *)

let retransmit t (ctx : Alg.ctx) s seqs =
  (* the replay next hop of the pinned modes, gated by its circuit
     breaker; the backpressure drain routes (and is paced) on its own *)
  let next_hop =
    match t.t_mode with
    | Backpressure -> None
    | Static | Multipath _ -> (
      match s.s_paths with (first :: _) :: _ -> Some first | _ -> None)
  in
  List.iter
    (fun seq ->
      if seq >= 0 && s.replay_tag.(seq mod replay_size) = seq then begin
        match s.replay.(seq mod replay_size) with
        | None -> ()
        | Some payload ->
          let bytes = Bytes.length payload in
          (* hard budget first: recovery traffic never exceeds it *)
          if t.st_retransmit_bytes + bytes > t.retx_budget then
            t.st_suppressed <- t.st_suppressed + 1
          else begin
            match t.t_mode with
            | Backpressure ->
              t.st_retransmits <- t.st_retransmits + 1;
              t.st_retransmit_bytes <- t.st_retransmit_bytes + bytes;
              tel_event t ctx Ev.Retransmit ~peer:s.s_dst ~id:Ev.no_id
                ~app:s.s_app ~mseq:seq ~size:bytes;
              let b = bp_state t ~app:s.s_app ~src:t.t_self ~dst:s.s_dst in
              bp_enqueue t ctx b (data_frame t s ~path:0 ~seq payload)
            | Static | Multipath _ -> (
              match next_hop with
              | Some first when breaker_allows t ctx first ->
                t.st_retransmits <- t.st_retransmits + 1;
                t.st_retransmit_bytes <- t.st_retransmit_bytes + bytes;
                tel_event t ctx Ev.Retransmit ~peer:first ~id:Ev.no_id
                  ~app:s.s_app ~mseq:seq ~size:bytes;
                ctx.send (data_frame t s ~path:0 ~seq payload) first
              | Some _ -> t.st_suppressed <- t.st_suppressed + 1
              | None -> ())
          end
      end)
    seqs

(* -- message handling ---------------------------------------------- *)

let on_setup t (ctx : Alg.ctx) (m : Msg.t) =
  try
    let r = Wire.R.of_bytes m.Msg.payload in
    let _repair = Wire.R.int32 r in
    let path = Wire.R.int32 r in
    let src = Wire.R.node r in
    let dst = Wire.R.node r in
    let remaining = Wire.R.nodes r in
    let key = (m.Msg.app, path) in
    match remaining with
    | [] ->
      ignore (rx_state t ~app:m.Msg.app ~src);
      Hashtbl.replace t.tbl key { f_dst = dst; f_next = None }
    | next :: rest ->
      Hashtbl.replace t.tbl key { f_dst = dst; f_next = Some next };
      ctx.send
        (setup_msg t ~app:m.Msg.app ~path
           ~repair:false (* propagation is plain installation *)
           ~src ~dst rest)
        next
  with Wire.Truncated -> ()

let on_bp_open t (ctx : Alg.ctx) (m : Msg.t) =
  try
    let r = Wire.R.of_bytes m.Msg.payload in
    let src = Wire.R.node r in
    let dst = Wire.R.node r in
    if not (Hashtbl.mem t.bps m.Msg.app) then begin
      ignore (bp_state t ~app:m.Msg.app ~src ~dst);
      if NI.equal dst t.t_self then ignore (rx_state t ~app:m.Msg.app ~src);
      (* flood on: version-free, the membership test stops the wave *)
      List.iter
        (fun p ->
          if not (NI.equal p m.Msg.origin) then ctx.send (Msg.share m) p)
        (hello_targets t ctx)
    end
  with Wire.Truncated -> ()

let on_nack t (ctx : Alg.ctx) (m : Msg.t) =
  match Hashtbl.find_opt t.sessions m.Msg.app with
  | None -> ()
  | Some s -> (
    try
      let r = Wire.R.of_bytes m.Msg.payload in
      let n = Wire.R.int32 r in
      let seqs = List.init (min n nack_batch) (fun _ -> Wire.R.int32 r) in
      (* a nack soon after the previous one means the retransmission
         did not take: failure evidence toward the replay next hop *)
      let now = ctx.now () in
      (match s.s_paths with
      | (first :: _) :: _
        when now -. s.s_nacked < 8. *. Neighbor.hello_period t.nb ->
        breaker_failure t ctx first
      | _ -> ());
      s.s_nacked <- now;
      retransmit t ctx s seqs
    with Wire.Truncated -> ())

let on_data t (ctx : Alg.ctx) (m : Msg.t) =
  if Msg.payload_size m < 1 then begin
    t.st_unroutable <- t.st_unroutable + 1;
    Alg.Consume
  end
  else begin
    let path = Char.code (Bytes.get m.Msg.payload 0) in
    match Hashtbl.find_opt t.tbl (m.Msg.app, path) with
    | Some { f_next = Some next; _ } -> Alg.Forward [ next ]
    | Some { f_next = None; _ } -> (
      match Hashtbl.find_opt t.rxs m.Msg.app with
      | Some rx ->
        deliver t ctx m rx ~path;
        Alg.Consume
      | None ->
        t.st_unroutable <- t.st_unroutable + 1;
        Alg.Consume)
    | None -> (
      (* no pinned state: backpressure territory *)
      match Hashtbl.find_opt t.bps m.Msg.app with
      | Some b when NI.equal b.b_dst t.t_self ->
        deliver t ctx m (rx_state t ~app:m.Msg.app ~src:b.b_src) ~path;
        Alg.Consume
      | Some b ->
        bp_enqueue t ctx b m;
        Alg.Hold
      | None ->
        t.st_unroutable <- t.st_unroutable + 1;
        Alg.Consume)
  end

let on_link_failed t (ctx : Alg.ctx) (m : Msg.t) =
  (* engine notification; origin names the failed peer *)
  handle_dead t ctx m.Msg.origin

let drop_app t app =
  Hashtbl.remove t.rxs app;
  Hashtbl.remove t.bps app;
  let keys =
    Hashtbl.fold
      (fun ((a, _) as k) _ acc -> if a = app then k :: acc else acc)
      t.tbl []
  in
  List.iter (Hashtbl.remove t.tbl) keys

(* -- ticking ------------------------------------------------------- *)

let lsa_refresh_ticks = 4

let do_tick t (ctx : Alg.ctx) =
  let now = ctx.now () in
  let expired = Neighbor.expire t.nb ~now in
  List.iter (fun p -> handle_dead t ctx p) expired;
  let targets = hello_targets t ctx in
  let h = Neighbor.hello t.nb ~now in
  List.iter (fun p -> ctx.send (Msg.share h) p) targets;
  if t.lsa_countdown <= 0 then begin
    Neighbor.bump_version t.nb;
    flood_lsa t ctx;
    t.lsa_countdown <- lsa_refresh_ticks
  end
  else t.lsa_countdown <- t.lsa_countdown - 1;
  Hashtbl.iter (fun _ s -> try_establish t ctx s) t.sessions;
  if t.t_mode = Backpressure then bp_drain t ctx

let rec tick_loop t (ctx : Alg.ctx) =
  ctx.set_timer (Neighbor.hello_period t.nb) (fun () ->
      do_tick t ctx;
      tick_loop t ctx)

(* -- the algorithm ------------------------------------------------- *)

let handle t (ctx : Alg.ctx) (m : Msg.t) =
  match m.Msg.mtype with
  | Mt.Data -> Some (on_data t ctx m)
  | k when k = Neighbor.hello_kind ->
    (* a heartbeat travels hop-to-hop: direct proof the peer is back *)
    breaker_success t ctx m.Msg.origin;
    (match Neighbor.on_hello t.nb ~now:(ctx.now ()) m with
    | `New ->
      revive t m.Msg.origin;
      Neighbor.bump_version t.nb;
      t.topo_gen <- t.topo_gen + 1;
      t.lsa_countdown <- 0
    | `Known -> ()
    | exception Wire.Truncated -> ());
    Some Alg.Consume
  | k when k = Neighbor.lsa_kind ->
    (match Neighbor.on_lsa t.nb m with
    | `Fresh ->
      t.topo_gen <- t.topo_gen + 1;
      List.iter
        (fun p ->
          if not (NI.equal p m.Msg.origin) then ctx.send (Msg.share m) p)
        (hello_targets t ctx)
    | `Stale -> ()
    | exception Wire.Truncated -> ());
    Some Alg.Consume
  | k when k = setup_kind ->
    on_setup t ctx m;
    Some Alg.Consume
  | k when k = nack_kind ->
    on_nack t ctx m;
    Some Alg.Consume
  | k when k = open_kind ->
    on_bp_open t ctx m;
    Some Alg.Consume
  | Mt.Link_failed ->
    on_link_failed t ctx m;
    Some Alg.Consume
  | Mt.Broken_source ->
    drop_app t m.Msg.app;
    Some Alg.Consume
  | _ -> None

let algorithm t =
  Ialg.make ~name:"router"
    ~on_start:(fun ctx ->
      do_tick t ctx;
      tick_loop t ctx)
    ~on_ready:(fun ctx _peer ->
      if t.t_mode = Backpressure then bp_drain t ctx)
    (handle t)
