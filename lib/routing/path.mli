(** Deterministic path computation over a gossiped topology snapshot.

    All functions are pure and total over an adjacency-list graph. The
    graph is treated as undirected (a link advertised by either end
    connects both), matching the engine's persistent-connection model
    where routed sessions pre-establish both directions. Determinism is
    part of the contract: adjacency is explored in {!Iov_msg.Node_id}
    order, so every node computing over the same snapshot derives the
    same paths regardless of gossip arrival order. *)

type graph = (Iov_msg.Node_id.t * Iov_msg.Node_id.t list) list
(** Adjacency lists, as assembled from link-state gossip. Neither the
    outer list nor the inner lists need to be sorted or symmetric. *)

val shortest :
  graph ->
  ?avoid:Iov_msg.Node_id.t list ->
  src:Iov_msg.Node_id.t ->
  dst:Iov_msg.Node_id.t ->
  unit ->
  Iov_msg.Node_id.t list option
(** BFS shortest path, as the hop list {e after} [src] up to and
    including [dst] ([Some []] when [src = dst]). Nodes in [avoid] are
    removed from the graph first. Ties break toward lower node ids. *)

val k_disjoint :
  graph ->
  ?avoid:Iov_msg.Node_id.t list ->
  k:int ->
  src:Iov_msg.Node_id.t ->
  dst:Iov_msg.Node_id.t ->
  unit ->
  Iov_msg.Node_id.t list list
(** Up to [k] pairwise edge-disjoint paths from [src] to [dst], by
    successive shortest-path extraction (each round removes the edges
    the previous path used, in both directions). Returns fewer than [k]
    paths when the graph runs out of disjoint capacity, and [[]] when
    [dst] is unreachable. Paths are hop lists as in {!shortest}, in
    extraction order — the first is a true shortest path. *)

val distances :
  graph -> dst:Iov_msg.Node_id.t -> (Iov_msg.Node_id.t * int) list
(** BFS hop counts toward [dst] for every node that can reach it,
    sorted by node id — the potential field the backpressure forwarder
    descends. *)
