(** Status updates sent by every engine to the observer.

    Per the paper: "the observer periodically sends it a request
    message to request for status updates, which include lengths of all
    engine buffers, measurements of QoS metrics, and the list of
    upstream and downstream nodes". *)

type link_stat = {
  peer : Node_id.t;
  rate : float;  (** measured throughput, bytes/second *)
  queued : int;  (** buffer occupancy on this side of the link *)
  buffer_capacity : int;
}

type t = {
  node : Node_id.t;
  time : float;  (** node-local time of the snapshot *)
  upstreams : link_stat list;
  downstreams : link_stat list;
  bytes_lost : int;
  messages_lost : int;
  metrics : Bytes.t option;
      (** opaque telemetry metrics snapshot
          ({!Iov_telemetry.Metrics.to_blob}); carried as a version-gated
          trailing extension of the payload, so status reports remain
          wire-compatible in both directions with nodes predating the
          field *)
}

val to_payload : t -> Bytes.t

val of_payload : Bytes.t -> t
(** @raise Wire.Truncated on malformed input. *)

val pp : Format.formatter -> t -> unit
