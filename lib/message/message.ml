type t = {
  mtype : Mtype.t;
  origin : Node_id.t;
  app : int;
  mutable seq : int;
  payload : Bytes.t;
  mutable wire : Bytes.t option; (* memoized encoding, managed by Codec *)
}

let header_size = 24

let make ~mtype ~origin ~app ~seq payload =
  { mtype; origin; app; seq; payload; wire = None }

let data ~origin ~app ~seq payload =
  make ~mtype:Mtype.Data ~origin ~app ~seq payload

let control ~mtype ~origin ?(app = 0) ?(seq = 0) payload =
  make ~mtype ~origin ~app ~seq payload

let size t = header_size + Bytes.length t.payload
let payload_size t = Bytes.length t.payload

let set_seq t seq =
  t.seq <- seq;
  t.wire <- None

let clone t = { t with payload = Bytes.copy t.payload; wire = None }

(* A fresh header over the same payload bytes. The wire cache carries
   over: it describes content the two messages share until either one
   changes its header via [set_seq], which drops its own cache. *)
let share t = { t with wire = t.wire }

let wire_cache t = t.wire
let set_wire_cache t w = t.wire <- Some w

let with_params ~mtype ~origin ?(app = 0) ?(seq = 0) p1 p2 =
  let payload = Bytes.create 8 in
  Bytes.set_int32_be payload 0 (Int32.of_int p1);
  Bytes.set_int32_be payload 4 (Int32.of_int p2);
  make ~mtype ~origin ~app ~seq payload

let params t =
  if Bytes.length t.payload < 8 then None
  else
    Some
      ( Int32.to_int (Bytes.get_int32_be t.payload 0),
        Int32.to_int (Bytes.get_int32_be t.payload 4) )

let string_payload t = Bytes.to_string t.payload

let pp fmt t =
  Format.fprintf fmt "[%a from %a app=%d seq=%d %dB]" Mtype.pp t.mtype
    Node_id.pp t.origin t.app t.seq (Bytes.length t.payload)
