(** The iOverlay application-layer message (paper Fig. 3).

    A message has a fixed 24-byte header — type, original sender
    (IP + port), application identifier, a modifiable sequence number,
    payload size — followed by the payload. Content is mostly
    immutable and initialized at construction; only [seq] may change
    in place. *)

type t = private {
  mtype : Mtype.t;
  origin : Node_id.t;  (** original sender *)
  app : int;  (** application the message belongs to *)
  mutable seq : int;  (** modifiable sequence number *)
  payload : Bytes.t;
  mutable wire : Bytes.t option;
      (** memoized wire encoding; managed by [Codec.wire], invalidated
          by {!set_seq} *)
}

val header_size : int
(** 24 bytes. *)

val make :
  mtype:Mtype.t -> origin:Node_id.t -> app:int -> seq:int -> Bytes.t -> t
(** General constructor. The payload is aliased, not copied — per the
    paper's zero-copy discipline, a constructed message's content is
    owned by the engine from then on. *)

val data : origin:Node_id.t -> app:int -> seq:int -> Bytes.t -> t
val control : mtype:Mtype.t -> origin:Node_id.t -> ?app:int -> ?seq:int ->
  Bytes.t -> t

val size : t -> int
(** Wire size: header + payload length. *)

val payload_size : t -> int

val set_seq : t -> int -> unit

val clone : t -> t
(** Deep copy — the paper's [Msg] copy constructor. Needed only when
    the payload bytes themselves will be mutated; for plain re-sending
    prefer {!share}. *)

val share : t -> t
(** Zero-copy fanout constructor: a fresh header record over the {e
    same} payload bytes. Safe under the engine's ownership rule —
    payload bytes are immutable once a message is constructed (only
    [seq] may change, and it lives in the header) — so one switched
    message can ride every out-link without a per-destination copy. *)

val wire_cache : t -> Bytes.t option
(** The memoized wire encoding, if [Codec.wire] has produced one. *)

val set_wire_cache : t -> Bytes.t -> unit
(** Install the memoized encoding. Intended for [Codec.wire] only. *)

val with_params : mtype:Mtype.t -> origin:Node_id.t -> ?app:int ->
  ?seq:int -> int -> int -> t
(** A control message whose payload carries two integer parameters —
    the observer's generic algorithm-specific command format. *)

val params : t -> (int * int) option
(** Reads back the two integer parameters, or [None] if the payload is
    too short. *)

val string_payload : t -> string
val pp : Format.formatter -> t -> unit
