type t =
  | Data
  | Boot
  | Boot_reply
  | Request
  | Status
  | Trace
  | S_deploy
  | S_terminate
  | Broken_source
  | Up_throughput
  | Down_throughput
  | Link_failed
  | S_query
  | S_query_ack
  | S_announce
  | S_join
  | S_leave
  | S_aware
  | S_federate
  | S_assign
  | Set_bandwidth
  | Terminate_node
  | Custom of int

let custom_base = 1000

let custom n =
  if n < 0 then
    invalid_arg
      (Printf.sprintf
         "Mtype.custom: tag %d would encode below custom_base (%d)" n
         custom_base);
  Custom n

let to_int = function
  | Data -> 0
  | Boot -> 1
  | Boot_reply -> 2
  | Request -> 3
  | Status -> 4
  | Trace -> 5
  | S_deploy -> 6
  | S_terminate -> 7
  | Broken_source -> 8
  | Up_throughput -> 9
  | Down_throughput -> 10
  | Link_failed -> 11
  | S_query -> 12
  | S_query_ack -> 13
  | S_announce -> 14
  | S_join -> 15
  | S_leave -> 16
  | S_aware -> 17
  | S_federate -> 18
  | S_assign -> 19
  | Set_bandwidth -> 20
  | Terminate_node -> 21
  | Custom n ->
    (* a negative tag would encode into (or below) the builtin range and
       decode as an unrelated type — reject it rather than alias *)
    if n < 0 then
      invalid_arg
        (Printf.sprintf "Mtype.to_int: custom tag %d below custom_base" n);
    custom_base + n

let of_int = function
  | 0 -> Data
  | 1 -> Boot
  | 2 -> Boot_reply
  | 3 -> Request
  | 4 -> Status
  | 5 -> Trace
  | 6 -> S_deploy
  | 7 -> S_terminate
  | 8 -> Broken_source
  | 9 -> Up_throughput
  | 10 -> Down_throughput
  | 11 -> Link_failed
  | 12 -> S_query
  | 13 -> S_query_ack
  | 14 -> S_announce
  | 15 -> S_join
  | 16 -> S_leave
  | 17 -> S_aware
  | 18 -> S_federate
  | 19 -> S_assign
  | 20 -> Set_bandwidth
  | 21 -> Terminate_node
  | n ->
    (* codes in the gap between the builtins and [custom_base] (and
       negative codes) are produced by no [to_int]: refuse them instead
       of fabricating a [Custom] with an unencodable negative tag *)
    if n < custom_base then
      invalid_arg (Printf.sprintf "Mtype.of_int: unknown control code %d" n);
    Custom (n - custom_base)

module Registry = struct
  (* tag -> (owner, name) *)
  let claims : (int, string * string) Hashtbl.t = Hashtbl.create 16

  let claimed tag = Hashtbl.find_opt claims tag

  let register ~owner ~name tag =
    (match Hashtbl.find_opt claims tag with
    | Some (o, n) when o = owner && n = name -> ()
    | Some (o, n) ->
      invalid_arg
        (Printf.sprintf
           "Mtype.Registry.register: Custom %d (%s/%s) already claimed by \
            %s/%s"
           tag owner name o n)
    | None -> Hashtbl.replace claims tag (owner, name));
    custom tag

  let all () =
    Hashtbl.fold (fun tag (o, n) acc -> (tag, o, n) :: acc) claims []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
end

let is_data = function Data -> true | _ -> false
let is_control t = not (is_data t)

let to_string = function
  | Data -> "data"
  | Boot -> "boot"
  | Boot_reply -> "bootReply"
  | Request -> "request"
  | Status -> "status"
  | Trace -> "trace"
  | S_deploy -> "sDeploy"
  | S_terminate -> "sTerminate"
  | Broken_source -> "BrokenSource"
  | Up_throughput -> "UpThroughput"
  | Down_throughput -> "DownThroughput"
  | Link_failed -> "LinkFailed"
  | S_query -> "sQuery"
  | S_query_ack -> "sQueryAck"
  | S_announce -> "sAnnounce"
  | S_join -> "sJoin"
  | S_leave -> "sLeave"
  | S_aware -> "sAware"
  | S_federate -> "sFederate"
  | S_assign -> "sAssign"
  | Set_bandwidth -> "setBandwidth"
  | Terminate_node -> "terminateNode"
  | Custom n -> Printf.sprintf "custom(%d)" n

let pp fmt t = Format.pp_print_string fmt (to_string t)

let all_builtin =
  [
    Data;
    Boot;
    Boot_reply;
    Request;
    Status;
    Trace;
    S_deploy;
    S_terminate;
    Broken_source;
    Up_throughput;
    Down_throughput;
    Link_failed;
    S_query;
    S_query_ack;
    S_announce;
    S_join;
    S_leave;
    S_aware;
    S_federate;
    S_assign;
    Set_bandwidth;
    Terminate_node;
  ]
