(** Wire codec for iOverlay messages.

    The header layout follows paper Fig. 3 exactly: six big-endian
    32-bit fields — message type, original sender IP, original sender
    port, application identifier, sequence number, payload size —
    followed by the raw payload. *)

exception Malformed of string

val encode : Message.t -> Bytes.t

val wire : Message.t -> Bytes.t
(** The message's memoized wire encoding — encoded at most once, then
    shared by every caller (and across [Message.share] copies made
    before the first encode). The returned buffer must not be mutated.
    [Message.set_seq] invalidates the memo. *)

val encode_into : Message.t -> Bytes.t -> int -> int
(** [encode_into m buf off] writes at [off], returns bytes written.
    @raise Invalid_argument if [buf] is too small. *)

val decode : Bytes.t -> Message.t
(** Decodes a complete message. @raise Malformed on truncated input,
    trailing garbage, or an invalid header. *)

val decode_at : Bytes.t -> int -> Message.t * int
(** [decode_at buf off] returns the message and the offset just past
    it. @raise Malformed if no complete message starts at [off]. *)

val max_payload : int
(** A sanity cap (16 MiB) on the declared payload size; larger values
    are rejected as malformed rather than allocated. *)

(** Incremental decoder for byte streams (TCP connections deliver
    arbitrary chunk boundaries). *)
module Stream : sig
  type t

  val create : unit -> t

  val feed : t -> ?off:int -> ?len:int -> Bytes.t -> unit
  (** Appends a chunk (copied). *)

  val reserve : t -> int -> Bytes.t * int
  (** [reserve t n] returns [(buf, off)] such that [n] bytes may be
      written at [buf.(off)] — the stream's own free tail, compacted or
      grown as needed. A socket read can therefore land directly in the
      decode buffer, with no intermediate chunk copy. The region is
      invalidated by any other stream operation; follow the write with
      {!commit}. Decoded message payloads are copied out by {!next}, so
      they never alias this buffer across reuses.
      @raise Invalid_argument if [n <= 0]. *)

  val commit : t -> int -> unit
  (** [commit t n] declares that [n] bytes were written into the region
      returned by the matching {!reserve}, making them available to
      {!next}. @raise Invalid_argument if [n] is negative or overruns
      the reserved space. *)

  val next : t -> Message.t option
  (** Pops the next complete message, if buffered. Consumption advances
      a read cursor; the consumed prefix is compacted away lazily, so
      draining a deep buffer is linear in its size.
      @raise Malformed if the buffered prefix cannot be a message. *)

  val drain : t -> Message.t list
  (** Pops all complete messages, in arrival order. *)

  val buffered : t -> int
  (** Bytes currently buffered but not yet decoded. *)
end
