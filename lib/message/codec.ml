exception Malformed of string

let max_payload = 16 * 1024 * 1024
let header_size = Message.header_size

let encode_into (m : Message.t) buf off =
  let plen = Bytes.length m.payload in
  let total = header_size + plen in
  if Bytes.length buf - off < total then
    invalid_arg "Codec.encode_into: buffer too small";
  Bytes.set_int32_be buf off (Int32.of_int (Mtype.to_int m.mtype));
  Bytes.set_int32_be buf (off + 4) m.origin.ip;
  Bytes.set_int32_be buf (off + 8) (Int32.of_int m.origin.port);
  Bytes.set_int32_be buf (off + 12) (Int32.of_int m.app);
  Bytes.set_int32_be buf (off + 16) (Int32.of_int m.seq);
  Bytes.set_int32_be buf (off + 20) (Int32.of_int plen);
  Bytes.blit m.payload 0 buf (off + header_size) plen;
  total

let encode m =
  let buf = Bytes.create (Message.size m) in
  let _ = encode_into m buf 0 in
  buf

(* The shared (memoized) encoding: computed once, then reused by every
   out-link the message rides. Callers must treat the result as
   immutable — it is the same buffer across all sharers. [set_seq]
   invalidates the cache, so a re-sequenced message re-encodes. *)
let wire m =
  match Message.wire_cache m with
  | Some w -> w
  | None ->
    let w = encode m in
    Message.set_wire_cache m w;
    w

let decode_at buf off =
  let avail = Bytes.length buf - off in
  if avail < header_size then raise (Malformed "truncated header");
  let mtype =
    match Mtype.of_int (Int32.to_int (Bytes.get_int32_be buf off)) with
    | m -> m
    | exception Invalid_argument _ -> raise (Malformed "unknown message type")
  in
  let ip = Bytes.get_int32_be buf (off + 4) in
  let port = Int32.to_int (Bytes.get_int32_be buf (off + 8)) in
  if port < 0 || port > 0xffff then raise (Malformed "bad port");
  let app = Int32.to_int (Bytes.get_int32_be buf (off + 12)) in
  let seq = Int32.to_int (Bytes.get_int32_be buf (off + 16)) in
  let plen = Int32.to_int (Bytes.get_int32_be buf (off + 20)) in
  if plen < 0 || plen > max_payload then raise (Malformed "bad payload size");
  if avail < header_size + plen then raise (Malformed "truncated payload");
  let payload = Bytes.sub buf (off + header_size) plen in
  let origin = Node_id.make ~ip ~port in
  (Message.make ~mtype ~origin ~app ~seq payload, off + header_size + plen)

let decode buf =
  let m, stop = decode_at buf 0 in
  if stop <> Bytes.length buf then raise (Malformed "trailing bytes");
  m

module Stream = struct
  (* [buf.(pos .. len)] holds the undecoded bytes. [next] only advances
     the read cursor; the consumed prefix is reclaimed lazily — for
     free when the buffer empties, otherwise by compacting on [feed]
     before growing. Draining a buffer holding q queued messages is
     therefore O(total bytes), where the old blit-the-tail-per-message
     scheme was O(q · total bytes). *)
  type t = { mutable buf : Bytes.t; mutable pos : int; mutable len : int }

  let create () = { buf = Bytes.create 4096; pos = 0; len = 0 }
  let buffered t = t.len - t.pos

  let feed t ?(off = 0) ?len chunk =
    let n = match len with Some n -> n | None -> Bytes.length chunk - off in
    if n < 0 || off < 0 || off + n > Bytes.length chunk then
      invalid_arg "Codec.Stream.feed";
    let live = buffered t in
    if t.len + n > Bytes.length t.buf then begin
      (* reclaim the consumed prefix first; grow only if the live tail
         plus the chunk genuinely exceed capacity *)
      let needed = live + n in
      if needed > Bytes.length t.buf then begin
        let cap = ref (Bytes.length t.buf) in
        while !cap < needed do
          cap := !cap * 2
        done;
        let fresh = Bytes.create !cap in
        Bytes.blit t.buf t.pos fresh 0 live;
        t.buf <- fresh
      end
      else Bytes.blit t.buf t.pos t.buf 0 live;
      t.pos <- 0;
      t.len <- live
    end;
    Bytes.blit chunk off t.buf t.len n;
    t.len <- t.len + n

  (* Zero-copy fill: hand the caller the stream's own free tail so a
     socket read can land directly in the decode buffer, skipping the
     bounce through a per-read chunk. Same compaction/growth discipline
     as [feed]. The returned region is only valid until the next
     stream operation. *)
  let reserve t n =
    if n <= 0 then invalid_arg "Codec.Stream.reserve";
    let live = buffered t in
    if t.len + n > Bytes.length t.buf then begin
      let needed = live + n in
      if needed > Bytes.length t.buf then begin
        let cap = ref (Bytes.length t.buf) in
        while !cap < needed do
          cap := !cap * 2
        done;
        let fresh = Bytes.create !cap in
        Bytes.blit t.buf t.pos fresh 0 live;
        t.buf <- fresh
      end
      else Bytes.blit t.buf t.pos t.buf 0 live;
      t.pos <- 0;
      t.len <- live
    end;
    (t.buf, t.len)

  let commit t n =
    if n < 0 || t.len + n > Bytes.length t.buf then
      invalid_arg "Codec.Stream.commit";
    t.len <- t.len + n

  (* Peek at a complete message at the cursor without copying the tail. *)
  let head_message t =
    if buffered t < header_size then None
    else begin
      let plen = Int32.to_int (Bytes.get_int32_be t.buf (t.pos + 20)) in
      if plen < 0 || plen > max_payload then
        raise (Malformed "bad payload size");
      if buffered t < header_size + plen then None
      else begin
        let m, stop = decode_at t.buf t.pos in
        Some (m, stop)
      end
    end

  let next t =
    match head_message t with
    | None -> None
    | Some (m, stop) ->
      t.pos <- stop;
      if t.pos = t.len then begin
        t.pos <- 0;
        t.len <- 0
      end;
      Some m

  let drain t =
    let rec loop acc =
      match next t with None -> List.rev acc | Some m -> loop (m :: acc)
    in
    loop []
end
