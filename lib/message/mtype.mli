(** Application-layer message types.

    The first header field of every iOverlay message is its type. The
    variants below cover the engine/observer protocol from Section 2
    and the algorithm-level types used by the paper's case studies
    (Section 3); [Custom] carries algorithm-specific control types, as
    the observer "is also able to send new types of algorithm-specific
    control messages". *)

type t =
  | Data  (** application data; the only type an algorithm must handle *)
  | Boot  (** node -> observer bootstrap request *)
  | Boot_reply  (** observer -> node: random subset of alive nodes *)
  | Request  (** observer -> node: request for a status update *)
  | Status  (** node -> observer: buffers, QoS, upstream/downstreams *)
  | Trace  (** node -> observer: debugging/log record *)
  | S_deploy  (** observer -> node: deploy an application source *)
  | S_terminate  (** observer -> node: terminate an application source *)
  | Broken_source  (** upstream -> downstream: source above has failed *)
  | Up_throughput  (** engine -> algorithm: throughput from an upstream *)
  | Down_throughput  (** engine -> algorithm: throughput to a downstream *)
  | Link_failed  (** engine -> algorithm: a peer or link has failed *)
  | S_query  (** tree construction: locate a node in the session *)
  | S_query_ack  (** tree construction: join acknowledgement *)
  | S_announce  (** session announcement carrying the source id *)
  | S_join  (** observer -> node: join an application session *)
  | S_leave  (** observer -> node: leave an application session *)
  | S_aware  (** sFlow: disseminate existence of a new service *)
  | S_federate  (** sFlow: federate a complex service requirement *)
  | S_assign  (** observer -> node: host a service instance *)
  | Set_bandwidth  (** observer -> node: adjust emulated bandwidth *)
  | Terminate_node  (** observer -> node: terminate the whole node *)
  | Custom of int  (** algorithm-specific control type *)

val custom_base : int
(** First wire code of the [Custom] range (1000): [Custom n] encodes as
    [custom_base + n]. *)

val custom : int -> t
(** Checked construction of algorithm-specific types. @raise
    Invalid_argument on a negative tag, which would encode into the
    builtin code range and decode as an unrelated type. *)

val to_int : t -> int
(** @raise Invalid_argument on a [Custom] tag below 0 (its code would
    fall below {!custom_base}) — build custom types with {!custom}. *)

val of_int : int -> t
(** Codes at or above {!custom_base} decode as [Custom]; codes in the
    unassigned gap between the builtins and {!custom_base} come from no
    encoder. @raise Invalid_argument on such unknown codes. *)

(** Central claim table for the [Custom] tag space, so independently
    developed subsystems (routing, gossip, applications) cannot silently
    reuse each other's control-message codes. Claims live for the
    process: each subsystem claims its tags at module initialization. *)
module Registry : sig
  val register : owner:string -> name:string -> int -> t
  (** [register ~owner ~name tag] claims [Custom tag] and returns it.
      Re-registering the exact same [(owner, name, tag)] claim is
      idempotent. @raise Invalid_argument if the tag is already claimed
      under a different owner or name (a collision), or if the tag is
      negative (via {!custom}). *)

  val claimed : int -> (string * string) option
  (** [(owner, name)] of a claimed tag. *)

  val all : unit -> (int * string * string) list
  (** Every claim, ascending by tag — the process-wide mtype table. *)
end

val is_data : t -> bool

val is_control : t -> bool
(** Everything except [Data] travels on the control path (the node's
    publicized port) rather than through the switch buffers. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val all_builtin : t list
(** Every non-[Custom] constructor, for exhaustive tests. *)
