type link_stat = {
  peer : Node_id.t;
  rate : float;
  queued : int;
  buffer_capacity : int;
}

type t = {
  node : Node_id.t;
  time : float;
  upstreams : link_stat list;
  downstreams : link_stat list;
  bytes_lost : int;
  messages_lost : int;
  metrics : Bytes.t option;
}

(* Trailing-extension version tag for the optional metrics blob. Old
   readers stop after [messages_lost] and never see it; old payloads
   simply end there, so [of_payload] decodes them with [metrics =
   None]. Bump and match on new tags to extend the format again. *)
let ext_metrics = 1

let write_link w (l : link_stat) =
  Wire.W.node w l.peer;
  Wire.W.float w l.rate;
  Wire.W.int32 w l.queued;
  Wire.W.int32 w l.buffer_capacity

let read_link r =
  let peer = Wire.R.node r in
  let rate = Wire.R.float r in
  let queued = Wire.R.int32 r in
  let buffer_capacity = Wire.R.int32 r in
  { peer; rate; queued; buffer_capacity }

let to_payload t =
  let w = Wire.W.create () in
  Wire.W.node w t.node;
  Wire.W.float w t.time;
  Wire.W.int32 w (List.length t.upstreams);
  List.iter (write_link w) t.upstreams;
  Wire.W.int32 w (List.length t.downstreams);
  List.iter (write_link w) t.downstreams;
  Wire.W.int32 w t.bytes_lost;
  Wire.W.int32 w t.messages_lost;
  (match t.metrics with
  | None -> ()
  | Some blob ->
    Wire.W.int32 w ext_metrics;
    Wire.W.string w (Bytes.to_string blob));
  Wire.W.contents w

let of_payload buf =
  let r = Wire.R.of_bytes buf in
  let node = Wire.R.node r in
  let time = Wire.R.float r in
  let n_up = Wire.R.int32 r in
  if n_up < 0 then raise Wire.Truncated;
  let upstreams = List.init n_up (fun _ -> read_link r) in
  let n_down = Wire.R.int32 r in
  if n_down < 0 then raise Wire.Truncated;
  let downstreams = List.init n_down (fun _ -> read_link r) in
  let bytes_lost = Wire.R.int32 r in
  let messages_lost = Wire.R.int32 r in
  let metrics =
    if Wire.R.remaining r > 0 && Wire.R.int32 r = ext_metrics then
      Some (Bytes.of_string (Wire.R.string r))
    else None
  in
  { node; time; upstreams; downstreams; bytes_lost; messages_lost; metrics }

let pp fmt t =
  let pp_link fmt l =
    Format.fprintf fmt "%a@%.1fKBps(%d/%d)" Node_id.pp l.peer
      (l.rate /. 1024.) l.queued l.buffer_capacity
  in
  Format.fprintf fmt "@[<v>status of %a at %.2fs@ up: %a@ down: %a@ lost: %dB/%dmsg@]"
    Node_id.pp t.node t.time
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_link)
    t.upstreams
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_link)
    t.downstreams t.bytes_lost t.messages_lost
