(** Gossip membership experiment: failure-detection latency and
    control-plane overhead of the SWIM/peer-sampling subsystem versus
    the centralized observer-polling baseline, across overlay sizes.

    Each variant boots an [n]-node overlay, kills a seeded fraction of
    it at once, and measures (a) how long until every surviving
    member's view has dropped every victim and (b) control bytes per
    node per second. The gossip variant bootstraps off one seed member
    with zero observer traffic; the baseline boots every node through
    the observer and polls. *)

type built = {
  b_net : Iov_core.Network.t;
  b_ids : Iov_msg.Node_id.t array;
  b_gossips : Iov_gossip.Gossip.t option array;
      (** [None] while a node is down *)
  b_names : string list;  (** ["n0"; "n1"; ...] for chaos scenarios *)
  b_resolve : string -> Iov_msg.Node_id.t option;
  b_spawn : string -> unit;  (** respawn hook: rejoin off the seed *)
}

val build :
  ?seed:int ->
  ?telemetry:Iov_telemetry.Telemetry.t ->
  ?probe_period:float ->
  ?probe_timeout:float ->
  ?suspicion_timeout:float ->
  n:int ->
  unit ->
  built
(** An [n]-node gossip overlay, every node bootstrapping off node 0
    through the engine-level [~seeds] join hook — no observer. *)

type row = {
  r_n : int;
  r_variant : string;
  r_detect : float;
      (** seconds from the kill to overlay-wide detection; [nan] if
          never inside the horizon *)
  r_bytes_per_node_s : float;  (** control overhead *)
  r_boot_bytes : int;  (** observer bootstrap traffic (0 for gossip) *)
}

type result = { rows : row list; seed : int; kill_frac : float }

val run :
  ?quiet:bool ->
  ?seed:int ->
  ?sizes:int list ->
  ?kill_frac:float ->
  ?kill_at:float ->
  ?horizon:float ->
  unit ->
  result
(** The full comparison (default sizes 32, 128 and 512, 10% killed). *)

val smoke : ?quiet:bool -> ?seed:int -> unit -> bool
(** The acceptance run: a 128-node overlay under a seeded 10%-kill
    chaos scenario must satisfy the [membership-converges] invariant;
    every surviving view must equal the surviving membership exactly;
    observer bootstrap bytes must be zero (a passive digest-fed
    listener rides along); and two same-seed runs must produce
    identical telemetry digests. *)
