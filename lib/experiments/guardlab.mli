(** The overload-guard lab: one guarded routed overlay under seeded
    abuse — a first-hop kill, transient loss and a hard squeeze of
    every source uplink — exercising all four {!Iov_guard} pieces at
    once. Circuit breakers trip on the dead hop and close when the
    watchdog's respawn brings its heartbeats back; admission sheds the
    bulk stream strictly before the interactive one while the squeeze
    lasts; the replay ring stays under its byte budget throughout.

    {!run} compares the guarded overlay against the same overlay bare
    (no admission, no watchdog, unlimited replay); {!smoke} is the
    seeded acceptance gate behind [iover guard --smoke]. *)

val app_hi : int
(** Application id of the interactive (high-priority) stream. *)

val app_lo : int
(** Application id of the bulk (low-priority, first-shed) stream. *)

type built = {
  g_net : Iov_core.Network.t;
  g_ids : Iov_msg.Node_id.t array;
  g_routers : Iov_routing.Router.t ref array;
      (** replaced in place when the watchdog respawns a node *)
  g_dog : Iov_guard.Watchdog.t option;  (** [None] when built unguarded *)
  g_src : int;
  g_dst : int;
  g_names : string list;  (** every node, as [n0..n(n-1)] *)
  g_nodes : string list;  (** chaos-eligible: everyone but src and dst *)
  g_resolve : string -> Iov_msg.Node_id.t option;
  g_spawn : string -> unit;
}

val build :
  ?seed:int ->
  ?telemetry:Iov_telemetry.Telemetry.t ->
  ?rate:float ->
  ?retransmit_budget:int ->
  ?guarded:bool ->
  ?wedge_after:float ->
  ?open_at:float ->
  n:int ->
  unit ->
  built
(** A degree-4 ring-plus-chords overlay of [n >= 5] multipath (k=2)
    routers with a [retransmit_budget]-byte replay ceiling (default
    256 KiB), carrying two constant-rate sessions ([rate] B/s each,
    default 24 KiB/s) from node 0 to node [n/2]: {!app_hi} at priority
    2 and {!app_lo} at priority 1, with unclassified (control) traffic
    defaulted above both. When [guarded] (default), every node gets an
    {!Iov_guard.Admission} hook and a shared {!Iov_guard.Watchdog}
    supervises all switch counters, respawning any node whose counter
    freezes for [wedge_after] seconds (default 1.5) while a sibling's
    advances. *)

type row = {
  r_variant : string;
  r_hi_rate : float;  (** interactive goodput through the overload, B/s *)
  r_lo_rate : float;
  r_shed_lo : int;
  r_shed_hi : int;
  r_peak_backlog : int;  (** worst source sender backlog, messages *)
  r_retx_bytes : int;
  r_suppressed : int;
  r_wedged : int;
}

type result = { rows : row list; n : int; seed : int }

val run : ?quiet:bool -> ?seed:int -> ?n:int -> unit -> result
(** Runs the guarded and bare variants through the same seeded abuse
    and prints the comparison: what each stream kept delivering, who
    was shed, what the replay ring spent, and how many respawns the
    watchdog fired. *)

val smoke_budget : int
(** The replay-ring byte budget the smoke run is held to. *)

val smoke : ?quiet:bool -> ?seed:int -> unit -> bool
(** The CI gate. Two identical seeded runs of the full abuse scenario;
    passes iff the chaos invariants hold (breakers cycle, sheds in
    priority order, retransmit bytes bounded, recovery after heal),
    breakers demonstrably opened and closed, the bulk stream was shed,
    the watchdog respawned the killed hop, the replay ring stayed
    under {!smoke_budget}, and the two runs' telemetry digests are
    byte-identical. *)
