(** The routing laboratory: single-tree vs backpressure vs k-multipath
    under failure, on the PlanetLab substrate.

    Each variant runs the same experiment: a ring-plus-chords overlay
    (every node linked to its ring neighbors and second neighbors, so
    two edge-disjoint paths exist between any pair), a constant-rate
    session from node 0 to the antipodal node, and a mid-session kill
    of the first hop of the session's primary path. Unique (post-dedup)
    goodput at the receiver is sampled over a window before the kill
    and again after a settle interval; the ratio is the variant's
    recovery score.

    The run is fully deterministic under [seed]: same seed, same
    tables, byte for byte. *)

type variant =
  | Static  (** one pinned path, no repair — the single-tree baseline *)
  | Backpressure
  | Multi of int  (** k edge-disjoint dissemination with dedup *)

val variant_name : variant -> string

type row = {
  variant : variant;
  pre_rate : float;  (** unique goodput before the kill, bytes/s *)
  post_rate : float;  (** unique goodput after settle, bytes/s *)
  recovery : float;  (** post / pre; 0 when pre is 0 *)
  dups : int;
  route_changes : int;
  path_switches : int;
  nacks : int;
  retransmits : int;
}

type result = {
  rows : row list;
  n : int;
  seed : int;
  victim : string;  (** the killed node, ["n<i>"] *)
  kill_at : float;
}

(** A built routed overlay, exposed so the chaos laboratory can aim
    scenarios at the same workload. *)
type net = {
  r_net : Iov_core.Network.t;
  r_ids : Iov_msg.Node_id.t array;  (** index [i] is node ["n<i>"] *)
  r_routers : Iov_routing.Router.t array;
  r_app : int;
  r_src : int;  (** index of the session source (0) *)
  r_dst : int;  (** index of the session destination (n/2) *)
}

val build :
  ?seed:int ->
  ?telemetry:Iov_telemetry.Telemetry.t ->
  ?rate:float ->
  ?open_at:float ->
  mode:Iov_routing.Router.mode ->
  n:int ->
  unit ->
  net
(** Builds the ring-plus-chords overlay with one router per node and
    schedules the session open at [open_at] (default 1.0 s) — gossip
    needs a beat to converge first. [rate] defaults to 16 KiB/s.
    @raise Invalid_argument if [n < 5]. *)

val run :
  ?quiet:bool ->
  ?seed:int ->
  ?n:int ->
  ?kill_at:float ->
  ?settle:float ->
  ?window:float ->
  ?variants:variant list ->
  unit ->
  result
(** The full comparison (defaults: [n] = 16, [kill_at] = 8.0,
    [settle] = 4.0, [window] = 2.0, all four variants). With [quiet]
    the table printing is suppressed. *)

val smoke : unit -> bool
(** The CI gate: a small, fast run asserting that the [Multi 2]
    variant retains at least 90% of its pre-kill goodput while the
    [Static] baseline drops to zero. Prints a verdict; true on pass. *)
