module Network = Iov_core.Network
module Topo = Iov_topo.Topo
module Table = Iov_stats.Table

let kbps x = x *. 1024.
let to_kbps x = x /. 1024.

type flood_net = {
  net : Network.t;
  topo : Topo.t;
  source : Iov_algos.Source.t;
  app : int;
}

let build_flood ?(buffer_capacity = 5) ?(seed = 42) ?payload_size ?telemetry
    ~topo ~source () =
  let net = Network.create ~seed ~buffer_capacity ?telemetry () in
  let app = 1 in
  let src_downs = List.map (Topo.node topo) (Topo.downstreams topo source) in
  let src =
    Iov_algos.Source.create ?payload_size ~app ~dests:src_downs ()
  in
  List.iter
    (fun name ->
      let spec = Topo.spec topo name in
      let alg =
        if name = source then Iov_algos.Source.algorithm src
        else begin
          let f = Iov_algos.Flood.create () in
          Iov_algos.Flood.set_route f ~app
            ~upstreams:(List.map (Topo.node topo) (Topo.upstreams topo name))
            ~downstreams:
              (List.map (Topo.node topo) (Topo.downstreams topo name))
            ();
          Iov_algos.Flood.algorithm f
        end
      in
      ignore (Network.add_node net ~bw:spec.Topo.bw ~id:spec.Topo.nid alg))
    (Topo.names topo);
  (* pre-establish the persistent connections so link metrics exist *)
  List.iter (fun (a, b) -> Network.connect net a b) (Topo.edge_ids topo);
  { net; topo; source = src; app }

let telemetry f = Network.telemetry f.net

let save_trace f path =
  match Network.telemetry f.net with
  | None -> None
  | Some tl -> Some (Iov_telemetry.Telemetry.save_jsonl tl path)

let edge_rates f =
  List.map
    (fun (a, b) ->
      let rate =
        Network.link_throughput f.net ~src:(Topo.node f.topo a)
          ~dst:(Topo.node f.topo b)
      in
      ((a, b), rate))
    f.topo.Topo.edges

let edge_rate f a b =
  Network.link_throughput f.net ~src:(Topo.node f.topo a)
    ~dst:(Topo.node f.topo b)

let print_edge_rates ?(label = "") ?note f =
  if label <> "" then Printf.printf "%s\n" label;
  let rows =
    List.map
      (fun ((a, b), rate) ->
        let alive =
          Network.link_exists f.net ~src:(Topo.node f.topo a)
            ~dst:(Topo.node f.topo b)
        in
        let extra = match note with Some g -> g (a, b) | None -> "" in
        [
          Printf.sprintf "%s -> %s" a b;
          (if alive then Table.f1 (to_kbps rate) else "[closed]");
          extra;
        ])
      (edge_rates f)
  in
  Table.print ~header:[ "link"; "KBps"; "" ] rows
