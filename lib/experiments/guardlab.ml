module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Sim = Iov_dsim.Sim
module NI = Iov_msg.Node_id
module Tel = Iov_telemetry.Telemetry
module Ev = Iov_telemetry.Event
module Tracer = Iov_telemetry.Tracer
module Router = Iov_routing.Router
module Admission = Iov_guard.Admission
module Watchdog = Iov_guard.Watchdog
module Planetlab = Iov_topo.Planetlab
module Scenario = Iov_chaos.Scenario
module Invariant = Iov_chaos.Invariant
module Chaos = Iov_chaos.Chaos
module Table = Iov_stats.Table

(* Two application classes share one guarded overlay: an interactive
   stream that must survive overload and a bulk stream that is the
   designated sacrifice. Engine control traffic is unclassified and
   maps to the default class, parked above both so degradation can
   never starve it. *)
let app_hi = 1
let app_lo = 2
let hi_priority = 2
let lo_priority = 1
let ctl_priority = 3

let name_of i = "n" ^ string_of_int i

type built = {
  g_net : Network.t;
  g_ids : NI.t array;
  g_routers : Router.t ref array;
  g_dog : Watchdog.t option;  (** [None] when built unguarded *)
  g_src : int;
  g_dst : int;
  g_names : string list;  (** every node *)
  g_nodes : string list;  (** chaos-eligible: everyone but src and dst *)
  g_resolve : string -> NI.t option;
  g_spawn : string -> unit;
}

(* Ring plus chords, degree 4 — the same shape routelab measures, so
   two edge-disjoint paths exist between any pair and a first-hop kill
   is survivable. *)
let edges n =
  List.concat_map
    (fun i -> [ (i, (i + 1) mod n); (i, (i + 2) mod n) ])
    (List.init n Fun.id)

let build ?(seed = 7) ?telemetry ?(rate = 24. *. 1024.)
    ?(retransmit_budget = 262144) ?(guarded = true) ?(wedge_after = 1.5)
    ?(open_at = 0.5) ~n () =
  if n < 5 then invalid_arg "Guardlab.build: n < 5";
  let pl = Planetlab.generate ~seed ~n () in
  let net = Network.create ~seed ~buffer_capacity:64 ?telemetry () in
  Network.set_latency_fn net (Planetlab.latency pl);
  let sim = Network.sim net in
  let nds = Array.of_list (Planetlab.nodes pl) in
  let ids = Array.map (fun nd -> nd.Planetlab.nid) nds in
  let src = 0 and dst = n / 2 in
  let neighbor_idx i =
    List.sort_uniq compare
      [ (i + 1) mod n; (i + 2) mod n; (i + n - 1) mod n; (i + n - 2) mod n ]
  in
  let bw_of i =
    (* the source pushes k path copies of two streams; headroom *)
    if i = src then Bwspec.total_only (200. *. 1024.)
    else nds.(i).Planetlab.bw
  in
  let mk_router i =
    Router.create ?telemetry ~self:ids.(i) ~mode:(Router.Multipath 2)
      ~neighbors:(List.map (fun j -> ids.(j)) (neighbor_idx i))
      ~retransmit_budget ()
  in
  let install_admission i =
    if guarded then
      let adm =
        Admission.create ~gradient_threshold:8.
          ~classes:
            [
              (app_hi, Admission.cls ~priority:hi_priority ());
              (app_lo, Admission.cls ~priority:lo_priority ());
            ]
          ~default:(Admission.cls ~priority:ctl_priority ())
          ~now:(Sim.now sim) ()
      in
      Network.set_admission net ids.(i)
        (Some
           (fun ~now ~app ~size ~backlog ->
             Admission.admit adm ~now ~app ~size ~backlog))
  in
  let routers =
    Array.init n (fun i ->
        let r = mk_router i in
        ignore (Network.add_node net ~bw:(bw_of i) ~id:ids.(i) (Router.algorithm r));
        ref r)
  in
  List.iter
    (fun (a, b) ->
      Network.connect net ids.(a) ids.(b);
      Network.connect net ids.(b) ids.(a))
    (edges n);
  Array.iteri (fun i _ -> install_admission i) ids;
  let alive i =
    match Network.find_node net ids.(i) with
    | Some nd -> Network.is_alive nd
    | None -> false
  in
  let resolve nm =
    let rec find i =
      if i >= n then None
      else if String.equal (name_of i) nm then Some ids.(i)
      else find (i + 1)
    in
    find 0
  in
  (* Respawn a dead node: fresh router, same id (the engine records the
     rebirth), live edges re-opened, admission re-armed — the fresh
     hellos are what close the neighbors' breakers. *)
  let spawn nm =
    match resolve nm with
    | None -> ()
    | Some id ->
      let i = ref (-1) in
      Array.iteri (fun j x -> if NI.equal x id then i := j) ids;
      let i = !i in
      if not (alive i) then begin
        let r = mk_router i in
        routers.(i) := r;
        ignore
          (Network.add_node net ~bw:(bw_of i) ~id:ids.(i) (Router.algorithm r));
        List.iter
          (fun (a, b) ->
            if (a = i || b = i) && alive a && alive b then begin
              Network.connect net ids.(a) ids.(b);
              Network.connect net ids.(b) ids.(a)
            end)
          (edges n);
        install_admission i
      end
  in
  let dog =
    if not guarded then None
    else begin
      let dog =
        Watchdog.create ~wedge_after ~respawn_base:1.0
          ~rng:(Random.State.make [| seed; n; 0x9a7d1 |])
          ~now:(Sim.now sim) ()
      in
      let emit_wedge i =
        match telemetry with
        | None -> ()
        | Some tl ->
          Tel.record tl (Tel.tracer tl ids.(i)) ~time:(Sim.now sim)
            ~kind:Ev.Wedge ~peer:Tracer.nil_peer ~id:Ev.no_id ~app:0 ~mseq:0
            ~size:0
      in
      Array.iteri
        (fun i _ ->
          Watchdog.watch dog ~id:(name_of i)
            ~progress:(fun () -> Network.node_switched net ids.(i))
            ~respawn:(fun () ->
              emit_wedge i;
              (* a wedged-but-alive node is torn down first; a dead one
                 goes straight to the rebirth *)
              if alive i then Network.kill_node net ids.(i);
              spawn (name_of i)))
        ids;
      ignore
        (Sim.every sim ~period:0.5 (fun () ->
             ignore (Watchdog.scan dog ~now:(Sim.now sim))));
      Some dog
    end
  in
  ignore
    (Sim.schedule_at sim ~time:open_at (fun () ->
         let ctx = Network.ctx (Network.node net ids.(src)) in
         Router.open_session !(routers.(src)) ctx ~app:app_hi ~dst:ids.(dst)
           ~rate ~payload_size:1024 ();
         Router.open_session !(routers.(src)) ctx ~app:app_lo ~dst:ids.(dst)
           ~rate ~payload_size:1024 ()));
  {
    g_net = net;
    g_ids = ids;
    g_routers = routers;
    g_dog = dog;
    g_src = src;
    g_dst = dst;
    g_names = List.init n name_of;
    g_nodes =
      List.filter_map
        (fun i -> if i = src || i = dst then None else Some (name_of i))
        (List.init n Fun.id);
    g_resolve = resolve;
    g_spawn = spawn;
  }

(* -- the experiment: guarded vs bare under the same abuse ----------- *)

type row = {
  r_variant : string;
  r_hi_rate : float;  (** interactive goodput through the overload, B/s *)
  r_lo_rate : float;
  r_shed_lo : int;
  r_shed_hi : int;
  r_peak_backlog : int;  (** worst source sender backlog, messages *)
  r_retx_bytes : int;
  r_suppressed : int;
  r_wedged : int;
}

type result = { rows : row list; n : int; seed : int }

(* One run: kill the primary first hop at [kill_at], squeeze every
   surviving source uplink to [squeeze] B/s over [t0,t1], measure the
   two streams' delivery at the sink across the overload window. *)
let run_variant ~seed ~n ~guarded () =
  let kill_at = 3.0 and t0 = 6.0 and t1 = 10.0 and horizon = 14.0 in
  let squeeze = 4096. in
  let tel = Tel.create ~ring_capacity:16384 () in
  let b = build ~seed ~telemetry:tel ~guarded ~n () in
  let sim = Network.sim b.g_net in
  let at time f = ignore (Sim.schedule_at sim ~time f) in
  let victim = 2 in
  at kill_at (fun () -> Network.kill_node b.g_net b.g_ids.(victim));
  let hi0 = ref 0 and hi1 = ref 0 and lo0 = ref 0 and lo1 = ref 0 in
  let sample c_hi c_lo () =
    c_hi := Network.app_bytes b.g_net b.g_ids.(b.g_dst) ~app:app_hi;
    c_lo := Network.app_bytes b.g_net b.g_ids.(b.g_dst) ~app:app_lo
  in
  let peak = ref 0 in
  ignore
    (Sim.every sim ~period:0.2 (fun () ->
         peak := max !peak (Network.node_backlog b.g_net b.g_ids.(b.g_src))));
  at t0 (fun () ->
      sample hi0 lo0 ();
      List.iter
        (fun j ->
          try
            Network.set_link_bandwidth b.g_net ~src:b.g_ids.(b.g_src)
              ~dst:b.g_ids.(j) squeeze
          with Invalid_argument _ | Not_found -> ())
        [ 1; 2; n - 1; n - 2 ]);
  at t1 (fun () ->
      sample hi1 lo1 ();
      List.iter
        (fun j ->
          try
            Network.set_link_bandwidth b.g_net ~src:b.g_ids.(b.g_src)
              ~dst:b.g_ids.(j) infinity
          with Invalid_argument _ | Not_found -> ())
        [ 1; 2; n - 1; n - 2 ]);
  Network.run b.g_net ~until:horizon;
  let window = t1 -. t0 in
  let sheds app =
    List.length
      (List.filter
         (fun (e : Tel.event) -> e.Tel.kind = Ev.Shed && e.Tel.app = app)
         (Tel.events tel))
  in
  let src_stats = Router.stats !(b.g_routers.(b.g_src)) in
  {
    r_variant = (if guarded then "guarded" else "bare");
    r_hi_rate = float_of_int (!hi1 - !hi0) /. window;
    r_lo_rate = float_of_int (!lo1 - !lo0) /. window;
    r_shed_lo = sheds app_lo;
    r_shed_hi = sheds app_hi;
    r_peak_backlog = !peak;
    r_retx_bytes = src_stats.Router.retransmit_bytes;
    r_suppressed = src_stats.Router.suppressed;
    r_wedged =
      (match b.g_dog with Some d -> Watchdog.wedged_total d | None -> 0);
  }

let run ?(quiet = false) ?(seed = 7) ?(n = 12) () =
  let rows =
    [
      run_variant ~seed ~n ~guarded:true ();
      run_variant ~seed ~n ~guarded:false ();
    ]
  in
  if not quiet then begin
    Printf.printf
      "guardlab: n=%d seed=%d — first hop killed at t=3, source uplinks \
       squeezed to 4 KB/s over t=6..10\n"
      n seed;
    Table.print
      ~header:
        [ "variant"; "hi KB/s"; "lo KB/s"; "shed lo"; "shed hi"; "peak blog";
          "rexmit B"; "suppressed"; "wedges" ]
      (List.map
         (fun r ->
           [
             r.r_variant;
             Table.f1 (r.r_hi_rate /. 1024.);
             Table.f1 (r.r_lo_rate /. 1024.);
             string_of_int r.r_shed_lo;
             string_of_int r.r_shed_hi;
             string_of_int r.r_peak_backlog;
             string_of_int r.r_retx_bytes;
             string_of_int r.r_suppressed;
             string_of_int r.r_wedged;
           ])
         rows)
  end;
  { rows; n; seed }

(* -- the smoke / acceptance run ------------------------------------ *)

let smoke_budget = 262144

let smoke_scenario ~seed ~n =
  String.concat "\n"
    [
      Printf.sprintf "scenario guard-smoke seed=%d" seed;
      "loss link=n0->n1 p=0.25 at=2 clear=5";
      "kill node=n2 at=3";
      "degrade link=n0->n1 rate=4096 at=6 restore=10";
      "degrade link=n0->n2 rate=4096 at=6 restore=10";
      Printf.sprintf "degrade link=n0->n%d rate=4096 at=6 restore=10" (n - 1);
      Printf.sprintf "degrade link=n0->n%d rate=4096 at=6 restore=10" (n - 2);
      "expect breaker-cycles within=8";
      Printf.sprintf "expect shed-ordered low=%d high=%d" app_lo app_hi;
      Printf.sprintf "expect retransmit-bounded budget=%d" smoke_budget;
      "expect recovers-after-heal margin=4";
      "expect min-events 500";
      "";
    ]

let smoke_once ~seed ~n ~horizon =
  let tel = Tel.create ~ring_capacity:16384 () in
  let b = build ~seed ~telemetry:tel ~retransmit_budget:smoke_budget ~n () in
  let scenario = Scenario.parse (smoke_scenario ~seed ~n) in
  let installed =
    Chaos.install ~net:b.g_net ~resolve:b.g_resolve ~spawn:b.g_spawn
      ~nodes:b.g_nodes scenario
  in
  Network.run b.g_net ~until:horizon;
  let report = Chaos.check installed ~telemetry:tel ~horizon in
  let count k =
    List.length
      (List.filter (fun (e : Tel.event) -> e.Tel.kind = k) (Tel.events tel))
  in
  let shed_lo =
    List.length
      (List.filter
         (fun (e : Tel.event) -> e.Tel.kind = Ev.Shed && e.Tel.app = app_lo)
         (Tel.events tel))
  in
  let src_stats = Router.stats !(b.g_routers.(b.g_src)) in
  ( report,
    count Ev.Breaker_open,
    count Ev.Breaker_close,
    shed_lo,
    (match b.g_dog with Some d -> Watchdog.wedged_total d | None -> 0),
    src_stats.Router.retransmit_bytes,
    Tel.digest tel )

let smoke ?(quiet = false) ?(seed = 7) () =
  let n = 12 and horizon = 20.0 in
  let run () = smoke_once ~seed ~n ~horizon in
  let report, opens, closes, shed_lo, wedged, retx, digest1 = run () in
  let _, _, _, _, _, _, digest2 = run () in
  let ok_invariant = Invariant.ok report in
  let ok_breaker = opens > 0 && closes > 0 in
  let ok_shed = shed_lo > 0 in
  let ok_dog = wedged >= 1 in
  let ok_budget = retx <= smoke_budget in
  let ok_digest = String.equal digest1 digest2 in
  let ok =
    ok_invariant && ok_breaker && ok_shed && ok_dog && ok_budget && ok_digest
  in
  if not quiet then begin
    Printf.printf
      "guardlab smoke: n=%d seed=%d — loss then first-hop kill then a 4 s \
       source squeeze\n"
      n seed;
    Printf.printf "  chaos invariants                %s\n"
      (if ok_invariant then "ok" else "FAIL");
    if not ok_invariant then print_string (Invariant.to_string report);
    Printf.printf "  breakers cycled                 %s\n"
      (if ok_breaker then Printf.sprintf "ok (%d open, %d close)" opens closes
       else Printf.sprintf "FAIL (%d open, %d close)" opens closes);
    Printf.printf "  low priority shed               %s\n"
      (if ok_shed then Printf.sprintf "ok (%d)" shed_lo else "FAIL (0)");
    Printf.printf "  watchdog respawned the victim   %s\n"
      (if ok_dog then Printf.sprintf "ok (%d)" wedged else "FAIL (0)");
    Printf.printf "  retransmit bytes under budget   %s\n"
      (if ok_budget then Printf.sprintf "ok (%d <= %d)" retx smoke_budget
       else Printf.sprintf "FAIL (%d > %d)" retx smoke_budget);
    Printf.printf "  same-seed telemetry digest      %s\n"
      (if ok_digest then "ok (" ^ String.sub digest1 0 8 ^ "...)"
       else "FAIL: " ^ digest1 ^ " vs " ^ digest2)
  end;
  ok
