module Network = Iov_core.Network
module Sim = Iov_dsim.Sim
module NI = Iov_msg.Node_id
module Mt = Iov_msg.Mtype
module Tel = Iov_telemetry.Telemetry
module Gossip = Iov_gossip.Gossip
module Listener = Iov_gossip.Listener
module Observer = Iov_observer.Observer
module Scenario = Iov_chaos.Scenario
module Invariant = Iov_chaos.Invariant
module Chaos = Iov_chaos.Chaos
module Table = Iov_stats.Table

(* -- overlay construction ------------------------------------------ *)

type built = {
  b_net : Network.t;
  b_ids : NI.t array;
  b_gossips : Gossip.t option array;  (** [None] while a node is down *)
  b_names : string list;
  b_resolve : string -> NI.t option;
  b_spawn : string -> unit;
}

let name_of i = "n" ^ string_of_int i

(* A gossip overlay of [n] nodes bootstrapping off node 0 — no
   observer anywhere near the data path. Seeds travel through
   [Network.add_node ~seeds], the engine-level join hook. *)
let build ?(seed = 42) ?telemetry ?(probe_period = 0.5)
    ?(probe_timeout = 0.15) ?(suspicion_timeout = 2.0) ~n () =
  if n < 2 then invalid_arg "Gossiplab.build: n < 2";
  let net = Network.create ~seed ?telemetry () in
  let ids = Array.init n NI.synthetic in
  let gossips = Array.make n None in
  let mk_gossip i =
    let g =
      Gossip.create ?telemetry ~probe_period ~probe_timeout
        ~suspicion_timeout ~self:ids.(i) ()
    in
    gossips.(i) <- Some g;
    g
  in
  Array.iteri
    (fun i _ ->
      let g = mk_gossip i in
      let seeds = if i = 0 then [] else [ ids.(0) ] in
      ignore (Network.add_node net ~seeds ~id:ids.(i) (Gossip.algorithm g)))
    ids;
  let resolve nm =
    let rec find i =
      if i >= n then None
      else if String.equal (name_of i) nm then Some ids.(i)
      else find (i + 1)
    in
    find 0
  in
  let spawn nm =
    match resolve nm with
    | None -> ()
    | Some id ->
      let alive =
        match Network.find_node net id with
        | Some nd -> Network.is_alive nd
        | None -> false
      in
      if not alive then begin
        let idx = ref (-1) in
        Array.iteri (fun j x -> if NI.equal x id then idx := j) ids;
        let g = mk_gossip !idx in
        ignore
          (Network.add_node net ~seeds:[ ids.(0) ] ~id (Gossip.algorithm g))
      end
  in
  {
    b_net = net;
    b_ids = ids;
    b_gossips = gossips;
    b_names = List.init n name_of;
    b_resolve = resolve;
    b_spawn = spawn;
  }

let gossip_mtypes =
  [ Gossip.ping_kind; Gossip.ack_kind; Gossip.ping_req_kind;
    Gossip.view_kind ]

let gossip_bytes net =
  List.fold_left (fun a mt -> a + Network.control_bytes_sent_all net mt) 0
    gossip_mtypes

let observer_mtypes =
  [ Mt.Boot; Mt.Boot_reply; Mt.Request; Mt.Status ]

let observer_bytes net =
  List.fold_left (fun a mt -> a + Network.control_bytes_sent_all net mt) 0
    observer_mtypes

(* -- the experiment: detection latency and control overhead -------- *)

type row = {
  r_n : int;
  r_variant : string;
  r_detect : float;  (** seconds from kill to overlay-wide detection *)
  r_bytes_per_node_s : float;  (** control overhead, bytes/node/second *)
  r_boot_bytes : int;  (** observer bootstrap traffic *)
}

(* Kill [kills] seeded victims at [kill_at]; the detection time is when
   every surviving member's view has dropped every victim. *)
let run_gossip_variant ~seed ~n ~kill_at ~kills ~horizon () =
  let b = build ~seed ~n () in
  let sim = Network.sim b.b_net in
  let rng = Random.State.make [| seed; n; 0x60551b |] in
  let victims = Array.make kills (-1) in
  let picked = Array.make n false in
  (* never kill node 0: it is the join seed, and keeping it makes the
     variants comparable across sizes *)
  let k = ref 0 in
  while !k < kills do
    let c = 1 + Random.State.int rng (n - 1) in
    if not picked.(c) then begin
      picked.(c) <- true;
      victims.(!k) <- c;
      incr k
    end
  done;
  let detect_at = ref nan in
  ignore
    (Sim.schedule_at sim ~time:kill_at (fun () ->
         Array.iter
           (fun v -> Network.kill_node b.b_net b.b_ids.(v))
           victims));
  ignore
    (Sim.every sim ~period:0.05 (fun () ->
         if Float.is_nan !detect_at && Sim.now sim > kill_at then begin
           let all_dropped = ref true in
           Array.iteri
             (fun i g ->
               match g with
               | Some g when not picked.(i) ->
                 Array.iter
                   (fun v ->
                     if Gossip.is_alive g b.b_ids.(v) then
                       all_dropped := false)
                   victims
               | _ -> ())
             b.b_gossips;
           if !all_dropped then detect_at := Sim.now sim -. kill_at
         end));
  Network.run b.b_net ~until:horizon;
  {
    r_n = n;
    r_variant = "gossip";
    r_detect = !detect_at;
    r_bytes_per_node_s =
      float_of_int (gossip_bytes b.b_net) /. float_of_int n /. horizon;
    r_boot_bytes = observer_bytes b.b_net;
  }

(* The baseline this subsystem retires: every node boots through the
   observer and the observer polls for status. Detection is when a
   poll cycle has dropped every victim from the alive set. *)
let run_observer_variant ~seed ~n ~kill_at ~kills ~horizon
    ?(poll_period = 1.0) () =
  let net = Network.create ~seed () in
  let obs = Observer.create ~poll_period net in
  let ids = Array.init n NI.synthetic in
  Array.iter
    (fun id ->
      ignore
        (Network.add_node net ~observer:(Observer.id obs) ~id
           Iov_core.Algorithm.null))
    ids;
  Observer.start_polling obs;
  let sim = Network.sim net in
  let rng = Random.State.make [| seed; n; 0x60551b |] in
  let victims = Array.make kills (-1) in
  let picked = Array.make n false in
  let k = ref 0 in
  while !k < kills do
    let c = 1 + Random.State.int rng (n - 1) in
    if not picked.(c) then begin
      picked.(c) <- true;
      victims.(!k) <- c;
      incr k
    end
  done;
  let detect_at = ref nan in
  ignore
    (Sim.schedule_at sim ~time:kill_at (fun () ->
         Array.iter (fun v -> Network.kill_node net ids.(v)) victims));
  ignore
    (Sim.every sim ~period:0.05 (fun () ->
         if Float.is_nan !detect_at && Sim.now sim > kill_at then begin
           let alive = Observer.alive_nodes obs in
           let any_victim =
             Array.exists
               (fun v -> List.exists (NI.equal ids.(v)) alive)
               victims
           in
           if not any_victim then detect_at := Sim.now sim -. kill_at
         end));
  Network.run net ~until:horizon;
  {
    r_n = n;
    r_variant = "observer-poll";
    r_detect = !detect_at;
    r_bytes_per_node_s =
      float_of_int (observer_bytes net) /. float_of_int n /. horizon;
    r_boot_bytes = Network.control_bytes_sent_all net Mt.Boot;
  }

type result = { rows : row list; seed : int; kill_frac : float }

let default_sizes = [ 32; 128; 512 ]

let run ?(quiet = false) ?(seed = 42) ?(sizes = default_sizes)
    ?(kill_frac = 0.1) ?(kill_at = 5.0) ?(horizon = 20.0) () =
  let rows =
    List.concat_map
      (fun n ->
        let kills = max 1 (int_of_float (kill_frac *. float_of_int n)) in
        [
          run_gossip_variant ~seed ~n ~kill_at ~kills ~horizon ();
          run_observer_variant ~seed ~n ~kill_at ~kills ~horizon ();
        ])
      sizes
  in
  if not quiet then begin
    Printf.printf
      "gossiplab: seed=%d, kill %.0f%% of the overlay at t=%.1fs\n" seed
      (100. *. kill_frac) kill_at;
    Table.print
      ~header:
        [ "n"; "variant"; "detect s"; "ctl B/node/s"; "boot bytes" ]
      (List.map
         (fun r ->
           [
             string_of_int r.r_n;
             r.r_variant;
             (if Float.is_nan r.r_detect then "never"
              else Table.f1 r.r_detect);
             Table.f1 r.r_bytes_per_node_s;
             string_of_int r.r_boot_bytes;
           ])
         rows)
  end;
  { rows; seed; kill_frac }

(* -- the smoke / acceptance run ------------------------------------ *)

(* One seeded 128-node run: 10% killed through a chaos scenario, the
   membership-converges invariant checked on the trace, surviving
   views checked for exact convergence, observer bootstrap bytes
   checked to be zero, and the telemetry digest returned for the
   determinism comparison. *)
let smoke_once ~seed ~n ~kill_frac ~kill_at ~within ~horizon =
  let tel = Tel.create ~ring_capacity:8192 () in
  let b = build ~seed ~telemetry:tel ~n () in
  (* a passive listener rides along, fed purely by pushed digests *)
  let listener = Listener.create ~contacts:[ b.b_ids.(0) ] b.b_net in
  let kills = max 1 (int_of_float (kill_frac *. float_of_int n)) in
  let rng = Random.State.make [| seed; n; 0xc4a05 |] in
  let picked = Array.make n false in
  let k = ref 0 in
  while !k < kills do
    let c = 1 + Random.State.int rng (n - 1) in
    if not picked.(c) then begin
      picked.(c) <- true;
      incr k
    end
  done;
  let victims =
    List.filter (fun i -> picked.(i)) (List.init n Fun.id)
  in
  let text =
    String.concat "\n"
      (Printf.sprintf "scenario gossip-smoke seed=%d" seed
       :: List.map
            (fun v -> Printf.sprintf "kill node=%s at=%g" (name_of v) kill_at)
            victims
      @ [
          Printf.sprintf "expect membership-converges within=%g" within;
          "expect no-delivery-after-teardown grace=0.5";
          "expect min-events 500";
          "";
        ])
  in
  let scenario = Scenario.parse text in
  let installed =
    Chaos.install ~net:b.b_net ~resolve:b.b_resolve ~nodes:b.b_names
      scenario
  in
  Network.run b.b_net ~until:horizon;
  let report = Chaos.check installed ~telemetry:tel ~horizon in
  (* exact convergence of every surviving member's view *)
  let survivors =
    List.filter (fun i -> not picked.(i)) (List.init n Fun.id)
  in
  let expected =
    List.sort NI.compare (List.map (fun i -> b.b_ids.(i)) survivors)
  in
  let diverged = ref [] in
  List.iter
    (fun i ->
      match b.b_gossips.(i) with
      | Some g ->
        let got = Gossip.alive g in
        if not (List.equal NI.equal got expected) then
          diverged := name_of i :: !diverged
      | None -> diverged := name_of i :: !diverged)
    survivors;
  let boot_bytes = observer_bytes b.b_net in
  let listener_ok =
    Listener.digest_count listener > 0
    && List.equal NI.equal (Listener.alive_nodes listener) expected
  in
  ( report,
    List.rev !diverged,
    boot_bytes,
    listener_ok,
    Tel.digest tel )

let smoke ?(quiet = false) ?(seed = 42) () =
  let n = 128 and kill_frac = 0.1 and kill_at = 3.0 in
  let within = 8.0 and horizon = 14.0 in
  let run () = smoke_once ~seed ~n ~kill_frac ~kill_at ~within ~horizon in
  let report, diverged, boot_bytes, listener_ok, digest1 = run () in
  let _, _, _, _, digest2 = run () in
  let ok_invariant = Invariant.ok report in
  let ok_converged = diverged = [] in
  let ok_boot = boot_bytes = 0 in
  let ok_digest = String.equal digest1 digest2 in
  let ok =
    ok_invariant && ok_converged && ok_boot && listener_ok && ok_digest
  in
  if not quiet then begin
    Printf.printf
      "gossiplab smoke: n=%d, %.0f%% killed at t=%gs, convergence window \
       %gs\n"
      n (100. *. kill_frac) kill_at within;
    Printf.printf "  membership-converges invariant  %s\n"
      (if ok_invariant then "ok" else "FAIL");
    if not ok_invariant then print_string (Invariant.to_string report);
    Printf.printf "  surviving views exact           %s\n"
      (if ok_converged then "ok"
       else "FAIL: " ^ String.concat "," diverged);
    Printf.printf "  observer bootstrap bytes        %s\n"
      (if ok_boot then "ok (0)"
       else Printf.sprintf "FAIL (%d)" boot_bytes);
    Printf.printf "  listener digest feed            %s\n"
      (if listener_ok then "ok" else "FAIL");
    Printf.printf "  same-seed telemetry digest      %s\n"
      (if ok_digest then "ok (" ^ String.sub digest1 0 8 ^ "...)"
       else "FAIL: " ^ digest1 ^ " vs " ^ digest2)
  end;
  ok
