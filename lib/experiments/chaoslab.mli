(** The chaos laboratory: ready-made workloads to aim scenarios at,
    bundled scenarios (including a deliberately-broken fixture that the
    checker must flag), and the smoke suite the CI gate runs.

    A workload builds a telemetry-instrumented simulated overlay and
    hands the chaos engine everything it needs: the name→id mapping, a
    respawn callback that re-adds a churned node (and repairs its
    static routes / re-joins its session), and the candidate set that
    [nodes=*] expands to. *)

module Scenario = Iov_chaos.Scenario
module Invariant = Iov_chaos.Invariant

type workload =
  | Flood_fig6  (** the paper's 7-node correctness topology, flooding *)
  | Flood_chain of int  (** a flooding chain of [n] nodes *)
  | Flood_random of int  (** a random degree-3 flooding digraph *)
  | Session of { n : int; strategy : Iov_algos.Tree.strategy }
      (** a Planetlab-latency tree session with [rejoin] enabled *)
  | Route of { n : int; mode : Iov_routing.Router.mode }
      (** the {!Routelab} ring-plus-chords overlay: one adaptive router
          per node and a constant-rate session across it. Routers have
          no respawn protocol, so the spawn callback is inert — aim
          kill faults at these, not churn. *)
  | Gossip of { n : int }
      (** the {!Gossiplab} overlay: [n] gossip members bootstrapping
          off node 0 with no observer. The spawn callback rejoins a
          churned node off the seed (at a fresh incarnation). Node 0
          is excluded from [nodes=*]. *)
  | Guard of { n : int }
      (** the {!Guardlab} overlay: multipath routers under admission
          control, per-neighbor breakers, a replay byte budget and
          watchdog supervision, carrying a high- and a low-priority
          stream. The spawn callback rebuilds a dead node's router and
          edges; source and sink are excluded from [nodes=*]. *)

val workload_of_string : n:int -> string -> workload option
(** Parses ["fig6"], ["chain"], ["random"], ["session"],
    ["session-unicast"], ["session-random"], ["route"] (multipath
    k=2), ["route-bp"], ["route-static"], ["gossip"], ["guard"]. *)

type outcome = {
  scenario : Scenario.t;
  workload : workload;
  report : Invariant.report;
  telemetry : Iov_telemetry.Telemetry.t;
  horizon : float;
}

val run :
  ?quiet:bool ->
  ?seed:int ->
  ?ring:int ->
  ?until:float ->
  workload:workload ->
  Scenario.t ->
  outcome
(** Builds the workload (network seeded with [seed], default 42),
    installs the scenario, runs to [until] (default: 30 s past the last
    scheduled action) and checks the scenario's expectations against
    the trace. Fully deterministic: the same scenario, workload and
    seed produce a byte-identical telemetry trace — compare
    [Telemetry.digest]. *)

(** {1 Bundled scenarios} *)

val builtins : (string * string * workload * Scenario.t * float * bool) list
(** [(name, doc, workload, scenario, until, expect_fail)]. A scenario
    with [expect_fail] set is deliberately broken: the smoke suite
    passes only when the checker flags it. Includes {!broken_fixture}
    and the routing pair ["reroute"] / ["reroute-broken"]. *)

val find_builtin :
  string -> (string * workload * Scenario.t * float * bool) option
(** [(doc, workload, scenario, until, expect_fail)] for a builtin
    name. *)

val run_builtin : ?quiet:bool -> ?seed:int -> ?until:float -> string ->
  outcome option

val broken_fixture : string
(** The name of the deliberately-broken bundled scenario: it kills both
    upstreams of fig6's node D so the Domino Effect darkens the whole
    right half, while still {e expecting} reconvergence and throughput
    recovery. A healthy invariant checker must fail it. *)

val smoke : ?quiet:bool -> ?seed:int -> unit -> bool
(** Runs every bundled scenario: true iff all regular scenarios pass
    their expectations {e and} the broken fixture is flagged. The CI
    gate ([iover chaos --smoke]). *)

(** {1 Session workloads, exposed for the churn sweep} *)

type session = {
  s_net : Iov_core.Network.t;
  s_resolve : string -> Iov_msg.Node_id.t option;
  s_spawn : string -> unit;
  s_nodes : string list;  (** churn candidates: every member but the source *)
  s_members : (string * Iov_msg.Node_id.t * Iov_algos.Tree.t ref) list;
  s_source : Iov_msg.Node_id.t;
  s_app : int;
  s_join_horizon : float;  (** when the session should be converged *)
}

val build_session :
  ?seed:int ->
  ?telemetry:Iov_telemetry.Telemetry.t ->
  strategy:Iov_algos.Tree.strategy ->
  n:int ->
  unit ->
  session
(** A Planetlab session of [n] members (member 0 is the source,
    deployed at t=1; joins staggered one second apart), trees created
    with [rejoin:true] and wired to an observer. [s_spawn] re-adds a
    dead member with a fresh tree instance and re-joins it after its
    boot round-trip. *)
