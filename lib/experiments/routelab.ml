module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Sim = Iov_dsim.Sim
module NI = Iov_msg.Node_id
module Router = Iov_routing.Router
module Path = Iov_routing.Path
module Planetlab = Iov_topo.Planetlab
module Table = Iov_stats.Table

type variant = Static | Backpressure | Multi of int

let variant_name = function
  | Static -> "single-tree"
  | Backpressure -> "backpressure"
  | Multi k -> Printf.sprintf "multipath k=%d" k

let mode_of_variant = function
  | Static -> Router.Static
  | Backpressure -> Router.Backpressure
  | Multi k -> Router.Multipath k

type row = {
  variant : variant;
  pre_rate : float;
  post_rate : float;
  recovery : float;
  dups : int;
  route_changes : int;
  path_switches : int;
  nacks : int;
  retransmits : int;
}

type result = {
  rows : row list;
  n : int;
  seed : int;
  victim : string;
  kill_at : float;
}

type net = {
  r_net : Network.t;
  r_ids : NI.t array;
  r_routers : Router.t array;
  r_app : int;
  r_src : int;
  r_dst : int;
}

let route_app = 7

(* Ring plus chords: node i links to i±1 and i±2 (mod n). Degree 4
   everywhere, so two edge-disjoint paths exist between any pair. *)
let edges n =
  List.concat_map
    (fun i -> [ (i, (i + 1) mod n); (i, (i + 2) mod n) ])
    (List.init n Fun.id)

let build ?(seed = 7) ?telemetry ?(rate = 16. *. 1024.) ?(open_at = 1.0)
    ~mode ~n () =
  if n < 5 then invalid_arg "Routelab.build: n < 5";
  let pl = Planetlab.generate ~seed ~n () in
  let net = Network.create ~seed ~buffer_capacity:64 ?telemetry () in
  Network.set_latency_fn net (Planetlab.latency pl);
  let nds = Array.of_list (Planetlab.nodes pl) in
  let ids = Array.map (fun nd -> nd.Planetlab.nid) nds in
  let neighbor_idx i =
    List.sort_uniq compare
      [ (i + 1) mod n; (i + 2) mod n; (i + n - 1) mod n; (i + n - 2) mod n ]
  in
  let routers =
    Array.mapi
      (fun i nd ->
        let r =
          Router.create ?telemetry ~self:ids.(i) ~mode
            ~neighbors:(List.map (fun j -> ids.(j)) (neighbor_idx i))
            ()
        in
        (* the source pushes k copies of the stream; give it headroom
           beyond the PlanetLab last-mile draw *)
        let bw =
          if i = 0 then Bwspec.total_only (200. *. 1024.) else nd.Planetlab.bw
        in
        ignore (Network.add_node net ~bw ~id:ids.(i) (Router.algorithm r));
        r)
      nds
  in
  List.iter
    (fun (a, b) ->
      Network.connect net ids.(a) ids.(b);
      Network.connect net ids.(b) ids.(a))
    (edges n);
  let src = 0 and dst = n / 2 in
  ignore
    (Sim.schedule_at (Network.sim net) ~time:open_at (fun () ->
         Router.open_session routers.(src)
           (Network.ctx (Network.node net ids.(src)))
           ~app:route_app ~dst:ids.(dst) ~rate ~payload_size:1024 ()));
  { r_net = net; r_ids = ids; r_routers = routers; r_app = route_app;
    r_src = src; r_dst = dst }

(* The node every variant kills: the first hop of the canonical
   primary path, computed over the full topology — identical for every
   variant, so the comparison is apples to apples. *)
let victim_index nb =
  let n = Array.length nb.r_ids in
  let g =
    List.init n (fun i ->
        (nb.r_ids.(i),
         List.filter_map
           (fun (a, b) ->
             if a = i then Some nb.r_ids.(b)
             else if b = i then Some nb.r_ids.(a)
             else None)
           (edges n)))
  in
  match
    Path.shortest g ~src:nb.r_ids.(nb.r_src) ~dst:nb.r_ids.(nb.r_dst) ()
  with
  | Some (first :: _) ->
    let idx = ref 1 in
    Array.iteri (fun i id -> if NI.equal id first then idx := i) nb.r_ids;
    !idx
  | _ -> 1

let run_variant ~seed ~n ~kill_at ~settle ~window variant =
  let nb = build ~seed ~mode:(mode_of_variant variant) ~n () in
  let sim = Network.sim nb.r_net in
  let victim = victim_index nb in
  let rx () = (Router.stats nb.r_routers.(nb.r_dst)).Router.delivered_bytes in
  let b0 = ref 0 and b1 = ref 0 and b2 = ref 0 and b3 = ref 0 in
  let at time f = ignore (Sim.schedule_at sim ~time f) in
  at (kill_at -. window) (fun () -> b0 := rx ());
  at kill_at (fun () ->
      b1 := rx ();
      Network.kill_node nb.r_net nb.r_ids.(victim));
  at (kill_at +. settle -. window) (fun () -> b2 := rx ());
  at (kill_at +. settle) (fun () -> b3 := rx ());
  Network.run ~until:(kill_at +. settle +. 0.5) nb.r_net;
  let pre = float_of_int (!b1 - !b0) /. window in
  let post = float_of_int (!b3 - !b2) /. window in
  let sum f = Array.fold_left (fun acc r -> acc + f (Router.stats r)) 0 in
  let row =
    {
      variant;
      pre_rate = pre;
      post_rate = post;
      recovery = (if pre > 0. then post /. pre else 0.);
      dups = (Router.stats nb.r_routers.(nb.r_dst)).Router.dups;
      route_changes = sum (fun s -> s.Router.route_changes) nb.r_routers;
      path_switches = sum (fun s -> s.Router.path_switches) nb.r_routers;
      nacks = (Router.stats nb.r_routers.(nb.r_dst)).Router.nacks;
      retransmits =
        (Router.stats nb.r_routers.(nb.r_src)).Router.retransmits;
    }
  in
  (row, victim)

let default_variants = [ Static; Backpressure; Multi 2; Multi 3 ]

let run ?(quiet = false) ?(seed = 7) ?(n = 16) ?(kill_at = 8.0)
    ?(settle = 4.0) ?(window = 2.0) ?(variants = default_variants) () =
  let rows_and_victims =
    List.map (run_variant ~seed ~n ~kill_at ~settle ~window) variants
  in
  let rows = List.map fst rows_and_victims in
  let victim =
    match rows_and_victims with (_, v) :: _ -> v | [] -> 1
  in
  let result =
    {
      rows;
      n;
      seed;
      victim = Printf.sprintf "n%d" victim;
      kill_at;
    }
  in
  if not quiet then begin
    Printf.printf
      "routelab: n=%d seed=%d, kill %s (primary first hop) at t=%.1fs\n"
      n seed result.victim kill_at;
    Table.print
      ~header:
        [ "variant"; "pre KB/s"; "post KB/s"; "recovery"; "dups";
          "reroutes"; "switches"; "nacks"; "rexmit" ]
      (List.map
         (fun r ->
           [
             variant_name r.variant;
             Table.f1 (r.pre_rate /. 1024.);
             Table.f1 (r.post_rate /. 1024.);
             Printf.sprintf "%3.0f%%" (100. *. r.recovery);
             string_of_int r.dups;
             string_of_int r.route_changes;
             string_of_int r.path_switches;
             string_of_int r.nacks;
             string_of_int r.retransmits;
           ])
         rows)
  end;
  result

let smoke () =
  let r =
    run ~quiet:true ~seed:7 ~n:10 ~kill_at:5.0 ~settle:3.0 ~window:1.5
      ~variants:[ Static; Multi 2 ] ()
  in
  let find v =
    List.find (fun row -> row.variant = v) r.rows
  in
  let static = find Static and multi = find (Multi 2) in
  let ok_static = static.pre_rate > 0. && static.post_rate = 0. in
  let ok_multi = multi.pre_rate > 0. && multi.recovery >= 0.9 in
  Printf.printf
    "routelab smoke: single-tree %.1f -> %.1f KB/s (%s), k=2 %.1f -> %.1f \
     KB/s recovery %.0f%% (%s)\n"
    (static.pre_rate /. 1024.)
    (static.post_rate /. 1024.)
    (if ok_static then "drops, ok" else "FAIL: expected 0")
    (multi.pre_rate /. 1024.)
    (multi.post_rate /. 1024.)
    (100. *. multi.recovery)
    (if ok_multi then "ok" else "FAIL: expected >= 90%");
  ok_static && ok_multi
