module Network = Iov_core.Network
module Bwspec = Iov_core.Bwspec
module Topo = Iov_topo.Topo
module Planetlab = Iov_topo.Planetlab
module NI = Iov_msg.Node_id
module Tel = Iov_telemetry.Telemetry
module Sim = Iov_dsim.Sim
module Scenario = Iov_chaos.Scenario
module Invariant = Iov_chaos.Invariant
module Chaos = Iov_chaos.Chaos
module Flood = Iov_algos.Flood
module Source = Iov_algos.Source
module Tree = Iov_algos.Tree
module Observer = Iov_observer.Observer

type workload =
  | Flood_fig6
  | Flood_chain of int
  | Flood_random of int
  | Session of { n : int; strategy : Tree.strategy }
  | Route of { n : int; mode : Iov_routing.Router.mode }
  | Gossip of { n : int }
  | Guard of { n : int }

let workload_of_string ~n = function
  | "fig6" -> Some Flood_fig6
  | "chain" -> Some (Flood_chain n)
  | "random" -> Some (Flood_random n)
  | "session" | "session-ns" -> Some (Session { n; strategy = Tree.Ns_aware })
  | "session-unicast" -> Some (Session { n; strategy = Tree.Unicast })
  | "session-random" -> Some (Session { n; strategy = Tree.Random })
  | "route" -> Some (Route { n; mode = Iov_routing.Router.Multipath 2 })
  | "route-bp" -> Some (Route { n; mode = Iov_routing.Router.Backpressure })
  | "route-static" -> Some (Route { n; mode = Iov_routing.Router.Static })
  | "gossip" -> Some (Gossip { n })
  | "guard" -> Some (Guard { n })
  | _ -> None

type outcome = {
  scenario : Scenario.t;
  workload : workload;
  report : Invariant.report;
  telemetry : Tel.t;
  horizon : float;
}

(* {1 Flood workloads} *)

let flood_app = 1

(* Timer-paced rather than back-to-back: a rate source keeps emitting to
   every destination no matter what happened to the link in between, so
   traffic to a churned-and-respawned node resumes by itself. 48 KBps
   per stream keeps even fig6's busiest node (E carries 6 stream copies)
   under its 400 KBps budget, so no queue grows without bound. *)
let flood_rate = 48. *. 1024.

(* Flooding has no duplicate suppression, so it must only ever run on an
   acyclic graph: keep the forward edges of the ring-based random graph
   (the ring's chain part preserves connectivity from the first node). *)
let dagify (topo : Topo.t) =
  let idx = Hashtbl.create 16 in
  List.iteri (fun i s -> Hashtbl.replace idx s.Topo.name i) topo.Topo.specs;
  let fwd (a, b) = Hashtbl.find idx a < Hashtbl.find idx b in
  { topo with Topo.edges = List.filter fwd topo.Topo.edges }

let build_flood ?(seed = 42) ?telemetry ~topo ~source () =
  let net = Network.create ~seed ~buffer_capacity:50 ?telemetry () in
  let floods : (string, Flood.t) Hashtbl.t = Hashtbl.create 16 in
  let src_downs = List.map (Topo.node topo) (Topo.downstreams topo source) in
  let src =
    Source.create ~pacing:(`Rate flood_rate) ~app:flood_app ~dests:src_downs ()
  in
  let alg_for name =
    if name = source then Source.algorithm src
    else begin
      let f = Flood.create () in
      Flood.set_route f ~app:flood_app
        ~upstreams:(List.map (Topo.node topo) (Topo.upstreams topo name))
        ~downstreams:(List.map (Topo.node topo) (Topo.downstreams topo name))
        ();
      Hashtbl.replace floods name f;
      Flood.algorithm f
    end
  in
  List.iter
    (fun name ->
      let spec = Topo.spec topo name in
      ignore
        (Network.add_node net ~bw:spec.Topo.bw ~id:spec.Topo.nid (alg_for name)))
    (Topo.names topo);
  List.iter (fun (a, b) -> Network.connect net a b) (Topo.edge_ids topo);
  let alive name =
    match Network.find_node net (Topo.node topo name) with
    | Some nd -> Network.is_alive nd
    | None -> false
  in
  let spawn name =
    if
      List.mem name (Topo.names topo)
      && name <> source
      && not (alive name)
    then begin
      let spec = Topo.spec topo name in
      ignore
        (Network.add_node net ~bw:spec.Topo.bw ~id:spec.Topo.nid (alg_for name));
      (* config repair, as an operator would after replacing a failed
         box: reinstate every live node's static routes (the Domino
         Effect pruned the dead node out of them) and re-open the live
         edges *)
      List.iter
        (fun n ->
          if n <> source && alive n then
            match Hashtbl.find_opt floods n with
            | Some f ->
              Flood.set_route f ~app:flood_app
                ~upstreams:(List.map (Topo.node topo) (Topo.upstreams topo n))
                ~downstreams:
                  (List.map (Topo.node topo) (Topo.downstreams topo n))
                ()
            | None -> ())
        (Topo.names topo);
      List.iter
        (fun (a, b) ->
          if alive a && alive b then
            Network.connect net (Topo.node topo a) (Topo.node topo b))
        topo.Topo.edges
    end
  in
  (net, spawn)

(* {1 Session workload} *)

type session = {
  s_net : Network.t;
  s_resolve : string -> NI.t option;
  s_spawn : string -> unit;
  s_nodes : string list;
  s_members : (string * NI.t * Tree.t ref) list;
  s_source : NI.t;
  s_app : int;
  s_join_horizon : float;
}

let session_app = 31

let build_session ?(seed = 42) ?telemetry ~strategy ~n () =
  if n < 3 then invalid_arg "Chaoslab.build_session: n < 3";
  let pl = Planetlab.generate ~seed ~n () in
  let net = Network.create ~seed ~buffer_capacity:500 ?telemetry () in
  Network.set_latency_fn net (Planetlab.latency pl);
  let obs = Observer.create ~boot_subset:10 net in
  let members =
    List.mapi
      (fun i nd ->
        let bw =
          if i = 0 then Bwspec.total_only (100. *. 1024.) else nd.Planetlab.bw
        in
        let t =
          Tree.create ~strategy ~last_mile:(Bwspec.last_mile bw)
            ~app:session_app ~rejoin:true ()
        in
        ignore
          (Network.add_node net ~bw ~observer:(Observer.id obs)
             ~id:nd.Planetlab.nid (Tree.algorithm t));
        ("n" ^ string_of_int i, nd.Planetlab.nid, ref t, bw))
      (Planetlab.nodes pl)
  in
  let sim = Network.sim net in
  let at time f = ignore (Sim.schedule_at sim ~time f) in
  let source =
    match members with (_, nid, _, _) :: _ -> nid | [] -> assert false
  in
  at 1.0 (fun () -> Observer.deploy_source obs source ~app:session_app);
  List.iteri
    (fun i (_, nid, _, _) ->
      if i > 0 then
        at
          (2.0 +. float_of_int i)
          (fun () -> Observer.join obs nid ~app:session_app))
    members;
  let alive nid =
    match Network.find_node net nid with
    | Some nd -> Network.is_alive nd
    | None -> false
  in
  let spawn name =
    match
      List.find_opt (fun (n', _, _, _) -> String.equal n' name) members
    with
    | Some (_, nid, tref, bw) when not (alive nid) ->
      let t =
        Tree.create ~strategy ~last_mile:(Bwspec.last_mile bw)
          ~app:session_app ~rejoin:true ()
      in
      tref := t;
      ignore
        (Network.add_node net ~bw ~observer:(Observer.id obs) ~id:nid
           (Tree.algorithm t));
      (* give the boot round-trip a beat, then re-join the session *)
      ignore
        (Sim.schedule sim ~delay:1.0 (fun () ->
             if alive nid then Observer.join obs nid ~app:session_app))
    | _ -> ()
  in
  {
    s_net = net;
    s_resolve =
      (fun name ->
        List.find_map
          (fun (n', nid, _, _) ->
            if String.equal n' name then Some nid else None)
          members);
    s_spawn = spawn;
    s_nodes =
      List.filteri (fun i _ -> i > 0)
        (List.map (fun (n', _, _, _) -> n') members);
    s_members = List.map (fun (n', nid, tref, _) -> (n', nid, tref)) members;
    s_source = source;
    s_app = session_app;
    s_join_horizon = 2.0 +. float_of_int n +. 15.;
  }

(* {1 Route workload} *)

(* Routers keep no rejoin protocol, so the spawn callback is inert:
   route scenarios are about reroute-around, not respawn. *)
let build_route ?(seed = 42) ?telemetry ~mode ~n () =
  let nb = Routelab.build ~seed ?telemetry ~mode ~n () in
  let name i = "n" ^ string_of_int i in
  let resolve nm =
    let k = Array.length nb.Routelab.r_ids in
    let rec find i =
      if i >= k then None
      else if String.equal (name i) nm then Some nb.Routelab.r_ids.(i)
      else find (i + 1)
    in
    find 0
  in
  let nodes =
    List.filter_map
      (fun i ->
        if i = nb.Routelab.r_src || i = nb.Routelab.r_dst then None
        else Some (name i))
      (List.init (Array.length nb.Routelab.r_ids) Fun.id)
  in
  (nb.Routelab.r_net, resolve, (fun _ -> ()), nodes)

(* {1 Running a scenario against a workload} *)

let run ?(quiet = false) ?(seed = 42) ?(ring = 16384) ?until ~workload scenario
    =
  let tel = Tel.create ~ring_capacity:ring () in
  let net, resolve, spawn, nodes =
    match workload with
    | Flood_fig6 | Flood_chain _ | Flood_random _ ->
      let topo, source =
        match workload with
        | Flood_fig6 -> (Topo.fig6 (), "A")
        | Flood_chain n -> (Topo.chain ~n:(max 2 n), "n1")
        | Flood_random n ->
          let t = dagify (Topo.random_graph ~seed ~n:(max 3 n) ~degree:3 ()) in
          (t, List.hd (Topo.names t))
        | Session _ | Route _ | Gossip _ | Guard _ -> assert false
      in
      let net, spawn = build_flood ~seed ~telemetry:tel ~topo ~source () in
      let resolve name =
        match Topo.node topo name with
        | id -> Some id
        | exception Not_found -> None
      in
      (net, resolve, spawn, List.filter (fun x -> x <> source) (Topo.names topo))
    | Session { n; strategy } ->
      let s = build_session ~seed ~telemetry:tel ~strategy ~n () in
      (s.s_net, s.s_resolve, s.s_spawn, s.s_nodes)
    | Route { n; mode } -> build_route ~seed ~telemetry:tel ~mode ~n ()
    | Gossip { n } ->
      let b = Gossiplab.build ~seed ~telemetry:tel ~n () in
      (b.Gossiplab.b_net, b.Gossiplab.b_resolve, b.Gossiplab.b_spawn,
       (* node 0 is the join seed; scenarios churn the rest *)
       List.tl b.Gossiplab.b_names)
    | Guard { n } ->
      let b = Guardlab.build ~seed ~telemetry:tel ~n () in
      (b.Guardlab.g_net, b.Guardlab.g_resolve, b.Guardlab.g_spawn,
       b.Guardlab.g_nodes)
  in
  let installed = Chaos.install ~net ~resolve ~spawn ~nodes scenario in
  let horizon =
    match until with
    | Some u -> u
    | None -> (
      match Scenario.fault_span installed.Chaos.actions with
      | Some (_, last) -> last +. 30.
      | None -> 30.)
  in
  Network.run net ~until:horizon;
  let report = Chaos.check installed ~telemetry:tel ~horizon in
  if not quiet then print_string (Invariant.to_string report);
  { scenario; workload; report; telemetry = tel; horizon }

(* {1 Bundled scenarios} *)

let broken_fixture = "broken-oracle"

(* (name, doc, workload, text, until, expect_fail): a fixture with
   [expect_fail] is deliberately broken — the smoke suite passes only
   if the checker flags it. *)
let builtin_specs =
  [
      ( "smoke",
        "two kills on fig6: the dead stay silent, the Domino completes",
        Flood_fig6,
        "scenario smoke seed=42\n" ^ "kill node=G at=3\n"
        ^ "kill node=B at=5\n"
        ^ "expect no-delivery-after-teardown grace=0.5\n"
        ^ "expect domino-completes within=2\n" ^ "expect min-events 200\n",
        15.,
        false );
      ( "partition-heal",
        "cut fig6 in two for 4 s: silence across the cut, throughput back",
        Flood_fig6,
        "scenario partition-heal seed=42\n"
        ^ "partition groups=A,B|C,D,E,F,G at=4 heal=8\n"
        ^ "expect partition-silent\n"
        ^ "expect throughput-recovers tol=0.5 settle=6 window=3\n"
        ^ "expect min-events 200\n",
        20.,
        false );
      ( "degrade-restore",
        "squeeze A->B and make E->G lossy, then restore: throughput back",
        Flood_fig6,
        "scenario degrade-restore seed=42\n"
        ^ "degrade link=A->B rate=10240 at=4 restore=10\n"
        ^ "loss link=E->G p=0.25 at=4 clear=10\n"
        ^ "expect throughput-recovers tol=0.5 settle=8 window=3\n"
        ^ "expect min-events 200\n",
        22.,
        false );
      ( "churn-flood",
        "two of fig6's lower nodes churn for 12 s; the overlay reconverges",
        Flood_fig6,
        "scenario churn-flood seed=7\n"
        ^ "churn nodes=D,E,F,G pick=2 start=4 stop=16 down=exp:4 up=const:2\n"
        ^ "expect no-delivery-after-teardown grace=0.5\n"
        ^ "expect domino-completes within=2\n" ^ "expect reconverge within=12\n"
        ^ "expect min-events 200\n",
        32.,
        false );
      ( "churn-session",
        "three members of a 12-node ns-aware session churn; all rejoin",
        Session { n = 12; strategy = Tree.Ns_aware },
        "scenario churn-session seed=11\n"
        ^ "churn nodes=* pick=3 start=32 stop=60 down=exp:6 up=const:5\n"
        ^ "expect no-delivery-after-teardown grace=2\n"
        ^ "expect reconverge within=40\n" ^ "expect min-events 500\n",
        115.,
        false );
      ( "reroute",
        "k=2 multipath routing: kill the primary first hop, the sink "
        ^ "must keep >= 90% of its goodput",
        Route { n = 12; mode = Iov_routing.Router.Multipath 2 },
        "scenario reroute seed=7\n" ^ "kill node=n2 at=8\n"
        ^ "expect reroute-recovers ratio=0.9 within=5 window=2\n"
        ^ "expect min-events 500\n",
        14.,
        false );
      ( "reroute-broken",
        "the same kill against the pinned single-tree baseline, which "
        ^ "cannot reroute: the checker must flag it",
        Route { n = 12; mode = Iov_routing.Router.Static },
        "scenario reroute-broken seed=7\n" ^ "kill node=n2 at=8\n"
        ^ "expect reroute-recovers ratio=0.9 within=5 window=2\n"
        ^ "expect min-events 500\n",
        14.,
        true );
      ( "membership",
        "three members of a 24-node gossip overlay die; every survivor "
        ^ "must confirm each death within the window",
        Gossip { n = 24 },
        "scenario membership seed=42\n" ^ "kill node=n5 at=4\n"
        ^ "kill node=n11 at=5\n" ^ "kill node=n17 at=6\n"
        ^ "expect membership-converges within=6\n"
        ^ "expect no-delivery-after-teardown grace=0.5\n"
        ^ "expect min-events 300\n",
        14.,
        false );
      ( "membership-broken",
        "the same deaths against an impossible detection window (50 ms, "
        ^ "below one probe round): the checker must flag it",
        Gossip { n = 24 },
        "scenario membership-broken seed=42\n" ^ "kill node=n5 at=4\n"
        ^ "kill node=n11 at=5\n" ^ "kill node=n17 at=6\n"
        ^ "expect membership-converges within=0.05\n"
        ^ "expect min-events 300\n",
        14.,
        true );
      ( "guard",
        "loss, a first-hop kill and a source squeeze against the guarded "
        ^ "overlay: breakers cycle, sheds follow priority, replay stays "
        ^ "in budget",
        Guard { n = 12 },
        "scenario guard seed=7\n"
        ^ "loss link=n0->n1 p=0.25 at=2 clear=5\n" ^ "kill node=n2 at=3\n"
        ^ "degrade link=n0->n1 rate=4096 at=6 restore=10\n"
        ^ "degrade link=n0->n2 rate=4096 at=6 restore=10\n"
        ^ "degrade link=n0->n11 rate=4096 at=6 restore=10\n"
        ^ "degrade link=n0->n10 rate=4096 at=6 restore=10\n"
        ^ "expect breaker-cycles within=8\n"
        ^ "expect shed-ordered low=2 high=1\n"
        ^ "expect retransmit-bounded budget=262144\n"
        ^ "expect recovers-after-heal margin=4\n" ^ "expect min-events 500\n",
        20.,
        false );
      ( "guard-broken",
        "the same abuse claiming the shed priorities the other way "
        ^ "around: the checker must flag it",
        Guard { n = 12 },
        "scenario guard-broken seed=7\n"
        ^ "loss link=n0->n1 p=0.25 at=2 clear=5\n" ^ "kill node=n2 at=3\n"
        ^ "degrade link=n0->n1 rate=4096 at=6 restore=10\n"
        ^ "degrade link=n0->n2 rate=4096 at=6 restore=10\n"
        ^ "degrade link=n0->n11 rate=4096 at=6 restore=10\n"
        ^ "degrade link=n0->n10 rate=4096 at=6 restore=10\n"
        ^ "expect shed-ordered low=1 high=2\n" ^ "expect min-events 500\n",
        20.,
        true );
      ( broken_fixture,
        "kills both of D's upstreams yet expects recovery: the checker "
        ^ "must flag this one",
        Flood_fig6,
        "scenario broken-oracle seed=42\n" ^ "kill node=B at=3\n"
        ^ "kill node=C at=3\n" ^ "expect reconverge within=5\n"
        ^ "expect throughput-recovers tol=0.2 settle=5 window=3\n"
        ^ "expect min-events 100\n",
        20.,
        true );
    ]

let builtins =
  List.map
    (fun (name, doc, w, text, until, expect_fail) ->
      (name, doc, w, Scenario.parse text, until, expect_fail))
    builtin_specs

let find_builtin name =
  List.find_map
    (fun (n, doc, w, sc, u, ef) ->
      if n = name then Some (doc, w, sc, u, ef) else None)
    builtins

let run_builtin ?quiet ?seed ?until name =
  match find_builtin name with
  | None -> None
  | Some (_doc, w, sc, default_until, _ef) ->
    let until = match until with Some u -> u | None -> default_until in
    Some (run ?quiet ?seed ~until ~workload:w sc)

let smoke ?(quiet = false) ?(seed = 42) () =
  List.fold_left
    (fun acc (name, _doc, w, sc, until, expect_fail) ->
      let o = run ~quiet:true ~seed ~until ~workload:w sc in
      let passed = Invariant.ok o.report in
      let good = if expect_fail then not passed else passed in
      if not quiet then begin
        Printf.printf "%-18s %s%s\n" name
          (if good then "ok" else "FAIL")
          (if expect_fail then "  (deliberately broken: flagged as it must be)"
           else "");
        if not good then print_string (Invariant.to_string o.report)
      end;
      acc && good)
    true builtins
