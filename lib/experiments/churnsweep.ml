module Network = Iov_core.Network
module NI = Iov_msg.Node_id
module Sim = Iov_dsim.Sim
module Tree = Iov_algos.Tree
module Scenario = Iov_chaos.Scenario
module Chaos = Iov_chaos.Chaos
module Table = Iov_stats.Table

type row = {
  strategy : Tree.strategy;
  rate_per_min : float;
  kills : int;
  availability : float;
  rejoins : int;
}

let sample_period = 2.

let cell ~n ~seed ~measure ~down_time strategy rate =
  let s = Chaoslab.build_session ~seed ~strategy ~n () in
  let net = s.Chaoslab.s_net in
  let sim = Network.sim net in
  let start = s.Chaoslab.s_join_horizon +. 3. in
  let stop = start +. measure in
  (* every non-source member churns; pick the mean up-time so the
     aggregate kill rate over the session matches the request *)
  let mean_up =
    Stdlib.max 4. ((float_of_int (n - 1) *. 60. /. rate) -. down_time)
  in
  let scenario =
    {
      Scenario.name = "churn-sweep";
      seed;
      faults =
        [
          Scenario.Churn
            {
              nodes = [ "*" ];
              pick = None;
              start;
              stop;
              down_after = Scenario.Exp mean_up;
              up_after = Scenario.Const down_time;
            };
        ];
      expects = [];
    }
  in
  let installed =
    Chaos.install ~net ~resolve:s.Chaoslab.s_resolve ~spawn:s.Chaoslab.s_spawn
      ~nodes:s.Chaoslab.s_nodes scenario
  in
  (* availability sampling, byte deltas per member per window *)
  let last_bytes = Hashtbl.create n in
  let acc = ref 0. and samples = ref 0 in
  let receivers = List.filter (fun (n', _, _) -> n' <> "n0") s.Chaoslab.s_members in
  let denom = float_of_int (List.length receivers) in
  let take_sample () =
    let receiving = ref 0 in
    List.iter
      (fun (_, nid, _) ->
        let bytes = Network.app_bytes net nid ~app:s.Chaoslab.s_app in
        let prev =
          match Hashtbl.find_opt last_bytes nid with Some b -> b | None -> 0
        in
        Hashtbl.replace last_bytes nid bytes;
        if bytes - prev > 0 then incr receiving)
      receivers;
    acc := !acc +. (float_of_int !receiving /. denom);
    incr samples
  in
  let rec sampler time =
    if time <= stop then
      ignore
        (Sim.schedule_at sim ~time (fun () ->
             take_sample ();
             sampler (time +. sample_period)))
  in
  (* prime the byte counters one period early so the first window has a
     baseline *)
  ignore
    (Sim.schedule_at sim
       ~time:(start -. sample_period)
       (fun () ->
         List.iter
           (fun (_, nid, _) ->
             Hashtbl.replace last_bytes nid
               (Network.app_bytes net nid ~app:s.Chaoslab.s_app))
           receivers;
         sampler start));
  Network.run net ~until:(stop +. 10.);
  let kills =
    List.length
      (List.filter
         (fun (_, a) ->
           match a with Scenario.Kill_node _ -> true | _ -> false)
         installed.Chaos.actions)
  in
  let rejoins =
    List.fold_left
      (fun total (_, _, tref) -> total + Tree.rejoins !tref)
      0 s.Chaoslab.s_members
  in
  {
    strategy;
    rate_per_min = rate;
    kills;
    availability = (if !samples = 0 then 0. else !acc /. float_of_int !samples);
    rejoins;
  }

let run ?(quiet = false) ?(n = 12) ?(seed = 17) ?(rates = [ 1.; 2.; 4.; 8. ])
    ?(measure = 90.) ?(down_time = 6.) () =
  if n < 3 then invalid_arg "Churnsweep.run: n < 3";
  let rows =
    List.concat_map
      (fun strategy ->
        List.map (cell ~n ~seed ~measure ~down_time strategy) rates)
      [ Tree.Unicast; Tree.Random; Tree.Ns_aware ]
  in
  if not quiet then begin
    Printf.printf
      "== Availability under churn: %d-node sessions, %.0f s of churn per \
       cell ==\n"
      n measure;
    Table.print
      ~header:[ "strategy"; "kills/min"; "kills"; "availability"; "rejoins" ]
      (List.map
         (fun r ->
           [
             Tree.strategy_name r.strategy;
             Table.f1 r.rate_per_min;
             string_of_int r.kills;
             Printf.sprintf "%.3f" r.availability;
             string_of_int r.rejoins;
           ])
         rows);
    print_newline ()
  end;
  rows
