(** Shared scaffolding for the experiment reproductions. *)

module Network = Iov_core.Network
module Topo = Iov_topo.Topo

val kbps : float -> float
(** KBytes/second to bytes/second. *)

val to_kbps : float -> float

type flood_net = {
  net : Network.t;
  topo : Topo.t;
  source : Iov_algos.Source.t;
  app : int;
}

val build_flood :
  ?buffer_capacity:int ->
  ?seed:int ->
  ?payload_size:int ->
  ?telemetry:Iov_telemetry.Telemetry.t ->
  topo:Topo.t ->
  source:string ->
  unit ->
  flood_net
(** Instantiates a topology with the copy-forward multicast: the named
    node runs a back-to-back {!Iov_algos.Source} over its topology
    downstreams, every other node a {!Iov_algos.Flood} forwarder wired
    with the topology's edges. All connections are pre-established.
    [telemetry] is passed through to {!Network.create}. *)

val telemetry : flood_net -> Iov_telemetry.Telemetry.t option

val save_trace : flood_net -> string -> int option
(** Dumps the network's causal trace as JSONL
    ({!Iov_telemetry.Telemetry.save_jsonl}); [None] when the network
    runs without telemetry, otherwise the number of events written. *)

val edge_rates : flood_net -> ((string * string) * float) list
(** Measured throughput per topology edge, bytes/second, in topology
    edge order; closed links report 0. *)

val edge_rate : flood_net -> string -> string -> float

val print_edge_rates :
  ?label:string -> ?note:(string * string -> string) -> flood_net -> unit
(** Prints the paper-style per-edge throughput table in KBps. *)
