(** Availability under sustained churn, across the tree-construction
    strategies.

    For each strategy and each target churn rate (node kills per
    minute, aggregated over the whole session), a Planetlab session is
    built with {!Chaoslab.build_session}, a seeded churn scenario is
    compiled to hit that rate, and availability is sampled while the
    churn runs: the mean fraction of non-source members that received
    application data in each 2 s window (a dead member counts as not
    receiving). *)

type row = {
  strategy : Iov_algos.Tree.strategy;
  rate_per_min : float;  (** requested aggregate kill rate *)
  kills : int;  (** kills the compiled schedule actually contains *)
  availability : float;  (** mean receiving fraction over the window *)
  rejoins : int;  (** rejoin events seen by the live tree incarnations *)
}

val run :
  ?quiet:bool ->
  ?n:int ->
  ?seed:int ->
  ?rates:float list ->
  ?measure:float ->
  ?down_time:float ->
  unit ->
  row list
(** Defaults: [n = 12] members, [seed = 17], [rates = [1; 2; 4; 8]]
    kills/minute, [measure = 90] seconds of churn per cell,
    [down_time = 6] seconds down per kill. Prints a table unless
    [quiet]. *)
