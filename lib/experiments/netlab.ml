module Rnode = Iov_onet.Rnode
module Alg = Iov_core.Algorithm
module Msg = Iov_msg.Message
module NI = Iov_msg.Node_id
module Tel = Iov_telemetry.Telemetry
module Metrics = Iov_telemetry.Metrics
module Table = Iov_stats.Table

(* The loopback macro-benchmark behind the batched-I/O fast path: the
   same driver->sink message stream is pushed through the sockets
   runtime twice, once with the coalescing sender ([~batching:true],
   the default) and once with the historical one-write-per-message
   sender, and the two runs are compared on delivered messages per
   wall-clock second and on write syscalls per message (read from the
   driver's [onet.*] counters). Real sockets, real threads, real
   scheduler — the numbers are noisy, which is why {!smoke} takes the
   best of several trials before judging the gate. *)

type mode_stats = {
  ms_rate : float;  (** delivered messages per wall-clock second *)
  ms_syscalls : int;  (** onet.syscalls_total at the driver *)
  ms_batched : int;  (** onet.batched_msgs at the driver *)
}

type trial = {
  t_payload : int;
  t_msgs : int;
  t_permsg : mode_stats;
  t_batched : mode_stats;
}

let speedup t = t.t_batched.ms_rate /. t.t_permsg.ms_rate

let syscalls_per_msg st ~msgs =
  if msgs <= 0 then nan else float_of_int st.ms_syscalls /. float_of_int msgs

let app = 9

(* One timed run: [msgs] data messages of [payload] bytes from a driver
   node to a sink node over a real loopback TCP connection. The clock
   runs from the first send until the sink's algorithm has seen every
   payload byte; [Rnode.send] blocks while the sender buffer is full,
   so the driver is paced by the pipeline like any real source. [None]
   if delivery did not complete within the deadline (a wedged run must
   not turn into a bogus rate). *)
let measure ?(deadline = 60.) ~batching ~payload ~msgs () =
  let tel = Tel.create ~ring_capacity:1024 () in
  (* deep buffers on both ends: the benchmark measures the I/O path,
     not condition-variable churn at a 16-message default *)
  let sink = Rnode.start ~buffer_capacity:8192 Alg.null in
  let driver =
    Rnode.start ~batching ~buffer_capacity:8192 ~telemetry:tel Alg.null
  in
  let dst = Rnode.id sink in
  let origin = Rnode.id driver in
  let total = msgs * payload in
  let payload_buf = Bytes.make payload 'n' in
  let t0 = Unix.gettimeofday () in
  for seq = 0 to msgs - 1 do
    Rnode.send driver (Msg.data ~origin ~app ~seq payload_buf) dst
  done;
  let limit = t0 +. deadline in
  while Rnode.app_bytes sink ~app < total && Unix.gettimeofday () < limit do
    Thread.delay 0.001
  done;
  let t1 = Unix.gettimeofday () in
  let delivered = Rnode.app_bytes sink ~app in
  let snap = Metrics.snapshot ~scope:(NI.to_string origin) (Tel.metrics tel) in
  let counter name =
    match List.assoc_opt name snap with
    | Some (Metrics.Counter n) -> n
    | _ -> 0
  in
  let stats =
    {
      ms_rate =
        (let dt = t1 -. t0 in
         if dt > 0. then float_of_int msgs /. dt else infinity);
      ms_syscalls = counter "onet.syscalls_total";
      ms_batched = counter "onet.batched_msgs";
    }
  in
  Rnode.shutdown driver;
  Rnode.shutdown sink;
  if delivered < total then None else Some stats

(* Best of [trials] runs — scheduler noise only ever slows a run down,
   so the maximum rate is the least-perturbed sample. The metric
   counters come from the same (fastest) trial. *)
let best ?deadline ~trials ~batching ~payload ~msgs () =
  let rec go k acc =
    if k <= 0 then acc
    else
      let acc =
        match (measure ?deadline ~batching ~payload ~msgs (), acc) with
        | Some st, Some bst ->
          Some (if st.ms_rate > bst.ms_rate then st else bst)
        | Some st, None -> Some st
        | None, acc -> acc
      in
      go (k - 1) acc
  in
  go trials None

let default_payloads = [ 64; 1024; 16384 ]

let run ?(quiet = false) ?(payloads = default_payloads) ?(msgs = 8000)
    ?(trials = 2) () =
  let trial payload =
    match
      ( best ~trials ~batching:false ~payload ~msgs (),
        best ~trials ~batching:true ~payload ~msgs () )
    with
    | Some p, Some b ->
      Some { t_payload = payload; t_msgs = msgs; t_permsg = p; t_batched = b }
    | _ ->
      if not quiet then
        Printf.printf "netlab: %dB run did not complete, skipped\n" payload;
      None
  in
  let rows = List.filter_map trial payloads in
  if not quiet then begin
    Printf.printf
      "netlab: %d messages per mode over loopback TCP, best of %d trials\n"
      msgs trials;
    Table.print
      ~header:
        [ "payload"; "per-msg k/s"; "batched k/s"; "speedup"; "sys/msg pm";
          "sys/msg b" ]
      (List.map
         (fun t ->
           [
             string_of_int t.t_payload;
             Table.f1 (t.t_permsg.ms_rate /. 1000.);
             Table.f1 (t.t_batched.ms_rate /. 1000.);
             Table.f1 (speedup t) ^ "x";
             Table.f1 (syscalls_per_msg t.t_permsg ~msgs:t.t_msgs);
             Table.f1 (syscalls_per_msg t.t_batched ~msgs:t.t_msgs);
           ])
         rows)
  end;
  rows

(* -- the CI gate ---------------------------------------------------- *)

let smoke_speedup = 1.5

let smoke ?(quiet = false) () =
  let payload = 64 and msgs = 20000 and trials = 3 in
  match
    ( best ~trials ~batching:false ~payload ~msgs (),
      best ~trials ~batching:true ~payload ~msgs () )
  with
  | None, _ | _, None ->
    if not quiet then
      print_endline "netlab smoke: FAIL (a run did not complete delivery)";
    false
  | Some permsg, Some batched ->
    let t = { t_payload = payload; t_msgs = msgs; t_permsg = permsg;
              t_batched = batched }
    in
    let sp = speedup t in
    let spm = syscalls_per_msg batched ~msgs in
    let ok_speed = sp >= smoke_speedup in
    (* < 1 write per message means coalescing actually happened under
       load; the per-message baseline is pinned at >= 1 by construction *)
    let ok_sys = spm < 1.0 && batched.ms_batched > 0 in
    let ok = ok_speed && ok_sys in
    if not quiet then begin
      Printf.printf
        "netlab smoke: %d x %dB over loopback TCP, best of %d trials\n" msgs
        payload trials;
      Printf.printf "  batched vs per-message rate   %s\n"
        (Printf.sprintf "%s (%.1fk vs %.1fk msg/s, %.2fx, need >= %.1fx)"
           (if ok_speed then "ok" else "FAIL")
           (batched.ms_rate /. 1000.) (permsg.ms_rate /. 1000.) sp
           smoke_speedup);
      Printf.printf "  write syscalls per message    %s\n"
        (Printf.sprintf "%s (%d syscalls / %d msgs = %.3f, need < 1; %d coalesced)"
           (if ok_sys then "ok" else "FAIL")
           batched.ms_syscalls msgs spm batched.ms_batched)
    end;
    ok
