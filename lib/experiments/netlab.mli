(** The sockets-runtime loopback macro-benchmark: batched, coalesced
    sender writes ({!Iov_onet.Batcher}) against the historical
    one-write-per-message sender, on real TCP connections between real
    {!Iov_onet.Rnode} instances.

    Each trial pushes a fixed message count from a driver node to a
    sink node and measures delivered messages per wall-clock second,
    plus the driver's [onet.syscalls_total] and [onet.batched_msgs]
    counters — syscalls per message is the direct evidence that
    coalescing happened. {!run} sweeps payload sizes and prints the
    comparison; {!smoke} is the seeded-free acceptance gate behind
    [iover net --smoke]. *)

type mode_stats = {
  ms_rate : float;  (** delivered messages per wall-clock second *)
  ms_syscalls : int;  (** [onet.syscalls_total] at the driver *)
  ms_batched : int;  (** [onet.batched_msgs] at the driver *)
}

type trial = {
  t_payload : int;
  t_msgs : int;
  t_permsg : mode_stats;
  t_batched : mode_stats;
}

val speedup : trial -> float
(** Batched rate over per-message rate. *)

val syscalls_per_msg : mode_stats -> msgs:int -> float
(** Write syscalls per message sent — [>= 1] for the per-message
    sender by construction, [< 1] when batching coalesces. *)

val measure :
  ?deadline:float ->
  batching:bool ->
  payload:int ->
  msgs:int ->
  unit ->
  mode_stats option
(** One timed loopback run: [msgs] data messages of [payload] bytes,
    clocked from first send to full delivery at the sink. [None] if
    delivery did not complete within [deadline] (default 60 s) — a
    wedged run must not become a bogus rate. *)

val default_payloads : int list
(** 64 B, 1 KiB, 16 KiB. *)

val run :
  ?quiet:bool ->
  ?payloads:int list ->
  ?msgs:int ->
  ?trials:int ->
  unit ->
  trial list
(** Sweeps [payloads] (default {!default_payloads}), [msgs] messages
    per mode (default 8000), best of [trials] runs each (default 2),
    and prints the rate/syscall comparison table. Payloads whose runs
    fail to complete are reported and skipped. *)

val smoke_speedup : float
(** The minimum batched-over-per-message rate ratio the smoke gate
    demands: 1.5. *)

val smoke : ?quiet:bool -> unit -> bool
(** The CI gate: 20000 x 64 B messages over loopback, best of three
    trials per mode. Passes iff the batched sender beats the
    per-message sender by {!smoke_speedup} and issued fewer than one
    write syscall per message (with a non-zero coalesced count). *)
