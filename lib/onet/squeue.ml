(* storage reuses the engine's single-threaded circular queue *)
module Cq = Iov_core.Cqueue

type 'a t = {
  q : 'a Cq.t;
  mutex : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  mutable is_closed : bool;
}

let create ~capacity =
  {
    q = Cq.create ~capacity;
    mutex = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    is_closed = false;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let capacity t = Cq.capacity t.q
let length t = with_lock t (fun () -> Cq.length t.q)
let is_full t = with_lock t (fun () -> Cq.is_full t.q)
let closed t = with_lock t (fun () -> t.is_closed)

let push t x =
  with_lock t (fun () ->
      while Cq.is_full t.q && not t.is_closed do
        Condition.wait t.not_full t.mutex
      done;
      if t.is_closed then false
      else begin
        let ok = Cq.push t.q x in
        assert ok;
        Condition.signal t.not_empty;
        true
      end)

let push_list t xs =
  with_lock t (fun () ->
      let accepted = ref 0 in
      let rec go = function
        | [] -> ()
        | x :: rest ->
          while Cq.is_full t.q && not t.is_closed do
            (* wake the consumer for what is already in before parking:
               it is the pop that makes room *)
            Condition.signal t.not_empty;
            Condition.wait t.not_full t.mutex
          done;
          if not t.is_closed then begin
            let ok = Cq.push t.q x in
            assert ok;
            incr accepted;
            go rest
          end
      in
      go xs;
      if !accepted > 0 then Condition.signal t.not_empty;
      !accepted)

let try_push t x =
  with_lock t (fun () ->
      if t.is_closed || Cq.is_full t.q then false
      else begin
        let ok = Cq.push t.q x in
        assert ok;
        Condition.signal t.not_empty;
        true
      end)

let pop t =
  with_lock t (fun () ->
      while Cq.is_empty t.q && not t.is_closed do
        Condition.wait t.not_empty t.mutex
      done;
      match Cq.pop t.q with
      | Some x ->
        Condition.signal t.not_full;
        Some x
      | None -> None)

let pop_batch t ~max =
  with_lock t (fun () ->
      while Cq.is_empty t.q && not t.is_closed do
        Condition.wait t.not_empty t.mutex
      done;
      let xs = Cq.pop_upto t.q max in
      if xs <> [] then Condition.signal t.not_full;
      xs)

let try_pop_batch t ~max =
  with_lock t (fun () ->
      let xs = Cq.pop_upto t.q max in
      if xs <> [] then Condition.signal t.not_full;
      xs)

let try_pop t =
  with_lock t (fun () ->
      match Cq.pop t.q with
      | Some x ->
        Condition.signal t.not_full;
        Some x
      | None -> None)

let close t =
  with_lock t (fun () ->
      t.is_closed <- true;
      Condition.broadcast t.not_full;
      Condition.broadcast t.not_empty)
