(** The thread-safe circular queue of the real-sockets runtime — the
    paper's shared buffer between receiver/sender threads and the
    engine thread ("we use a thread-safe circular queue to implement
    the shared buffers between the threads").

    Exactly one reader and one writer thread use each queue, matching
    the paper's design constraint; blocking operations use a
    mutex/condition pair. A queue can be closed: pending elements
    drain, then poppers see [None]. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int
(** The fixed capacity passed to {!create}. *)

val length : 'a t -> int
(** Elements currently queued (a racy snapshot, exact under the lock). *)

val is_full : 'a t -> bool
(** [length t = capacity t], same snapshot semantics as {!length}. *)

val push : 'a t -> 'a -> bool
(** Blocks while full; [false] if the queue was closed meanwhile. *)

val push_list : 'a t -> 'a list -> int
(** Pushes the elements in order under one lock acquisition, blocking
    while full; returns how many were accepted — short only if the
    queue was closed meanwhile. The consumer is signalled once per
    wait/fill cycle rather than once per element, which assumes the
    single-consumer discipline this module already states. The receiver
    thread's ingest primitive for a run of decoded messages. *)

val try_push : 'a t -> 'a -> bool
(** Non-blocking; [false] when full or closed. *)

val pop : 'a t -> 'a option
(** Blocks while empty; [None] once closed and drained. *)

val try_pop : 'a t -> 'a option
(** Non-blocking; [None] when empty (even if open). *)

val pop_batch : 'a t -> max:int -> 'a list
(** Blocks like {!pop} for the first element, then takes whatever else
    is already queued — up to [max] elements total, in queue order,
    without blocking again. [[]] once closed and drained. The sender
    thread's drain primitive: when the queue holds a backlog the whole
    backlog comes out under one lock acquisition, ready to be coalesced
    into a single [write]; when the queue is idle the first message
    returns alone, so batching adds no latency. *)

val try_pop_batch : 'a t -> max:int -> 'a list
(** Non-blocking {!pop_batch}: up to [max] queued elements, [[]] when
    empty. The engine thread's receiver-buffer drain. *)

val close : 'a t -> unit
(** Idempotent; wakes all blocked threads. *)

val closed : 'a t -> bool
(** Whether {!close} has been called (elements may still be draining). *)
