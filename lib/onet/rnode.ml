module Alg = Iov_core.Algorithm
module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module NI = Iov_msg.Node_id
module Codec = Iov_msg.Codec
module Tel = Iov_telemetry.Telemetry
module Tracer = Iov_telemetry.Tracer
module Ev = Iov_telemetry.Event
module Metrics = Iov_telemetry.Metrics
module Backoff = Iov_guard.Backoff

let src_log = Logs.Src.create "iov.onet" ~doc:"iOverlay real-sockets runtime"

module Log = (val Logs.src_log src_log)

(* The first message on every fresh connection identifies the
   initiating node (its listening identity, not the ephemeral port). *)
let hello_kind = 900
let () = ignore (Mt.Registry.register ~owner:"onet" ~name:"sock-hello" hello_kind)

type in_conn = {
  ic_peer : NI.t;
  ic_fd : Unix.file_descr;
  ic_buf : Msg.t Squeue.t;
  ic_thread : Thread.t;
  ic_bytes : int Atomic.t;
  ic_since : float;
}

type out_conn = {
  oc_peer : NI.t;
  oc_fd : Unix.file_descr;
  oc_buf : Msg.t Squeue.t;
  mutable oc_thread : Thread.t;
  mutable oc_dead : bool;
  oc_bytes : int Atomic.t;
  oc_since : float;
}

type timer = { due : float; fn : unit -> unit }

(* Reconnection discipline for a peer whose link failed: connect
   attempts ride a capped backoff schedule instead of hammering (or
   abandoning) the address. An entry exists only while the peer is
   unreachable; the first successful connect clears it. *)
type rstate = { rc_bo : Backoff.t; mutable rc_due : float }

let reconnect_base = 0.05
let reconnect_cap = 2.0

(* Telemetry handles, resolved once at start. Unlike the simulator's
   single-threaded engine, events here originate on receiver, sender
   and engine threads alike, so the recorder is guarded by its own
   mutex (never held together with the node lock). *)
type ntel = {
  tl : Tel.t;
  tr : Tracer.t;
  tel_lock : Mutex.t;
  c_enqueued : Metrics.counter;
  c_switched : Metrics.counter;
  c_sent : Metrics.counter;
  c_delivered : Metrics.counter;
  c_dropped : Metrics.counter;
  c_shed : Metrics.counter;
  c_link_failures : Metrics.counter;
  (* batched-I/O observability: write syscalls issued by sender
     threads, messages that rode a coalesced flush, and the size
     distribution of those flushes — batch efficiency is
     syscalls_total / batched_msgs *)
  c_syscalls : Metrics.counter;
  c_batched : Metrics.counter;
  h_batch : Metrics.histogram;
}

type t = {
  nid : NI.t;
  listen_fd : Unix.file_descr;
  algo : Alg.t;
  bufcap : int;
  lock : Mutex.t;
  mutable ins : in_conn list;
  mutable outs : out_conn list;
  mutable pending_ins : (NI.t * in_conn) list; (* registered by receivers *)
  engine_inbox : Msg.t Queue.t; (* synthetic notifications, under lock *)
  reconn : (NI.t, rstate) Hashtbl.t; (* under lock *)
  mutable timers : timer list;
  mutable known : NI.Set.t;
  mutable stopping : bool;
  mutable processed : int;
  app_bytes_tbl : (int, int) Hashtbl.t; (* engine thread only *)
  mutable engine_thread : Thread.t option;
  mutable accept_threads : Thread.t list;
  rng : Random.State.t;
  n_tel : ntel option;
  batching : bool;
  pool : Batcher.pool; (* sender staging buffers, shared per node *)
  (* wire bytes accepted into the send pipeline (sender queues plus
     staging buffers) and not yet handed to the kernel — the true-byte
     backlog the admission hook judges against *)
  staged_bytes : int Atomic.t;
  mutable admission :
    (now:float -> app:int -> size:int -> backlog:int -> bool) option;
}

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)

let tel_counter tl = function
  | Ev.Enqueue -> Metrics.incr tl.c_enqueued
  | Ev.Switch -> Metrics.incr tl.c_switched
  | Ev.Send -> Metrics.incr tl.c_sent
  | Ev.Deliver -> Metrics.incr tl.c_delivered
  | Ev.Drop -> Metrics.incr tl.c_dropped
  | Ev.Shed -> Metrics.incr tl.c_shed
  | Ev.Link_failure -> Metrics.incr tl.c_link_failures
  | Ev.Teardown | Ev.Respawn | Ev.Route_change | Ev.Path_switch
  | Ev.Dup_suppressed | Ev.Suspect | Ev.Confirm | Ev.View_exchange
  | Ev.Breaker_open | Ev.Breaker_close | Ev.Wedge | Ev.Retransmit ->
    ()

let tel_msg t kind ~peer (m : Msg.t) =
  match t.n_tel with
  | None -> ()
  | Some tl ->
    if Tel.enabled tl.tl then begin
      Mutex.lock tl.tel_lock;
      tel_counter tl kind;
      Tel.record tl.tl tl.tr
        ~time:(Unix.gettimeofday ())
        ~kind ~peer ~id:(Ev.id_of_msg m) ~app:m.Msg.app ~mseq:m.Msg.seq
        ~size:(Msg.size m);
      Mutex.unlock tl.tel_lock
    end

let tel_event t kind ~peer =
  match t.n_tel with
  | None -> ()
  | Some tl ->
    if Tel.enabled tl.tl then begin
      Mutex.lock tl.tel_lock;
      tel_counter tl kind;
      Tel.record tl.tl tl.tr
        ~time:(Unix.gettimeofday ())
        ~kind ~peer ~id:Ev.no_id ~app:0 ~mseq:0 ~size:0;
      Mutex.unlock tl.tel_lock
    end

(* Per-flush accounting for the batched sender path. *)
let tel_flush t ~bytes ~msgs ~syscalls =
  match t.n_tel with
  | None -> ()
  | Some tl ->
    if Tel.enabled tl.tl then begin
      Mutex.lock tl.tel_lock;
      Metrics.add tl.c_syscalls syscalls;
      Metrics.add tl.c_batched msgs;
      Metrics.observe tl.h_batch bytes;
      Mutex.unlock tl.tel_lock
    end

(* Syscall accounting for unbatched writes (per-message mode, oversized
   messages): counted against the same onet.syscalls_total key so the
   two paths are directly comparable. *)
let tel_syscalls t n =
  match t.n_tel with
  | None -> ()
  | Some tl ->
    if Tel.enabled tl.tl then begin
      Mutex.lock tl.tel_lock;
      Metrics.add tl.c_syscalls n;
      Mutex.unlock tl.tel_lock
    end

let id t = t.nid
let messages_processed t = t.processed
let staged_bytes t = Atomic.get t.staged_bytes
let set_admission t hook = t.admission <- hook

let app_bytes t ~app =
  match Hashtbl.find_opt t.app_bytes_tbl app with Some b -> b | None -> 0

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let peers t = with_lock t (fun () -> List.map (fun o -> o.oc_peer) t.outs)

let link_bytes t dir peer =
  match dir with
  | `In -> (
    match
      with_lock t (fun () ->
          List.find_opt (fun i -> NI.equal i.ic_peer peer) t.ins)
    with
    | Some ic -> Atomic.get ic.ic_bytes
    | None -> 0)
  | `Out -> (
    match
      with_lock t (fun () ->
          List.find_opt (fun o -> NI.equal o.oc_peer peer) t.outs)
    with
    | Some oc -> Atomic.get oc.oc_bytes
    | None -> 0)

(* ------------------------------------------------------------------ *)
(* Socket helpers                                                      *)

let addr_of (ni : NI.t) =
  Unix.ADDR_INET (Unix.inet_addr_of_string (NI.ip_string ni), ni.port)

(* Writes the whole buffer, retrying partial writes and EINTR; returns
   the number of write syscalls issued. *)
let write_all fd buf =
  let len = Bytes.length buf in
  let rec go off calls =
    if off >= len then calls
    else
      match Unix.write fd buf off (len - off) with
      | n -> go (off + n) (calls + 1)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off (calls + 1)
  in
  go 0 0

(* ------------------------------------------------------------------ *)
(* Receiver and sender threads                                         *)

let recv_reserve = 65536

let receiver_loop t ?bytes ?stream peer fd buf =
  (* a connection accepted by the engine hands over the handshake
     stream: bytes that followed the hello in the same TCP chunk must
     not be lost *)
  let stream =
    match stream with Some s -> s | None -> Codec.Stream.create ()
  in
  let running = ref true in
  (* a whole drained run goes in under one lock acquisition — the
     ingest half of the batching story: the engine's batch pop is only
     worth anything if the receiver is not paying a mutex and a
     condition signal per message *)
  let ingest = function
    | [] -> ()
    | ms ->
      let accepted = Squeue.push_list buf ms in
      List.iteri
        (fun i m ->
          if i < accepted then tel_msg t Ev.Deliver ~peer m
          else
            (* the buffer was closed under us (teardown): the message
               is lost — account for it rather than discarding
               silently *)
            tel_msg t Ev.Drop ~peer m)
        ms;
      if accepted < List.length ms then running := false
  in
  (* The stream is the connection's persistent carry buffer: each read
     lands directly in its free tail ([reserve]/[commit]), so partial
     frames carry over with no per-read chunk and no re-allocation;
     [drain] copies payloads out, so delivered messages never alias
     the reused buffer. The try also covers Malformed raised while
     draining mid-connection, which previously escaped the thread. *)
  (try
     ingest (Codec.Stream.drain stream);
     while !running do
       let rbuf, roff = Codec.Stream.reserve stream recv_reserve in
       match Unix.read fd rbuf roff recv_reserve with
       | 0 -> running := false
       | n ->
         (match bytes with
         | Some c -> Atomic.set c (Atomic.get c + n)
         | None -> ());
         Codec.Stream.commit stream n;
         ingest (Codec.Stream.drain stream)
     done
   with
  | Unix.Unix_error _ | Codec.Malformed _ -> ());
  (* surface the failure to the engine, then drain-close; a full buffer
     must not swallow the notification — fall back to the (unbounded)
     engine inbox so the algorithm always learns of the death *)
  let failed = Msg.with_params ~mtype:Mt.Link_failed ~origin:peer 0 0 in
  if not (Squeue.try_push buf failed) then
    with_lock t (fun () -> Queue.push failed t.engine_inbox);
  Squeue.close buf;
  (try Unix.close fd with Unix.Unix_error _ -> ())

let unstage t n = ignore (Atomic.fetch_and_add t.staged_bytes (-n))

(* The per-message sender: one write syscall per message (the
   pre-batching behaviour, kept for the [~batching:false] baseline the
   netlab experiment measures against). *)
let sender_loop_permsg t oc =
  let running = ref true in
  while !running do
    match Squeue.pop oc.oc_buf with
    | None -> running := false
    | Some m -> (
      try
        (* memoized: a message fanned out to n peers is encoded once
           and the same buffer is written on every link *)
        let wire = Codec.wire m in
        let calls = write_all oc.oc_fd wire in
        tel_syscalls t calls;
        unstage t (Bytes.length wire);
        Atomic.set oc.oc_bytes (Atomic.get oc.oc_bytes + Bytes.length wire);
        tel_msg t Ev.Send ~peer:oc.oc_peer m
      with Unix.Unix_error _ ->
        oc.oc_dead <- true;
        unstage t (Msg.size m);
        tel_msg t Ev.Drop ~peer:oc.oc_peer m;
        running := false)
  done;
  (try Unix.close oc.oc_fd with Unix.Unix_error _ -> ())

(* The batched sender: drain whatever the queue holds in one lock
   acquisition, coalesce the run of frames into a pooled staging
   buffer, and flush it with (ideally) a single write. The flush is
   adaptive — it happens as soon as the drained run is staged, so an
   idle connection still sends each message immediately; batches only
   form when a backlog exists, which is exactly when syscall overhead
   would otherwise dominate. *)
let sender_loop_batched t oc =
  let batch = Batcher.acquire t.pool in
  let write b off len = Unix.write oc.oc_fd b off len in
  let running = ref true in
  (* messages staged in [batch], newest first, awaiting their Send
     events until the bytes actually reach the kernel *)
  let staged = ref [] in
  let flush () =
    let bytes = Batcher.length batch and msgs = Batcher.staged batch in
    if bytes > 0 then begin
      let syscalls = Batcher.flush batch ~write in
      unstage t bytes;
      Atomic.set oc.oc_bytes (Atomic.get oc.oc_bytes + bytes);
      tel_flush t ~bytes ~msgs ~syscalls;
      List.iter (fun m -> tel_msg t Ev.Send ~peer:oc.oc_peer m)
        (List.rev !staged);
      staged := []
    end
  in
  while !running do
    match Squeue.pop_batch oc.oc_buf ~max:t.bufcap with
    | [] -> running := false
    | ms -> (
      let rest = ref ms in
      try
        while !rest <> [] do
          let m = List.hd !rest in
          if Batcher.add batch m then staged := m :: !staged
          else begin
            flush ();
            if Batcher.add batch m then staged := m :: !staged
            else begin
              (* larger than the whole staging buffer: its own
                 (memoized) encoding goes out directly, order
                 preserved by the flush above *)
              let wire = Codec.wire m in
              let calls = write_all oc.oc_fd wire in
              tel_syscalls t calls;
              unstage t (Bytes.length wire);
              Atomic.set oc.oc_bytes
                (Atomic.get oc.oc_bytes + Bytes.length wire);
              tel_msg t Ev.Send ~peer:oc.oc_peer m
            end
          end;
          rest := List.tl !rest
        done;
        flush ()
      with Unix.Unix_error _ ->
        oc.oc_dead <- true;
        (* everything staged or still unprocessed in this run is lost
           with the connection; account each message exactly once *)
        List.iter
          (fun m ->
            unstage t (Msg.size m);
            tel_msg t Ev.Drop ~peer:oc.oc_peer m)
          (List.rev_append !staged !rest);
        staged := [];
        running := false)
  done;
  Batcher.release batch;
  (try Unix.close oc.oc_fd with Unix.Unix_error _ -> ())

let sender_loop t oc =
  if t.batching then sender_loop_batched t oc else sender_loop_permsg t oc

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)

(* Next connect attempt toward the peer no earlier than its backoff
   schedule allows. *)
let reconnect_later t peer =
  with_lock t (fun () ->
      let r =
        match Hashtbl.find_opt t.reconn peer with
        | Some r -> r
        | None ->
          let r =
            {
              rc_bo =
                Backoff.create ~base:reconnect_base ~cap:reconnect_cap
                  ~rng:t.rng ();
              rc_due = 0.;
            }
          in
          Hashtbl.add t.reconn peer r;
          r
      in
      r.rc_due <- Unix.gettimeofday () +. Backoff.next r.rc_bo)

(* Engine-side or driver-side: ensure a persistent outgoing
   connection. Must be called with care — creation takes the lock. *)
let ensure_out t peer =
  let existing =
    with_lock t (fun () ->
        List.find_opt (fun o -> NI.equal o.oc_peer peer && not o.oc_dead) t.outs)
  in
  match existing with
  | Some o -> o
  | None ->
    (* inside a backoff window from earlier failed attempts: refuse
       without touching the network (callers treat it as any other
       connect failure) *)
    (match with_lock t (fun () -> Hashtbl.find_opt t.reconn peer) with
    | Some r when Unix.gettimeofday () < r.rc_due ->
      raise (Unix.Unix_error (Unix.ECONNREFUSED, "connect", "backoff"))
    | Some _ | None -> ());
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (addr_of peer)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       reconnect_later t peer;
       raise e);
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    (* introduce ourselves so the peer registers the right identity *)
    ignore
      (write_all fd
         (Codec.encode
            (Msg.with_params ~mtype:(Mt.Custom hello_kind) ~origin:t.nid 0 0)));
    let buf = Squeue.create ~capacity:t.bufcap in
    let oc =
      {
        oc_peer = peer;
        oc_fd = fd;
        oc_buf = buf;
        oc_thread = Thread.create (fun () -> ()) ();
        oc_dead = false;
        oc_bytes = Atomic.make 0;
        oc_since = Unix.gettimeofday ();
      }
    in
    (* the sender closes over [oc] itself — a [{ oc with ... }] copy
       here would give the thread a private [oc_dead] the reaper never
       reads *)
    oc.oc_thread <- Thread.create (fun () -> sender_loop t oc) ();
    with_lock t (fun () ->
        Hashtbl.remove t.reconn peer;
        t.outs <- oc :: t.outs);
    oc

let connect t peer = ignore (ensure_out t peer)

let send t m peer =
  let size = Msg.size m in
  let admitted =
    match t.admission with
    | Some adm when Mt.is_data m.Msg.mtype ->
      (* the backlog is true pipeline bytes: queued messages plus
         whatever sits in sender staging buffers awaiting a flush, so
         batching cannot hide load from the shed decision *)
      adm ~now:(Unix.gettimeofday ()) ~app:m.Msg.app ~size
        ~backlog:(Atomic.get t.staged_bytes)
    | _ -> true
  in
  if not admitted then tel_msg t Ev.Shed ~peer m
  else begin
    let oc = ensure_out t peer in
    ignore (Atomic.fetch_and_add t.staged_bytes size);
    if Squeue.push oc.oc_buf m then tel_msg t Ev.Enqueue ~peer m
    else begin
      unstage t size;
      tel_msg t Ev.Drop ~peer m
    end
  end

(* ------------------------------------------------------------------ *)
(* The algorithm context                                               *)

let make_ctx t : Alg.ctx =
  {
    Alg.self = t.nid;
    now = Unix.gettimeofday;
    send =
      (fun m dst ->
        try send t m dst
        with Unix.Unix_error _ -> tel_msg t Ev.Drop ~peer:dst m);
    can_send =
      (fun dst ->
        match
          with_lock t (fun () ->
              List.find_opt
                (fun o -> NI.equal o.oc_peer dst && not o.oc_dead)
                t.outs)
        with
        | Some o -> not (Squeue.is_full o.oc_buf)
        | None -> true);
    known_hosts = (fun () -> NI.Set.elements t.known);
    add_known_host =
      (fun h ->
        if not (NI.equal h t.nid) then
          with_lock t (fun () -> t.known <- NI.Set.add h t.known));
    upstreams =
      (fun () -> with_lock t (fun () -> List.map (fun i -> i.ic_peer) t.ins));
    downstreams = (fun () -> peers t);
    up_throughput =
      (fun peer ->
        match
          with_lock t (fun () ->
              List.find_opt (fun i -> NI.equal i.ic_peer peer) t.ins)
        with
        | Some ic ->
          let dt = Unix.gettimeofday () -. ic.ic_since in
          if dt <= 0. then 0. else float_of_int (Atomic.get ic.ic_bytes) /. dt
        | None -> 0.);
    down_throughput =
      (fun peer ->
        match
          with_lock t (fun () ->
              List.find_opt
                (fun o -> NI.equal o.oc_peer peer && not o.oc_dead)
                t.outs)
        with
        | Some oc ->
          let dt = Unix.gettimeofday () -. oc.oc_since in
          if dt <= 0. then 0. else float_of_int (Atomic.get oc.oc_bytes) /. dt
        | None -> 0.);
    measure =
      (fun peer cb ->
        (* a crude RTT probe: TCP connect time to the peer's port *)
        let t0 = Unix.gettimeofday () in
        let lat =
          match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
          | fd -> (
            try
              Unix.connect fd (addr_of peer);
              let dt = Unix.gettimeofday () -. t0 in
              Unix.close fd;
              dt /. 2.
            with Unix.Unix_error _ ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              infinity)
          | exception Unix.Unix_error _ -> infinity
        in
        cb ~bandwidth:infinity ~latency:lat);
    rng = t.rng;
    trace = (fun s -> Log.info (fun f -> f "[%a] %s" NI.pp t.nid s));
    set_timer =
      (fun delay fn ->
        let due = Unix.gettimeofday () +. delay in
        with_lock t (fun () -> t.timers <- { due; fn } :: t.timers));
    observer = None;
  }

(* ------------------------------------------------------------------ *)
(* The engine thread                                                   *)

let dispatch t ctx (m : Msg.t) =
  t.processed <- t.processed + 1;
  tel_msg t Ev.Switch ~peer:m.Msg.origin m;
  if Mt.is_data m.Msg.mtype then begin
    let prev =
      match Hashtbl.find_opt t.app_bytes_tbl m.app with Some b -> b | None -> 0
    in
    Hashtbl.replace t.app_bytes_tbl m.app (prev + Msg.payload_size m);
    match t.algo.Alg.process ctx m with
    | Alg.Consume | Alg.Hold -> ()
    | Alg.Forward dests ->
      List.iter
        (fun d ->
          try send t m d
          with Unix.Unix_error _ -> tel_msg t Ev.Drop ~peer:d m)
        dests
  end
  else begin
    if m.Msg.mtype = Mt.Link_failed then
      (* the same event the simulator's engine emits on link failure *)
      tel_event t Ev.Link_failure ~peer:m.Msg.origin;
    ignore (t.algo.Alg.process ctx m)
  end

let run_timers t ctx =
  ignore ctx;
  let now = Unix.gettimeofday () in
  let due, later =
    with_lock t (fun () ->
        let due, later = List.partition (fun tm -> tm.due <= now) t.timers in
        t.timers <- later;
        (due, later))
  in
  ignore later;
  List.iter (fun tm -> tm.fn ()) due

let engine_loop t =
  let ctx = make_ctx t in
  t.algo.Alg.on_start ctx;
  (* Loop pacing doubles as the accept poll: when the previous
     iteration switched messages the engine spins right back (another
     backlog is likely), otherwise it parks in select for up to 10 ms.
     Idle nodes burn no CPU; loaded nodes are not throttled to one
     iteration per select tick. *)
  let wait = ref 0.01 in
  while not t.stopping do
    (* 1. accept new incoming connections (non-blocking select) *)
    (match Unix.select [ t.listen_fd ] [] [] !wait with
    | [ _ ], _, _ -> (
      match Unix.accept t.listen_fd with
      | fd, _ ->
        Unix.setsockopt fd Unix.TCP_NODELAY true;
        (* the hello message carries the peer identity *)
        let th =
          Thread.create
            (fun () ->
              let stream = Codec.Stream.create () in
              let chunk = Bytes.create 4096 in
              let total_read = ref 0 in
              let rec read_hello () =
                match Unix.read fd chunk 0 (Bytes.length chunk) with
                | 0 -> None
                | n -> (
                  total_read := !total_read + n;
                  Codec.Stream.feed stream ~len:n chunk;
                  match Codec.Stream.next stream with
                  | Some m -> Some m
                  | None -> read_hello ())
                | exception Unix.Unix_error _ -> None
              in
              match read_hello () with
              | Some m when m.Msg.mtype = Mt.Custom hello_kind ->
                let peer = m.Msg.origin in
                let buf = Squeue.create ~capacity:t.bufcap in
                (* data bytes may have arrived in the same chunk as
                   the hello: count them and keep the stream *)
                let ic_bytes = Atomic.make (!total_read - Msg.size m) in
                let ic_thread =
                  Thread.create
                    (fun () ->
                      receiver_loop t ~bytes:ic_bytes ~stream peer fd buf)
                    ()
                in
                with_lock t (fun () ->
                    t.pending_ins <-
                      ( peer,
                        {
                          ic_peer = peer;
                          ic_fd = fd;
                          ic_buf = buf;
                          ic_thread;
                          ic_bytes;
                          ic_since = Unix.gettimeofday ();
                        } )
                      :: t.pending_ins)
              | Some _ | None -> (
                try Unix.close fd with Unix.Unix_error _ -> ()))
            ()
        in
        with_lock t (fun () ->
            t.accept_threads <- th :: t.accept_threads)
      | exception Unix.Unix_error _ -> ())
    | _, _, _ -> ());
    (* 2. adopt freshly registered incoming connections *)
    let fresh = with_lock t (fun () ->
        let f = t.pending_ins in
        t.pending_ins <- [];
        f)
    in
    List.iter
      (fun (peer, ic) ->
        Log.debug (fun f -> f "%a: connection from %a" NI.pp t.nid NI.pp peer);
        t.ins <- t.ins @ [ ic ])
      fresh;
    let worked = ref false in
    (* 3. engine-inbox notifications *)
    let inbox =
      with_lock t (fun () ->
          let l = List.of_seq (Queue.to_seq t.engine_inbox) in
          Queue.clear t.engine_inbox;
          l)
    in
    if inbox <> [] then worked := true;
    List.iter (dispatch t ctx) inbox;
    (* 4. switch messages from receiver buffers, round-robin across
       connections but draining each buffer's whole backlog in one lock
       acquisition — the switching analogue of the senders' batch pop *)
    List.iter
      (fun ic ->
        match Squeue.try_pop_batch ic.ic_buf ~max:t.bufcap with
        | [] -> ()
        | ms ->
          worked := true;
          List.iter (dispatch t ctx) ms)
      t.ins;
    (* drop fully drained, closed connections *)
    t.ins <-
      List.filter
        (fun ic ->
          not (Squeue.closed ic.ic_buf && Squeue.length ic.ic_buf = 0))
        t.ins;
    (* 4b. reap dead senders (their threads have exited) and put the
       peer on the reconnect schedule instead of abandoning it *)
    let reaped =
      with_lock t (fun () ->
          let dead, live = List.partition (fun o -> o.oc_dead) t.outs in
          t.outs <- live;
          dead)
    in
    List.iter
      (fun oc ->
        Squeue.close oc.oc_buf;
        reconnect_later t oc.oc_peer)
      reaped;
    (* 4c. proactively re-establish links whose backoff window has
       elapsed — a peer that came back starts receiving again even
       before the next application send *)
    let now = Unix.gettimeofday () in
    let due =
      with_lock t (fun () ->
          Hashtbl.fold
            (fun p r acc -> if now >= r.rc_due then p :: acc else acc)
            t.reconn [])
    in
    List.iter
      (fun p -> try connect t p with Unix.Unix_error _ -> ())
      due;
    (* 5. timers *)
    run_timers t ctx;
    if !worked then wait := 0.
    else begin
      wait := 0.01;
      Thread.yield ()
    end
  done

(* ------------------------------------------------------------------ *)

let start ?(host = "127.0.0.1") ?(port = 0) ?(buffer_capacity = 16)
    ?(batching = true) ?telemetry algo =
  if buffer_capacity <= 0 then invalid_arg "Rnode.start: buffer_capacity";
  (* writes to a peer that died abruptly must surface as EPIPE for the
     failure path to run, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen listen_fd 64;
  let actual_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let nid = NI.of_string (Printf.sprintf "%s:%d" host actual_port) in
  let t =
    {
      nid;
      listen_fd;
      algo;
      bufcap = buffer_capacity;
      lock = Mutex.create ();
      ins = [];
      outs = [];
      pending_ins = [];
      engine_inbox = Queue.create ();
      reconn = Hashtbl.create 4;
      timers = [];
      known = NI.Set.empty;
      stopping = false;
      processed = 0;
      app_bytes_tbl = Hashtbl.create 4;
      engine_thread = None;
      accept_threads = [];
      rng = Random.State.make [| actual_port |];
      n_tel =
        (match telemetry with
        | None -> None
        | Some tl ->
          let m = Tel.metrics tl in
          let scope = NI.to_string nid in
          Some
            {
              tl;
              tr = Tel.tracer tl nid;
              tel_lock = Mutex.create ();
              c_enqueued = Metrics.counter m ~scope "enqueued";
              c_switched = Metrics.counter m ~scope "switched";
              c_sent = Metrics.counter m ~scope "sent";
              c_delivered = Metrics.counter m ~scope "delivered";
              c_dropped = Metrics.counter m ~scope "dropped";
              c_shed = Metrics.counter m ~scope "guard.shed_total";
              c_link_failures = Metrics.counter m ~scope "link_failures";
              c_syscalls = Metrics.counter m ~scope "onet.syscalls_total";
              c_batched = Metrics.counter m ~scope "onet.batched_msgs";
              h_batch = Metrics.histogram m ~scope "onet.batch_bytes";
            });
      batching;
      pool = Batcher.pool ();
      staged_bytes = Atomic.make 0;
      admission = None;
    }
  in
  t.engine_thread <- Some (Thread.create (fun () -> engine_loop t) ());
  t

let shutdown t =
  if not t.stopping then begin
    t.stopping <- true;
    tel_event t Ev.Teardown ~peer:Tracer.nil_peer;
    (match t.engine_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    let outs = with_lock t (fun () -> t.outs) in
    List.iter
      (fun oc ->
        Squeue.close oc.oc_buf;
        Thread.join oc.oc_thread;
        try Unix.close oc.oc_fd with Unix.Unix_error _ -> ())
      outs;
    let ins = with_lock t (fun () -> t.ins @ List.map snd t.pending_ins) in
    List.iter
      (fun ic ->
        (try Unix.shutdown ic.ic_fd Unix.SHUTDOWN_ALL
         with Unix.Unix_error _ -> ());
        Squeue.close ic.ic_buf;
        Thread.join ic.ic_thread;
        (* actually release the fd: a merely-shutdown socket would keep
           ACKing (and discarding) the peer's writes forever, so the
           peer would never observe the death; a closed one answers RST
           like a dead process does *)
        try Unix.close ic.ic_fd with Unix.Unix_error _ -> ())
      ins;
    List.iter Thread.join (with_lock t (fun () -> t.accept_threads))
  end

let kill t =
  if not t.stopping then begin
    (* slam every socket before the orderly teardown: peers observe the
       failure immediately (reset/EOF on their next operation) and
       whatever was queued for transmission is lost — an abrupt process
       death rather than a drain. [shutdown] then reaps the threads and
       records the teardown event as usual. *)
    let outs, ins =
      with_lock t (fun () -> (t.outs, t.ins @ List.map snd t.pending_ins))
    in
    List.iter
      (fun oc ->
        try Unix.shutdown oc.oc_fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
      outs;
    List.iter
      (fun ic ->
        try Unix.shutdown ic.ic_fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
      ins;
    shutdown t
  end
