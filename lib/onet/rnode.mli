(** A real iOverlay node over Unix TCP sockets — the paper's engine
    architecture (Fig. 4) on actual threads:

    - one receiver thread per incoming connection, blocking on the
      socket and pushing framed messages into its bounded circular
      buffer;
    - one sender thread per outgoing connection, draining its buffer
      in batches, coalescing the run of frames into a pooled staging
      buffer ({!Batcher}) and flushing it with as few [write] syscalls
      as possible;
    - one engine thread owning the algorithm, which accepts new
      connections on the publicized port ([select] with timeout),
      drains receiver buffers round-robin, consults
      [Algorithm.process], and places forwarded messages into sender
      buffers.

    Persistent connections: all messages between two nodes share one
    TCP connection regardless of application. Failure detection:
    socket errors and EOF surface to the algorithm as [LinkFailed]
    messages. This runtime exists to validate the engine design
    against real sockets (loopback deployment); the simulator runs the
    measured experiments. *)

type t

val start :
  ?host:string ->
  ?port:int ->
  ?buffer_capacity:int ->
  ?batching:bool ->
  ?telemetry:Iov_telemetry.Telemetry.t ->
  Iov_core.Algorithm.t ->
  t
(** Binds (default [127.0.0.1], ephemeral port), spawns the engine
    thread and returns. [buffer_capacity] (messages, default 16) sizes
    each receiver/sender buffer. [batching] (default [true]) selects
    the coalescing sender path: each sender drains its whole backlog
    per lock acquisition and ships it with (ideally) one [write];
    [~batching:false] restores one write syscall per message — the
    baseline the netlab experiment measures against. The byte stream on
    the wire is identical either way. [telemetry] attaches a telemetry
    deployment sharing the simulator's event vocabulary: the node
    records enqueue/switch/send/deliver/drop/shed/link-failure/teardown
    events into its flight recorder (guarded by a dedicated mutex — the
    runtime is multi-threaded, unlike the simulator) and keeps counters
    scoped by its [ip:port], including the batched-I/O triple
    [onet.syscalls_total], [onet.batched_msgs] and the
    [onet.batch_bytes] histogram.
    @raise Unix.Unix_error on bind failure. *)

val id : t -> Iov_msg.Node_id.t
(** The node identity: actual IP and bound port. *)

val connect : t -> Iov_msg.Node_id.t -> unit
(** Ensures a persistent outgoing connection (no-op if present).
    @raise Unix.Unix_error if the peer is unreachable. *)

val send : t -> Iov_msg.Message.t -> Iov_msg.Node_id.t -> unit
(** Thread-safe external send (the driver-side equivalent of the
    algorithm's [ctx.send]); blocks while the sender buffer is full —
    natural TCP-like pacing for driver loops. Data messages first pass
    the {!set_admission} hook, if any; refused messages are shed
    silently (a [Shed] telemetry event, no enqueue). *)

val set_admission :
  t ->
  (now:float -> app:int -> size:int -> backlog:int -> bool) option ->
  unit
(** Installs (or clears) an admission hook over outbound data messages
    — the sockets-runtime twin of the simulator's
    [Network.set_admission], sharing the [Iov_guard.Admission]
    signature. [backlog] is {!staged_bytes}: wire bytes accepted into
    the send pipeline and not yet handed to the kernel, so shedding
    decisions see the true staged load even when the batched path is
    holding bytes in a staging buffer. Control-plane messages bypass
    the hook. Not synchronized with in-flight sends; install before
    load, or tolerate a raced message. *)

val staged_bytes : t -> int
(** Wire bytes currently inside the send pipeline (sender queues plus
    staging buffers), i.e. accepted by {!send} but not yet written to
    the kernel. *)

val app_bytes : t -> app:int -> int
(** Data payload bytes delivered to this node's algorithm for [app]. *)

val messages_processed : t -> int
(** Messages the engine thread has dispatched to the algorithm. *)

val peers : t -> Iov_msg.Node_id.t list
(** Current outgoing connections. *)

val link_bytes : t -> [ `In | `Out ] -> Iov_msg.Node_id.t -> int
(** Wire bytes carried so far on the connection from/to the peer (the
    QoS counters backing the context's throughput queries); 0 for
    unknown peers. *)

val shutdown : t -> unit
(** Graceful: closes connections, joins all threads. Idempotent. *)

val kill : t -> unit
(** Abrupt failure for chaos injection: slams every socket shut first —
    peers observe the death immediately and queued messages are lost —
    then reaps the threads like {!shutdown}. Idempotent. *)
