module Msg = Iov_msg.Message
module Codec = Iov_msg.Codec

let default_cap = 256 * 1024

type pool = {
  p_cap : int;
  p_max_idle : int;
  p_lock : Mutex.t;
  mutable p_free : Bytes.t list;
  mutable p_idle : int;
}

type t = {
  b_pool : pool option;
  buf : Bytes.t;
  mutable len : int;
  mutable msgs : int;
}

let pool ?(cap = default_cap) ?(max_idle = 8) () =
  if cap < Msg.header_size then invalid_arg "Batcher.pool: cap";
  if max_idle < 0 then invalid_arg "Batcher.pool: max_idle";
  { p_cap = cap; p_max_idle = max_idle; p_lock = Mutex.create ();
    p_free = []; p_idle = 0 }

let acquire p =
  Mutex.lock p.p_lock;
  let buf =
    match p.p_free with
    | b :: rest ->
      p.p_free <- rest;
      p.p_idle <- p.p_idle - 1;
      b
    | [] -> Bytes.create p.p_cap
  in
  Mutex.unlock p.p_lock;
  { b_pool = Some p; buf; len = 0; msgs = 0 }

let release t =
  t.len <- 0;
  t.msgs <- 0;
  match t.b_pool with
  | None -> ()
  | Some p ->
    Mutex.lock p.p_lock;
    (* retire rather than hoard: a node that briefly fanned out to many
       peers must not pin their buffers forever *)
    if p.p_idle < p.p_max_idle then begin
      p.p_free <- t.buf :: p.p_free;
      p.p_idle <- p.p_idle + 1
    end;
    Mutex.unlock p.p_lock

let standalone ?(cap = default_cap) () =
  if cap < Msg.header_size then invalid_arg "Batcher.standalone: cap";
  { b_pool = None; buf = Bytes.create cap; len = 0; msgs = 0 }

let buffer t = t.buf
let capacity t = Bytes.length t.buf
let length t = t.len
let staged t = t.msgs
let is_empty t = t.len = 0

let add t m =
  let sz = Msg.size m in
  if t.len + sz > Bytes.length t.buf then false
  else begin
    let n = Codec.encode_into m t.buf t.len in
    t.len <- t.len + n;
    t.msgs <- t.msgs + 1;
    true
  end

let flush t ~write =
  let total = t.len in
  if total = 0 then 0
  else begin
    let syscalls = ref 0 in
    let off = ref 0 in
    (* Partial writes advance the cursor; EINTR retries in place. Any
       other error propagates with the batch reset — the connection is
       dead and the staged bytes are lost either way. *)
    (try
       while !off < total do
         match write t.buf !off (total - !off) with
         | w ->
           incr syscalls;
           if w < 0 || w > total - !off then
             invalid_arg "Batcher.flush: writer returned a bad count";
           off := !off + w
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> incr syscalls
       done
     with e ->
       t.len <- 0;
       t.msgs <- 0;
       raise e);
    t.len <- 0;
    t.msgs <- 0;
    !syscalls
  end
