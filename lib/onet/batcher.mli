(** Coalescing write batches for the sockets runtime's sender threads.

    A batcher is a reusable staging buffer: the sender drains its queue
    ({!Squeue.pop_batch}), encodes each message in place with
    [Codec.encode_into], and ships the whole run of frames with as few
    [write] system calls as the kernel allows — one, absent partial
    writes. The byte stream produced is identical to writing each
    message's own encoding back to back, so receivers cannot tell the
    difference; only the syscall count changes.

    Buffers come from a per-node {!pool} so a node with many outgoing
    links reuses a bounded set of staging areas instead of holding one
    256 KB slab per link forever. Reuse never aliases live data: {!add}
    copies the message's encoding into the staging buffer and {!flush}
    hands bytes to the kernel (or to the caller's [write] function,
    which must consume them before returning), so by the time a buffer
    returns to the pool nothing live points into it. *)

type t

(** {1 Pooling} *)

type pool
(** A bounded free list of staging buffers, shared by a node's sender
    threads. Thread-safe. *)

val default_cap : int
(** Staging-buffer size — also the largest batch one flush writes:
    256 KiB. *)

val pool : ?cap:int -> ?max_idle:int -> unit -> pool
(** [cap] (default {!default_cap}) sizes each buffer; [max_idle]
    (default 8) bounds how many released buffers the pool retains —
    beyond that they are dropped for the GC.
    @raise Invalid_argument if [cap] is smaller than a message header
    or [max_idle] is negative. *)

val acquire : pool -> t
(** An empty batcher over a pooled (or, if the free list is empty,
    fresh) buffer. *)

val release : t -> unit
(** Resets the batcher and returns its buffer to the pool (dropped if
    the pool already holds [max_idle] buffers). The caller must not use
    [t] afterwards. *)

val standalone : ?cap:int -> unit -> t
(** A pool-less batcher (tests, benchmarks). *)

(** {1 Staging} *)

val add : t -> Iov_msg.Message.t -> bool
(** Encodes the message at the staging cursor. [false] — and no state
    change — if the encoding does not fit in the remaining space: the
    caller flushes and retries, or writes an oversized message's own
    encoding directly. *)

val length : t -> int
(** Bytes staged and not yet flushed. *)

val staged : t -> int
(** Messages staged and not yet flushed. *)

val is_empty : t -> bool
(** No staged bytes — {!flush} would be a no-op. *)

val capacity : t -> int
(** Total staging-buffer size in bytes (fixed at creation). *)

val buffer : t -> Bytes.t
(** The underlying staging buffer (exposed so tests can check pool
    identity); treat as opaque. *)

(** {1 Flushing} *)

val flush : t -> write:(Bytes.t -> int -> int -> int) -> int
(** [flush t ~write] pushes every staged byte through [write buf off
    len] (which returns the bytes it consumed — a partial count keeps
    the cursor mid-batch and the loop continues) and resets the
    batcher. [Unix.EINTR] from [write] is retried in place; any other
    exception propagates after the batch is reset, since the staged
    bytes are unrecoverable once the link is dead. Returns the number
    of [write] calls made (the syscall count when [write] is
    [Unix.write]); 0 when nothing was staged.
    @raise Invalid_argument if [write] returns a negative count or
    more than it was offered. *)
