type entry = {
  e_id : string;
  e_progress : unit -> int;
  e_respawn : unit -> unit;
  e_backoff : Backoff.t;
  mutable e_last_value : int;
  mutable e_last_advance : float;  (** when the counter last moved *)
  mutable e_eligible : float;  (** no respawn before this time *)
  mutable e_worked : bool;  (** has the counter ever advanced? *)
}

type t = {
  wedge_after : float;
  rng : Random.State.t;
  respawn_base : float;
  respawn_cap : float;
  mutable entries : entry list;  (** registration order, stable scans *)
  mutable wedged_total : int;
}

let create ?(wedge_after = 5.) ?(respawn_base = 1.) ?(respawn_cap = 30.) ~rng
    ~now:_ () =
  { wedge_after; rng; respawn_base; respawn_cap; entries = []; wedged_total = 0 }

let watch t ~id ~progress ~respawn =
  let e =
    {
      e_id = id;
      e_progress = progress;
      e_respawn = respawn;
      e_backoff =
        Backoff.create ~base:t.respawn_base ~cap:t.respawn_cap ~rng:t.rng ();
      e_last_value = progress ();
      e_last_advance = neg_infinity;
      e_eligible = neg_infinity;
      e_worked = false;
    }
  in
  t.entries <- List.filter (fun e' -> e'.e_id <> id) t.entries @ [ e ]

let forget t ~id = t.entries <- List.filter (fun e -> e.e_id <> id) t.entries

let scan t ~now =
  (* pass 1: refresh counters, note whether anybody advanced *)
  let advanced = ref false in
  List.iter
    (fun e ->
      let v = e.e_progress () in
      if v <> e.e_last_value || e.e_last_advance = neg_infinity then begin
        if v <> e.e_last_value then begin
          advanced := true;
          e.e_worked <- true
        end;
        e.e_last_value <- v;
        e.e_last_advance <- now
      end)
    t.entries;
  (* pass 2: a wedge needs a counter that once moved and went stale,
     AND a moving sibling — a node that never worked is merely idle
     (off the data path, say), and a fully idle system is not wedged *)
  if not !advanced then []
  else
    List.filter_map
      (fun e ->
        if
          e.e_worked
          && now -. e.e_last_advance >= t.wedge_after
          && now >= e.e_eligible
        then begin
          e.e_eligible <- now +. Backoff.next e.e_backoff;
          e.e_last_advance <- now;
          t.wedged_total <- t.wedged_total + 1;
          e.e_respawn ();
          Some e.e_id
        end
        else None)
      t.entries

let wedged_total t = t.wedged_total
