(** A per-neighbor circuit breaker: stop hammering a peer that keeps
    timing out, probe it occasionally, resume when it answers.

    The classic three-state machine, driven entirely by the caller's
    clock (pass [~now] everywhere — the simulator passes virtual time,
    the sockets runtime wall time), with its open intervals drawn from
    a seeded {!Backoff} schedule so consecutive trips hold the door
    shut for (boundedly) longer and same-seed runs replay identically.

    - [Closed] — traffic flows; failures within [window] accumulate,
      and the [failure_threshold]-th trips the breaker.
    - [Open] — {!allow} refuses until the scheduled probe time.
    - [Half_open] — exactly one probe is allowed through; its outcome
      ({!on_success} / {!on_failure}) closes or re-trips the breaker.

    The machine {e never} re-enters [Open] without a fresh
    {!on_failure}: successes and the mere passage of time only ever
    move it toward [Closed] (the property test in [test_guard.ml]
    pins this). *)

type t

type state = Closed | Open | Half_open

val create :
  ?failure_threshold:int ->
  ?window:float ->
  ?open_base:float ->
  ?open_cap:float ->
  rng:Random.State.t ->
  unit ->
  t
(** [failure_threshold] (default 3) failures within [window] (default
    10.s) trip the breaker; the open interval starts around
    [open_base] (default 1.s) and backs off toward [open_cap] (default
    30.s) on consecutive re-trips. *)

val state : t -> now:float -> state
(** Current state; an elapsed [Open] reads as [Half_open]. *)

val allow : t -> now:float -> bool
(** May the caller send (or retry) toward this peer now? [Closed]:
    yes. [Open]: no, until the probe time arrives. [Half_open]: yes
    once — the probe; further calls before the probe's outcome is
    reported answer no. *)

val on_failure : t -> now:float -> bool
(** Report a send timeout / failed probe / [Link_failed]. Returns
    [true] exactly when this failure tripped the breaker from
    [Closed] or [Half_open] into [Open] — the caller's cue to emit a
    [Breaker_open] telemetry event. *)

val on_success : t -> now:float -> float option
(** Report a successful delivery or probe answer. Returns
    [Some open_seconds] exactly when this success closed a half-open
    breaker — probed or merely elapsed past its open interval — (the
    cue for [Breaker_close]; the payload is the total time spent away
    from [Closed], for the [breaker.open_ms] histogram). In [Closed]
    it clears the failure count and returns [None]; while the open
    interval is still running a stray success is ignored. *)

val trips : t -> int
(** Consecutive trips since the breaker last fully closed. *)

val pp_state : Format.formatter -> state -> unit
(** Lower-case state name, for logs and test failure messages. *)
