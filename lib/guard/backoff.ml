type t = {
  base : float;
  cap : float;
  rng : Random.State.t;
  mutable prev : float;
  mutable attempt : int;
}

let create ?(base = 0.1) ?(cap = 30.) ~rng () =
  if not (base > 0. && base <= cap) then
    invalid_arg "Backoff.create: need 0 < base <= cap";
  { base; cap; rng; prev = 0.; attempt = 0 }

let envelope ~base ~cap k =
  (* 3^k overflows a float only far past any realistic attempt count;
     short-circuit once the envelope pins at the cap *)
  let rec grow v k = if k <= 0 || v >= cap then v else grow (v *. 3.) (k - 1) in
  Float.min cap (grow base k)

let next t =
  let hi = Float.max t.base (3. *. t.prev) in
  let d = t.base +. Random.State.float t.rng (hi -. t.base) in
  let d = Float.min d (envelope ~base:t.base ~cap:t.cap t.attempt) in
  let d = Float.max t.base d in
  t.prev <- d;
  t.attempt <- t.attempt + 1;
  d

let reset t =
  t.prev <- 0.;
  t.attempt <- 0

let attempt t = t.attempt
