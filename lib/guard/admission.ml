type cls = { rate : float; burst : int; priority : int }

let cls ?(rate = infinity) ?(burst = 65536) ~priority () =
  if priority < 0 then invalid_arg "Admission.cls: priority < 0";
  { rate; burst; priority }

type bucket = {
  bk_cls : cls;
  mutable tokens : float;
  mutable refilled : float;
}

type t = {
  gradient_threshold : float;
  relief : float;
  classes : (int, bucket) Hashtbl.t;
  default : cls;
  mutable max_priority : int;
  (* gradient tracking *)
  mutable last_backlog : int;
  mutable last_seen : float;
  mutable gradient : float;  (** EWMA of d(backlog)/dt, bytes/s *)
  mutable floor : int;  (** priorities below this are shed *)
  mutable floor_changed : float;
  (* accounting *)
  mutable shed_total : int;
  shed_by_app : (int, int ref) Hashtbl.t;
}

let bucket_of cls ~now =
  { bk_cls = cls; tokens = float_of_int cls.burst; refilled = now }

let create ?(gradient_threshold = 256.) ?(relief = 0.25) ?(classes = [])
    ~default ~now () =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (app, c) -> Hashtbl.replace tbl app (bucket_of c ~now)) classes;
  let max_priority =
    List.fold_left (fun m (_, c) -> max m c.priority) default.priority classes
  in
  {
    gradient_threshold;
    relief;
    classes = tbl;
    default;
    max_priority;
    last_backlog = 0;
    last_seen = now;
    gradient = 0.;
    floor = 0;
    floor_changed = now;
    shed_total = 0;
    shed_by_app = Hashtbl.create 8;
  }

let bucket t ~now ~app =
  match Hashtbl.find_opt t.classes app with
  | Some b -> b
  | None ->
    let b = bucket_of t.default ~now in
    Hashtbl.add t.classes app b;
    b

let priority_of t ~app =
  match Hashtbl.find_opt t.classes app with
  | Some b -> b.bk_cls.priority
  | None -> t.default.priority

(* EWMA over irregular samples: blend with weight 1 - exp(-dt/tau),
   tau fixed at 1s — recent growth dominates, single bursts decay. *)
let tau = 1.0

let observe_backlog t ~now ~backlog =
  let dt = now -. t.last_seen in
  if dt > 0. then begin
    let d = float_of_int (backlog - t.last_backlog) /. dt in
    let w = 1. -. exp (-.dt /. tau) in
    t.gradient <- t.gradient +. (w *. (d -. t.gradient));
    t.last_seen <- now;
    t.last_backlog <- backlog;
    (* walk the shed floor one level per relief period *)
    if now -. t.floor_changed >= t.relief then
      if t.gradient > t.gradient_threshold then begin
        if t.floor < t.max_priority then begin
          t.floor <- t.floor + 1;
          t.floor_changed <- now
        end
      end
      else if t.floor > 0 then begin
        t.floor <- t.floor - 1;
        t.floor_changed <- now
      end
  end
  else t.last_backlog <- backlog

let charge_shed t ~app =
  t.shed_total <- t.shed_total + 1;
  match Hashtbl.find_opt t.shed_by_app app with
  | Some r -> incr r
  | None -> Hashtbl.add t.shed_by_app app (ref 1)

let admit t ~now ~app ~size ~backlog =
  observe_backlog t ~now ~backlog;
  let b = bucket t ~now ~app in
  if b.bk_cls.priority < t.floor then begin
    charge_shed t ~app;
    false
  end
  else begin
    (* refill, then try to pay *)
    (if b.bk_cls.rate < infinity then
       let dt = now -. b.refilled in
       if dt > 0. then begin
         b.tokens <-
           Float.min
             (float_of_int b.bk_cls.burst)
             (b.tokens +. (dt *. b.bk_cls.rate));
         b.refilled <- now
       end);
    let cost = float_of_int size in
    if b.bk_cls.rate = infinity || b.tokens >= cost then begin
      if b.bk_cls.rate < infinity then b.tokens <- b.tokens -. cost;
      true
    end
    else begin
      charge_shed t ~app;
      false
    end
  end

let shed_floor t = t.floor
let shed_total t = t.shed_total

let shed_of t ~app =
  match Hashtbl.find_opt t.shed_by_app app with Some r -> !r | None -> 0
