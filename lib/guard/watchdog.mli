(** Wedge detection by progress, not liveness: SWIM notices a node
    that stopped {e answering}; the watchdog notices one that still
    answers but stopped {e working} — its switch counter frozen while
    its peers' counters advance.

    The watchdog is runtime-agnostic. Each supervised node registers a
    [progress] thunk (any monotone activity counter — the engines use
    the per-node [switched] metric) and a [respawn] callback (the
    simulator wires [Network.add_node ~seeds], which re-adds the id
    incarnation-bumped so SWIM accepts the rebirth). {!scan} is called
    from any timer loop; a node is declared wedged — and its [respawn]
    fired — when its counter, {e having advanced at least once}, has
    not moved for [wedge_after] seconds {e while at least one
    sibling's has}. The two clauses keep the honest idlers safe: a
    node that never worked (it sits off the data path) is merely idle,
    and a globally quiet system (nothing to do is not a wedge) is
    never respawned to death; a per-node seeded {!Backoff} spaces
    repeated respawns of a node that wedges again. *)

type t

val create :
  ?wedge_after:float -> ?respawn_base:float -> ?respawn_cap:float ->
  rng:Random.State.t -> now:float -> unit -> t
(** [wedge_after] defaults to 5.s; [respawn_base]/[respawn_cap]
    (default 1.s / 30.s) bound the backoff between repeated respawns
    of the same node. *)

val watch :
  t -> id:string -> progress:(unit -> int) -> respawn:(unit -> unit) -> unit
(** Register (or re-register, resetting history) a node. *)

val forget : t -> id:string -> unit
(** Stop supervising a node (e.g. one chaos deliberately killed — its
    frozen counter is not a wedge). *)

val scan : t -> now:float -> string list
(** One supervision pass: fires [respawn] for every node newly judged
    wedged and returns their ids (the caller's cue to emit [Wedge]
    telemetry events). Nodes remain watched after a respawn; their
    progress history restarts. *)

val wedged_total : t -> int
(** Respawns triggered since [create]. *)
