(** Priority-classed admission control for the switch: token buckets
    per application class, plus graceful degradation that sheds the
    {e lowest}-priority traffic first when the sender backlog keeps
    growing.

    Two independent gates, both allocation-free per decision:

    - {e rate}: each class refills a byte-denominated token bucket;
      a message that cannot pay its size in tokens is shed.
    - {e gradient}: the admission point tracks an EWMA of the backlog
      derivative. While it exceeds [gradient_threshold] (the queue is
      growing faster than it drains), a shed floor climbs one priority
      level at a time — classes strictly below the floor are refused
      outright — and decays back to zero once the backlog shrinks
      again. Higher [priority] numbers survive longer.

    Decisions are pure functions of [(now, app, size, backlog)] and
    the configuration, so the simulator's seeded runs replay the same
    shed pattern byte for byte. The caller records a [Shed] telemetry
    event per refusal; {!shed_total} aggregates them for the
    [guard.shed_total] metric. *)

type t

type cls = {
  rate : float;  (** sustained budget, bytes/second *)
  burst : int;  (** bucket depth, bytes *)
  priority : int;  (** bigger survives longer; must be >= 0 *)
}

val cls : ?rate:float -> ?burst:int -> priority:int -> unit -> cls
(** Class constructor; [rate] defaults to unlimited
    ([infinity]), [burst] to 64 KiB. *)

val create :
  ?gradient_threshold:float ->
  ?relief:float ->
  ?classes:(int * cls) list ->
  default:cls ->
  now:float ->
  unit ->
  t
(** [classes] maps application ids to their class; unlisted apps get
    [default]. [gradient_threshold] (default 256., in backlog units
    per second of smoothed growth) arms degradation; the shed floor
    climbs after each [relief] (default 0.25s) spent above the
    threshold and steps back down after each [relief] below it. The
    floor never exceeds the largest configured priority, so to make a
    class sheddable under degradation give some other class (often
    [default], standing in for control-critical traffic) a higher
    priority. *)

val admit : t -> now:float -> app:int -> size:int -> backlog:int -> bool
(** Should this [size]-byte message from [app] enter the switch, given
    [backlog] already queued ahead of it? [backlog] is any monotone
    congestion measure in a unit of the caller's choice — the engine
    passes messages staged across its sender buffers — as long as the
    unit matches [gradient_threshold]. [false] means shed. *)

val shed_floor : t -> int
(** The current degradation level: classes with [priority <] this are
    being refused. 0 when the system is healthy. *)

val shed_total : t -> int
(** Messages refused since [create], across both gates. *)

val shed_of : t -> app:int -> int
(** Refusals charged to one application id. *)

val priority_of : t -> app:int -> int
(** The priority the configuration assigns to [app]. *)
