(** The one retry schedule every subsystem shares: exponential backoff
    with decorrelated jitter (the AWS "decorrelated" variant), clamped
    to a monotone-bounded envelope.

    Three properties make it safe to adopt everywhere:

    - {e bounded}: every delay lies in [[base, cap]];
    - {e monotone envelope}: the [k]-th delay never exceeds
      [min cap (base * 3^k)], so the schedule cannot jump to the cap
      on the first retry and the envelope only grows until it pins at
      the cap;
    - {e deterministic}: all randomness comes from the caller's
      [Random.State], so under the simulator's seeded RNG the same run
      replays the same delays byte for byte.

    A schedule is cheap (three floats and a counter); make one per
    retry loop (per peer, per connection) and [reset] it on success. *)

type t

val create : ?base:float -> ?cap:float -> rng:Random.State.t -> unit -> t
(** [create ~rng ()] is a fresh schedule. [base] (default [0.1]s) is
    both the first delay's upper bound and the floor of every delay;
    [cap] (default [30.]s) the ceiling. @raise Invalid_argument unless
    [0 < base <= cap]. *)

val next : t -> float
(** The next delay: drawn uniformly from
    [[base, max base (3 * previous)]], then clamped to the envelope
    [min cap (base * 3^attempt)]. Advances the attempt counter. *)

val reset : t -> unit
(** Back to the first-attempt state (after a success). *)

val attempt : t -> int
(** Delays handed out since the last [reset]. *)

val envelope : base:float -> cap:float -> int -> float
(** [envelope ~base ~cap k] = [min cap (base * 3^k)], the bound the
    [k]-th (0-based) delay of any same-parameter schedule respects —
    exposed so property tests can state the invariant exactly. *)
