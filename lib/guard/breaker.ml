type state = Closed | Open | Half_open

type phase =
  | P_closed
  | P_open of { until : float }  (** refuse until [until], then probe *)
  | P_probing  (** the half-open probe is in flight *)

type t = {
  failure_threshold : int;
  window : float;
  backoff : Backoff.t;
  mutable phase : phase;
  mutable failures : int;  (** in-window failures while closed *)
  mutable first_failure : float;
  mutable opened_at : float;  (** start of the current away-from-Closed span *)
  mutable trips : int;
}

let create ?(failure_threshold = 3) ?(window = 10.) ?(open_base = 1.)
    ?(open_cap = 30.) ~rng () =
  if failure_threshold < 1 then
    invalid_arg "Breaker.create: failure_threshold < 1";
  {
    failure_threshold;
    window;
    backoff = Backoff.create ~base:open_base ~cap:open_cap ~rng ();
    phase = P_closed;
    failures = 0;
    first_failure = 0.;
    opened_at = 0.;
    trips = 0;
  }

let state t ~now =
  match t.phase with
  | P_closed -> Closed
  | P_probing -> Half_open
  | P_open { until } -> if now >= until then Half_open else Open

let trip t ~now =
  if t.trips = 0 then t.opened_at <- now;
  t.trips <- t.trips + 1;
  t.failures <- 0;
  t.phase <- P_open { until = now +. Backoff.next t.backoff }

let allow t ~now =
  match t.phase with
  | P_closed -> true
  | P_probing -> false
  | P_open { until } ->
    if now >= until then begin
      (* hand out the single half-open probe *)
      t.phase <- P_probing;
      true
    end
    else false

let on_failure t ~now =
  match t.phase with
  | P_closed ->
    if t.failures = 0 || now -. t.first_failure > t.window then begin
      t.failures <- 1;
      t.first_failure <- now
    end
    else t.failures <- t.failures + 1;
    if t.failures >= t.failure_threshold then begin
      trip t ~now;
      true
    end
    else false
  | P_probing ->
    (* the probe itself failed: re-trip, longer interval *)
    trip t ~now;
    true
  | P_open _ ->
    (* already open; extra failure reports (e.g. straggler timeouts)
       neither extend nor re-announce the open interval *)
    false

let on_success t ~now =
  match t.phase with
  | P_closed ->
    t.failures <- 0;
    None
  | P_probing ->
    let span = now -. t.opened_at in
    t.phase <- P_closed;
    t.failures <- 0;
    t.trips <- 0;
    Backoff.reset t.backoff;
    Some (Float.max 0. span)
  | P_open { until } when now >= until ->
    (* the open interval has elapsed, so the breaker is half-open by
       time even if nobody asked [allow] for the probe yet; an organic
       success (a heartbeat got through) is just as good as a probe *)
    let span = now -. t.opened_at in
    t.phase <- P_closed;
    t.failures <- 0;
    t.trips <- 0;
    Backoff.reset t.backoff;
    Some (Float.max 0. span)
  | P_open _ ->
    (* a late success while open: evidence, but not a probe — wait for
       the half-open window before trusting the peer again *)
    None

let trips t = t.trips

let pp_state fmt s =
  Format.pp_print_string fmt
    (match s with
    | Closed -> "closed"
    | Open -> "open"
    | Half_open -> "half-open")
