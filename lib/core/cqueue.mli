(** Bounded circular queues — the paper's shared buffers between
    receiver/sender threads and the engine.

    This is the single-threaded variant used inside the simulator;
    [Iov_onet.Squeue] wraps the same structure with a mutex/condition
    pair for the real-sockets runtime. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool
val available : 'a t -> int

val push : 'a t -> 'a -> bool
(** [push t x] appends [x]; [false] (and no change) when full. *)

val pop : 'a t -> 'a option
val peek : 'a t -> 'a option

val drop : 'a t -> unit
(** Removes the head; no-op when empty. *)

val pop_upto : 'a t -> int -> 'a list
(** [pop_upto t n] removes and returns up to [n] elements from the
    head, in queue order; fewer (possibly none) when the queue holds
    fewer. The drain primitive behind batched switching: one call
    empties a buffer instead of one pop per engine iteration. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Front-to-back, without consuming. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
