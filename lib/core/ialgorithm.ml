module Msg = Iov_msg.Message
module Mt = Iov_msg.Mtype
module Wire = Iov_msg.Wire

let default (ctx : Algorithm.ctx) (m : Msg.t) =
  (match m.mtype with
  | Mt.Boot_reply -> (
    (* record the initial set of nodes in KnownHosts *)
    try
      let r = Wire.R.of_bytes m.payload in
      List.iter ctx.add_known_host (Wire.R.nodes r)
    with Wire.Truncated -> ())
  | Mt.S_announce ->
    (* a session announcement makes the source a known host *)
    ctx.add_known_host m.origin
  | Mt.Data | Mt.Boot | Mt.Request | Mt.Status | Mt.Trace | Mt.S_deploy
  | Mt.S_terminate | Mt.Broken_source | Mt.Up_throughput | Mt.Down_throughput
  | Mt.Link_failed | Mt.S_query | Mt.S_query_ack | Mt.S_join | Mt.S_leave
  | Mt.S_aware | Mt.S_federate | Mt.S_assign | Mt.Set_bandwidth
  | Mt.Terminate_node | Mt.Custom _ ->
    ());
  Algorithm.Consume

let make ?on_ready ?on_tick ?on_start ~name handler =
  let process ctx m =
    match handler ctx m with Some v -> v | None -> default ctx m
  in
  Algorithm.make ?on_ready ?on_tick ?on_start ~name process

let disseminate (ctx : Algorithm.ctx) ?(p = 1.0) m hosts =
  if p < 0. || p > 1. then invalid_arg "Ialgorithm.disseminate: p";
  let sent = ref 0 in
  List.iter
    (fun h ->
      if p >= 1.0 || Random.State.float ctx.rng 1.0 < p then begin
        ctx.send (Msg.share m) h;
        incr sent
      end)
    hosts;
  !sent

let reply (ctx : Algorithm.ctx) ~to_ m = ctx.send m to_.Msg.origin
